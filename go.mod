module mcastsim

go 1.22
