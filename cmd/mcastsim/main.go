// Command mcastsim runs the paper's experiments and prints their tables.
//
// Usage:
//
//	mcastsim -exp fig6                 # one experiment, quick scale
//	mcastsim -exp fig9 -full           # paper scale (1M-cycle load runs)
//	mcastsim -exp fig9 -workers 4      # cap the cell work pool (same output)
//	mcastsim -exp all -csv out/        # everything, CSV files per table
//	mcastsim -list                     # experiment catalogue
//	mcastsim -compare net.topo -degree 16   # scheme comparison on a
//	                                        # topogen-format topology
//	mcastsim -exp all -full -checkpoint ck/ # journal cells; kill + rerun
//	mcastsim -exp all -full -resume ck/     #   with -resume to continue
//	mcastsim serve -addr :8029 -checkpoint ck/  # long-run HTTP service
//
// Experiment IDs map to the paper's figures and text experiments; see
// DESIGN.md §4 and `mcastsim -list`.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"mcastsim/internal/core"
	"mcastsim/internal/event"
	"mcastsim/internal/experiment"
	"mcastsim/internal/metrics"
	"mcastsim/internal/obs"
	"mcastsim/internal/rng"
	"mcastsim/internal/topology"
)

func main() { os.Exit(run()) }

// run is main's body with exit codes returned instead of called, so the
// deferred profile writers fire on every path, including failures.
func run() int {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		return runServe(os.Args[2:])
	}
	var (
		expID      = flag.String("exp", "", "experiment id (or 'all')")
		list       = flag.Bool("list", false, "list experiments and exit")
		full       = flag.Bool("full", false, "paper-scale runs (slow) instead of quick")
		seed       = flag.Uint64("seed", 0, "override the experiment seed (0 = default)")
		workers    = flag.Int("workers", 0, "parallel simulation-cell workers (0 = one per CPU); output is identical for any value")
		shards     = flag.Int("shards", 1, "intra-cell PDES shards per simulation (serial-equivalence engine); output is identical for any value")
		simL       = flag.Bool("sim-l", false, "flit-simulate the scale sweep's L and XL tiers (one probe per cell) instead of plan+encode only")
		tiers      = flag.String("tiers", "", "comma-separated scale-sweep size tiers (S,M,L,XL); empty = S,M,L. The ~1M-host XL tier is opt-in: its routing state alone is ~2.6 GB")
		csvDir     = flag.String("csv", "", "also write each table as CSV into this directory")
		compare    = flag.String("compare", "", "run a scheme comparison on this topology file instead of an experiment")
		degree     = flag.Int("degree", 16, "multicast degree for -compare")
		flits      = flag.Int("flits", 128, "message flits for -compare")
		bench      = flag.String("emit-bench", "", "measure the scheduler-core benchmarks and write JSON results to this file (e.g. BENCH_PR4.json)")
		benchGate  = flag.String("bench-gate", "", "with -emit-bench: fail if events/sec or allocs/op regress more than 2x against this reference JSON; 'auto' picks the newest committed BENCH_*.json beside the output")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with go tool pprof)")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file when the run finishes")
		obsOn      = flag.Bool("obs", false, "sample per-cell telemetry (link utilization, buffer occupancy, queue depths) during -exp runs")
		obsEvery   = flag.Uint64("obs-every", uint64(obs.DefaultEvery), "telemetry sampling cadence in cycles (with -obs)")
		obsOut     = flag.String("obs-out", "", "write sampled telemetry bundles to this file; .csv extension selects CSV, anything else JSONL (with -obs)")
		ckDir      = flag.String("checkpoint", "", "journal completed simulation cells into this directory; rerunning with the same directory and arguments resumes, and resumed tables are byte-identical")
		resumeDir  = flag.String("resume", "", "resume from this checkpoint directory (must already exist); same journaling as -checkpoint")
		stopCells  = flag.Int("stop-after-cells", 0, "with -checkpoint: stop with a resumable journal after N newly-completed cells (deterministic kill stand-in for smokes)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		stop, err := startCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcastsim:", err)
			return 1
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if err := writeMemProfile(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, "mcastsim:", err)
			}
		}()
	}

	if *bench != "" {
		if err := runEmitBench(*bench, *benchGate); err != nil {
			fmt.Fprintln(os.Stderr, "mcastsim:", err)
			return 1
		}
		return 0
	}

	if *list {
		fmt.Println("available experiments:")
		for _, e := range experiment.Registry() {
			fmt.Printf("  %-9s %s\n", e.ID, e.Paper)
		}
		return 0
	}
	if *compare != "" {
		if err := runCompare(*compare, *degree, *flits, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "mcastsim:", err)
			return 1
		}
		return 0
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "mcastsim: -exp required (try -list)")
		return 2
	}

	cfg := experiment.Quick()
	if *full {
		cfg = experiment.Full()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers
	cfg.Shards = *shards
	cfg.SimulateL = *simL
	if *tiers != "" {
		cfg.Tiers = strings.Split(*tiers, ",")
	}
	var sink *experiment.ObsSink
	if *obsOn {
		sink = &experiment.ObsSink{Config: obs.Config{Every: event.Time(*obsEvery)}}
		cfg.Obs = sink
	}
	dir := *ckDir
	if *resumeDir != "" {
		if _, err := os.Stat(*resumeDir); err != nil {
			fmt.Fprintf(os.Stderr, "mcastsim: -resume: %v\n", err)
			return 2
		}
		dir = *resumeDir
	}
	if dir != "" {
		if *obsOn {
			fmt.Fprintln(os.Stderr, "mcastsim: -checkpoint/-resume and -obs are mutually exclusive (a resumed run cannot reproduce skipped cells' telemetry)")
			return 2
		}
		ck, err := experiment.OpenCheckpointer(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcastsim:", err)
			return 1
		}
		defer ck.Close()
		if *stopCells > 0 {
			ck.StopAfter(*stopCells)
		}
		cfg.Checkpoint = ck
		// SIGTERM/SIGINT drain to the journal at the next cell boundary
		// instead of dying mid-run; a hard kill is also safe (the journal
		// tolerates a torn final record), it just loses the last cell.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		go func() {
			if _, ok := <-sig; ok {
				fmt.Fprintln(os.Stderr, "mcastsim: draining to checkpoint...")
				ck.Interrupt()
			}
		}()
	}

	var entries []experiment.Entry
	if *expID == "all" {
		entries = experiment.Registry()
	} else {
		for _, id := range strings.Split(*expID, ",") {
			e, err := experiment.Lookup(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			entries = append(entries, e)
		}
	}

	seen := map[string]bool{}
	for _, e := range entries {
		start := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcastsim: %s: %v\n", e.ID, err)
			var intr *experiment.Interrupted
			if errors.As(err, &intr) {
				return 3 // resumable: rerun with -resume <dir>
			}
			return 1
		}
		for ti, tab := range tables {
			if err := tab.Render(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Println()
			if *csvDir != "" {
				if err := writeCSV(*csvDir, e.ID, ti, tab); err != nil {
					fmt.Fprintln(os.Stderr, err)
					return 1
				}
			}
		}
		if sink != nil {
			printBusiestHeatmap(sink, seen)
		}
		fmt.Printf("[%s done in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if sink != nil && *obsOut != "" {
		if err := writeObs(*obsOut, sink.Bundles()); err != nil {
			fmt.Fprintln(os.Stderr, "mcastsim:", err)
			return 1
		}
	}
	return 0
}

// printBusiestHeatmap renders a link-utilization heatmap for the busiest
// telemetry cell that arrived since the previous call (so each experiment
// in a multi-experiment run shows its own hottest cell exactly once).
func printBusiestHeatmap(sink *experiment.ObsSink, seen map[string]bool) {
	var best *obs.Bundle
	bundles := sink.Bundles()
	for i := range bundles {
		b := &bundles[i]
		if seen[b.Cell] {
			continue
		}
		if best == nil || b.TotalFlits() > best.TotalFlits() {
			best = b
		}
	}
	for i := range bundles {
		seen[bundles[i].Cell] = true
	}
	if best == nil || len(best.Snapshots) == 0 {
		return
	}
	if err := obs.WriteHeatmap(os.Stdout, *best, 0, 0); err != nil {
		fmt.Fprintln(os.Stderr, "mcastsim: heatmap:", err)
		return
	}
	fmt.Println()
}

// writeObs dumps every telemetry bundle to path; the extension picks the
// codec (.csv for long-form CSV, anything else JSONL).
func writeObs(path string, bundles []obs.Bundle) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.EqualFold(filepath.Ext(path), ".csv") {
		return obs.WriteCSV(f, bundles)
	}
	return obs.WriteJSONL(f, bundles)
}

// runCompare loads a topogen-format topology and compares every scheme on
// random multicasts over it.
func runCompare(path string, degree, flits int, seed uint64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	topo, err := topology.ReadText(f)
	if err != nil {
		return err
	}
	sys, err := core.SystemFromTopology(topo, core.Options{Seed: seed})
	if err != nil {
		return err
	}
	if degree >= topo.NumNodes {
		return fmt.Errorf("degree %d with %d nodes", degree, topo.NumNodes)
	}
	r := rng.New(seed + 1)
	picks := r.Sample(topo.NumNodes, degree+1)
	src := topology.NodeID(picks[0])
	dests := make([]topology.NodeID, degree)
	for i, v := range picks[1:] {
		dests[i] = topology.NodeID(v)
	}
	fmt.Printf("%s: %d nodes, %d switches; %d-way multicast from node %d, %d flits\n",
		path, topo.NumNodes, topo.NumSwitches, degree, src, flits)
	results, err := sys.Compare(src, dests, flits)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %12s %12s\n", "scheme", "latency(cyc)", "latency(µs)")
	for _, res := range results {
		fmt.Printf("%-14s %12d %12.2f\n", res.Scheme, res.Latency, float64(res.LatencyNS)/1000)
	}
	return nil
}

func writeCSV(dir, id string, idx int, tab *metrics.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := filepath.Join(dir, fmt.Sprintf("%s_%02d.csv", id, idx))
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	defer f.Close()
	return tab.WriteCSV(f)
}
