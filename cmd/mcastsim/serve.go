package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mcastsim/internal/serve"
)

// runServe is the `mcastsim serve` subcommand: the long-run service
// mode. It listens for JSON workload specs, runs them on the experiment
// worker pool, and streams progress/telemetry/tables over SSE (see
// internal/serve). SIGTERM and SIGINT drain gracefully: running jobs
// stop at their next cell boundary with a resumable checkpoint journal
// (when -checkpoint is set), then the listener shuts down.
func runServe(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8029", "listen address")
	ckDir := fs.String("checkpoint", "", "checkpoint directory: each job journals cell completions under <dir>/<job-id>, and SIGTERM drains every running job to a resumable state")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	srv := serve.New(serve.Options{CheckpointDir: *ckDir})
	hs := &http.Server{Handler: srv.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcastsim serve:", err)
		return 1
	}
	fmt.Printf("mcastsim serve: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "mcastsim serve:", err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default handling so a second signal kills hard
	fmt.Fprintln(os.Stderr, "mcastsim serve: draining jobs to checkpoint...")
	srv.Drain()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "mcastsim serve: shutdown:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "mcastsim serve: drained; bye")
	return 0
}
