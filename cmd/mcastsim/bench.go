package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"mcastsim/internal/benchcase"
)

// benchMetrics is one benchmark measurement in BENCH_PR4.json.
type benchMetrics struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	EventsPerOp  float64 `json:"events_per_op,omitempty"`
	Iterations   int     `json:"iterations"`
}

// benchRecord pairs a current measurement with the frozen pre-optimization
// baseline for one benchmark.
type benchRecord struct {
	Baseline benchMetrics `json:"baseline"`
	Current  benchMetrics `json:"current"`
	// SpeedupEventsPerSec is current/baseline scheduler throughput (the
	// PR 4 acceptance metric on TreeStorm, target >= 1.5);
	// SpeedupWallClock is the plain ns/op ratio.
	SpeedupEventsPerSec float64 `json:"speedup_events_per_sec,omitempty"`
	SpeedupWallClock    float64 `json:"speedup_wall_clock"`
	// AllocReduction is 1 - current/baseline allocs/op (the PR 4
	// acceptance metric on DrainLarge, target >= 0.30).
	AllocReduction float64 `json:"alloc_reduction,omitempty"`
}

// benchFile is the whole BENCH_PR4.json document (and the shape of the
// committed BENCH_PR3.json the -bench-gate flag reads back).
type benchFile struct {
	Note       string                 `json:"note"`
	Benchmarks map[string]benchRecord `json:"benchmarks"`
}

// Baselines freeze the numbers measured on the reference box immediately
// before the PR 4 route cache and free lists landed: the PR 3 engine
// (typed-event calendar queue) recomputing every routing decision and
// allocating every worm/branch/occupant fresh. DrainLarge/SweepParallel
// carry over BENCH_PR3.json's "current" values; TreeStorm was measured on
// the same engine when the benchmark was added. TreeStorm's events/op has
// since grown ~0.9% (branch-reclaim quarantine events); the events/sec
// ratio absorbs that, it does not flatter it.
var (
	treeStormBaseline = benchMetrics{
		NsPerOp:      205.2e6,
		AllocsPerOp:  513_547,
		BytesPerOp:   57_898_475,
		EventsPerSec: 12.0e6,
		EventsPerOp:  2_469_481,
		Iterations:   5,
	}
	drainLargeBaseline = benchMetrics{
		NsPerOp:      151.8e6,
		AllocsPerOp:  94_374,
		BytesPerOp:   10_569_708,
		EventsPerSec: 16.8e6,
		EventsPerOp:  2_552_335,
		Iterations:   7,
	}
	sweepParallelBaseline = benchMetrics{
		NsPerOp:    2.54e9,
		Iterations: 1,
	}
	// Frozen at introduction (PR 7, scale sweep). The throughput field
	// carries each benchmark's own rate metric: headers/sec for
	// HeaderEncode, switches/sec for TopologyGen.
	headerEncodeBaseline = benchMetrics{
		NsPerOp:      10_868,
		EventsPerSec: 184_028,
		Iterations:   220_412,
	}
	topologyGenBaseline = benchMetrics{
		NsPerOp:      80.6e6,
		AllocsPerOp:  32_577,
		BytesPerOp:   105_692_220,
		EventsPerSec: 13_500,
		Iterations:   27,
	}
)

func measure(f func(b *testing.B)) benchMetrics {
	return measureRate(f, "events/sec")
}

// measureRate runs f once through testing.Benchmark, reading the named
// custom metric into the throughput field (different benchmarks report
// different rates; the gate only ever compares like against like).
func measureRate(f func(b *testing.B), rateKey string) benchMetrics {
	r := testing.Benchmark(f)
	m := benchMetrics{
		NsPerOp:      float64(r.NsPerOp()),
		AllocsPerOp:  float64(r.AllocsPerOp()),
		BytesPerOp:   float64(r.AllocedBytesPerOp()),
		EventsPerSec: r.Extra[rateKey],
		EventsPerOp:  r.Extra["events/op"],
		Iterations:   r.N,
	}
	return m
}

func record(baseline, current benchMetrics) benchRecord {
	rec := benchRecord{
		Baseline:         baseline,
		Current:          current,
		SpeedupWallClock: baseline.NsPerOp / current.NsPerOp,
	}
	if baseline.EventsPerSec > 0 && current.EventsPerSec > 0 {
		rec.SpeedupEventsPerSec = current.EventsPerSec / baseline.EventsPerSec
	}
	if baseline.AllocsPerOp > 0 {
		rec.AllocReduction = 1 - current.AllocsPerOp/baseline.AllocsPerOp
	}
	return rec
}

// runEmitBench measures the benchcase workloads with testing.Benchmark and
// writes BENCH_PR4.json-format results to path. When gatePath names a
// committed reference file (BENCH_PR3.json), checkGate fails the run on
// order-of-magnitude regressions.
func runEmitBench(path, gatePath string) error {
	fmt.Fprintln(os.Stderr, "mcastsim: measuring TreeStorm...")
	tree := measure(benchcase.TreeStorm)
	fmt.Fprintln(os.Stderr, "mcastsim: measuring DrainLarge...")
	drain := measure(benchcase.DrainLarge)
	fmt.Fprintln(os.Stderr, "mcastsim: measuring SweepParallel...")
	sweep := measure(benchcase.SweepParallel)
	fmt.Fprintln(os.Stderr, "mcastsim: measuring HeaderEncode...")
	hdr := measureRate(benchcase.HeaderEncode, "headers/sec")
	fmt.Fprintln(os.Stderr, "mcastsim: measuring TopologyGen...")
	topo := measureRate(benchcase.TopologyGen, "switches/sec")

	out := benchFile{
		Note: "PR 4 route-cache benchmarks; baselines frozen on the PR 3 engine (calendar queue, uncached routing, per-decision allocation)",
		Benchmarks: map[string]benchRecord{
			"TreeStorm":     record(treeStormBaseline, tree),
			"DrainLarge":    record(drainLargeBaseline, drain),
			"SweepParallel": record(sweepParallelBaseline, sweep),
			"HeaderEncode":  record(headerEncodeBaseline, hdr),
			"TopologyGen":   record(topologyGenBaseline, topo),
		},
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: TreeStorm %.1f ms/op, %.3gM events/sec (%.2fx baseline); DrainLarge %.0f allocs/op (%.0f%% below baseline)\n",
		path, tree.NsPerOp/1e6, tree.EventsPerSec/1e6,
		tree.EventsPerSec/treeStormBaseline.EventsPerSec,
		drain.AllocsPerOp, 100*(1-drain.AllocsPerOp/drainLargeBaseline.AllocsPerOp))

	if gatePath != "" {
		return checkGate(gatePath, map[string]benchMetrics{
			"TreeStorm":     tree,
			"DrainLarge":    drain,
			"SweepParallel": sweep,
			"HeaderEncode":  hdr,
			"TopologyGen":   topo,
		})
	}
	return nil
}

// checkGate compares fresh measurements against the "current" values of a
// committed reference file. The 2x tolerance is deliberately generous —
// shared CI runners are noisy — so only order-of-magnitude regressions
// (a dropped cache, a reintroduced per-event allocation) trip it.
func checkGate(gatePath string, current map[string]benchMetrics) error {
	data, err := os.ReadFile(gatePath)
	if err != nil {
		return fmt.Errorf("bench gate: %w", err)
	}
	var ref benchFile
	if err := json.Unmarshal(data, &ref); err != nil {
		return fmt.Errorf("bench gate: parse %s: %w", gatePath, err)
	}
	const tolerance = 2.0
	var failures []string
	for name, cur := range current {
		rec, ok := ref.Benchmarks[name]
		if !ok {
			continue // reference predates this benchmark
		}
		want := rec.Current
		if want.EventsPerSec > 0 && cur.EventsPerSec < want.EventsPerSec/tolerance {
			failures = append(failures, fmt.Sprintf(
				"%s: events/sec %.3g fell below %.3g (reference %.3g / %gx)",
				name, cur.EventsPerSec, want.EventsPerSec/tolerance, want.EventsPerSec, tolerance))
		}
		if want.AllocsPerOp > 0 && cur.AllocsPerOp > want.AllocsPerOp*tolerance {
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op %.0f exceeded %.0f (reference %.0f * %gx)",
				name, cur.AllocsPerOp, want.AllocsPerOp*tolerance, want.AllocsPerOp, tolerance))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "mcastsim: bench gate:", f)
		}
		return fmt.Errorf("bench gate: %d regression(s) against %s", len(failures), gatePath)
	}
	fmt.Printf("bench gate passed against %s (%gx tolerance)\n", gatePath, tolerance)
	return nil
}
