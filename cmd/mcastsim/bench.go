package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"mcastsim/internal/benchcase"
	"mcastsim/internal/memwatch"
)

// benchMetrics is one benchmark measurement in BENCH_PR4.json.
type benchMetrics struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	EventsPerOp  float64 `json:"events_per_op,omitempty"`
	// PeakHeapBytes is the process-wide HeapAlloc high-water mark sampled
	// while the benchmark ran (internal/memwatch) — the "does it fit in
	// RAM" axis of the trajectory, added in PR 9. Absent from references
	// that predate it, in which case the gate skips its memory rule.
	PeakHeapBytes float64 `json:"peak_heap_bytes,omitempty"`
	Iterations    int     `json:"iterations"`
}

// benchRecord pairs a current measurement with the frozen pre-optimization
// baseline for one benchmark.
type benchRecord struct {
	Baseline benchMetrics `json:"baseline"`
	Current  benchMetrics `json:"current"`
	// SpeedupEventsPerSec is current/baseline scheduler throughput (the
	// PR 4 acceptance metric on TreeStorm, target >= 1.5);
	// SpeedupWallClock is the plain ns/op ratio.
	SpeedupEventsPerSec float64 `json:"speedup_events_per_sec,omitempty"`
	SpeedupWallClock    float64 `json:"speedup_wall_clock"`
	// AllocReduction is 1 - current/baseline allocs/op (the PR 4
	// acceptance metric on DrainLarge, target >= 0.30).
	AllocReduction float64 `json:"alloc_reduction,omitempty"`
}

// benchFile is the whole BENCH_PR4.json document (and the shape of the
// committed BENCH_PR3.json the -bench-gate flag reads back).
type benchFile struct {
	Note       string                 `json:"note"`
	Benchmarks map[string]benchRecord `json:"benchmarks"`
}

// Baselines freeze the numbers measured on the reference box immediately
// before the PR 4 route cache and free lists landed: the PR 3 engine
// (typed-event calendar queue) recomputing every routing decision and
// allocating every worm/branch/occupant fresh. DrainLarge/SweepParallel
// carry over BENCH_PR3.json's "current" values; TreeStorm was measured on
// the same engine when the benchmark was added. TreeStorm's events/op has
// since grown ~0.9% (branch-reclaim quarantine events); the events/sec
// ratio absorbs that, it does not flatter it.
var (
	treeStormBaseline = benchMetrics{
		NsPerOp:      205.2e6,
		AllocsPerOp:  513_547,
		BytesPerOp:   57_898_475,
		EventsPerSec: 12.0e6,
		EventsPerOp:  2_469_481,
		Iterations:   5,
	}
	drainLargeBaseline = benchMetrics{
		NsPerOp:      151.8e6,
		AllocsPerOp:  94_374,
		BytesPerOp:   10_569_708,
		EventsPerSec: 16.8e6,
		EventsPerOp:  2_552_335,
		Iterations:   7,
	}
	sweepParallelBaseline = benchMetrics{
		NsPerOp:    2.54e9,
		Iterations: 1,
	}
	// Frozen at introduction (PR 7, scale sweep). The throughput field
	// carries each benchmark's own rate metric: headers/sec for
	// HeaderEncode, switches/sec for TopologyGen.
	headerEncodeBaseline = benchMetrics{
		NsPerOp:      10_868,
		EventsPerSec: 184_028,
		Iterations:   220_412,
	}
	topologyGenBaseline = benchMetrics{
		NsPerOp:      80.6e6,
		AllocsPerOp:  32_577,
		BytesPerOp:   105_692_220,
		EventsPerSec: 13_500,
		Iterations:   27,
	}
	// Frozen at introduction (PR 8, sharded engine): the serial
	// single-queue engine running the wide-window (8-cycle link)
	// TreeStorm variant on the reference box. Every ShardScaling/k
	// member shares this baseline, so each record's
	// speedup_events_per_sec reads directly as "k shards vs serial".
	shardScalingBaseline = benchMetrics{
		NsPerOp:      143.6e6,
		AllocsPerOp:  81_865,
		BytesPerOp:   14_853_824,
		EventsPerSec: 17.6e6,
		EventsPerOp:  2_533_027,
		Iterations:   3,
	}
	// Frozen at introduction (PR 9, sparse destination sets): the
	// run-coded hot path on the 101k-host fat-tree, measured on the
	// reference box the day the families landed. Peak-heap baselines
	// start here too — earlier baselines predate the field.
	sparseStormBaseline = benchMetrics{
		NsPerOp:       335.6e6,
		AllocsPerOp:   1_337_890,
		BytesPerOp:    92_929_749,
		EventsPerSec:  7.21e6,
		EventsPerOp:   2_418_888,
		PeakHeapBytes: 235e6,
		Iterations:    3,
	}
	scaleSimBaseline = benchMetrics{
		NsPerOp:       211.6e6,
		AllocsPerOp:   1_327_182,
		BytesPerOp:    85_887_888,
		EventsPerSec:  1.71e6,
		EventsPerOp:   362_728,
		PeakHeapBytes: 237e6,
		Iterations:    5,
	}
)

// shardScalingMinSpeedup is the PR 8 acceptance floor: fast mode on 4
// shards must deliver >= 3x the serial engine's events/sec on the
// ShardScaling workload. Only enforced when the box has at least 4 CPUs
// — with fewer cores the 4 shard workers time-slice one another and the
// measurement is scheduling overhead, not scaling.
const shardScalingMinSpeedup = 3.0

func measure(f func(b *testing.B)) benchMetrics {
	return measureRate(f, "events/sec")
}

// measureRate runs f once through testing.Benchmark, reading the named
// custom metric into the throughput field (different benchmarks report
// different rates; the gate only ever compares like against like). A
// memwatch sampler brackets the whole run, so PeakHeapBytes covers every
// probe round including setup — the resident cost of running the
// workload at all, not just the steady state.
func measureRate(f func(b *testing.B), rateKey string) benchMetrics {
	mw := memwatch.Start()
	r := testing.Benchmark(f)
	peak := mw.Stop()
	m := benchMetrics{
		NsPerOp:       float64(r.NsPerOp()),
		AllocsPerOp:   float64(r.AllocsPerOp()),
		BytesPerOp:    float64(r.AllocedBytesPerOp()),
		EventsPerSec:  r.Extra[rateKey],
		EventsPerOp:   r.Extra["events/op"],
		PeakHeapBytes: float64(peak),
		Iterations:    r.N,
	}
	return m
}

func record(baseline, current benchMetrics) benchRecord {
	rec := benchRecord{
		Baseline:         baseline,
		Current:          current,
		SpeedupWallClock: baseline.NsPerOp / current.NsPerOp,
	}
	if baseline.EventsPerSec > 0 && current.EventsPerSec > 0 {
		rec.SpeedupEventsPerSec = current.EventsPerSec / baseline.EventsPerSec
	}
	if baseline.AllocsPerOp > 0 {
		rec.AllocReduction = 1 - current.AllocsPerOp/baseline.AllocsPerOp
	}
	return rec
}

// runEmitBench measures the benchcase workloads with testing.Benchmark and
// writes BENCH_PR8.json-format results to path. When gatePath names a
// committed reference file (or is "auto", which resolves to the newest
// committed BENCH_*.json beside the output), checkGate fails the run on
// order-of-magnitude regressions. The ShardScaling family additionally
// enforces the PR 8 >= 3x fast-mode speedup on boxes with >= 4 CPUs.
func runEmitBench(path, gatePath string) error {
	fmt.Fprintln(os.Stderr, "mcastsim: measuring TreeStorm...")
	tree := measure(benchcase.TreeStorm)
	fmt.Fprintln(os.Stderr, "mcastsim: measuring DrainLarge...")
	drain := measure(benchcase.DrainLarge)
	fmt.Fprintln(os.Stderr, "mcastsim: measuring SweepParallel...")
	sweep := measure(benchcase.SweepParallel)
	fmt.Fprintln(os.Stderr, "mcastsim: measuring HeaderEncode...")
	hdr := measureRate(benchcase.HeaderEncode, "headers/sec")
	fmt.Fprintln(os.Stderr, "mcastsim: measuring TopologyGen...")
	topo := measureRate(benchcase.TopologyGen, "switches/sec")
	shard := map[int]benchMetrics{}
	for _, k := range []int{1, 2, 4} {
		fmt.Fprintf(os.Stderr, "mcastsim: measuring ShardScaling/%d...\n", k)
		shard[k] = measure(benchcase.ShardScaling(k))
	}
	fmt.Fprintln(os.Stderr, "mcastsim: measuring SparseStorm...")
	sparse := measure(benchcase.SparseStorm)
	fmt.Fprintln(os.Stderr, "mcastsim: measuring ScaleSim...")
	scale := measure(benchcase.ScaleSim)

	out := benchFile{
		Note: "PR 9 sparse-destination-set benchmarks; SparseStorm/ScaleSim baselines frozen on the run-coded hot path at introduction, peak_heap_bytes joins the trajectory here, earlier baselines carried over from their introducing PRs",
		Benchmarks: map[string]benchRecord{
			"TreeStorm":      record(treeStormBaseline, tree),
			"DrainLarge":     record(drainLargeBaseline, drain),
			"SweepParallel":  record(sweepParallelBaseline, sweep),
			"HeaderEncode":   record(headerEncodeBaseline, hdr),
			"TopologyGen":    record(topologyGenBaseline, topo),
			"ShardScaling/1": record(shardScalingBaseline, shard[1]),
			"ShardScaling/2": record(shardScalingBaseline, shard[2]),
			"ShardScaling/4": record(shardScalingBaseline, shard[4]),
			"SparseStorm":    record(sparseStormBaseline, sparse),
			"ScaleSim":       record(scaleSimBaseline, scale),
		},
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	speedup := shard[4].EventsPerSec / shard[1].EventsPerSec
	fmt.Printf("wrote %s: TreeStorm %.1f ms/op, %.3gM events/sec (%.2fx baseline); ShardScaling 4-shard/serial %.2fx on %d CPU(s)\n",
		path, tree.NsPerOp/1e6, tree.EventsPerSec/1e6,
		tree.EventsPerSec/treeStormBaseline.EventsPerSec,
		speedup, runtime.NumCPU())

	if runtime.NumCPU() >= 4 && speedup < shardScalingMinSpeedup {
		return fmt.Errorf("bench gate: ShardScaling 4-shard speedup %.2fx below the %.1fx floor on a %d-CPU box",
			speedup, shardScalingMinSpeedup, runtime.NumCPU())
	}

	if gatePath != "" {
		resolved, err := resolveGatePath(gatePath, path)
		if err != nil {
			return err
		}
		return checkGate(resolved, map[string]benchMetrics{
			"TreeStorm":      tree,
			"DrainLarge":     drain,
			"SweepParallel":  sweep,
			"HeaderEncode":   hdr,
			"TopologyGen":    topo,
			"ShardScaling/1": shard[1],
			"ShardScaling/2": shard[2],
			"ShardScaling/4": shard[4],
			"SparseStorm":    sparse,
			"ScaleSim":       scale,
		})
	}
	return nil
}

// resolveGatePath turns the -bench-gate value into a concrete reference
// file. Anything but the literal "auto" passes through untouched. "auto"
// picks the newest committed reference: the BENCH_*.json beside the
// output file with the highest trailing PR number, excluding the file
// being written (a stale copy of the new artifact must never gate
// itself).
func resolveGatePath(gatePath, emitPath string) (string, error) {
	if gatePath != "auto" {
		return gatePath, nil
	}
	dir := filepath.Dir(emitPath)
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", fmt.Errorf("bench gate: %w", err)
	}
	best, bestNum := "", -1
	for _, m := range matches {
		if filepath.Clean(m) == filepath.Clean(emitPath) {
			continue
		}
		if num, ok := benchFileNumber(filepath.Base(m)); ok && num > bestNum {
			best, bestNum = m, num
		}
	}
	if best == "" {
		return "", fmt.Errorf("bench gate: auto found no BENCH_*.json reference in %s", dir)
	}
	fmt.Printf("bench gate: auto-selected %s\n", best)
	return best, nil
}

// benchFileNumber extracts the PR number from a reference filename like
// BENCH_PR4.json; the second return is false for names with no trailing
// integer before the extension.
func benchFileNumber(name string) (int, bool) {
	s := strings.TrimSuffix(name, ".json")
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) {
		return 0, false
	}
	n, err := strconv.Atoi(s[i:])
	if err != nil {
		return 0, false
	}
	return n, true
}

// checkGate compares fresh measurements against the "current" values of a
// committed reference file. The 2x tolerance is deliberately generous —
// shared CI runners are noisy — so only order-of-magnitude regressions
// (a dropped cache, a reintroduced per-event allocation) trip it.
func checkGate(gatePath string, current map[string]benchMetrics) error {
	data, err := os.ReadFile(gatePath)
	if err != nil {
		return fmt.Errorf("bench gate: %w", err)
	}
	var ref benchFile
	if err := json.Unmarshal(data, &ref); err != nil {
		return fmt.Errorf("bench gate: parse %s: %w", gatePath, err)
	}
	const tolerance = 2.0
	var failures []string
	for name, cur := range current {
		rec, ok := ref.Benchmarks[name]
		if !ok {
			continue // reference predates this benchmark
		}
		want := rec.Current
		if want.EventsPerSec > 0 && cur.EventsPerSec < want.EventsPerSec/tolerance {
			failures = append(failures, fmt.Sprintf(
				"%s: events/sec %.3g fell below %.3g (reference %.3g / %gx)",
				name, cur.EventsPerSec, want.EventsPerSec/tolerance, want.EventsPerSec, tolerance))
		}
		if want.AllocsPerOp > 0 && cur.AllocsPerOp > want.AllocsPerOp*tolerance {
			failures = append(failures, fmt.Sprintf(
				"%s: allocs/op %.0f exceeded %.0f (reference %.0f * %gx)",
				name, cur.AllocsPerOp, want.AllocsPerOp*tolerance, want.AllocsPerOp, tolerance))
		}
		// Memory joins the trajectory in PR 9; references that predate
		// the field (zero peak) skip the rule rather than fail it.
		if want.PeakHeapBytes > 0 && cur.PeakHeapBytes > want.PeakHeapBytes*tolerance {
			failures = append(failures, fmt.Sprintf(
				"%s: peak heap %.3g MB exceeded %.3g MB (reference %.3g MB * %gx)",
				name, cur.PeakHeapBytes/1e6, want.PeakHeapBytes*tolerance/1e6,
				want.PeakHeapBytes/1e6, tolerance))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "mcastsim: bench gate:", f)
		}
		return fmt.Errorf("bench gate: %d regression(s) against %s", len(failures), gatePath)
	}
	fmt.Printf("bench gate passed against %s (%gx tolerance)\n", gatePath, tolerance)
	return nil
}
