package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"mcastsim/internal/benchcase"
)

// benchMetrics is one benchmark measurement in BENCH_PR3.json.
type benchMetrics struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	EventsPerOp  float64 `json:"events_per_op,omitempty"`
	Iterations   int     `json:"iterations"`
}

// benchRecord pairs a current measurement with the frozen pre-refactor
// baseline for one benchmark.
type benchRecord struct {
	Baseline benchMetrics `json:"baseline"`
	Current  benchMetrics `json:"current"`
	// SpeedupEventsPerSec is current/baseline scheduler throughput (the
	// PR 3 acceptance metric, target >= 1.5); SpeedupWallClock is the
	// plain ns/op ratio.
	SpeedupEventsPerSec float64 `json:"speedup_events_per_sec,omitempty"`
	SpeedupWallClock    float64 `json:"speedup_wall_clock"`
}

// benchFile is the whole BENCH_PR3.json document.
type benchFile struct {
	Note       string                 `json:"note"`
	Benchmarks map[string]benchRecord `json:"benchmarks"`
}

// drainLargeBaseline and sweepParallelBaseline freeze the numbers measured
// on the pre-refactor engine (closure entries in a binary min-heap) on the
// reference box, immediately before the typed-event calendar queue landed.
var (
	drainLargeBaseline = benchMetrics{
		NsPerOp:      283.8e6,
		AllocsPerOp:  115_500,
		BytesPerOp:   5.24e6,
		EventsPerSec: 9.0e6,
		EventsPerOp:  2_555_004,
		Iterations:   5,
	}
	sweepParallelBaseline = benchMetrics{
		NsPerOp:    4.51e9,
		Iterations: 1,
	}
)

func measure(f func(b *testing.B)) benchMetrics {
	r := testing.Benchmark(f)
	m := benchMetrics{
		NsPerOp:      float64(r.NsPerOp()),
		AllocsPerOp:  float64(r.AllocsPerOp()),
		BytesPerOp:   float64(r.AllocedBytesPerOp()),
		EventsPerSec: r.Extra["events/sec"],
		EventsPerOp:  r.Extra["events/op"],
		Iterations:   r.N,
	}
	return m
}

// runEmitBench measures the benchcase workloads with testing.Benchmark and
// writes BENCH_PR3.json-format results to path.
func runEmitBench(path string) error {
	fmt.Fprintln(os.Stderr, "mcastsim: measuring DrainLarge...")
	drain := measure(benchcase.DrainLarge)
	fmt.Fprintln(os.Stderr, "mcastsim: measuring SweepParallel...")
	sweep := measure(benchcase.SweepParallel)

	out := benchFile{
		Note: "PR 3 scheduler-core benchmarks; baselines frozen on the pre-refactor closure/heap engine",
		Benchmarks: map[string]benchRecord{
			"DrainLarge": {
				Baseline:            drainLargeBaseline,
				Current:             drain,
				SpeedupEventsPerSec: drain.EventsPerSec / drainLargeBaseline.EventsPerSec,
				SpeedupWallClock:    drainLargeBaseline.NsPerOp / drain.NsPerOp,
			},
			"SweepParallel": {
				Baseline:         sweepParallelBaseline,
				Current:          sweep,
				SpeedupWallClock: sweepParallelBaseline.NsPerOp / sweep.NsPerOp,
			},
		},
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: DrainLarge %.1f ms/op, %.2gM events/sec (%.2fx baseline)\n",
		path, drain.NsPerOp/1e6, drain.EventsPerSec/1e6,
		drain.EventsPerSec/drainLargeBaseline.EventsPerSec)
	return nil
}
