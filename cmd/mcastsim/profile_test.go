package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestProfileFilesProduced smoke-tests the -cpuprofile/-memprofile plumbing:
// both helpers must leave a non-empty pprof file behind.
func TestProfileFilesProduced(t *testing.T) {
	dir := t.TempDir()

	cpu := filepath.Join(dir, "cpu.pprof")
	stop, err := startCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to encode; even with
	// none, StopCPUProfile writes a valid non-empty header.
	x := 0
	for i := 0; i < 1<<22; i++ {
		x += i * i
	}
	_ = x
	stop()
	if info, err := os.Stat(cpu); err != nil {
		t.Fatal(err)
	} else if info.Size() == 0 {
		t.Fatal("CPU profile file is empty")
	}

	// A second profile must be startable after the first stopped.
	stop2, err := startCPUProfile(filepath.Join(dir, "cpu2.pprof"))
	if err != nil {
		t.Fatalf("second CPU profile: %v", err)
	}
	stop2()

	mem := filepath.Join(dir, "heap.pprof")
	if err := writeMemProfile(mem); err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(mem); err != nil {
		t.Fatal(err)
	} else if info.Size() == 0 {
		t.Fatal("heap profile file is empty")
	}
}
