package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startCPUProfile begins CPU profiling into path and returns the function
// that stops the profiler and closes the file. Exactly one CPU profile may
// run at a time (a runtime/pprof restriction).
func startCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("start CPU profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeMemProfile writes a heap profile to path. A GC runs first so the
// profile reflects live objects, not garbage awaiting collection.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("write heap profile: %w", err)
	}
	return nil
}
