package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBenchFileNumber(t *testing.T) {
	cases := []struct {
		name string
		num  int
		ok   bool
	}{
		{"BENCH_PR3.json", 3, true},
		{"BENCH_PR10.json", 10, true},
		{"BENCH_PR8.json", 8, true},
		{"BENCH_notes.json", 0, false},
		{"BENCH_.json", 0, false},
	}
	for _, c := range cases {
		num, ok := benchFileNumber(c.name)
		if num != c.num || ok != c.ok {
			t.Errorf("benchFileNumber(%q) = (%d, %v), want (%d, %v)", c.name, num, ok, c.num, c.ok)
		}
	}
}

// TestResolveGatePathAuto pins the -bench-gate auto contract: the
// highest-numbered BENCH_*.json beside the output wins, the file being
// written never gates itself, non-numbered names are ignored, and an
// explicit path passes through untouched.
func TestResolveGatePathAuto(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_PR3.json", "BENCH_PR4.json", "BENCH_PR8.json", "BENCH_notes.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	emit := filepath.Join(dir, "BENCH_PR8.json") // stale copy of the artifact being rewritten

	got, err := resolveGatePath("auto", emit)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_PR4.json"); got != want {
		t.Fatalf("auto resolved %q, want %q", got, want)
	}

	if got, err := resolveGatePath("BENCH_PR3.json", emit); err != nil || got != "BENCH_PR3.json" {
		t.Fatalf("explicit path: got (%q, %v), want pass-through", got, err)
	}

	empty := t.TempDir()
	if _, err := resolveGatePath("auto", filepath.Join(empty, "BENCH_PR9.json")); err == nil {
		t.Fatal("auto with no references resolved instead of erroring")
	}
}
