// Command topogen generates random irregular switch topologies in the
// library's text interchange format (see topology.WriteText).
//
// Usage:
//
//	topogen -switches 8 -ports 8 -nodes 32 -seed 7 > net.topo
//	topogen -family 10 -seed 1998 -dir topos/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mcastsim/internal/rng"
	"mcastsim/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		switches = fs.Int("switches", 8, "number of switches")
		ports    = fs.Int("ports", 8, "ports per switch")
		nodes    = fs.Int("nodes", 32, "number of processing nodes")
		extra    = fs.Float64("extra", -1, "extra links per switch beyond the spanning tree (-1 = default 0.75)")
		seed     = fs.Uint64("seed", 1, "generation seed")
		family   = fs.Int("family", 0, "generate a family of this many topologies into -dir")
		dir      = fs.String("dir", ".", "output directory for -family")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := topology.Config{
		Switches:            *switches,
		PortsPerSwitch:      *ports,
		Nodes:               *nodes,
		ExtraLinksPerSwitch: *extra,
	}
	if *family > 0 {
		fam, err := topology.GenerateFamily(cfg, *family, *seed)
		if err != nil {
			return err
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			return err
		}
		for i, t := range fam {
			name := filepath.Join(*dir, fmt.Sprintf("topo_%03d.topo", i))
			f, err := os.Create(name)
			if err != nil {
				return err
			}
			if err := topology.WriteText(f, t); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "wrote %s (%d links)\n", name, len(t.Links))
		}
		return nil
	}
	t, err := topology.Generate(cfg, rng.New(*seed))
	if err != nil {
		return err
	}
	return topology.WriteText(stdout, t)
}
