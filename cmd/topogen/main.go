// Command topogen generates random irregular switch topologies in the
// library's text interchange format (see topology.WriteText).
//
// Usage:
//
//	topogen -switches 8 -ports 8 -nodes 32 -seed 7 > net.topo
//	topogen -family 10 -seed 1998 -dir topos/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"mcastsim/internal/rng"
	"mcastsim/internal/topology"
)

func main() {
	var (
		switches = flag.Int("switches", 8, "number of switches")
		ports    = flag.Int("ports", 8, "ports per switch")
		nodes    = flag.Int("nodes", 32, "number of processing nodes")
		extra    = flag.Float64("extra", -1, "extra links per switch beyond the spanning tree (-1 = default 0.75)")
		seed     = flag.Uint64("seed", 1, "generation seed")
		family   = flag.Int("family", 0, "generate a family of this many topologies into -dir")
		dir      = flag.String("dir", ".", "output directory for -family")
	)
	flag.Parse()

	cfg := topology.Config{
		Switches:            *switches,
		PortsPerSwitch:      *ports,
		Nodes:               *nodes,
		ExtraLinksPerSwitch: *extra,
	}
	if *family > 0 {
		fam, err := topology.GenerateFamily(cfg, *family, *seed)
		if err != nil {
			fatal(err)
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal(err)
		}
		for i, t := range fam {
			name := filepath.Join(*dir, fmt.Sprintf("topo_%03d.topo", i))
			f, err := os.Create(name)
			if err != nil {
				fatal(err)
			}
			if err := topology.WriteText(f, t); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d links)\n", name, len(t.Links))
		}
		return
	}
	t, err := topology.Generate(cfg, rng.New(*seed))
	if err != nil {
		fatal(err)
	}
	if err := topology.WriteText(os.Stdout, t); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topogen:", err)
	os.Exit(1)
}
