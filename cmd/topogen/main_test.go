package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcastsim/internal/topology"
)

// TestGenerateRoundTrip smokes the single-topology path: generate, parse
// the emitted text back, and check the reload matches the original.
func TestGenerateRoundTrip(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-switches", "8", "-ports", "8", "-nodes", "32", "-seed", "7"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	topo, err := topology.ReadText(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("reload emitted topology: %v", err)
	}
	if topo.NumSwitches != 8 || topo.NumNodes != 32 {
		t.Fatalf("reloaded %d switches / %d nodes, want 8 / 32", topo.NumSwitches, topo.NumNodes)
	}
	var out2 bytes.Buffer
	if err := topology.WriteText(&out2, topo); err != nil {
		t.Fatal(err)
	}
	if out.String() != out2.String() {
		t.Fatal("serialize -> reload -> serialize is not a fixed point")
	}
}

// TestFamilyWritesFiles smokes the -family path into a temp directory.
func TestFamilyWritesFiles(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if err := run([]string{"-family", "3", "-seed", "1998", "-dir", dir}, &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i := 0; i < 3; i++ {
		name := filepath.Join(dir, "topo_00"+string(rune('0'+i))+".topo")
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("family member missing: %v", err)
		}
		if _, err := topology.ReadText(bytes.NewReader(data)); err != nil {
			t.Fatalf("family member %d unparseable: %v", i, err)
		}
	}
	if !strings.Contains(errb.String(), "wrote") {
		t.Fatalf("expected progress lines on stderr, got %q", errb.String())
	}
}

// TestBadFlags checks flag errors surface as errors, not os.Exit.
func TestBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-switches", "banana"}, &out, &errb); err == nil {
		t.Fatal("expected an error for a malformed flag")
	}
}
