// Command netviz inspects a topology: Graphviz DOT export and an up*/down*
// routing report (BFS levels, link orientations, per-port reachability
// strings — the switch state of the paper's §3.2.3).
//
// Usage:
//
//	topogen -seed 7 | netviz -dot > net.dot
//	netviz -in net.topo -routing
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "netviz:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("netviz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in      = fs.String("in", "-", "topology file in topogen text format ('-' = stdin)")
		dot     = fs.Bool("dot", false, "emit Graphviz DOT")
		routing = fs.Bool("routing", false, "emit the up*/down* routing report")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*dot && !*routing {
		*dot = true
	}

	r := stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	topo, err := topology.ReadText(r)
	if err != nil {
		return err
	}
	if *dot {
		if err := topology.WriteDOT(stdout, topo); err != nil {
			return err
		}
	}
	if *routing {
		rt, err := updown.New(topo)
		if err != nil {
			return err
		}
		report(stdout, topo, rt)
	}
	return nil
}

func report(w io.Writer, topo *topology.Topology, rt *updown.Routing) {
	fmt.Fprintf(w, "up*/down* routing report: %d switches, %d nodes, root = switch %d\n",
		topo.NumSwitches, topo.NumNodes, rt.Root)
	for s := 0; s < topo.NumSwitches; s++ {
		sw := topology.SwitchID(s)
		fmt.Fprintf(w, "switch %d (level %d", s, rt.Level[s])
		if rt.Parent[s] >= 0 {
			fmt.Fprintf(w, ", parent %d", rt.Parent[s])
		}
		fmt.Fprintln(w, ")")
		for p := 0; p < topo.PortsPerSwitch; p++ {
			e := topo.Conn[s][p]
			switch e.Kind {
			case topology.ToSwitch:
				fmt.Fprintf(w, "  port %d -> switch %d [%s]", p, e.Switch, rt.Dirs[s][p])
				if rt.Dirs[s][p] == updown.DirDown {
					fmt.Fprintf(w, " reach=%s", rt.DownReach[s][p])
				}
				fmt.Fprintln(w)
			case topology.ToNode:
				fmt.Fprintf(w, "  port %d -> node %d\n", p, e.Node)
			}
		}
		fmt.Fprintf(w, "  covers %d/%d nodes without climbing\n", rt.Cover[sw].Count(), topo.NumNodes)
	}
}
