// Command netviz inspects a topology: Graphviz DOT export and an up*/down*
// routing report (BFS levels, link orientations, per-port reachability
// strings — the switch state of the paper's §3.2.3).
//
// Usage:
//
//	topogen -seed 7 | netviz -dot > net.dot
//	netviz -in net.topo -routing
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

func main() {
	var (
		in      = flag.String("in", "-", "topology file in topogen text format ('-' = stdin)")
		dot     = flag.Bool("dot", false, "emit Graphviz DOT")
		routing = flag.Bool("routing", false, "emit the up*/down* routing report")
	)
	flag.Parse()
	if !*dot && !*routing {
		*dot = true
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	topo, err := topology.ReadText(r)
	if err != nil {
		fatal(err)
	}
	if *dot {
		if err := topology.WriteDOT(os.Stdout, topo); err != nil {
			fatal(err)
		}
	}
	if *routing {
		rt, err := updown.New(topo)
		if err != nil {
			fatal(err)
		}
		report(topo, rt)
	}
}

func report(topo *topology.Topology, rt *updown.Routing) {
	fmt.Printf("up*/down* routing report: %d switches, %d nodes, root = switch %d\n",
		topo.NumSwitches, topo.NumNodes, rt.Root)
	for s := 0; s < topo.NumSwitches; s++ {
		sw := topology.SwitchID(s)
		fmt.Printf("switch %d (level %d", s, rt.Level[s])
		if rt.Parent[s] >= 0 {
			fmt.Printf(", parent %d", rt.Parent[s])
		}
		fmt.Println(")")
		for p := 0; p < topo.PortsPerSwitch; p++ {
			e := topo.Conn[s][p]
			switch e.Kind {
			case topology.ToSwitch:
				fmt.Printf("  port %d -> switch %d [%s]", p, e.Switch, rt.Dirs[s][p])
				if rt.Dirs[s][p] == updown.DirDown {
					fmt.Printf(" reach=%s", rt.DownReach[s][p])
				}
				fmt.Println()
			case topology.ToNode:
				fmt.Printf("  port %d -> node %d\n", p, e.Node)
			}
		}
		fmt.Printf("  covers %d/%d nodes without climbing\n", rt.Cover[sw].Count(), topo.NumNodes)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netviz:", err)
	os.Exit(1)
}
