package main

import (
	"bytes"
	"strings"
	"testing"

	"mcastsim/internal/rng"
	"mcastsim/internal/topology"
)

// fixtureText renders an 8-switch generated topology in interchange format.
func fixtureText(t *testing.T) string {
	t.Helper()
	cfg := topology.Config{Switches: 8, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1}
	topo, err := topology.Generate(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := topology.WriteText(&buf, topo); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestDOTExport smokes the default DOT path on stdin input.
func TestDOTExport(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, strings.NewReader(fixtureText(t)), &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	dot := out.String()
	if len(dot) == 0 {
		t.Fatal("empty DOT output")
	}
	if !strings.Contains(dot, "graph") || !strings.Contains(dot, "--") {
		t.Fatalf("output does not look like Graphviz DOT:\n%s", dot)
	}
}

// TestRoutingReport smokes the -routing report: it must mention every
// switch and carry the up*/down* header.
func TestRoutingReport(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-routing"}, strings.NewReader(fixtureText(t)), &out, &errb); err != nil {
		t.Fatalf("run: %v", err)
	}
	rep := out.String()
	if !strings.Contains(rep, "up*/down* routing report: 8 switches, 32 nodes") {
		t.Fatalf("unexpected report header:\n%s", rep)
	}
	for i := 0; i < 8; i++ {
		if !strings.Contains(rep, "switch "+string(rune('0'+i))+" (level ") {
			t.Fatalf("report missing switch %d:\n%s", i, rep)
		}
	}
}

// TestBadInput checks parse failures surface as errors.
func TestBadInput(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(nil, strings.NewReader("not a topology\n"), &out, &errb); err == nil {
		t.Fatal("expected an error for malformed input")
	}
}
