// Package mcastsim_test holds the benchmark harness: one benchmark per
// paper figure/table (DESIGN.md §4 maps them), sized so `go test -bench=.`
// regenerates every result's shape in minutes. Paper-scale runs are the
// business of `cmd/mcastsim -full`; these benches fix the workloads and
// report the measured mean multicast latency per scheme as a custom
// metric (cycles/mcast), so regressions in either speed or *simulated
// behavior* are visible.
package mcastsim_test

import (
	"fmt"
	"runtime"
	"testing"

	"mcastsim/internal/benchcase"
	"mcastsim/internal/bitset"
	"mcastsim/internal/collective"
	"mcastsim/internal/event"
	"mcastsim/internal/experiment"
	"mcastsim/internal/mcast"
	"mcastsim/internal/mcast/binomial"
	"mcastsim/internal/mcast/kbinomial"
	"mcastsim/internal/mcast/pathworm"
	"mcastsim/internal/mcast/treeworm"
	"mcastsim/internal/metrics"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/traffic"
	"mcastsim/internal/updown"
	"mcastsim/internal/wire"
)

// benchFamily builds a small routed family once per config.
func benchFamily(b *testing.B, cfg topology.Config, count int, seed uint64) []*updown.Routing {
	b.Helper()
	topos, err := topology.GenerateFamily(cfg, count, seed)
	if err != nil {
		b.Fatal(err)
	}
	rts := make([]*updown.Routing, len(topos))
	for i, t := range topos {
		rt, err := updown.New(t)
		if err != nil {
			b.Fatal(err)
		}
		rts[i] = rt
	}
	return rts
}

func schemes() []mcast.Scheme {
	return []mcast.Scheme{kbinomial.New(), treeworm.New(), pathworm.New()}
}

// singleBench measures isolated-multicast latency for one scheme/config
// and reports it as a metric.
func singleBench(b *testing.B, rts []*updown.Routing, sch mcast.Scheme, p sim.Params, degree, flits int) {
	b.Helper()
	var lats []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt := rts[i%len(rts)]
		got, err := traffic.Run(rt, traffic.Workload{Scheme: sch, Params: p,
			Degree: degree, MsgFlits: flits, Seed: uint64(i)}, traffic.WithProbes(4))
		if err != nil {
			b.Fatal(err)
		}
		lats = append(lats, got.Latencies...)
	}
	b.ReportMetric(metrics.Mean(lats), "cycles/mcast")
}

// loadBench measures one open-loop load point for one scheme/config.
func loadBench(b *testing.B, rts []*updown.Routing, sch mcast.Scheme, p sim.Params, degree, flits int, load float64) {
	b.Helper()
	var lats []float64
	sat := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt := rts[i%len(rts)]
		r, err := traffic.Run(rt, traffic.Workload{Scheme: sch, Params: p,
			Degree: degree, MsgFlits: flits, Seed: uint64(i) * 13},
			traffic.WithLoad(traffic.LoadSpec{EffectiveLoad: load,
				Warmup: 5_000, Measure: 30_000, Drain: 25_000}))
		if err != nil {
			b.Fatal(err)
		}
		res := r.Load
		if res.Saturated {
			sat++
		}
		if res.Latency.Count > 0 {
			lats = append(lats, res.Latency.Mean)
		}
	}
	b.ReportMetric(metrics.Mean(lats), "cycles/mcast")
	b.ReportMetric(float64(sat)/float64(b.N), "sat-fraction")
}

// --- Figure 6: single multicast vs R = o_h/o_ni ---

func BenchmarkFig6_R(b *testing.B) {
	rts := benchFamily(b, topology.DefaultConfig(), 3, 1998)
	for _, r := range []float64{0.5, 1, 2, 4} {
		p := sim.DefaultParams().WithR(r)
		for _, sch := range schemes() {
			b.Run(fmt.Sprintf("R=%.1f/%s", r, sch.Name()), func(b *testing.B) {
				singleBench(b, rts, sch, p, 16, 128)
			})
		}
	}
}

// --- Figure 7: single multicast vs switch count ---

func BenchmarkFig7_Switches(b *testing.B) {
	for _, sw := range []int{8, 16, 32} {
		cfg := topology.DefaultConfig()
		cfg.Switches = sw
		rts := benchFamily(b, cfg, 3, 1998+uint64(sw))
		for _, sch := range schemes() {
			b.Run(fmt.Sprintf("switches=%d/%s", sw, sch.Name()), func(b *testing.B) {
				singleBench(b, rts, sch, sim.DefaultParams(), 16, 128)
			})
		}
	}
}

// --- Figure 8: single multicast vs message length ---

func BenchmarkFig8_MessageLength(b *testing.B) {
	rts := benchFamily(b, topology.DefaultConfig(), 3, 1998)
	for _, flits := range []int{128, 256, 512, 1024} {
		for _, sch := range schemes() {
			b.Run(fmt.Sprintf("flits=%d/%s", flits, sch.Name()), func(b *testing.B) {
				singleBench(b, rts, sch, sim.DefaultParams(), 16, flits)
			})
		}
	}
}

// --- Figure 9: latency under load vs R (8- and 16-way) ---

func BenchmarkFig9_LoadVsR(b *testing.B) {
	rts := benchFamily(b, topology.DefaultConfig(), 2, 1998)
	for _, r := range []float64{0.5, 1, 4} {
		p := sim.DefaultParams().WithR(r)
		for _, degree := range []int{8, 16} {
			for _, sch := range schemes() {
				b.Run(fmt.Sprintf("R=%.1f/%dway/%s", r, degree, sch.Name()), func(b *testing.B) {
					loadBench(b, rts, sch, p, degree, 128, 0.2)
				})
			}
		}
	}
}

// --- Figure 10: latency under load vs switch count ---

func BenchmarkFig10_LoadVsSwitches(b *testing.B) {
	for _, sw := range []int{8, 16, 32} {
		cfg := topology.DefaultConfig()
		cfg.Switches = sw
		rts := benchFamily(b, cfg, 2, 1998+uint64(sw))
		for _, degree := range []int{8, 16} {
			for _, sch := range schemes() {
				b.Run(fmt.Sprintf("switches=%d/%dway/%s", sw, degree, sch.Name()), func(b *testing.B) {
					loadBench(b, rts, sch, sim.DefaultParams(), degree, 128, 0.2)
				})
			}
		}
	}
}

// --- Figure 11: latency under load vs message length ---

func BenchmarkFig11_LoadVsMessageLength(b *testing.B) {
	rts := benchFamily(b, topology.DefaultConfig(), 2, 1998)
	for _, flits := range []int{128, 512, 1024} {
		for _, degree := range []int{8, 16} {
			for _, sch := range schemes() {
				b.Run(fmt.Sprintf("flits=%d/%dway/%s", flits, degree, sch.Name()), func(b *testing.B) {
					loadBench(b, rts, sch, sim.DefaultParams(), degree, flits, 0.15)
				})
			}
		}
	}
}

// --- §4.2 text experiments ---

func BenchmarkExtOh_HostOverhead(b *testing.B) {
	rts := benchFamily(b, topology.DefaultConfig(), 3, 1998)
	for _, oh := range []event.Time{50, 100, 200, 400} {
		p := sim.DefaultParams()
		p.OHostSend, p.OHostRecv = oh, oh
		for _, sch := range schemes() {
			b.Run(fmt.Sprintf("oh=%d/%s", oh, sch.Name()), func(b *testing.B) {
				singleBench(b, rts, sch, p, 16, 128)
			})
		}
	}
}

func BenchmarkExtSize_SystemSize(b *testing.B) {
	for _, nodes := range []int{16, 32, 64, 128} {
		cfg := topology.DefaultConfig()
		cfg.Nodes = nodes
		cfg.Switches = nodes / 4
		rts := benchFamily(b, cfg, 2, 1998+uint64(nodes))
		degree := 16
		if degree >= nodes {
			degree = nodes / 2
		}
		for _, sch := range schemes() {
			b.Run(fmt.Sprintf("nodes=%d/%s", nodes, sch.Name()), func(b *testing.B) {
				singleBench(b, rts, sch, sim.DefaultParams(), degree, 128)
			})
		}
	}
}

func BenchmarkExtPkt_PacketLength(b *testing.B) {
	rts := benchFamily(b, topology.DefaultConfig(), 3, 1998)
	for _, pkt := range []int{32, 64, 128, 256} {
		p := sim.DefaultParams()
		p.PacketFlits = pkt
		for _, sch := range schemes() {
			b.Run(fmt.Sprintf("pkt=%d/%s", pkt, sch.Name()), func(b *testing.B) {
				singleBench(b, rts, sch, p, 16, 1024)
			})
		}
	}
}

// --- §4.3 preamble: unicast saturation bound ---

func BenchmarkUnisat_UnicastLoad(b *testing.B) {
	rts := benchFamily(b, topology.DefaultConfig(), 2, 1998)
	for _, load := range []float64{0.3, 0.5, 0.7} {
		b.Run(fmt.Sprintf("load=%.1f", load), func(b *testing.B) {
			loadBench(b, rts, unicastScheme{}, sim.DefaultParams(), 1, 128, load)
		})
	}
}

// unicastScheme mirrors the experiment package's degree-1 adapter.
type unicastScheme struct{}

func (unicastScheme) Name() string { return "unicast" }

func (unicastScheme) Plan(rt *updown.Routing, _ sim.Params, src topology.NodeID, dests []topology.NodeID, _ int) (*sim.Plan, error) {
	specs := make([]sim.WormSpec, len(dests))
	for i, d := range dests {
		specs[i] = sim.WormSpec{Kind: sim.WormUnicast, Dest: d}
	}
	return &sim.Plan{Source: src, Dests: dests,
		HostSends: map[topology.NodeID][]sim.WormSpec{src: specs}}, nil
}

// --- §3.1 baseline and ablations ---

func BenchmarkBaseline_Binomial(b *testing.B) {
	rts := benchFamily(b, topology.DefaultConfig(), 3, 1998)
	for _, degree := range []int{4, 8, 16, 31} {
		b.Run(fmt.Sprintf("%dway", degree), func(b *testing.B) {
			singleBench(b, rts, binomial.New(), sim.DefaultParams(), degree, 128)
		})
	}
}

func BenchmarkAblation_TreeEarlyBranch(b *testing.B) {
	rts := benchFamily(b, topology.DefaultConfig(), 3, 1998)
	for _, early := range []bool{false, true} {
		p := sim.DefaultParams()
		p.EarlyTreeBranch = early
		b.Run(fmt.Sprintf("early=%v", early), func(b *testing.B) {
			singleBench(b, rts, treeworm.New(), p, 16, 128)
		})
	}
}

func BenchmarkAblation_PathVariants(b *testing.B) {
	rts := benchFamily(b, topology.DefaultConfig(), 3, 1998)
	variants := map[string]mcast.Scheme{
		"lg":     pathworm.New(),
		"greedy": pathworm.Scheme{Greedy: true},
		"serial": pathworm.Scheme{SerialSchedule: true},
	}
	for name, sch := range variants {
		b.Run(name, func(b *testing.B) {
			singleBench(b, rts, sch, sim.DefaultParams(), 16, 128)
		})
	}
}

func BenchmarkAblation_BufferDepth(b *testing.B) {
	rts := benchFamily(b, topology.DefaultConfig(), 2, 1998)
	for _, buf := range []int{4, 16, 64} {
		p := sim.DefaultParams()
		p.BufferFlits = buf
		b.Run(fmt.Sprintf("buf=%d", buf), func(b *testing.B) {
			loadBench(b, rts, treeworm.New(), p, 8, 128, 0.2)
		})
	}
}

// --- parallel harness ---

// BenchmarkSweepParallel runs the full Figure 9 sweep through the
// experiment harness at quick scale, serial vs one worker per CPU. The
// two sub-benchmarks produce byte-identical tables (see the experiment
// package's determinism tests); the ns/op ratio is the harness speedup.
// The per-CPU body is shared with `mcastsim -emit-bench` via benchcase.
func BenchmarkSweepParallel(b *testing.B) {
	cfg := experiment.Quick()
	cfg.Warmup, cfg.Measure, cfg.Drain = 5_000, 25_000, 20_000
	cfg.Loads = []float64{0.1, 0.3}
	cfg.LoadDegrees = []int{8}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		cfg := cfg
		cfg.Workers = workers
		b.Run(fmt.Sprintf("fig9/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiment.Fig9LoadVsR(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDrainLarge is the large-topology drain: 64 switches, 512
// hosts, mixed unicast/tree/path traffic driven to completion. It reports
// events/sec, the scheduler-core throughput metric tracked in
// BENCH_PR3.json (see internal/benchcase).
func BenchmarkDrainLarge(b *testing.B) {
	benchcase.DrainLarge(b)
}

// BenchmarkTreeStorm is the PR 4 tree-routing benchmark: 48 two-packet
// tree worms over 6 shared destination groups on a 768-switch network, so
// per-packet routing decisions dominate. Tracked in BENCH_PR4.json (see
// internal/benchcase).
func BenchmarkTreeStorm(b *testing.B) {
	benchcase.TreeStorm(b)
}

// BenchmarkShardScaling is the PR 8 sharded-engine family: the
// TreeStorm workload re-timed with 8-cycle links (so the conservative
// window amortizes the barrier) on 1 shard (serial engine), then 2 and
// 4 fast-mode shards. The 4-shard/1-shard events/sec ratio is the
// scaling metric tracked in BENCH_PR8.json (see internal/benchcase).
func BenchmarkShardScaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), benchcase.ShardScaling(shards))
	}
}

// BenchmarkHeaderEncode is the destination-coding benchmark from the
// scale sweep: flat vs interval header encoding of a 1056-destination
// rack-clustered set in a 101k-host universe (see internal/benchcase).
func BenchmarkHeaderEncode(b *testing.B) {
	benchcase.HeaderEncode(b)
}

// BenchmarkTopologyGen builds the scale sweep's L-tier fat-tree (1088
// switches, 101376 hosts) plus its up*/down* routing per op, guarding
// the O(N+S) generation and routing-construction paths (see
// internal/benchcase).
func BenchmarkTopologyGen(b *testing.B) {
	benchcase.TopologyGen(b)
}

// BenchmarkSparseStorm is the PR 9 sparse-representation storm: 12
// short interval-coded tree worms over 3 shared ~1050-destination rack
// sets on the 101k-host fat-tree, where RepAuto selects run-coded
// destination sets (see internal/benchcase).
func BenchmarkSparseStorm(b *testing.B) {
	benchcase.SparseStorm(b)
}

// BenchmarkScaleSim is the PR 9 scale-tier probe: one full-payload
// rack-clustered multicast flit-simulated on the 101k-host fat-tree
// under the 4-shard serial-equivalence engine, the same configuration
// as the scale sweep's -sim-l smoke (see internal/benchcase).
func BenchmarkScaleSim(b *testing.B) {
	benchcase.ScaleSim(b)
}

// --- simulator micro-benchmarks ---

// BenchmarkSimCore measures raw simulator throughput: one isolated 16-way
// tree multicast per iteration (thousands of flit events each).
func BenchmarkSimCore_TreeMulticast(b *testing.B) {
	rts := benchFamily(b, topology.DefaultConfig(), 1, 1)
	r := rng.New(1)
	dests := make([]topology.NodeID, 16)
	for i, v := range r.Sample(31, 16) {
		dests[i] = topology.NodeID(v + 1)
	}
	plan, err := treeworm.New().Plan(rts[0], sim.DefaultParams(), 0, dests, 128)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := sim.New(rts[0], sim.DefaultParams(), uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := n.RunSingle(plan, 128); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanners measures plan construction cost per scheme (it sits on
// the load generator's fast path).
func BenchmarkPlanners(b *testing.B) {
	rts := benchFamily(b, topology.DefaultConfig(), 1, 1)
	r := rng.New(1)
	dests := make([]topology.NodeID, 16)
	for i, v := range r.Sample(31, 16) {
		dests[i] = topology.NodeID(v + 1)
	}
	for _, sch := range append(schemes(), binomial.New()) {
		b.Run(sch.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sch.Plan(rts[0], sim.DefaultParams(), 0, dests, 128); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- wire codec micro-benchmarks ---

func BenchmarkWireCodecs(b *testing.B) {
	topo, err := topology.Generate(topology.DefaultConfig(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	rt, err := updown.New(topo)
	if err != nil {
		b.Fatal(err)
	}
	z := wire.Sizes{Nodes: topo.NumNodes, Switches: topo.NumSwitches, PortsPerSwitch: topo.PortsPerSwitch}
	set := bitset.FromIndices(topo.NumNodes, []int{1, 5, 9, 13, 17, 21, 25, 29})
	r := rng.New(2)
	picks := r.Sample(topo.NumNodes, 17)
	src := topology.NodeID(picks[0])
	dests := make([]topology.NodeID, 16)
	for i, v := range picks[1:] {
		dests[i] = topology.NodeID(v)
	}
	res, err := pathworm.New().Cover(rt, src, dests)
	if err != nil {
		b.Fatal(err)
	}
	var segs []sim.PathSeg
	for _, specs := range res.Sends {
		for _, w := range specs {
			if len(w.Path) > len(segs) {
				segs = w.Path
			}
		}
	}

	b.Run("tree-encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wire.EncodeTree(z, set); err != nil {
				b.Fatal(err)
			}
		}
	})
	treeHdr, _ := wire.EncodeTree(z, set)
	b.Run("tree-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wire.DecodeTree(z, treeHdr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("path-encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wire.EncodePath(topo, segs); err != nil {
				b.Fatal(err)
			}
		}
	})
	pathHdr, _ := wire.EncodePath(topo, segs)
	b.Run("path-decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := wire.DecodePath(topo, pathHdr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- collective benchmarks (extension) ---

func BenchmarkCollectives(b *testing.B) {
	rts := benchFamily(b, topology.DefaultConfig(), 1, 1)
	for _, sch := range schemes() {
		b.Run("barrier/"+sch.Name(), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := collective.Barrier(rts[0], collective.Config{
					Scheme: sch, Params: sim.DefaultParams(), Root: 0, Flits: 16, Seed: uint64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				last = float64(res.Latency)
			}
			b.ReportMetric(last, "cycles/barrier")
		})
	}
}
