package event

// Snapshot support: the engine's pending schedule is enumerable in
// realized dispatch order, and an empty engine can be repositioned to a
// restored clock. The sim layer's Checkpoint/Restore builds on exactly
// these two operations — it serializes the enumerated records (typed
// kinds only; the actor pointers themselves are translated by the
// owner of the state they point into) and re-posts them after moving a
// freshly built engine to the snapshot time.

import "fmt"

// PendingEvent is one scheduled event as enumerated by SnapshotPending:
// the typed record {at, kind, actor, arg} plus the lane that owns it in
// a sharded engine (always 0 for a plain Queue). Events appear in
// realized dispatch order — the exact order Step would run them — which
// is the only ordering property the engine guarantees to persist across
// a drain/re-post cycle (absolute sequence numbers are internal and
// renumbered freely).
type PendingEvent struct {
	At    Time
	Kind  Kind
	Actor any
	Arg   int64
	Lane  int32
}

// SnapshotPending enumerates every pending event in realized dispatch
// order, leaving the schedule observably unchanged. Internally the
// queue is drained and re-posted (the SetBackend migration path), so
// sequence numbers are renumbered; the realized total order — all any
// caller can observe — is preserved exactly.
func (q *Queue) SnapshotPending() []PendingEvent {
	moved := q.drainRealized()
	q.reinsert(moved)
	if len(moved) == 0 {
		return nil
	}
	out := make([]PendingEvent, len(moved))
	for i, e := range moved {
		out[i] = PendingEvent{At: e.at, Kind: e.kind, Actor: e.actor, Arg: e.arg}
	}
	return out
}

// ResetTo repositions an empty queue for a restored run: the clock
// jumps to t and the processed counter to processed, after which the
// restorer re-posts the snapshot's pending events in their enumerated
// order. Panics if events are pending — ResetTo is a restore primitive,
// not a way to discard a schedule.
func (q *Queue) ResetTo(t Time, processed uint64) {
	if q.Len() != 0 {
		panic(fmt.Sprintf("event: ResetTo with %d pending events", q.Len()))
	}
	q.now = t
	q.ran = processed
	if q.buckets != nil {
		q.cursor = t
	}
}

// SnapshotPending enumerates every pending event across all lanes in
// realized dispatch order — the global (at, seq) merge order Step
// realizes — tagging each with its lane. Like the Queue version it
// drains and re-posts, renumbering the global sequence counter while
// preserving the realized order and each entry's lane.
func (s *ShardSet) SnapshotPending() []PendingEvent {
	var (
		moved []entry
		homes []int32
	)
	for {
		best := -1
		for i := range s.lanes {
			h := s.lanes[i].heap
			if len(h) == 0 {
				continue
			}
			if best < 0 || entryLess(&h[0], &s.lanes[best].heap[0]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		moved = append(moved, heapPop(&s.lanes[best].heap))
		homes = append(homes, int32(best))
	}
	if len(moved) == 0 {
		return nil
	}
	out := make([]PendingEvent, len(moved))
	for i, e := range moved {
		e.seq = s.gseq
		s.gseq++
		heapPush(&s.lanes[homes[i]].heap, e)
		out[i] = PendingEvent{At: e.at, Kind: e.kind, Actor: e.actor, Arg: e.arg, Lane: homes[i]}
	}
	return out
}

// ResetTo repositions an empty sharded engine for a restored run,
// mirroring Queue.ResetTo. The synchronization window reopens at the
// first dispatched event, so window statistics restart from the
// restore point.
func (s *ShardSet) ResetTo(t Time, processed uint64) {
	if s.Len() != 0 {
		panic(fmt.Sprintf("event: ResetTo with %d pending events", s.Len()))
	}
	s.now = t
	s.ran = processed
	s.winEnd = 0
}
