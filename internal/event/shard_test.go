package event

import (
	"errors"
	"testing"

	"mcastsim/internal/rng"
)

// rec is the typed-event recorder the shard tests share: each dispatch
// appends the actor's tag so full execution orders can be diffed.
type rec struct {
	order []int64
}

const kindRec Kind = 1

func (r *rec) register(q interface{ Register(Kind, Handler) }) {
	q.Register(kindRec, func(actor any, arg int64) { r.order = append(r.order, arg) })
}

// TestShardSetMatchesSingleQueue is the serial-equivalence property: a
// ShardSet dispatches a random workload in exactly the (at, seq) order a
// single queue would, for every lane assignment. Lane choice is derived
// from the post index so each trial spreads posts across all lanes.
func TestShardSetMatchesSingleQueue(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 4, 7} {
		src := rng.New(42)
		var q Queue
		qr := &rec{}
		qr.register(&q)
		s := NewShardSet(shards, 5)
		sr := &rec{}
		sr.register(s)

		for i := int64(0); i < 500; i++ {
			at := Time(src.Intn(97))
			q.Post(at, kindRec, nil, i)
			s.Lane(int(i) % shards).Post(at, kindRec, nil, i)
		}
		for q.Step() {
		}
		for s.Step() {
		}
		if len(qr.order) != len(sr.order) {
			t.Fatalf("shards=%d: ran %d events, single queue ran %d", shards, len(sr.order), len(qr.order))
		}
		for i := range qr.order {
			if qr.order[i] != sr.order[i] {
				t.Fatalf("shards=%d: order diverged at event %d: shard set %d, single queue %d",
					shards, i, sr.order[i], qr.order[i])
			}
		}
		if s.Now() != q.Now() {
			t.Fatalf("shards=%d: clock %d, single queue %d", shards, s.Now(), q.Now())
		}
	}
}

// TestShardSetCascadeMatchesSingleQueue extends the equivalence property
// across window edges: handlers post follow-up events into OTHER lanes
// with at least the window of lookahead, the exact shape of the hot
// path's cross-shard flit/credit exchange. Global (at, seq) order must
// still match a single queue running the identical cascade.
func TestShardSetCascadeMatchesSingleQueue(t *testing.T) {
	const window = 4
	const seeds = 120

	run := func(shards int) []int64 {
		r := &rec{}
		var next int64 = 1000
		if shards == 0 {
			var q Queue
			q.Register(kindRec, func(actor any, arg int64) {
				r.order = append(r.order, arg)
				if arg < 400 { // three generations of follow-ups
					q.Post(q.Now()+window+Time(arg%3), kindRec, nil, next)
					next++
				}
			})
			for i := int64(0); i < seeds; i++ {
				q.Post(Time(i%13), kindRec, nil, i)
			}
			for q.Step() {
			}
			return r.order
		}
		s := NewShardSet(shards, window)
		s.Register(kindRec, func(actor any, arg int64) {
			r.order = append(r.order, arg)
			if arg < 400 {
				// Post into a rotating "other" lane: every follow-up is a
				// boundary crossing with exactly the conservative lookahead.
				lane := int(arg+1) % shards
				s.Lane(lane).Post(s.Now()+window+Time(arg%3), kindRec, nil, next)
				next++
			}
		})
		for i := int64(0); i < seeds; i++ {
			s.Lane(int(i) % shards).Post(Time(i%13), kindRec, nil, i)
		}
		for s.Step() {
		}
		if st := s.Stats(); st.Violations != 0 {
			t.Fatalf("shards=%d: %d lookahead violations in a conforming cascade", shards, st.Violations)
		} else if st.Crossings == 0 {
			t.Fatalf("shards=%d: cascade never crossed a shard boundary — property is vacuous", shards)
		}
		return r.order
	}

	want := run(0)
	for _, shards := range []int{2, 3, 5} {
		got := run(shards)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: ran %d events, single queue ran %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: order diverged at event %d: got %d want %d", shards, i, got[i], want[i])
			}
		}
	}
}

// TestShardSetViolationAccounting pins the window bookkeeping: a
// cross-lane post timestamped inside the open window counts as a
// violation; one at or past the boundary counts as a clean crossing.
func TestShardSetViolationAccounting(t *testing.T) {
	s := NewShardSet(2, 10)
	s.Register(kindRec, func(actor any, arg int64) {
		switch arg {
		case 0: // window is [0, 10): t=5 is inside it — a violation.
			s.Lane(1).Post(5, kindRec, nil, 1)
		case 1:
			// Executing at t=5 re-opens the window as [5, 15): t=15 is
			// exactly on the boundary — clean.
			s.Lane(0).Post(15, kindRec, nil, 2)
		}
	})
	s.Lane(0).Post(0, kindRec, nil, 0)
	for s.Step() {
	}
	st := s.Stats()
	if st.Crossings != 2 {
		t.Fatalf("crossings = %d, want 2", st.Crossings)
	}
	if st.Violations != 1 {
		t.Fatalf("violations = %d, want 1", st.Violations)
	}
}

// TestQueueNextTime covers the window coordinator's peek on both
// backends, including the far-heap overflow path of the calendar.
func TestQueueNextTime(t *testing.T) {
	for _, b := range []Backend{BackendCalendar, BackendHeap} {
		var q Queue
		q.SetBackend(b)
		if _, ok := q.NextTime(); ok {
			t.Fatalf("backend %d: NextTime on empty queue reported an event", b)
		}
		q.Register(kindRec, func(any, int64) {})
		q.Post(100000, kindRec, nil, 0) // far future: overflow heap on the calendar
		q.Post(7, kindRec, nil, 0)
		if at, ok := q.NextTime(); !ok || at != 7 {
			t.Fatalf("backend %d: NextTime = %d,%v, want 7,true", b, at, ok)
		}
		q.Step()
		if at, ok := q.NextTime(); !ok || at != 100000 {
			t.Fatalf("backend %d: NextTime after step = %d,%v, want 100000,true", b, at, ok)
		}
	}
}

// TestFastSetWindowExchange drives a two-shard ping-pong through the
// mailbox path: each handler mails the other shard one window ahead.
// The run must terminate with every event delivered in timestamp order
// per shard and the crossing counter equal to the mails sent.
func TestFastSetWindowExchange(t *testing.T) {
	const window = 3
	f := NewFastSet(2, window)
	var got [2][]Time
	for i := 0; i < 2; i++ {
		i := i
		f.Queue(i).Register(kindRec, func(actor any, arg int64) {
			q := f.Queue(i)
			got[i] = append(got[i], q.Now())
			if arg < 5 {
				f.Mail(int32(i), int32(1-i), q.Now()+window, kindRec, nil, arg+1)
			}
		})
	}
	f.Queue(0).Post(0, kindRec, nil, 0)
	f.Start()
	defer f.Stop()
	for {
		_, ran, err := f.Window()
		if err != nil {
			t.Fatal(err)
		}
		if !ran {
			break
		}
	}
	// arg 0,2,4 run on shard 0 at t=0,6,12; arg 1,3,5 on shard 1 at 3,9,15.
	wantTimes := [2][]Time{{0, 6, 12}, {3, 9, 15}}
	for i := range got {
		if len(got[i]) != len(wantTimes[i]) {
			t.Fatalf("shard %d ran %d events, want %d (%v)", i, len(got[i]), len(wantTimes[i]), got[i])
		}
		for j := range got[i] {
			if got[i][j] != wantTimes[i][j] {
				t.Fatalf("shard %d event %d at t=%d, want %d", i, j, got[i][j], wantTimes[i][j])
			}
		}
	}
	if st := f.Stats(); st.Crossings != 5 {
		t.Fatalf("crossings = %d, want 5", st.Crossings)
	}
	if f.Processed() != 6 {
		t.Fatalf("processed = %d, want 6", f.Processed())
	}
}

// TestFastSetFlushOrder pins the boundary merge order: entries mailed to
// one destination during one window are delivered in (at, srcShard,
// srcPostOrder) order, so equal-timestamp events from a lower source
// shard always execute first and one source's posts keep their order.
func TestFastSetFlushOrder(t *testing.T) {
	f := NewFastSet(3, 5)
	r := &rec{}
	for i := 0; i < 3; i++ {
		r.register(f.Queue(i))
	}
	f.Queue(1).Register(kindRec, func(actor any, arg int64) {
		r.order = append(r.order, arg)
		if arg != 0 {
			return
		}
		// Shard 1's window [0,5) mails shard 0 four entries; shard 2 is
		// idle, so flush order within dst 0 is decided by (at, src, post
		// order) alone.
		f.Mail(1, 0, 9, kindRec, nil, 101)
		f.Mail(1, 0, 5, kindRec, nil, 102)
		f.Mail(1, 0, 9, kindRec, nil, 103)
		f.Mail(2, 0, 9, kindRec, nil, 104) // lower at ties: src 1 entries first
	})
	f.Queue(1).Post(0, kindRec, nil, 0)
	f.Start()
	defer f.Stop()
	for {
		_, ran, err := f.Window()
		if err != nil {
			t.Fatal(err)
		}
		if !ran {
			break
		}
	}
	want := []int64{0, 102, 101, 103, 104}
	if len(r.order) != len(want) {
		t.Fatalf("ran %v, want %v", r.order, want)
	}
	for i := range want {
		if r.order[i] != want[i] {
			t.Fatalf("flush order %v, want %v", r.order, want)
		}
	}
}

// TestFastSetLookaheadError proves the conservative contract is enforced,
// not assumed: a mailbox entry timestamped inside the window that mailed
// it surfaces as a typed *LookaheadError from Window, never a silent
// late delivery.
func TestFastSetLookaheadError(t *testing.T) {
	f := NewFastSet(2, 10)
	f.Queue(0).Register(kindRec, func(actor any, arg int64) {
		f.Mail(0, 1, f.Queue(0).Now()+3, kindRec, nil, 0) // 3 < window 10
	})
	f.Queue(1).Register(kindRec, func(any, int64) {})
	f.Queue(0).Post(0, kindRec, nil, 0)
	f.Start()
	defer f.Stop()
	_, _, err := f.Window()
	var le *LookaheadError
	if !errors.As(err, &le) {
		t.Fatalf("Window returned %v, want *LookaheadError", err)
	}
	if le.Src != 0 || le.Dst != 1 || le.At != 3 {
		t.Fatalf("LookaheadError = %+v, want src 0 dst 1 at 3", le)
	}
}

// TestFastSetSkipsIdleStretches: the coordinator opens each window at the
// globally earliest pending timestamp, so a sparse schedule takes one
// window per event cluster instead of walking empty windows.
func TestFastSetSkipsIdleStretches(t *testing.T) {
	f := NewFastSet(2, 2)
	r := &rec{}
	r.register(f.Queue(0))
	r.register(f.Queue(1))
	f.Queue(0).Post(0, kindRec, nil, 0)
	f.Queue(1).Post(1_000_000, kindRec, nil, 1)
	f.Start()
	defer f.Stop()
	windows := 0
	for {
		_, ran, err := f.Window()
		if err != nil {
			t.Fatal(err)
		}
		if !ran {
			break
		}
		windows++
	}
	if windows != 2 {
		t.Fatalf("took %d windows for 2 isolated events, want 2", windows)
	}
	if len(r.order) != 2 {
		t.Fatalf("ran %d events, want 2", len(r.order))
	}
}

// TestBackendShardErrorMessage pins the typed refusal carrying enough
// context to act on.
func TestBackendShardErrorMessage(t *testing.T) {
	err := &BackendShardError{Backend: BackendHeap, Shards: 4}
	if err.Error() == "" {
		t.Fatal("empty error message")
	}
}
