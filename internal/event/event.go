// Package event provides the discrete-event core of the simulator: a
// monotonic clock and a deterministic schedule of typed event records.
//
// Time is measured in integer cycles (the paper's 10 ns switch cycle).
// Events scheduled for the same cycle run in scheduling order (FIFO), which
// keeps the simulator deterministic without imposing artificial sub-cycle
// ordering on unrelated components.
//
// # Typed events
//
// An event is a small fixed-size record {at, seq, kind, actor, arg}
// dispatched through a per-queue jump table (Register/Post/PostAfter).
// Storing a pointer-shaped actor in the record instead of capturing it in
// a closure removes the per-event heap allocation that dominated the old
// engine's profile; the steady-state flit pipeline posts and dispatches
// with zero allocations.
//
// Typed-kind registration (Register + Post/PostAfter) is the public
// scheduling API. KindClosure — an event whose actor is a func() value —
// remains as the carrier for test-only closure scheduling (see the
// eventtest subpackage); production code defines a Kind per event type
// so the record stays enumerable, which is what the snapshot layer
// (SnapshotPending/ResetTo, sim.Network.Checkpoint) relies on.
//
// # Scheduling structure
//
// The default backend is a hierarchical calendar queue: a power-of-two
// ring of per-cycle FIFO buckets covering the near-future window
// [cursor, cursor+ringSize), plus a binary-heap overflow for events
// beyond the window. Posting within the window — which covers every
// link/routing/crossbar delay in the simulator — is O(1) append; far
// events (timeouts, fault injections, stall watchdogs) take the heap
// path and migrate into the ring, in (at, seq) order, exactly when their
// cycle enters the window, so FIFO-within-cycle is preserved end to end.
// SetBackend(BackendHeap) selects the legacy single binary heap ordered
// by (at, seq); both backends realize the same total order, which the
// equivalence tests in internal/sim exploit.
package event

import "fmt"

// Time is a simulation timestamp in cycles.
type Time int64

// maxTime is an unreachable timestamp used as "no limit".
const maxTime = Time(1) << 62

// Kind identifies an event type registered in the queue's jump table.
type Kind uint8

// KindClosure carries a legacy func() callback (the At/After shim).
const KindClosure Kind = 0

// MaxKinds bounds the jump table; kinds are small dense integers.
const MaxKinds = 32

// Handler executes one typed event. The actor is the pointer-shaped value
// given at post time (a buffer, a branch, a network); arg is a free
// integer payload (port index, epoch, message ID).
type Handler func(actor any, arg int64)

// Backend selects the queue's priority structure (see SetBackend).
type Backend uint8

const (
	// BackendCalendar is the calendar-queue scheduler (the default).
	BackendCalendar Backend = iota
	// BackendHeap is the legacy binary-heap scheduler.
	BackendHeap
)

// ringSize is the calendar window in cycles. Every pipeline delay in the
// simulator (link, routing, crossbar, DMA setup) is far below this, so
// steady-state posts are O(1) ring appends; only long timers overflow.
// Must be a power of two.
const ringSize = 1024

// shrinkCap is the capacity below which backing slices are never shrunk.
const shrinkCap = 64

// smallsMax bounds the displaced-small-slice pool (see Queue.smalls);
// 32 slices of at most shrinkCap entries is ~100 KB worst case.
const smallsMax = 32

// occEpoch is the occupancy high-water window, in drained cycles (see
// Queue.occCur). Shorter windows shrink faster after a burst; longer ones
// tolerate longer gaps between bursts without eviction churn.
const occEpoch = 256

// entry is one scheduled event in a heap (the far overflow or the legacy
// backend). 48 bytes; actor holds only pointer-shaped values (pointers,
// func values), so posting never boxes.
type entry struct {
	at    Time
	seq   uint64
	arg   int64
	actor any
	kind  Kind
}

// slot is one scheduled event within a calendar ring bucket. The bucket
// fixes the cycle and the position fixes the FIFO rank, so neither the
// timestamp nor a sequence number is stored: 32 bytes instead of the
// heap entry's 48, on the path that carries virtually every event.
type slot struct {
	actor any
	arg   int64
	kind  Kind
}

// bucket is one cycle's FIFO within the calendar ring. head avoids
// shifting on pop; the slice resets (and may shrink) once emptied.
type bucket struct {
	head  int
	items []slot
}

// Queue is a future-event list. The zero value is ready to use and runs
// the calendar backend.
type Queue struct {
	now     Time
	seq     uint64
	ran     uint64
	backend Backend
	table   [MaxKinds]Handler

	// Calendar backend: buckets[t&(ringSize-1)] holds events at cycle t
	// for t in [cursor, cursor+ringSize); pending counts ring entries.
	buckets []bucket
	cursor  Time
	pending int
	far     []entry // overflow min-heap ordered by (at, seq)
	// pool recycles large bucket slices between cycles. Only a handful of
	// buckets are occupied at any instant, but over a run every ring slot
	// hosts a busy cycle eventually; without the pool each of the 1024
	// buckets grows its own peak-sized slice (at one point ~90% of the
	// drain benchmark's allocations). Drained buckets above shrinkCap
	// retire their slice here and buckets that outgrow their own slice
	// borrow from it (see bucketAppend).
	pool [][]slot
	// occCur/occPrev track the per-cycle occupancy high-water over the
	// current and previous occEpoch-reset windows; occHi() (their max) is
	// the retention yardstick. Two-epoch max is deliberately a step
	// function rather than a smooth decay: occupancy dips shorter than an
	// epoch cannot evict slices that the next burst will need, while a
	// genuinely quiet stretch rotates both windows down within two epochs
	// and lets resetBucket shed the relics of the last burst.
	occCur, occPrev, occCount int
	// smalls holds bucket slices (cap <= shrinkCap) displaced when their
	// bucket borrowed a larger pooled slice. resetBucket re-attaches one
	// whenever it retires a large slice, so a slot that hosted a burst is
	// never left empty-handed — without this, every busy cycle re-ran the
	// 1->2->...->shrinkCap append ramp from nil, which dominated the
	// queue's allocation profile. Bounded at smallsMax; extras go to the
	// collector.
	smalls [][]slot

	heap []entry // BackendHeap: single min-heap ordered by (at, seq)

	// obs, when non-nil, receives cold-path scheduling counters. The
	// in-window Post fast path and fastStep are deliberately untouched:
	// the only instrumented sites are the far-heap overflow and far→ring
	// migration, both of which are off the steady flit path, so the
	// disabled AND enabled cases both stay allocation-free and
	// branch-free where it matters.
	obs *EngineObs
}

// EngineObs accumulates scheduler counters for an attached observer. All
// fields are cumulative; samplers take deltas. The struct is plain data
// (no methods, no locks): the queue's single-goroutine contract covers it.
type EngineObs struct {
	FarPosts   uint64 // posts landing beyond the calendar window
	Migrations uint64 // far-heap entries migrated into ring buckets
}

// SetObs attaches (or, with nil, detaches) a counter sink. The sink may
// be shared across successive queues; counters keep accumulating.
func (q *Queue) SetObs(o *EngineObs) { q.obs = o }

// EngineStats is a point-in-time snapshot of queue state for samplers.
type EngineStats struct {
	Len       int    // pending events (ring + overflow)
	FarLen    int    // overflow-heap entries (0 under BackendHeap)
	Processed uint64 // cumulative events dispatched
}

// EngineStats reports the queue's current occupancy and progress. Unlike
// EngineObs it is polled, not pushed, so it costs nothing when unused.
func (q *Queue) EngineStats() EngineStats {
	s := EngineStats{Len: q.Len(), Processed: q.ran}
	if q.backend != BackendHeap {
		s.FarLen = len(q.far)
	}
	return s
}

// Now returns the current simulation time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int {
	if q.backend == BackendHeap {
		return len(q.heap)
	}
	return q.pending + len(q.far)
}

// Processed returns the total number of events executed, a cheap progress
// measure used by deadlock watchdogs.
func (q *Queue) Processed() uint64 { return q.ran }

// Cap reports the total backing capacity, in entries, across the queue's
// internal structures. Exposed for shrink-policy regression tests.
func (q *Queue) Cap() int {
	c := cap(q.far) + cap(q.heap)
	for i := range q.buckets {
		c += cap(q.buckets[i].items)
	}
	for _, s := range q.pool {
		c += cap(s)
	}
	for _, s := range q.smalls {
		c += cap(s)
	}
	return c
}

// Register installs the handler for a typed kind. Registering KindClosure
// or an out-of-range kind panics; re-registering replaces the handler.
func (q *Queue) Register(k Kind, h Handler) {
	if k == KindClosure || k >= MaxKinds {
		panic(fmt.Sprintf("event: cannot register kind %d", k))
	}
	q.table[k] = h
}

// Post schedules a typed event at absolute time t. Scheduling in the past
// panics: it always indicates a model bug, and silently clamping would
// hide it.
//
// A sequence number is drawn only on the heap paths: ring slots order by
// position, and any event migrating from the far heap enters its bucket
// before any direct post to that cycle can happen, so FIFO-within-cycle
// holds without per-post numbering.
func (q *Queue) Post(t Time, k Kind, actor any, arg int64) {
	if t < q.now {
		panic(fmt.Sprintf("event: scheduling at %d before now %d", t, q.now))
	}
	if q.backend == BackendHeap {
		heapPush(&q.heap, entry{at: t, seq: q.seq, kind: k, actor: actor, arg: arg})
		q.seq++
		return
	}
	if q.buckets == nil {
		q.buckets = make([]bucket, ringSize)
		q.cursor = q.now
	}
	if t < q.cursor+ringSize {
		b := &q.buckets[t&(ringSize-1)]
		if len(b.items) < cap(b.items) {
			// Hot path: an in-window post into a bucket with headroom is
			// a plain append.
			b.items = append(b.items, slot{actor: actor, arg: arg, kind: k})
			q.pending++
			return
		}
		q.bucketAppend(b, slot{actor: actor, arg: arg, kind: k})
		return
	}
	heapPush(&q.far, entry{at: t, seq: q.seq, kind: k, actor: actor, arg: arg})
	q.seq++
	if q.obs != nil {
		q.obs.FarPosts++
	}
}

// bucketAppend adds an entry to a ring bucket, reusing pooled slices.
// Pool order is irrelevant to correctness — it only decides which backing
// array a cycle borrows.
//
// The borrow happens at the moment of growth, not only when the bucket is
// empty-handed: resetBucket leaves small (<= shrinkCap) slices attached to
// their bucket, so before this check every busy cycle re-grew its small
// slice up to the burst size through fresh allocations and the pooled
// peak-sized arrays went almost unused — the source of the PR 3 bytes/op
// regression on DrainLarge (see DESIGN.md §12).
func (q *Queue) bucketAppend(b *bucket, s slot) {
	if len(b.items) == cap(b.items) && len(q.pool) > 0 {
		if p := q.pool[len(q.pool)-1]; cap(p) > cap(b.items) {
			q.pool = q.pool[:len(q.pool)-1]
			p = p[:len(b.items)]
			copy(p, b.items)
			if c := cap(b.items); c > 0 && c <= shrinkCap && len(q.smalls) < smallsMax {
				q.smalls = append(q.smalls, b.items[:0])
			}
			b.items = p
		}
	}
	b.items = append(b.items, s)
	q.pending++
}

// PostAfter schedules a typed event delay cycles from now.
func (q *Queue) PostAfter(delay Time, k Kind, actor any, arg int64) {
	if delay < 0 {
		panic("event: negative delay")
	}
	q.Post(q.now+delay, k, actor, arg)
}

// SetBackend switches the priority structure, transferring any pending
// events. The transfer preserves (at, seq) order exactly, so switching
// backends never perturbs the schedule.
func (q *Queue) SetBackend(b Backend) {
	if b == q.backend {
		return
	}
	moved := q.drainRealized()
	q.backend = b
	q.reinsert(moved)
}

// drainRealized removes every pending event and returns them in realized
// dispatch order — the exact order Step would have run them — with seq
// renumbered in that order. Ring pops carry no sequence number, so the
// renumbering is what lets reinsert (into either backend) reproduce
// exactly the drained total order, with later posts sorting after.
func (q *Queue) drainRealized() []entry {
	var moved []entry
	for {
		e, ok := q.popNext(maxTime)
		if !ok {
			break
		}
		moved = append(moved, e)
	}
	for i := range moved {
		moved[i].seq = q.seq
		q.seq++
	}
	return moved
}

// reinsert restores events drained by drainRealized into the current
// backend. Draining walked the calendar cursor forward; the window is
// rewound to now (the ring is empty, so this cannot strand an entry)
// before re-inserting. moved is sorted in realized order with at >= now,
// so bucket FIFO order is kept.
func (q *Queue) reinsert(moved []entry) {
	if q.backend == BackendCalendar {
		if q.buckets == nil {
			q.buckets = make([]bucket, ringSize)
		}
		q.cursor = q.now
	}
	for _, e := range moved {
		if q.backend == BackendHeap {
			heapPush(&q.heap, e)
			continue
		}
		if e.at < q.cursor+ringSize {
			q.bucketAppend(&q.buckets[e.at&(ringSize-1)], slot{actor: e.actor, arg: e.arg, kind: e.kind})
		} else {
			heapPush(&q.far, e)
		}
	}
}

// fastStep pops and dispatches the head of the current calendar bucket
// when one is immediately available at a cycle <= limit. This is the hot
// path of Step/RunUntil: no cursor walk and no 48-byte entry round-trip
// through popNext. Returns false (leaving the queue untouched) whenever
// the slow path must decide.
func (q *Queue) fastStep(limit Time) bool {
	if q.pending == 0 || q.cursor > limit {
		return false
	}
	b := &q.buckets[q.cursor&(ringSize-1)]
	if b.head >= len(b.items) {
		return false
	}
	s := b.items[b.head]
	b.items[b.head].actor = nil // release the actor
	b.head++
	q.pending--
	if b.head == len(b.items) {
		q.resetBucket(b)
	}
	q.now = q.cursor
	q.ran++
	if s.kind == KindClosure {
		s.actor.(func())()
		return true
	}
	q.table[s.kind](s.actor, s.arg)
	return true
}

// Step runs the earliest pending event, advancing the clock to its
// timestamp. It returns false when no events remain.
func (q *Queue) Step() bool {
	if q.backend == BackendCalendar && q.fastStep(maxTime) {
		return true
	}
	e, ok := q.popNext(maxTime)
	if !ok {
		return false
	}
	q.dispatch(e)
	return true
}

// RunUntil executes events with timestamps <= limit, leaving the clock at
// min(limit, last event time). It returns the number of events run.
func (q *Queue) RunUntil(limit Time) uint64 {
	var n uint64
	for {
		if q.backend == BackendCalendar && q.fastStep(limit) {
			n++
			continue
		}
		e, ok := q.popNext(limit)
		if !ok {
			break
		}
		q.dispatch(e)
		n++
	}
	if q.now < limit {
		q.now = limit
	}
	return n
}

// Drain runs events until none remain or maxEvents have executed; it
// returns true if the queue drained. maxEvents bounds runaway simulations
// (a livelocked model would otherwise spin forever).
func (q *Queue) Drain(maxEvents uint64) bool {
	for i := uint64(0); i < maxEvents; i++ {
		if !q.Step() {
			return true
		}
	}
	return q.Len() == 0
}

// dispatch advances the clock and executes one popped entry.
func (q *Queue) dispatch(e entry) {
	q.now = e.at
	q.ran++
	if e.kind == KindClosure {
		e.actor.(func())()
		return
	}
	q.table[e.kind](e.actor, e.arg)
}

// popNext removes and returns the earliest event with at <= limit, in
// strict (at, seq) order. The calendar cursor never advances past limit,
// preserving the invariant cursor <= now needed for in-window posting.
func (q *Queue) popNext(limit Time) (entry, bool) {
	if q.backend == BackendHeap {
		if len(q.heap) == 0 || q.heap[0].at > limit {
			return entry{}, false
		}
		return heapPop(&q.heap), true
	}
	for {
		if q.pending == 0 {
			if len(q.far) == 0 || q.far[0].at > limit {
				return entry{}, false
			}
			// Ring empty: jump the window straight to the next far
			// event (its cycle is >= cursor+ringSize, so no in-window
			// entry is skipped) and pull everything now in range.
			q.cursor = q.far[0].at
			q.migrateFar()
			continue
		}
		b := &q.buckets[q.cursor&(ringSize-1)]
		if b.head < len(b.items) {
			if q.cursor > limit {
				return entry{}, false
			}
			s := b.items[b.head]
			b.items[b.head].actor = nil // release the actor
			b.head++
			q.pending--
			if b.head == len(b.items) {
				q.resetBucket(b)
			}
			// Ring slots carry no seq; callers (dispatch, SetBackend)
			// only need the realized order and the timestamp.
			return entry{at: q.cursor, kind: s.kind, actor: s.actor, arg: s.arg}, true
		}
		if q.cursor >= limit {
			return entry{}, false
		}
		q.cursor++
		q.migrateFar()
	}
}

// migrateFar moves far-heap events whose cycle has entered the window
// into their ring buckets. Heap pops come out in (at, seq) order and any
// direct post to those cycles can only happen afterwards (with a larger
// seq), so bucket FIFO order equals global (at, seq) order.
func (q *Queue) migrateFar() {
	for len(q.far) > 0 && q.far[0].at < q.cursor+ringSize {
		e := heapPop(&q.far)
		q.bucketAppend(&q.buckets[e.at&(ringSize-1)], slot{actor: e.actor, arg: e.arg, kind: e.kind})
		if q.obs != nil {
			q.obs.Migrations++
		}
	}
}

// resetBucket empties a drained bucket for reuse. Small slices (at most
// shrinkCap) stay attached to the bucket; larger ones always retire to the
// queue's pool so the next cycle to outgrow its own slice reuses them.
// The shrink policy lives at the borrow site (bucketAppend): dropping a
// big slice here whenever one cycle happened to underuse it — the previous
// policy — discarded arrays that the very next busy cycle had to reallocate,
// because per-cycle occupancy swings well past 4x within a single run.
// resetBucket's job in the decay scheme is only to maintain the occupancy
// high-water that bucketAppend's staleness test consults.
func (q *Queue) resetBucket(b *bucket) {
	if len(b.items) > q.occCur {
		q.occCur = len(b.items)
	}
	q.occCount++
	if q.occCount >= occEpoch {
		q.occPrev, q.occCur, q.occCount = q.occCur, 0, 0
	}
	hi := q.occCur
	if q.occPrev > hi {
		hi = q.occPrev
	}
	// Shed stale pool slices — relics of a burst no recent cycle has come
	// close to filling. One check per drained cycle keeps this amortized
	// O(1); the loop empties the whole backlog only when the high-water
	// has already collapsed.
	for len(q.pool) > 0 {
		if c := cap(q.pool[len(q.pool)-1]); c > shrinkCap && c > 4*hi {
			q.pool = q.pool[:len(q.pool)-1]
			continue
		}
		break
	}
	if cap(b.items) <= shrinkCap {
		b.items = b.items[:0]
	} else {
		q.pool = append(q.pool, b.items[:0])
		if n := len(q.smalls); n > 0 {
			b.items = q.smalls[n-1]
			q.smalls = q.smalls[:n-1]
		} else {
			b.items = nil
		}
	}
	b.head = 0
}

// --- binary min-heap ordered by (at, seq), shared by the overflow and
// the legacy backend ---

func entryLess(a, b *entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func heapPush(h *[]entry, e entry) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(&s[i], &s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

func heapPop(h *[]entry) entry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = entry{} // release the actor
	s = s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(s) && entryLess(&s[l], &s[smallest]) {
			smallest = l
		}
		if r < len(s) && entryLess(&s[r], &s[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	// Shrink after a burst: a drained backlog should not pin its peak
	// capacity for the rest of the run.
	if cap(s) > shrinkCap && len(s) < cap(s)/4 {
		ns := make([]entry, len(s), len(s)*2)
		copy(ns, s)
		s = ns
	}
	*h = s
	return top
}
