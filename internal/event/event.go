// Package event provides the discrete-event core of the simulator: a
// monotonic clock and a stable min-heap of scheduled callbacks.
//
// Time is measured in integer cycles (the paper's 10 ns switch cycle).
// Events scheduled for the same cycle run in scheduling order (FIFO), which
// keeps the simulator deterministic without imposing artificial sub-cycle
// ordering on unrelated components.
package event

import "fmt"

// Time is a simulation timestamp in cycles.
type Time int64

// Queue is a future-event list. The zero value is ready to use.
type Queue struct {
	now    Time
	seq    uint64
	events []entry
	ran    uint64
}

type entry struct {
	at  Time
	seq uint64
	fn  func()
}

// Now returns the current simulation time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.events) }

// Processed returns the total number of events executed, a cheap progress
// measure used by deadlock watchdogs.
func (q *Queue) Processed() uint64 { return q.ran }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a model bug, and silently clamping would hide it.
func (q *Queue) At(t Time, fn func()) {
	if t < q.now {
		panic(fmt.Sprintf("event: scheduling at %d before now %d", t, q.now))
	}
	q.push(entry{at: t, seq: q.seq, fn: fn})
	q.seq++
}

// After schedules fn to run delay cycles from now.
func (q *Queue) After(delay Time, fn func()) {
	if delay < 0 {
		panic("event: negative delay")
	}
	q.At(q.now+delay, fn)
}

// Step runs the earliest pending event, advancing the clock to its
// timestamp. It returns false when no events remain.
func (q *Queue) Step() bool {
	if len(q.events) == 0 {
		return false
	}
	e := q.pop()
	q.now = e.at
	q.ran++
	e.fn()
	return true
}

// RunUntil executes events with timestamps <= limit, leaving the clock at
// min(limit, last event time). It returns the number of events run.
func (q *Queue) RunUntil(limit Time) uint64 {
	var n uint64
	for len(q.events) > 0 && q.events[0].at <= limit {
		q.Step()
		n++
	}
	if q.now < limit && len(q.events) == 0 {
		q.now = limit
	} else if q.now < limit && q.events[0].at > limit {
		q.now = limit
	}
	return n
}

// Drain runs events until none remain or maxEvents have executed; it
// returns true if the queue drained. maxEvents bounds runaway simulations
// (a livelocked model would otherwise spin forever).
func (q *Queue) Drain(maxEvents uint64) bool {
	for i := uint64(0); i < maxEvents; i++ {
		if !q.Step() {
			return true
		}
	}
	return q.Len() == 0
}

// --- binary heap, ordered by (at, seq) ---

func (q *Queue) less(i, j int) bool {
	a, b := &q.events[i], &q.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *Queue) push(e entry) {
	q.events = append(q.events, e)
	i := len(q.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.events[i], q.events[parent] = q.events[parent], q.events[i]
		i = parent
	}
}

func (q *Queue) pop() entry {
	top := q.events[0]
	last := len(q.events) - 1
	q.events[0] = q.events[last]
	q.events[last] = entry{} // release the closure
	q.events = q.events[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q.events) && q.less(l, smallest) {
			smallest = l
		}
		if r < len(q.events) && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.events[i], q.events[smallest] = q.events[smallest], q.events[i]
		i = smallest
	}
	return top
}
