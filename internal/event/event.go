// Package event provides the discrete-event core of the simulator: a
// monotonic clock and a deterministic schedule of typed event records.
//
// Time is measured in integer cycles (the paper's 10 ns switch cycle).
// Events scheduled for the same cycle run in scheduling order (FIFO), which
// keeps the simulator deterministic without imposing artificial sub-cycle
// ordering on unrelated components.
//
// # Typed events
//
// An event is a small fixed-size record {at, seq, kind, actor, arg}
// dispatched through a per-queue jump table (Register/Post/PostAfter).
// Storing a pointer-shaped actor in the record instead of capturing it in
// a closure removes the per-event heap allocation that dominated the old
// engine's profile; the steady-state flit pipeline posts and dispatches
// with zero allocations.
//
// Deprecated shim: At and After still accept func() callbacks — each one
// is carried as KindClosure with the func value as the actor, which is
// allocation-free for pre-bound funcs but allocates whenever the literal
// captures variables. They remain for cold paths (experiment drivers,
// tests, one-shot timers) and for incremental migration; hot-path code
// should define a Kind and use Post/PostAfter instead.
//
// # Scheduling structure
//
// The default backend is a hierarchical calendar queue: a power-of-two
// ring of per-cycle FIFO buckets covering the near-future window
// [cursor, cursor+ringSize), plus a binary-heap overflow for events
// beyond the window. Posting within the window — which covers every
// link/routing/crossbar delay in the simulator — is O(1) append; far
// events (timeouts, fault injections, stall watchdogs) take the heap
// path and migrate into the ring, in (at, seq) order, exactly when their
// cycle enters the window, so FIFO-within-cycle is preserved end to end.
// SetBackend(BackendHeap) selects the legacy single binary heap ordered
// by (at, seq); both backends realize the same total order, which the
// equivalence tests in internal/sim exploit.
package event

import "fmt"

// Time is a simulation timestamp in cycles.
type Time int64

// maxTime is an unreachable timestamp used as "no limit".
const maxTime = Time(1) << 62

// Kind identifies an event type registered in the queue's jump table.
type Kind uint8

// KindClosure carries a legacy func() callback (the At/After shim).
const KindClosure Kind = 0

// MaxKinds bounds the jump table; kinds are small dense integers.
const MaxKinds = 32

// Handler executes one typed event. The actor is the pointer-shaped value
// given at post time (a buffer, a branch, a network); arg is a free
// integer payload (port index, epoch, message ID).
type Handler func(actor any, arg int64)

// Backend selects the queue's priority structure (see SetBackend).
type Backend uint8

const (
	// BackendCalendar is the calendar-queue scheduler (the default).
	BackendCalendar Backend = iota
	// BackendHeap is the legacy binary-heap scheduler.
	BackendHeap
)

// ringSize is the calendar window in cycles. Every pipeline delay in the
// simulator (link, routing, crossbar, DMA setup) is far below this, so
// steady-state posts are O(1) ring appends; only long timers overflow.
// Must be a power of two.
const ringSize = 1024

// shrinkCap is the capacity below which backing slices are never shrunk.
const shrinkCap = 64

// entry is one scheduled event. 48 bytes; actor holds only
// pointer-shaped values (pointers, func values), so posting never boxes.
type entry struct {
	at    Time
	seq   uint64
	arg   int64
	actor any
	kind  Kind
}

// bucket is one cycle's FIFO within the calendar ring. head avoids
// shifting on pop; the slice resets (and may shrink) once emptied.
type bucket struct {
	head  int
	items []entry
}

// Queue is a future-event list. The zero value is ready to use and runs
// the calendar backend.
type Queue struct {
	now     Time
	seq     uint64
	ran     uint64
	backend Backend
	table   [MaxKinds]Handler

	// Calendar backend: buckets[t&(ringSize-1)] holds events at cycle t
	// for t in [cursor, cursor+ringSize); pending counts ring entries.
	buckets []bucket
	cursor  Time
	pending int
	far     []entry // overflow min-heap ordered by (at, seq)
	// pool recycles large bucket slices between cycles. Only a handful of
	// buckets are occupied at any instant, but over a run every ring slot
	// hosts a busy cycle eventually; without the pool each of the 1024
	// buckets grows its own peak-sized slice (at one point ~90% of the
	// drain benchmark's allocations). Drained buckets above shrinkCap
	// retire their slice here and the next one to fill reuses it.
	pool [][]entry

	heap []entry // BackendHeap: single min-heap ordered by (at, seq)
}

// Now returns the current simulation time.
func (q *Queue) Now() Time { return q.now }

// Len returns the number of pending events.
func (q *Queue) Len() int {
	if q.backend == BackendHeap {
		return len(q.heap)
	}
	return q.pending + len(q.far)
}

// Processed returns the total number of events executed, a cheap progress
// measure used by deadlock watchdogs.
func (q *Queue) Processed() uint64 { return q.ran }

// Cap reports the total backing capacity, in entries, across the queue's
// internal structures. Exposed for shrink-policy regression tests.
func (q *Queue) Cap() int {
	c := cap(q.far) + cap(q.heap)
	for i := range q.buckets {
		c += cap(q.buckets[i].items)
	}
	for _, s := range q.pool {
		c += cap(s)
	}
	return c
}

// Register installs the handler for a typed kind. Registering KindClosure
// or an out-of-range kind panics; re-registering replaces the handler.
func (q *Queue) Register(k Kind, h Handler) {
	if k == KindClosure || k >= MaxKinds {
		panic(fmt.Sprintf("event: cannot register kind %d", k))
	}
	q.table[k] = h
}

// Post schedules a typed event at absolute time t. Scheduling in the past
// panics: it always indicates a model bug, and silently clamping would
// hide it.
func (q *Queue) Post(t Time, k Kind, actor any, arg int64) {
	if t < q.now {
		panic(fmt.Sprintf("event: scheduling at %d before now %d", t, q.now))
	}
	e := entry{at: t, seq: q.seq, kind: k, actor: actor, arg: arg}
	q.seq++
	if q.backend == BackendHeap {
		heapPush(&q.heap, e)
		return
	}
	if q.buckets == nil {
		q.buckets = make([]bucket, ringSize)
		q.cursor = q.now
	}
	if t < q.cursor+ringSize {
		q.bucketAppend(&q.buckets[t&(ringSize-1)], e)
		return
	}
	heapPush(&q.far, e)
}

// bucketAppend adds an entry to a ring bucket, reusing a pooled slice
// when the bucket has none. Pool order is irrelevant to correctness —
// it only decides which backing array a cycle borrows.
func (q *Queue) bucketAppend(b *bucket, e entry) {
	if b.items == nil && len(q.pool) > 0 {
		b.items = q.pool[len(q.pool)-1]
		q.pool = q.pool[:len(q.pool)-1]
	}
	b.items = append(b.items, e)
	q.pending++
}

// PostAfter schedules a typed event delay cycles from now.
func (q *Queue) PostAfter(delay Time, k Kind, actor any, arg int64) {
	if delay < 0 {
		panic("event: negative delay")
	}
	q.Post(q.now+delay, k, actor, arg)
}

// At schedules fn to run at absolute time t.
//
// Deprecated: closure shim retained for cold paths and tests; hot paths
// should Register a Kind and use Post (see the package comment).
func (q *Queue) At(t Time, fn func()) {
	q.Post(t, KindClosure, fn, 0)
}

// After schedules fn to run delay cycles from now.
//
// Deprecated: closure shim retained for cold paths and tests; hot paths
// should Register a Kind and use PostAfter (see the package comment).
func (q *Queue) After(delay Time, fn func()) {
	if delay < 0 {
		panic("event: negative delay")
	}
	q.Post(q.now+delay, KindClosure, fn, 0)
}

// SetBackend switches the priority structure, transferring any pending
// events. The transfer preserves (at, seq) order exactly, so switching
// backends never perturbs the schedule.
func (q *Queue) SetBackend(b Backend) {
	if b == q.backend {
		return
	}
	var moved []entry
	for {
		e, ok := q.popNext(maxTime)
		if !ok {
			break
		}
		moved = append(moved, e)
	}
	q.backend = b
	if b == BackendCalendar {
		// Draining walked the cursor forward; rewind the window to now
		// (the ring is empty, so this cannot strand an entry) before
		// re-inserting. moved is (at, seq)-sorted with at >= now and
		// seq values preserved, so bucket FIFO order is kept.
		if q.buckets == nil {
			q.buckets = make([]bucket, ringSize)
		}
		q.cursor = q.now
	}
	for _, e := range moved {
		if q.backend == BackendHeap {
			heapPush(&q.heap, e)
			continue
		}
		if e.at < q.cursor+ringSize {
			q.bucketAppend(&q.buckets[e.at&(ringSize-1)], e)
		} else {
			heapPush(&q.far, e)
		}
	}
}

// Step runs the earliest pending event, advancing the clock to its
// timestamp. It returns false when no events remain.
func (q *Queue) Step() bool {
	e, ok := q.popNext(maxTime)
	if !ok {
		return false
	}
	q.dispatch(e)
	return true
}

// RunUntil executes events with timestamps <= limit, leaving the clock at
// min(limit, last event time). It returns the number of events run.
func (q *Queue) RunUntil(limit Time) uint64 {
	var n uint64
	for {
		e, ok := q.popNext(limit)
		if !ok {
			break
		}
		q.dispatch(e)
		n++
	}
	if q.now < limit {
		q.now = limit
	}
	return n
}

// Drain runs events until none remain or maxEvents have executed; it
// returns true if the queue drained. maxEvents bounds runaway simulations
// (a livelocked model would otherwise spin forever).
func (q *Queue) Drain(maxEvents uint64) bool {
	for i := uint64(0); i < maxEvents; i++ {
		if !q.Step() {
			return true
		}
	}
	return q.Len() == 0
}

// dispatch advances the clock and executes one popped entry.
func (q *Queue) dispatch(e entry) {
	q.now = e.at
	q.ran++
	if e.kind == KindClosure {
		e.actor.(func())()
		return
	}
	q.table[e.kind](e.actor, e.arg)
}

// popNext removes and returns the earliest event with at <= limit, in
// strict (at, seq) order. The calendar cursor never advances past limit,
// preserving the invariant cursor <= now needed for in-window posting.
func (q *Queue) popNext(limit Time) (entry, bool) {
	if q.backend == BackendHeap {
		if len(q.heap) == 0 || q.heap[0].at > limit {
			return entry{}, false
		}
		return heapPop(&q.heap), true
	}
	for {
		if q.pending == 0 {
			if len(q.far) == 0 || q.far[0].at > limit {
				return entry{}, false
			}
			// Ring empty: jump the window straight to the next far
			// event (its cycle is >= cursor+ringSize, so no in-window
			// entry is skipped) and pull everything now in range.
			q.cursor = q.far[0].at
			q.migrateFar()
			continue
		}
		b := &q.buckets[q.cursor&(ringSize-1)]
		if b.head < len(b.items) {
			if q.cursor > limit {
				return entry{}, false
			}
			e := b.items[b.head]
			b.items[b.head] = entry{} // release the actor
			b.head++
			q.pending--
			if b.head == len(b.items) {
				q.resetBucket(b)
			}
			return e, true
		}
		if q.cursor >= limit {
			return entry{}, false
		}
		q.cursor++
		q.migrateFar()
	}
}

// migrateFar moves far-heap events whose cycle has entered the window
// into their ring buckets. Heap pops come out in (at, seq) order and any
// direct post to those cycles can only happen afterwards (with a larger
// seq), so bucket FIFO order equals global (at, seq) order.
func (q *Queue) migrateFar() {
	for len(q.far) > 0 && q.far[0].at < q.cursor+ringSize {
		e := heapPop(&q.far)
		q.bucketAppend(&q.buckets[e.at&(ringSize-1)], e)
	}
}

// resetBucket empties a drained bucket for reuse. Small slices (at most
// shrinkCap) stay attached to the bucket; larger ones retire to the
// queue's pool so the next busy cycle reuses them instead of growing its
// own. The shrink policy lives on the retire path: a large slice drained
// while under a quarter full marks the burst that needed it as over, so
// it is dropped for the collector rather than pooled — that is how the
// queue's footprint decays back down after a transient hotspot.
func (q *Queue) resetBucket(b *bucket) {
	switch c := cap(b.items); {
	case c <= shrinkCap:
		b.items = b.items[:0]
	case len(b.items) < c/4:
		b.items = nil
	default:
		q.pool = append(q.pool, b.items[:0])
		b.items = nil
	}
	b.head = 0
}

// --- binary min-heap ordered by (at, seq), shared by the overflow and
// the legacy backend ---

func entryLess(a, b *entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func heapPush(h *[]entry, e entry) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !entryLess(&s[i], &s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*h = s
}

func heapPop(h *[]entry) entry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = entry{} // release the actor
	s = s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(s) && entryLess(&s[l], &s[smallest]) {
			smallest = l
		}
		if r < len(s) && entryLess(&s[r], &s[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	// Shrink after a burst: a drained backlog should not pin its peak
	// capacity for the rest of the run.
	if cap(s) > shrinkCap && len(s) < cap(s)/4 {
		ns := make([]entry, len(s), len(s)*2)
		copy(ns, s)
		s = ns
	}
	*h = s
	return top
}
