package event

import (
	"testing"
	"testing/quick"

	"mcastsim/internal/rng"
)

// kRecord is a test kind whose handler appends its arg to the actor's
// slice, letting tests observe exact dispatch order without closures.
const kRecord Kind = 1

type recorder struct{ got []int64 }

func newRecorded(q *Queue) *recorder {
	rec := &recorder{}
	q.Register(kRecord, func(actor any, arg int64) {
		actor.(*recorder).got = append(actor.(*recorder).got, arg)
	})
	return rec
}

func TestTypedDispatch(t *testing.T) {
	var q Queue
	rec := newRecorded(&q)
	q.Post(5, kRecord, rec, 42)
	q.PostAfter(3, kRecord, rec, 7)
	for q.Step() {
	}
	if len(rec.got) != 2 || rec.got[0] != 7 || rec.got[1] != 42 {
		t.Fatalf("dispatch order/args %v, want [7 42]", rec.got)
	}
	if q.Now() != 5 {
		t.Fatalf("Now = %d, want 5", q.Now())
	}
}

func TestRegisterRejectsClosureKind(t *testing.T) {
	var q Queue
	defer func() {
		if recover() == nil {
			t.Fatal("registering KindClosure did not panic")
		}
	}()
	q.Register(KindClosure, func(any, int64) {})
}

// TestInsertionOrderProperty is the determinism contract: events with
// equal timestamps dispatch in insertion order, including timestamps that
// wrap the bucket ring several times and timestamps far enough out to
// take the overflow-heap path before migrating back into the ring.
func TestInsertionOrderProperty(t *testing.T) {
	f := func(raw []uint32, seed uint64) bool {
		var q Queue
		rec := newRecorded(&q)
		r := rng.New(seed)
		type post struct {
			at  Time
			ord int64
		}
		var posts []post
		for i, v := range raw {
			// Spread across ~6 ring windows plus a far tail so every
			// structural path is exercised: in-window append, multiple
			// ring wraps, and overflow-heap posts that must migrate.
			at := Time(v % (ringSize * 6))
			if r.Intn(8) == 0 {
				at += ringSize * 40
			}
			posts = append(posts, post{at: at, ord: int64(i)})
			q.Post(at, kRecord, rec, int64(i))
		}
		for q.Step() {
		}
		if len(rec.got) != len(posts) {
			return false
		}
		// Reconstruct the required (at, insertion) order.
		lastAt := Time(-1)
		lastOrd := map[Time]int64{}
		for _, ord := range rec.got {
			at := posts[ord].at
			if at < lastAt {
				return false
			}
			if prev, ok := lastOrd[at]; ok && ord <= prev {
				return false
			}
			lastAt = at
			lastOrd[at] = ord
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestInterleavedPostAndStep drives the queue the way the simulator does:
// handlers re-post at short delays while external posts land mid-run, and
// some posts jump far ahead forcing cursor jumps. Order must still be
// exactly (at, seq).
func TestInterleavedPostAndStep(t *testing.T) {
	var q Queue
	rec := newRecorded(&q)
	const kChain Kind = 2
	var hops int
	q.Register(kChain, func(actor any, arg int64) {
		hops++
		if hops < 5000 {
			q.PostAfter(Time(1+hops%7), kChain, actor, arg)
		}
	})
	q.Post(0, kChain, rec, 0)
	r := rng.New(3)
	ord := int64(0)
	for q.Step() {
		if r.Intn(3) == 0 && ord < 2000 {
			delay := Time(r.Intn(ringSize * 3))
			q.Post(q.Now()+delay, kRecord, rec, ord)
			ord++
		}
	}
	if int64(len(rec.got)) != ord {
		t.Fatalf("recorded %d events, posted %d", len(rec.got), ord)
	}
	if q.Processed() != uint64(5000+ord) {
		t.Fatalf("Processed = %d, want %d", q.Processed(), 5000+int(ord))
	}
}

// TestBackendEquivalence runs an identical random schedule on the
// calendar and heap backends and requires identical dispatch sequences.
func TestBackendEquivalence(t *testing.T) {
	run := func(backend Backend, seed uint64) []int64 {
		var q Queue
		q.SetBackend(backend)
		rec := newRecorded(&q)
		r := rng.New(seed)
		for i := int64(0); i < 4000; i++ {
			q.Post(Time(r.Intn(ringSize*5)), kRecord, rec, i)
		}
		for q.Step() {
		}
		return rec.got
	}
	for seed := uint64(1); seed <= 5; seed++ {
		cal, heap := run(BackendCalendar, seed), run(BackendHeap, seed)
		if len(cal) != len(heap) {
			t.Fatalf("seed %d: lengths %d vs %d", seed, len(cal), len(heap))
		}
		for i := range cal {
			if cal[i] != heap[i] {
				t.Fatalf("seed %d: backends diverge at event %d: calendar %d, heap %d",
					seed, i, cal[i], heap[i])
			}
		}
	}
}

// TestSetBackendMidStream switches backends with events pending; the
// remaining schedule must be unperturbed.
func TestSetBackendMidStream(t *testing.T) {
	var q Queue
	rec := newRecorded(&q)
	for i := int64(0); i < 100; i++ {
		q.Post(Time(i%10)*500, kRecord, rec, i)
	}
	for i := 0; i < 30; i++ {
		q.Step()
	}
	q.SetBackend(BackendHeap)
	for i := 0; i < 30; i++ {
		q.Step()
	}
	q.SetBackend(BackendCalendar)
	for q.Step() {
	}
	if len(rec.got) != 100 {
		t.Fatalf("dispatched %d events, want 100", len(rec.got))
	}
	lastAt, lastOrd := Time(-1), map[Time]int64{}
	for _, ord := range rec.got {
		at := Time(ord%10) * 500
		if at < lastAt {
			t.Fatalf("time order violated after backend switch: %v", rec.got)
		}
		if prev, ok := lastOrd[at]; ok && ord <= prev {
			t.Fatalf("FIFO order violated after backend switch: %v", rec.got)
		}
		lastAt, lastOrd[at] = at, ord
	}
}

// TestShrinkAfterBurst is the satellite regression test: a transient
// burst must not pin its peak backing capacity once traffic returns to a
// light steady state. A fully-used slice keeps its capacity at reset (it
// earned it); the shrink triggers on the next cycle that uses under a
// quarter of it.
func TestShrinkAfterBurst(t *testing.T) {
	lightPhase := func(q *Queue, rec *recorder) {
		// Sparse traffic touching every ring bucket once, so any
		// burst-inflated bucket resets at tiny occupancy and shrinks.
		start := q.Now() + 1
		for i := int64(0); i < ringSize+64; i++ {
			q.Post(start+Time(i), kRecord, rec, i)
		}
		for q.Step() {
		}
	}
	var q Queue
	rec := newRecorded(&q)
	// Far-future burst: 20k events beyond the ring window exercise the
	// overflow heap's peak, then drain through migration into the ring.
	for i := int64(0); i < 20_000; i++ {
		q.Post(ringSize*2+Time(i%97), kRecord, rec, i)
	}
	peak := q.Cap()
	for q.Step() {
	}
	lightPhase(&q, rec)
	if got := q.Cap(); got > peak/4 {
		t.Fatalf("after far burst + idle: Cap=%d did not shrink from peak %d", got, peak)
	}
	// Same-cycle burst: one bucket grows huge, then must let go.
	rec.got = rec.got[:0]
	base := q.Now() + 1
	for i := int64(0); i < 20_000; i++ {
		q.Post(base, kRecord, rec, i)
	}
	peak = q.Cap()
	for q.Step() {
	}
	lightPhase(&q, rec)
	if got := q.Cap(); got > peak/4 {
		t.Fatalf("after bucket burst + idle: Cap=%d did not shrink from peak %d", got, peak)
	}
}

// TestZeroAllocTypedPath pins the headline property of the typed core:
// steady-state post+dispatch of typed events allocates nothing.
func TestZeroAllocTypedPath(t *testing.T) {
	var q Queue
	const kNop Kind = 3
	type actor struct{ n int }
	a := &actor{}
	q.Register(kNop, func(ac any, arg int64) {
		ac.(*actor).n++
	})
	// Warm the ring and bucket slices first.
	for i := 0; i < ringSize*2; i++ {
		q.PostAfter(Time(i%8), kNop, a, 0)
		q.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		q.PostAfter(3, kNop, a, 1)
		q.PostAfter(1, kNop, a, 2)
		q.Step()
		q.Step()
	})
	if allocs != 0 {
		t.Fatalf("typed post+dispatch allocated %v per run, want 0", allocs)
	}
}

func BenchmarkTypedScheduleAndRun(b *testing.B) {
	r := rng.New(1)
	var q Queue
	const kNop Kind = 4
	type actor struct{ n int }
	a := &actor{}
	q.Register(kNop, func(ac any, arg int64) { ac.(*actor).n++ })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.PostAfter(Time(r.Intn(64)), kNop, a, 0)
		q.Step()
	}
}
