package event

// Sharded engine facades for intra-cell parallel simulation (PDES).
//
// Two engines share one contract: the simulation is partitioned into
// shards, each with its own future-event list, synchronized in
// conservative windows of width W = the minimum inter-shard link delay.
// An event executed at time t may post to another shard only with
// timestamp >= t + W, so everything a shard can receive during the
// window [T, T+W) is already in its queue when the window opens.
//
//   - ShardSet is the serial-equivalence engine: per-shard ("lane")
//     min-heaps sharing ONE global insertion-sequence counter, executed
//     by an N-way merge that always dispatches the globally least
//     (at, seq) entry. Because the calendar queue also realizes exact
//     (at, insertion-seq) order, a ShardSet run is event-for-event
//     identical to a single-queue run for ANY shard count — traces,
//     RNG draws, ids, everything. Windows are bookkeeping here: the
//     merge counts boundary crossings and flags lookahead violations
//     (cross-shard posts that land inside the open window), which is
//     what the conformance property tests assert on.
//
//   - FastSet is the parallel engine: per-shard calendar Queues driven
//     by persistent worker goroutines. A coordinator opens the window
//     [T, T+W) at the globally earliest pending timestamp, releases all
//     workers to run their queues up to T+W-1, waits on the barrier,
//     then flushes cross-shard mailboxes into destination queues in
//     deterministic (at, srcShard, srcPostOrder) merge order. A mailbox
//     entry timestamped before T+W is a hard LookaheadError — the
//     model violated the conservative contract — never a silent
//     mis-merge. Results are deterministic for a fixed shard count
//     (mailbox order and per-queue seq assignment are both scheduler-
//     independent) but are a different serialization than ShardSet's.
//
// The heap backend is excluded from sharding entirely: SetBackend
// renumbers sequence values when migrating entries, which breaks the
// (at, seq, shard) merge contract. See BackendShardError.

import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
)

// BackendShardError reports an engine backend that cannot participate in
// a sharded run. Only the calendar backend preserves stable global
// insertion order; BackendHeap's SetBackend migration renumbers seq and
// would silently mis-merge across shards, so the combination is refused
// up front.
type BackendShardError struct {
	Backend Backend
	Shards  int
}

func (e *BackendShardError) Error() string {
	return fmt.Sprintf("event: backend %d is incompatible with %d shards (heap migration renumbers seq; the (at, seq, shard) merge contract requires the calendar backend)", e.Backend, e.Shards)
}

// LookaheadError reports a cross-shard event posted with a timestamp
// inside the synchronization window that generated it — a violation of
// the conservative lookahead contract (delay < minimum inter-shard link
// delay). The parallel engine fails hard rather than deliver it late.
type LookaheadError struct {
	Src, Dst int32
	Kind     Kind
	At       Time
	WinEnd   Time
}

func (e *LookaheadError) Error() string {
	return fmt.Sprintf("event: lookahead violation: shard %d posted kind %d to shard %d at t=%d inside the open window (boundary %d)", e.Src, e.Kind, e.Dst, e.At, e.WinEnd)
}

// ShardStats counts window-synchronization activity. Crossings is the
// number of cross-shard posts; Violations counts crossings timestamped
// inside the window that produced them (always 0 for a conforming
// model — asserted by the property tests).
type ShardStats struct {
	Windows    uint64
	Crossings  uint64
	Violations uint64
}

// NextTime reports the timestamp of the queue's earliest pending event.
// The second result is false when the queue is empty. Used by the
// window coordinator to skip straight over idle stretches.
func (q *Queue) NextTime() (Time, bool) {
	if q.backend == BackendHeap {
		if len(q.heap) == 0 {
			return 0, false
		}
		return q.heap[0].at, true
	}
	var best Time
	ok := false
	if q.pending > 0 {
		for t := q.cursor; t < q.cursor+ringSize; t++ {
			b := &q.buckets[t&(ringSize-1)]
			if b.head < len(b.items) {
				best, ok = t, true
				break
			}
		}
	}
	if len(q.far) > 0 && (!ok || q.far[0].at < best) {
		best, ok = q.far[0].at, true
	}
	return best, ok
}

// --- serial-equivalence engine ---

// ShardSet is the serial-equivalence sharded engine: N lanes, one
// global clock, one global sequence counter, executed by an N-way
// (at, seq) merge on a single goroutine. See the package comment above.
type ShardSet struct {
	window Time
	now    Time
	// winEnd is the exclusive boundary of the open synchronization
	// window; dispatching an event at or past it opens the next window
	// at that event's timestamp (the same alignment-free schedule the
	// parallel engine runs).
	winEnd Time
	gseq   uint64
	ran    uint64
	// cur is the lane currently dispatching, -1 between events; posts
	// from lane A's handler into lane B are the boundary crossings the
	// stats track.
	cur   int32
	table [MaxKinds]Handler
	lanes []Lane
	stats ShardStats
	obs   *EngineObs
}

// Lane is one shard's posting surface into a ShardSet: a min-heap of
// entries ordered by (at, globalSeq).
type Lane struct {
	set  *ShardSet
	idx  int32
	heap []entry
}

// NewShardSet builds a serial-equivalence engine with the given shard
// count and synchronization window (the minimum inter-shard delay;
// must be >= 1).
func NewShardSet(shards int, window Time) *ShardSet {
	if shards < 1 {
		panic("event: NewShardSet with shards < 1")
	}
	if window < 1 {
		panic("event: NewShardSet with window < 1")
	}
	s := &ShardSet{window: window, cur: -1}
	s.lanes = make([]Lane, shards)
	for i := range s.lanes {
		s.lanes[i].set = s
		s.lanes[i].idx = int32(i)
	}
	return s
}

// Lane returns shard i's posting surface.
func (s *ShardSet) Lane(i int) *Lane { return &s.lanes[i] }

// Register installs the handler for a typed kind across every lane.
func (s *ShardSet) Register(k Kind, h Handler) {
	if k == KindClosure || k >= MaxKinds {
		panic(fmt.Sprintf("event: Register of invalid kind %d", k))
	}
	s.table[k] = h
}

// Now returns the current simulation time.
func (s *ShardSet) Now() Time { return s.now }

// Processed returns the total number of events executed.
func (s *ShardSet) Processed() uint64 { return s.ran }

// Len returns the number of pending events across all lanes.
func (s *ShardSet) Len() int {
	n := 0
	for i := range s.lanes {
		n += len(s.lanes[i].heap)
	}
	return n
}

// Stats returns the window/crossing counters.
func (s *ShardSet) Stats() ShardStats { return s.stats }

// SetObs attaches a scheduler-counter sink. The lane heaps have no
// far/ring split to instrument, so the sink currently accumulates
// nothing here; the method exists so engine attachment is uniform.
func (s *ShardSet) SetObs(o *EngineObs) { s.obs = o }

// EngineStats reports occupancy and progress for samplers.
func (s *ShardSet) EngineStats() EngineStats {
	return EngineStats{Len: s.Len(), Processed: s.ran}
}

// NextTime reports the earliest pending timestamp across all lanes.
func (s *ShardSet) NextTime() (Time, bool) {
	best := -1
	for i := range s.lanes {
		h := s.lanes[i].heap
		if len(h) == 0 {
			continue
		}
		if best < 0 || entryLess(&h[0], &s.lanes[best].heap[0]) {
			best = i
		}
	}
	if best < 0 {
		return 0, false
	}
	return s.lanes[best].heap[0].at, true
}

// Step dispatches the globally earliest (at, seq) event across all
// lanes, advancing the clock. Returns false when every lane is empty.
func (s *ShardSet) Step() bool {
	best := -1
	for i := range s.lanes {
		h := s.lanes[i].heap
		if len(h) == 0 {
			continue
		}
		if best < 0 || entryLess(&h[0], &s.lanes[best].heap[0]) {
			best = i
		}
	}
	if best < 0 {
		return false
	}
	e := heapPop(&s.lanes[best].heap)
	if e.at >= s.winEnd {
		s.winEnd = e.at + s.window
		s.stats.Windows++
	}
	s.now = e.at
	s.ran++
	s.cur = int32(best)
	if e.kind == KindClosure {
		e.actor.(func())()
	} else if h := s.table[e.kind]; h != nil {
		h(e.actor, e.arg)
	} else {
		s.cur = -1
		panic(fmt.Sprintf("event: no handler for kind %d", e.kind))
	}
	s.cur = -1
	return true
}

// RunUntil executes every event with timestamp <= limit and advances
// the clock to limit. Returns the number of events executed.
func (s *ShardSet) RunUntil(limit Time) uint64 {
	var c uint64
	for {
		t, ok := s.NextTime()
		if !ok || t > limit {
			break
		}
		s.Step()
		c++
	}
	if s.now < limit {
		s.now = limit
	}
	return c
}

// Post schedules a typed event on this lane. Posting into the past
// panics, matching Queue.Post.
func (l *Lane) Post(t Time, k Kind, actor any, arg int64) {
	s := l.set
	if t < s.now {
		panic(fmt.Sprintf("event: Post at t=%d before now=%d", t, s.now))
	}
	if s.cur >= 0 && s.cur != l.idx {
		s.stats.Crossings++
		if t < s.winEnd {
			s.stats.Violations++
		}
	}
	heapPush(&l.heap, entry{at: t, seq: s.gseq, arg: arg, actor: actor, kind: k})
	s.gseq++
}

// PostAfter schedules a typed event delay cycles from now.
func (l *Lane) PostAfter(delay Time, k Kind, actor any, arg int64) {
	l.Post(l.set.now+delay, k, actor, arg)
}

// Now returns the set-wide simulation time.
func (l *Lane) Now() Time { return l.set.now }

// --- parallel engine ---

// FastSet is the multicore sharded engine: one calendar Queue per
// shard, persistent worker goroutines, and a window-barrier coordinator
// that exchanges cross-shard mailboxes at window edges. Drive it with
// Start, repeated Window calls, and Stop. All coordinator methods
// (Window, Len, NextTime, Stats) must be called between windows, never
// concurrently with one.
type FastSet struct {
	window Time
	qs     []*Queue
	// mail[src*len(qs)+dst] is the (src -> dst) mailbox, appended by
	// src's worker during its window (single writer) and drained by the
	// coordinator after the barrier. Entry seq is unused in the box; the
	// flush's stable sort keyed on at preserves (src, post-order) for
	// equal timestamps, realizing (at, srcShard, srcPostOrder).
	mail    [][]entry
	cmd     []chan Time
	ack     chan int
	started bool
	// panics recovered on worker goroutines, re-raised by the
	// coordinator so model bugs still fail loudly.
	panicMu  sync.Mutex
	panicked []any
	stats    ShardStats
	scratch  []entry
}

// NewFastSet builds a parallel engine with the given shard count and
// synchronization window (minimum inter-shard delay, >= 1).
func NewFastSet(shards int, window Time) *FastSet {
	if shards < 1 {
		panic("event: NewFastSet with shards < 1")
	}
	if window < 1 {
		panic("event: NewFastSet with window < 1")
	}
	f := &FastSet{window: window}
	f.qs = make([]*Queue, shards)
	for i := range f.qs {
		f.qs[i] = &Queue{}
	}
	f.mail = make([][]entry, shards*shards)
	return f
}

// Queue returns shard i's event queue. Register handlers on every
// queue before Start; post initial events before Start or between
// windows (coordinator context only).
func (f *FastSet) Queue(i int) *Queue { return f.qs[i] }

// Shards returns the shard count.
func (f *FastSet) Shards() int { return len(f.qs) }

// Mail appends a cross-shard event to the (src, dst) mailbox. Must be
// called from src's worker during its window (or from the coordinator
// between windows). The entry is delivered to dst's queue at the next
// window edge; t must be at or past that edge or Window returns a
// LookaheadError.
func (f *FastSet) Mail(src, dst int32, t Time, k Kind, actor any, arg int64) {
	box := &f.mail[int(src)*len(f.qs)+int(dst)]
	*box = append(*box, entry{at: t, arg: arg, actor: actor, kind: k})
}

// Start launches the worker goroutines. Idempotent until Stop.
func (f *FastSet) Start() {
	if f.started {
		return
	}
	f.started = true
	f.cmd = make([]chan Time, len(f.qs))
	f.ack = make(chan int, len(f.qs))
	for i := range f.qs {
		f.cmd[i] = make(chan Time)
		go f.worker(i)
	}
}

// Stop shuts the workers down and waits for them to exit. Idempotent.
func (f *FastSet) Stop() {
	if !f.started {
		return
	}
	for _, c := range f.cmd {
		close(c)
	}
	f.started = false
}

func (f *FastSet) worker(i int) {
	q := f.qs[i]
	for limit := range f.cmd[i] {
		func() {
			defer func() {
				if r := recover(); r != nil {
					// The coordinator re-raises on the caller's stack, so
					// capture this goroutine's stack now or lose the site.
					f.panicMu.Lock()
					f.panicked = append(f.panicked,
						fmt.Sprintf("shard %d worker: %v\n%s", i, r, debug.Stack()))
					f.panicMu.Unlock()
				}
				f.ack <- i
			}()
			q.RunUntil(limit)
		}()
	}
}

// NextTime reports the earliest pending timestamp across all shards.
func (f *FastSet) NextTime() (Time, bool) {
	var best Time
	ok := false
	for _, q := range f.qs {
		if t, has := q.NextTime(); has && (!ok || t < best) {
			best, ok = t, true
		}
	}
	return best, ok
}

// Len returns the pending-event total across all shards. Mailboxes are
// always empty between windows.
func (f *FastSet) Len() int {
	n := 0
	for _, q := range f.qs {
		n += q.Len()
	}
	return n
}

// Processed returns the total events executed across all shards.
func (f *FastSet) Processed() uint64 {
	var n uint64
	for _, q := range f.qs {
		n += q.ran
	}
	return n
}

// Stats returns the window/crossing counters.
func (f *FastSet) Stats() ShardStats { return f.stats }

// Now returns the coordinator-visible clock: every queue sits at the
// same time between windows.
func (f *FastSet) Now() Time { return f.qs[0].now }

// Window opens the next synchronization window at the earliest pending
// timestamp T, runs every shard concurrently through [T, T+W), then
// flushes cross-shard mailboxes in (at, srcShard, srcPostOrder) order.
// Returns the events executed and ran=false when no events remain
// anywhere. Requires Start.
func (f *FastSet) Window() (processed uint64, ran bool, err error) {
	if !f.started {
		panic("event: FastSet.Window before Start")
	}
	start, ok := f.NextTime()
	if !ok {
		return 0, false, nil
	}
	limit := start + f.window - 1 // events at <= limit, i.e. strictly inside [T, T+W)
	before := f.Processed()
	for _, c := range f.cmd {
		c <- limit
	}
	for range f.cmd {
		<-f.ack
	}
	if len(f.panicked) > 0 {
		r := f.panicked[0]
		f.Stop()
		panic(r)
	}
	f.stats.Windows++
	if err := f.flush(limit + 1); err != nil {
		return f.Processed() - before, true, err
	}
	return f.Processed() - before, true, nil
}

// flush drains every mailbox into its destination queue. For one
// destination, entries merge across sources by (at, srcShard,
// srcPostOrder): boxes are visited in ascending src order and the sort
// is stable on at alone, so equal-timestamp entries keep source-major
// post order. Destination queues assign fresh local seq on Post, which
// preserves the merge order for equal timestamps (per-cycle FIFO).
func (f *FastSet) flush(winEnd Time) error {
	n := len(f.qs)
	for dst := 0; dst < n; dst++ {
		buf := f.scratch[:0]
		for src := 0; src < n; src++ {
			box := &f.mail[src*n+dst]
			if len(*box) == 0 {
				continue
			}
			for _, e := range *box {
				if e.at < winEnd {
					return &LookaheadError{Src: int32(src), Dst: int32(dst), Kind: e.kind, At: e.at, WinEnd: winEnd}
				}
			}
			buf = append(buf, *box...)
			*box = (*box)[:0]
		}
		if len(buf) == 0 {
			continue
		}
		f.stats.Crossings += uint64(len(buf))
		sort.SliceStable(buf, func(i, j int) bool { return buf[i].at < buf[j].at })
		q := f.qs[dst]
		for _, e := range buf {
			q.Post(e.at, e.kind, e.actor, e.arg)
		}
		f.scratch = buf
	}
	return nil
}
