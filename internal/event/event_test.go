package event

import (
	"testing"
	"testing/quick"

	"mcastsim/internal/rng"
)

// postAt and postAfter mirror the eventtest helpers (which the
// in-package tests cannot import without a cycle): closures ride as
// KindClosure records.
func postAt(q *Queue, t Time, fn func()) { q.Post(t, KindClosure, fn, 0) }

func postAfter(q *Queue, delay Time, fn func()) {
	if delay < 0 {
		panic("event: negative delay")
	}
	q.Post(q.Now()+delay, KindClosure, fn, 0)
}

func TestTimeOrdering(t *testing.T) {
	var q Queue
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		postAt(&q, at, func() { got = append(got, at) })
	}
	for q.Step() {
	}
	want := []Time{10, 20, 30, 40, 50}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestFIFOWithinCycle(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		postAt(&q, 5, func() { got = append(got, i) })
	}
	for q.Step() {
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle events ran out of order: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	var q Queue
	postAt(&q, 7, func() {})
	q.Step()
	if q.Now() != 7 {
		t.Fatalf("Now = %d, want 7", q.Now())
	}
}

func TestAfterRelative(t *testing.T) {
	var q Queue
	var fired Time = -1
	postAt(&q, 10, func() {
		postAfter(&q, 5, func() { fired = q.Now() })
	})
	for q.Step() {
	}
	if fired != 15 {
		t.Fatalf("After fired at %d, want 15", fired)
	}
}

func TestSchedulingDuringExecution(t *testing.T) {
	// An event scheduled for the current cycle from within an event must
	// still run, after already-queued same-cycle events.
	var q Queue
	var got []string
	postAt(&q, 1, func() {
		got = append(got, "a")
		postAt(&q, 1, func() { got = append(got, "c") })
	})
	postAt(&q, 1, func() { got = append(got, "b") })
	for q.Step() {
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("got %v", got)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var q Queue
	postAt(&q, 10, func() {})
	q.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	postAt(&q, 5, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	var q Queue
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	postAfter(&q, -1, func() {})
}

func TestRunUntil(t *testing.T) {
	var q Queue
	var ran []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		postAt(&q, at, func() { ran = append(ran, at) })
	}
	n := q.RunUntil(12)
	if n != 2 || len(ran) != 2 || ran[1] != 10 {
		t.Fatalf("RunUntil(12) ran %v (n=%d)", ran, n)
	}
	if q.Now() != 12 {
		t.Fatalf("Now = %d, want 12", q.Now())
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
}

func TestRunUntilEmptyAdvancesClock(t *testing.T) {
	var q Queue
	q.RunUntil(100)
	if q.Now() != 100 {
		t.Fatalf("Now = %d, want 100", q.Now())
	}
}

func TestDrainBound(t *testing.T) {
	var q Queue
	// Self-perpetuating event chain: Drain must give up at the bound.
	var tick func()
	tick = func() { postAfter(&q, 1, tick) }
	postAt(&q, 0, tick)
	if q.Drain(100) {
		t.Fatal("Drain claimed an endless chain drained")
	}
	var q2 Queue
	postAt(&q2, 1, func() {})
	if !q2.Drain(100) {
		t.Fatal("Drain failed on a finite queue")
	}
}

func TestProcessedCounts(t *testing.T) {
	var q Queue
	for i := 0; i < 5; i++ {
		postAt(&q, Time(i), func() {})
	}
	for q.Step() {
	}
	if q.Processed() != 5 {
		t.Fatalf("Processed = %d", q.Processed())
	}
}

func TestHeapPropertyRandom(t *testing.T) {
	f := func(raw []uint16) bool {
		var q Queue
		var got []Time
		for _, v := range raw {
			at := Time(v % 1000)
			postAt(&q, at, func() { got = append(got, at) })
		}
		for q.Step() {
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return false
			}
		}
		return len(got) == len(raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	r := rng.New(1)
	var q Queue
	nop := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postAt(&q, q.Now()+Time(r.Intn(64)), nop)
		q.Step()
	}
}
