// Package eventtest holds the closure-scheduling shim for tests and
// one-shot experiment scaffolding.
//
// Production code schedules through typed kinds — Register a Kind once
// and Post/PostAfter fixed-shape records — which keeps every pending
// event enumerable for the snapshot layer (event.PendingEvent,
// sim.Network.Checkpoint). A func() carried as an event actor is opaque
// to that enumeration: it cannot be serialized, so a checkpoint taken
// over one must be refused. Tests, however, often want a throwaway
// callback at a timestamp without minting a kind; these helpers post
// such callbacks as event.KindClosure, the one kind the dispatcher
// runs without a registered handler.
package eventtest

import "mcastsim/internal/event"

// At schedules fn on q at absolute time t.
func At(q *event.Queue, t event.Time, fn func()) {
	q.Post(t, event.KindClosure, fn, 0)
}

// After schedules fn on q delay cycles from now. A negative delay
// panics, matching PostAfter.
func After(q *event.Queue, delay event.Time, fn func()) {
	if delay < 0 {
		panic("event: negative delay")
	}
	q.Post(q.Now()+delay, event.KindClosure, fn, 0)
}

// LaneAt schedules fn on lane 0 of a serial-equivalence shard set at
// absolute time t. Lane choice is immaterial for ordering: the global
// sequence counter makes the merge order independent of lane
// assignment.
func LaneAt(s *event.ShardSet, t event.Time, fn func()) {
	s.Lane(0).Post(t, event.KindClosure, fn, 0)
}

// LaneAfter schedules fn on lane 0 delay cycles from now.
func LaneAfter(s *event.ShardSet, delay event.Time, fn func()) {
	if delay < 0 {
		panic("event: negative delay")
	}
	s.Lane(0).Post(s.Now()+delay, event.KindClosure, fn, 0)
}
