package event

import "testing"

// kTick is a throwaway typed kind for snapshot tests.
const kTick Kind = 1

// TestSnapshotPendingRealizedOrder checks that enumeration returns the
// exact realized dispatch order and leaves the schedule unchanged: a
// queue stepped after SnapshotPending runs events in the enumerated
// order.
func TestSnapshotPendingRealizedOrder(t *testing.T) {
	for _, backend := range []Backend{BackendCalendar, BackendHeap} {
		var q Queue
		q.SetBackend(backend)
		var got []int64
		q.Register(kTick, func(_ any, arg int64) { got = append(got, arg) })
		// Mix near (ring) and far (overflow) posts, with same-cycle FIFO.
		q.Post(5, kTick, nil, 0)
		q.Post(5, kTick, nil, 1)
		q.Post(3, kTick, nil, 2)
		q.Post(5000, kTick, nil, 3) // beyond the calendar window
		q.Post(3, kTick, nil, 4)

		pend := q.SnapshotPending()
		if len(pend) != 5 {
			t.Fatalf("backend %d: %d pending, want 5", backend, len(pend))
		}
		wantOrder := []int64{2, 4, 0, 1, 3}
		for i, p := range pend {
			if p.Arg != wantOrder[i] || p.Kind != kTick {
				t.Fatalf("backend %d: enumeration %d = arg %d kind %d, want arg %d",
					backend, i, p.Arg, p.Kind, wantOrder[i])
			}
		}
		wantAt := []Time{3, 3, 5, 5, 5000}
		for i, p := range pend {
			if p.At != wantAt[i] {
				t.Fatalf("backend %d: enumeration %d at %d, want %d", backend, i, p.At, wantAt[i])
			}
		}
		for q.Step() {
		}
		for i, v := range got {
			if v != wantOrder[i] {
				t.Fatalf("backend %d: dispatch order %v, want %v", backend, got, wantOrder)
			}
		}
	}
}

// TestQueueResetToRepost checks the restore sequence: reset an empty
// queue to a snapshot clock, re-post the enumerated events, and get the
// identical dispatch.
func TestQueueResetToRepost(t *testing.T) {
	var src Queue
	src.Register(kTick, func(any, int64) {})
	src.Post(100, kTick, nil, 1)
	src.Post(100, kTick, nil, 2)
	src.Post(90, kTick, nil, 3)
	src.RunUntil(80)
	pend := src.SnapshotPending()

	var dst Queue
	var got []int64
	dst.Register(kTick, func(_ any, arg int64) { got = append(got, arg) })
	dst.ResetTo(src.Now(), src.Processed())
	if dst.Now() != 80 {
		t.Fatalf("Now = %d after ResetTo", dst.Now())
	}
	for _, p := range pend {
		dst.Post(p.At, p.Kind, p.Actor, p.Arg)
	}
	for dst.Step() {
	}
	want := []int64{3, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("ran %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch %v, want %v", got, want)
		}
	}
}

func TestResetToPendingPanics(t *testing.T) {
	var q Queue
	q.Post(1, kTick, nil, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("ResetTo with pending events did not panic")
		}
	}()
	q.ResetTo(10, 0)
}

// TestShardSetSnapshotPending checks lane-tagged enumeration in global
// merge order and the ResetTo/re-post restore path across lanes.
func TestShardSetSnapshotPending(t *testing.T) {
	s := NewShardSet(3, 4)
	var got []int64
	s.Register(kTick, func(_ any, arg int64) { got = append(got, arg) })
	s.Lane(2).Post(7, kTick, nil, 0)
	s.Lane(0).Post(7, kTick, nil, 1)
	s.Lane(1).Post(2, kTick, nil, 2)

	pend := s.SnapshotPending()
	wantArg := []int64{2, 0, 1}
	wantLane := []int32{1, 2, 0}
	if len(pend) != 3 {
		t.Fatalf("%d pending", len(pend))
	}
	for i := range pend {
		if pend[i].Arg != wantArg[i] || pend[i].Lane != wantLane[i] {
			t.Fatalf("enumeration %d = (arg %d, lane %d), want (%d, %d)",
				i, pend[i].Arg, pend[i].Lane, wantArg[i], wantLane[i])
		}
	}
	// The schedule must be untouched: stepping realizes the same order.
	for s.Step() {
	}
	for i := range wantArg {
		if got[i] != wantArg[i] {
			t.Fatalf("dispatch %v, want %v", got, wantArg)
		}
	}

	// Restore into a fresh set, preserving lane homes.
	dst := NewShardSet(3, 4)
	var got2 []int64
	dst.Register(kTick, func(_ any, arg int64) { got2 = append(got2, arg) })
	dst.ResetTo(1, 0)
	for _, p := range pend {
		dst.Lane(int(p.Lane)).Post(p.At, p.Kind, p.Actor, p.Arg)
	}
	for dst.Step() {
	}
	for i := range wantArg {
		if got2[i] != wantArg[i] {
			t.Fatalf("restored dispatch %v, want %v", got2, wantArg)
		}
	}
}
