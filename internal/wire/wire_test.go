package wire

import (
	"testing"

	"mcastsim/internal/bitset"
	"mcastsim/internal/mcast/pathworm"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

func defaultSizes() Sizes { return Sizes{Nodes: 32, Switches: 8, PortsPerSwitch: 8} }

func routed(t *testing.T, seed uint64) (*topology.Topology, *updown.Routing) {
	t.Helper()
	topo, err := topology.Generate(topology.DefaultConfig(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := updown.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	return topo, rt
}

func TestSizesValidate(t *testing.T) {
	if err := defaultSizes().Validate(); err != nil {
		t.Fatal(err)
	}
	// Sizes past the paper's 1-byte id space are valid now that the id
	// field widens; the codec caps at the 2-byte space.
	ok := []Sizes{
		{Nodes: 250, Switches: 10, PortsPerSwitch: 8},
		{Nodes: 8, Switches: 2, PortsPerSwitch: 65},
		{Nodes: 65000, Switches: 536, PortsPerSwitch: 256},
	}
	for i, z := range ok {
		if err := z.Validate(); err != nil {
			t.Errorf("case %d rejected: %v", i, err)
		}
	}
	bad := []Sizes{
		{Nodes: 0, Switches: 1, PortsPerSwitch: 1},
		{Nodes: 65000, Switches: 537, PortsPerSwitch: 8},
		{Nodes: 8, Switches: 2, PortsPerSwitch: 257},
	}
	for i, z := range bad {
		if z.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestUnicastRoundTrip(t *testing.T) {
	z := defaultSizes()
	for d := 0; d < z.Nodes; d++ {
		b, err := EncodeUnicast(z, topology.NodeID(d))
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != sim.UnicastHeaderFlits {
			t.Fatalf("unicast header %d bytes, sim says %d flits", len(b), sim.UnicastHeaderFlits)
		}
		got, err := DecodeUnicast(z, b)
		if err != nil {
			t.Fatal(err)
		}
		if got != topology.NodeID(d) {
			t.Fatalf("round trip %d -> %d", d, got)
		}
	}
}

func TestUnicastErrors(t *testing.T) {
	z := defaultSizes()
	if _, err := EncodeUnicast(z, 99); err == nil {
		t.Fatal("out-of-range dest encoded")
	}
	if _, err := DecodeUnicast(z, []byte{TagTree, 0}); err == nil {
		t.Fatal("wrong tag decoded")
	}
	if _, err := DecodeUnicast(z, []byte{TagUnicast}); err == nil {
		t.Fatal("short header decoded")
	}
	if _, err := DecodeUnicast(z, []byte{TagUnicast, 200}); err == nil {
		t.Fatal("out-of-range payload decoded")
	}
}

func TestTreeRoundTripRandom(t *testing.T) {
	z := defaultSizes()
	r := rng.New(1)
	for trial := 0; trial < 100; trial++ {
		set := bitset.New(z.Nodes)
		k := 1 + r.Intn(z.Nodes)
		for _, v := range r.Sample(z.Nodes, k) {
			set.Add(v)
		}
		b, err := EncodeTree(z, set)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != sim.TreeHeaderFlits(z.Nodes) {
			t.Fatalf("tree header %d bytes, sim says %d flits", len(b), sim.TreeHeaderFlits(z.Nodes))
		}
		got, err := DecodeTree(z, b)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(set) {
			t.Fatalf("tree round trip changed the set")
		}
	}
}

func TestTreeRejectsStrayBits(t *testing.T) {
	// 33 nodes -> 5 mask bytes with 7 spare bits that must stay zero.
	z := Sizes{Nodes: 33, Switches: 8, PortsPerSwitch: 8}
	set := bitset.FromIndices(33, []int{0})
	b, err := EncodeTree(z, set)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] |= 0x80 // a bit beyond node 32
	if _, err := DecodeTree(z, b); err == nil {
		t.Fatal("stray bit accepted")
	}
}

func TestTreeErrors(t *testing.T) {
	z := defaultSizes()
	if _, err := EncodeTree(z, bitset.New(32)); err == nil {
		t.Fatal("empty set encoded")
	}
	if _, err := EncodeTree(z, bitset.FromIndices(16, []int{1})); err == nil {
		t.Fatal("wrong universe encoded")
	}
	if _, err := DecodeTree(z, []byte{TagTree, 0, 0, 0, 0}); err == nil {
		t.Fatal("empty decoded set accepted")
	}
}

func TestPathRoundTripPlannerOutput(t *testing.T) {
	// Round-trip every worm the real planner produces across random
	// topologies and destination sets — codec and planner must agree.
	for seed := uint64(1); seed <= 5; seed++ {
		topo, rt := routed(t, seed)
		r := rng.New(seed * 17)
		for trial := 0; trial < 10; trial++ {
			picks := r.Sample(topo.NumNodes, 17)
			src := topology.NodeID(picks[0])
			dests := make([]topology.NodeID, 16)
			for i, v := range picks[1:] {
				dests[i] = topology.NodeID(v)
			}
			res, err := pathworm.New().Cover(rt, src, dests)
			if err != nil {
				t.Fatal(err)
			}
			for _, specs := range res.Sends {
				for _, w := range specs {
					b, err := EncodePath(topo, w.Path)
					if err != nil {
						t.Fatalf("encode: %v", err)
					}
					want := sim.PathHeaderFlits(len(w.Path), topo.PortsPerSwitch)
					if len(b) != want {
						t.Fatalf("path header %d bytes, sim says %d flits", len(b), want)
					}
					got, err := DecodePath(topo, b)
					if err != nil {
						t.Fatalf("decode: %v", err)
					}
					if len(got) != len(w.Path) {
						t.Fatalf("segment count changed: %d vs %d", len(got), len(w.Path))
					}
					for i := range got {
						if got[i].Switch != w.Path[i].Switch || got[i].NextPort != w.Path[i].NextPort {
							t.Fatalf("segment %d changed: %+v vs %+v", i, got[i], w.Path[i])
						}
						if len(got[i].Drops) != len(w.Path[i].Drops) {
							t.Fatalf("segment %d drops changed", i)
						}
						seen := map[topology.NodeID]bool{}
						for _, d := range got[i].Drops {
							seen[d] = true
						}
						for _, d := range w.Path[i].Drops {
							if !seen[d] {
								t.Fatalf("segment %d lost drop %d", i, d)
							}
						}
					}
				}
			}
		}
	}
}

func TestPathErrors(t *testing.T) {
	topo, _ := routed(t, 9)
	if _, err := EncodePath(topo, nil); err == nil {
		t.Fatal("empty path encoded")
	}
	// A drop not attached to the stop switch.
	var foreign topology.NodeID
	for n := 0; n < topo.NumNodes; n++ {
		if topo.NodeSwitch[n] != 0 {
			foreign = topology.NodeID(n)
			break
		}
	}
	if _, err := EncodePath(topo, []sim.PathSeg{{Switch: 0, Drops: []topology.NodeID{foreign}, NextPort: -1}}); err == nil {
		t.Fatal("foreign drop encoded")
	}
	if _, err := DecodePath(topo, []byte{TagPath, 0}); err == nil {
		t.Fatal("truncated path decoded")
	}
	if _, err := DecodePath(topo, []byte{TagUnicast, 0, 0}); err == nil {
		t.Fatal("wrong tag decoded")
	}
}

func TestPathDecodeRejectsTwoContinuations(t *testing.T) {
	topo, _ := routed(t, 10)
	// Find a switch with two switch ports; set both bits.
	for s := 0; s < topo.NumSwitches; s++ {
		var swPorts []int
		for p := 0; p < topo.PortsPerSwitch; p++ {
			if topo.Conn[s][p].Kind == topology.ToSwitch {
				swPorts = append(swPorts, p)
			}
		}
		if len(swPorts) < 2 {
			continue
		}
		b := []byte{TagPath, byte(topo.NumNodes + s), 0}
		b[2] |= 1 << uint(swPorts[0])
		b[2] |= 1 << uint(swPorts[1])
		// Must have 1+maskBytes per segment: ports=8 -> 1 mask byte. This
		// is a final segment with two continuations -> both error paths
		// (double continuation or final-with-continuation) are fine.
		if _, err := DecodePath(topo, b); err == nil {
			t.Fatal("double continuation accepted")
		}
		return
	}
	t.Skip("no switch with two switch ports")
}

func TestPathFuzzDecode(t *testing.T) {
	topo, _ := routed(t, 11)
	r := rng.New(12)
	for trial := 0; trial < 2000; trial++ {
		n := 1 + r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Intn(256))
		}
		b[0] = TagPath
		// Must never panic; errors are fine.
		_, _ = DecodePath(topo, b)
	}
}

// wideTopo builds a >256-endpoint system (fat-tree, 512 hosts + 20
// switches) so the 2-byte id field is exercised end to end.
func wideTopo(t *testing.T) (*topology.Topology, *updown.Routing) {
	t.Helper()
	topo, err := topology.FatTree(topology.FatTreeConfig{
		Pods: 4, EdgePerPod: 4, AggPerPod: 2, CoreUplinksPerAgg: 2, HostsPerEdge: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := updown.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	return topo, rt
}

func TestUnicastRoundTripWide(t *testing.T) {
	topo, _ := wideTopo(t)
	z := Sizes{Nodes: topo.NumNodes, Switches: topo.NumSwitches, PortsPerSwitch: topo.PortsPerSwitch}
	if z.Nodes+z.Switches <= 256 {
		t.Fatalf("topology too small to exercise the wide id field: %d endpoints", z.Nodes+z.Switches)
	}
	want := sim.UnicastHeaderFlitsFor(z.Nodes, z.Switches)
	for _, d := range []int{0, 1, 255, 256, 257, z.Nodes - 1} {
		b, err := EncodeUnicast(z, topology.NodeID(d))
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != want {
			t.Fatalf("wide unicast header %d bytes, sim says %d flits", len(b), want)
		}
		got, err := DecodeUnicast(z, b)
		if err != nil {
			t.Fatal(err)
		}
		if int(got) != d {
			t.Fatalf("round trip %d -> %d", d, got)
		}
	}
}

func TestPathRoundTripWide(t *testing.T) {
	topo, rt := wideTopo(t)
	r := rng.New(77)
	sch := pathworm.New()
	p := sim.DefaultParams()
	for trial := 0; trial < 20; trial++ {
		src := topology.NodeID(r.Intn(topo.NumNodes))
		seen := map[topology.NodeID]bool{src: true}
		var dests []topology.NodeID
		for len(dests) < 8 {
			d := topology.NodeID(r.Intn(topo.NumNodes))
			if !seen[d] {
				seen[d] = true
				dests = append(dests, d)
			}
		}
		plan, err := sch.Plan(rt, p, src, dests, 64)
		if err != nil {
			t.Fatal(err)
		}
		for _, specs := range plan.HostSends {
			for i := range specs {
				if specs[i].Kind != sim.WormPath {
					continue
				}
				b, err := EncodePath(topo, specs[i].Path)
				if err != nil {
					t.Fatal(err)
				}
				want := sim.PathHeaderFlitsFor(len(specs[i].Path), topo.PortsPerSwitch, topo.NumNodes, topo.NumSwitches)
				if len(b) != want {
					t.Fatalf("wide path header %d bytes, sim says %d flits", len(b), want)
				}
				segs, err := DecodePath(topo, b)
				if err != nil {
					t.Fatal(err)
				}
				if len(segs) != len(specs[i].Path) {
					t.Fatalf("decoded %d segments, want %d", len(segs), len(specs[i].Path))
				}
				for j, seg := range segs {
					orig := specs[i].Path[j]
					if seg.Switch != orig.Switch || seg.NextPort != orig.NextPort || len(seg.Drops) != len(orig.Drops) {
						t.Fatalf("segment %d mismatch: got %+v want %+v", j, seg, orig)
					}
				}
			}
		}
	}
}

func TestTreeIvalRoundTripRandom(t *testing.T) {
	topo, _ := wideTopo(t)
	z := Sizes{Nodes: topo.NumNodes, Switches: topo.NumSwitches, PortsPerSwitch: topo.PortsPerSwitch}
	r := rng.New(99)
	for trial := 0; trial < 200; trial++ {
		set := bitset.New(z.Nodes)
		// Mix of clustered runs and scattered singletons.
		for runs := 1 + r.Intn(5); runs > 0; runs-- {
			lo := r.Intn(z.Nodes)
			hi := lo + r.Intn(40)
			if hi >= z.Nodes {
				hi = z.Nodes - 1
			}
			for i := lo; i <= hi; i++ {
				set.Add(i)
			}
		}
		for k := r.Intn(6); k > 0; k-- {
			set.Add(r.Intn(z.Nodes))
		}
		b, err := EncodeTreeIval(z, set)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != sim.TreeIvalHeaderFlits(set) {
			t.Fatalf("tree-ival header %d bytes, sim says %d flits", len(b), sim.TreeIvalHeaderFlits(set))
		}
		got, err := DecodeTreeIval(z, b)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(set) {
			t.Fatalf("round trip mismatch: %v -> %v", set.Indices(), got.Indices())
		}
	}
}

func TestTreeIvalFuzzDecode(t *testing.T) {
	z := Sizes{Nodes: 512, Switches: 20, PortsPerSwitch: 20}
	r := rng.New(100)
	for trial := 0; trial < 5000; trial++ {
		n := 1 + r.Intn(16)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Intn(256))
		}
		b[0] = TagTreeIval
		// Must never panic; errors are fine. When decode succeeds the
		// result must re-encode to the same bytes (canonical form).
		set, err := DecodeTreeIval(z, b)
		if err != nil {
			continue
		}
		back, err := EncodeTreeIval(z, set)
		if err != nil {
			t.Fatal(err)
		}
		if string(back) != string(b) {
			t.Fatalf("non-canonical decode: % x -> % x", b, back)
		}
	}
}

func TestTreeIvalErrors(t *testing.T) {
	z := defaultSizes()
	if _, err := EncodeTreeIval(z, bitset.New(z.Nodes)); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := EncodeTreeIval(z, bitset.New(z.Nodes+1)); err == nil {
		t.Error("wrong universe accepted")
	}
	set := bitset.New(z.Nodes)
	set.Add(3)
	b, err := EncodeTreeIval(z, set)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTreeIval(z, b[:1]); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := DecodeTreeIval(z, append(b, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	b[0] = TagTree
	if _, err := DecodeTreeIval(z, b); err == nil {
		t.Error("wrong tag accepted")
	}
}
