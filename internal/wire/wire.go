// Package wire implements the byte-level header encodings the paper
// describes, so the architectural cost comparison (§3.3) rests on real
// bytes rather than arithmetic, and so the simulator's header-length
// constants are cross-checked against an actual codec (their tests assert
// len(Encode*) == sim.*HeaderFlits; a flit is one byte).
//
// Formats (first byte is the worm tag, as in the paper's Figure 5(b)):
//
//	unicast:   [tag][id]
//	tree:      [tag][N-bit destination string, ceil(N/8) bytes]  (§3.2.3)
//	tree-ival: [tag][run-list encoding, see package destset]
//	path:      [tag] then per stop: [id][P-bit port mask, ceil(P/8) bytes]
//	           (§3.2.4; the mask's bits select drop ports plus at most one
//	           continuation port, and fields strip as stops are passed)
//
// The paper's path worms address a stop as "the ID of any arbitrary node
// connected to the switch". Our planner also emits pure-transit stops at
// switches that may have no attached node, so the id field carries an
// extended address space: values below numNodes are node IDs; numNodes+s
// addresses switch s directly (documented extension). The id field is one
// byte at the paper's system sizes and widens to two big-endian bytes
// past 256 endpoints (sim.IDBytes); the codec caps the space at 65536.
package wire

import (
	"fmt"

	"mcastsim/internal/bitset"
	"mcastsim/internal/destset"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
)

// Worm tag values.
const (
	TagUnicast  byte = 0x01
	TagTree     byte = 0x02
	TagPath     byte = 0x03
	TagTreeIval byte = 0x04
)

// Sizes captures the address-space parameters a codec needs.
type Sizes struct {
	Nodes          int
	Switches       int
	PortsPerSwitch int
}

// Validate rejects systems the widened id field cannot address.
func (z Sizes) Validate() error {
	switch {
	case z.Nodes <= 0 || z.Switches <= 0 || z.PortsPerSwitch <= 0:
		return fmt.Errorf("wire: non-positive sizes %+v", z)
	case z.Nodes+z.Switches > 65536:
		return fmt.Errorf("wire: %d nodes + %d switches exceed the 2-byte id space", z.Nodes, z.Switches)
	case z.PortsPerSwitch > 256:
		return fmt.Errorf("wire: %d ports exceed the supported mask width", z.PortsPerSwitch)
	}
	return nil
}

func (z Sizes) maskBytes() int { return (z.PortsPerSwitch + 7) / 8 }

// idBytes is the id-field width: 1 byte at the paper's sizes, 2 beyond
// 256 endpoints (matches sim.IDBytes, so header-length constants agree).
func (z Sizes) idBytes() int { return sim.IDBytes(z.Nodes + z.Switches) }

// appendID writes id in the field width (big-endian when widened).
func (z Sizes) appendID(dst []byte, id int) []byte {
	if z.idBytes() == 2 {
		dst = append(dst, byte(id>>8))
	}
	return append(dst, byte(id))
}

// readID parses an id field (field must be exactly idBytes long).
func (z Sizes) readID(field []byte) int {
	if len(field) == 2 {
		return int(field[0])<<8 | int(field[1])
	}
	return int(field[0])
}

// EncodeUnicast encodes a unicast worm header.
func EncodeUnicast(z Sizes, dest topology.NodeID) ([]byte, error) {
	if err := z.Validate(); err != nil {
		return nil, err
	}
	if int(dest) < 0 || int(dest) >= z.Nodes {
		return nil, fmt.Errorf("wire: destination %d out of range", dest)
	}
	return z.appendID([]byte{TagUnicast}, int(dest)), nil
}

// DecodeUnicast parses a unicast header.
func DecodeUnicast(z Sizes, b []byte) (topology.NodeID, error) {
	if err := z.Validate(); err != nil {
		return 0, err
	}
	want := sim.UnicastHeaderFlitsFor(z.Nodes, z.Switches)
	if len(b) != want {
		return 0, fmt.Errorf("wire: unicast header is %d bytes, want %d", len(b), want)
	}
	if b[0] != TagUnicast {
		return 0, fmt.Errorf("wire: bad unicast tag %#x", b[0])
	}
	d := topology.NodeID(z.readID(b[1:]))
	if int(d) >= z.Nodes {
		return 0, fmt.Errorf("wire: decoded destination %d out of range", d)
	}
	return d, nil
}

// EncodeTree encodes the bit-string header of a tree worm. The set's
// universe must equal the node count.
func EncodeTree(z Sizes, dests *bitset.Set) ([]byte, error) {
	if err := z.Validate(); err != nil {
		return nil, err
	}
	if dests.Len() != z.Nodes {
		return nil, fmt.Errorf("wire: destination set universe %d, want %d nodes", dests.Len(), z.Nodes)
	}
	if dests.Empty() {
		return nil, fmt.Errorf("wire: empty destination set")
	}
	out := make([]byte, 1+(z.Nodes+7)/8)
	out[0] = TagTree
	dests.ForEach(func(i int) bool {
		out[1+i/8] |= 1 << (uint(i) % 8)
		return true
	})
	return out, nil
}

// DecodeTree parses a tree header back into a destination set.
func DecodeTree(z Sizes, b []byte) (*bitset.Set, error) {
	if err := z.Validate(); err != nil {
		return nil, err
	}
	want := sim.TreeHeaderFlits(z.Nodes)
	if len(b) != want {
		return nil, fmt.Errorf("wire: tree header is %d bytes, want %d", len(b), want)
	}
	if b[0] != TagTree {
		return nil, fmt.Errorf("wire: bad tree tag %#x", b[0])
	}
	set := bitset.New(z.Nodes)
	for i := 0; i < z.Nodes; i++ {
		if b[1+i/8]&(1<<(uint(i)%8)) != 0 {
			set.Add(i)
		}
	}
	// Reject stray bits beyond the node count (a corrupted header).
	for i := z.Nodes; i < (len(b)-1)*8; i++ {
		if b[1+i/8]&(1<<(uint(i)%8)) != 0 {
			return nil, fmt.Errorf("wire: tree header has destination bit %d beyond %d nodes", i, z.Nodes)
		}
	}
	if set.Empty() {
		return nil, fmt.Errorf("wire: decoded empty destination set")
	}
	return set, nil
}

// EncodeTreeIval encodes the interval-coded (run-list) header of a tree
// worm: the compressed alternative to the flat bit string whose size
// tracks the destination set's run structure instead of the node count
// (package destset documents the byte format). The set's universe must
// equal the node count.
func EncodeTreeIval(z Sizes, dests *bitset.Set) ([]byte, error) {
	if err := z.Validate(); err != nil {
		return nil, err
	}
	if dests.Len() != z.Nodes {
		return nil, fmt.Errorf("wire: destination set universe %d, want %d nodes", dests.Len(), z.Nodes)
	}
	if dests.Empty() {
		return nil, fmt.Errorf("wire: empty destination set")
	}
	out := make([]byte, 1, sim.TreeIvalHeaderFlits(dests))
	out[0] = TagTreeIval
	return destset.AppendIvalEncoded(out, dests), nil
}

// DecodeTreeIval parses an interval-coded tree header back into a
// destination set, rejecting truncated or out-of-universe encodings.
func DecodeTreeIval(z Sizes, b []byte) (*bitset.Set, error) {
	if err := z.Validate(); err != nil {
		return nil, err
	}
	if len(b) < 1 || b[0] != TagTreeIval {
		return nil, fmt.Errorf("wire: bad tree-ival header")
	}
	set := bitset.New(z.Nodes)
	used, err := destset.DecodeIvalInto(set, b[1:])
	if err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	if used != len(b)-1 {
		return nil, fmt.Errorf("wire: tree-ival header has %d trailing bytes", len(b)-1-used)
	}
	if set.Empty() {
		return nil, fmt.Errorf("wire: decoded empty destination set")
	}
	return set, nil
}

// EncodePath encodes a path worm's stop chain. Drops become mask bits via
// the topology's node-port mapping; the continuation port is the mask's
// single switch-port bit (the paper's "at most one other output port").
func EncodePath(topo *topology.Topology, segs []sim.PathSeg) ([]byte, error) {
	z := Sizes{Nodes: topo.NumNodes, Switches: topo.NumSwitches, PortsPerSwitch: topo.PortsPerSwitch}
	if err := z.Validate(); err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("wire: empty path")
	}
	out := make([]byte, 0, sim.PathHeaderFlitsFor(len(segs), z.PortsPerSwitch, z.Nodes, z.Switches))
	out = append(out, TagPath)
	for i, seg := range segs {
		if int(seg.Switch) < 0 || int(seg.Switch) >= z.Switches {
			return nil, fmt.Errorf("wire: segment %d switch out of range", i)
		}
		// Address the stop by an attached node when one exists (the
		// paper's encoding); fall back to the switch-address extension.
		id := z.Nodes + int(seg.Switch)
		if nodes := topo.NodesAt(seg.Switch); len(nodes) > 0 {
			id = int(nodes[0])
		}
		mask := make([]byte, z.maskBytes())
		for _, d := range seg.Drops {
			if topo.NodeSwitch[d] != seg.Switch {
				return nil, fmt.Errorf("wire: segment %d drop %d not attached", i, d)
			}
			p := topo.NodePort[d]
			mask[p/8] |= 1 << (uint(p) % 8)
		}
		if seg.NextPort >= 0 {
			if seg.NextPort >= z.PortsPerSwitch {
				return nil, fmt.Errorf("wire: segment %d continuation port out of range", i)
			}
			if topo.Conn[seg.Switch][seg.NextPort].Kind != topology.ToSwitch {
				return nil, fmt.Errorf("wire: segment %d continuation is not a switch port", i)
			}
			mask[seg.NextPort/8] |= 1 << (uint(seg.NextPort) % 8)
		} else if i != len(segs)-1 {
			return nil, fmt.Errorf("wire: segment %d terminates early", i)
		}
		out = z.appendID(out, id)
		out = append(out, mask...)
	}
	return out, nil
}

// DecodePath parses a path header against a topology, reconstructing the
// stop chain. Mask bits pointing at node ports become drops; the (at most
// one) switch-port bit becomes the continuation.
func DecodePath(topo *topology.Topology, b []byte) ([]sim.PathSeg, error) {
	z := Sizes{Nodes: topo.NumNodes, Switches: topo.NumSwitches, PortsPerSwitch: topo.PortsPerSwitch}
	if err := z.Validate(); err != nil {
		return nil, err
	}
	if len(b) < 1 || b[0] != TagPath {
		return nil, fmt.Errorf("wire: bad path header")
	}
	idB := z.idBytes()
	segBytes := idB + z.maskBytes()
	if (len(b)-1)%segBytes != 0 || len(b) == 1 {
		return nil, fmt.Errorf("wire: path header length %d not 1+k*%d", len(b), segBytes)
	}
	count := (len(b) - 1) / segBytes
	segs := make([]sim.PathSeg, 0, count)
	for i := 0; i < count; i++ {
		field := b[1+i*segBytes : 1+(i+1)*segBytes]
		id := z.readID(field[:idB])
		var sw topology.SwitchID
		switch {
		case id < z.Nodes:
			sw = topo.NodeSwitch[id]
		case id < z.Nodes+z.Switches:
			sw = topology.SwitchID(id - z.Nodes)
		default:
			return nil, fmt.Errorf("wire: segment %d id %d out of the address space", i, id)
		}
		seg := sim.PathSeg{Switch: sw, NextPort: -1}
		for p := 0; p < z.PortsPerSwitch; p++ {
			if field[idB+p/8]&(1<<(uint(p)%8)) == 0 {
				continue
			}
			switch topo.Conn[sw][p].Kind {
			case topology.ToNode:
				seg.Drops = append(seg.Drops, topo.Conn[sw][p].Node)
			case topology.ToSwitch:
				if seg.NextPort != -1 {
					return nil, fmt.Errorf("wire: segment %d selects two continuation ports", i)
				}
				seg.NextPort = p
			default:
				return nil, fmt.Errorf("wire: segment %d selects an open port", i)
			}
		}
		if seg.NextPort != -1 && i == count-1 {
			return nil, fmt.Errorf("wire: final segment has a continuation")
		}
		if seg.NextPort == -1 && i != count-1 {
			return nil, fmt.Errorf("wire: segment %d lacks a continuation", i)
		}
		segs = append(segs, seg)
	}
	return segs, nil
}
