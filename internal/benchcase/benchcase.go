// Package benchcase holds the perf-trajectory benchmark bodies shared
// between the `go test -bench` harness (bench_test.go wraps them) and the
// JSON emitter (`cmd/mcastsim -emit-bench` runs them via testing.Benchmark
// and writes BENCH_PR3.json). Keeping one body per benchmark guarantees
// the CI artifact and the interactive numbers measure the same workload.
package benchcase

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"mcastsim/internal/bitset"
	"mcastsim/internal/destset"
	"mcastsim/internal/event"
	"mcastsim/internal/experiment"
	"mcastsim/internal/mcast"
	"mcastsim/internal/mcast/pathworm"
	"mcastsim/internal/mcast/treeworm"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// drainLargeSpec pins the DrainLarge workload: a 64-switch, 512-host
// irregular network draining a mixed unicast/multicast burst. The message
// mix (half unicast, a quarter tree worms, a quarter path worms) exercises
// all three worm-advancement paths plus the NI/DMA pipeline.
const (
	drainSwitches = 64
	drainPorts    = 16
	drainNodes    = 512
	drainSeed     = 0xd2a1_4a26e
	drainMsgs     = 96
	drainDegree   = 16
	drainFlits    = 256
)

// drainLargeWorkload is the precomputed part of DrainLarge: one routed
// topology and a deterministic message schedule.
type drainLargeWorkload struct {
	rt    *updown.Routing
	plans []*sim.Plan
}

func buildDrainLarge() (*drainLargeWorkload, error) {
	cfg := topology.Config{
		Switches:            drainSwitches,
		PortsPerSwitch:      drainPorts,
		Nodes:               drainNodes,
		ExtraLinksPerSwitch: -1,
	}
	topo, err := topology.Generate(cfg, rng.New(drainSeed))
	if err != nil {
		return nil, err
	}
	rt, err := updown.New(topo)
	if err != nil {
		return nil, err
	}
	w := &drainLargeWorkload{rt: rt}
	r := rng.New(rng.Mix(drainSeed, 0xbe7c))
	tree := treeworm.New()
	path := pathworm.New()
	p := sim.DefaultParams()
	for i := 0; i < drainMsgs; i++ {
		var sch mcast.Scheme
		degree := drainDegree
		switch {
		case i%2 == 0:
			degree = 1 // unicast half of the mix
			sch = nil
		case i%4 == 1:
			sch = tree
		default:
			sch = path
		}
		picks := r.Sample(drainNodes, degree+1)
		src := topology.NodeID(picks[0])
		dests := make([]topology.NodeID, degree)
		for j, v := range picks[1:] {
			dests[j] = topology.NodeID(v)
		}
		var plan *sim.Plan
		if sch == nil {
			specs := make([]sim.WormSpec, len(dests))
			for j, d := range dests {
				specs[j] = sim.WormSpec{Kind: sim.WormUnicast, Dest: d}
			}
			plan = &sim.Plan{Source: src, Dests: dests,
				HostSends: map[topology.NodeID][]sim.WormSpec{src: specs}}
		} else {
			plan, err = sch.Plan(rt, p, src, dests, drainFlits)
			if err != nil {
				return nil, fmt.Errorf("benchcase: plan %d (%s): %w", i, sch.Name(), err)
			}
		}
		w.plans = append(w.plans, plan)
	}
	return w, nil
}

// runDrainLarge injects the burst (messages staggered 50 cycles apart)
// and drains the network, returning the event count.
func (w *drainLargeWorkload) run(seed uint64) (uint64, error) {
	n, err := sim.New(w.rt, sim.DefaultParams(), seed)
	if err != nil {
		return 0, err
	}
	for i, plan := range w.plans {
		at := n.Now() + event.Time(50*i)
		if _, err := n.Send(plan, drainFlits, at, nil); err != nil {
			return 0, fmt.Errorf("benchcase: send %d: %w", i, err)
		}
	}
	if err := n.Drain(0); err != nil {
		return 0, err
	}
	return n.EventsProcessed(), nil
}

// DrainLarge is the large-topology drain benchmark: 64 switches, 512
// hosts, a mixed unicast/tree/path burst driven to completion. It reports
// events/sec (the scheduler-core throughput the PR 3 refactor targets)
// alongside the standard ns/op and allocs/op.
func DrainLarge(b *testing.B) {
	w, err := buildDrainLarge()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		ev, err := w.run(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		events += ev
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// treeStormSpec pins the TreeStorm workload: a switch-rich network (768
// switches, only 256 nodes) where every message is a high-degree tree
// worm aimed at one of a handful of shared destination groups. The shape
// is deliberately routing-bound: climbPorts runs a reverse BFS over all
// 768 switches for every up-phase decision, short messages (16 payload
// flits split into two 8-flit packets) keep flit streaming cheap, and the
// second packet of each message plus the shared groups re-present
// identical (switch, phase, set) decisions — the regime the PR 4 route
// cache targets.
const (
	treeSwitches = 768
	treePorts    = 8
	treeNodes    = 256
	treeSeed     = 0x7ee5_70a3
	treeGroups   = 6
	treeDegree   = 64
	treeMsgs     = 48
	treeFlits    = 16
	treePktFlits = 8
)

// treeStormWorkload is the precomputed part of TreeStorm: one routed
// topology, tuned params, and a deterministic tree-worm schedule.
type treeStormWorkload struct {
	rt     *updown.Routing
	params sim.Params
	plans  []*sim.Plan
}

func buildTreeStorm(p sim.Params) (*treeStormWorkload, error) {
	cfg := topology.Config{
		Switches:            treeSwitches,
		PortsPerSwitch:      treePorts,
		Nodes:               treeNodes,
		ExtraLinksPerSwitch: -1,
	}
	topo, err := topology.Generate(cfg, rng.New(treeSeed))
	if err != nil {
		return nil, err
	}
	rt, err := updown.New(topo)
	if err != nil {
		return nil, err
	}
	w := &treeStormWorkload{rt: rt, params: p}
	// Groups draw from nodes [treeMsgs, treeNodes) and message i sources
	// from node i, so a source never appears in its own destination set
	// (Plan.Validate rejects that).
	r := rng.New(rng.Mix(treeSeed, 0x7ee))
	groups := make([][]topology.NodeID, treeGroups)
	for g := range groups {
		picks := r.Sample(treeNodes-treeMsgs, treeDegree)
		dests := make([]topology.NodeID, treeDegree)
		for j, v := range picks {
			dests[j] = topology.NodeID(v + treeMsgs)
		}
		groups[g] = dests
	}
	tree := treeworm.New()
	for i := 0; i < treeMsgs; i++ {
		src := topology.NodeID(i)
		plan, err := tree.Plan(rt, p, src, groups[i%treeGroups], treeFlits)
		if err != nil {
			return nil, fmt.Errorf("benchcase: tree plan %d: %w", i, err)
		}
		w.plans = append(w.plans, plan)
	}
	return w, nil
}

// run injects the tree-worm burst (staggered 20 cycles apart) and drains
// the network, returning the event count.
func (w *treeStormWorkload) run(seed uint64, opts ...sim.Option) (uint64, error) {
	n, err := sim.New(w.rt, w.params, seed, opts...)
	if err != nil {
		return 0, err
	}
	for i, plan := range w.plans {
		at := n.Now() + event.Time(20*i)
		if _, err := n.Send(plan, treeFlits, at, nil); err != nil {
			return 0, fmt.Errorf("benchcase: tree send %d: %w", i, err)
		}
	}
	if err := n.Drain(0); err != nil {
		return 0, err
	}
	return n.EventsProcessed(), nil
}

// TreeStorm is the tree-routing benchmark added for PR 4: 48 two-packet
// tree worms over 6 shared 64-destination groups on a 768-switch network.
// It reports events/sec like DrainLarge; the PR 4 acceptance target is a
// >= 1.5x events/sec improvement from the epoch-tagged route cache and
// the allocation-free worm lifecycle.
func TreeStorm(b *testing.B) {
	p := sim.DefaultParams()
	p.PacketFlits = treePktFlits
	w, err := buildTreeStorm(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		ev, err := w.run(uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		events += ev
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// shardLinkDelay widens the conservative window for the ShardScaling
// family. The fast engine's lookahead window is W = LinkDelay; at the
// default 1-cycle delay the per-window barrier fires every cycle and
// swamps any parallel gain, so the family re-times TreeStorm with
// 8-cycle links — the long-cable regime the sharded engine targets,
// where each shard processes a full window of work between barriers.
const shardLinkDelay = 8

// ShardScaling returns the k-shard member of the shard-scaling
// benchmark family: the TreeStorm workload re-timed with 8-cycle links,
// run on the serial single-queue engine for k == 1 (the reference) and
// on the parallel fast-mode engine (sim.WithFastShards) for k > 1.
// Every member reports events/sec; BENCH_PR8.json records the 4-shard /
// 1-shard ratio as the PR 8 scaling metric, enforced only on boxes with
// >= 4 CPUs (a 1-CPU runner measures scheduling overhead, not scaling).
func ShardScaling(shards int) func(b *testing.B) {
	return func(b *testing.B) {
		p := sim.DefaultParams()
		p.PacketFlits = treePktFlits
		p.LinkDelay = shardLinkDelay
		w, err := buildTreeStorm(p)
		if err != nil {
			b.Fatal(err)
		}
		var opts []sim.Option
		if shards > 1 {
			opts = append(opts, sim.WithFastShards(shards))
		}
		b.ReportAllocs()
		b.ResetTimer()
		var events uint64
		for i := 0; i < b.N; i++ {
			ev, err := w.run(uint64(i), opts...)
			if err != nil {
				b.Fatal(err)
			}
			events += ev
		}
		b.StopTimer()
		if s := b.Elapsed().Seconds(); s > 0 {
			b.ReportMetric(float64(events)/s, "events/sec")
		}
		b.ReportMetric(float64(events)/float64(b.N), "events/op")
	}
}

// SweepParallel is the experiment-harness benchmark from PR 2: the full
// Figure 9 sweep at quick scale with one worker per CPU.
func SweepParallel(b *testing.B) {
	cfg := experiment.Quick()
	cfg.Warmup, cfg.Measure, cfg.Drain = 5_000, 25_000, 20_000
	cfg.Loads = []float64{0.1, 0.3}
	cfg.LoadDegrees = []int{8}
	cfg.Workers = runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig9LoadVsR(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// headerEncodeSpec pins the HeaderEncode workload: destination-header
// sizing and encoding for a rack-clustered multicast on the scale
// sweep's large fat-tree (101376 hosts), the per-injection work the
// interval coding adds to the sim hot path. Each op processes one
// 8-rack set under both codings: the flat bit-string append and the
// zero-alloc interval helpers (size + fingerprint + append) the
// simulator and route cache call.
const (
	hdrRacks        = 8
	hdrHostsPerRack = 132
	hdrUniverse     = 101_376
)

// HeaderEncode is the header-encoding benchmark added for the scale
// sweep: flat vs interval destination coding over a 1056-destination
// rack-clustered set in a 101k-host universe. It reports headers/sec
// (one header = one coding of the whole set).
func HeaderEncode(b *testing.B) {
	set := bitset.New(hdrUniverse)
	r := rng.New(0x4ead_e2)
	for _, rack := range r.Sample(hdrUniverse/hdrHostsPerRack, hdrRacks) {
		base := rack * hdrHostsPerRack
		for i := 0; i < hdrHostsPerRack; i++ {
			set.Add(base + i)
		}
	}
	flat := destset.FromBits(destset.Flat, set)
	buf := make([]byte, 0, 1+(hdrUniverse+7)/8)
	var sink uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = flat.AppendEncoded(buf[:0])
		sink += uint64(len(buf))
		sink += uint64(destset.IvalBytesOf(set))
		sink ^= destset.IvalFingerprintOf(set)
		buf = destset.AppendIvalEncoded(buf[:0], set)
		sink += uint64(len(buf))
	}
	b.StopTimer()
	if sink == 0 {
		b.Fatal("benchcase: header encode produced nothing")
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(2*b.N)/s, "headers/sec")
	}
}

// scaleFT caches the scale sweep's L-tier routed fat-tree (1088
// switches, 101376 hosts) for the sparse-representation families. The
// universe is above sim.SparseUniverseThreshold, so RepAuto selects the
// run-coded destination sets — exactly the regime PR 9's hot-path work
// targets. Building it costs seconds, so it is shared across benchmark
// rounds (testing.Benchmark re-enters the body with growing b.N) and
// between SparseStorm and ScaleSim; at ~30 MB resident it is cheap to
// keep.
var scaleFT struct {
	once sync.Once
	rt   *updown.Routing
	err  error
}

func scaleFatTree() (*updown.Routing, error) {
	scaleFT.once.Do(func() {
		t, err := topology.FatTree(topology.FatTreeConfig{
			Pods: 32, EdgePerPod: 24, AggPerPod: 8, CoreUplinksPerAgg: 8, HostsPerEdge: 132,
		})
		if err != nil {
			scaleFT.err = err
			return
		}
		scaleFT.rt, scaleFT.err = updown.New(t)
	})
	return scaleFT.rt, scaleFT.err
}

// rackPlan draws a rack-clustered tree multicast on rt: every host on
// `racks` sampled host-bearing switches, excluding src, planned by the
// switch-based tree scheme.
func rackPlan(rt *updown.Routing, p sim.Params, r *rng.Source, racks int, src topology.NodeID, flits int) (*sim.Plan, error) {
	t := rt.Topo
	nbs := t.NodesBySwitch()
	var hs []int
	for s := 0; s < t.NumSwitches; s++ {
		if len(nbs[s]) > 0 {
			hs = append(hs, s)
		}
	}
	var dests []topology.NodeID
	for _, i := range r.Sample(len(hs), racks) {
		for _, n := range nbs[hs[i]] {
			if n != src {
				dests = append(dests, n)
			}
		}
	}
	return treeworm.New().Plan(rt, p, src, dests, flits)
}

// sparseStormSpec pins the SparseStorm workload: a burst of short
// rack-clustered tree multicasts on the 101k-host fat-tree, cycling over
// a handful of shared destination sets. Above the sparse threshold every
// destination set is run-coded, so the burst drives the PR 9 hot paths —
// pooled run sets, per-branch subset splitting, and the route cache's
// interval-run keys (the shared sets re-present identical (switch, set)
// decisions) — with flit streaming kept cheap by the short payload.
const (
	sparseRacks    = 8
	sparseGroups   = 3
	sparseMsgs     = 12
	sparseFlits    = 16
	sparsePktFlits = 8
	sparseSeed     = 0x5a2e_510
)

// SparseStorm is the sparse-representation planning/branch storm: 12
// two-packet interval-coded tree worms over 3 shared 8-rack destination
// sets (~1050 destinations each) on the 101k-host fat-tree. It reports
// events/sec like the other simulator families; the PR 9 target is that
// run-coded sets keep the per-branch planning path allocation-light at
// a universe 200x larger than TreeStorm's.
func SparseStorm(b *testing.B) {
	rt, err := scaleFatTree()
	if err != nil {
		b.Fatal(err)
	}
	p := sim.DefaultParams()
	p.DestCoding = sim.HeaderIval
	p.PacketFlits = sparsePktFlits
	r := rng.New(sparseSeed)
	// Sources sit on the last edge switch's hosts; destination racks that
	// happen to include a source simply skip it (rackPlan excludes src).
	srcBase := topology.NodeID(rt.Topo.NumNodes - sparseMsgs)
	plans := make([]*sim.Plan, sparseGroups)
	for g := range plans {
		plans[g], err = rackPlan(rt, p, r, sparseRacks, srcBase+topology.NodeID(g), sparseFlits)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		n, err := sim.New(rt, p, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		for m := 0; m < sparseMsgs; m++ {
			at := n.Now() + event.Time(200*m)
			if _, err := n.Send(plans[m%sparseGroups], sparseFlits, at, nil); err != nil {
				b.Fatal(err)
			}
		}
		if err := n.Drain(0); err != nil {
			b.Fatal(err)
		}
		events += n.EventsProcessed()
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// ScaleSim is the scale-tier probe as a benchcase: ONE full-payload
// rack-clustered tree multicast (8 racks, ~1050 destinations, interval
// coding) flit-simulated on the 101k-host fat-tree under the 4-shard
// serial-equivalence engine — the same configuration the scale sweep's
// -sim-l smoke runs at the L and XL tiers. Its events/sec and peak-heap
// figures in the bench JSON are the committed trajectory for "does the
// flit simulator still reach datacenter scale".
const (
	scaleSimRacks = 8
	scaleSimFlits = 128
	scaleSimSeed  = 0x5ca1e_b
)

func ScaleSim(b *testing.B) {
	rt, err := scaleFatTree()
	if err != nil {
		b.Fatal(err)
	}
	p := sim.DefaultParams()
	p.DestCoding = sim.HeaderIval
	plan, err := rackPlan(rt, p, rng.New(scaleSimSeed), scaleSimRacks, 0, scaleSimFlits)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		n, err := sim.New(rt, p, uint64(i), sim.WithShards(4))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := n.RunSingle(plan, scaleSimFlits); err != nil {
			b.Fatal(err)
		}
		events += n.EventsProcessed()
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// TopologyGen is the large-topology construction benchmark: build the
// scale sweep's L-tier fat-tree (1088 switches, 101376 hosts) and its
// up*/down* routing state per op. It guards the O(N+S) scale paths —
// incremental free-port generation, NodesBySwitch indexing, and the
// table-free updown construction — against quadratic regressions.
func TopologyGen(b *testing.B) {
	cfg := topology.FatTreeConfig{
		Pods: 32, EdgePerPod: 24, AggPerPod: 8, CoreUplinksPerAgg: 8, HostsPerEdge: 132,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var switches uint64
	for i := 0; i < b.N; i++ {
		t, err := topology.FatTree(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := updown.New(t); err != nil {
			b.Fatal(err)
		}
		switches += uint64(t.NumSwitches)
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(switches)/s, "switches/sec")
	}
}
