package topology

import (
	"fmt"

	"mcastsim/internal/rng"
)

// Config parameterizes random irregular topology generation.
type Config struct {
	// Switches is the number of switches (paper default: 8).
	Switches int
	// PortsPerSwitch is the uniform port count (paper default: 8).
	PortsPerSwitch int
	// Nodes is the number of processing nodes (paper default: 32).
	Nodes int
	// ExtraLinksPerSwitch scales the random inter-switch links added
	// beyond the connectivity spanning tree: extra = round(value x
	// Switches), capped by port availability. The paper's generator is
	// unspecified beyond "connected, irregular, multi-links possible", but
	// its path lengths grow with switch count, implying per-switch link
	// density stays roughly constant rather than filling the free ports
	// (32 one-node switches have 7 free ports each). 0.75 reproduces the
	// density of the paper's Figure 1 example (8 switches, ~13 links) at
	// every switch count. Negative means "use the default"; 0 yields a
	// pure tree.
	ExtraLinksPerSwitch float64
}

// DefaultConfig returns the paper's default system: 32 nodes on eight
// 8-port switches.
func DefaultConfig() Config {
	return Config{Switches: 8, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1}
}

const defaultExtraLinksPerSwitch = 0.75

// Generate produces a random connected irregular topology from cfg using r.
// Identical (cfg, r-state) pairs produce identical topologies.
//
// Construction order matters for feasibility:
//  1. a uniform random spanning tree over switches guarantees connectivity,
//  2. nodes attach to uniformly chosen switches with free ports,
//  3. extra links randomly pair free ports of distinct switches (parallel
//     links allowed, per the paper).
func Generate(cfg Config, r *rng.Source) (*Topology, error) {
	S, P, N := cfg.Switches, cfg.PortsPerSwitch, cfg.Nodes
	if S <= 0 || P <= 0 || N < 0 {
		return nil, fmt.Errorf("topology: invalid config %+v", cfg)
	}
	// Feasibility: the spanning tree consumes 2(S-1) port-ends, nodes N.
	if 2*(S-1)+N > S*P {
		return nil, fmt.Errorf("topology: %d switches x %d ports cannot host %d nodes plus a spanning tree", S, P, N)
	}
	perSwitch := cfg.ExtraLinksPerSwitch
	if perSwitch < 0 {
		perSwitch = defaultExtraLinksPerSwitch
	}

	free := make([]int, S) // free ports per switch
	for i := range free {
		free[i] = P
	}
	var links [][4]int
	nextPort := make([]int, S)
	takePort := func(s int) int {
		p := nextPort[s]
		nextPort[s]++
		free[s]--
		return p
	}

	// 1. Random spanning tree: attach each switch (in random order) to a
	// uniformly random already-placed switch. This yields irregular,
	// varied-diameter trees rather than stars or chains.
	order := r.Perm(S)
	placed := []int{order[0]}
	for _, s := range order[1:] {
		// Pick a placed switch with a free port. All placed switches have
		// >= 1 free port here because P >= 2 whenever S >= 2 (checked by
		// the feasibility bound), but guard anyway.
		cand := make([]int, 0, len(placed))
		for _, q := range placed {
			if free[q] > 0 {
				cand = append(cand, q)
			}
		}
		if len(cand) == 0 || free[s] == 0 {
			return nil, fmt.Errorf("topology: ran out of ports building spanning tree")
		}
		q := cand[r.Intn(len(cand))]
		links = append(links, [4]int{s, takePort(s), q, takePort(q)})
		placed = append(placed, s)
	}

	// 2. Node attachment: uniform over switches with a free port.
	nodes := make([][2]int, N)
	for n := 0; n < N; n++ {
		cand := make([]int, 0, S)
		for s := 0; s < S; s++ {
			if free[s] > 0 {
				cand = append(cand, s)
			}
		}
		if len(cand) == 0 {
			return nil, fmt.Errorf("topology: ran out of ports attaching node %d", n)
		}
		s := cand[r.Intn(len(cand))]
		nodes[n] = [2]int{s, takePort(s)}
	}

	// 3. Extra links: pair free ports of distinct switches until the
	// density target is met or no legal pair remains.
	target := int(perSwitch*float64(S) + 0.5)
	for added := 0; added < target; added++ {
		cand := make([]int, 0, S)
		for s := 0; s < S; s++ {
			if free[s] > 0 {
				cand = append(cand, s)
			}
		}
		if len(cand) < 2 {
			break
		}
		a := cand[r.Intn(len(cand))]
		b := cand[r.Intn(len(cand))]
		for b == a {
			b = cand[r.Intn(len(cand))]
		}
		links = append(links, [4]int{a, takePort(a), b, takePort(b)})
	}

	return Build(S, P, links, nodes)
}

// GenerateFamily returns count independent topologies from cfg, one per
// seed-split. The paper averages every experiment over a family of random
// topologies ("our results are averaged over all these topologies").
func GenerateFamily(cfg Config, count int, seed uint64) ([]*Topology, error) {
	root := rng.New(seed)
	out := make([]*Topology, 0, count)
	for i := 0; i < count; i++ {
		t, err := Generate(cfg, root.Split())
		if err != nil {
			return nil, fmt.Errorf("topology %d: %w", i, err)
		}
		out = append(out, t)
	}
	return out, nil
}
