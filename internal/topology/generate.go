package topology

import (
	"fmt"

	"mcastsim/internal/rng"
)

// Config parameterizes random irregular topology generation.
type Config struct {
	// Switches is the number of switches (paper default: 8).
	Switches int
	// PortsPerSwitch is the uniform port count (paper default: 8).
	PortsPerSwitch int
	// Nodes is the number of processing nodes (paper default: 32).
	Nodes int
	// ExtraLinksPerSwitch scales the random inter-switch links added
	// beyond the connectivity spanning tree: extra = round(value x
	// Switches), capped by port availability. The paper's generator is
	// unspecified beyond "connected, irregular, multi-links possible", but
	// its path lengths grow with switch count, implying per-switch link
	// density stays roughly constant rather than filling the free ports
	// (32 one-node switches have 7 free ports each). 0.75 reproduces the
	// density of the paper's Figure 1 example (8 switches, ~13 links) at
	// every switch count. Negative means "use the default"; 0 yields a
	// pure tree.
	ExtraLinksPerSwitch float64
}

// DefaultConfig returns the paper's default system: 32 nodes on eight
// 8-port switches.
func DefaultConfig() Config {
	return Config{Switches: 8, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1}
}

const defaultExtraLinksPerSwitch = 0.75

// Generate produces a random connected irregular topology from cfg using r.
// Identical (cfg, r-state) pairs produce identical topologies.
//
// Construction order matters for feasibility:
//  1. a uniform random spanning tree over switches guarantees connectivity,
//  2. nodes attach to uniformly chosen switches with free ports,
//  3. extra links randomly pair free ports of distinct switches (parallel
//     links allowed, per the paper).
func Generate(cfg Config, r *rng.Source) (*Topology, error) {
	S, P, N := cfg.Switches, cfg.PortsPerSwitch, cfg.Nodes
	if S <= 0 || P <= 0 || N < 0 {
		return nil, fmt.Errorf("topology: invalid config %+v", cfg)
	}
	// Feasibility: the spanning tree consumes 2(S-1) port-ends, nodes N.
	if 2*(S-1)+N > S*P {
		return nil, fmt.Errorf("topology: %d switches x %d ports cannot host %d nodes plus a spanning tree", S, P, N)
	}
	perSwitch := cfg.ExtraLinksPerSwitch
	if perSwitch < 0 {
		perSwitch = defaultExtraLinksPerSwitch
	}

	free := make([]int, S) // free ports per switch
	for i := range free {
		free[i] = P
	}
	var links [][4]int
	nextPort := make([]int, S)
	takePort := func(s int) int {
		p := nextPort[s]
		nextPort[s]++
		free[s]--
		return p
	}

	// Every phase below repeatedly picks a uniformly random member of
	// "the switches that still have a free port", in a fixed enumeration
	// order. Rebuilding that candidate slice per pick is O(S) each time —
	// O(S·(N+links)) overall, which dominates generation in the
	// thousands-of-switches regime — so the picks go through selectors
	// (order-statistic Fenwick trees) instead: the k-th live candidate in
	// O(log S), with membership withdrawn as ports run out. The candidate
	// counts, enumeration orders and r.Intn draws are exactly those of
	// the original scan, so identical (cfg, r-state) pairs still produce
	// identical topologies (pinned by the regression test).

	// 1. Random spanning tree: attach each switch (in random order) to a
	// uniformly random already-placed switch. This yields irregular,
	// varied-diameter trees rather than stars or chains. Candidates
	// enumerate in placement order, so the selector is keyed by
	// placement position.
	order := r.Perm(S)
	avail := newSelector(S)
	posSwitch := make([]int, S) // placement position -> switch
	posOf := make([]int, S)     // switch -> placement position
	place := func(pos, s int) {
		posSwitch[pos] = s
		posOf[s] = pos
		if free[s] > 0 {
			avail.set(pos)
		}
	}
	place(0, order[0])
	for i, s := range order[1:] {
		// All placed switches have >= 1 free port here because P >= 2
		// whenever S >= 2 (checked by the feasibility bound), but guard
		// anyway.
		c := avail.count()
		if c == 0 || free[s] == 0 {
			return nil, fmt.Errorf("topology: ran out of ports building spanning tree")
		}
		q := posSwitch[avail.kth(r.Intn(c))]
		links = append(links, [4]int{s, takePort(s), q, takePort(q)})
		if free[q] == 0 {
			avail.clear(posOf[q])
		}
		place(i+1, s)
	}

	// Phases 2 and 3 enumerate candidates in ascending switch-ID order.
	byID := newSelector(S)
	for s := 0; s < S; s++ {
		if free[s] > 0 {
			byID.set(s)
		}
	}

	// 2. Node attachment: uniform over switches with a free port.
	nodes := make([][2]int, N)
	for n := 0; n < N; n++ {
		c := byID.count()
		if c == 0 {
			return nil, fmt.Errorf("topology: ran out of ports attaching node %d", n)
		}
		s := byID.kth(r.Intn(c))
		nodes[n] = [2]int{s, takePort(s)}
		if free[s] == 0 {
			byID.clear(s)
		}
	}

	// 3. Extra links: pair free ports of distinct switches until the
	// density target is met or no legal pair remains.
	target := int(perSwitch*float64(S) + 0.5)
	for added := 0; added < target; added++ {
		c := byID.count()
		if c < 2 {
			break
		}
		a := byID.kth(r.Intn(c))
		b := byID.kth(r.Intn(c))
		for b == a {
			b = byID.kth(r.Intn(c))
		}
		links = append(links, [4]int{a, takePort(a), b, takePort(b)})
		if free[a] == 0 {
			byID.clear(a)
		}
		if free[b] == 0 {
			byID.clear(b)
		}
	}

	return Build(S, P, links, nodes)
}

// selector is an order-statistic set over [0, n): a Fenwick tree of 0/1
// membership flags answering "how many members?" and "which index is the
// k-th member (in ascending key order)?" in O(log n). It replaces the
// per-pick candidate-slice rebuilds of the generator's original scans.
type selector struct {
	tree []int // 1-based Fenwick partial sums
	in   []bool
	n    int
	c    int
}

func newSelector(n int) *selector {
	return &selector{tree: make([]int, n+1), in: make([]bool, n), n: n}
}

func (f *selector) count() int { return f.c }

func (f *selector) add(i, delta int) {
	for i++; i <= f.n; i += i & -i {
		f.tree[i] += delta
	}
}

// set adds i to the set (no-op when already present).
func (f *selector) set(i int) {
	if !f.in[i] {
		f.in[i] = true
		f.c++
		f.add(i, 1)
	}
}

// clear removes i from the set (no-op when absent).
func (f *selector) clear(i int) {
	if f.in[i] {
		f.in[i] = false
		f.c--
		f.add(i, -1)
	}
}

// kth returns the key of the k-th member, 0-based, by Fenwick descent.
func (f *selector) kth(k int) int {
	if k < 0 || k >= f.c {
		panic(fmt.Sprintf("topology: selector rank %d out of %d", k, f.c))
	}
	idx := 0
	half := 1
	for half*2 <= f.n {
		half *= 2
	}
	rank := k + 1 // 1-based rank
	for ; half > 0; half /= 2 {
		if idx+half <= f.n && f.tree[idx+half] < rank {
			idx += half
			rank -= f.tree[idx]
		}
	}
	return idx // idx is the count of members strictly before the answer
}

// GenerateFamily returns count independent topologies from cfg, one per
// seed-split. The paper averages every experiment over a family of random
// topologies ("our results are averaged over all these topologies").
func GenerateFamily(cfg Config, count int, seed uint64) ([]*Topology, error) {
	root := rng.New(seed)
	out := make([]*Topology, 0, count)
	for i := 0; i < count; i++ {
		t, err := Generate(cfg, root.Split())
		if err != nil {
			return nil, fmt.Errorf("topology %d: %w", i, err)
		}
		out = append(out, t)
	}
	return out, nil
}
