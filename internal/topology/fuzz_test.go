package topology

import (
	"strings"
	"testing"
	"testing/quick"

	"mcastsim/internal/rng"
)

// TestReadTextNeverPanics feeds arbitrary byte soup to the parser: it must
// return an error or a valid topology, never panic.
func TestReadTextNeverPanics(t *testing.T) {
	f := func(raw []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		topo, err := ReadText(strings.NewReader(string(raw)))
		if err == nil && topo.Validate() != nil {
			return false // parsed successfully but invalid
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestReadTextMutatedValid corrupts single tokens of a valid serialization;
// the parser must never panic and never accept an inconsistent topology.
func TestReadTextMutatedValid(t *testing.T) {
	topo, err := Generate(DefaultConfig(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteText(&sb, topo); err != nil {
		t.Fatal(err)
	}
	base := sb.String()
	r := rng.New(6)
	for trial := 0; trial < 300; trial++ {
		b := []byte(base)
		// Flip a random byte to a random printable character.
		i := r.Intn(len(b))
		b[i] = byte('0' + r.Intn(75))
		func() {
			defer func() {
				if recover() != nil {
					t.Fatalf("panic on mutation %d", trial)
				}
			}()
			got, err := ReadText(strings.NewReader(string(b)))
			if err == nil {
				if vErr := got.Validate(); vErr != nil {
					t.Fatalf("mutation %d accepted an invalid topology: %v", trial, vErr)
				}
			}
		}()
	}
}

// TestGenerateFeasibilityBoundary probes configurations right at the port
// budget.
func TestGenerateFeasibilityBoundary(t *testing.T) {
	// S switches x P ports: spanning tree takes 2(S-1) ends; nodes fill
	// the rest exactly.
	for _, c := range []struct{ s, p int }{{2, 4}, {4, 4}, {8, 8}, {3, 3}} {
		maxNodes := c.s*c.p - 2*(c.s-1)
		cfg := Config{Switches: c.s, PortsPerSwitch: c.p, Nodes: maxNodes, ExtraLinksPerSwitch: 0}
		topo, err := Generate(cfg, rng.New(9))
		if err != nil {
			t.Fatalf("boundary config %+v rejected: %v", cfg, err)
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("boundary config %+v invalid: %v", cfg, err)
		}
		cfg.Nodes++
		if _, err := Generate(cfg, rng.New(9)); err == nil {
			t.Fatalf("over-boundary config %+v accepted", cfg)
		}
	}
}
