package topology

import "fmt"

// Regular-topology constructors. The paper studies irregular networks, but
// the authors' CSIM testbed (WSC'97) models regular switch fabrics too,
// and regular shapes make exact-value tests possible: on a mesh, BFS
// levels are Manhattan distances, so the routing substrate can be checked
// against closed forms rather than properties alone.

// Mesh2D builds a rows x cols switch mesh with nodesPerSwitch nodes on
// every switch. Port layout per switch: 0=+row, 1=-row, 2=+col, 3=-col
// (edges leave the ports open), then node ports. Switch (r,c) has ID
// r*cols+c.
func Mesh2D(rows, cols, nodesPerSwitch, portsPerSwitch int) (*Topology, error) {
	if rows <= 0 || cols <= 0 || nodesPerSwitch < 0 {
		return nil, fmt.Errorf("topology: bad mesh shape %dx%d", rows, cols)
	}
	if portsPerSwitch < 4+nodesPerSwitch {
		return nil, fmt.Errorf("topology: mesh needs >= %d ports, have %d", 4+nodesPerSwitch, portsPerSwitch)
	}
	id := func(r, c int) int { return r*cols + c }
	var links [][4]int
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if r+1 < rows {
				links = append(links, [4]int{id(r, c), 0, id(r+1, c), 1})
			}
			if c+1 < cols {
				links = append(links, [4]int{id(r, c), 2, id(r, c+1), 3})
			}
		}
	}
	nodes := make([][2]int, 0, rows*cols*nodesPerSwitch)
	for s := 0; s < rows*cols; s++ {
		for k := 0; k < nodesPerSwitch; k++ {
			nodes = append(nodes, [2]int{s, 4 + k})
		}
	}
	return Build(rows*cols, portsPerSwitch, links, nodes)
}

// Ring builds a cycle of switches (port 0 = clockwise, port 1 =
// counter-clockwise) with nodesPerSwitch nodes each. A ring is the
// smallest topology where up*/down* must break a cycle, making the
// orientation's loop-freedom directly observable.
func Ring(switches, nodesPerSwitch, portsPerSwitch int) (*Topology, error) {
	if switches < 3 {
		return nil, fmt.Errorf("topology: ring needs >= 3 switches")
	}
	if portsPerSwitch < 2+nodesPerSwitch {
		return nil, fmt.Errorf("topology: ring needs >= %d ports, have %d", 2+nodesPerSwitch, portsPerSwitch)
	}
	var links [][4]int
	for s := 0; s < switches; s++ {
		next := (s + 1) % switches
		links = append(links, [4]int{s, 0, next, 1})
	}
	nodes := make([][2]int, 0, switches*nodesPerSwitch)
	for s := 0; s < switches; s++ {
		for k := 0; k < nodesPerSwitch; k++ {
			nodes = append(nodes, [2]int{s, 2 + k})
		}
	}
	return Build(switches, portsPerSwitch, links, nodes)
}
