package topology

import (
	"math/rand"
	"reflect"
	"testing"

	"mcastsim/internal/rng"
)

// generateReference is a verbatim copy of the pre-selector Generate body
// (the O(S·(N+links)) candidate rescans), kept as the oracle: the
// selector rewrite must consume the identical r.Intn stream and emit the
// identical topology for every historical seed.
func generateReference(cfg Config, r *rng.Source) (*Topology, error) {
	S, P, N := cfg.Switches, cfg.PortsPerSwitch, cfg.Nodes
	perSwitch := cfg.ExtraLinksPerSwitch
	if perSwitch < 0 {
		perSwitch = defaultExtraLinksPerSwitch
	}
	free := make([]int, S)
	for i := range free {
		free[i] = P
	}
	var links [][4]int
	nextPort := make([]int, S)
	takePort := func(s int) int {
		p := nextPort[s]
		nextPort[s]++
		free[s]--
		return p
	}
	order := r.Perm(S)
	placed := []int{order[0]}
	for _, s := range order[1:] {
		cand := make([]int, 0, len(placed))
		for _, q := range placed {
			if free[q] > 0 {
				cand = append(cand, q)
			}
		}
		if len(cand) == 0 || free[s] == 0 {
			return nil, nil
		}
		q := cand[r.Intn(len(cand))]
		links = append(links, [4]int{s, takePort(s), q, takePort(q)})
		placed = append(placed, s)
	}
	nodes := make([][2]int, N)
	for n := 0; n < N; n++ {
		cand := make([]int, 0, S)
		for s := 0; s < S; s++ {
			if free[s] > 0 {
				cand = append(cand, s)
			}
		}
		if len(cand) == 0 {
			return nil, nil
		}
		s := cand[r.Intn(len(cand))]
		nodes[n] = [2]int{s, takePort(s)}
	}
	target := int(perSwitch*float64(S) + 0.5)
	for added := 0; added < target; added++ {
		cand := make([]int, 0, S)
		for s := 0; s < S; s++ {
			if free[s] > 0 {
				cand = append(cand, s)
			}
		}
		if len(cand) < 2 {
			break
		}
		a := cand[r.Intn(len(cand))]
		b := cand[r.Intn(len(cand))]
		for b == a {
			b = cand[r.Intn(len(cand))]
		}
		links = append(links, [4]int{a, takePort(a), b, takePort(b)})
	}
	return Build(S, P, links, nodes)
}

// TestGenerateMatchesReference pins the selector-based Generate to the
// original scan, struct-for-struct, over the paper configs and assorted
// stress shapes — the old seeds must keep producing the old topologies.
func TestGenerateMatchesReference(t *testing.T) {
	cfgs := []Config{
		DefaultConfig(),
		{Switches: 16, PortsPerSwitch: 8, Nodes: 64, ExtraLinksPerSwitch: -1},
		{Switches: 32, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
		{Switches: 64, PortsPerSwitch: 8, Nodes: 128, ExtraLinksPerSwitch: 0.75},
		{Switches: 8, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: 0},
		// Port-starved: switches exhaust mid-phase, exercising candidate
		// withdrawal in every phase.
		{Switches: 24, PortsPerSwitch: 4, Nodes: 40, ExtraLinksPerSwitch: 3},
		{Switches: 5, PortsPerSwitch: 3, Nodes: 7, ExtraLinksPerSwitch: 2},
	}
	for _, cfg := range cfgs {
		for seed := uint64(1); seed <= 25; seed++ {
			got, gotErr := Generate(cfg, rng.New(seed))
			want, wantErr := generateReference(cfg, rng.New(seed))
			if (gotErr != nil) != (wantErr != nil) {
				t.Fatalf("cfg %+v seed %d: error mismatch got=%v want=%v", cfg, seed, gotErr, wantErr)
			}
			if gotErr != nil {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cfg %+v seed %d: selector Generate diverged from reference", cfg, seed)
			}
		}
	}
}

// TestSelector pins the order-statistic structure against a brute-force
// mirror under random churn.
func TestSelector(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	const n = 97
	sel := newSelector(n)
	ref := make([]bool, n)
	for op := 0; op < 5000; op++ {
		i := r.Intn(n)
		if r.Intn(2) == 0 {
			sel.set(i)
			ref[i] = true
		} else {
			sel.clear(i)
			ref[i] = false
		}
		var members []int
		for j, in := range ref {
			if in {
				members = append(members, j)
			}
		}
		if sel.count() != len(members) {
			t.Fatalf("op %d: count %d want %d", op, sel.count(), len(members))
		}
		if len(members) > 0 {
			k := r.Intn(len(members))
			if got := sel.kth(k); got != members[k] {
				t.Fatalf("op %d: kth(%d)=%d want %d", op, k, got, members[k])
			}
		}
	}
}

func TestFatTree(t *testing.T) {
	cfg := FatTreeConfig{Pods: 4, EdgePerPod: 2, AggPerPod: 2, CoreUplinksPerAgg: 2, HostsPerEdge: 4}
	topo, err := FatTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumSwitches != cfg.Switches() || topo.NumNodes != cfg.Hosts() {
		t.Fatalf("sizes %d/%d, want %d/%d", topo.NumSwitches, topo.NumNodes, cfg.Switches(), cfg.Hosts())
	}
	// Hosts are contiguous per edge switch: host n on switch n/HostsPerEdge.
	for n := 0; n < topo.NumNodes; n++ {
		if int(topo.NodeSwitch[n]) != n/cfg.HostsPerEdge {
			t.Fatalf("host %d on switch %d, want %d", n, topo.NodeSwitch[n], n/cfg.HostsPerEdge)
		}
	}
	// Edge-to-edge across pods is reachable (Validate already checked
	// connectivity; spot-check the diameter is the Clos 4 hops).
	d := topo.SwitchDistances()
	if d[0][cfg.EdgePerPod] != 4 { // edge 0 (pod 0) to edge 0 of pod 1
		t.Fatalf("cross-pod edge distance %d, want 4", d[0][cfg.EdgePerPod])
	}
	if d[0][1] != 2 { // two edges of one pod meet at an agg
		t.Fatalf("intra-pod edge distance %d, want 2", d[0][1])
	}
}

func TestDragonfly(t *testing.T) {
	cfg := DragonflyConfig{Groups: 9, RoutersPerGroup: 4, GlobalPerRouter: 2, HostsPerRouter: 3}
	topo, err := Dragonfly(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumSwitches != cfg.Switches() || topo.NumNodes != cfg.Hosts() {
		t.Fatalf("sizes %d/%d, want %d/%d", topo.NumSwitches, topo.NumNodes, cfg.Switches(), cfg.Hosts())
	}
	for n := 0; n < topo.NumNodes; n++ {
		if int(topo.NodeSwitch[n]) != n/cfg.HostsPerRouter {
			t.Fatalf("host %d on router %d, want %d", n, topo.NodeSwitch[n], n/cfg.HostsPerRouter)
		}
	}
	// Every group pair shares exactly one global link.
	pair := make(map[[2]int]int)
	for _, l := range topo.Links {
		ga, gb := int(l.A)/cfg.RoutersPerGroup, int(l.B)/cfg.RoutersPerGroup
		if ga != gb {
			if gb < ga {
				ga, gb = gb, ga
			}
			pair[[2]int{ga, gb}]++
		}
	}
	want := cfg.Groups * (cfg.Groups - 1) / 2
	if len(pair) != want {
		t.Fatalf("%d group pairs linked, want %d", len(pair), want)
	}
	for p, c := range pair {
		if c != 1 {
			t.Fatalf("group pair %v has %d global links, want 1", p, c)
		}
	}
	// Too few global slots must be rejected.
	if _, err := Dragonfly(DragonflyConfig{Groups: 20, RoutersPerGroup: 2, GlobalPerRouter: 2, HostsPerRouter: 1}); err == nil {
		t.Fatal("infeasible dragonfly accepted")
	}
}

func TestScaledIrregular(t *testing.T) {
	cfg := ScaledIrregularConfig{Switches: 40, HostsPerSwitch: 6, ExtraLinksPerSwitch: -1}
	a, err := ScaledIrregular(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSwitches != 40 || a.NumNodes != 240 {
		t.Fatalf("sizes %d/%d", a.NumSwitches, a.NumNodes)
	}
	for n := 0; n < a.NumNodes; n++ {
		if int(a.NodeSwitch[n]) != n/6 || a.NodePort[n] != n%6 {
			t.Fatalf("host %d at (%d,%d), want (%d,%d)", n, a.NodeSwitch[n], a.NodePort[n], n/6, n%6)
		}
	}
	// Determinism: same seed, same topology; different seed, different.
	b, err := ScaledIrregular(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal seeds produced different topologies")
	}
	c, err := ScaledIrregular(cfg, 43)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Links, c.Links) {
		t.Fatal("different seeds produced identical link sets")
	}
}

func TestNodesBySwitch(t *testing.T) {
	topo, err := Generate(DefaultConfig(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	by := topo.NodesBySwitch()
	for s := 0; s < topo.NumSwitches; s++ {
		want := topo.NodesAt(SwitchID(s))
		got := by[s]
		if len(got) != len(want) {
			t.Fatalf("switch %d: %d nodes, want %d", s, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("switch %d: node list %v, want %v", s, got, want)
			}
		}
	}
}
