package topology

import "testing"

func TestMesh2DShape(t *testing.T) {
	m, err := Mesh2D(3, 4, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSwitches != 12 || m.NumNodes != 24 {
		t.Fatalf("mesh shape %d/%d", m.NumSwitches, m.NumNodes)
	}
	// Links: 2*4 vertical + 3*3 horizontal = 17.
	if len(m.Links) != 17 {
		t.Fatalf("mesh links %d, want 17", len(m.Links))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMesh2DDistancesAreManhattan(t *testing.T) {
	const rows, cols = 4, 5
	m, err := Mesh2D(rows, cols, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	d := m.SwitchDistances()
	abs := func(x int) int {
		if x < 0 {
			return -x
		}
		return x
	}
	for r1 := 0; r1 < rows; r1++ {
		for c1 := 0; c1 < cols; c1++ {
			for r2 := 0; r2 < rows; r2++ {
				for c2 := 0; c2 < cols; c2++ {
					want := abs(r1-r2) + abs(c1-c2)
					got := d[r1*cols+c1][r2*cols+c2]
					if got != want {
						t.Fatalf("d[(%d,%d)][(%d,%d)] = %d, want %d", r1, c1, r2, c2, got, want)
					}
				}
			}
		}
	}
}

func TestMesh2DErrors(t *testing.T) {
	if _, err := Mesh2D(0, 3, 1, 8); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := Mesh2D(2, 2, 5, 8); err == nil {
		t.Fatal("too many nodes per switch accepted")
	}
}

func TestRingShape(t *testing.T) {
	r, err := Ring(6, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumSwitches != 6 || r.NumNodes != 12 || len(r.Links) != 6 {
		t.Fatalf("ring shape %d/%d/%d", r.NumSwitches, r.NumNodes, len(r.Links))
	}
	d := r.SwitchDistances()
	// Antipodal distance on a 6-ring is 3.
	if d[0][3] != 3 || d[1][4] != 3 {
		t.Fatalf("ring distances wrong: %v", d[0])
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := Ring(2, 1, 4); err == nil {
		t.Fatal("2-ring accepted")
	}
	if _, err := Ring(4, 3, 4); err == nil {
		t.Fatal("over-full ring accepted")
	}
}
