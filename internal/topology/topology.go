// Package topology models irregular switch-based interconnects.
//
// Following the paper's system model (§2.1), a network is a set of switches,
// each with a fixed number of ports. Ports connect to processing nodes
// (hosts), to ports of other switches (bidirectional links; multiple links
// between the same switch pair are allowed), or are left open. The only
// structural guarantee is that the switch graph is connected.
//
// The package provides the Topology type, a seeded random generator for
// irregular topologies, validation, and text/DOT serialization. Routing is
// deliberately not here — see package updown.
package topology

import (
	"fmt"
)

// SwitchID identifies a switch, in [0, NumSwitches).
type SwitchID int

// NodeID identifies a processing node (host), in [0, NumNodes).
type NodeID int

// EndpointKind says what a switch port is wired to.
type EndpointKind uint8

const (
	// Open means the port is unconnected.
	Open EndpointKind = iota
	// ToSwitch means the port connects to a port of another switch.
	ToSwitch
	// ToNode means the port connects to a processing node's NI.
	ToNode
)

// Endpoint describes the far side of a switch port.
type Endpoint struct {
	Kind   EndpointKind
	Switch SwitchID // valid when Kind == ToSwitch
	Port   int      // valid when Kind == ToSwitch
	Node   NodeID   // valid when Kind == ToNode
}

// Link is one bidirectional inter-switch link, identified by its two port
// endpoints. A Link appears once in Topology.Links with A < B by (switch,
// port) order.
type Link struct {
	A, B  SwitchID
	APort int
	BPort int
}

// Topology is an immutable irregular network description.
//
// Construct one with Generate or Build; mutating the exported slices after
// construction invalidates derived state elsewhere and is not supported.
type Topology struct {
	// NumSwitches and PortsPerSwitch give the switch array shape. All
	// switches have the same port count (paper: "eight 8-port switches").
	NumSwitches    int
	PortsPerSwitch int
	// NumNodes is the number of processing nodes attached to the network.
	NumNodes int

	// Conn[s][p] is the far end of switch s, port p.
	Conn [][]Endpoint

	// NodeSwitch[n] / NodePort[n] locate node n's attachment point.
	NodeSwitch []SwitchID
	NodePort   []int

	// Links lists each inter-switch link exactly once.
	Links []Link
}

// Build assembles and validates a Topology from explicit wiring. links lists
// inter-switch connections as (switchA, portA, switchB, portB); nodes lists
// attachments as (switch, port) per node in node-ID order.
func Build(numSwitches, portsPerSwitch int, links [][4]int, nodes [][2]int) (*Topology, error) {
	t := &Topology{
		NumSwitches:    numSwitches,
		PortsPerSwitch: portsPerSwitch,
		NumNodes:       len(nodes),
		Conn:           make([][]Endpoint, numSwitches),
		NodeSwitch:     make([]SwitchID, len(nodes)),
		NodePort:       make([]int, len(nodes)),
	}
	for s := range t.Conn {
		t.Conn[s] = make([]Endpoint, portsPerSwitch)
	}
	claim := func(s, p int) error {
		if s < 0 || s >= numSwitches {
			return fmt.Errorf("switch %d out of range", s)
		}
		if p < 0 || p >= portsPerSwitch {
			return fmt.Errorf("port %d out of range on switch %d", p, s)
		}
		if t.Conn[s][p].Kind != Open {
			return fmt.Errorf("switch %d port %d wired twice", s, p)
		}
		return nil
	}
	for _, l := range links {
		sa, pa, sb, pb := l[0], l[1], l[2], l[3]
		if sa == sb {
			return nil, fmt.Errorf("self-link on switch %d", sa)
		}
		if err := claim(sa, pa); err != nil {
			return nil, err
		}
		if err := claim(sb, pb); err != nil {
			return nil, err
		}
		t.Conn[sa][pa] = Endpoint{Kind: ToSwitch, Switch: SwitchID(sb), Port: pb}
		t.Conn[sb][pb] = Endpoint{Kind: ToSwitch, Switch: SwitchID(sa), Port: pa}
	}
	for n, at := range nodes {
		s, p := at[0], at[1]
		if err := claim(s, p); err != nil {
			return nil, fmt.Errorf("node %d: %w", n, err)
		}
		t.Conn[s][p] = Endpoint{Kind: ToNode, Node: NodeID(n)}
		t.NodeSwitch[n] = SwitchID(s)
		t.NodePort[n] = p
	}
	t.rebuildLinks()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// rebuildLinks recomputes Links from Conn.
func (t *Topology) rebuildLinks() {
	t.Links = t.Links[:0]
	for s := 0; s < t.NumSwitches; s++ {
		for p := 0; p < t.PortsPerSwitch; p++ {
			e := t.Conn[s][p]
			if e.Kind != ToSwitch {
				continue
			}
			// Emit each link once, from its lexicographically smaller end.
			if int(e.Switch) > s || (int(e.Switch) == s && e.Port > p) {
				t.Links = append(t.Links, Link{
					A: SwitchID(s), APort: p,
					B: e.Switch, BPort: e.Port,
				})
			}
		}
	}
}

// Validate checks structural invariants: port symmetry, node table
// consistency, and switch-graph connectivity.
func (t *Topology) Validate() error {
	if t.NumSwitches <= 0 || t.PortsPerSwitch <= 0 {
		return fmt.Errorf("topology: empty switch array")
	}
	seenNode := make([]bool, t.NumNodes)
	for s := 0; s < t.NumSwitches; s++ {
		if len(t.Conn[s]) != t.PortsPerSwitch {
			return fmt.Errorf("switch %d has %d ports, want %d", s, len(t.Conn[s]), t.PortsPerSwitch)
		}
		for p := 0; p < t.PortsPerSwitch; p++ {
			e := t.Conn[s][p]
			switch e.Kind {
			case Open:
			case ToSwitch:
				if int(e.Switch) < 0 || int(e.Switch) >= t.NumSwitches {
					return fmt.Errorf("switch %d port %d: peer switch %d out of range", s, p, e.Switch)
				}
				back := t.Conn[e.Switch][e.Port]
				if back.Kind != ToSwitch || int(back.Switch) != s || back.Port != p {
					return fmt.Errorf("switch %d port %d: asymmetric link", s, p)
				}
				if int(e.Switch) == s {
					return fmt.Errorf("switch %d: self-link", s)
				}
			case ToNode:
				n := int(e.Node)
				if n < 0 || n >= t.NumNodes {
					return fmt.Errorf("switch %d port %d: node %d out of range", s, p, n)
				}
				if seenNode[n] {
					return fmt.Errorf("node %d attached twice", n)
				}
				seenNode[n] = true
				if t.NodeSwitch[n] != SwitchID(s) || t.NodePort[n] != p {
					return fmt.Errorf("node %d attachment table disagrees with wiring", n)
				}
			default:
				return fmt.Errorf("switch %d port %d: bad endpoint kind %d", s, p, e.Kind)
			}
		}
	}
	for n, ok := range seenNode {
		if !ok {
			return fmt.Errorf("node %d not attached", n)
		}
	}
	if !t.Connected() {
		return fmt.Errorf("topology: switch graph is not connected")
	}
	return nil
}

// Connected reports whether every switch is reachable from switch 0 over
// inter-switch links.
func (t *Topology) Connected() bool {
	if t.NumSwitches == 0 {
		return false
	}
	seen := make([]bool, t.NumSwitches)
	queue := []SwitchID{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, e := range t.Conn[s] {
			if e.Kind == ToSwitch && !seen[e.Switch] {
				seen[e.Switch] = true
				count++
				queue = append(queue, e.Switch)
			}
		}
	}
	return count == t.NumSwitches
}

// SwitchNeighbors returns, for each switch, the multiset of adjacent
// switches (one entry per link, so parallel links appear multiple times).
func (t *Topology) SwitchNeighbors() [][]SwitchID {
	adj := make([][]SwitchID, t.NumSwitches)
	for s := 0; s < t.NumSwitches; s++ {
		for _, e := range t.Conn[s] {
			if e.Kind == ToSwitch {
				adj[s] = append(adj[s], e.Switch)
			}
		}
	}
	return adj
}

// NodesAt returns the nodes attached to switch s, ascending by node ID.
func (t *Topology) NodesAt(s SwitchID) []NodeID {
	var out []NodeID
	for n := 0; n < t.NumNodes; n++ {
		if t.NodeSwitch[n] == s {
			out = append(out, NodeID(n))
		}
	}
	return out
}

// NodesBySwitch returns the attached nodes of every switch, ascending by
// node ID, in one O(N + S) pass over the attachment table. Per-switch
// NodesAt calls are O(N) each, which turns precomputation loops
// quadratic at datacenter scale; builders over all switches use this.
func (t *Topology) NodesBySwitch() [][]NodeID {
	counts := make([]int, t.NumSwitches)
	for _, s := range t.NodeSwitch {
		counts[s]++
	}
	buf := make([]NodeID, t.NumNodes)
	out := make([][]NodeID, t.NumSwitches)
	pos := 0
	for s := range out {
		out[s] = buf[pos:pos:pos+counts[s]]
		pos += counts[s]
	}
	for n := 0; n < t.NumNodes; n++ {
		s := t.NodeSwitch[n]
		out[s] = append(out[s], NodeID(n))
	}
	return out
}

// OpenPorts returns the number of unconnected ports on switch s.
func (t *Topology) OpenPorts(s SwitchID) int {
	c := 0
	for _, e := range t.Conn[s] {
		if e.Kind == Open {
			c++
		}
	}
	return c
}

// RemoveLink returns a copy of t with the i-th entry of Links removed —
// the reconfiguration primitive behind fault experiments (the paper's §1
// motivates irregular topologies by their amenability to reconfiguration
// and fault resistance). It fails if the removal disconnects the switch
// graph; the caller then knows the link was a bridge.
func (t *Topology) RemoveLink(i int) (*Topology, error) {
	if i < 0 || i >= len(t.Links) {
		return nil, fmt.Errorf("topology: link index %d out of range", i)
	}
	var links [][4]int
	for j, l := range t.Links {
		if j == i {
			continue
		}
		links = append(links, [4]int{int(l.A), l.APort, int(l.B), l.BPort})
	}
	nodes := make([][2]int, t.NumNodes)
	for n := 0; n < t.NumNodes; n++ {
		nodes[n] = [2]int{int(t.NodeSwitch[n]), t.NodePort[n]}
	}
	return Build(t.NumSwitches, t.PortsPerSwitch, links, nodes)
}

// LinkAt returns the index into Links of the inter-switch link attached to
// switch s, port p, or -1 if that port is open or hosts a node. Fault
// schedules use it to translate (switch, port) observations into link IDs.
func (t *Topology) LinkAt(s SwitchID, p int) int {
	if int(s) < 0 || int(s) >= t.NumSwitches || p < 0 || p >= t.PortsPerSwitch {
		return -1
	}
	if t.Conn[s][p].Kind != ToSwitch {
		return -1
	}
	for i, l := range t.Links {
		if (l.A == s && l.APort == p) || (l.B == s && l.BPort == p) {
			return i
		}
	}
	return -1
}

// ConnectedExcluding reports whether the switch graph stays connected when
// the flagged links and switches are treated as dead. deadLink is indexed
// like Links, deadSwitch like switch IDs; either may be nil (nothing dead).
// Fault planners use it to pick non-partitioning failure schedules, and the
// reconfiguration layer uses it as a cheap pre-check before rebuilding
// up*/down* state.
func (t *Topology) ConnectedExcluding(deadLink []bool, deadSwitch []bool) bool {
	linkDead := func(i int) bool { return i < len(deadLink) && deadLink[i] }
	swDead := func(s SwitchID) bool { return int(s) < len(deadSwitch) && deadSwitch[s] }
	start := SwitchID(-1)
	alive := 0
	for s := 0; s < t.NumSwitches; s++ {
		if !swDead(SwitchID(s)) {
			if start == -1 {
				start = SwitchID(s)
			}
			alive++
		}
	}
	if alive == 0 {
		return false
	}
	seen := make([]bool, t.NumSwitches)
	seen[start] = true
	count := 1
	queue := []SwitchID{start}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for p, e := range t.Conn[s] {
			if e.Kind != ToSwitch || seen[e.Switch] || swDead(e.Switch) {
				continue
			}
			if linkDead(t.LinkAt(s, p)) {
				continue
			}
			seen[e.Switch] = true
			count++
			queue = append(queue, e.Switch)
		}
	}
	return count == alive
}

// RemoveSwitch returns a copy of t with switch s and all its links removed,
// renumbering switches above s down by one. Like RemoveLink it fails if the
// removal disconnects the surviving switch graph (partition detection comes
// from Build's validation). Switches with attached nodes cannot be removed:
// their hosts would have no attachment point, which the fault model treats
// as node failure, a different experiment.
func (t *Topology) RemoveSwitch(s SwitchID) (*Topology, error) {
	if int(s) < 0 || int(s) >= t.NumSwitches {
		return nil, fmt.Errorf("topology: switch %d out of range", s)
	}
	if t.NumSwitches == 1 {
		return nil, fmt.Errorf("topology: cannot remove the only switch")
	}
	if nodes := t.NodesAt(s); len(nodes) > 0 {
		return nil, fmt.Errorf("topology: switch %d has %d attached nodes", s, len(nodes))
	}
	renum := func(x SwitchID) int {
		if x > s {
			return int(x) - 1
		}
		return int(x)
	}
	var links [][4]int
	for _, l := range t.Links {
		if l.A == s || l.B == s {
			continue
		}
		links = append(links, [4]int{renum(l.A), l.APort, renum(l.B), l.BPort})
	}
	nodes := make([][2]int, t.NumNodes)
	for n := 0; n < t.NumNodes; n++ {
		nodes[n] = [2]int{renum(t.NodeSwitch[n]), t.NodePort[n]}
	}
	return Build(t.NumSwitches-1, t.PortsPerSwitch, links, nodes)
}

// SwitchDistances returns hop distances between switches over inter-switch
// links (BFS from each switch). Distances[i][j] == -1 never occurs for a
// validated topology since the graph is connected.
func (t *Topology) SwitchDistances() [][]int {
	adj := t.SwitchNeighbors()
	all := make([][]int, t.NumSwitches)
	for src := 0; src < t.NumSwitches; src++ {
		dist := make([]int, t.NumSwitches)
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []SwitchID{SwitchID(src)}
		for len(queue) > 0 {
			s := queue[0]
			queue = queue[1:]
			for _, nb := range adj[s] {
				if dist[nb] == -1 {
					dist[nb] = dist[s] + 1
					queue = append(queue, nb)
				}
			}
		}
		all[src] = dist
	}
	return all
}
