package topology

import (
	"testing"

	"mcastsim/internal/rng"
)

// paperFigure1 builds the 8-switch topology of the paper's Figure 1(a)/(b):
// an irregular graph over switches 0..7 with one node per switch (the paper
// draws processing elements on several switches; one each suffices for the
// structural tests that reference this fixture).
func paperFigure1(t *testing.T) *Topology {
	t.Helper()
	links := [][4]int{
		{0, 0, 1, 0},
		{0, 1, 2, 0},
		{1, 1, 3, 0},
		{2, 1, 3, 1},
		{2, 2, 4, 0},
		{3, 2, 5, 0},
		{4, 1, 5, 1},
		{4, 2, 6, 0},
		{5, 2, 7, 0},
		{6, 1, 7, 1},
	}
	nodes := make([][2]int, 8)
	for n := range nodes {
		nodes[n] = [2]int{n, 7} // port 7 of each switch hosts a node
	}
	topo, err := Build(8, 8, links, nodes)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

func TestBuildFixture(t *testing.T) {
	topo := paperFigure1(t)
	if topo.NumSwitches != 8 || topo.NumNodes != 8 {
		t.Fatalf("unexpected shape: %d switches, %d nodes", topo.NumSwitches, topo.NumNodes)
	}
	if len(topo.Links) != 10 {
		t.Fatalf("links = %d, want 10", len(topo.Links))
	}
	if !topo.Connected() {
		t.Fatal("fixture should be connected")
	}
}

func TestBuildRejectsSelfLink(t *testing.T) {
	_, err := Build(2, 4, [][4]int{{0, 0, 0, 1}}, nil)
	if err == nil {
		t.Fatal("self-link accepted")
	}
}

func TestBuildRejectsDoubleWiring(t *testing.T) {
	_, err := Build(2, 4, [][4]int{{0, 0, 1, 0}, {0, 0, 1, 1}}, nil)
	if err == nil {
		t.Fatal("double port use accepted")
	}
}

func TestBuildRejectsDisconnected(t *testing.T) {
	// Two isolated switch pairs.
	_, err := Build(4, 4, [][4]int{{0, 0, 1, 0}, {2, 0, 3, 0}}, nil)
	if err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestBuildRejectsPortOutOfRange(t *testing.T) {
	_, err := Build(2, 4, [][4]int{{0, 4, 1, 0}}, nil)
	if err == nil {
		t.Fatal("out-of-range port accepted")
	}
}

func TestBuildAllowsParallelLinks(t *testing.T) {
	topo, err := Build(2, 4, [][4]int{{0, 0, 1, 0}, {0, 1, 1, 1}}, nil)
	if err != nil {
		t.Fatalf("parallel links rejected: %v", err)
	}
	if len(topo.Links) != 2 {
		t.Fatalf("links = %d, want 2", len(topo.Links))
	}
}

func TestNodesAt(t *testing.T) {
	topo := paperFigure1(t)
	for s := 0; s < 8; s++ {
		nodes := topo.NodesAt(SwitchID(s))
		if len(nodes) != 1 || int(nodes[0]) != s {
			t.Fatalf("NodesAt(%d) = %v", s, nodes)
		}
	}
}

func TestOpenPorts(t *testing.T) {
	topo := paperFigure1(t)
	// Switch 0: 2 links + 1 node on 8 ports -> 5 open.
	if got := topo.OpenPorts(0); got != 5 {
		t.Fatalf("OpenPorts(0) = %d, want 5", got)
	}
}

func TestSwitchDistancesSymmetric(t *testing.T) {
	topo := paperFigure1(t)
	d := topo.SwitchDistances()
	for i := 0; i < 8; i++ {
		if d[i][i] != 0 {
			t.Fatalf("d[%d][%d] = %d", i, i, d[i][i])
		}
		for j := 0; j < 8; j++ {
			if d[i][j] != d[j][i] {
				t.Fatalf("asymmetric distance %d,%d", i, j)
			}
			if d[i][j] < 0 {
				t.Fatalf("unreachable pair %d,%d", i, j)
			}
		}
	}
	// Spot checks on the fixture: 0-{1,2}-{3,4}-{5,6}-7.
	if d[0][7] != 4 {
		t.Fatalf("d[0][7] = %d, want 4", d[0][7])
	}
	if d[0][3] != 2 || d[2][5] != 2 || d[0][1] != 1 {
		t.Fatalf("fixture distances wrong: d[0][3]=%d d[2][5]=%d d[0][1]=%d", d[0][3], d[2][5], d[0][1])
	}
}

func TestGenerateDefaultConfig(t *testing.T) {
	topo, err := Generate(DefaultConfig(), rng.New(1))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if topo.NumSwitches != 8 || topo.PortsPerSwitch != 8 || topo.NumNodes != 32 {
		t.Fatalf("unexpected shape %d/%d/%d", topo.NumSwitches, topo.PortsPerSwitch, topo.NumNodes)
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(DefaultConfig(), rng.New(99))
	b, _ := Generate(DefaultConfig(), rng.New(99))
	if len(a.Links) != len(b.Links) {
		t.Fatal("same seed produced different link counts")
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("same seed diverged at link %d", i)
		}
	}
	for n := 0; n < a.NumNodes; n++ {
		if a.NodeSwitch[n] != b.NodeSwitch[n] {
			t.Fatalf("same seed diverged at node %d", n)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(DefaultConfig(), rng.New(1))
	b, _ := Generate(DefaultConfig(), rng.New(2))
	same := len(a.Links) == len(b.Links)
	if same {
		identical := true
		for i := range a.Links {
			if a.Links[i] != b.Links[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical topologies")
		}
	}
}

func TestGenerateManyShapesValid(t *testing.T) {
	root := rng.New(7)
	cfgs := []Config{
		{Switches: 8, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
		{Switches: 16, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
		{Switches: 32, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
		{Switches: 4, PortsPerSwitch: 16, Nodes: 16, ExtraLinksPerSwitch: -1},
		{Switches: 2, PortsPerSwitch: 4, Nodes: 4, ExtraLinksPerSwitch: -1},
		{Switches: 8, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: 0},
		{Switches: 8, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: 99},
	}
	for _, cfg := range cfgs {
		for trial := 0; trial < 10; trial++ {
			topo, err := Generate(cfg, root.Split())
			if err != nil {
				t.Fatalf("Generate(%+v): %v", cfg, err)
			}
			if err := topo.Validate(); err != nil {
				t.Fatalf("Validate(%+v): %v", cfg, err)
			}
		}
	}
}

func TestGenerateRejectsInfeasible(t *testing.T) {
	// 2 switches x 2 ports: spanning tree needs 2 port-ends, so 3 nodes
	// cannot fit.
	_, err := Generate(Config{Switches: 2, PortsPerSwitch: 2, Nodes: 3}, rng.New(1))
	if err == nil {
		t.Fatal("infeasible config accepted")
	}
}

func TestGenerateFamily(t *testing.T) {
	fam, err := GenerateFamily(DefaultConfig(), 10, 123)
	if err != nil {
		t.Fatalf("GenerateFamily: %v", err)
	}
	if len(fam) != 10 {
		t.Fatalf("family size %d", len(fam))
	}
	// Family members must differ from each other (overwhelmingly likely).
	identicalPairs := 0
	for i := 1; i < len(fam); i++ {
		if len(fam[i].Links) == len(fam[0].Links) {
			same := true
			for k := range fam[i].Links {
				if fam[i].Links[k] != fam[0].Links[k] {
					same = false
					break
				}
			}
			if same {
				identicalPairs++
			}
		}
	}
	if identicalPairs > 0 {
		t.Fatalf("%d family members identical to member 0", identicalPairs)
	}
}

func TestGenerateNoSelfLinks(t *testing.T) {
	fam, err := GenerateFamily(Config{Switches: 16, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: 99}, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range fam {
		for _, l := range topo.Links {
			if l.A == l.B {
				t.Fatalf("self link %v", l)
			}
		}
	}
}

func TestRemoveLink(t *testing.T) {
	topo := paperFigure1(t)
	// Removing link 0-1 keeps the graph connected (0-2-3-1 remains).
	var idx = -1
	for i, l := range topo.Links {
		if l.A == 0 && l.B == 1 {
			idx = i
		}
	}
	if idx == -1 {
		t.Fatal("fixture lost its 0-1 link")
	}
	after, err := topo.RemoveLink(idx)
	if err != nil {
		t.Fatalf("RemoveLink: %v", err)
	}
	if len(after.Links) != len(topo.Links)-1 {
		t.Fatalf("links %d, want %d", len(after.Links), len(topo.Links)-1)
	}
	if err := after.Validate(); err != nil {
		t.Fatal(err)
	}
	// The original is untouched.
	if len(topo.Links) != 10 {
		t.Fatal("RemoveLink mutated the original")
	}
}

func TestRemoveLinkRejectsBridge(t *testing.T) {
	// A 2-switch topology's only link is a bridge.
	topo, err := Build(2, 4, [][4]int{{0, 0, 1, 0}}, [][2]int{{0, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.RemoveLink(0); err == nil {
		t.Fatal("bridge removal accepted")
	}
}

func TestRemoveLinkBadIndex(t *testing.T) {
	topo := paperFigure1(t)
	if _, err := topo.RemoveLink(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := topo.RemoveLink(99); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}
