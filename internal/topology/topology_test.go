package topology

import (
	"testing"

	"mcastsim/internal/rng"
)

// paperFigure1 builds the 8-switch topology of the paper's Figure 1(a)/(b):
// an irregular graph over switches 0..7 with one node per switch (the paper
// draws processing elements on several switches; one each suffices for the
// structural tests that reference this fixture).
func paperFigure1(t *testing.T) *Topology {
	t.Helper()
	links := [][4]int{
		{0, 0, 1, 0},
		{0, 1, 2, 0},
		{1, 1, 3, 0},
		{2, 1, 3, 1},
		{2, 2, 4, 0},
		{3, 2, 5, 0},
		{4, 1, 5, 1},
		{4, 2, 6, 0},
		{5, 2, 7, 0},
		{6, 1, 7, 1},
	}
	nodes := make([][2]int, 8)
	for n := range nodes {
		nodes[n] = [2]int{n, 7} // port 7 of each switch hosts a node
	}
	topo, err := Build(8, 8, links, nodes)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return topo
}

func TestBuildFixture(t *testing.T) {
	topo := paperFigure1(t)
	if topo.NumSwitches != 8 || topo.NumNodes != 8 {
		t.Fatalf("unexpected shape: %d switches, %d nodes", topo.NumSwitches, topo.NumNodes)
	}
	if len(topo.Links) != 10 {
		t.Fatalf("links = %d, want 10", len(topo.Links))
	}
	if !topo.Connected() {
		t.Fatal("fixture should be connected")
	}
}

func TestBuildRejectsSelfLink(t *testing.T) {
	_, err := Build(2, 4, [][4]int{{0, 0, 0, 1}}, nil)
	if err == nil {
		t.Fatal("self-link accepted")
	}
}

func TestBuildRejectsDoubleWiring(t *testing.T) {
	_, err := Build(2, 4, [][4]int{{0, 0, 1, 0}, {0, 0, 1, 1}}, nil)
	if err == nil {
		t.Fatal("double port use accepted")
	}
}

func TestBuildRejectsDisconnected(t *testing.T) {
	// Two isolated switch pairs.
	_, err := Build(4, 4, [][4]int{{0, 0, 1, 0}, {2, 0, 3, 0}}, nil)
	if err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestBuildRejectsPortOutOfRange(t *testing.T) {
	_, err := Build(2, 4, [][4]int{{0, 4, 1, 0}}, nil)
	if err == nil {
		t.Fatal("out-of-range port accepted")
	}
}

func TestBuildAllowsParallelLinks(t *testing.T) {
	topo, err := Build(2, 4, [][4]int{{0, 0, 1, 0}, {0, 1, 1, 1}}, nil)
	if err != nil {
		t.Fatalf("parallel links rejected: %v", err)
	}
	if len(topo.Links) != 2 {
		t.Fatalf("links = %d, want 2", len(topo.Links))
	}
}

func TestNodesAt(t *testing.T) {
	topo := paperFigure1(t)
	for s := 0; s < 8; s++ {
		nodes := topo.NodesAt(SwitchID(s))
		if len(nodes) != 1 || int(nodes[0]) != s {
			t.Fatalf("NodesAt(%d) = %v", s, nodes)
		}
	}
}

func TestOpenPorts(t *testing.T) {
	topo := paperFigure1(t)
	// Switch 0: 2 links + 1 node on 8 ports -> 5 open.
	if got := topo.OpenPorts(0); got != 5 {
		t.Fatalf("OpenPorts(0) = %d, want 5", got)
	}
}

func TestSwitchDistancesSymmetric(t *testing.T) {
	topo := paperFigure1(t)
	d := topo.SwitchDistances()
	for i := 0; i < 8; i++ {
		if d[i][i] != 0 {
			t.Fatalf("d[%d][%d] = %d", i, i, d[i][i])
		}
		for j := 0; j < 8; j++ {
			if d[i][j] != d[j][i] {
				t.Fatalf("asymmetric distance %d,%d", i, j)
			}
			if d[i][j] < 0 {
				t.Fatalf("unreachable pair %d,%d", i, j)
			}
		}
	}
	// Spot checks on the fixture: 0-{1,2}-{3,4}-{5,6}-7.
	if d[0][7] != 4 {
		t.Fatalf("d[0][7] = %d, want 4", d[0][7])
	}
	if d[0][3] != 2 || d[2][5] != 2 || d[0][1] != 1 {
		t.Fatalf("fixture distances wrong: d[0][3]=%d d[2][5]=%d d[0][1]=%d", d[0][3], d[2][5], d[0][1])
	}
}

func TestGenerateDefaultConfig(t *testing.T) {
	topo, err := Generate(DefaultConfig(), rng.New(1))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if topo.NumSwitches != 8 || topo.PortsPerSwitch != 8 || topo.NumNodes != 32 {
		t.Fatalf("unexpected shape %d/%d/%d", topo.NumSwitches, topo.PortsPerSwitch, topo.NumNodes)
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(DefaultConfig(), rng.New(99))
	b, _ := Generate(DefaultConfig(), rng.New(99))
	if len(a.Links) != len(b.Links) {
		t.Fatal("same seed produced different link counts")
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("same seed diverged at link %d", i)
		}
	}
	for n := 0; n < a.NumNodes; n++ {
		if a.NodeSwitch[n] != b.NodeSwitch[n] {
			t.Fatalf("same seed diverged at node %d", n)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a, _ := Generate(DefaultConfig(), rng.New(1))
	b, _ := Generate(DefaultConfig(), rng.New(2))
	same := len(a.Links) == len(b.Links)
	if same {
		identical := true
		for i := range a.Links {
			if a.Links[i] != b.Links[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical topologies")
		}
	}
}

func TestGenerateManyShapesValid(t *testing.T) {
	root := rng.New(7)
	cfgs := []Config{
		{Switches: 8, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
		{Switches: 16, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
		{Switches: 32, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
		{Switches: 4, PortsPerSwitch: 16, Nodes: 16, ExtraLinksPerSwitch: -1},
		{Switches: 2, PortsPerSwitch: 4, Nodes: 4, ExtraLinksPerSwitch: -1},
		{Switches: 8, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: 0},
		{Switches: 8, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: 99},
	}
	for _, cfg := range cfgs {
		for trial := 0; trial < 10; trial++ {
			topo, err := Generate(cfg, root.Split())
			if err != nil {
				t.Fatalf("Generate(%+v): %v", cfg, err)
			}
			if err := topo.Validate(); err != nil {
				t.Fatalf("Validate(%+v): %v", cfg, err)
			}
		}
	}
}

func TestGenerateRejectsInfeasible(t *testing.T) {
	// 2 switches x 2 ports: spanning tree needs 2 port-ends, so 3 nodes
	// cannot fit.
	_, err := Generate(Config{Switches: 2, PortsPerSwitch: 2, Nodes: 3}, rng.New(1))
	if err == nil {
		t.Fatal("infeasible config accepted")
	}
}

func TestGenerateFamily(t *testing.T) {
	fam, err := GenerateFamily(DefaultConfig(), 10, 123)
	if err != nil {
		t.Fatalf("GenerateFamily: %v", err)
	}
	if len(fam) != 10 {
		t.Fatalf("family size %d", len(fam))
	}
	// Family members must differ from each other (overwhelmingly likely).
	identicalPairs := 0
	for i := 1; i < len(fam); i++ {
		if len(fam[i].Links) == len(fam[0].Links) {
			same := true
			for k := range fam[i].Links {
				if fam[i].Links[k] != fam[0].Links[k] {
					same = false
					break
				}
			}
			if same {
				identicalPairs++
			}
		}
	}
	if identicalPairs > 0 {
		t.Fatalf("%d family members identical to member 0", identicalPairs)
	}
}

func TestGenerateNoSelfLinks(t *testing.T) {
	fam, err := GenerateFamily(Config{Switches: 16, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: 99}, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range fam {
		for _, l := range topo.Links {
			if l.A == l.B {
				t.Fatalf("self link %v", l)
			}
		}
	}
}

func TestRemoveLink(t *testing.T) {
	topo := paperFigure1(t)
	// Removing link 0-1 keeps the graph connected (0-2-3-1 remains).
	var idx = -1
	for i, l := range topo.Links {
		if l.A == 0 && l.B == 1 {
			idx = i
		}
	}
	if idx == -1 {
		t.Fatal("fixture lost its 0-1 link")
	}
	after, err := topo.RemoveLink(idx)
	if err != nil {
		t.Fatalf("RemoveLink: %v", err)
	}
	if len(after.Links) != len(topo.Links)-1 {
		t.Fatalf("links %d, want %d", len(after.Links), len(topo.Links)-1)
	}
	if err := after.Validate(); err != nil {
		t.Fatal(err)
	}
	// The original is untouched.
	if len(topo.Links) != 10 {
		t.Fatal("RemoveLink mutated the original")
	}
}

func TestRemoveLinkRejectsBridge(t *testing.T) {
	// A 2-switch topology's only link is a bridge.
	topo, err := Build(2, 4, [][4]int{{0, 0, 1, 0}}, [][2]int{{0, 1}, {1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.RemoveLink(0); err == nil {
		t.Fatal("bridge removal accepted")
	}
}

func TestRemoveLinkBadIndex(t *testing.T) {
	topo := paperFigure1(t)
	if _, err := topo.RemoveLink(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := topo.RemoveLink(99); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestLinkAt(t *testing.T) {
	topo := paperFigure1(t)
	for i, l := range topo.Links {
		if got := topo.LinkAt(l.A, l.APort); got != i {
			t.Fatalf("LinkAt(%d,%d) = %d, want %d", l.A, l.APort, got, i)
		}
		if got := topo.LinkAt(l.B, l.BPort); got != i {
			t.Fatalf("LinkAt(%d,%d) = %d, want %d", l.B, l.BPort, got, i)
		}
	}
	if topo.LinkAt(0, 7) != -1 { // node port
		t.Fatal("node port reported as link")
	}
	if topo.LinkAt(0, 5) != -1 { // open port
		t.Fatal("open port reported as link")
	}
	if topo.LinkAt(-1, 0) != -1 || topo.LinkAt(0, 99) != -1 {
		t.Fatal("out-of-range lookup did not return -1")
	}
}

func TestConnectedExcluding(t *testing.T) {
	topo := paperFigure1(t)
	if !topo.ConnectedExcluding(nil, nil) {
		t.Fatal("healthy graph reported disconnected")
	}
	// Links 8 (5-7) and 9 (6-7) are switch 7's only attachments: killing
	// one keeps the graph connected, killing both cuts 7 off.
	dead := make([]bool, len(topo.Links))
	dead[8] = true
	if !topo.ConnectedExcluding(dead, nil) {
		t.Fatal("single redundant link loss reported as partition")
	}
	dead[9] = true
	if topo.ConnectedExcluding(dead, nil) {
		t.Fatal("isolating switch 7 not reported as partition")
	}
	// A dead switch takes its links with it: killing switch 7 instead
	// leaves the rest connected.
	deadSw := make([]bool, topo.NumSwitches)
	deadSw[7] = true
	if !topo.ConnectedExcluding(nil, deadSw) {
		t.Fatal("removing leaf switch 7 reported as partition")
	}
	// Killing a cut vertex partitions: switch 2 and links 0,2 leave
	// {0,1,3,5,7...} split from {4,6}? Check with switches 2 and 3 dead,
	// which isolates {0,1} from {4,5,6,7}.
	deadSw = make([]bool, topo.NumSwitches)
	deadSw[2] = true
	deadSw[3] = true
	if topo.ConnectedExcluding(nil, deadSw) {
		t.Fatal("cutting switches 2+3 not reported as partition")
	}
}

// nodelessFixture builds a 4-switch cycle with a chord, nodes only on
// switches 0 and 2, so interior switches are removable.
func nodelessFixture(t *testing.T) *Topology {
	t.Helper()
	links := [][4]int{
		{0, 0, 1, 0}, {1, 1, 2, 0}, {2, 1, 3, 0}, {3, 1, 0, 1}, {1, 2, 3, 2},
	}
	topo, err := Build(4, 4, links, [][2]int{{0, 3}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestRemoveSwitch(t *testing.T) {
	topo := nodelessFixture(t)
	out, err := topo.RemoveSwitch(1)
	if err != nil {
		t.Fatalf("RemoveSwitch: %v", err)
	}
	if out.NumSwitches != 3 || len(out.Links) != 2 {
		t.Fatalf("got %d switches, %d links; want 3, 2", out.NumSwitches, len(out.Links))
	}
	// Renumbering: old switch 2 -> 1, old switch 3 -> 2; node 1 (was on
	// switch 2) must follow.
	if out.NodeSwitch[1] != 1 {
		t.Fatalf("node 1 on switch %d after renumbering, want 1", out.NodeSwitch[1])
	}
	for _, l := range out.Links {
		if int(l.A) >= out.NumSwitches || int(l.B) >= out.NumSwitches {
			t.Fatalf("dangling link %v after removal", l)
		}
	}
}

func TestRemoveSwitchRejections(t *testing.T) {
	topo := nodelessFixture(t)
	if _, err := topo.RemoveSwitch(0); err == nil {
		t.Fatal("removed a switch with attached nodes")
	}
	if _, err := topo.RemoveSwitch(99); err == nil {
		t.Fatal("out-of-range switch accepted")
	}
	// Removing switch 3 leaves 0-1-2 connected; then removing 1 from THAT
	// would disconnect 0 from 2 (only path was through 1).
	out, err := topo.RemoveSwitch(3)
	if err != nil {
		t.Fatalf("RemoveSwitch(3): %v", err)
	}
	if _, err := out.RemoveSwitch(1); err == nil {
		t.Fatal("partitioning removal accepted")
	}
	one, err := Build(1, 4, nil, [][2]int{{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := one.RemoveSwitch(0); err == nil {
		t.Fatal("removed the only switch")
	}
}
