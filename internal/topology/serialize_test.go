package topology

import (
	"bytes"
	"strings"
	"testing"

	"mcastsim/internal/rng"
)

func TestTextRoundTrip(t *testing.T) {
	fam, err := GenerateFamily(DefaultConfig(), 5, 77)
	if err != nil {
		t.Fatal(err)
	}
	for i, topo := range fam {
		var buf bytes.Buffer
		if err := WriteText(&buf, topo); err != nil {
			t.Fatalf("topology %d: WriteText: %v", i, err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("topology %d: ReadText: %v", i, err)
		}
		if back.NumSwitches != topo.NumSwitches || back.NumNodes != topo.NumNodes || back.PortsPerSwitch != topo.PortsPerSwitch {
			t.Fatalf("topology %d: shape changed", i)
		}
		for s := 0; s < topo.NumSwitches; s++ {
			for p := 0; p < topo.PortsPerSwitch; p++ {
				if back.Conn[s][p] != topo.Conn[s][p] {
					t.Fatalf("topology %d: switch %d port %d changed: %+v vs %+v",
						i, s, p, topo.Conn[s][p], back.Conn[s][p])
				}
			}
		}
	}
}

func TestReadTextCommentsAndBlanks(t *testing.T) {
	in := `# a comment
topology 2 4 1

# link section
link 0 0 1 0
node 0 0 1
`
	topo, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if topo.NumSwitches != 2 || topo.NumNodes != 1 {
		t.Fatal("parse mismatch")
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"missing header":     "link 0 0 1 0\n",
		"duplicate header":   "topology 2 4 0\ntopology 2 4 0\nlink 0 0 1 0\n",
		"unknown directive":  "topology 2 4 0\nlink 0 0 1 0\nfrob 1\n",
		"node out of range":  "topology 2 4 1\nlink 0 0 1 0\nnode 5 0 1\n",
		"duplicate node":     "topology 2 4 1\nlink 0 0 1 0\nnode 0 0 1\nnode 0 0 2\n",
		"missing node":       "topology 2 4 2\nlink 0 0 1 0\nnode 0 0 1\n",
		"malformed link":     "topology 2 4 0\nlink 0 0 1\n",
		"empty input":        "",
		"disconnected graph": "topology 2 4 0\n",
	}
	for name, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	topo, err := Generate(DefaultConfig(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, topo); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph irregular {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatal("DOT output malformed")
	}
	for s := 0; s < topo.NumSwitches; s++ {
		if !strings.Contains(out, "sw0") {
			t.Fatalf("DOT missing switch %d", s)
		}
	}
	if strings.Count(out, " -- ") != len(topo.Links)+topo.NumNodes {
		t.Fatalf("DOT edge count mismatch")
	}
}
