package topology

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteText serializes t in a line-oriented text format:
//
//	topology <switches> <ports> <nodes>
//	link <sA> <pA> <sB> <pB>
//	node <id> <switch> <port>
//
// Comment lines start with '#'; blank lines are ignored. The format is the
// interchange between cmd/topogen and the simulator and is stable.
func WriteText(w io.Writer, t *Topology) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "topology %d %d %d\n", t.NumSwitches, t.PortsPerSwitch, t.NumNodes)
	for _, l := range t.Links {
		fmt.Fprintf(bw, "link %d %d %d %d\n", l.A, l.APort, l.B, l.BPort)
	}
	for n := 0; n < t.NumNodes; n++ {
		fmt.Fprintf(bw, "node %d %d %d\n", n, t.NodeSwitch[n], t.NodePort[n])
	}
	return bw.Flush()
}

// ReadText parses the format written by WriteText.
func ReadText(r io.Reader) (*Topology, error) {
	sc := bufio.NewScanner(r)
	var (
		haveHeader          bool
		switches, ports, nn int
		links               [][4]int
		nodes               [][2]int
		lineNo              int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		fail := func(msg string) error {
			return fmt.Errorf("topology text line %d: %s: %q", lineNo, msg, line)
		}
		switch fields[0] {
		case "topology":
			if haveHeader {
				return nil, fail("duplicate header")
			}
			if len(fields) != 4 {
				return nil, fail("want 'topology S P N'")
			}
			if _, err := fmt.Sscanf(line, "topology %d %d %d", &switches, &ports, &nn); err != nil {
				return nil, fail(err.Error())
			}
			haveHeader = true
			nodes = make([][2]int, nn)
			for i := range nodes {
				nodes[i] = [2]int{-1, -1}
			}
		case "link":
			if !haveHeader {
				return nil, fail("link before header")
			}
			var l [4]int
			if _, err := fmt.Sscanf(line, "link %d %d %d %d", &l[0], &l[1], &l[2], &l[3]); err != nil {
				return nil, fail(err.Error())
			}
			links = append(links, l)
		case "node":
			if !haveHeader {
				return nil, fail("node before header")
			}
			var id, s, p int
			if _, err := fmt.Sscanf(line, "node %d %d %d", &id, &s, &p); err != nil {
				return nil, fail(err.Error())
			}
			if id < 0 || id >= nn {
				return nil, fail("node id out of range")
			}
			if nodes[id][0] != -1 {
				return nil, fail("duplicate node id")
			}
			nodes[id] = [2]int{s, p}
		default:
			return nil, fail("unknown directive")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !haveHeader {
		return nil, fmt.Errorf("topology text: missing header")
	}
	for id, at := range nodes {
		if at[0] == -1 {
			return nil, fmt.Errorf("topology text: node %d missing", id)
		}
	}
	return Build(switches, ports, links, nodes)
}

// WriteDOT emits a Graphviz rendering of the switch graph, with nodes as
// small boxes hanging off their switches — the shape of the paper's
// Figure 1(a).
func WriteDOT(w io.Writer, t *Topology) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph irregular {")
	fmt.Fprintln(bw, "  layout=neato; overlap=false; splines=true;")
	for s := 0; s < t.NumSwitches; s++ {
		fmt.Fprintf(bw, "  sw%d [shape=circle,label=\"S%d\",style=filled,fillcolor=lightgray];\n", s, s)
	}
	for n := 0; n < t.NumNodes; n++ {
		fmt.Fprintf(bw, "  h%d [shape=box,fontsize=9,label=\"h%d\"];\n", n, n)
		fmt.Fprintf(bw, "  sw%d -- h%d [len=0.6];\n", t.NodeSwitch[n], n)
	}
	for _, l := range t.Links {
		fmt.Fprintf(bw, "  sw%d -- sw%d [penwidth=1.5];\n", l.A, l.B)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
