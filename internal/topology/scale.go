package topology

import (
	"fmt"

	"mcastsim/internal/rng"
)

// Datacenter-scale structured generators. The paper settles NI-vs-switch
// multicast on tens of switches; ROADMAP item 2 asks whether the answer
// flips at thousands of switches and ~100k hosts, which means fabrics
// people actually build at that scale: folded-Clos fat-trees and
// dragonflies, plus a scaled-up variant of the paper's own irregular
// generator as the control.
//
// All three generators number hosts contiguously per edge switch (host n
// attaches to a switch that also holds hosts n-1 or n+1 unless n sits on
// a block boundary). That choice is load-bearing for the interval-coded
// destination headers (package destset): a rack-local multicast group
// becomes a single [lo, hi] index run, which is exactly the low
// egress-diversity structure P3FA exploits.

// FatTreeConfig shapes a three-level folded-Clos fabric.
//
// Each of Pods pods holds EdgePerPod edge switches and AggPerPod
// aggregation switches, fully bipartitely meshed inside the pod. Core
// group j (CoreUplinksPerAgg switches) connects aggregation switch j of
// every pod, so there are AggPerPod x CoreUplinksPerAgg cores, each with
// one link per pod. HostsPerEdge hosts hang off every edge switch.
type FatTreeConfig struct {
	Pods              int
	EdgePerPod        int
	AggPerPod         int
	CoreUplinksPerAgg int
	HostsPerEdge      int
}

// Switches returns the total switch count (edge + aggregation + core).
func (c FatTreeConfig) Switches() int {
	return c.Pods*(c.EdgePerPod+c.AggPerPod) + c.AggPerPod*c.CoreUplinksPerAgg
}

// Hosts returns the total host count.
func (c FatTreeConfig) Hosts() int { return c.Pods * c.EdgePerPod * c.HostsPerEdge }

// FatTree builds the fabric. Switch numbering is edges first (pod-major,
// so host n's edge switch is n/HostsPerEdge), then aggregations
// (pod-major), then cores. Every switch carries the same port count (the
// maximum any layer needs); unused ports stay open, as the uniform-port
// system model requires.
func FatTree(c FatTreeConfig) (*Topology, error) {
	if c.Pods <= 0 || c.EdgePerPod <= 0 || c.AggPerPod <= 0 || c.CoreUplinksPerAgg <= 0 || c.HostsPerEdge <= 0 {
		return nil, fmt.Errorf("topology: fat-tree config %+v has a non-positive field", c)
	}
	numEdge := c.Pods * c.EdgePerPod
	numAgg := c.Pods * c.AggPerPod
	edgeID := func(pod, e int) int { return pod*c.EdgePerPod + e }
	aggID := func(pod, j int) int { return numEdge + pod*c.AggPerPod + j }
	coreID := func(j, u int) int { return numEdge + numAgg + j*c.CoreUplinksPerAgg + u }

	ports := c.HostsPerEdge + c.AggPerPod // edge layer
	if p := c.EdgePerPod + c.CoreUplinksPerAgg; p > ports {
		ports = p // aggregation layer
	}
	if c.Pods > ports {
		ports = c.Pods // core layer
	}

	links := make([][4]int, 0, numEdge*c.AggPerPod+numAgg*c.CoreUplinksPerAgg)
	for pod := 0; pod < c.Pods; pod++ {
		for e := 0; e < c.EdgePerPod; e++ {
			for j := 0; j < c.AggPerPod; j++ {
				// Edge port HostsPerEdge+j <-> agg port e.
				links = append(links, [4]int{edgeID(pod, e), c.HostsPerEdge + j, aggID(pod, j), e})
			}
		}
		for j := 0; j < c.AggPerPod; j++ {
			for u := 0; u < c.CoreUplinksPerAgg; u++ {
				// Agg port EdgePerPod+u <-> core port pod.
				links = append(links, [4]int{aggID(pod, j), c.EdgePerPod + u, coreID(j, u), pod})
			}
		}
	}
	nodes := make([][2]int, 0, c.Hosts())
	for e := 0; e < numEdge; e++ {
		for k := 0; k < c.HostsPerEdge; k++ {
			nodes = append(nodes, [2]int{e, k})
		}
	}
	return Build(c.Switches(), ports, links, nodes)
}

// DragonflyConfig shapes a canonical dragonfly: Groups groups of
// RoutersPerGroup routers, each group internally all-to-all, with one
// global link between every group pair. Each router carries
// GlobalPerRouter global ports and HostsPerRouter hosts, so the global
// all-to-all needs RoutersPerGroup x GlobalPerRouter >= Groups-1.
type DragonflyConfig struct {
	Groups          int
	RoutersPerGroup int
	GlobalPerRouter int
	HostsPerRouter  int
}

// Switches returns the total router count.
func (c DragonflyConfig) Switches() int { return c.Groups * c.RoutersPerGroup }

// Hosts returns the total host count.
func (c DragonflyConfig) Hosts() int { return c.Switches() * c.HostsPerRouter }

// Dragonfly builds the fabric. Router numbering is group-major; host n
// attaches to router n/HostsPerRouter, so host IDs are contiguous per
// router and per group. Port layout per router: hosts, then the
// RoutersPerGroup-1 local all-to-all ports, then global ports. Group g's
// global slot for peer group g' is g' (minus one past g), assigned to
// router slot/GlobalPerRouter — a fixed arrangement, so equal configs
// wire identically.
func Dragonfly(c DragonflyConfig) (*Topology, error) {
	if c.Groups <= 1 || c.RoutersPerGroup <= 0 || c.GlobalPerRouter <= 0 || c.HostsPerRouter <= 0 {
		return nil, fmt.Errorf("topology: dragonfly config %+v needs >= 2 groups and positive fields", c)
	}
	a, h := c.RoutersPerGroup, c.GlobalPerRouter
	if a*h < c.Groups-1 {
		return nil, fmt.Errorf("topology: dragonfly %d groups need %d global slots, have %d x %d",
			c.Groups, c.Groups-1, a, h)
	}
	ports := c.HostsPerRouter + (a - 1) + h
	routerID := func(g, r int) int { return g*a + r }
	// slot returns group g's global slot index for peer group peer.
	slot := func(g, peer int) int {
		if peer < g {
			return peer
		}
		return peer - 1
	}
	globalPort := func(s int) (router, port int) {
		return s / h, c.HostsPerRouter + (a - 1) + s%h
	}

	var links [][4]int
	for g := 0; g < c.Groups; g++ {
		// Local all-to-all: router r's local port for peer r' skips itself.
		for r := 0; r < a; r++ {
			for q := r + 1; q < a; q++ {
				links = append(links, [4]int{
					routerID(g, r), c.HostsPerRouter + (q - 1),
					routerID(g, q), c.HostsPerRouter + r,
				})
			}
		}
		// Global links, emitted once per group pair.
		for peer := g + 1; peer < c.Groups; peer++ {
			ra, pa := globalPort(slot(g, peer))
			rb, pb := globalPort(slot(peer, g))
			links = append(links, [4]int{routerID(g, ra), pa, routerID(peer, rb), pb})
		}
	}
	nodes := make([][2]int, 0, c.Hosts())
	for r := 0; r < c.Switches(); r++ {
		for k := 0; k < c.HostsPerRouter; k++ {
			nodes = append(nodes, [2]int{r, k})
		}
	}
	return Build(c.Switches(), ports, links, nodes)
}

// ScaledIrregularConfig shapes the scaled-up control: the paper's random
// irregular switch graph (spanning tree plus extra links), but with
// hosts attached in contiguous blocks — host n on switch
// n/HostsPerSwitch — instead of uniformly at random, so interval coding
// sees the same rack structure the structured fabrics provide.
type ScaledIrregularConfig struct {
	Switches       int
	HostsPerSwitch int
	// ExtraLinksPerSwitch matches Config.ExtraLinksPerSwitch: negative
	// means the paper-density default, 0 a pure tree.
	ExtraLinksPerSwitch float64
	// SwitchPorts is the inter-switch port budget per switch (beyond the
	// HostsPerSwitch host ports); 0 means the default of 8, which keeps
	// the paper generator's density feasible at every size.
	SwitchPorts int
}

// Hosts returns the total host count.
func (c ScaledIrregularConfig) Hosts() int { return c.Switches * c.HostsPerSwitch }

// ScaledIrregular builds one seeded instance. Ports 0..HostsPerSwitch-1
// of every switch hold its host block; the remaining ports carry the
// random switch graph. Identical (config, seed) pairs build identical
// topologies.
func ScaledIrregular(cfg ScaledIrregularConfig, seed uint64) (*Topology, error) {
	if cfg.Switches <= 0 || cfg.HostsPerSwitch < 0 {
		return nil, fmt.Errorf("topology: scaled-irregular config %+v invalid", cfg)
	}
	sp := cfg.SwitchPorts
	if sp == 0 {
		sp = 8
	}
	if sp < 2 && cfg.Switches > 1 {
		return nil, fmt.Errorf("topology: %d inter-switch ports cannot form a spanning tree", sp)
	}
	S := cfg.Switches
	P := cfg.HostsPerSwitch + sp
	perSwitch := cfg.ExtraLinksPerSwitch
	if perSwitch < 0 {
		perSwitch = defaultExtraLinksPerSwitch
	}
	r := rng.New(seed)

	free := make([]int, S)
	nextPort := make([]int, S)
	for s := range free {
		free[s] = sp
		nextPort[s] = cfg.HostsPerSwitch
	}
	takePort := func(s int) int {
		p := nextPort[s]
		nextPort[s]++
		free[s]--
		return p
	}

	// Random spanning tree, exactly the paper generator's construction
	// (see Generate): attach each switch in random order to a uniformly
	// random already-placed switch with a free port.
	var links [][4]int
	order := r.Perm(S)
	avail := newSelector(S)
	posSwitch := make([]int, S)
	posSwitch[0] = order[0]
	avail.set(0)
	for i, s := range order[1:] {
		c := avail.count()
		if c == 0 {
			return nil, fmt.Errorf("topology: ran out of ports building spanning tree")
		}
		qPos := avail.kth(r.Intn(c))
		q := posSwitch[qPos]
		links = append(links, [4]int{s, takePort(s), q, takePort(q)})
		if free[q] == 0 {
			avail.clear(qPos)
		}
		posSwitch[i+1] = s
		if free[s] > 0 {
			avail.set(i + 1)
		}
	}

	// Extra links over free ports, again the paper generator's policy.
	byID := newSelector(S)
	for s := 0; s < S; s++ {
		if free[s] > 0 {
			byID.set(s)
		}
	}
	target := int(perSwitch*float64(S) + 0.5)
	for added := 0; added < target; added++ {
		n := byID.count()
		if n < 2 {
			break
		}
		a := byID.kth(r.Intn(n))
		b := byID.kth(r.Intn(n))
		for b == a {
			b = byID.kth(r.Intn(n))
		}
		links = append(links, [4]int{a, takePort(a), b, takePort(b)})
		if free[a] == 0 {
			byID.clear(a)
		}
		if free[b] == 0 {
			byID.clear(b)
		}
	}

	nodes := make([][2]int, cfg.Hosts())
	for n := range nodes {
		nodes[n] = [2]int{n / cfg.HostsPerSwitch, n % cfg.HostsPerSwitch}
	}
	return Build(S, P, links, nodes)
}
