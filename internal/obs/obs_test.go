package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"mcastsim/internal/event"
)

// fakeBundle builds a recorder-produced bundle with every field exercised,
// including sparse probe series and engine counters.
func fakeBundle(t *testing.T, cell string, samples int) Bundle {
	t.Helper()
	r := NewRecorder(Config{Every: 100})
	r.AttachNetwork([]string{"s0p0->s1", "s1p0->s0", "inj n0"}, 2, 1)
	sink := r.EngineSink()
	var flits [3]int64
	var hops int64
	var events uint64
	for i := 0; i < samples; i++ {
		flits[0] += int64(10 * (i + 1))
		flits[2] += 3
		hops = flits[0] + flits[1] + flits[2]
		events += uint64(50 + i)
		sink.FarPosts += 2
		sink.Migrations++
		if i%2 == 0 {
			r.CreditStall(0)
			r.ArbConflict(1)
			r.NIDeferred(0)
		}
		at := event.Time(100 * (i + 1))
		r.Sample(at, func(s *Snapshot) {
			copy(s.ChanFlits, flits[:])
			s.BufOcc[0] = int64(i)
			s.NISend[0] = int64(i % 3)
			s.NIRecv[0] = 1
			s.FlitHops = hops
			s.Events = events
			s.QueueLen = int64(5 + i)
			s.FarLen = int64(i % 2)
		})
	}
	return r.Bundle(cell)
}

func TestRecorderDifferencesCumulativeSeries(t *testing.T) {
	b := fakeBundle(t, "cell/a", 4)
	if len(b.Snapshots) != 4 {
		t.Fatalf("got %d snapshots", len(b.Snapshots))
	}
	// fill wrote cumulative 10, 30, 60, 100 on channel 0; intervals must be
	// 10, 20, 30, 40.
	want := []int64{10, 20, 30, 40}
	for i, s := range b.Snapshots {
		if s.ChanFlits[0] != want[i] {
			t.Errorf("snapshot %d: chan 0 interval %d, want %d", i, s.ChanFlits[0], want[i])
		}
		if s.FarPosts != 2 || s.Migrations != 1 {
			t.Errorf("snapshot %d: engine interval far=%d migr=%d, want 2/1", i, s.FarPosts, s.Migrations)
		}
	}
	// Probe series: stalls land on even sample indices only.
	for i, s := range b.Snapshots {
		want := int64(0)
		if i%2 == 0 {
			want = 1
		}
		if s.ChanStalls[0] != want || s.ArbConflicts[1] != want || s.NIDeferred[0] != want {
			t.Errorf("snapshot %d: probe intervals stall=%d arb=%d defer=%d, want %d",
				i, s.ChanStalls[0], s.ArbConflicts[1], s.NIDeferred[0], want)
		}
	}
	// Reconciliation: interval sums rebuild the cumulative totals.
	if got := b.TotalFlits(); got != 100+0+12 {
		t.Fatalf("TotalFlits %d, want 112", got)
	}
	var hops int64
	for _, s := range b.Snapshots {
		hops += s.FlitHops
	}
	if hops != 112 {
		t.Fatalf("summed FlitHops %d, want 112", hops)
	}
}

func TestRecorderReattachResetsNetworkBaselinesOnly(t *testing.T) {
	r := NewRecorder(Config{Every: 10})
	labels := []string{"a", "b"}
	r.AttachNetwork(labels, 1, 1)
	sink := r.EngineSink()
	sink.FarPosts = 7
	r.Sample(10, func(s *Snapshot) { s.ChanFlits[0] = 5; s.Events = 100 })

	// Second run in the same cell: network counters restart at zero, the
	// engine sink keeps counting.
	r.AttachNetwork(labels, 1, 1)
	sink.FarPosts = 9
	r.Sample(10, func(s *Snapshot) { s.ChanFlits[0] = 3; s.Events = 40 })
	snaps := r.Samples()
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots", len(snaps))
	}
	s := snaps[1]
	if s.Run != 1 {
		t.Fatalf("second run index %d, want 1", s.Run)
	}
	if s.ChanFlits[0] != 3 || s.Events != 40 {
		t.Fatalf("per-network series not re-based: flits=%d events=%d", s.ChanFlits[0], s.Events)
	}
	if s.FarPosts != 2 {
		t.Fatalf("engine series re-based across runs: far interval %d, want 2", s.FarPosts)
	}
}

func TestRecorderAttachShapeMismatchPanics(t *testing.T) {
	r := NewRecorder(Config{})
	r.AttachNetwork([]string{"a"}, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched attach did not panic")
		}
	}()
	r.AttachNetwork([]string{"a", "b"}, 1, 1)
}

func TestRecorderRingEvictsOldest(t *testing.T) {
	r := NewRecorder(Config{Every: 1, MaxSamples: 3})
	r.AttachNetwork([]string{"a"}, 1, 1)
	for i := 1; i <= 5; i++ {
		r.Sample(event.Time(i), func(s *Snapshot) {})
	}
	b := r.Bundle("c")
	if b.Dropped != 2 {
		t.Fatalf("dropped %d, want 2", b.Dropped)
	}
	var ats []event.Time
	for _, s := range b.Snapshots {
		ats = append(ats, s.At)
	}
	if !reflect.DeepEqual(ats, []event.Time{3, 4, 5}) {
		t.Fatalf("retained samples at %v, want [3 4 5]", ats)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	in := []Bundle{fakeBundle(t, "cell/a", 5), fakeBundle(t, "cell/b", 2)}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("jsonl round trip diverged:\n in: %+v\nout: %+v", in, out)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	in := []Bundle{fakeBundle(t, "cell/a", 5), fakeBundle(t, "cell/b", 2)}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, in); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	out, err := ReadCSV(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("csv round trip diverged:\n in: %+v\nout: %+v", in, out)
	}
	// Write→read→write is byte-stable (sparse zero rows rebuild exactly).
	var buf2 bytes.Buffer
	if err := WriteCSV(&buf2, out); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Fatal("second csv encoding differs from first")
	}
}

func TestHeatmapRendersBusiestChannels(t *testing.T) {
	b := fakeBundle(t, "cell/a", 8)
	var buf bytes.Buffer
	if err := WriteHeatmap(&buf, b, 2, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "cell/a") {
		t.Fatalf("missing cell label:\n%s", out)
	}
	// Channel 0 carries almost all flits, channel 1 none; topN=2 must show
	// the busiest two and omit the idle one.
	if !strings.Contains(out, "s0p0->s1") || !strings.Contains(out, "inj n0") {
		t.Fatalf("busiest channels missing:\n%s", out)
	}
	if strings.Contains(out, "s1p0->s0") {
		t.Fatalf("idle channel rendered despite topN=2:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 4 {
		t.Fatalf("expected header(2) + 2 channel rows, got %d lines:\n%s", lines, out)
	}
}

func TestHeatmapEmptyBundle(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHeatmap(&buf, Bundle{Cell: "empty"}, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no samples") {
		t.Fatalf("empty bundle output %q", buf.String())
	}
}
