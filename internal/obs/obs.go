// Package obs is the simulator's sampling telemetry subsystem. It
// surfaces the quantities the paper's NI-vs-switch argument turns on —
// per-link flit traffic, switch output-port arbitration conflicts and
// input-buffer occupancy, NI send/recv queue depths, credit stalls, and
// event-engine overflow behaviour — as fixed-cadence time series, so a
// fig9-style saturation cliff can be explained from the run itself
// instead of from a single end-of-run latency number.
//
// The design contract is zero overhead when disabled: the simulator
// carries a single nil-checked *Recorder pointer, every probe site is a
// one-branch guard on a cold path, and no probe allocates. Allocation
// happens only inside Sample, which runs at the flush cadence (default
// every 1024 cycles), never per flit. A Recorder belongs to exactly one
// simulation cell (one goroutine); experiment harnesses create one per
// cell and merge the resulting Bundles order-stably afterwards.
//
// Cumulative-vs-interval convention: probes and the sim's flush both
// write running totals; the Recorder differentiates against the previous
// sample, so every Snapshot holds the activity of its interval only and
// the sum of a series reconciles exactly with the run's final counters
// (sum of ChanFlits across all snapshots == Stats.FlitHops).
package obs

import (
	"fmt"

	"mcastsim/internal/event"
)

// DefaultEvery is the sampling cadence, in cycles, when Config.Every is
// unset. It matches the event ring size: one snapshot per calendar wrap.
const DefaultEvery = event.Time(1024)

// DefaultMaxSamples bounds the snapshot ring when Config.MaxSamples is
// unset. At the default cadence this covers ~4M cycles before eviction.
const DefaultMaxSamples = 4096

// Config parameterizes a Recorder.
type Config struct {
	// Every is the flush cadence in cycles; <= 0 selects DefaultEvery.
	Every event.Time
	// MaxSamples caps the retained snapshots; the recorder keeps the most
	// recent ones and counts evictions in Bundle.Dropped. <= 0 selects
	// DefaultMaxSamples.
	MaxSamples int
}

// Snapshot is one sampling interval of one simulation run. Slice fields
// are indexed by the registration order the attached network reported
// (channels in deterministic enumeration order, switches and nodes by
// id). Interval fields cover (previous sample, At]; depth fields are
// instantaneous at At.
type Snapshot struct {
	Run int        `json:"run"` // network index within the cell (0-based)
	At  event.Time `json:"at"`  // sample time in cycles

	ChanFlits  []int64 `json:"chan_flits"`  // per channel: flits transmitted this interval
	ChanStalls []int64 `json:"chan_stalls"` // per channel: credit-exhausted pump attempts

	BufOcc       []int64 `json:"buf_occ"`       // per switch: input-buffer flits resident at At
	ArbConflicts []int64 `json:"arb_conflicts"` // per switch: output-port requests that had to queue

	NISend     []int64 `json:"ni_send"`     // per node: bursts awaiting injection at At
	NIRecv     []int64 `json:"ni_recv"`     // per node: packets mid-assembly at At
	NIDeferred []int64 `json:"ni_deferred"` // per node: bursts deferred by a full injection buffer

	FlitHops int64 `json:"flit_hops"` // total flit transmissions this interval

	Events     uint64 `json:"events"`     // engine events dispatched this interval
	QueueLen   int64  `json:"queue_len"`  // pending events at At
	FarLen     int64  `json:"far_len"`    // overflow-heap entries at At
	FarPosts   uint64 `json:"far_posts"`  // posts beyond the calendar window this interval
	Migrations uint64 `json:"migrations"` // far→ring migrations this interval

	// Dynamic-group series, indexed by GroupID; present only on runs with
	// registered groups (see sim/group.go). GroupSize is instantaneous at
	// At; the remaining fields are cumulative as of At (membership churn
	// is far sparser than the sampling cadence, and the churn experiment
	// reads absolute counts), so the recorder does not difference them.
	GroupSize    []int64 `json:"group_size,omitempty"`    // per group: members at At
	GroupStale   []int64 `json:"group_stale,omitempty"`   // per group: stale deliveries so far
	GroupMissed  []int64 `json:"group_missed,omitempty"`  // per group: missed deliveries so far
	GroupRepairs []int64 `json:"group_repairs,omitempty"` // per group: plan repairs so far
}

// Bundle is one cell's complete observation: topology labels plus the
// ordered snapshot series. Bundles are self-describing so exporters and
// readers need no side channel.
type Bundle struct {
	Cell      string     `json:"cell"`     // deterministic cell label
	Channels  []string   `json:"channels"` // channel labels, registration order
	Switches  int        `json:"switches"`
	Nodes     int        `json:"nodes"`
	Every     event.Time `json:"every"`
	Dropped   int64      `json:"dropped,omitempty"` // ring-evicted snapshots
	Snapshots []Snapshot `json:"snapshots"`
}

// Recorder accumulates one cell's telemetry. Not safe for concurrent
// use: it lives inside a single cell's goroutine, like the Network it
// observes.
type Recorder struct {
	cfg Config

	// Topology registered by the first attached network; later networks
	// in the same cell must match (same routed topology re-simulated).
	chans    []string
	switches int
	nodes    int

	// Probe accumulators, cumulative over the current run.
	chanStalls   []int64
	arbConflicts []int64
	niDeferred   []int64
	engine       event.EngineObs

	// Differencing baselines, reset per attach (per run) for per-network
	// counters and kept across runs for the recorder-owned engine sink.
	lastFlits    []int64
	lastStalls   []int64
	lastConf     []int64
	lastDeferred []int64
	lastHops     int64
	lastEvents   uint64
	lastFarPosts uint64
	lastMigr     uint64

	run     int // current run index; -1 before the first attach
	started bool

	// Snapshot ring.
	snaps   []Snapshot
	start   int
	count   int
	dropped int64
}

// NewRecorder returns a recorder with defaults applied.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Every <= 0 {
		cfg.Every = DefaultEvery
	}
	if cfg.MaxSamples <= 0 {
		cfg.MaxSamples = DefaultMaxSamples
	}
	return &Recorder{cfg: cfg, run: -1}
}

// Every reports the flush cadence in cycles.
func (r *Recorder) Every() event.Time { return r.cfg.Every }

// EngineSink returns the counter block a Queue should post cold-path
// scheduling counters into (via Queue.SetObs). The sink is recorder-owned
// and persists across the cell's networks.
func (r *Recorder) EngineSink() *event.EngineObs { return &r.engine }

// AttachNetwork begins a new run. The first call registers the topology
// (channel labels in the network's deterministic enumeration order);
// later calls must present the identical shape — a Recorder observes one
// cell, and a cell re-simulates one routed topology.
func (r *Recorder) AttachNetwork(chanLabels []string, switches, nodes int) {
	if !r.started {
		r.chans = append([]string(nil), chanLabels...)
		r.switches = switches
		r.nodes = nodes
		r.chanStalls = make([]int64, len(chanLabels))
		r.arbConflicts = make([]int64, switches)
		r.niDeferred = make([]int64, nodes)
		r.lastFlits = make([]int64, len(chanLabels))
		r.lastStalls = make([]int64, len(chanLabels))
		r.lastConf = make([]int64, switches)
		r.lastDeferred = make([]int64, nodes)
		r.started = true
	} else if len(chanLabels) != len(r.chans) || switches != r.switches || nodes != r.nodes {
		panic(fmt.Sprintf("obs: attach with %d channels/%d switches/%d nodes to a recorder registered with %d/%d/%d — one Recorder observes one cell topology",
			len(chanLabels), switches, nodes, len(r.chans), r.switches, r.nodes))
	}
	r.run++
	// Fresh network: its cumulative counters restart at zero, so the
	// per-network baselines restart too. The engine sink is cumulative
	// across runs and its baselines are NOT reset.
	for i := range r.lastFlits {
		r.lastFlits[i] = 0
		r.lastStalls[i] = 0
	}
	for i := range r.lastConf {
		r.lastConf[i] = 0
	}
	for i := range r.lastDeferred {
		r.lastDeferred[i] = 0
	}
	for i := range r.chanStalls {
		r.chanStalls[i] = 0
	}
	for i := range r.arbConflicts {
		r.arbConflicts[i] = 0
	}
	for i := range r.niDeferred {
		r.niDeferred[i] = 0
	}
	r.lastHops = 0
	r.lastEvents = 0
}

// CreditStall records one credit-exhausted pump attempt on channel ch.
func (r *Recorder) CreditStall(ch int32) { r.chanStalls[ch]++ }

// ArbConflict records one output-port request that found every candidate
// port held and had to queue at switch sw.
func (r *Recorder) ArbConflict(sw int32) { r.arbConflicts[sw]++ }

// NIDeferred records one burst deferred because node's NI injection
// buffer was full.
func (r *Recorder) NIDeferred(node int32) { r.niDeferred[node]++ }

// Sample captures one snapshot at time at. fill receives a Snapshot with
// arrays sized to the registered topology and writes the CUMULATIVE
// values of ChanFlits, FlitHops, Events, and the instantaneous BufOcc,
// NISend, NIRecv, QueueLen, FarLen; the recorder folds in its own probe
// accumulators and differentiates every cumulative field against the
// previous sample before storing. Snapshots past the configured cap evict
// the oldest (counted in Bundle.Dropped).
func (r *Recorder) Sample(at event.Time, fill func(*Snapshot)) {
	if !r.started {
		panic("obs: Sample before AttachNetwork")
	}
	s := Snapshot{
		Run:          r.run,
		At:           at,
		ChanFlits:    make([]int64, len(r.chans)),
		ChanStalls:   make([]int64, len(r.chans)),
		BufOcc:       make([]int64, r.switches),
		ArbConflicts: make([]int64, r.switches),
		NISend:       make([]int64, r.nodes),
		NIRecv:       make([]int64, r.nodes),
		NIDeferred:   make([]int64, r.nodes),
	}
	fill(&s)
	for i := range s.ChanFlits {
		total := s.ChanFlits[i]
		s.ChanFlits[i] = total - r.lastFlits[i]
		r.lastFlits[i] = total
		s.ChanStalls[i] = r.chanStalls[i] - r.lastStalls[i]
		r.lastStalls[i] = r.chanStalls[i]
	}
	for i := range s.ArbConflicts {
		s.ArbConflicts[i] = r.arbConflicts[i] - r.lastConf[i]
		r.lastConf[i] = r.arbConflicts[i]
	}
	for i := range s.NIDeferred {
		s.NIDeferred[i] = r.niDeferred[i] - r.lastDeferred[i]
		r.lastDeferred[i] = r.niDeferred[i]
	}
	s.FlitHops, r.lastHops = s.FlitHops-r.lastHops, s.FlitHops
	s.Events, r.lastEvents = s.Events-r.lastEvents, s.Events
	s.FarPosts, r.lastFarPosts = r.engine.FarPosts-r.lastFarPosts, r.engine.FarPosts
	s.Migrations, r.lastMigr = r.engine.Migrations-r.lastMigr, r.engine.Migrations
	r.push(s)
}

// push appends to the bounded snapshot ring.
func (r *Recorder) push(s Snapshot) {
	if r.snaps == nil {
		r.snaps = make([]Snapshot, 0, min(r.cfg.MaxSamples, 64))
	}
	if r.count < r.cfg.MaxSamples {
		if len(r.snaps) < r.cfg.MaxSamples && r.count == len(r.snaps) {
			r.snaps = append(r.snaps, s)
		} else {
			r.snaps[(r.start+r.count)%r.cfg.MaxSamples] = s
		}
		r.count++
		return
	}
	r.snaps[r.start] = s
	r.start = (r.start + 1) % r.cfg.MaxSamples
	r.dropped++
}

// Samples returns the retained snapshots, oldest first. The slice is a
// copy; mutating it does not affect the recorder.
func (r *Recorder) Samples() []Snapshot {
	out := make([]Snapshot, r.count)
	for i := 0; i < r.count; i++ {
		out[i] = r.snaps[(r.start+i)%len(r.snaps)]
	}
	return out
}

// Bundle packages the recorder's state for export under a cell label.
func (r *Recorder) Bundle(cell string) Bundle {
	return Bundle{
		Cell:      cell,
		Channels:  append([]string(nil), r.chans...),
		Switches:  r.switches,
		Nodes:     r.nodes,
		Every:     r.cfg.Every,
		Dropped:   r.dropped,
		Snapshots: r.Samples(),
	}
}

// TotalFlits sums ChanFlits across every snapshot — the reconciliation
// quantity that must equal the summed Stats.FlitHops of the bundle's
// runs when every run ended with a final flush.
func (b Bundle) TotalFlits() int64 {
	var t int64
	for _, s := range b.Snapshots {
		for _, f := range s.ChanFlits {
			t += f
		}
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
