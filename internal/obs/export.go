package obs

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"mcastsim/internal/event"
)

// jsonlRecord is one line of the JSONL stream: either a bundle header
// (Meta true, topology fields set) or one snapshot belonging to the most
// recent header. Keeping snapshots on their own lines keeps the format
// streamable and diff-friendly for long runs.
type jsonlRecord struct {
	Cell string `json:"cell"`
	Meta bool   `json:"meta,omitempty"`

	// Header fields.
	Channels []string   `json:"channels,omitempty"`
	Switches int        `json:"switches,omitempty"`
	Nodes    int        `json:"nodes,omitempty"`
	Every    event.Time `json:"every,omitempty"`
	Dropped  int64      `json:"dropped,omitempty"`

	// Snapshot payload.
	Snap *Snapshot `json:"snap,omitempty"`
}

// WriteJSONL streams bundles as line-delimited JSON: one header line per
// bundle followed by one line per snapshot.
func WriteJSONL(w io.Writer, bundles []Bundle) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range bundles {
		b := &bundles[i]
		if err := enc.Encode(jsonlRecord{
			Cell: b.Cell, Meta: true,
			Channels: b.Channels, Switches: b.Switches, Nodes: b.Nodes,
			Every: b.Every, Dropped: b.Dropped,
		}); err != nil {
			return err
		}
		for j := range b.Snapshots {
			if err := enc.Encode(jsonlRecord{Cell: b.Cell, Snap: &b.Snapshots[j]}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadJSONL reverses WriteJSONL. Snapshot lines must follow their
// bundle's header line, which WriteJSONL guarantees.
func ReadJSONL(r io.Reader) ([]Bundle, error) {
	dec := json.NewDecoder(r)
	var out []Bundle
	idx := map[string]int{}
	for {
		var rec jsonlRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("obs: jsonl decode: %w", err)
		}
		if rec.Meta {
			idx[rec.Cell] = len(out)
			out = append(out, Bundle{
				Cell: rec.Cell, Channels: rec.Channels,
				Switches: rec.Switches, Nodes: rec.Nodes,
				Every: rec.Every, Dropped: rec.Dropped,
			})
			continue
		}
		i, ok := idx[rec.Cell]
		if !ok {
			return nil, fmt.Errorf("obs: jsonl snapshot for %q before its header", rec.Cell)
		}
		if rec.Snap == nil {
			return nil, fmt.Errorf("obs: jsonl line for %q is neither header nor snapshot", rec.Cell)
		}
		out[i].Snapshots = append(out[i].Snapshots, *rec.Snap)
	}
	return out, nil
}

// CSV layout: long ("tidy") form, one row per metric value, so the file
// loads directly into dataframe tooling without knowing the topology
// shape. kind names match the Snapshot JSON tags; channel_label rows
// carry the header metadata needed for a lossless round trip.
var csvHeader = []string{"cell", "run", "at", "kind", "index", "value"}

// WriteCSV writes bundles in long-form CSV.
func WriteCSV(w io.Writer, bundles []Bundle) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	row := func(cell string, run int, at event.Time, kind string, index int, value string) error {
		return cw.Write([]string{
			cell,
			strconv.Itoa(run),
			strconv.FormatInt(int64(at), 10),
			kind, strconv.Itoa(index), value,
		})
	}
	for i := range bundles {
		b := &bundles[i]
		if err := row(b.Cell, -1, 0, "every", 0, strconv.FormatInt(int64(b.Every), 10)); err != nil {
			return err
		}
		if err := row(b.Cell, -1, 0, "switches", 0, strconv.Itoa(b.Switches)); err != nil {
			return err
		}
		if err := row(b.Cell, -1, 0, "nodes", 0, strconv.Itoa(b.Nodes)); err != nil {
			return err
		}
		if err := row(b.Cell, -1, 0, "dropped", 0, strconv.FormatInt(b.Dropped, 10)); err != nil {
			return err
		}
		for ci, lab := range b.Channels {
			if err := row(b.Cell, -1, 0, "channel_label", ci, lab); err != nil {
				return err
			}
		}
		for j := range b.Snapshots {
			s := &b.Snapshots[j]
			put := func(kind string, index int, v int64) error {
				return row(b.Cell, s.Run, s.At, kind, index, strconv.FormatInt(v, 10))
			}
			for ci, v := range s.ChanFlits {
				if err := put("chan_flits", ci, v); err != nil {
					return err
				}
			}
			for ci, v := range s.ChanStalls {
				if v != 0 {
					if err := put("chan_stalls", ci, v); err != nil {
						return err
					}
				}
			}
			for si, v := range s.BufOcc {
				if err := put("buf_occ", si, v); err != nil {
					return err
				}
			}
			for si, v := range s.ArbConflicts {
				if v != 0 {
					if err := put("arb_conflicts", si, v); err != nil {
						return err
					}
				}
			}
			for ni, v := range s.NISend {
				if err := put("ni_send", ni, v); err != nil {
					return err
				}
			}
			for ni, v := range s.NIRecv {
				if err := put("ni_recv", ni, v); err != nil {
					return err
				}
			}
			for ni, v := range s.NIDeferred {
				if v != 0 {
					if err := put("ni_deferred", ni, v); err != nil {
						return err
					}
				}
			}
			if err := put("flit_hops", 0, s.FlitHops); err != nil {
				return err
			}
			if err := put("events", 0, int64(s.Events)); err != nil {
				return err
			}
			if err := put("queue_len", 0, s.QueueLen); err != nil {
				return err
			}
			if err := put("far_len", 0, s.FarLen); err != nil {
				return err
			}
			if err := put("far_posts", 0, int64(s.FarPosts)); err != nil {
				return err
			}
			if err := put("migrations", 0, int64(s.Migrations)); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reverses WriteCSV. Sparse kinds (chan_stalls, arb_conflicts,
// ni_deferred) omit zero rows on write and are rebuilt as zeros here, so
// a write→read→write cycle is byte-stable.
func ReadCSV(r io.Reader) ([]Bundle, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("obs: csv read: %w", err)
	}
	if len(rows) == 0 || strings.Join(rows[0], ",") != strings.Join(csvHeader, ",") {
		return nil, fmt.Errorf("obs: csv missing header %v", csvHeader)
	}
	var out []Bundle
	idx := map[string]int{}
	// snapKey tracks the current snapshot per cell; rows of one snapshot
	// are contiguous because WriteCSV emits them that way.
	cur := map[string]*Snapshot{}
	flush := func(cell string) {
		if s := cur[cell]; s != nil {
			b := &out[idx[cell]]
			b.Snapshots = append(b.Snapshots, *s)
			cur[cell] = nil
		}
	}
	for _, row := range rows[1:] {
		if len(row) != len(csvHeader) {
			return nil, fmt.Errorf("obs: csv row has %d fields, want %d", len(row), len(csvHeader))
		}
		cell := row[0]
		run, err1 := strconv.Atoi(row[1])
		at, err2 := strconv.ParseInt(row[2], 10, 64)
		index, err3 := strconv.Atoi(row[4])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("obs: csv row %v: bad numeric field", row)
		}
		kind, value := row[3], row[5]
		bi, seen := idx[cell]
		if !seen {
			idx[cell] = len(out)
			bi = len(out)
			out = append(out, Bundle{Cell: cell})
		}
		b := &out[bi]
		if run == -1 {
			if kind == "channel_label" {
				for len(b.Channels) <= index {
					b.Channels = append(b.Channels, "")
				}
				b.Channels[index] = value
				continue
			}
			n, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("obs: csv meta %q: %w", kind, err)
			}
			switch kind {
			case "every":
				b.Every = event.Time(n)
			case "switches":
				b.Switches = int(n)
			case "nodes":
				b.Nodes = int(n)
			case "dropped":
				b.Dropped = n
			default:
				return nil, fmt.Errorf("obs: csv unknown meta kind %q", kind)
			}
			continue
		}
		s := cur[cell]
		if s == nil || s.Run != run || s.At != event.Time(at) {
			flush(cell)
			s = &Snapshot{
				Run: run, At: event.Time(at),
				ChanFlits:  make([]int64, len(b.Channels)),
				ChanStalls: make([]int64, len(b.Channels)),
				BufOcc:     make([]int64, b.Switches), ArbConflicts: make([]int64, b.Switches),
				NISend: make([]int64, b.Nodes), NIRecv: make([]int64, b.Nodes),
				NIDeferred: make([]int64, b.Nodes),
			}
			cur[cell] = s
		}
		n, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: csv value %q: %w", value, err)
		}
		switch kind {
		case "chan_flits":
			s.ChanFlits[index] = n
		case "chan_stalls":
			s.ChanStalls[index] = n
		case "buf_occ":
			s.BufOcc[index] = n
		case "arb_conflicts":
			s.ArbConflicts[index] = n
		case "ni_send":
			s.NISend[index] = n
		case "ni_recv":
			s.NIRecv[index] = n
		case "ni_deferred":
			s.NIDeferred[index] = n
		case "flit_hops":
			s.FlitHops = n
		case "events":
			s.Events = uint64(n)
		case "queue_len":
			s.QueueLen = n
		case "far_len":
			s.FarLen = n
		case "far_posts":
			s.FarPosts = uint64(n)
		case "migrations":
			s.Migrations = uint64(n)
		default:
			return nil, fmt.Errorf("obs: csv unknown kind %q", kind)
		}
	}
	for cell := range cur {
		flush(cell)
	}
	// Map iteration above is unordered; restore bundle order by first
	// appearance (idx holds it).
	sort.SliceStable(out, func(i, j int) bool { return idx[out[i].Cell] < idx[out[j].Cell] })
	return out, nil
}

// heatShades maps utilization 0..1 onto display characters, lightest to
// densest. Index 0 is reserved for exact zero.
var heatShades = []byte(" .:-=+*#%@")

// WriteHeatmap renders the bundle's per-channel utilization as a text
// heatmap: one row per channel (busiest topN channels, by total flits),
// one column per time bin, each cell shaded by flits transmitted over
// the bin relative to the channel capacity of one flit per cycle. Time
// bins merge adjacent snapshots when the series is wider than maxCols.
func WriteHeatmap(w io.Writer, b Bundle, topN, maxCols int) error {
	if topN <= 0 {
		topN = 16
	}
	if maxCols <= 0 {
		maxCols = 64
	}
	if len(b.Snapshots) == 0 || len(b.Channels) == 0 {
		_, err := fmt.Fprintf(w, "obs heatmap [%s]: no samples\n", b.Cell)
		return err
	}
	totals := make([]int64, len(b.Channels))
	for _, s := range b.Snapshots {
		for ci, v := range s.ChanFlits {
			totals[ci] += v
		}
	}
	order := make([]int, len(b.Channels))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return totals[order[i]] > totals[order[j]] })
	if len(order) > topN {
		order = order[:topN]
	}
	bins := len(b.Snapshots)
	per := 1
	for bins > maxCols {
		per *= 2
		bins = (len(b.Snapshots) + per - 1) / per
	}
	labW := 0
	for _, ci := range order {
		if n := len(b.Channels[ci]); n > labW {
			labW = n
		}
	}
	if _, err := fmt.Fprintf(w,
		"obs heatmap [%s]: %d channels (top %d shown), %d samples @ %d cycles, %d cycles/column\n",
		b.Cell, len(b.Channels), len(order), len(b.Snapshots), b.Every, int64(b.Every)*int64(per)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  scale: '%s' = 0%%..100%% of link capacity; total flits %d\n",
		string(heatShades), b.TotalFlits()); err != nil {
		return err
	}
	line := make([]byte, bins)
	for _, ci := range order {
		for bin := 0; bin < bins; bin++ {
			var flits, span int64
			for k := bin * per; k < (bin+1)*per && k < len(b.Snapshots); k++ {
				flits += b.Snapshots[k].ChanFlits[ci]
				span += int64(b.Every)
			}
			u := float64(flits) / float64(span)
			switch {
			case flits == 0:
				line[bin] = heatShades[0]
			case u >= 1:
				line[bin] = heatShades[len(heatShades)-1]
			default:
				i := 1 + int(u*float64(len(heatShades)-1))
				if i >= len(heatShades) {
					i = len(heatShades) - 1
				}
				line[bin] = heatShades[i]
			}
		}
		if _, err := fmt.Fprintf(w, "  %-*s |%s| %d\n", labW, b.Channels[ci], line, totals[ci]); err != nil {
			return err
		}
	}
	return nil
}
