package sim

import (
	"mcastsim/internal/event"
	"mcastsim/internal/topology"
)

// Typed event kinds for the simulator's hot paths. Each kind replaces a
// closure that the old engine allocated per event; the actor is the
// pointer-shaped owning object and arg carries any small integer payload,
// so posting these is allocation-free (see internal/event).
//
// Adding a kind: pick the next constant, register its handler in
// registerKinds, and Post/PostAfter it with the owning object as actor.
// Kinds must stay below event.MaxKinds; cold one-shot callbacks ride
// the evSched kind (Network.Schedule, retry backoff).
const (
	// evPump advances one branch's flit stream (actor *branch).
	evPump event.Kind = iota + 1
	// evDeliver lands one flit at the branch's destination buffer or NI
	// after the link delay (actor *branch).
	evDeliver
	// evCredit returns one buffer credit upstream (actor *inputBuf).
	evCredit
	// evRoute decodes a head occupant's header after the routing delay
	// (actor *occupant).
	evRoute
	// evTail releases the output port (or injection line) one cycle
	// after a branch's tail flit, then unwinds the NI injection stream
	// when the branch carries one (actor *branch).
	evTail
	// evMsgStart begins a message's source sends at its initiation time
	// (actor *Message).
	evMsgStart
	// evMsgTimeout aborts a reliable attempt that missed its deadline
	// (actor *Message).
	evMsgTimeout
	// evReconfig runs a routing recomputation if its detection epoch is
	// still current (actor nil, arg epoch).
	evReconfig
	// evFaultApply applies one scheduled fault event (actor *FaultEvent).
	evFaultApply
	// evSendSoft finishes the host send software overhead and starts the
	// per-packet DMA chain (actor *sendOp).
	evSendSoft
	// evSendDMA lands one outgoing packet in NI memory (actor *sendOp,
	// arg packet index).
	evSendDMA
	// evNICharged finishes the per-packet NI send processing for a burst
	// (actor *burst).
	evNICharged
	// evNIRecvProc finishes per-packet NI receive processing
	// (actor *worm, arg receiving node).
	evNIRecvProc
	// evNIRecvDMA lands one received packet in host memory
	// (actor *Message, arg receiving node).
	evNIRecvDMA
	// evDestDone completes a destination after the host receive overhead
	// (actor *Message, arg destination node).
	evDestDone
	// evReclaim recycles a done branch after its quarantine horizon,
	// once no pending pump/deliver/tail event can still name it
	// (actor *branch).
	evReclaim
	// evObsFlush samples the attached obs recorder and re-arms itself
	// while traffic is in flight (actor nil). Never posted when obs is
	// disabled, so the kind costs nothing on ordinary runs.
	evObsFlush
	// evMembership applies one scheduled group membership change
	// (actor *MembershipEvent). Never posted without registered groups.
	evMembership
	// evSched runs a one-shot control-plane closure (actor func()). This
	// is the typed home of Network.Schedule and the retry backoff — the
	// last closure-shaped state in the engine. A pending evSched cannot
	// be serialized (the func captures arbitrary driver state), so
	// Checkpoint refuses while one is scheduled; everything else in the
	// queue is a fixed-shape record.
	evSched
)

// kindRegistrar is the jump-table surface shared by the single calendar
// queue, the serial-equivalence ShardSet, and each fast-mode shard
// queue.
type kindRegistrar interface {
	Register(event.Kind, event.Handler)
}

// registerKinds installs the network's jump table. Handlers close over n
// once per network; individual posts carry only the actor and arg. In
// sharded runs every event is posted to (and so dispatched by) the
// shard that owns the actor's mutated state — see shard.go for the
// ownership map.
func (n *Network) registerKinds(q kindRegistrar) {
	q.Register(evPump, func(a any, _ int64) { a.(*branch).pump() })
	q.Register(evDeliver, func(a any, _ int64) { a.(*branch).deliver() })
	q.Register(evCredit, func(a any, _ int64) { a.(*inputBuf).creditReturn() })
	q.Register(evRoute, func(a any, _ int64) { a.(*occupant).route() })
	q.Register(evTail, func(a any, _ int64) { a.(*branch).tailRelease() })
	q.Register(evMsgStart, func(a any, _ int64) { n.msgStart(a.(*Message)) })
	q.Register(evMsgTimeout, func(a any, _ int64) {
		if m := a.(*Message); !m.Done() {
			n.AbortMessage(m)
		}
	})
	q.Register(evReconfig, func(_ any, arg int64) {
		if int(arg) == n.reconfigEpoch {
			n.reconfigure()
		}
	})
	q.Register(evFaultApply, func(a any, _ int64) { n.applyFault(*a.(*FaultEvent)) })
	q.Register(evSendSoft, func(a any, _ int64) { a.(*sendOp).softwareDone() })
	q.Register(evSendDMA, func(a any, arg int64) { a.(*sendOp).dmaDone(int(arg)) })
	q.Register(evNICharged, func(a any, _ int64) { a.(*burst).charged() })
	q.Register(evNIRecvProc, func(a any, arg int64) {
		n.nis[arg].recvProcessed(a.(*worm))
	})
	q.Register(evNIRecvDMA, func(a any, arg int64) {
		n.nis[arg].hostPacketArrived(a.(*Message))
	})
	q.Register(evDestDone, func(a any, arg int64) {
		n.destDone(a.(*Message), topology.NodeID(arg))
	})
	q.Register(evReclaim, func(a any, _ int64) { br := a.(*branch); br.sh.reclaimBranch(br) })
	q.Register(evObsFlush, func(_ any, _ int64) { n.obsTick() })
	q.Register(evMembership, func(a any, _ int64) { n.applyMembership(a.(*MembershipEvent)) })
	q.Register(evSched, func(a any, _ int64) { a.(func())() })
}
