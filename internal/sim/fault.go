package sim

import (
	"fmt"

	"mcastsim/internal/event"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// This file implements the dynamic fault layer: scheduled link/switch
// failures and repairs, worm teardown at failed channels, destination
// failure accounting (the input to NI-level retransmission), and the
// reconfiguration epoch that recomputes up*/down* state after a
// detection delay.
//
// Teardown is lazy where it can be: only worms physically severed at a
// dying channel are torn down eagerly. Stale worms elsewhere die when
// they hit a dead port (fileRequest), a dead channel (pump), or a
// routing dead end (routeFailure); their in-flight flits are drained and
// dropped, with credits handed back on surviving channels so no buffer
// slot leaks.

// InvariantError reports a routing invariant violated on a fault-free
// network — a condition the fault layer treats as retryable but which,
// with no fault injected, can only be a scheme or routing bug. The
// network records the first violation and Drain surfaces it.
type InvariantError struct {
	At     event.Time
	Switch topology.SwitchID
	Reason string
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("sim: routing invariant violated at switch %d, t=%d: %s", e.Switch, e.At, e.Reason)
}

// ensureFaultState lazily allocates the fault masks.
func (n *Network) ensureFaultState() {
	if n.deadLink == nil {
		n.deadLink = make([]bool, len(n.topo.Links))
		n.deadSwitch = make([]bool, n.topo.NumSwitches)
	}
}

// markProgress bumps the watchdog's progress counter for control-plane
// steps that legitimately move the simulation forward without moving a
// flit (reconfiguration, aborts, retry scheduling).
func (n *Network) markProgress() { n.progress++ }

// NodeAlive reports whether node d's NI is still attached to a live
// switch (the retransmission layer gives up on dead nodes).
func (n *Network) NodeAlive(d topology.NodeID) bool { return !n.nis[d].dead }

// Partitioned reports whether a reconfiguration attempt found the alive
// switch graph disconnected (stale tables stay in place; destinations
// across the cut fail permanently).
func (n *Network) Partitioned() bool { return n.partitioned }

// Invariant returns the first routing-invariant violation observed on a
// fault-free run, or nil.
func (n *Network) Invariant() *InvariantError { return n.invariant }

// routeFailure handles a header that cannot be routed legally. Under an
// injected fault this is an expected transient — the worm is torn down
// and its destinations failed for the retransmission layer. On a
// fault-free network it is a scheme/routing bug: the violation is
// recorded for Drain to surface, and the worm is still torn down so the
// simulation terminates instead of wedging.
func (n *Network) routeFailure(o *occupant, s topology.SwitchID, reason string) {
	if !n.faultedEver() {
		n.invMu.Lock()
		if n.invariant == nil {
			n.invariant = &InvariantError{At: o.buf.sh.now(), Switch: s, Reason: reason}
		}
		n.invMu.Unlock()
	}
	if n.fset != nil {
		// Parallel engine: the full teardown walks cross-shard structures
		// (downstream buffers, NIs, the message), which would race other
		// workers. Mark the worm dead — its flits drain at arrival — and
		// let Drain's between-window invariant check abort the run.
		o.w.dead = true
		return
	}
	n.killOccupant(o)
}

// faultedEver reports whether any fault has ever been injected.
func (n *Network) faultedEver() bool { return n.faulted }

// killBranch tears down one branch: its child worm dies (in-flight flits
// drain), its pending arbitration entry is lazily cancelled, any held
// port is released, and it stops gating upstream eviction.
func (br *branch) kill() { br.net.killBranch(br) }

func (n *Network) killBranch(br *branch) {
	if br.done {
		return
	}
	br.done = true
	br.w.dead = true
	// An elastic branch never gates eviction; flipping the flag lets the
	// occupant's remaining flits drain past this branch.
	br.elastic = true
	if br.req != nil {
		br.req.granted = true // lazily dequeued by grant scans
	}
	n.stats.WormsKilled++
	n.trace(TraceEvent{Kind: TraceKill, Worm: br.w.id, Msg: br.w.msg.ID, Pkt: br.w.pkt})
	if br.port != nil {
		if br.port.holder == br {
			br.port.release(br)
		}
	} else if br.ch != nil && br.ch.sender == br {
		br.ch.sender = nil
	}
	// A killed injection-line branch never reaches its tail, so no evTail
	// will unwind the NI's streaming state: do it here, or every burst
	// queued behind it waits forever. A dead (orphaned) NI resets its own
	// injection side instead.
	if br.injNI != nil && !br.injNI.dead {
		br.injNI.streamDone(br.injLast)
	}
	br.sh.postAfter(n.reclaimAfter, evReclaim, br, 0)
	if br.occ != nil {
		// Advance eviction before detaching: detaching can recycle the
		// occupant this branch was reading.
		br.occ.advanceEviction()
		n.detachBranch(br)
	}
}

// killDownstream chases a branch's already-sent flits: a downstream
// occupant of the same (now dead) worm is torn down recursively; a
// partial packet at an NI is discarded. Flits still on the wire drain at
// arrival via the dead-worm checks.
func (n *Network) killDownstream(br *branch) {
	if br.sent == 0 || br.ch == nil {
		return
	}
	if br.ch.toSwitch {
		for _, o := range br.ch.dstBuf.occupants {
			if o.w == br.w {
				n.killOccupant(o)
				return
			}
		}
		return
	}
	x := n.nis[br.ch.dstNode]
	if _, ok := x.rxFlits[br.w]; ok {
		delete(x.rxFlits, br.w)
		n.wormDecref(br.w) // the NI assembly leg
	}
}

// killOccupant tears down a worm resident in an input buffer: every live
// branch dies (recursively downstream), every destination the worm still
// carries is failed, and the buffer space it held is freed with credits
// returned on a surviving upstream channel.
func (n *Network) killOccupant(o *occupant) {
	if o.killed {
		return
	}
	o.killed = true
	o.w.dead = true
	n.stats.WormsKilled++
	n.trace(TraceEvent{Kind: TraceKill, Worm: o.w.id, Msg: o.w.msg.ID, Pkt: o.w.pkt, Switch: o.buf.sw, Port: o.buf.port})
	// Backward: killBranch splices killed branches out of o.branches.
	for i := len(o.branches) - 1; i >= 0; i-- {
		br := o.branches[i]
		if br.done {
			continue
		}
		n.killBranch(br)
		n.killDownstream(br)
	}
	// Fail everything the worm still carried. Branch-delivered subsets
	// overlap this set; failDest is idempotent so the overlap is harmless.
	n.failWormDests(o.w)
	n.removeFromBuffer(o)
}

// removeFromBuffer splices a killed occupant out of its input buffer,
// frees its slots (credits return on a live upstream), and starts the
// next resident worm routing if the head just vanished.
func (n *Network) removeFromBuffer(o *occupant) {
	b := o.buf
	held := o.arrived - o.evicted
	b.used -= held
	if b.upstream != nil && !b.upstream.dead {
		for i := 0; i < held; i++ {
			b.sh.postTo(b.upstream.sh, b.sh.now()+n.params.LinkDelay, evCredit, b, 0)
		}
	}
	wasHead := len(b.occupants) > 0 && b.occupants[0] == o
	for i, cand := range b.occupants {
		if cand == o {
			b.occupants = append(b.occupants[:i], b.occupants[i+1:]...)
			break
		}
	}
	o.detached = true
	n.tryRecycleOccupant(o)
	if wasHead && len(b.occupants) > 0 {
		next := b.occupants[0]
		if next.arrived > 0 && !next.routed && !next.routing {
			next.routing = true
			b.sh.postAfter(n.params.RoutingDelay, evRoute, next, 0)
		}
	}
}

// deadEndBranch tears down a branch that can no longer reach its
// consumers (dead channel, no live candidate port) and fails exactly the
// destinations that branch would have delivered.
func (n *Network) deadEndBranch(br *branch) {
	if br.done {
		return
	}
	n.killBranch(br)
	n.failBranchDests(br)
	n.killDownstream(br)
}

// failBranchDests fails the destinations one branch delivers: the
// explicit drop list for path-worm drop branches, else everything its
// child worm carries.
func (n *Network) failBranchDests(br *branch) {
	if br.drops != nil {
		for _, d := range br.drops {
			n.failDest(br.w.msg, d)
		}
		return
	}
	n.failWormDests(br.w)
}

// failWormDests fails every destination a worm carries.
func (n *Network) failWormDests(w *worm) {
	m := w.msg
	switch w.kind {
	case WormUnicast:
		n.failDest(m, w.dest)
	case WormTree:
		for _, d := range w.destSet.indices() {
			n.failDest(m, topology.NodeID(d))
		}
	case WormPath:
		for _, seg := range w.path {
			for _, d := range seg.Drops {
				n.failDest(m, d)
			}
		}
	}
}

// failDest declares destination d of message m undeliverable. The
// destination still counts against remaining (the message completes with
// DeliveredAll() false), and d's delivery subtree — NI-tree children and
// secondary-source sends — fails with it, since d will never forward.
func (n *Network) failDest(m *Message, d topology.NodeID) {
	if _, done := m.DoneAt[d]; done {
		return // already delivered; nothing depended on the lost copy
	}
	if m.Failed(d) {
		return
	}
	if m.FailedAt == nil {
		m.FailedAt = make(map[topology.NodeID]event.Time)
	}
	m.FailedAt[d] = n.nowAt()
	n.stats.DestsFailed++
	x := n.nis[d]
	delete(x.rxMsgs, m)
	delete(x.rxHeld, m)
	for _, c := range m.Plan.DeliveryChildren(d) {
		n.failDest(m, c)
	}
	m.remaining--
	if m.remaining == 0 {
		n.outstanding.Add(-1)
		n.stats.MessagesDone++
		if m.group != nil {
			n.groupMsgDone(m)
		}
		if m.onComplete != nil {
			m.onComplete(m)
		}
	}
	n.markProgress()
}

// severChannel marks a channel (and its owning output port, when it has
// one) dead and tears down everything physically cut at the break: the
// active sender, queued arbitration entries with no surviving candidate,
// truncated worms in the destination buffer, and partial packets at a
// destination NI.
func (n *Network) severChannel(ch *channel, op *outPort) {
	if ch == nil || ch.dead {
		return
	}
	ch.dead = true
	if s := ch.sender; s != nil && !s.done {
		n.deadEndBranch(s)
	}
	if op != nil {
		op.dead = true
		queue := op.queue
		op.queue = nil
		for _, req := range queue {
			if req.granted {
				continue
			}
			alive := false
			for _, p := range req.ports {
				if p != op && !p.dead {
					alive = true
					break
				}
			}
			if !alive {
				n.deadEndBranch(req.br)
			}
		}
	}
	if ch.toSwitch {
		// Worms whose tail had not fully crossed are truncated: the
		// downstream stub can never complete.
		occs := append([]*occupant(nil), ch.dstBuf.occupants...)
		for _, o := range occs {
			if o.arrived < o.w.len {
				n.killOccupant(o)
			}
		}
		return
	}
	// Ejection channel: partial packets at the NI are discarded and the
	// node fails for those messages.
	x := n.nis[ch.dstNode]
	var partial []*worm
	for w := range x.rxFlits {
		partial = append(partial, w)
	}
	sortWormsByID(partial)
	for _, w := range partial {
		delete(x.rxFlits, w)
		w.dead = true
		n.failDest(w.msg, ch.dstNode)
		n.wormDecref(w) // the NI assembly leg; last, failDest reads w.msg
	}
}

func sortWormsByID(ws []*worm) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].id < ws[j-1].id; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

// --- the fault schedule ---

// FaultKind selects what a FaultEvent does.
type FaultKind uint8

const (
	// FaultLink fails one inter-switch link (both directions).
	FaultLink FaultKind = iota
	// FaultSwitch fails a switch: all its ports die and the NIs attached
	// to it are orphaned.
	FaultSwitch
	// RepairLink restores a previously failed link (both endpoint
	// switches must be alive; the repair is ignored otherwise).
	RepairLink
)

func (k FaultKind) String() string {
	switch k {
	case FaultLink:
		return "fail-link"
	case FaultSwitch:
		return "fail-switch"
	case RepairLink:
		return "repair-link"
	default:
		return fmt.Sprintf("FaultKind(%d)", k)
	}
}

// FaultEvent is one scheduled fault: at cycle At, Kind happens to Link
// (an index into Topology.Links) or Switch.
type FaultEvent struct {
	At     event.Time
	Kind   FaultKind
	Link   int
	Switch topology.SwitchID
}

// FaultSchedule is a deterministic list of fault events. Build it before
// the run (seeded however the caller likes) and install it once.
type FaultSchedule struct {
	Events []FaultEvent
}

// InstallFaults schedules every event of fs on the simulation clock.
// Call before advancing past the earliest event time.
func (n *Network) InstallFaults(fs *FaultSchedule) error {
	if err := n.fastModeCheck("fault injection (InstallFaults)"); err != nil {
		return err
	}
	n.ensureFaultState()
	now := n.nowAt()
	// The schedule is copied so callers may reuse fs; each typed
	// evFaultApply event carries a pointer into the copy.
	events := append([]FaultEvent(nil), fs.Events...)
	for i := range events {
		ev := events[i]
		if ev.At < now {
			return fmt.Errorf("sim: fault event %d scheduled in the past (t=%d, now %d)", i, ev.At, now)
		}
		switch ev.Kind {
		case FaultLink, RepairLink:
			if ev.Link < 0 || ev.Link >= len(n.topo.Links) {
				return fmt.Errorf("sim: fault event %d: link %d out of range", i, ev.Link)
			}
		case FaultSwitch:
			if int(ev.Switch) < 0 || int(ev.Switch) >= n.topo.NumSwitches {
				return fmt.Errorf("sim: fault event %d: switch %d out of range", i, ev.Switch)
			}
		default:
			return fmt.Errorf("sim: fault event %d: unknown kind %d", i, ev.Kind)
		}
		n.ctlPost(ev.At, evFaultApply, &events[i], 0)
	}
	return nil
}

func (n *Network) applyFault(ev FaultEvent) {
	n.ensureFaultState()
	// Conservative route-cache invalidation: dead ports are filtered after
	// every cached decision, so stale-but-consistent entries would still
	// match the uncached code, but flushing keeps the epoch invariant
	// trivial to audit.
	n.routingEpoch++
	switch ev.Kind {
	case FaultLink:
		n.failLink(ev.Link)
	case FaultSwitch:
		n.failSwitch(ev.Switch)
	case RepairLink:
		n.repairLink(ev.Link)
	}
	n.markProgress()
}

// FailLink fails link li (an index into Topology.Links) at the current
// simulation time. Exposed for tests and custom traffic drivers;
// schedule-driven runs use InstallFaults.
func (n *Network) FailLink(li int) {
	n.applyFault(FaultEvent{Kind: FaultLink, Link: li})
}

// FailSwitch fails switch s at the current simulation time.
func (n *Network) FailSwitch(s topology.SwitchID) {
	n.applyFault(FaultEvent{Kind: FaultSwitch, Switch: s})
}

// RepairLink restores a failed link at the current simulation time.
func (n *Network) RepairLink(li int) {
	n.applyFault(FaultEvent{Kind: RepairLink, Link: li})
}

func (n *Network) failLink(li int) {
	if n.deadLink[li] {
		return
	}
	n.deadLink[li] = true
	n.faulted = true
	lk := n.topo.Links[li]
	n.trace(TraceEvent{Kind: TraceFault, Switch: lk.A, Port: lk.APort})
	opA := n.switches[lk.A].outPorts[lk.APort]
	opB := n.switches[lk.B].outPorts[lk.BPort]
	n.severChannel(opA.ch, opA)
	n.severChannel(opB.ch, opB)
	n.scheduleReconfig()
}

func (n *Network) failSwitch(s topology.SwitchID) {
	if n.deadSwitch[s] {
		return
	}
	n.deadSwitch[s] = true
	n.faulted = true
	n.trace(TraceEvent{Kind: TraceFault, Switch: s})
	t := n.topo
	// Incoming channels first: upstream senders stop, truncated worms at s
	// die. Then outgoing channels: senders at s (and their downstream
	// stubs) die. Finally everything still buffered at s is lost.
	for p := 0; p < t.PortsPerSwitch; p++ {
		e := t.Conn[s][p]
		switch e.Kind {
		case topology.ToSwitch:
			peerOp := n.switches[e.Switch].outPorts[e.Port]
			n.severChannel(peerOp.ch, peerOp)
		case topology.ToNode:
			n.severChannel(n.nis[e.Node].inj, nil)
		}
	}
	for p := 0; p < t.PortsPerSwitch; p++ {
		if op := n.switches[s].outPorts[p]; op != nil {
			n.severChannel(op.ch, op)
		}
	}
	for p := 0; p < t.PortsPerSwitch; p++ {
		b := n.switches[s].inBufs[p]
		if b == nil {
			continue
		}
		occs := append([]*occupant(nil), b.occupants...)
		for _, o := range occs {
			n.killOccupant(o)
		}
	}
	for _, node := range t.NodesAt(s) {
		n.nis[node].orphan()
	}
	n.scheduleReconfig()
}

func (n *Network) repairLink(li int) {
	if !n.deadLink[li] {
		return
	}
	lk := n.topo.Links[li]
	if n.deadSwitch[lk.A] || n.deadSwitch[lk.B] {
		return // a dead endpoint keeps the link down
	}
	n.deadLink[li] = false
	n.trace(TraceEvent{Kind: TraceFault, Switch: lk.A, Port: lk.APort})
	n.reviveChannel(n.switches[lk.A].outPorts[lk.APort])
	n.reviveChannel(n.switches[lk.B].outPorts[lk.BPort])
	n.scheduleReconfig()
}

// reviveChannel resets a repaired channel to a clean idle state. Credits
// are re-derived from the destination buffer's true free space (surviving
// occupants may still be draining).
func (n *Network) reviveChannel(op *outPort) {
	ch := op.ch
	ch.dead = false
	op.dead = false
	ch.sender = nil
	if now := n.nowAt(); ch.lineFree < now {
		ch.lineFree = now
	}
	if ch.toSwitch {
		ch.credits = ch.dstBuf.cap - ch.dstBuf.used
	}
}

// --- reconfiguration ---

// scheduleReconfig arranges a routing recomputation FaultDetectCycles
// after the most recent fault event. Bursts of faults coalesce: each new
// event restarts the detection window and only the last scheduled
// rebuild runs.
func (n *Network) scheduleReconfig() {
	if n.params.FaultDetectCycles < 0 {
		return
	}
	n.reconfigEpoch++
	n.ctlPostAfter(n.params.FaultDetectCycles, evReconfig, nil, int64(n.reconfigEpoch))
}

// reconfigure recomputes up*/down* state over the surviving subgraph
// under the same tree policy the network started with, and atomically
// swaps the switch tables. If the alive switch graph is partitioned the
// stale tables stay in place (worms toward the lost part die at dead
// ports) and Partitioned() reports true.
func (n *Network) reconfigure() {
	n.ensureFaultState()
	opt := n.rt.Opts
	opt.DeadLinks = nil
	opt.DeadSwitches = nil
	for li, dead := range n.deadLink {
		if dead {
			opt.DeadLinks = append(opt.DeadLinks, li)
		}
	}
	for s, dead := range n.deadSwitch {
		if dead {
			opt.DeadSwitches = append(opt.DeadSwitches, topology.SwitchID(s))
		}
	}
	// Keep the old root while it survives (Autonet's behavior absent a
	// root failure); fall back to the default election otherwise.
	if !opt.CenterRoot {
		if int(n.rt.Root) < len(n.deadSwitch) && !n.deadSwitch[n.rt.Root] {
			opt.Root = n.rt.Root
		} else {
			opt.Root = -1
		}
	}
	rt2, err := updown.NewWithOptions(n.topo, opt)
	if err != nil {
		// Partitioned (or otherwise unroutable) surviving graph: keep the
		// stale tables. Destinations across the cut fail permanently as
		// their worms hit dead ports.
		n.partitioned = true
		n.markProgress()
		return
	}
	n.swapRouting(rt2)
	swapped := opt
	n.lastSwapOpts = &swapped
	n.partitioned = false // a repair can reconnect a previously split graph
	n.stats.Reconfigs++
	n.markProgress()
}

// swapRouting atomically replaces the routing tables and the derived
// up-link adjacency used by tree-worm climbs.
func (n *Network) swapRouting(rt *updown.Routing) {
	n.rt = rt
	n.routingEpoch++ // every cached route was computed under the old tables
	t := n.topo
	n.upAdj = make([][]portPeer, t.NumSwitches)
	n.revUp = make([][]portPeer, t.NumSwitches)
	for s := 0; s < t.NumSwitches; s++ {
		for p := 0; p < t.PortsPerSwitch; p++ {
			if rt.Dirs[s][p] != updown.DirUp {
				continue
			}
			q := int(t.Conn[s][p].Switch)
			n.upAdj[s] = append(n.upAdj[s], portPeer{sw: q, port: p})
			n.revUp[q] = append(n.revUp[q], portPeer{sw: s, port: p})
		}
	}
	n.rebuildDownPorts()
}

// AbortMessage tears down every remaining trace of m across the network
// — queued bursts, streaming injections, resident worms, partial packets
// — and fails every still-undelivered destination, completing the
// message. The retransmission layer calls this on timeout before
// re-planning the remainder.
func (n *Network) AbortMessage(m *Message) {
	if m.Done() {
		return
	}
	for _, x := range n.nis {
		x.abortMessage(m)
	}
	for _, st := range n.switches {
		for _, b := range st.inBufs {
			if b == nil {
				continue
			}
			occs := append([]*occupant(nil), b.occupants...)
			for _, o := range occs {
				if o.w.msg == m {
					n.killOccupant(o)
				}
			}
		}
	}
	for _, d := range m.Plan.Dests {
		n.failDest(m, d)
	}
	n.markProgress()
}
