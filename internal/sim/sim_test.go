package sim

import (
	"testing"

	"mcastsim/internal/event"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// twoSwitch builds the smallest interesting network: two linked switches,
// two nodes each. Node 0,1 on switch 0 (ports 2,3); node 2,3 on switch 1.
func twoSwitch(t *testing.T) *Network {
	t.Helper()
	topo, err := topology.Build(2, 4,
		[][4]int{{0, 0, 1, 0}},
		[][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := updown.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(rt, DefaultParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// fixtureNet builds the 8-switch irregular fixture with one node per switch.
func fixtureNet(t *testing.T, p Params) *Network {
	t.Helper()
	links := [][4]int{
		{0, 0, 1, 0}, {0, 1, 2, 0}, {1, 1, 3, 0}, {2, 1, 3, 1}, {2, 2, 4, 0},
		{3, 2, 5, 0}, {4, 1, 5, 1}, {4, 2, 6, 0}, {5, 2, 7, 0}, {6, 1, 7, 1},
	}
	nodes := make([][2]int, 8)
	for i := range nodes {
		nodes[i] = [2]int{i, 7}
	}
	topo, err := topology.Build(8, 8, links, nodes)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := updown.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(rt, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func mustRun(t *testing.T, n *Network, plan *Plan, flits int) *Message {
	t.Helper()
	m, err := n.RunSingle(plan, flits)
	if err != nil {
		t.Fatalf("RunSingle: %v", err)
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	return m
}

func unicastPlan(src, dst topology.NodeID) *Plan {
	return &Plan{
		Source: src,
		Dests:  []topology.NodeID{dst},
		HostSends: map[topology.NodeID][]WormSpec{
			src: {{Kind: WormUnicast, Dest: dst}},
		},
	}
}

// analyticUnicast computes the contention-free unicast latency: host send
// overhead, DMA down, NI send processing, header latency across the path
// (injection link + (routing+crossbar+link) per switch), pipeline of the
// remaining worm flits, then NI receive processing, DMA up, host receive
// overhead. Single-packet messages only.
func analyticUnicast(p Params, switches, payload int) event.Time {
	dma := p.BusCycles(payload)
	head := p.LinkDelay + event.Time(switches)*(p.RoutingDelay+p.CrossbarDelay+p.LinkDelay)
	wormLen := event.Time(UnicastHeaderFlits + payload)
	return p.OHostSend + dma + p.ONISend + head + wormLen - 1 + p.ONIRecv + dma + p.OHostRecv
}

func TestUnicastCrossSwitchAnalytic(t *testing.T) {
	n := twoSwitch(t)
	m := mustRun(t, n, unicastPlan(0, 2), 128)
	want := analyticUnicast(n.Params(), 2, 128)
	if got := m.Latency(); got != want {
		t.Fatalf("latency = %d, want %d", got, want)
	}
}

func TestUnicastSameSwitchAnalytic(t *testing.T) {
	n := twoSwitch(t)
	m := mustRun(t, n, unicastPlan(0, 1), 128)
	want := analyticUnicast(n.Params(), 1, 128)
	if got := m.Latency(); got != want {
		t.Fatalf("latency = %d, want %d", got, want)
	}
}

func TestUnicastLongPathAnalytic(t *testing.T) {
	n := fixtureNet(t, DefaultParams())
	// Node 0 (switch 0) to node 7 (switch 7): graph distance 4, so 5
	// switches on the path; up*/down* may lengthen it, so compute from the
	// routing tables.
	rt := n.Routing()
	hops := rt.DistUp(0, 7)
	m := mustRun(t, n, unicastPlan(0, 7), 128)
	want := analyticUnicast(n.Params(), hops+1, 128)
	if got := m.Latency(); got != want {
		t.Fatalf("latency = %d, want %d (hops=%d)", got, want, hops)
	}
}

func TestUnicastShortMessage(t *testing.T) {
	n := twoSwitch(t)
	m := mustRun(t, n, unicastPlan(0, 2), 16)
	want := analyticUnicast(n.Params(), 2, 16)
	if got := m.Latency(); got != want {
		t.Fatalf("latency = %d, want %d", got, want)
	}
}

func TestMultiPacketUnicast(t *testing.T) {
	n := twoSwitch(t)
	m := mustRun(t, n, unicastPlan(0, 2), 128*3)
	if m.Packets != 3 {
		t.Fatalf("packets = %d", m.Packets)
	}
	// Packets pipeline: total must be far less than 3x the single-packet
	// latency but more than single-packet latency + 2 packets of streaming.
	single := analyticUnicast(n.Params(), 2, 128)
	got := m.Latency()
	if got <= single {
		t.Fatalf("3-packet latency %d not greater than 1-packet %d", got, single)
	}
	if got >= 3*single {
		t.Fatalf("3-packet latency %d shows no pipelining (3x single = %d)", got, 3*single)
	}
}

func TestTreeWormDeliversAll(t *testing.T) {
	n := twoSwitch(t)
	plan := &Plan{
		Source: 0,
		Dests:  []topology.NodeID{1, 2, 3},
		HostSends: map[topology.NodeID][]WormSpec{
			0: {{Kind: WormTree, DestSet: []topology.NodeID{1, 2, 3}}},
		},
	}
	m := mustRun(t, n, plan, 128)
	if len(m.DoneAt) != 3 {
		t.Fatalf("delivered to %d destinations, want 3", len(m.DoneAt))
	}
	// One worm from the source; replication makes children but only one
	// packet stream was injected.
	if n.Stats().PacketsInjected != 1 {
		t.Fatalf("injected %d packets, want 1", n.Stats().PacketsInjected)
	}
}

func TestTreeWormSinglePhaseBeatsRelay(t *testing.T) {
	// A tree worm to 3 destinations must complete much faster than three
	// sequential unicast phases would.
	n := twoSwitch(t)
	plan := &Plan{
		Source: 0,
		Dests:  []topology.NodeID{1, 2, 3},
		HostSends: map[topology.NodeID][]WormSpec{
			0: {{Kind: WormTree, DestSet: []topology.NodeID{1, 2, 3}}},
		},
	}
	m := mustRun(t, n, plan, 128)
	oneUnicast := analyticUnicast(n.Params(), 2, 128)
	if m.Latency() >= 2*oneUnicast {
		t.Fatalf("tree multicast %d not faster than 2 unicast phases %d", m.Latency(), 2*oneUnicast)
	}
}

func TestPathWormMultiDrop(t *testing.T) {
	n := twoSwitch(t)
	// One worm: drop at node 1 on switch 0, continue out port 0 to switch
	// 1, drop at nodes 2 and 3.
	plan := &Plan{
		Source: 0,
		Dests:  []topology.NodeID{1, 2, 3},
		HostSends: map[topology.NodeID][]WormSpec{
			0: {{Kind: WormPath, Path: []PathSeg{
				{Switch: 0, Drops: []topology.NodeID{1}, NextPort: 0},
				{Switch: 1, Drops: []topology.NodeID{2, 3}, NextPort: -1},
			}}},
		},
	}
	m := mustRun(t, n, plan, 128)
	if len(m.DoneAt) != 3 {
		t.Fatalf("delivered to %d destinations, want 3", len(m.DoneAt))
	}
	if n.Stats().PacketsInjected != 1 {
		t.Fatalf("injected %d packets, want 1", n.Stats().PacketsInjected)
	}
	// Node 1 hears the worm before nodes 2,3 (it is an earlier drop).
	if m.DoneAt[1] > m.DoneAt[2] || m.DoneAt[1] > m.DoneAt[3] {
		t.Fatalf("drop order violated: %v", m.DoneAt)
	}
}

func TestPathWormHeaderStripping(t *testing.T) {
	// The flits delivered to the last drop exclude the stripped segment
	// fields: total flits delivered = sum over deliveries of remaining
	// stream lengths.
	n := twoSwitch(t)
	plan := &Plan{
		Source: 0,
		Dests:  []topology.NodeID{1, 2, 3},
		HostSends: map[topology.NodeID][]WormSpec{
			0: {{Kind: WormPath, Path: []PathSeg{
				{Switch: 0, Drops: []topology.NodeID{1}, NextPort: 0},
				{Switch: 1, Drops: []topology.NodeID{2, 3}, NextPort: -1},
			}}},
		},
	}
	mustRun(t, n, plan, 128)
	seg := PathSegFlits(n.Topology().PortsPerSwitch)
	full := PathHeaderFlits(2, n.Topology().PortsPerSwitch) + 128
	// Node 1 receives full-seg (stripped once); nodes 2,3 receive
	// full-2*seg each.
	want := int64((full - seg) + 2*(full-2*seg))
	if got := n.Stats().FlitsDelivered; got != want {
		t.Fatalf("delivered %d flits, want %d", got, want)
	}
}

func TestNITreeChainForwards(t *testing.T) {
	n := twoSwitch(t)
	plan := &Plan{
		Source: 0,
		Dests:  []topology.NodeID{1, 2, 3},
		NITree: map[topology.NodeID][]topology.NodeID{
			0: {2},
			2: {1, 3},
		},
	}
	m := mustRun(t, n, plan, 128)
	if len(m.DoneAt) != 3 {
		t.Fatalf("delivered to %d destinations", len(m.DoneAt))
	}
	// NI forwarding at node 2 starts as soon as the packet hits its NI —
	// before node 2's host has the message — so node 1 must complete well
	// ahead of a host-driven relay over the same chain.
	n2 := twoSwitch(t)
	relay := &Plan{
		Source: 0,
		Dests:  []topology.NodeID{1, 2, 3},
		HostSends: map[topology.NodeID][]WormSpec{
			0: {{Kind: WormUnicast, Dest: 2}},
			2: {{Kind: WormUnicast, Dest: 1}, {Kind: WormUnicast, Dest: 3}},
		},
	}
	mr := mustRun(t, n2, relay, 128)
	p := n.Params()
	// The NI forward skips node 2's host receive completion (o_r + DMA)
	// and the host send overhead (o_s) on the forwarding path.
	if m.DoneAt[1]+p.OHostSend > mr.DoneAt[1] {
		t.Fatalf("NI forwarding (%d) not clearly faster than host relay (%d)", m.DoneAt[1], mr.DoneAt[1])
	}
	if m.DoneAt[3]+p.OHostSend > mr.DoneAt[3] {
		t.Fatalf("NI forwarding (%d) not clearly faster than host relay (%d)", m.DoneAt[3], mr.DoneAt[3])
	}
}

func TestNITreeFPFSPipelinesPackets(t *testing.T) {
	// With multi-packet messages, FPFS forwarding overlaps packets across
	// tree levels: the chain 0->2->1 must beat a store-and-forward relay
	// (receive whole message at host, then send), which costs at least
	// 2 full message times.
	n := twoSwitch(t)
	const flits = 128 * 4
	plan := &Plan{
		Source: 0,
		Dests:  []topology.NodeID{2, 1},
		NITree: map[topology.NodeID][]topology.NodeID{
			0: {2},
			2: {1},
		},
	}
	m := mustRun(t, n, plan, flits)

	n2 := twoSwitch(t)
	relay := &Plan{
		Source: 0,
		Dests:  []topology.NodeID{2, 1},
		HostSends: map[topology.NodeID][]WormSpec{
			0: {{Kind: WormUnicast, Dest: 2}},
			2: {{Kind: WormUnicast, Dest: 1}},
		},
	}
	m2 := mustRun(t, n2, relay, flits)
	if m.Latency() >= m2.Latency() {
		t.Fatalf("NI FPFS chain (%d) not faster than host relay (%d)", m.Latency(), m2.Latency())
	}
}

func TestHostSendsMultiPhase(t *testing.T) {
	n := twoSwitch(t)
	// Binomial-style: 0 sends to 2; then 0 sends to 1 while 2 sends to 3.
	plan := &Plan{
		Source: 0,
		Dests:  []topology.NodeID{1, 2, 3},
		HostSends: map[topology.NodeID][]WormSpec{
			0: {{Kind: WormUnicast, Dest: 2}, {Kind: WormUnicast, Dest: 1}},
			2: {{Kind: WormUnicast, Dest: 3}},
		},
	}
	m := mustRun(t, n, plan, 128)
	// Node 3's completion must come after node 2's (data dependency).
	if m.DoneAt[3] <= m.DoneAt[2] {
		t.Fatalf("phase order violated: %v", m.DoneAt)
	}
}

func TestTreeWormOnIrregularFixture(t *testing.T) {
	n := fixtureNet(t, DefaultParams())
	dests := []topology.NodeID{1, 2, 3, 4, 5, 6, 7}
	plan := &Plan{
		Source:    0,
		Dests:     dests,
		HostSends: map[topology.NodeID][]WormSpec{0: {{Kind: WormTree, DestSet: dests}}},
	}
	m := mustRun(t, n, plan, 128)
	if len(m.DoneAt) != 7 {
		t.Fatalf("delivered %d, want 7", len(m.DoneAt))
	}
}

func TestTreeWormFromLeafClimbs(t *testing.T) {
	// Source at the deepest switch (node 7 on switch 7) multicasting to
	// nodes on disjoint subtrees forces a climb before replication.
	n := fixtureNet(t, DefaultParams())
	dests := []topology.NodeID{0, 1, 2}
	plan := &Plan{
		Source:    7,
		Dests:     dests,
		HostSends: map[topology.NodeID][]WormSpec{7: {{Kind: WormTree, DestSet: dests}}},
	}
	m := mustRun(t, n, plan, 128)
	if len(m.DoneAt) != 3 {
		t.Fatalf("delivered %d, want 3", len(m.DoneAt))
	}
}

func TestEarlyTreeBranchAblation(t *testing.T) {
	p := DefaultParams()
	p.EarlyTreeBranch = true
	n := fixtureNet(t, p)
	dests := []topology.NodeID{0, 1, 2, 3, 4, 5, 6}
	plan := &Plan{
		Source:    7,
		Dests:     dests,
		HostSends: map[topology.NodeID][]WormSpec{7: {{Kind: WormTree, DestSet: dests}}},
	}
	m := mustRun(t, n, plan, 128)
	if len(m.DoneAt) != 7 {
		t.Fatalf("delivered %d, want 7", len(m.DoneAt))
	}
}

func TestContentionSerializesSameDest(t *testing.T) {
	// Two messages to the same destination from different sources must
	// serialize on the destination's ejection link / NI.
	n := twoSwitch(t)
	m1, err := n.Send(unicastPlan(0, 2), 128, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := n.Send(unicastPlan(1, 2), 128, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Drain(0); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	solo := analyticUnicast(n.Params(), 2, 128)
	l1, l2 := m1.Latency(), m2.Latency()
	fast, slow := l1, l2
	if fast > slow {
		fast, slow = slow, fast
	}
	if fast > solo+10 {
		t.Fatalf("faster of two contending messages (%d) far above solo latency (%d)", fast, solo)
	}
	if slow <= solo {
		t.Fatalf("contention had no effect: slow=%d solo=%d", slow, solo)
	}
}

func TestBackpressureDoesNotDeadlock(t *testing.T) {
	// Saturate the single inter-switch link with many simultaneous
	// messages in both directions; everything must drain.
	n := twoSwitch(t)
	for i := 0; i < 10; i++ {
		if _, err := n.Send(unicastPlan(0, 2), 512, event.Time(i*7), nil); err != nil {
			t.Fatal(err)
		}
		if _, err := n.Send(unicastPlan(3, 1), 512, event.Time(i*11), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Drain(0); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestSendValidationErrors(t *testing.T) {
	n := twoSwitch(t)
	cases := map[string]*Plan{
		"no dests":        {Source: 0, HostSends: map[topology.NodeID][]WormSpec{0: {{Kind: WormUnicast, Dest: 1}}}},
		"self dest":       {Source: 0, Dests: []topology.NodeID{0}, HostSends: map[topology.NodeID][]WormSpec{0: {{Kind: WormUnicast, Dest: 0}}}},
		"both modes":      {Source: 0, Dests: []topology.NodeID{1}, NITree: map[topology.NodeID][]topology.NodeID{0: {1}}, HostSends: map[topology.NodeID][]WormSpec{0: {{Kind: WormUnicast, Dest: 1}}}},
		"no source send":  {Source: 0, Dests: []topology.NodeID{1}, HostSends: map[topology.NodeID][]WormSpec{}},
		"double delivery": {Source: 0, Dests: []topology.NodeID{1}, HostSends: map[topology.NodeID][]WormSpec{0: {{Kind: WormUnicast, Dest: 1}, {Kind: WormUnicast, Dest: 1}}}},
		"missing dest":    {Source: 0, Dests: []topology.NodeID{1, 2}, HostSends: map[topology.NodeID][]WormSpec{0: {{Kind: WormUnicast, Dest: 1}}}},
		"non-dest deliv":  {Source: 0, Dests: []topology.NodeID{1}, HostSends: map[topology.NodeID][]WormSpec{0: {{Kind: WormUnicast, Dest: 1}, {Kind: WormUnicast, Dest: 2}}}},
		"stray sender":    {Source: 0, Dests: []topology.NodeID{1}, HostSends: map[topology.NodeID][]WormSpec{0: {{Kind: WormUnicast, Dest: 1}}, 3: {{Kind: WormUnicast, Dest: 1}}}},
	}
	for name, plan := range cases {
		if _, err := n.Send(plan, 128, 0, nil); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := n.Send(unicastPlan(0, 1), 0, 0, nil); err == nil {
		t.Error("zero-length message accepted")
	}
}

func TestStatsConservation(t *testing.T) {
	n := twoSwitch(t)
	mustRun(t, n, unicastPlan(0, 2), 128)
	s := n.Stats()
	if s.MessagesSent != 1 || s.MessagesDone != 1 {
		t.Fatalf("message counters: %+v", s)
	}
	wormLen := int64(UnicastHeaderFlits + 128)
	if s.FlitsDelivered != wormLen {
		t.Fatalf("FlitsDelivered = %d, want %d", s.FlitsDelivered, wormLen)
	}
	// Injection link + 2 switch hops = 3 channel traversals per flit.
	if s.FlitHops != 3*wormLen {
		t.Fatalf("FlitHops = %d, want %d", s.FlitHops, 3*wormLen)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.OHostSend = -1 },
		func(p *Params) { p.BusMBps = 0 },
		func(p *Params) { p.PacketFlits = 0 },
		func(p *Params) { p.BufferFlits = 0 },
		func(p *Params) { p.LinkDelay = 0 },
		func(p *Params) { p.NIInjectBufferPackets = -1 },
	}
	for i, mut := range bad {
		p := DefaultParams()
		mut(&p)
		if p.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWithR(t *testing.T) {
	p := DefaultParams()
	for _, r := range []float64{0.5, 1, 2, 4} {
		q := p.WithR(r)
		if got := q.R(); got < r*0.99 || got > r*1.01 {
			t.Fatalf("WithR(%v) gives R=%v", r, got)
		}
	}
}

func TestBusCycles(t *testing.T) {
	p := DefaultParams() // 266 MB/s at 10ns => 2.66 B/cycle
	if got := p.BusCycles(128); got != 49 {
		t.Fatalf("BusCycles(128) = %d, want 49", got)
	}
	if got := p.BusCycles(1); got != 1 {
		t.Fatalf("BusCycles(1) = %d, want 1", got)
	}
}

func TestPackets(t *testing.T) {
	p := DefaultParams()
	cases := map[int]int{1: 1, 128: 1, 129: 2, 256: 2, 257: 3}
	for flits, want := range cases {
		if got := p.Packets(flits); got != want {
			t.Fatalf("Packets(%d) = %d, want %d", flits, got, want)
		}
	}
}

func TestHeaderSizes(t *testing.T) {
	if TreeHeaderFlits(32) != 5 || TreeHeaderFlits(8) != 2 || TreeHeaderFlits(128) != 17 {
		t.Fatal("tree header sizing wrong")
	}
	if PathSegFlits(8) != 2 || PathSegFlits(16) != 3 {
		t.Fatal("path segment sizing wrong")
	}
	if PathHeaderFlits(3, 8) != 7 {
		t.Fatal("path header sizing wrong")
	}
}

func TestNIBufferBoundStillCompletes(t *testing.T) {
	p := DefaultParams()
	p.NIInjectBufferPackets = 1
	topo, err := topology.Build(2, 4,
		[][4]int{{0, 0, 1, 0}},
		[][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := updown.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(rt, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := mustRun(t, n, unicastPlan(0, 2), 128*4)
	if m.Packets != 4 {
		t.Fatalf("packets = %d", m.Packets)
	}
}

func TestCreditThroughputBufferTwoSuffices(t *testing.T) {
	// Credit round trip is 2 cycles (1 forward + 1 return), so a 2-flit
	// buffer already sustains full line rate: latency must equal the
	// 16-flit-buffer default exactly.
	lat := func(buf int) event.Time {
		p := DefaultParams()
		p.BufferFlits = buf
		topo, err := topology.Build(2, 4,
			[][4]int{{0, 0, 1, 0}},
			[][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := updown.New(topo)
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(rt, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		return mustRun(t, n, unicastPlan(0, 2), 128).Latency()
	}
	if l2, l16 := lat(2), lat(16); l2 != l16 {
		t.Fatalf("2-flit buffer (%d) should match 16-flit buffer (%d)", l2, l16)
	}
	// A 1-flit buffer halves every intermediate hop's rate: the stream's
	// tail arrives ~(wormLen-1) cycles later.
	l1, l16 := lat(1), lat(16)
	extra := l1 - l16
	wormLen := event.Time(UnicastHeaderFlits + 128)
	if extra < wormLen-10 || extra > wormLen+10 {
		t.Fatalf("1-flit buffer slowdown %d, want ~%d", extra, wormLen-1)
	}
}

func TestPortArbitrationFIFO(t *testing.T) {
	// Messages from equal-distance sources contending for the same
	// inter-switch link and ejection port: the ports must serve them in
	// request order, so completions follow the staggered injection order.
	n := twoSwitch(t)
	var order []int64
	for i, src := range []topology.NodeID{0, 1} {
		for rep := 0; rep < 3; rep++ {
			_, err := n.Send(unicastPlan(src, 2), 128, event.Time(i+rep*2), func(m *Message) {
				order = append(order, m.ID)
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := n.Drain(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 6 {
		t.Fatalf("completions %d", len(order))
	}
	// Node 0's sends get IDs 0..2 (t=0,2,4), node 1's IDs 3..5 (t=1,3,5);
	// initiation order is therefore 0,3,1,4,2,5 and FIFO port service
	// must preserve it end to end.
	want := []int64{0, 3, 1, 4, 2, 5}
	for i, id := range want {
		if order[i] != id {
			t.Fatalf("completion order %v, want %v", order, want)
		}
	}
}

func TestParallelLinksBothUsed(t *testing.T) {
	// Two parallel links between the switches; adaptive routing must
	// spread concurrent worms across both.
	topo, err := topology.Build(2, 6,
		[][4]int{{0, 0, 1, 0}, {0, 1, 1, 1}},
		[][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := updown.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(rt, DefaultParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		src := topology.NodeID(i % 2)
		dst := topology.NodeID(2 + i%2)
		if _, err := n.Send(unicastPlan(src, dst), 128, event.Time(i*11), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Drain(0); err != nil {
		t.Fatal(err)
	}
	used := 0
	for _, u := range n.ChannelUsage() {
		if (u.Label == "s0p0->s1" || u.Label == "s0p1->s1") && u.Flits > 0 {
			used++
		}
	}
	if used != 2 {
		t.Fatalf("only %d of 2 parallel links carried traffic", used)
	}
}

func TestChannelUsageSorted(t *testing.T) {
	n := twoSwitch(t)
	mustRun(t, n, unicastPlan(0, 2), 128)
	usage := n.ChannelUsage()
	if len(usage) == 0 {
		t.Fatal("no channels reported")
	}
	for i := 1; i < len(usage); i++ {
		if usage[i-1].Flits < usage[i].Flits {
			t.Fatal("usage not sorted busiest-first")
		}
	}
	// The worm crossed 3 channels with equal flit counts; everything else
	// is zero.
	wormLen := int64(UnicastHeaderFlits + 128)
	for i := 0; i < 3; i++ {
		if usage[i].Flits != wormLen {
			t.Fatalf("channel %d carried %d flits, want %d", i, usage[i].Flits, wormLen)
		}
	}
	if usage[3].Flits != 0 {
		t.Fatalf("idle channel carried %d flits", usage[3].Flits)
	}
}

func TestDrainEventBudget(t *testing.T) {
	n := twoSwitch(t)
	if _, err := n.Send(unicastPlan(0, 2), 128, 0, nil); err != nil {
		t.Fatal(err)
	}
	// A 3-event budget cannot complete a message: the budget error must
	// surface rather than a hang or silent success.
	if err := n.Drain(3); err == nil {
		t.Fatal("exhausted budget reported success")
	}
}

func TestOutstandingTracksLifetime(t *testing.T) {
	n := twoSwitch(t)
	if n.Outstanding() != 0 {
		t.Fatal("fresh network has outstanding messages")
	}
	if _, err := n.Send(unicastPlan(0, 2), 128, 0, nil); err != nil {
		t.Fatal(err)
	}
	if n.Outstanding() != 1 {
		t.Fatalf("outstanding = %d after send", n.Outstanding())
	}
	if err := n.Drain(0); err != nil {
		t.Fatal(err)
	}
	if n.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after drain", n.Outstanding())
	}
}

func TestDeadlockErrorMessage(t *testing.T) {
	err := &DeadlockError{At: 42, Outstanding: 3}
	if err.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestWithRClampsToOne(t *testing.T) {
	p := DefaultParams().WithR(1000)
	if p.ONISend != 1 || p.ONIRecv != 1 {
		t.Fatalf("extreme R should clamp o_ni to 1 cycle, got %d", p.ONISend)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("WithR(0) did not panic")
		}
	}()
	DefaultParams().WithR(0)
}

func TestWormKindStrings(t *testing.T) {
	if WormUnicast.String() != "unicast" || WormTree.String() != "tree" || WormPath.String() != "path" {
		t.Fatal("WormKind strings wrong")
	}
	if TraceInject.String() != "inject" || TraceDeliver.String() != "deliver" {
		t.Fatal("TraceKind strings wrong")
	}
}

func TestMessageLatencyPanicsWhileIncomplete(t *testing.T) {
	n := twoSwitch(t)
	m, err := n.Send(unicastPlan(0, 2), 128, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Latency on in-flight message did not panic")
		}
	}()
	_ = m.Latency()
}
