package sim

import (
	"fmt"

	"mcastsim/internal/destset"
	"mcastsim/internal/event"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// channel is one directional hop: a switch output port's line to its peer
// input buffer, a switch node-port's line to an NI, or a node's injection
// line into its home switch. A channel carries one flit per cycle and is
// used by one sender (branch) at a time.
type channel struct {
	toSwitch bool
	dstBuf   *inputBuf       // when toSwitch
	dstNode  topology.NodeID // when !toSwitch (ejection into an NI)

	// sh owns the channel: the SENDER's shard (credits, line occupancy
	// and the active-sender slot are all mutated by the pump/grant/
	// release path). dst is the receiving side's shard — evDeliver is
	// posted there; equal to sh for ejection and injection lines.
	sh  *shardState
	dst *shardState

	credits  int // free slots in dstBuf (meaningless for ejection)
	lineFree event.Time
	sender   *branch // active sender, for credit wake-ups

	// dead marks a failed channel: the active sender is torn down at the
	// break, in-flight flits past it are drained and dropped, and no new
	// grant streams over it until a repair resets the flag.
	dead bool

	label     string // "s3p5->s7", "inj n4", "ej n4" — for utilization reports
	obsID     int32  // index in Network.obsChans; meaningful only while obs is attached
	busyFlits int64  // flits carried, for utilization reports
}

// inputBuf is a switch input port's FIFO flit buffer with credit-based
// backpressure. Worms pass through it strictly head-of-line: only the
// oldest resident worm is routed and forwarded.
type inputBuf struct {
	net  *Network
	sh   *shardState // the owning switch's shard
	sw   topology.SwitchID
	port int
	cap  int
	used int

	upstream  *channel // the channel feeding this buffer (for credit return)
	occupants []*occupant
}

// bindUpstream records the channel feeding this buffer once it is known.
func (b *inputBuf) bindUpstream(up *channel) { b.upstream = up }

// creditReturn hands one buffer slot back to the feeding channel and
// wakes its sender. Scheduled as evCredit on the channel's owning (sender)
// shard after the link delay; called directly when a drained straggler
// flit returns its slot immediately (fault teardown, serial engines only).
func (b *inputBuf) creditReturn() {
	up := b.upstream
	up.credits++
	if up.sender != nil {
		up.sender.schedulePump(up.sh.now())
	}
}

// occupant tracks one worm's residence in an input buffer.
type occupant struct {
	buf      *inputBuf
	w        *worm
	arrived  int // flits received so far
	evicted  int // flits freed so far (forwarded by every consumer branch)
	routed   bool
	routing  bool // a routing event is pending
	killed   bool // torn down by the fault layer; removed from the buffer
	detached bool // no longer in its buffer's occupant list (recyclable)
	live     int  // undone branches still attached (gates recycling)
	branches []*branch
}

// branch is one replication output of a worm at a hop: it streams the flit
// window [offset, w-parent-len) of its occupant's stream through one
// channel as the child worm `w`. NI packet injection reuses branch with a
// nil occupant (all flits are already in NI memory).
//
// An elastic branch drains from the switch's internal replication buffer:
// its flits are copied out of the input buffer on arrival, so its own
// stalls never backpressure upstream. Tree-worm replication is elastic on
// every branch — the asynchronous central-buffer replication of
// Stunkel/Sivaram/Panda (ISCA'97) that the paper assumes as "support for
// deadlock-free replication at the switches" (naive synchronous
// replication AND-couples branches and deadlocks when down paths
// reconverge; our stress tests reproduce that). Path-worm drops are
// likewise elastic (delivery buffering at the switch), but a path worm's
// continuation is synchronous: when it blocks, the worm stalls and holds
// its channel chain, the classic wormhole behavior that limits path-based
// multicast under load.
type branch struct {
	net     *Network
	sh      *shardState // the shard the branch lives (and pumps) on
	occ     *occupant   // nil for NI injection
	w       *worm       // the child worm delivered downstream; w.len flits to send
	elastic bool

	offset int // index in the occupant stream where this branch starts
	sent   int // flits sent so far; done when sent == w.len

	ch      *channel // set at grant (or at creation for NI injection)
	port    *outPort // nil for NI injection
	pumping bool
	done    bool

	// injNI, when non-nil, is the NI whose injection stream this branch
	// carries: one cycle after the tail flit the NI's streamDone runs
	// (with injLast reporting whether this was the burst's final worm)
	// to start the next packet. Replaces a per-stream closure.
	injNI   *ni
	injLast bool

	// req is the branch's pending arbitration entry; a kill cancels it
	// lazily by marking it granted.
	req *portRequest
	// drops, when non-nil, names the exact destinations this branch
	// delivers (path-worm drop branches: the worm still carries the whole
	// remaining path, but the branch ejects to one node).
	drops []topology.NodeID
}

// deliver lands one flit at the branch's destination after the link
// delay (the evDeliver handler, dispatched on the destination shard).
// ch and w are fixed for the branch's lifetime, so reading them at
// dispatch time matches the old engine's capture-at-grant closures
// exactly — and gives the cross-shard event a stable frozen payload.
func (br *branch) deliver() {
	ch := br.ch
	if ch.toSwitch {
		ch.dstBuf.flitArrive(br.w)
		return
	}
	br.net.nis[ch.dstNode].flitArrive(br.w)
}

// tailRelease frees the branch's port (or injection line) one cycle
// after its tail flit, then advances the owning NI's injection stream
// (the evTail handler).
func (br *branch) tailRelease() {
	if br.port != nil {
		br.port.release(br)
	} else if br.ch.sender == br {
		br.ch.sender = nil
	}
	if br.injNI != nil {
		br.injNI.streamDone(br.injLast)
	}
}

// outPort is a switch output port with wormhole-style allocation: a worm
// holds it from header grant until its tail passes; contenders queue FIFO.
type outPort struct {
	net    *Network
	sh     *shardState // the owning switch's shard
	sw     topology.SwitchID
	port   int
	ch     *channel
	holder *branch
	dead   bool // the port's channel (or switch) has failed
	queue  []*portRequest
}

// portRequest is an arbitration entry. Adaptive unicast routing files one
// request against several candidate ports; the first to free up wins and
// the request is lazily removed from the rest.
type portRequest struct {
	br *branch
	// phases[i] is the up*/down* phase the worm assumes if ports[i] wins.
	ports   []*outPort
	phases  []updown.Phase
	granted bool
}

// --- input buffer ---

func (b *inputBuf) flitArrive(w *worm) {
	if w.dead {
		// Straggler flit of a torn-down worm: drain it. The sender already
		// spent a credit on it; hand the credit straight back if the
		// feeding channel is still alive so the buffer slot never leaks.
		// (Worms die only under the fault layer — serial engines — so the
		// direct cross-structure call never runs under shard workers.)
		b.sh.stats.FlitsDropped++
		if b.upstream != nil && !b.upstream.dead {
			b.creditReturn()
		}
		return
	}
	b.used++
	if b.used > b.cap {
		panic(fmt.Sprintf("sim: input buffer %d/%d overflow (credit accounting bug)", b.sw, b.port))
	}
	var o *occupant
	if n := len(b.occupants); n > 0 && b.occupants[n-1].w == w {
		o = b.occupants[n-1]
	} else {
		o = b.sh.getOccupant()
		o.buf = b
		o.w = w
		wormRef(w) // the occupant's assembly leg; released at recycle
		b.occupants = append(b.occupants, o)
	}
	o.arrived++
	if o.arrived > w.len {
		panic("sim: more flits arrived than worm length")
	}
	if o == b.occupants[0] && !o.routed && !o.routing {
		o.routing = true
		b.sh.postAfter(b.net.params.RoutingDelay, evRoute, o, 0)
	}
	if o.routed {
		// New flit may unblock consumer branches.
		for _, br := range o.branches {
			br.schedulePump(b.sh.now())
		}
		o.advanceEviction()
	}
}

// advanceEviction frees buffer slots whose flits every consumer branch has
// forwarded (or never needed), returning credits upstream.
func (o *occupant) advanceEviction() {
	if !o.routed || o.killed {
		return
	}
	b := o.buf
	sh := b.sh
	for o.evicted < o.arrived {
		i := o.evicted
		freed := true
		for _, br := range o.branches {
			if br.elastic {
				continue // drains from the replication buffer instead
			}
			if i >= br.offset && br.sent <= i-br.offset {
				freed = false
				break
			}
		}
		if !freed {
			break
		}
		o.evicted++
		b.used--
		// The credit lands on the feeding channel's owner — the sender
		// shard — one link delay out: at or past the window edge, which
		// is exactly the conservative lookahead.
		sh.postTo(b.upstream.sh, sh.now()+b.net.params.LinkDelay, evCredit, b, 0)
	}
	o.maybeComplete()
}

// maybeComplete retires a fully drained head occupant and starts routing
// the next resident worm.
func (o *occupant) maybeComplete() {
	b := o.buf
	if o.killed || o.detached || o.evicted != o.w.len || len(b.occupants) == 0 || b.occupants[0] != o {
		return
	}
	b.occupants = b.occupants[1:]
	o.detached = true
	b.sh.tryRecycleOccupant(o)
	if len(b.occupants) > 0 {
		next := b.occupants[0]
		if next.arrived > 0 && !next.routed && !next.routing {
			next.routing = true
			b.sh.postAfter(b.net.params.RoutingDelay, evRoute, next, 0)
		}
	}
}

// --- routing ---

// route flips the occupant's routing flags and hands the header to the
// worm-advancement dispatcher (the evRoute handler).
func (o *occupant) route() {
	sh := o.buf.sh
	o.routing = false
	if o.killed {
		// The pending routing event was the last thing pinning a
		// torn-down occupant.
		sh.tryRecycleOccupant(o)
		return
	}
	o.routed = true
	sh.advanceWorm(o)
}

// wormPlanner emits the branches advancing one worm kind past a switch.
type wormPlanner func(*shardState, *occupant, topology.SwitchID, *worm)

// wormPlanners is advanceWorm's dispatch table, indexed by WormKind.
var wormPlanners = [...]wormPlanner{
	WormUnicast: (*shardState).planUnicast,
	WormTree:    (*shardState).planTree,
	WormPath:    (*shardState).planPath,
}

// branchSpec describes one replication output a planner wants: the child
// worm it forwards, the flit window it starts at, its delivery flavor,
// and the candidate output ports. emitBranch turns specs into filed
// arbitration requests identically for all three worm kinds.
type branchSpec struct {
	child    *worm
	offset   int
	elastic  bool
	drops    []topology.NodeID
	ports    []int
	phases   []updown.Phase
	adaptive bool // shuffle candidates (the simulator's adaptivity tie-break)
}

// emitBranch realizes one branchSpec: the shared create-and-file step
// behind every worm kind's advancement. spec.ports/phases may live in
// shard scratch; fileRequest copies before retaining.
func (sh *shardState) emitBranch(o *occupant, s topology.SwitchID, spec branchSpec) {
	br := sh.newBranch(o, spec.child, spec.offset)
	br.elastic = spec.elastic
	br.drops = spec.drops
	if spec.adaptive {
		sh.fileAdaptive(br, s, spec.ports, spec.phases)
		return
	}
	sh.fileRequest(br, s, spec.ports, spec.phases)
}

// advanceWorm is the single worm-advancement dispatcher: it traces the
// routing decision, runs the worm kind's planner, applies the tree
// scheme's central-buffer elasticity, and lets absorbed header flits
// evict. Unicast, tree replication and path stops all flow through here.
func (sh *shardState) advanceWorm(o *occupant) {
	s := o.buf.sw
	w := o.w
	sh.net.trace(TraceEvent{Kind: TraceRoute, Worm: w.id, Msg: w.msg.ID, Pkt: w.pkt, Switch: s, Port: o.buf.port})
	wormPlanners[w.kind](sh, o, s, w)
	// Tree-worm replication passes through the switch's central buffer
	// (ISCA'97): wherever the worm split, every branch drains from that
	// buffer.
	if w.kind == WormTree && len(o.branches) > 1 {
		for _, b := range o.branches {
			b.elastic = true
		}
	}
	// Flits that no branch consumes (absorbed headers, or a worm with no
	// outputs) can free up immediately.
	o.advanceEviction()
}

// singleSpec loads the one-port scratch pair for single-candidate specs,
// avoiding a slice-literal escape per branch.
func (sh *shardState) singleSpec(p int, ph updown.Phase) ([]int, []updown.Phase) {
	sh.scr.onePort[0] = p
	sh.scr.onePhase[0] = ph
	return sh.scr.onePort[:], sh.scr.onePhase[:]
}

func (sh *shardState) planUnicast(o *occupant, s topology.SwitchID, w *worm) {
	n := sh.net
	home := n.topo.NodeSwitch[w.dest]
	if home == s {
		ports, phases := sh.singleSpec(n.rt.NodePortAt(s, w.dest), w.phase)
		sh.emitBranch(o, s, branchSpec{child: w.child(sh, 0),
			ports: ports, phases: phases})
		return
	}
	ports, phases := sh.nextHops(s, w.phase, home)
	if len(ports) == 0 {
		n.routeFailure(o, s, fmt.Sprintf("no legal route for %v phase %v", w, w.phase))
		return
	}
	sh.emitBranch(o, s, branchSpec{child: w.child(sh, 0),
		ports: ports, phases: phases, adaptive: true})
}

func (sh *shardState) planTree(o *occupant, s topology.SwitchID, w *worm) {
	n := sh.net
	remaining := sh.getDset()
	remaining.copyFrom(w.destSet)
	// Local deliveries: destinations attached to this switch drop here
	// regardless of the climb state.
	if n.localIntersects(remaining, s) {
		for _, node := range n.nodesAt[s] {
			if !remaining.contains(int(node)) {
				continue
			}
			remaining.remove(int(node))
			ds := sh.getDset()
			ds.add(int(node))
			ports, phases := sh.singleSpec(n.rt.NodePortAt(s, node), w.phase)
			sh.emitBranch(o, s, branchSpec{child: w.childSet(sh, 0, ds),
				ports: ports, phases: phases})
		}
	}
	if remaining.empty() {
		sh.putDset(remaining)
		return
	}
	if remaining.subsetOfBits(n.rt.Cover[s]) {
		// Replicate down: partition the remaining set across down ports.
		parts, ok := sh.partitionDownAdaptive(s, remaining)
		if !ok {
			n.routeFailure(o, s, fmt.Sprintf("down partition cannot cover %v", remaining.indices()))
			sh.putDset(remaining)
			return
		}
		sh.putDset(remaining)
		for _, ps := range parts {
			// The partition subset becomes the child's destination set
			// (pooled; ownership transfers to the child worm).
			c := w.childSet(sh, 0, ps.sub)
			c.phase = updown.PhaseDown
			ports, phases := sh.singleSpec(ps.port, updown.PhaseDown)
			sh.emitBranch(o, s, branchSpec{child: c,
				ports: ports, phases: phases})
		}
		return
	}
	if w.phase == updown.PhaseDown {
		n.routeFailure(o, s, fmt.Sprintf("tree worm %v descended to a switch that cannot cover %v", w, remaining.indices()))
		sh.putDset(remaining)
		return
	}
	if n.params.EarlyTreeBranch {
		// Ablation variant: peel off down-coverable subsets while climbing.
		for _, p := range n.downPorts[s] {
			if !remaining.intersectsBits(n.rt.DownReach[s][p]) {
				continue
			}
			sub := sh.getDset()
			remaining.intersectInto(sub, n.rt.DownReach[s][p])
			remaining.differenceWith(sub)
			c := w.childSet(sh, 0, sub)
			c.phase = updown.PhaseDown
			ports, phases := sh.singleSpec(p, updown.PhaseDown)
			sh.emitBranch(o, s, branchSpec{child: c,
				ports: ports, phases: phases})
		}
		if remaining.empty() {
			sh.putDset(remaining)
			return
		}
	}
	// Climb: continue on an up port along a shortest up-path to a switch
	// that covers the remainder (the paper's "travel adaptively to a least
	// common ancestor switch using links in the up direction").
	ports := sh.climbPorts(s, remaining)
	if len(ports) == 0 {
		n.routeFailure(o, s, fmt.Sprintf("tree worm %v stuck: no up port reaches a switch covering %v", w, remaining.indices()))
		sh.putDset(remaining)
		return
	}
	c := w.childSet(sh, 0, remaining) // remaining's ownership moves to the child
	phases := sh.scr.phaseScratch[:0]
	for range ports {
		phases = append(phases, updown.PhaseUp)
	}
	sh.scr.phaseScratch = phases
	sh.emitBranch(o, s, branchSpec{child: c,
		ports: ports, phases: phases, adaptive: true})
}

func (sh *shardState) planPath(o *occupant, s topology.SwitchID, w *worm) {
	n := sh.net
	if len(w.path) == 0 {
		panic("sim: path worm with no remaining segments")
	}
	seg := w.path[0]
	if seg.Switch != s {
		// In transit toward the segment's stop switch: ordinary adaptive
		// unicast routing, header intact.
		ports, phases := n.rt.NextHops(s, w.phase, seg.Switch)
		if len(ports) == 0 {
			n.routeFailure(o, s, fmt.Sprintf("path worm %v has no legal route toward switch %d", w, seg.Switch))
			return
		}
		sh.emitBranch(o, s, branchSpec{child: w.child(sh, 0),
			ports: ports, phases: phases, adaptive: true})
		return
	}
	// Stop switch: the segment's node-ID and port-mask fields are stripped
	// here; drops and the continuation forward the shortened stream.
	skip := PathSegFlitsFor(n.topo.PortsPerSwitch, n.topo.NumNodes, n.topo.NumSwitches)
	if skip > w.len {
		panic("sim: path worm shorter than its own header")
	}
	rest := w.path[1:]
	for _, d := range seg.Drops {
		p := n.rt.NodePortAt(s, d)
		if p < 0 {
			panic(fmt.Sprintf("sim: path worm drop %d not attached to switch %d", d, s))
		}
		c := w.child(sh, skip)
		c.path = rest
		// Drops are buffered deliveries: the worm never stalls on them
		// (the multi-drop mechanism's delivery buffering); only the
		// continuation below is synchronous.
		sh.emitBranch(o, s, branchSpec{child: c, offset: skip,
			elastic: true, drops: []topology.NodeID{d},
			ports: []int{p}, phases: []updown.Phase{w.phase}})
	}
	if seg.NextPort >= 0 {
		// The continuation port was legal when the plan was built; a fault
		// plus reconfiguration can have killed the link or flipped its
		// orientation since.
		dir := n.rt.Dirs[s][seg.NextPort]
		if dir == updown.DirNone {
			n.routeFailure(o, s, fmt.Sprintf("path worm %v continues out port %d, which is no longer a legal switch port", w, seg.NextPort))
			return
		}
		if dir == updown.DirUp && w.phase == updown.PhaseDown {
			n.routeFailure(o, s, fmt.Sprintf("path worm %v would make an up turn after down out port %d", w, seg.NextPort))
			return
		}
		next := w.phase
		if dir == updown.DirDown {
			next = updown.PhaseDown
		}
		if len(rest) == 0 {
			panic("sim: path worm continues with no remaining segments")
		}
		c := w.child(sh, skip)
		c.path = rest
		c.phase = next
		sh.emitBranch(o, s, branchSpec{child: c, offset: skip,
			ports: []int{seg.NextPort}, phases: []updown.Phase{next}})
	}
}

// portSet is one branch of a down partition.
type portSet struct {
	port int
	sub  dset
}

// partitionDownAdaptive splits a covered destination set across down
// ports like updown.PartitionDown (greedy largest overlap, so copies stay
// few), but breaks overlap ties with the arbitration RNG. Reachability
// strings of parallel down paths overlap heavily in dense networks; a
// deterministic tie-break would funnel every worm through the same ports,
// while real switches are free to pick any covering port. The result is
// an ordered slice — callers create branches in this order, and branch
// order feeds arbitration, so it must not depend on map iteration. ok is
// false when the down ports cannot cover the set — impossible under the
// Covers precondition on healthy routing state, but reachable when a fault
// invalidates the reachability strings mid-run.
func (sh *shardState) partitionDownAdaptive(s topology.SwitchID, set dset) ([]portSet, bool) {
	n := sh.net
	c := sh.cache
	c.sync(n.routingEpoch)
	var key partKey
	var cached *partEntry
	if !c.disabled {
		key = partKey{sw: int32(s), fp: sh.destFP(set)}
		if e := c.part[key]; e != nil && set.equalRuns(e.key) {
			cached = e
			if !e.tied {
				// Hit: burn the identical shuffle the miss path draws so
				// the arbitration RNG stream stays byte-for-byte equal,
				// then hand out pooled copies of the cached partition.
				sh.arb.Shuffle(len(n.downPorts[s]), func(i, j int) {})
				out := sh.scr.partScratch[:0]
				for i, p := range e.ports {
					sub := sh.getDset()
					sub.copyFromRuns(e.subs[i])
					out = append(out, portSet{port: int(p), sub: sub})
				}
				sh.scr.partScratch = out
				return out, true
			}
			// Tied entry: the greedy choice depends on the shuffle, so
			// recompute in full (which consumes the shuffle naturally).
		}
	}
	remaining := sh.getDset()
	remaining.copyFrom(set)
	downs := append(sh.scr.downScratch[:0], n.downPorts[s]...)
	sh.scr.downScratch = downs
	sh.arb.Shuffle(len(downs), func(i, j int) { downs[i], downs[j] = downs[j], downs[i] })
	out := sh.scr.partScratch[:0]
	tied := false
	for !remaining.empty() {
		best, bestCount, dup := -1, 0, false
		for _, p := range downs {
			if sh.scr.usedPorts[p] {
				continue
			}
			c := remaining.andCountBits(n.rt.DownReach[s][p])
			if c > bestCount {
				best, bestCount, dup = p, c, false
			} else if c == bestCount && c > 0 {
				dup = true
			}
		}
		if best == -1 {
			for _, ps := range out {
				sh.scr.usedPorts[ps.port] = false
				sh.putDset(ps.sub)
			}
			sh.putDset(remaining)
			sh.scr.partScratch = out[:0]
			return nil, false
		}
		if dup {
			tied = true
		}
		sub := sh.getDset()
		remaining.intersectInto(sub, n.rt.DownReach[s][best])
		sh.scr.usedPorts[best] = true
		out = append(out, portSet{port: best, sub: sub})
		remaining.differenceWith(sub)
	}
	for _, ps := range out {
		sh.scr.usedPorts[ps.port] = false
	}
	sh.putDset(remaining)
	sh.scr.partScratch = out
	if !c.disabled && cached == nil {
		// First sighting of this (switch, set): record it. Untied
		// partitions store cache-owned run snapshots; tied ones store only
		// the flag so future calls go straight to the recomputation.
		if len(c.part) >= c.partCap {
			clear(c.part)
		}
		e := &partEntry{key: set.cloneRuns(), tied: tied}
		if !tied {
			e.ports = make([]int32, len(out))
			e.subs = make([]*destset.Runs, len(out))
			for i, ps := range out {
				e.ports[i] = int32(ps.port)
				e.subs[i] = ps.sub.cloneRuns()
			}
		}
		c.part[key] = e
	}
	return out, true
}

// climbPorts returns the up ports of s that begin a shortest all-up path to
// a switch covering set (reverse BFS from all covering switches over up
// links, memoized per destination set by the route cache). The result
// lives in shard scratch.
func (sh *shardState) climbPorts(s topology.SwitchID, set dset) []int {
	dist := sh.climbDist(set)
	if dist[s] <= 0 {
		return nil // s covers already (caller bug) or nothing reachable
	}
	out := sh.scr.portScratch[:0]
	for _, pp := range sh.net.upAdj[s] {
		if dist[pp.sw] == dist[s]-1 {
			out = append(out, pp.port)
		}
	}
	sh.scr.portScratch = out
	return out
}

// --- branches and arbitration ---

// newBranch pulls a pooled branch for child's stream. A nil occupant
// means NI injection (all flits already in NI memory). The branch holds
// a reference on its worm until the post-done quarantine reclaims it.
func (sh *shardState) newBranch(o *occupant, child *worm, offset int) *branch {
	br := sh.getBranch()
	br.occ = o
	br.w = child
	br.offset = offset
	wormRef(child)
	if o != nil {
		o.branches = append(o.branches, br)
		o.live++
	}
	return br
}

// fileAdaptive shuffles candidate ports (the simulator's adaptivity
// tie-break) and files the request. ports/phases must be mutable
// (scratch or freshly built), never cached storage.
func (sh *shardState) fileAdaptive(br *branch, s topology.SwitchID, ports []int, phases []updown.Phase) {
	sh.arb.Shuffle(len(ports), func(i, j int) {
		ports[i], ports[j] = ports[j], ports[i]
		phases[i], phases[j] = phases[j], phases[i]
	})
	sh.fileRequest(br, s, ports, phases)
}

// fileRequest arbitrates br onto one of the candidate ports of switch s.
// The common case — some candidate is free — grants directly without
// materializing a portRequest; only genuine contention allocates one
// (with owned copies of the candidate list, since ports/phases may be
// shard scratch).
func (sh *shardState) fileRequest(br *branch, s topology.SwitchID, ports []int, phases []updown.Phase) {
	n := sh.net
	sw := n.switches[s]
	if n.faulted {
		// Routing state can lag a fault by up to the detection delay: drop
		// candidate ports that have died since the tables were computed.
		live, livePhases := ports[:0], phases[:0]
		for i, p := range ports {
			if op := sw.outPorts[p]; op != nil && op.dead {
				continue
			}
			live = append(live, p)
			livePhases = append(livePhases, phases[i])
		}
		ports, phases = live, livePhases
		if len(ports) == 0 {
			n.deadEndBranch(br)
			return
		}
	}
	for i, p := range ports {
		op := sw.outPorts[p]
		if op == nil {
			panic(fmt.Sprintf("sim: request against unwired port (switch %d)", br.occ.buf.sw))
		}
		if op.holder == nil {
			op.grantTo(br, phases[i])
			return
		}
	}
	if r := n.obsRec; r != nil {
		r.ArbConflict(int32(s))
	}
	outs := make([]*outPort, len(ports))
	owned := make([]updown.Phase, len(phases))
	for i, p := range ports {
		outs[i] = sw.outPorts[p]
		owned[i] = phases[i]
	}
	req := &portRequest{br: br, ports: outs, phases: owned}
	br.req = req
	for _, op := range outs {
		op.queue = append(op.queue, req)
	}
}

// grant hands the port to request index i and starts the branch's stream.
func (o *outPort) grant(req *portRequest, i int) {
	req.granted = true
	o.grantTo(req.br, req.phases[i])
}

// grantTo gives br the port with the worm assuming phase ph — the shared
// tail of queued grants and the allocation-free direct grant.
func (o *outPort) grantTo(br *branch, ph updown.Phase) {
	br.port = o
	br.ch = o.ch
	br.w.phase = ph
	o.holder = br
	o.ch.sender = br
	o.net.trace(TraceEvent{Kind: TraceGrant, Worm: br.w.id, Msg: br.w.msg.ID, Pkt: br.w.pkt, Switch: o.sw, Port: o.port})
	br.schedulePump(o.sh.now() + o.net.params.CrossbarDelay)
}

// release frees the port after a tail passes and grants the next waiter.
func (o *outPort) release(br *branch) {
	if o.holder != br {
		// A killed branch's deferred tail-release can trail the teardown
		// that already force-released the port; that is not a bug.
		if br.w.dead || o.dead {
			return
		}
		panic("sim: releasing a port held by another branch")
	}
	o.holder = nil
	if o.ch.sender == br {
		o.ch.sender = nil
	}
	if o.dead {
		return // no grants over a failed channel; the queue was failed over
	}
	for len(o.queue) > 0 {
		req := o.queue[0]
		o.queue = o.queue[1:]
		if req.granted {
			continue // won elsewhere
		}
		for i, p := range req.ports {
			if p == o {
				o.grant(req, i)
				return
			}
		}
	}
}

// --- flit pump ---

// schedulePump arranges for pump to run at time t (or now, whichever is
// later); redundant calls while a pump is pending are no-ops.
func (br *branch) schedulePump(t event.Time) {
	if br.pumping || br.done || br.ch == nil {
		return
	}
	br.pumping = true
	now := br.sh.now()
	if t < now {
		t = now
	}
	br.sh.post(t, evPump, br, 0)
}

// pump attempts to send one flit; it self-schedules while streaming and
// goes dormant (woken by flit arrival or credit return) when blocked.
func (br *branch) pump() {
	br.pumping = false
	if br.done {
		return
	}
	net := br.net
	sh := br.sh
	ch := br.ch
	if ch.dead || br.w.dead {
		// The channel failed under us (or the worm was torn down) between
		// scheduling and running this pump.
		net.deadEndBranch(br)
		return
	}
	now := sh.now()
	if now < ch.lineFree {
		br.schedulePump(ch.lineFree)
		return
	}
	if br.occ != nil && br.occ.arrived <= br.offset+br.sent {
		return // flit not here yet; flitArrive will wake us
	}
	if ch.toSwitch {
		if ch.credits == 0 {
			if r := net.obsRec; r != nil {
				r.CreditStall(ch.obsID)
			}
			return // no buffer space; credit return will wake us
		}
		ch.credits--
	}
	ch.lineFree = now + 1
	br.sent++
	ch.busyFlits++
	sh.stats.FlitHops++
	w := br.w
	// The flit lands on the channel's destination shard one link delay
	// out — at or past the window edge, the conservative lookahead.
	sh.postTo(ch.dst, now+net.params.LinkDelay, evDeliver, br, 0)
	if br.occ != nil {
		br.occ.advanceEviction()
	}
	if br.sent == w.len {
		br.done = true
		if br.port != nil {
			net.trace(TraceEvent{Kind: TraceTail, Worm: w.id, Msg: w.msg.ID, Pkt: w.pkt, Switch: br.port.sw, Port: br.port.port})
		}
		sh.postAfter(1, evTail, br, 0)
		sh.postAfter(net.reclaimAfter, evReclaim, br, 0)
		if br.occ != nil {
			// Complete the occupant before detaching: detaching can
			// recycle it, and maybeComplete must read its live state.
			br.occ.maybeComplete()
			sh.detachBranch(br)
		}
		return
	}
	br.schedulePump(now + 1)
}
