package sim

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"mcastsim/internal/snap"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// A ckptScenario runs to a quiescent point (phaseA), where the harness
// checkpoints, then continues (phaseB). The harness proves the restored
// continuation byte-identical — traces, stats, clocks, group counters —
// to the uninterrupted run.
type ckptScenario struct {
	name   string
	params func() Params
	phaseA func(t *testing.T, n *Network)
	phaseB func(t *testing.T, n *Network)
}

// netDigest summarizes every externally observable piece of network
// state the snapshot must carry.
func netDigest(n *Network) string {
	var g strings.Builder
	for _, gr := range n.Groups() {
		fmt.Fprintf(&g, "[%s e=%d j=%d l=%d st=%d mi=%d mem=%v]",
			gr.Name(), gr.Epoch(), gr.Joins(), gr.Leaves(), gr.Stale(), gr.Missed(), gr.Members())
	}
	return fmt.Sprintf("t=%d ev=%d stats=%+v worm=%d msg=%d rc=%d re=%d faulted=%v part=%v root=%d groups=%s",
		n.Now(), n.EventsProcessed(), n.Stats(), n.nextWormID, n.nextMsgID,
		n.reconfigEpoch, n.routingEpoch, n.faulted, n.partitioned, n.rt.Root, g.String())
}

func ckptOpts(k int, sink *[]TraceEvent) []Option {
	opts := []Option{WithTrace(func(ev TraceEvent) { *sink = append(*sink, ev) })}
	if k > 1 {
		opts = append(opts, WithShards(k))
	}
	return opts
}

// runCkptScenario checkpoints phaseA run at ckptShards and restores at
// restoreShards (serial equivalence makes snapshots portable across
// serial shard counts), comparing the continuation against an
// uninterrupted run at restoreShards.
func runCkptScenario(t *testing.T, sc ckptScenario, ckptShards, restoreShards int) {
	t.Helper()

	// Uninterrupted reference.
	var ref []TraceEvent
	n1 := fixtureNetOpts(t, sc.params(), ckptOpts(restoreShards, &ref)...)
	sc.phaseA(t, n1)
	mark := len(ref)
	sc.phaseB(t, n1)
	refTail := ref[mark:]
	refDigest := netDigest(n1)

	// Interrupted: phaseA, checkpoint, restore into a fresh network,
	// continue.
	var pre []TraceEvent
	n2 := fixtureNetOpts(t, sc.params(), ckptOpts(ckptShards, &pre)...)
	sc.phaseA(t, n2)
	var buf bytes.Buffer
	if err := n2.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	var tail []TraceEvent
	n3 := fixtureNetOpts(t, sc.params(), ckptOpts(restoreShards, &tail)...)
	if err := n3.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	sc.phaseB(t, n3)

	if got := netDigest(n3); got != refDigest {
		t.Errorf("restored digest diverged:\n got %s\nwant %s", got, refDigest)
	}
	if !reflect.DeepEqual(tail, refTail) {
		t.Errorf("restored continuation trace diverged: %d events vs %d", len(tail), len(refTail))
		for i := 0; i < len(tail) && i < len(refTail); i++ {
			if tail[i] != refTail[i] {
				t.Errorf("first divergence at %d:\n got %+v\nwant %+v", i, tail[i], refTail[i])
				break
			}
		}
	}

	// Checkpoint is non-mutating: the checkpointed network continues to
	// the same end state.
	sc.phaseB(t, n2)
	if got := netDigest(n2); got != refDigest {
		t.Errorf("checkpoint perturbed the live network:\n got %s\nwant %s", got, refDigest)
	}
}

func sendProbe(t *testing.T, n *Network, src, dst topology.NodeID, flits int) {
	t.Helper()
	if _, err := n.Send(unicastPlan(src, dst), flits, n.Now(), nil); err != nil {
		t.Fatalf("Send %d->%d: %v", src, dst, err)
	}
}

var ckptScenarios = []ckptScenario{
	{
		// Pending fault schedule plus an already-performed routing swap:
		// the snapshot carries the fault masks, the reconfiguration's
		// updown options, and the future fail/repair events.
		name:   "faults",
		params: DefaultParams,
		phaseA: func(t *testing.T, n *Network) {
			err := n.InstallFaults(&FaultSchedule{Events: []FaultEvent{
				{At: 500, Kind: FaultLink, Link: 0},
				{At: 4000, Kind: RepairLink, Link: 0},
				{At: 8000, Kind: FaultSwitch, Switch: 6},
			}})
			if err != nil {
				t.Fatalf("InstallFaults: %v", err)
			}
			sendProbe(t, n, 0, 7, 128)
			n.RunUntil(3500) // probe raced the t=500 fault; reconfig swapped at t=2500
			if n.Outstanding() != 0 {
				t.Fatalf("probe still outstanding at t=3500")
			}
		},
		phaseB: func(t *testing.T, n *Network) {
			sendProbe(t, n, 1, 4, 128)
			n.RunUntil(7000) // across the repair
			sendProbe(t, n, 0, 3, 128)
			if err := n.Drain(0); err != nil {
				t.Fatalf("Drain: %v", err)
			}
		},
	},
	{
		// Pending membership schedule with live group counters and an
		// in-flight-snapshot history (missed/stale races) behind them.
		name:   "churn",
		params: DefaultParams,
		phaseA: func(t *testing.T, n *Network) {
			g, err := n.NewGroup("workers", []topology.NodeID{1, 2, 3})
			if err != nil {
				t.Fatalf("NewGroup: %v", err)
			}
			err = n.InstallMembership(&MembershipSchedule{Events: []MembershipEvent{
				{At: 300, Group: g.ID(), Node: 5, Kind: MemberJoin},
				{At: 5000, Group: g.ID(), Node: 2, Kind: MemberLeave},
				{At: 9000, Group: g.ID(), Node: 6, Kind: MemberJoin},
			}})
			if err != nil {
				t.Fatalf("InstallMembership: %v", err)
			}
			if _, err := n.SendToGroup(g, groupPlan(0, g.Members()), 128, 0, nil); err != nil {
				t.Fatalf("SendToGroup: %v", err)
			}
			n.RunUntil(3000)
			if n.Outstanding() != 0 {
				t.Fatalf("group send still outstanding at t=3000")
			}
		},
		phaseB: func(t *testing.T, n *Network) {
			g := n.Groups()[0]
			if _, err := n.SendToGroup(g, groupPlan(0, g.Members()), 128, n.Now(), nil); err != nil {
				t.Fatalf("SendToGroup: %v", err)
			}
			n.RunUntil(7000) // across the leave
			g = n.Groups()[0]
			if _, err := n.SendToGroup(g, groupPlan(0, g.Members()), 128, n.Now(), nil); err != nil {
				t.Fatalf("SendToGroup: %v", err)
			}
			if err := n.Drain(0); err != nil {
				t.Fatalf("Drain: %v", err)
			}
		},
	},
	{
		// A reliable send that completed long before its per-attempt
		// deadline leaves a stale evMsgTimeout pending; the restored
		// placeholder must advance the clock and the processed count
		// exactly like the real no-op timeout.
		name:   "retry-timer",
		params: DefaultParams,
		phaseA: func(t *testing.T, n *Network) {
			replan := func(rt *updown.Routing, src topology.NodeID, dests []topology.NodeID, flits int) (*Plan, error) {
				return groupPlan(src, dests), nil
			}
			pol := RetryPolicy{Timeout: 6000, Backoff: 500, BackoffFactor: 2, MaxAttempts: 3}
			if _, err := n.SendReliable(unicastPlan(0, 7), 128, 0, replan, pol, nil); err != nil {
				t.Fatalf("SendReliable: %v", err)
			}
			n.RunUntil(2000)
			if n.Outstanding() != 0 {
				t.Fatalf("reliable send still outstanding at t=2000")
			}
			if n.queueLen() == 0 {
				t.Fatalf("expected a stale evMsgTimeout pending at checkpoint")
			}
		},
		phaseB: func(t *testing.T, n *Network) {
			sendProbe(t, n, 2, 5, 128)
			n.RunUntil(7000) // pops the stale timeout at t=6000
			sendProbe(t, n, 4, 1, 64)
			if err := n.Drain(0); err != nil {
				t.Fatalf("Drain: %v", err)
			}
		},
	},
	{
		// A long link delay stretches the branch-reclaim quarantine past
		// message completion, so quiescence is reached with evReclaim
		// events still pending; their placeholders must pop identically.
		name: "pending-reclaims",
		params: func() Params {
			p := DefaultParams()
			p.LinkDelay = 40
			p.OHostSend, p.OHostRecv = 1, 1
			p.ONISend, p.ONIRecv = 1, 1
			return p
		},
		phaseA: func(t *testing.T, n *Network) {
			m, err := n.Send(unicastPlan(0, 7), 128, n.Now(), nil)
			if err != nil {
				t.Fatalf("Send: %v", err)
			}
			// Let the worm enter the fabric, then abort it. The kill
			// completes the message immediately but leaves evReclaim
			// quarantine timers pending reclaimAfter cycles out — a
			// short window after the drained flits and credits where
			// the network is quiescent with reclaims still scheduled.
			for n.Stats().FlitHops == 0 {
				n.RunUntil(n.Now() + 1)
			}
			n.AbortMessage(m)
			deadline := n.Now() + 10_000
			for {
				if n.Outstanding() == 0 && n.queueLen() > 0 {
					if _, err := n.checkQuiescent(); err == nil {
						break
					}
				}
				if n.Now() >= deadline {
					t.Fatalf("no quiescent point with pending reclaims found")
				}
				n.RunUntil(n.Now() + 1)
			}
		},
		phaseB: func(t *testing.T, n *Network) {
			sendProbe(t, n, 3, 6, 128)
			if err := n.Drain(0); err != nil {
				t.Fatalf("Drain: %v", err)
			}
		},
	},
}

// TestCheckpointRestoreEqualsUninterrupted is the tier-1 determinism
// property: for every schedule type and every serial shard count, a
// checkpoint/restore cycle at a quiescent point is invisible — the
// continuation's traces and final state are byte-identical to the run
// that never stopped.
func TestCheckpointRestoreEqualsUninterrupted(t *testing.T) {
	for _, sc := range ckptScenarios {
		for _, k := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", sc.name, k), func(t *testing.T) {
				runCkptScenario(t, sc, k, k)
			})
		}
		// Serial equivalence makes snapshots portable across serial
		// shard counts: checkpoint single-queue, restore sharded.
		t.Run(sc.name+"/cross-shards=1to4", func(t *testing.T) {
			runCkptScenario(t, sc, 1, 4)
		})
	}
}

func TestCheckpointRefusesNonQuiescent(t *testing.T) {
	var busy *CheckpointBusyError

	t.Run("in-flight message", func(t *testing.T) {
		n := fixtureNet(t, DefaultParams())
		sendProbe(t, n, 0, 7, 128)
		n.RunUntil(50)
		if err := n.Checkpoint(&bytes.Buffer{}); !errors.As(err, &busy) {
			t.Fatalf("got %v, want *CheckpointBusyError", err)
		}
	})

	t.Run("pending closure", func(t *testing.T) {
		n := fixtureNet(t, DefaultParams())
		n.Schedule(1000, func() {})
		err := n.Checkpoint(&bytes.Buffer{})
		if !errors.As(err, &busy) {
			t.Fatalf("got %v, want *CheckpointBusyError", err)
		}
		if !strings.Contains(err.Error(), "evSched") {
			t.Fatalf("busy error should name the pending kind: %v", err)
		}
	})

	t.Run("fast mode", func(t *testing.T) {
		n := fixtureNetOpts(t, DefaultParams(), WithFastShards(2))
		var fm *FastModeError
		if err := n.Checkpoint(&bytes.Buffer{}); !errors.As(err, &fm) {
			t.Fatalf("got %v, want *FastModeError", err)
		}
		if err := n.Restore(bytes.NewReader(nil)); !errors.As(err, &fm) {
			t.Fatalf("Restore: got %v, want *FastModeError", err)
		}
	})
}

func TestRestoreRequiresVirginNetwork(t *testing.T) {
	src := fixtureNet(t, DefaultParams())
	var buf bytes.Buffer
	if err := src.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	used := fixtureNet(t, DefaultParams())
	mustRun(t, used, unicastPlan(0, 7), 128)
	if err := used.Restore(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "virgin") {
		t.Fatalf("Restore into a used network: got %v", err)
	}
}

func TestRestoreMismatchedShape(t *testing.T) {
	src := fixtureNet(t, DefaultParams())
	var buf bytes.Buffer
	if err := src.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	var mm *SnapshotMismatchError
	t.Run("different topology", func(t *testing.T) {
		n := twoSwitch(t)
		if err := n.Restore(bytes.NewReader(buf.Bytes())); !errors.As(err, &mm) {
			t.Fatalf("got %v, want *SnapshotMismatchError", err)
		}
	})
	t.Run("different params", func(t *testing.T) {
		p := DefaultParams()
		p.OHostSend = 999
		n := fixtureNet(t, p)
		if err := n.Restore(bytes.NewReader(buf.Bytes())); !errors.As(err, &mm) {
			t.Fatalf("got %v, want *SnapshotMismatchError", err)
		}
		if mm.Field != "params digest" {
			t.Fatalf("mismatch field = %q", mm.Field)
		}
	})
}

// TestRestoreCorruptSnapshot proves the no-partial-restore contract: a
// corrupted or truncated stream fails with a typed error and leaves the
// target network untouched — still virgin, still able to restore the
// intact snapshot afterwards.
func TestRestoreCorruptSnapshot(t *testing.T) {
	src := fixtureNet(t, DefaultParams())
	if err := src.InstallFaults(&FaultSchedule{Events: []FaultEvent{
		{At: 5000, Kind: FaultLink, Link: 2},
	}}); err != nil {
		t.Fatal(err)
	}
	g, err := src.NewGroup("g", []topology.NodeID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	mustRun(t, src, unicastPlan(0, 7), 128)
	var buf bytes.Buffer
	if err := src.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	good := buf.Bytes()

	n := fixtureNet(t, DefaultParams())

	// Truncations at a spread of cut points.
	for _, cut := range []int{0, 3, 6, 10, len(good) / 2, len(good) - 1} {
		if err := n.Restore(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncated at %d: restored cleanly", cut)
		}
	}

	// Bit-flip corruption past the header.
	for _, pos := range []int{8, 20, len(good) / 2, len(good) - 2} {
		bad := append([]byte(nil), good...)
		bad[pos] ^= 0x40
		if err := n.Restore(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corrupt byte at %d: restored cleanly", pos)
		}
	}

	// Wrong version fails with the typed header error.
	bad := append([]byte(nil), good...)
	bad[4] ^= 0xff
	var ve *snap.VersionError
	if err := n.Restore(bytes.NewReader(bad)); !errors.As(err, &ve) {
		t.Fatalf("version flip: got %v, want *snap.VersionError", err)
	}

	// The network was never partially mutated: the intact snapshot still
	// restores, and the continuation works.
	if err := n.Restore(bytes.NewReader(good)); err != nil {
		t.Fatalf("intact restore after corrupt attempts: %v", err)
	}
	mustRunAfterRestore(t, n)
}

func mustRunAfterRestore(t *testing.T, n *Network) {
	t.Helper()
	if _, err := n.Send(unicastPlan(1, 6), 64, n.Now(), nil); err != nil {
		t.Fatalf("Send after restore: %v", err)
	}
	if err := n.Drain(0); err != nil {
		t.Fatalf("Drain after restore: %v", err)
	}
	if err := n.CheckConservation(); err == nil {
		// Conservation counters include the pre-checkpoint history; they
		// must still balance because the snapshot carried them whole.
	} else {
		t.Fatalf("conservation after restore: %v", err)
	}
}

// TestCheckpointAcrossEngines pins snapshot portability between the
// calendar and heap backends: dispatch order is engine-independent, so a
// snapshot taken on one backend restores on the other.
func TestCheckpointAcrossEngines(t *testing.T) {
	var refTrace []TraceEvent
	ref := fixtureNetOpts(t, DefaultParams(), ckptOpts(1, &refTrace)...)
	if err := ref.InstallFaults(&FaultSchedule{Events: []FaultEvent{
		{At: 4000, Kind: FaultLink, Link: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	mustRun(t, ref, unicastPlan(0, 7), 128)
	var buf bytes.Buffer
	if err := ref.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	var heapTrace []TraceEvent
	opts := append(ckptOpts(1, &heapTrace), WithEngine(EngineHeap))
	n := fixtureNetOpts(t, DefaultParams(), opts...)
	if err := n.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("Restore on heap backend: %v", err)
	}
	refMark := len(refTrace)
	sendProbe(t, ref, 1, 5, 128)
	if err := ref.Drain(0); err != nil {
		t.Fatal(err)
	}
	sendProbe(t, n, 1, 5, 128)
	if err := n.Drain(0); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(heapTrace, refTrace[refMark:]) {
		t.Fatalf("heap-backend continuation diverged: %d vs %d events", len(heapTrace), len(refTrace)-refMark)
	}
	if netDigest(n) != netDigest(ref) {
		t.Fatalf("digest diverged:\n got %s\nwant %s", netDigest(n), netDigest(ref))
	}
}
