package sim

import (
	"fmt"
	"hash/fnv"
	"io"

	"mcastsim/internal/event"
	"mcastsim/internal/snap"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// This file implements quiescent-point checkpoint/restore: serializing a
// Network's enumerable state to a compact, versioned binary snapshot and
// rebuilding an identical network from it (see DESIGN.md §19).
//
// The model is checkpointable exactly at quiescence: no message in
// flight, every switch buffer empty, every port released, every NI idle.
// At such a point the physical state of a network equals a freshly
// constructed one — channels hold full credits, line-free horizons are
// in the past — so the snapshot only needs the state that diverged from
// construction: clocks and counters, the arbitration RNG stream, fault
// masks and the routing swap that last reconfiguration performed, group
// membership, and the pending control-plane events (scheduled faults,
// membership changes, reconfiguration timers, retry timeouts). Restoring
// a snapshot into a virgin network of the same shape then continues the
// run with byte-identical traces, stats and tables relative to an
// uninterrupted execution, under any serial engine and any serial shard
// count.
//
// Pending events are serializable only when their payload is plain data.
// The allowed kinds are evFaultApply, evMembership and evReconfig
// (fixed-shape records re-allocated at restore), plus evMsgTimeout and
// evReclaim for completed work: a stale timeout's message is Done (the
// handler no-ops) and a reclaim's branch recycles into the pool, but
// both still advance the clock and the processed-event count when a
// later Drain pops them, so they are restored as placeholder records
// that reproduce exactly that. A pending evSched (an arbitrary driver
// closure) or any hot-path event makes the network non-quiescent and
// Checkpoint refuses with a *CheckpointBusyError.

// snapMagic and snapVersion head every network snapshot. Bump the
// version on any format change; Restore fails loudly on mismatch.
var snapMagic = [4]byte{'M', 'S', 'N', 'P'}

const snapVersion uint16 = 1

// Section tags of the snapshot body, in writing order.
const (
	secFingerprint uint8 = 1
	secClock       uint8 = 2
	secStats       uint8 = 3
	secRNG         uint8 = 4
	secFaults      uint8 = 5
	secGroups      uint8 = 6
	secPending     uint8 = 7
)

// CheckpointBusyError reports a Checkpoint attempt on a network that is
// not at a serializable quiescent point.
type CheckpointBusyError struct {
	At     event.Time
	Reason string
}

func (e *CheckpointBusyError) Error() string {
	return fmt.Sprintf("sim: checkpoint at t=%d refused: %s", e.At, e.Reason)
}

// SnapshotMismatchError reports a Restore into a network whose shape
// (topology, parameters, routing options, set representation) differs
// from the one the snapshot was taken on.
type SnapshotMismatchError struct {
	Field string
	Got   string
	Want  string
}

func (e *SnapshotMismatchError) Error() string {
	return fmt.Sprintf("sim: snapshot mismatch on %s: network has %s, snapshot was taken with %s", e.Field, e.Got, e.Want)
}

// kindName labels an event kind in diagnostics.
func kindName(k event.Kind) string {
	switch k {
	case evPump:
		return "evPump"
	case evDeliver:
		return "evDeliver"
	case evCredit:
		return "evCredit"
	case evRoute:
		return "evRoute"
	case evTail:
		return "evTail"
	case evMsgStart:
		return "evMsgStart"
	case evMsgTimeout:
		return "evMsgTimeout"
	case evReconfig:
		return "evReconfig"
	case evFaultApply:
		return "evFaultApply"
	case evSendSoft:
		return "evSendSoft"
	case evSendDMA:
		return "evSendDMA"
	case evNICharged:
		return "evNICharged"
	case evNIRecvProc:
		return "evNIRecvProc"
	case evNIRecvDMA:
		return "evNIRecvDMA"
	case evDestDone:
		return "evDestDone"
	case evReclaim:
		return "evReclaim"
	case evObsFlush:
		return "evObsFlush"
	case evMembership:
		return "evMembership"
	case evSched:
		return "evSched"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// --- fingerprint ---

// fingerprint digests the network shape a snapshot is only valid for:
// topology wiring, timing parameters, the requested routing options, and
// the destination-set representation. The shard count is deliberately
// excluded — serial equivalence makes a snapshot portable across serial
// shard counts.
type fingerprint struct {
	topo    uint64
	params  uint64
	routing uint64
	sparse  bool
}

func (n *Network) fingerprint() fingerprint {
	return fingerprint{
		topo:    topoHash(n.topo),
		params:  paramsHash(n.params),
		routing: routingHash(n.origOpts),
		sparse:  n.sparse,
	}
}

func topoHash(t *topology.Topology) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	word(int64(t.NumSwitches))
	word(int64(t.PortsPerSwitch))
	word(int64(t.NumNodes))
	for s := 0; s < t.NumSwitches; s++ {
		for p := 0; p < t.PortsPerSwitch; p++ {
			e := t.Conn[s][p]
			word(int64(e.Kind)<<48 | int64(e.Switch)<<24 | int64(e.Port)<<8 ^ int64(e.Node))
		}
	}
	for _, lk := range t.Links {
		word(int64(lk.A)<<40 | int64(lk.APort)<<32 | int64(lk.B)<<8 | int64(lk.BPort))
	}
	return h.Sum64()
}

func paramsHash(p Params) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", p)
	return h.Sum64()
}

func routingHash(o updown.Options) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%v/%d/%v/%v", o.Root, o.CenterRoot, o.Tree, o.DeadLinks, o.DeadSwitches)
	return h.Sum64()
}

// --- quiescence ---

// snapshotPendingEvents enumerates the pending schedule in realized
// dispatch order under either serial engine.
func (n *Network) snapshotPendingEvents() []event.PendingEvent {
	if n.lanes != nil {
		return n.lanes.SnapshotPending()
	}
	return n.queue.SnapshotPending()
}

// checkQuiescent verifies the network is at a serializable quiescent
// point and returns the classified pending events on success.
func (n *Network) checkQuiescent() ([]event.PendingEvent, error) {
	now := n.nowAt()
	busy := func(format string, args ...any) error {
		return &CheckpointBusyError{At: now, Reason: fmt.Sprintf(format, args...)}
	}
	if n.running.Load() {
		return nil, busy("event loop is running")
	}
	if v := n.outstanding.Load(); v != 0 {
		return nil, busy("%d messages in flight", v)
	}
	if n.invariant != nil {
		return nil, busy("routing invariant violation recorded: %v", n.invariant)
	}
	for _, x := range n.nis {
		if len(x.rxFlits) != 0 || len(x.rxMsgs) != 0 || len(x.rxHeld) != 0 ||
			len(x.ready) != 0 || len(x.injWait) != 0 || x.streaming {
			return nil, busy("NI %d has residual send/receive state", x.node)
		}
		if x.hostFree > now || x.niFree > now || x.busFree > now {
			return nil, busy("NI %d resources busy past t=%d", x.node, now)
		}
	}
	for s, st := range n.switches {
		for p, b := range st.inBufs {
			if b != nil && (b.used != 0 || len(b.occupants) != 0) {
				return nil, busy("buffer %d/%d not empty", s, p)
			}
		}
		for p, op := range st.outPorts {
			if op == nil {
				continue
			}
			if op.holder != nil || len(op.queue) != 0 {
				return nil, busy("port %d/%d allocated", s, p)
			}
			if ch := op.ch; ch != nil && (ch.sender != nil || ch.lineFree > now) {
				return nil, busy("channel %s busy", ch.label)
			}
		}
	}
	for _, x := range n.nis {
		if x.inj.sender != nil || x.inj.lineFree > now {
			return nil, busy("injection line of node %d busy", x.node)
		}
	}
	pending := n.snapshotPendingEvents()
	for _, p := range pending {
		switch p.Kind {
		case evFaultApply, evMembership, evReconfig, evReclaim:
			// Fixed-shape records or completed-work placeholders.
		case evMsgTimeout:
			if m, ok := p.Actor.(*Message); !ok || !m.Done() {
				return nil, busy("pending %s for an unfinished message", kindName(p.Kind))
			}
		default:
			return nil, busy("pending %s event at t=%d", kindName(p.Kind), p.At)
		}
	}
	return pending, nil
}

// --- checkpoint ---

// Checkpoint serializes the network's state to w. The network must be at
// a quiescent point — no message outstanding, all switch and NI
// resources idle, only reconstructible control-plane events pending —
// or a *CheckpointBusyError is returned. The parallel engine does not
// support checkpointing (its per-shard serialization is not the serial
// order the snapshot format captures). Checkpoint does not mutate the
// network; the run may simply continue afterwards.
func (n *Network) Checkpoint(wr io.Writer) error {
	if err := n.fastModeCheck("checkpoint/restore (Checkpoint)"); err != nil {
		return err
	}
	pending, err := n.checkQuiescent()
	if err != nil {
		return err
	}
	fp := n.fingerprint()
	w := snap.NewWriter(wr, snapMagic, snapVersion)
	w.Section(secFingerprint, func(w *snap.Writer) {
		w.U64(fp.topo)
		w.U64(fp.params)
		w.U64(fp.routing)
		w.Bool(fp.sparse)
		w.Int(n.topo.NumNodes)
		w.Int(n.topo.NumSwitches)
		w.Int(len(n.topo.Links))
	})
	w.Section(secClock, func(w *snap.Writer) {
		w.Varint(int64(n.nowAt()))
		w.U64(n.EventsProcessed())
		w.Varint(n.nextWormID)
		w.Varint(n.nextMsgID)
		w.Varint(n.progress)
		w.Int(n.reconfigEpoch)
		w.Int(n.routingEpoch)
		w.Bool(n.faulted)
		w.Bool(n.partitioned)
	})
	w.Section(secStats, func(w *snap.Writer) {
		s := n.stats
		for _, v := range []int64{
			s.WormsCreated, s.PacketsInjected, s.FlitHops, s.FlitsDelivered,
			s.PacketsAtNI, s.PacketsToHost, s.MessagesSent, s.MessagesDone,
			s.FlitsDropped, s.WormsKilled, s.DestsFailed, s.Reconfigs,
			s.MembershipEvents, s.StaleDeliveries, s.MissedDeliveries,
		} {
			w.Varint(v)
		}
	})
	w.Section(secRNG, func(w *snap.Writer) {
		for _, v := range n.arb.State() {
			w.U64(v)
		}
	})
	w.Section(secFaults, func(w *snap.Writer) {
		w.Bitmap(n.deadLink)
		w.Bitmap(n.deadSwitch)
		w.Bool(n.lastSwapOpts != nil)
		if o := n.lastSwapOpts; o != nil {
			w.Int(int(o.Root))
			w.Bool(o.CenterRoot)
			w.U8(uint8(o.Tree))
			w.Ints(o.DeadLinks)
			ds := make([]int, len(o.DeadSwitches))
			for i, s := range o.DeadSwitches {
				ds[i] = int(s)
			}
			w.Ints(ds)
		}
	})
	w.Section(secGroups, func(w *snap.Writer) {
		w.Int(len(n.groups))
		for _, g := range n.groups {
			w.String(g.name)
			w.Int(g.epoch)
			w.Varint(g.joins)
			w.Varint(g.leaves)
			w.Varint(g.stale)
			w.Varint(g.missed)
			w.Varint(g.repairs)
			w.Varint(g.repairEdges)
			w.Varint(int64(g.repairCycles))
			members := make([]int, 0, g.members.Count())
			g.members.ForEach(func(i int) bool {
				members = append(members, i)
				return true
			})
			w.Ints(members)
		}
	})
	w.Section(secPending, func(w *snap.Writer) {
		w.Int(len(pending))
		for _, p := range pending {
			w.U8(uint8(p.Kind))
			w.Varint(int64(p.At))
			switch p.Kind {
			case evFaultApply:
				fe := p.Actor.(*FaultEvent)
				w.U8(uint8(fe.Kind))
				w.Int(fe.Link)
				w.Int(int(fe.Switch))
			case evMembership:
				me := p.Actor.(*MembershipEvent)
				w.Int(int(me.Group))
				w.Int(int(me.Node))
				w.U8(uint8(me.Kind))
			case evReconfig:
				w.Varint(p.Arg)
			}
		}
	})
	return w.Close()
}

// --- restore ---

// netSnapshot is the fully decoded snapshot, staged before any network
// state is touched so a corrupt stream can never leave a partial
// restore.
type netSnapshot struct {
	fp          fingerprint
	numNodes    int
	numSwitches int
	numLinks    int

	now           event.Time
	processed     uint64
	nextWormID    int64
	nextMsgID     int64
	progress      int64
	reconfigEpoch int
	routingEpoch  int
	faulted       bool
	partitioned   bool

	stats    Stats
	rngState [4]uint64

	deadLink   []bool
	deadSwitch []bool
	swapped    bool
	swapOpts   updown.Options

	groups  []groupSnapshot
	pending []pendingSnapshot
}

type groupSnapshot struct {
	name         string
	epoch        int
	joins        int64
	leaves       int64
	stale        int64
	missed       int64
	repairs      int64
	repairEdges  int64
	repairCycles event.Time
	members      []int
}

type pendingSnapshot struct {
	kind   event.Kind
	at     event.Time
	fault  FaultEvent
	member MembershipEvent
	arg    int64
}

func decodeSnapshot(rd io.Reader) (*netSnapshot, error) {
	r, err := snap.NewReader(rd, snapMagic, snapVersion)
	if err != nil {
		return nil, err
	}
	s := &netSnapshot{}
	r.Section(secFingerprint, func(r *snap.Reader) {
		s.fp.topo = r.U64()
		s.fp.params = r.U64()
		s.fp.routing = r.U64()
		s.fp.sparse = r.Bool()
		s.numNodes = r.Int()
		s.numSwitches = r.Int()
		s.numLinks = r.Int()
	})
	r.Section(secClock, func(r *snap.Reader) {
		s.now = event.Time(r.Varint())
		s.processed = r.U64()
		s.nextWormID = r.Varint()
		s.nextMsgID = r.Varint()
		s.progress = r.Varint()
		s.reconfigEpoch = r.Int()
		s.routingEpoch = r.Int()
		s.faulted = r.Bool()
		s.partitioned = r.Bool()
	})
	r.Section(secStats, func(r *snap.Reader) {
		st := &s.stats
		for _, f := range []*int64{
			&st.WormsCreated, &st.PacketsInjected, &st.FlitHops, &st.FlitsDelivered,
			&st.PacketsAtNI, &st.PacketsToHost, &st.MessagesSent, &st.MessagesDone,
			&st.FlitsDropped, &st.WormsKilled, &st.DestsFailed, &st.Reconfigs,
			&st.MembershipEvents, &st.StaleDeliveries, &st.MissedDeliveries,
		} {
			*f = r.Varint()
		}
	})
	r.Section(secRNG, func(r *snap.Reader) {
		for i := range s.rngState {
			s.rngState[i] = r.U64()
		}
	})
	r.Section(secFaults, func(r *snap.Reader) {
		s.deadLink = r.Bitmap()
		s.deadSwitch = r.Bitmap()
		s.swapped = r.Bool()
		if s.swapped {
			s.swapOpts.Root = topology.SwitchID(r.Int())
			s.swapOpts.CenterRoot = r.Bool()
			s.swapOpts.Tree = updown.TreePolicy(r.U8())
			s.swapOpts.DeadLinks = r.Ints()
			for _, d := range r.Ints() {
				s.swapOpts.DeadSwitches = append(s.swapOpts.DeadSwitches, topology.SwitchID(d))
			}
		}
	})
	r.Section(secGroups, func(r *snap.Reader) {
		count := r.Int()
		if count < 0 || count > s.numNodes+1 {
			r.Fail("groups", fmt.Errorf("implausible group count %d", count))
			return
		}
		for i := 0; i < count && r.Err() == nil; i++ {
			g := groupSnapshot{
				name:   r.String(),
				epoch:  r.Int(),
				joins:  r.Varint(),
				leaves: r.Varint(),
				stale:  r.Varint(),
				missed: r.Varint(),
			}
			g.repairs = r.Varint()
			g.repairEdges = r.Varint()
			g.repairCycles = event.Time(r.Varint())
			g.members = r.Ints()
			s.groups = append(s.groups, g)
		}
	})
	r.Section(secPending, func(r *snap.Reader) {
		count := r.Int()
		if count < 0 {
			r.Fail("pending", fmt.Errorf("negative pending count %d", count))
			return
		}
		for i := 0; i < count && r.Err() == nil; i++ {
			p := pendingSnapshot{kind: event.Kind(r.U8()), at: event.Time(r.Varint())}
			switch p.kind {
			case evFaultApply:
				p.fault = FaultEvent{
					At:     p.at,
					Kind:   FaultKind(r.U8()),
					Link:   r.Int(),
					Switch: topology.SwitchID(r.Int()),
				}
			case evMembership:
				p.member = MembershipEvent{
					At:    p.at,
					Group: GroupID(r.Int()),
					Node:  topology.NodeID(r.Int()),
					Kind:  MembershipKind(r.U8()),
				}
			case evReconfig:
				p.arg = r.Varint()
			case evMsgTimeout, evReclaim:
			default:
				r.Fail("pending", fmt.Errorf("unserializable pending kind %s", kindName(p.kind)))
				return
			}
			s.pending = append(s.pending, p)
		}
	})
	if err := r.ExpectEOF(); err != nil {
		return nil, err
	}
	return s, nil
}

// validate cross-checks the decoded snapshot against the restore target.
func (s *netSnapshot) validate(n *Network) error {
	fp := n.fingerprint()
	mismatch := func(field string, got, want any) error {
		return &SnapshotMismatchError{Field: field, Got: fmt.Sprint(got), Want: fmt.Sprint(want)}
	}
	if s.numNodes != n.topo.NumNodes || s.numSwitches != n.topo.NumSwitches || s.numLinks != len(n.topo.Links) {
		return mismatch("topology shape",
			fmt.Sprintf("%d nodes/%d switches/%d links", n.topo.NumNodes, n.topo.NumSwitches, len(n.topo.Links)),
			fmt.Sprintf("%d nodes/%d switches/%d links", s.numNodes, s.numSwitches, s.numLinks))
	}
	if s.fp.topo != fp.topo {
		return mismatch("topology wiring digest", fp.topo, s.fp.topo)
	}
	if s.fp.params != fp.params {
		return mismatch("params digest", fp.params, s.fp.params)
	}
	if s.fp.routing != fp.routing {
		return mismatch("routing options digest", fp.routing, s.fp.routing)
	}
	if s.fp.sparse != fp.sparse {
		return mismatch("destination-set representation", fp.sparse, s.fp.sparse)
	}
	if s.deadLink != nil && len(s.deadLink) != len(n.topo.Links) {
		return mismatch("dead-link mask length", len(n.topo.Links), len(s.deadLink))
	}
	if s.deadSwitch != nil && len(s.deadSwitch) != n.topo.NumSwitches {
		return mismatch("dead-switch mask length", n.topo.NumSwitches, len(s.deadSwitch))
	}
	for gi, g := range s.groups {
		for _, m := range g.members {
			if m < 0 || m >= n.topo.NumNodes {
				return &snap.CorruptError{Context: "groups", Err: fmt.Errorf("group %d member %d out of range", gi, m)}
			}
		}
	}
	for i, p := range s.pending {
		switch p.kind {
		case evFaultApply:
			fe := p.fault
			switch fe.Kind {
			case FaultLink, RepairLink:
				if fe.Link < 0 || fe.Link >= len(n.topo.Links) {
					return &snap.CorruptError{Context: "pending", Err: fmt.Errorf("event %d: link %d out of range", i, fe.Link)}
				}
			case FaultSwitch:
				if int(fe.Switch) < 0 || int(fe.Switch) >= n.topo.NumSwitches {
					return &snap.CorruptError{Context: "pending", Err: fmt.Errorf("event %d: switch %d out of range", i, fe.Switch)}
				}
			default:
				return &snap.CorruptError{Context: "pending", Err: fmt.Errorf("event %d: unknown fault kind %d", i, fe.Kind)}
			}
		case evMembership:
			me := p.member
			if int(me.Group) < 0 || int(me.Group) >= len(s.groups) {
				return &snap.CorruptError{Context: "pending", Err: fmt.Errorf("event %d: group %d not in snapshot", i, me.Group)}
			}
			if int(me.Node) < 0 || int(me.Node) >= n.topo.NumNodes {
				return &snap.CorruptError{Context: "pending", Err: fmt.Errorf("event %d: node %d out of range", i, me.Node)}
			}
		}
	}
	return nil
}

// Restore rebuilds the network's state from a snapshot written by
// Checkpoint. The receiver must be virgin — freshly constructed over the
// same topology, parameters and routing options, with no event run, no
// message sent, no fault injected and no group registered — or an error
// is returned before anything is touched. The whole snapshot is decoded
// and validated first, so a corrupt or truncated stream can never leave
// a partially restored network.
//
// Groups are recreated from the snapshot (same IDs, names, membership
// and counters); per-group OnDelta hooks are process state and must be
// re-installed by the caller afterwards.
func (n *Network) Restore(rd io.Reader) error {
	if err := n.fastModeCheck("checkpoint/restore (Restore)"); err != nil {
		return err
	}
	if n.running.Load() {
		return fmt.Errorf("sim: Restore while the event loop is running")
	}
	if n.nowAt() != 0 || n.EventsProcessed() != 0 || n.queueLen() != 0 ||
		n.outstanding.Load() != 0 || n.nextMsgID != 0 || n.nextWormID != 0 ||
		n.faulted || n.deadLink != nil || len(n.groups) != 0 ||
		n.stats != (Stats{}) {
		return fmt.Errorf("sim: Restore requires a virgin network (construct a fresh one with New)")
	}
	s, err := decodeSnapshot(rd)
	if err != nil {
		return err
	}
	if err := s.validate(n); err != nil {
		return err
	}

	// --- apply; nothing below can fail except the routing rebuild,
	// which runs first. ---
	if s.swapped {
		rt2, err := updown.NewWithOptions(n.topo, s.swapOpts)
		if err != nil {
			return fmt.Errorf("sim: restoring reconfigured routing tables: %w", err)
		}
		n.swapRouting(rt2)
		swapped := s.swapOpts
		n.lastSwapOpts = &swapped
	}
	n.stats = s.stats
	n.nextWormID = s.nextWormID
	n.nextMsgID = s.nextMsgID
	n.progress = s.progress
	n.reconfigEpoch = s.reconfigEpoch
	n.faulted = s.faulted
	n.partitioned = s.partitioned
	n.arb.SetState(s.rngState)
	if s.deadLink != nil {
		n.ensureFaultState()
		copy(n.deadLink, s.deadLink)
		copy(n.deadSwitch, s.deadSwitch)
		n.restoreDeadTopology()
	}
	// routingEpoch last: the mask copy and table swap above bump it.
	n.routingEpoch = s.routingEpoch

	for _, gs := range s.groups {
		g, err := n.NewGroup(gs.name, nil)
		if err != nil {
			return fmt.Errorf("sim: restoring group %q: %w", gs.name, err)
		}
		for _, m := range gs.members {
			g.members.Add(m)
		}
		g.epoch = gs.epoch
		g.joins = gs.joins
		g.leaves = gs.leaves
		g.stale = gs.stale
		g.missed = gs.missed
		g.repairs = gs.repairs
		g.repairEdges = gs.repairEdges
		g.repairCycles = gs.repairCycles
	}

	// Rewind the engine to the snapshot clock, then re-post the pending
	// schedule in realized order: relative dispatch order is preserved,
	// and the re-posts draw the lowest sequence numbers — exactly the
	// ordering they had in the uninterrupted run, where they were posted
	// before any event the continuation will create.
	if n.lanes != nil {
		n.lanes.ResetTo(s.now, s.processed)
	} else {
		n.queue.ResetTo(s.now, s.processed)
	}
	for i := range s.pending {
		p := &s.pending[i]
		switch p.kind {
		case evFaultApply:
			fe := p.fault
			n.ctlPost(p.at, evFaultApply, &fe, 0)
		case evMembership:
			me := p.member
			n.ctlPost(p.at, evMembership, &me, 0)
		case evReconfig:
			n.ctlPost(p.at, evReconfig, nil, p.arg)
		case evMsgTimeout:
			// The message completed before the checkpoint: the handler
			// no-ops on a Done message, but popping the event still
			// advances the clock and the processed count exactly as the
			// stale timeout would have.
			n.ctlPost(p.at, evMsgTimeout, &Message{}, 0)
		case evReclaim:
			// The branch's work is done; only the pop itself matters.
			// A placeholder branch (holding the sole reference to a
			// placeholder worm) recycles into the pools exactly like a
			// quarantined real one.
			sh := n.sh0()
			br := sh.getBranch()
			br.done = true
			br.w = sh.getWorm()
			wormRef(br.w)
			n.ctlPost(p.at, evReclaim, br, 0)
		}
	}
	return nil
}

// restoreDeadTopology re-marks channels, ports and NIs dead from the
// restored fault masks. Structural only: the teardown work severChannel
// performs on a live network (killing worms, draining flits, tracing)
// already happened before the checkpoint, and the quiescent model state
// of a fresh network needs nothing but the flags.
func (n *Network) restoreDeadTopology() {
	markDead := func(op *outPort) {
		if op == nil {
			return
		}
		op.dead = true
		if op.ch != nil {
			op.ch.dead = true
		}
	}
	for li, dead := range n.deadLink {
		if !dead {
			continue
		}
		lk := n.topo.Links[li]
		markDead(n.switches[lk.A].outPorts[lk.APort])
		markDead(n.switches[lk.B].outPorts[lk.BPort])
	}
	t := n.topo
	for s := range n.deadSwitch {
		if !n.deadSwitch[s] {
			continue
		}
		for p := 0; p < t.PortsPerSwitch; p++ {
			switch e := t.Conn[s][p]; e.Kind {
			case topology.ToSwitch:
				markDead(n.switches[e.Switch].outPorts[e.Port])
			case topology.ToNode:
				n.nis[e.Node].inj.dead = true
			}
			markDead(n.switches[s].outPorts[p])
		}
		for _, node := range n.nodesAt[s] {
			x := n.nis[node]
			x.dead = true
			x.inj.dead = true
		}
	}
}
