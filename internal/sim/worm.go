package sim

import (
	"fmt"

	"mcastsim/internal/bitset"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// worm is one packet's wire entity as it exists on a particular hop. Switch
// replication creates child worms that share the Message but carry their own
// remaining header state and stream length.
type worm struct {
	id   int64
	kind WormKind
	msg  *Message
	pkt  int // packet index within the message

	// len is the stream length in flits as it arrives at the current hop
	// (header-so-far + payload). Path worms shrink as segments strip.
	len int

	// phase is the up*/down* routing phase carried by the worm.
	phase updown.Phase

	dest    topology.NodeID // WormUnicast
	destSet *bitset.Set     // WormTree: remaining destinations
	path    []PathSeg       // WormPath: remaining segments

	// dead marks a worm torn down by the fault layer: in-flight flits are
	// drained and dropped on arrival, and the worm is never delivered.
	dead bool

	// refs counts the lifecycle legs still naming this worm (producing
	// branch, assembling occupant, assembling NI); the last release
	// recycles the worm and its destination set (see pool.go).
	refs int32
}

func (w *worm) String() string {
	switch w.kind {
	case WormUnicast:
		return fmt.Sprintf("worm%d[uni msg%d pkt%d ->%d len%d]", w.id, w.msg.ID, w.pkt, w.dest, w.len)
	case WormTree:
		return fmt.Sprintf("worm%d[tree msg%d pkt%d dests%v len%d]", w.id, w.msg.ID, w.pkt, w.destSet.Indices(), w.len)
	default:
		return fmt.Sprintf("worm%d[path msg%d pkt%d segs%d len%d]", w.id, w.msg.ID, w.pkt, len(w.path), w.len)
	}
}

// Header sizing (flits; flit = 1 byte). Every worm starts with a 1-flit tag
// identifying its kind (paper Fig. 5(b) shows the tag field).

// UnicastHeaderFlits is the wire header of a unicast worm: tag + node ID.
const UnicastHeaderFlits = 2

// TreeHeaderFlits returns the header size of a tree worm in an n-node
// system: tag + N-bit destination string (paper §3.2.3: header cost grows
// with system size).
func TreeHeaderFlits(numNodes int) int {
	return 1 + (numNodes+7)/8
}

// PathSegFlits returns the per-segment header size in a system with
// portsPerSwitch-port switches: node-ID field + port-mask field.
func PathSegFlits(portsPerSwitch int) int {
	return 1 + (portsPerSwitch+7)/8
}

// PathHeaderFlits returns the header size of a path worm with the given
// number of segments: tag + per-segment fields. Unlike the tree header it
// is independent of system size (paper §3.3).
func PathHeaderFlits(segments, portsPerSwitch int) int {
	return 1 + segments*PathSegFlits(portsPerSwitch)
}

// headerFlits computes the header length for a spec in this network.
func (n *Network) headerFlits(spec *WormSpec) int {
	switch spec.Kind {
	case WormUnicast:
		return UnicastHeaderFlits
	case WormTree:
		return TreeHeaderFlits(n.topo.NumNodes)
	case WormPath:
		return PathHeaderFlits(len(spec.Path), n.topo.PortsPerSwitch)
	default:
		panic("sim: unknown worm kind")
	}
}

// payloadFlits returns packet pkt's payload size for message m (the last
// packet may be partial).
func (n *Network) payloadFlits(m *Message, pkt int) int {
	rem := m.Flits - pkt*n.params.PacketFlits
	if rem > n.params.PacketFlits {
		return n.params.PacketFlits
	}
	return rem
}

// newWorm instantiates packet pkt of spec for message m, as injected at the
// source (full header present, phase fresh).
func (n *Network) newWorm(m *Message, spec *WormSpec, pkt int) *worm {
	w := n.getWorm()
	w.id = n.nextWormID
	w.kind = spec.Kind
	w.msg = m
	w.pkt = pkt
	w.len = n.headerFlits(spec) + n.payloadFlits(m, pkt)
	w.phase = updown.PhaseUp
	n.nextWormID++
	switch spec.Kind {
	case WormUnicast:
		w.dest = spec.Dest
	case WormTree:
		w.destSet = n.getSet()
		for _, d := range spec.DestSet {
			w.destSet.Add(int(d))
		}
	case WormPath:
		w.path = spec.Path
	}
	n.stats.WormsCreated++
	return w
}

// child clones w for a replication branch: the child carries the stream
// that leaves the branch (length len minus the flits absorbed at this
// switch) and its own header state.
func (w *worm) child(n *Network, skipped int) *worm {
	c := w.childSet(n, skipped, nil)
	if w.destSet != nil {
		c.destSet = n.getSet()
		c.destSet.CopyFrom(w.destSet)
	}
	return c
}

// childSet clones w like child but installs ds — a pooled set whose
// ownership transfers to the child — as the destination set directly,
// skipping the copy-then-overwrite the tree planner would otherwise pay.
func (w *worm) childSet(n *Network, skipped int, ds *bitset.Set) *worm {
	c := n.getWorm()
	*c = *w
	c.refs = 0
	c.destSet = ds
	c.id = n.nextWormID
	n.nextWormID++
	c.len = w.len - skipped
	n.stats.WormsCreated++
	return c
}
