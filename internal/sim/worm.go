package sim

import (
	"fmt"

	"mcastsim/internal/bitset"
	"mcastsim/internal/destset"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// worm is one packet's wire entity as it exists on a particular hop. Switch
// replication creates child worms that share the Message but carry their own
// remaining header state and stream length.
type worm struct {
	id   int64
	kind WormKind
	msg  *Message
	pkt  int // packet index within the message

	// len is the stream length in flits as it arrives at the current hop
	// (header-so-far + payload). Path worms shrink as segments strip.
	len int

	// phase is the up*/down* routing phase carried by the worm.
	phase updown.Phase

	dest    topology.NodeID // WormUnicast
	destSet dset            // WormTree: remaining destinations
	path    []PathSeg       // WormPath: remaining segments

	// dead marks a worm torn down by the fault layer: in-flight flits are
	// drained and dropped on arrival, and the worm is never delivered.
	dead bool

	// refs counts the lifecycle legs still naming this worm (producing
	// branch, assembling occupant, assembling NI); the last release
	// recycles the worm and its destination set (see pool.go).
	refs int32
}

func (w *worm) String() string {
	switch w.kind {
	case WormUnicast:
		return fmt.Sprintf("worm%d[uni msg%d pkt%d ->%d len%d]", w.id, w.msg.ID, w.pkt, w.dest, w.len)
	case WormTree:
		return fmt.Sprintf("worm%d[tree msg%d pkt%d dests%v len%d]", w.id, w.msg.ID, w.pkt, w.destSet.indices(), w.len)
	default:
		return fmt.Sprintf("worm%d[path msg%d pkt%d segs%d len%d]", w.id, w.msg.ID, w.pkt, len(w.path), w.len)
	}
}

// Header sizing (flits; flit = 1 byte). Every worm starts with a 1-flit tag
// identifying its kind (paper Fig. 5(b) shows the tag field).

// UnicastHeaderFlits is the wire header of a unicast worm at the paper's
// system sizes: tag + 1-byte node ID. Beyond 256 endpoints the id field
// widens; use UnicastHeaderFlitsFor.
const UnicastHeaderFlits = 2

// IDBytes returns the id-field width for a system with the given
// endpoint count (nodes + switches, since path stops address either): 1
// byte covers the paper's sizes, 2 bytes the datacenter tiers. The wire
// codec (package wire) caps the space at 65536.
func IDBytes(endpoints int) int {
	if endpoints <= 256 {
		return 1
	}
	return 2
}

// UnicastHeaderFlitsFor returns the unicast header size in a system of
// the given shape: tag + id. Equals UnicastHeaderFlits at paper sizes.
func UnicastHeaderFlitsFor(numNodes, numSwitches int) int {
	return 1 + IDBytes(numNodes+numSwitches)
}

// TreeHeaderFlits returns the header size of a flat-coded tree worm in an
// n-node system: tag + N-bit destination string (paper §3.2.3: header
// cost grows with system size).
func TreeHeaderFlits(numNodes int) int {
	return 1 + (numNodes+7)/8
}

// TreeIvalHeaderFlits returns the header size of an interval-coded tree
// worm carrying exactly the destinations in set: tag + run-list encoding
// (package destset). Unlike the flat header it depends on the set's run
// structure, not the universe.
func TreeIvalHeaderFlits(set *bitset.Set) int {
	return 1 + destset.IvalBytesOf(set)
}

// PathSegFlits returns the per-segment header size in a system with
// portsPerSwitch-port switches at the paper's sizes: 1-byte id field +
// port-mask field. Beyond 256 endpoints use PathSegFlitsFor.
func PathSegFlits(portsPerSwitch int) int {
	return 1 + (portsPerSwitch+7)/8
}

// PathSegFlitsFor is the size-aware PathSegFlits: id field (widened past
// 256 endpoints) + port mask.
func PathSegFlitsFor(portsPerSwitch, numNodes, numSwitches int) int {
	return IDBytes(numNodes+numSwitches) + (portsPerSwitch+7)/8
}

// PathHeaderFlits returns the header size of a path worm with the given
// number of segments at the paper's sizes: tag + per-segment fields.
// Unlike the tree header it is independent of system size (§3.3).
func PathHeaderFlits(segments, portsPerSwitch int) int {
	return 1 + segments*PathSegFlits(portsPerSwitch)
}

// PathHeaderFlitsFor is the size-aware PathHeaderFlits.
func PathHeaderFlitsFor(segments, portsPerSwitch, numNodes, numSwitches int) int {
	return 1 + segments*PathSegFlitsFor(portsPerSwitch, numNodes, numSwitches)
}

// headerFlits computes the header length a freshly injected worm w
// carries in this network. Tree worms under the interval coding size by
// their actual destination set (already built on w); everything else
// sizes by system shape alone. At the paper's sizes and the flat coding
// every value equals the original constants, so historical tables and
// goldens are unchanged.
func (n *Network) headerFlits(w *worm) int {
	switch w.kind {
	case WormUnicast:
		return UnicastHeaderFlitsFor(n.topo.NumNodes, n.topo.NumSwitches)
	case WormTree:
		if n.params.DestCoding == HeaderIval {
			return 1 + w.destSet.ivalHeaderBytes()
		}
		return TreeHeaderFlits(n.topo.NumNodes)
	case WormPath:
		return PathHeaderFlitsFor(len(w.path), n.topo.PortsPerSwitch, n.topo.NumNodes, n.topo.NumSwitches)
	default:
		panic("sim: unknown worm kind")
	}
}

// payloadFlits returns packet pkt's payload size for message m (the last
// packet may be partial).
func (n *Network) payloadFlits(m *Message, pkt int) int {
	rem := m.Flits - pkt*n.params.PacketFlits
	if rem > n.params.PacketFlits {
		return n.params.PacketFlits
	}
	return rem
}

// newWorm instantiates packet pkt of spec for message m, as injected at the
// source (full header present, phase fresh). Worm ids come from the
// shard's allocator: the shared counter in serial modes, a strided
// per-shard counter in fast mode (globally unique without
// coordination).
func (sh *shardState) newWorm(m *Message, spec *WormSpec, pkt int) *worm {
	n := sh.net
	w := sh.getWorm()
	w.id = *sh.wormID
	w.kind = spec.Kind
	w.msg = m
	w.pkt = pkt
	w.phase = updown.PhaseUp
	*sh.wormID += sh.wormStride
	switch spec.Kind {
	case WormUnicast:
		w.dest = spec.Dest
	case WormTree:
		w.destSet = sh.getDset()
		for _, d := range spec.DestSet {
			w.destSet.add(int(d))
		}
	case WormPath:
		w.path = spec.Path
	}
	// Sized after the destination set is built: the interval coding's
	// tree header depends on the set's run structure.
	w.len = n.headerFlits(w) + n.payloadFlits(m, pkt)
	sh.stats.WormsCreated++
	return w
}

// child clones w for a replication branch: the child carries the stream
// that leaves the branch (length len minus the flits absorbed at this
// switch) and its own header state.
func (w *worm) child(sh *shardState, skipped int) *worm {
	c := w.childSet(sh, skipped, dset{})
	if w.destSet.some() {
		c.destSet = sh.getDset()
		c.destSet.copyFrom(w.destSet)
	}
	return c
}

// childSet clones w like child but installs ds — a pooled set whose
// ownership transfers to the child — as the destination set directly,
// skipping the copy-then-overwrite the tree planner would otherwise pay.
func (w *worm) childSet(sh *shardState, skipped int, ds dset) *worm {
	c := sh.getWorm()
	// Field-by-field, not *c = *w: a whole-struct copy would read w.refs
	// non-atomically while another shard's decref may be in flight (the
	// child starts at zero refs regardless; the pool delivers it zeroed).
	c.kind = w.kind
	c.msg = w.msg
	c.pkt = w.pkt
	c.phase = w.phase
	c.dest = w.dest
	c.path = w.path
	c.dead = w.dead
	c.destSet = ds
	c.id = *sh.wormID
	*sh.wormID += sh.wormStride
	c.len = w.len - skipped
	sh.stats.WormsCreated++
	return c
}
