package sim

import "mcastsim/internal/obs"

// Option configures a Network at assembly time. Options replace the
// ad-hoc post-construction setters (SetTracer, NewWithEngine's extra
// constructor): New applies them after the topology is wired but before
// any event is posted, so an option can never observe a half-run network
// and the engine can be swapped while the queue is still empty.
type Option func(*netOptions)

// netOptions is the collected option state New applies. Application
// order is fixed (engine, tracer, obs) regardless of the order options
// are passed, so permuting a call's options cannot change behaviour.
type netOptions struct {
	engine    Engine
	engineSet bool
	tracer    func(TraceEvent)
	rec       *obs.Recorder
}

// WithEngine pins the scheduler backend. The calendar queue is the
// default production engine; the determinism suite pins EngineHeap to
// diff the two event streams.
func WithEngine(e Engine) Option {
	return func(o *netOptions) { o.engine = e; o.engineSet = true }
}

// WithTrace installs a sink receiving every TraceEvent. Passing nil
// disables tracing (the default).
func WithTrace(fn func(TraceEvent)) Option {
	return func(o *netOptions) { o.tracer = fn }
}

// WithObs attaches a telemetry recorder (see internal/obs). Passing nil
// leaves observability disabled, so call sites can thread an optional
// recorder straight through. The recorder samples at its configured
// cadence while messages are in flight; callers flush the tail interval
// with Network.FlushObs when the run ends.
func WithObs(r *obs.Recorder) Option {
	return func(o *netOptions) { o.rec = r }
}

// apply installs the collected options on the assembled network.
func (n *Network) applyOptions(o *netOptions) {
	if o.engineSet {
		n.queue.SetBackend(o.engine)
	}
	n.tracer = o.tracer
	if o.rec != nil {
		n.attachObs(o.rec)
	}
}
