package sim

import "mcastsim/internal/obs"

// Option configures a Network at assembly time. Options are the only
// construction surface (the old post-construction setters are gone):
// New applies them after the topology is wired but before any event is
// posted, so an option can never observe a half-run network and the
// engine can be swapped while the queue is still empty.
type Option func(*netOptions)

// netOptions is the collected option state New applies. Application
// order is fixed (shards, engine, tracer, obs) regardless of the order
// options are passed, so permuting a call's options cannot change
// behaviour.
type netOptions struct {
	engine     Engine
	engineSet  bool
	shards     int
	fastShards bool
	tracer     func(TraceEvent)
	rec        *obs.Recorder
}

// WithEngine pins the scheduler backend. The calendar queue is the
// default production engine; the determinism suite pins EngineHeap to
// diff the two event streams.
func WithEngine(e Engine) Option {
	return func(o *netOptions) { o.engine = e; o.engineSet = true }
}

// WithShards partitions the simulation into k shards running under the
// serial-equivalence PDES engine: per-shard event lanes merged in
// global (at, seq) order, one goroutine, with conservative-window and
// boundary-crossing accounting. Execution — traces, stats, RNG draws —
// is byte-identical to the single-queue engine for any k. k <= 1 keeps
// the plain engine. Combining shards > 1 with WithEngine(EngineHeap)
// makes New fail with *event.BackendShardError.
func WithShards(k int) Option {
	return func(o *netOptions) { o.shards = k; o.fastShards = false }
}

// WithFastShards partitions the simulation into k shards running under
// the parallel PDES engine: per-shard calendar queues on worker
// goroutines, synchronized in conservative windows of the minimum
// inter-shard link delay, exchanging boundary events at window edges.
// Deterministic for a fixed k, but a different serialization than the
// serial engines (per-shard arbitration RNG streams and entity pools).
// Model features that inherently mutate cross-shard state — faults,
// dynamic groups, retry, tracing, obs, mid-run Schedule closures,
// secondary-source host sends — are refused with typed errors.
func WithFastShards(k int) Option {
	return func(o *netOptions) { o.shards = k; o.fastShards = true }
}

// WithTrace installs a sink receiving every TraceEvent. Passing nil
// disables tracing (the default).
func WithTrace(fn func(TraceEvent)) Option {
	return func(o *netOptions) { o.tracer = fn }
}

// WithObs attaches a telemetry recorder (see internal/obs). Passing nil
// leaves observability disabled, so call sites can thread an optional
// recorder straight through. The recorder samples at its configured
// cadence while messages are in flight; callers flush the tail interval
// with Network.FlushObs when the run ends.
func WithObs(r *obs.Recorder) Option {
	return func(o *netOptions) { o.rec = r }
}

// apply installs the collected options on the assembled network. The
// heap-backend/shards conflict is rejected earlier, in New, before any
// engine state exists.
func (n *Network) applyOptions(o *netOptions) error {
	if o.engineSet && n.nshards == 1 {
		n.queue.SetBackend(o.engine)
	}
	if o.tracer != nil {
		if err := n.fastModeCheck("tracing (WithTrace)"); err != nil {
			return err
		}
	}
	n.tracer = o.tracer
	if o.rec != nil {
		if err := n.fastModeCheck("observability (WithObs)"); err != nil {
			return err
		}
		n.attachObs(o.rec)
	}
	return nil
}
