package sim

import (
	"mcastsim/internal/event"
	"mcastsim/internal/topology"
)

// TraceKind labels a TraceEvent.
type TraceKind uint8

const (
	// TraceInject: a packet stream starts on a node's injection line.
	TraceInject TraceKind = iota
	// TraceRoute: a worm's header was decoded at a switch input.
	TraceRoute
	// TraceGrant: a branch obtained its output port.
	TraceGrant
	// TraceTail: a branch sent its last flit.
	TraceTail
	// TraceDeliver: a packet fully assembled at a destination NI.
	TraceDeliver
	// TraceFault: a link or switch failed (or a link was repaired).
	TraceFault
	// TraceKill: a worm was torn down by the fault layer.
	TraceKill
	// TraceMember: a group membership event was applied (Node is the
	// joining/leaving node, Msg carries the GroupID, Pkt the
	// MembershipKind). Zero-churn runs emit none, so static traces are
	// unchanged.
	TraceMember
)

func (k TraceKind) String() string {
	switch k {
	case TraceInject:
		return "inject"
	case TraceRoute:
		return "route"
	case TraceGrant:
		return "grant"
	case TraceTail:
		return "tail"
	case TraceDeliver:
		return "deliver"
	case TraceFault:
		return "fault"
	case TraceKill:
		return "kill"
	case TraceMember:
		return "member"
	default:
		return "?"
	}
}

// TraceEvent is one observable step of a worm's life. The tracer runs
// synchronously inside the simulator; keep handlers cheap.
type TraceEvent struct {
	At   event.Time
	Kind TraceKind
	// Worm/Msg/Pkt identify the entity (worm IDs are unique per copy).
	Worm int64
	Msg  int64
	Pkt  int
	// Switch/Port locate switch-side events; Node locates NI-side events.
	Switch topology.SwitchID
	Port   int
	Node   topology.NodeID
}

func (n *Network) trace(ev TraceEvent) {
	if n.tracer != nil {
		ev.At = n.nowAt()
		n.tracer(ev)
	}
}
