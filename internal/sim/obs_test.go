package sim

import (
	"reflect"
	"testing"

	"mcastsim/internal/event"
	"mcastsim/internal/obs"
	"mcastsim/internal/topology"
)

// TestSteadyFlitPathZeroAllocObsEnabled extends the zero-alloc contract to
// the *enabled* telemetry path: with a recorder attached, the per-event
// probe sites (credit stalls, arbitration conflicts, NI deferrals) write
// into preallocated accumulators and must not allocate either. The flush
// cadence is pushed past the measured window so only probe writes — not
// Sample, which may allocate by design — land inside it.
func TestSteadyFlitPathZeroAllocObsEnabled(t *testing.T) {
	p := DefaultParams()
	const flits = 4096
	p.PacketFlits = flits
	n := fixtureNet(t, p)
	rec := obs.NewRecorder(obs.Config{Every: 1 << 40})
	n.attachObs(rec)
	if _, err := n.Send(unicastPlan(0, 7), flits, 0, nil); err != nil {
		t.Fatal(err)
	}
	const ringWarm = 1100 // > event ring size (1024)
	for n.queue.Len() > 0 && (n.stats.FlitHops < 512 || n.queue.Now() < ringWarm) {
		n.queue.Step()
	}
	if n.queue.Len() == 0 {
		t.Fatal("message finished before reaching steady state")
	}
	avg := testing.AllocsPerRun(1000, func() { n.queue.Step() })
	if avg != 0 {
		t.Fatalf("steady flit path with obs enabled allocates %v per event, want 0", avg)
	}
	if err := n.Drain(0); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// obsTestPlan is a small tree multicast from src to every other node; a
// few of these overlapped from different sources exercise replication,
// arbitration contention and credit backpressure on the fixture topology.
func obsTestPlan(src topology.NodeID) *Plan {
	var dests []topology.NodeID
	for n := topology.NodeID(0); n < 8; n++ {
		if n != src {
			dests = append(dests, n)
		}
	}
	return &Plan{
		Source: src,
		Dests:  dests,
		HostSends: map[topology.NodeID][]WormSpec{
			src: {{Kind: WormTree, DestSet: dests}},
		},
	}
}

// TestTraceByteIdentityWithObs pins the tentpole's non-interference
// guarantee: attaching a recorder must not move a single TraceEvent. The
// flush event reads state and never touches the arbitration RNG, so the
// traced streams with and without obs are identical element for element.
func TestTraceByteIdentityWithObs(t *testing.T) {
	run := func(rec *obs.Recorder) []TraceEvent {
		var evs []TraceEvent
		p := DefaultParams()
		n := fixtureNet(t, p)
		n.applyOptions(&netOptions{
			tracer: func(ev TraceEvent) { evs = append(evs, ev) },
			rec:    rec,
		})
		for i := 0; i < 3; i++ {
			if _, err := n.Send(obsTestPlan(topology.NodeID(i)), 256, n.Now()+event.Time(i*100), nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := n.Drain(0); err != nil {
			t.Fatal(err)
		}
		if err := n.CheckConservation(); err != nil {
			t.Fatal(err)
		}
		n.FlushObs()
		return evs
	}
	plain := run(nil)
	traced := run(obs.NewRecorder(obs.Config{Every: 64}))
	if len(plain) == 0 {
		t.Fatal("no trace events recorded")
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("trace streams diverged: %d events without obs, %d with", len(plain), len(traced))
	}
}

// TestObsReconciliation checks the telemetry's accounting invariant on a
// contended multi-message run: the summed per-channel flit series equals
// the simulator's own Stats.FlitHops, and the engine event series equals
// EventsProcessed — both exactly, given the final flush.
func TestObsReconciliation(t *testing.T) {
	p := DefaultParams()
	p.BufferFlits = 4 // shallow buffers so the storm exercises credit stalls
	n := fixtureNet(t, p)
	rec := obs.NewRecorder(obs.Config{Every: 128})
	n.attachObs(rec)
	for i := 0; i < 4; i++ {
		if _, err := n.Send(obsTestPlan(topology.NodeID(2*i)), 512, n.Now()+event.Time(i*50), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Drain(0); err != nil {
		t.Fatal(err)
	}
	n.FlushObs()
	b := rec.Bundle("test")
	if len(b.Snapshots) < 2 {
		t.Fatalf("expected a multi-snapshot series, got %d", len(b.Snapshots))
	}
	if got, want := b.TotalFlits(), int64(n.Stats().FlitHops); got != want {
		t.Fatalf("summed ChanFlits %d != Stats.FlitHops %d", got, want)
	}
	var hops int64
	var events uint64
	for _, s := range b.Snapshots {
		hops += s.FlitHops
		events += s.Events
	}
	if hops != int64(n.Stats().FlitHops) {
		t.Fatalf("summed FlitHops series %d != Stats.FlitHops %d", hops, n.Stats().FlitHops)
	}
	if events != n.EventsProcessed() {
		t.Fatalf("summed Events series %d != EventsProcessed %d", events, n.EventsProcessed())
	}
	// The contended tree storm must actually exercise the probe sites.
	var stalls int64
	for _, s := range b.Snapshots {
		for _, v := range s.ChanStalls {
			stalls += v
		}
	}
	if stalls == 0 {
		t.Log("no credit stalls observed (acceptable, but the cell is meant to contend)")
	}
}

// TestObsTickTerminates guards the scheduling rule that keeps telemetry
// from wedging a run: the flush tick re-arms only while model events are
// outstanding, so a drained network ends with an empty queue and a fresh
// Send re-arms sampling for the next run segment.
func TestObsTickTerminates(t *testing.T) {
	p := DefaultParams()
	n := fixtureNet(t, p)
	rec := obs.NewRecorder(obs.Config{Every: 64})
	n.attachObs(rec)
	if _, err := n.Send(unicastPlan(0, 7), 256, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := n.Drain(0); err != nil {
		t.Fatal(err)
	}
	if n.queue.Len() != 0 {
		t.Fatalf("queue holds %d events after drain (obs tick still armed?)", n.queue.Len())
	}
	if n.obsTickArmed {
		t.Fatal("obsTickArmed still set after drain")
	}
	first := len(rec.Samples())
	if first == 0 {
		t.Fatal("no samples recorded during the run")
	}
	// Second message on the same network: sampling must resume.
	if _, err := n.Send(unicastPlan(1, 6), 256, n.Now(), nil); err != nil {
		t.Fatal(err)
	}
	if err := n.Drain(0); err != nil {
		t.Fatal(err)
	}
	if len(rec.Samples()) <= first {
		t.Fatal("sampling did not resume for the second message")
	}
}
