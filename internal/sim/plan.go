package sim

import (
	"fmt"
	"sort"

	"mcastsim/internal/event"
	"mcastsim/internal/topology"
)

// WormKind distinguishes the three wire formats the switches understand.
type WormKind uint8

const (
	// WormUnicast is a conventional single-destination worm (2 header
	// flits: tag + destination node ID). The NI-based and software
	// schemes use only these.
	WormUnicast WormKind = iota
	// WormTree is a tree-based multidestination worm with an N-bit
	// bit-string header (paper §3.2.3).
	WormTree
	// WormPath is a multi-drop path-based worm whose header alternates
	// node-ID and port-mask fields (paper §3.2.4).
	WormPath
)

func (k WormKind) String() string {
	switch k {
	case WormUnicast:
		return "unicast"
	case WormTree:
		return "tree"
	case WormPath:
		return "path"
	default:
		return fmt.Sprintf("WormKind(%d)", k)
	}
}

// PathSeg is one stop of a path worm: the worm is routed toward Switch;
// there Drops receive copies and the worm optionally continues out
// NextPort (which must carry the remaining path legally). The paper
// addresses stops by "the ID of any arbitrary node connected to the
// switch" because hardware routing tables are node-indexed; the simulator
// addresses the switch directly, which also covers transit stops on
// switches with no attached nodes.
type PathSeg struct {
	// Switch is the stop switch.
	Switch topology.SwitchID
	// Drops are the destinations delivered at the stop switch; they must
	// all be attached to it. A stop may have no drops (pure transit with
	// an explicit continuation).
	Drops []topology.NodeID
	// NextPort is the stop switch's output port the worm continues on, or
	// -1 if this is the final stop.
	NextPort int
}

// WormSpec describes one message-worth of worms a host-driven sender emits
// (the simulator splits it into packets, each its own worm).
type WormSpec struct {
	Kind WormKind
	// Dest is the destination for WormUnicast.
	Dest topology.NodeID
	// DestSet lists destinations for WormTree.
	DestSet []topology.NodeID
	// Path lists segments for WormPath.
	Path []PathSeg
}

// Plan is a scheme-built multicast strategy the simulator executes. Exactly
// one of the two modes is used:
//
//   - NITree (the NI-based scheme): every listed parent's NI forwards each
//     arriving packet to its children as unicast worms, FPFS order, without
//     host involvement; the source's NI replicates outgoing packets the
//     same way. Host send overhead is paid once, at the source.
//
//   - HostSends (software and switch-based schemes): each listed sender
//     emits its WormSpecs as ordinary message sends, paying full host+NI
//     overhead per spec. The source's sends trigger when the message is
//     handed to the messaging layer; any other sender's trigger when that
//     sender's host has completely received the message (it acts as a
//     secondary source in a later phase, paper §1).
type Plan struct {
	Source topology.NodeID
	Dests  []topology.NodeID

	NITree    map[topology.NodeID][]topology.NodeID
	HostSends map[topology.NodeID][]WormSpec
}

// Validate checks structural sanity of the plan against a topology-sized
// universe (numNodes nodes, numSwitches switches). It does not check route
// legality — the simulator asserts that at execution time.
func (p *Plan) Validate(numNodes, numSwitches int) error {
	inRange := func(n topology.NodeID) bool { return int(n) >= 0 && int(n) < numNodes }
	if !inRange(p.Source) {
		return fmt.Errorf("plan: source %d out of range", p.Source)
	}
	if len(p.Dests) == 0 {
		return fmt.Errorf("plan: no destinations")
	}
	seen := map[topology.NodeID]bool{}
	for _, d := range p.Dests {
		if !inRange(d) {
			return fmt.Errorf("plan: destination %d out of range", d)
		}
		if d == p.Source {
			return fmt.Errorf("plan: source %d listed as destination", d)
		}
		if seen[d] {
			return fmt.Errorf("plan: duplicate destination %d", d)
		}
		seen[d] = true
	}
	if (p.NITree == nil) == (p.HostSends == nil) {
		return fmt.Errorf("plan: exactly one of NITree / HostSends must be set")
	}
	// Delivery accounting: the simulator requires every destination to be
	// delivered exactly once, and no deliveries to non-destinations.
	delivered := map[topology.NodeID]int{}
	if p.NITree != nil {
		if len(p.NITree[p.Source]) == 0 {
			return fmt.Errorf("plan: NI tree gives the source no children")
		}
		for parent, kids := range p.NITree {
			if !inRange(parent) {
				return fmt.Errorf("plan: NI parent %d out of range", parent)
			}
			if parent != p.Source && !seen[parent] {
				return fmt.Errorf("plan: NI parent %d is neither source nor destination", parent)
			}
			for _, k := range kids {
				if !inRange(k) {
					return fmt.Errorf("plan: NI child %d out of range", k)
				}
				if k == parent {
					return fmt.Errorf("plan: node %d forwards to itself", k)
				}
				delivered[k]++
			}
		}
	}
	if p.HostSends != nil && len(p.HostSends[p.Source]) == 0 {
		return fmt.Errorf("plan: host-send plan gives the source nothing to send")
	}
	for sender, specs := range p.HostSends {
		if !inRange(sender) {
			return fmt.Errorf("plan: sender %d out of range", sender)
		}
		if sender != p.Source && !seen[sender] {
			return fmt.Errorf("plan: sender %d is neither source nor destination", sender)
		}
		for i, w := range specs {
			if err := w.validate(numNodes, numSwitches); err != nil {
				return fmt.Errorf("plan: sender %d spec %d: %w", sender, i, err)
			}
			switch w.Kind {
			case WormUnicast:
				delivered[w.Dest]++
			case WormTree:
				for _, d := range w.DestSet {
					delivered[d]++
				}
			case WormPath:
				for _, seg := range w.Path {
					for _, d := range seg.Drops {
						delivered[d]++
					}
				}
			}
		}
	}
	for node, count := range delivered {
		if !seen[node] {
			return fmt.Errorf("plan: delivers to non-destination %d", node)
		}
		if count != 1 {
			return fmt.Errorf("plan: destination %d delivered %d times", node, count)
		}
	}
	for _, d := range p.Dests {
		if delivered[d] != 1 {
			return fmt.Errorf("plan: destination %d never delivered", d)
		}
	}
	return nil
}

func (w *WormSpec) validate(numNodes, numSwitches int) error {
	inRange := func(n topology.NodeID) bool { return int(n) >= 0 && int(n) < numNodes }
	switch w.Kind {
	case WormUnicast:
		if !inRange(w.Dest) {
			return fmt.Errorf("unicast dest %d out of range", w.Dest)
		}
	case WormTree:
		if len(w.DestSet) == 0 {
			return fmt.Errorf("tree worm with empty destination set")
		}
		for _, d := range w.DestSet {
			if !inRange(d) {
				return fmt.Errorf("tree dest %d out of range", d)
			}
		}
	case WormPath:
		if len(w.Path) == 0 {
			return fmt.Errorf("path worm with no segments")
		}
		anyDrop := false
		for i, seg := range w.Path {
			if int(seg.Switch) < 0 || int(seg.Switch) >= numSwitches {
				return fmt.Errorf("segment %d switch out of range", i)
			}
			last := i == len(w.Path)-1
			if last && seg.NextPort != -1 {
				return fmt.Errorf("final segment has a continuation port")
			}
			if !last && seg.NextPort < 0 {
				return fmt.Errorf("segment %d missing continuation port", i)
			}
			for _, d := range seg.Drops {
				if !inRange(d) {
					return fmt.Errorf("segment %d drop %d out of range", i, d)
				}
				anyDrop = true
			}
		}
		if !anyDrop {
			return fmt.Errorf("path worm delivers nothing")
		}
	default:
		return fmt.Errorf("unknown worm kind %d", w.Kind)
	}
	return nil
}

// Message is one multicast in flight. The simulator owns its mutable state.
type Message struct {
	ID    int64
	Plan  *Plan
	Flits int // payload flit count
	// Packets is the packet count (derived from Flits and Params).
	Packets int

	// Initiated is when the multicast entered the source's send queue;
	// DoneAt[d] is when destination d's host finished receiving.
	Initiated event.Time
	DoneAt    map[topology.NodeID]event.Time

	// FailedAt[d] is when the fault layer declared destination d
	// undeliverable for this message (its worm was torn down at a failed
	// channel, its forwarding parent failed, or the message was aborted).
	// A failed destination still counts against remaining, so a message
	// with failures completes with Done() true but DeliveredAll() false;
	// the retransmission layer re-plans the failed remainder.
	FailedAt map[topology.NodeID]event.Time

	// OnDestDone, when set (immediately after Send returns, before the
	// simulation advances), fires at each destination's host-completion
	// time — the hook for building collectives like gather or ack
	// collection on top of a multicast.
	OnDestDone func(m *Message, dest topology.NodeID)

	remaining  int
	onComplete func(*Message)

	// sh is the shard owning the message's mutable state (the source
	// NI's shard): evMsgStart and every evDestDone dispatch there.
	sh *shardState

	// group/snapshot tag a dynamic-group send (see group.go): snapshot is
	// the pooled membership set taken at send time, recycled at
	// completion. Both empty on plain sends.
	group    *Group
	snapshot dset
}

// Group returns the dynamic group this message was addressed to, or nil
// for a plain send.
func (m *Message) Group() *Group { return m.group }

// Latency returns the multicast completion latency: last destination's host
// receive completion minus initiation. It panics if the message has not
// completed.
func (m *Message) Latency() event.Time {
	if m.remaining != 0 {
		panic("sim: Latency on incomplete message")
	}
	var last event.Time
	for _, t := range m.DoneAt {
		if t > last {
			last = t
		}
	}
	return last - m.Initiated
}

// Done reports whether every destination has been accounted for — received
// by its host or declared failed by the fault layer.
func (m *Message) Done() bool { return m.remaining == 0 }

// DeliveredAll reports whether every destination's host actually received
// the message (Done with no failures).
func (m *Message) DeliveredAll() bool { return m.remaining == 0 && len(m.FailedAt) == 0 }

// Failed reports whether destination d was declared undeliverable.
func (m *Message) Failed(d topology.NodeID) bool {
	_, ok := m.FailedAt[d]
	return ok
}

// FailedDests returns the failed destinations in ascending node order (the
// deterministic input for re-planning a retransmission).
func (m *Message) FailedDests() []topology.NodeID {
	if len(m.FailedAt) == 0 {
		return nil
	}
	out := make([]topology.NodeID, 0, len(m.FailedAt))
	for d := range m.FailedAt {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// delivered lists every destination a spec delivers.
func (w *WormSpec) delivered() []topology.NodeID {
	switch w.Kind {
	case WormUnicast:
		return []topology.NodeID{w.Dest}
	case WormTree:
		return w.DestSet
	case WormPath:
		var out []topology.NodeID
		for _, seg := range w.Path {
			out = append(out, seg.Drops...)
		}
		return out
	}
	return nil
}

// DeliveryChildren returns the destinations whose delivery depends on node
// d having received the message: d's NI-tree children and everything d's
// own HostSends specs would deliver as a secondary source. When d fails,
// its delivery subtree fails with it (and is re-planned by the
// retransmission layer from the true source).
func (p *Plan) DeliveryChildren(d topology.NodeID) []topology.NodeID {
	var out []topology.NodeID
	out = append(out, p.NITree[d]...)
	for i := range p.HostSends[d] {
		out = append(out, p.HostSends[d][i].delivered()...)
	}
	return out
}
