package sim

import (
	"fmt"
	"sort"

	"mcastsim/internal/event"
	"mcastsim/internal/topology"
)

// ni models one host's network interface together with the host-side
// resources involved in messaging: the host CPU (per-message software
// overheads o_s/o_r), the NI processor (per-packet overheads o_ni), and the
// shared I/O bus moving packets between host memory and NI memory by DMA.
// Each is a serially reusable resource tracked by a next-free time.
type ni struct {
	net  *Network
	sh   *shardState // home switch's shard; all NI state lives here
	node topology.NodeID
	inj  *channel // injection line into the home switch

	// dead marks an NI orphaned by its home switch's failure: sends are
	// failed at the source and arrivals cease (the ejection channel died
	// with the switch).
	dead bool

	hostFree event.Time
	niFree   event.Time
	busFree  event.Time

	// Injection: a burst is one packet's worth of outgoing worms — a
	// single worm for ordinary sends, or one replica per NI-tree child
	// when the smart NI replicates a packet. A burst occupies one NI
	// buffer slot (the packet is stored once) and charges the NI
	// processor once; its replicas serialize on the injection line.
	// ready holds bursts whose NI processing has finished; injWait holds
	// bursts deferred by a full buffer (when NIInjectBufferPackets > 0).
	ready     []*burst
	injWait   []*burst
	injHeld   int
	streaming bool

	// Reception state.
	rxFlits map[*worm]int    // flits received per in-flight worm
	rxMsgs  map[*Message]int // packets DMA'd to host per message
	// rxHeld counts packets assembled at the NI per message, for the
	// store-and-forward ablation (Params.NIStoreAndForward).
	rxHeld map[*Message]int
}

func newNI(net *Network, node topology.NodeID, inj *channel) *ni {
	return &ni{
		net:     net,
		sh:      inj.sh,
		node:    node,
		inj:     inj,
		rxFlits: make(map[*worm]int),
		rxMsgs:  make(map[*Message]int),
		rxHeld:  make(map[*Message]int),
	}
}

// reserve books dur cycles on a serially reusable resource no earlier than
// now, returning the completion time.
func reserve(free *event.Time, now, dur event.Time) event.Time {
	start := *free
	if now > start {
		start = now
	}
	*free = start + dur
	return *free
}

// --- send side ---

// sendOp is one in-flight hostSend: a single record carried by the
// evSendSoft and evSendDMA events covering every packet of the send (the
// closure engine allocated one callback per packet on this path).
type sendOp struct {
	x    *ni
	m    *Message
	spec *WormSpec // nil for the NI-based scheme's source send
}

// hostSend initiates one message-send operation: o_s on the host CPU, then
// per-packet DMA to the NI. spec == nil means this is the NI-based scheme's
// source send: each packet, once in NI memory, is replicated to the
// source's children (paper §3.2.1). Callable only from within an event.
func (x *ni) hostSend(m *Message, spec *WormSpec) {
	n := x.net
	if x.dead {
		// The sender is cut off: everything this send would deliver fails.
		x.failSendDests(m, spec)
		return
	}
	softDone := reserve(&x.hostFree, x.sh.now(), n.params.OHostSend)
	x.sh.post(softDone, evSendSoft, &sendOp{x: x, m: m, spec: spec}, 0)
}

// softwareDone runs when the host send software overhead finishes (the
// evSendSoft handler): book the bus for every packet's DMA into NI memory.
func (op *sendOp) softwareDone() {
	x, m := op.x, op.m
	n := x.net
	cur := x.sh.now()
	for pkt := 0; pkt < m.Packets; pkt++ {
		bytes := n.payloadFlits(m, pkt)
		dmaDone := reserve(&x.busFree, cur, n.params.BusCycles(bytes))
		x.sh.post(dmaDone, evSendDMA, op, int64(pkt))
	}
}

// dmaDone runs when packet pkt lands in NI memory (the evSendDMA
// handler): hand the packet's worm burst to the injection side.
func (op *sendOp) dmaDone(pkt int) {
	x := op.x
	if op.spec == nil {
		x.admitBurst(x.replicaBurst(op.m, pkt))
		return
	}
	b := x.sh.getBurst()
	b.worms = append(b.worms, x.sh.newWorm(op.m, op.spec, pkt))
	x.admitBurst(b)
}

// burst is one packet's outgoing worm set sharing an NI buffer slot and a
// single NI processing charge.
type burst struct {
	owner *ni // set when the burst is charged; the evNICharged handler's NI
	worms []*worm
	next  int
}

// replicaBurst builds the NI-tree replicas of one packet for this node's
// children.
func (x *ni) replicaBurst(m *Message, pkt int) *burst {
	kids := m.Plan.NITree[x.node]
	b := x.sh.getBurst()
	for _, kid := range kids {
		// Unicast specs are consumed by newWorm, never retained, so the
		// shard scratch spec avoids one allocation per replica.
		x.sh.scr.specScratch = WormSpec{Kind: WormUnicast, Dest: kid}
		b.worms = append(b.worms, x.sh.newWorm(m, &x.sh.scr.specScratch, pkt))
	}
	return b
}

// admitBurst takes an NI buffer slot for b (deferring when the buffer is
// bounded and full) and charges the per-packet NI send overhead.
func (x *ni) admitBurst(b *burst) {
	if x.dead {
		x.dropBurst(b)
		return
	}
	limit := x.net.params.NIInjectBufferPackets
	if limit > 0 && (x.injHeld >= limit || len(x.injWait) > 0) {
		if r := x.net.obsRec; r != nil {
			r.NIDeferred(int32(x.node))
		}
		x.injWait = append(x.injWait, b)
		return
	}
	x.injHeld++
	x.chargeAndReady(b)
}

func (x *ni) chargeAndReady(b *burst) {
	b.owner = x
	procDone := reserve(&x.niFree, x.sh.now(), x.net.params.ONISend)
	x.sh.post(procDone, evNICharged, b, 0)
}

// charged runs when a burst's NI send processing finishes (the
// evNICharged handler): queue it for injection and kick the stream.
func (b *burst) charged() {
	x := b.owner
	if x.dead {
		x.injHeld--
		x.dropBurst(b)
		return
	}
	x.ready = append(x.ready, b)
	if !x.streaming {
		x.startStream()
	}
}

// startStream begins injecting the next ready worm on the injection line.
func (x *ni) startStream() {
	b := x.ready[0]
	w := b.worms[b.next]
	b.next++
	lastOfBurst := b.next == len(b.worms)
	if lastOfBurst {
		x.ready = x.ready[1:]
		x.sh.putBurst(b) // every worm is streamed; no list names b anymore
	}
	x.streaming = true
	br := x.sh.newBranch(nil, w, 0)
	br.ch = x.inj
	br.injNI = x
	br.injLast = lastOfBurst
	x.inj.sender = br
	x.sh.stats.PacketsInjected++
	x.net.trace(TraceEvent{Kind: TraceInject, Worm: w.id, Msg: w.msg.ID, Pkt: w.pkt, Node: x.node})
	br.schedulePump(x.sh.now())
}

// streamDone unwinds the injection line after a stream's tail (or its
// kill): frees the buffer slot on the burst's last worm, promotes one
// deferred burst, and starts the next ready stream.
func (x *ni) streamDone(last bool) {
	x.streaming = false
	if last {
		x.injHeld--
		if len(x.injWait) > 0 {
			next := x.injWait[0]
			x.injWait = x.injWait[1:]
			x.injHeld++
			x.chargeAndReady(next)
		}
	}
	if len(x.ready) > 0 {
		x.startStream()
	}
}

// --- receive side ---

// flitArrive accepts one flit of w from the ejection channel.
func (x *ni) flitArrive(w *worm) {
	if w.dead {
		// Straggler of a torn-down worm; the partial packet was discarded.
		x.sh.stats.FlitsDropped++
		return
	}
	x.sh.stats.FlitsDelivered++
	c := x.rxFlits[w] + 1
	if c == 1 {
		wormRef(w) // the NI assembly leg; released after receive processing
	}
	if c > w.len {
		panic("sim: NI received more flits than worm length")
	}
	if c == w.len {
		delete(x.rxFlits, w)
		x.packetArrived(w)
		return
	}
	x.rxFlits[w] = c
}

// packetArrived runs when a packet has fully assembled in NI memory: per-
// packet NI receive processing, then concurrently (a) replica injection to
// NI-tree children and (b) DMA to host memory; the receiving host's o_r is
// charged once, after the message's last packet lands (paper §3.2.1: the
// smart NI hides the host receive overhead and eliminates the host send
// overhead at intermediate destinations).
func (x *ni) packetArrived(w *worm) {
	n := x.net
	m := w.msg
	if m.Failed(x.node) {
		// This destination was already declared failed (another packet of
		// the message died); a stray complete packet does not resurrect
		// it — the retransmission layer owns the remainder.
		x.sh.wormDecref(w) // no receive processing will release the NI leg
		return
	}
	x.sh.stats.PacketsAtNI++
	n.trace(TraceEvent{Kind: TraceDeliver, Worm: w.id, Msg: w.msg.ID, Pkt: w.pkt, Node: x.node})
	procDone := reserve(&x.niFree, x.sh.now(), n.params.ONIRecv)
	x.sh.post(procDone, evNIRecvProc, w, int64(x.node))
}

// recvProcessed runs when a packet's NI receive processing finishes (the
// evNIRecvProc handler): replicate to NI-tree children and DMA to host.
func (x *ni) recvProcessed(w *worm) {
	n := x.net
	m := w.msg
	if m.Plan.NITree != nil && len(m.Plan.NITree[x.node]) > 0 {
		if n.params.NIStoreAndForward {
			// Ablation: hold replicas until the whole message is here.
			held := x.rxHeld[m] + 1
			if held < m.Packets {
				x.rxHeld[m] = held
			} else {
				delete(x.rxHeld, m)
				for pkt := 0; pkt < m.Packets; pkt++ {
					x.admitBurst(x.replicaBurst(m, pkt))
				}
			}
		} else {
			// FPFS: forward this packet immediately (paper §3.2.1).
			x.admitBurst(x.replicaBurst(m, w.pkt))
		}
	}
	bytes := n.payloadFlits(m, w.pkt)
	dmaDone := reserve(&x.busFree, x.sh.now(), n.params.BusCycles(bytes))
	x.sh.post(dmaDone, evNIRecvDMA, m, int64(x.node))
	x.sh.wormDecref(w) // the NI assembly leg; host-side events carry m, not w
}

// hostPacketArrived counts packets landed in host memory; the last one
// triggers the per-message host receive overhead and completion.
func (x *ni) hostPacketArrived(m *Message) {
	n := x.net
	if m.Failed(x.node) {
		return
	}
	c := x.rxMsgs[m] + 1
	x.sh.stats.PacketsToHost++
	if c < m.Packets {
		x.rxMsgs[m] = c
		return
	}
	delete(x.rxMsgs, m)
	done := reserve(&x.hostFree, x.sh.now(), n.params.OHostRecv)
	// Completion is the Message owner's (source shard's) event: DoneAt,
	// remaining and the completion hooks are single-owner state. The host
	// receive overhead supplies the cross-shard lookahead; with a
	// pathological OHostRecv < LinkDelay the fast engine fails loudly
	// with a LookaheadError rather than mis-merging.
	x.sh.postTo(m.sh, done, evDestDone, m, int64(x.node))
}

// destDone records destination completion, fires any secondary-source
// sends this node owes (multi-phase schemes), and completes the message.
func (n *Network) destDone(m *Message, node topology.NodeID) {
	if m.Failed(node) {
		// Late delivery racing the teardown that declared this dest
		// failed; the retransmission layer already owns it.
		return
	}
	if _, dup := m.DoneAt[node]; dup {
		panic(fmt.Sprintf("sim: node %d received message %d twice", node, m.ID))
	}
	m.DoneAt[node] = m.sh.now()
	m.remaining--
	if m.group != nil {
		n.groupNoteDelivered(m, node)
	}
	if m.OnDestDone != nil {
		m.OnDestDone(m, node)
	}
	if m.Plan.HostSends != nil {
		for i := range m.Plan.HostSends[node] {
			n.nis[node].hostSend(m, &m.Plan.HostSends[node][i])
		}
	}
	if m.remaining == 0 {
		n.outstanding.Add(-1)
		m.sh.stats.MessagesDone++
		if m.group != nil {
			n.groupMsgDone(m)
		}
		if m.onComplete != nil {
			m.onComplete(m)
		}
	}
}

// --- fault handling ---

// failSendDests fails everything a hostSend would have delivered: the
// NI-tree children for the source replication send (spec == nil), or the
// spec's destinations. The cascade in failDest covers deeper subtrees.
func (x *ni) failSendDests(m *Message, spec *WormSpec) {
	if spec == nil {
		for _, kid := range m.Plan.NITree[x.node] {
			x.net.failDest(m, kid)
		}
		return
	}
	for _, d := range spec.delivered() {
		x.net.failDest(m, d)
	}
}

// dropBurst fails the destinations of every worm in b that has not started
// streaming and recycles them (un-streamed worms hold no reference legs),
// then recycles the burst itself.
func (x *ni) dropBurst(b *burst) {
	for _, w := range b.worms[b.next:] {
		x.net.failWormDests(w)
		x.sh.recycleWorm(w)
	}
	x.sh.putBurst(b)
}

// promoteWaiting admits deferred bursts while buffer slots are free
// (mirrors the streamDone promotion after aborts change injHeld).
func (x *ni) promoteWaiting() {
	limit := x.net.params.NIInjectBufferPackets
	for len(x.injWait) > 0 && (limit <= 0 || x.injHeld < limit) {
		b := x.injWait[0]
		x.injWait = x.injWait[1:]
		x.injHeld++
		x.chargeAndReady(b)
	}
}

// abortMessage tears down every injection- and reception-side trace of m at
// this NI: queued bursts, the active injection stream, and partial packets.
func (x *ni) abortMessage(m *Message) {
	var keep []*burst
	for _, b := range x.ready {
		if len(b.worms) > 0 && b.worms[0].msg == m {
			x.injHeld--
			x.dropBurst(b)
			continue
		}
		keep = append(keep, b)
	}
	x.ready = keep
	keep = nil
	for _, b := range x.injWait {
		if len(b.worms) > 0 && b.worms[0].msg == m {
			x.dropBurst(b)
			continue
		}
		keep = append(keep, b)
	}
	x.injWait = keep
	if br := x.inj.sender; br != nil && !br.done && br.w.msg == m {
		// killBranch unwinds the streaming state and starts the next burst.
		x.net.killBranch(br)
		x.net.killDownstream(br)
	}
	x.promoteWaiting()
	for w := range x.rxFlits {
		if w.msg == m {
			delete(x.rxFlits, w)
			x.sh.wormDecref(w) // the NI assembly leg
		}
	}
	delete(x.rxMsgs, m)
	delete(x.rxHeld, m)
}

// orphan marks the NI dead (its home switch failed) and abandons all
// injection state; every undelivered destination of every queued or
// streaming worm is failed. Partially received messages fail at this node.
func (x *ni) orphan() {
	if x.dead {
		return
	}
	x.dead = true
	n := x.net
	if br := x.inj.sender; br != nil && !br.done {
		n.killBranch(br)
		n.killDownstream(br)
		n.failBranchDests(br)
	}
	x.streaming = false
	for _, b := range x.ready {
		x.dropBurst(b)
	}
	x.ready = nil
	for _, b := range x.injWait {
		x.dropBurst(b)
	}
	x.injWait = nil
	x.injHeld = 0
	// Reception side: deterministically fail partially received messages.
	msgs := make([]*Message, 0, len(x.rxFlits)+len(x.rxMsgs)+len(x.rxHeld))
	seen := make(map[*Message]bool)
	for w := range x.rxFlits {
		if !seen[w.msg] {
			seen[w.msg] = true
			msgs = append(msgs, w.msg)
		}
		// Release the NI assembly leg after reading w.msg: the decref can
		// recycle the worm.
		x.sh.wormDecref(w)
	}
	for m := range x.rxMsgs {
		if !seen[m] {
			seen[m] = true
			msgs = append(msgs, m)
		}
	}
	for m := range x.rxHeld {
		if !seen[m] {
			seen[m] = true
			msgs = append(msgs, m)
		}
	}
	sort.Slice(msgs, func(i, j int) bool { return msgs[i].ID < msgs[j].ID })
	x.rxFlits = make(map[*worm]int)
	for _, m := range msgs {
		n.failDest(m, x.node)
	}
}
