package sim

import (
	"mcastsim/internal/destset"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// routeCache memoizes the three pure routing computations on the worm
// hot path — the climb BFS distance field, the greedy down-partition,
// and the adaptive next-hop candidate list — keyed by the destination
// set's fingerprint (and the switch/phase where the result is local).
//
// Correctness contract:
//
//   - Epoch tagging. Every cached result is a pure function of the
//     routing tables (rt.Cover, rt.DownReach, the distance fields, the
//     port orientations) and the up-link adjacency derived from them.
//     Network.routingEpoch is bumped whenever any of those can change —
//     a reconfiguration table swap (swapRouting) and every applied fault
//     or repair (applyFault, conservatively: stale-but-consistent
//     results would still match the uncached code, but flushing keeps
//     the invariant trivial to audit). The cache lazily compares its
//     epoch on every lookup and flushes all three maps atomically when
//     it lags, so no post-reconfiguration decision can see a pre-fault
//     entry.
//
//   - Fingerprint verification. Set-keyed entries store a clone of the
//     keying set and re-check Equal on every hit, so an FNV collision
//     (or a map-bucket collision between two sets with equal hashes)
//     costs a cache miss, never a wrong route.
//
//   - RNG transparency. The adaptive partition draws one Shuffle of the
//     switch's down-port list per call; a cache hit burns the identical
//     draw sequence with a no-op swap so the arbitration RNG stream —
//     and therefore every downstream tie-break — is byte-identical to
//     the uncached run. Partitions whose greedy choice ever depended on
//     the shuffle (a tied round) are cached as "tied" and always fall
//     through to the full recomputation, which consumes the shuffle
//     naturally. Climb and next-hop lookups are RNG-free; their callers
//     shuffle scratch copies, never cached storage.
//
//   - Ownership. Cached slices and sets are cache-owned and read-only.
//     Hits copy ports/phases into Network scratch slices and partition
//     subsets into pooled sets, so recycling a worm's destination set
//     can never corrupt an entry.
//
// Overflow policy: each map has a hard cap; inserting past it clears the
// whole map. Deterministic (no eviction order dependence) and effectively
// unreachable in the paper's experiment sizes. The caps scale with the
// switch count (init): the historical constants were sized for tens of
// switches, and at datacenter scale the steady-state working set — one
// partition entry per (switch, set) pair a worm actually visits, one hop
// entry per (switch, phase, destination) — exceeds them by orders of
// magnitude, so fixed caps would thrash through clear-on-overflow on
// every multicast.
const (
	climbCacheCapFloor = 1024
	partCacheCapFloor  = 4096
	hopsCacheCapFloor  = 8192
)

type climbEntry struct {
	key  *destset.Runs // keying set as a run snapshot (verified on hit)
	dist []int32       // per-switch up-hop distance to a covering switch, -1 unreachable
}

type partKey struct {
	sw int32
	fp uint64
}

// Cached keying sets and partition subsets are stored run-coded in BOTH
// representations: a run snapshot costs O(runs) bytes instead of O(N)
// bits, which is what keeps thousands of cached partitions affordable at
// the 1M-host tiers. The verify-on-hit Equal and the hit expansion are
// pure membership operations, so flat networks behave byte-identically
// to the historical clone-keyed cache.
type partEntry struct {
	key  *destset.Runs // keying set (verified on hit)
	tied bool          // a greedy round's max was multiply-achieved: result is shuffle-dependent
	// Untied entries only: the partition in pick order.
	ports []int32
	subs  []*destset.Runs
}

type hopKey struct {
	sw    int32
	phase updown.Phase
	dest  int32
}

type hopEntry struct {
	ports  []int
	phases []updown.Phase
}

type routeCache struct {
	epoch       int // routingEpoch the entries were computed under
	disabled    bool
	flushes     int // epoch-lag flushes performed (test observability)
	groupInvals int // per-group membership invalidations (test observability)

	// Per-instance caps, scaled by init to the topology's switch count.
	climbCap int
	partCap  int
	hopsCap  int

	climb map[uint64]*climbEntry
	part  map[partKey]*partEntry
	hops  map[hopKey]*hopEntry
}

func (c *routeCache) init(numSwitches int) {
	// Floors preserve the paper-scale behavior exactly; the per-switch
	// multipliers track how entries accumulate (hops per destination
	// switch and phase, partitions per visited switch).
	c.climbCap = maxInt(climbCacheCapFloor, 2*numSwitches)
	c.partCap = maxInt(partCacheCapFloor, 8*numSwitches)
	c.hopsCap = maxInt(hopsCacheCapFloor, 16*numSwitches)
	c.climb = make(map[uint64]*climbEntry)
	c.part = make(map[partKey]*partEntry)
	c.hops = make(map[hopKey]*hopEntry)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// destFP returns the fingerprint the route cache keys destination sets
// on. Flat sets under the flat coding use the historical bit-string
// hash; flat sets under the interval coding use the compressed
// encoding's run-list fingerprint (destset.IvalFingerprintOf); sparse
// sets always fingerprint their run list directly (same mix as
// IvalFingerprintOf, computed in O(runs)). The choice is correctness-
// and determinism-neutral: a hit re-verifies full membership, so
// collisions cost a miss, never a wrong route, and hit-vs-miss is
// RNG-transparent by construction.
func (sh *shardState) destFP(set dset) uint64 {
	if set.runs != nil {
		return set.runs.Fingerprint()
	}
	if sh.net.params.DestCoding == HeaderIval {
		return destset.IvalFingerprintOf(set.bits)
	}
	return set.bits.Hash()
}

// sync flushes every map when the routing epoch has moved since the
// entries were computed.
func (c *routeCache) sync(epoch int) {
	if c.epoch == epoch {
		return
	}
	c.epoch = epoch
	c.flushes++
	clear(c.climb)
	clear(c.part)
	clear(c.hops)
}

// invalidateNode drops every set-keyed entry whose keying set contains
// node — the per-group invalidation a single-member join/leave triggers
// instead of a global epoch flush. Next-hop entries are keyed by
// (switch, phase, destination switch), not by destination set, and stay
// valid across membership changes. Which entries are deleted is a pure
// predicate of the stored sets, so the surviving cache contents are
// deterministic despite map iteration order; RNG transparency is
// untouched (an invalidated partition recomputes and consumes its
// shuffle naturally, exactly as a cold miss would).
func (c *routeCache) invalidateNode(node int) {
	if c.disabled {
		return
	}
	c.groupInvals++
	for fp, e := range c.climb {
		if e.key.Contains(node) {
			delete(c.climb, fp)
		}
	}
	for k, e := range c.part {
		if e.key.Contains(node) {
			delete(c.part, k)
		}
	}
}

// climbDist returns the per-switch shortest all-up-hop distance field to
// any switch covering set (the reverse BFS of climbPorts), cached by the
// set's fingerprint. The returned slice is cache-owned (or Network
// scratch when the cache is disabled or cold-storing): read-only.
func (sh *shardState) climbDist(set dset) []int32 {
	c := sh.cache
	c.sync(sh.net.routingEpoch)
	if !c.disabled {
		fp := sh.destFP(set)
		if e := c.climb[fp]; e != nil && set.equalRuns(e.key) {
			return e.dist
		}
		dist := sh.computeClimbDist(set)
		if len(c.climb) >= c.climbCap {
			clear(c.climb)
		}
		owned := make([]int32, len(dist))
		copy(owned, dist)
		c.climb[fp] = &climbEntry{key: set.cloneRuns(), dist: owned}
		return owned
	}
	return sh.computeClimbDist(set)
}

// computeClimbDist runs the reverse BFS over up links from every switch
// covering set, into shard scratch. The seeding pass tests every
// switch's Cover string against the set; on sparse sets that is
// O(runs × span/64) per switch instead of O(N/64) — the difference
// between seconds and an hour of planning at the 1M-host tiers.
func (sh *shardState) computeClimbDist(set dset) []int32 {
	n := sh.net
	S := n.topo.NumSwitches
	dist := sh.scr.distScratch
	for i := range dist {
		dist[i] = -1
	}
	q := sh.scr.bfsQueue[:0]
	for x := 0; x < S; x++ {
		if set.subsetOfBits(n.rt.Cover[x]) {
			dist[x] = 0
			q = append(q, int32(x))
		}
	}
	for head := 0; head < len(q); head++ {
		x := q[head]
		// Predecessors of x along up links: switches with an up port to x.
		for _, pp := range n.revUp[x] {
			if dist[pp.sw] == -1 {
				dist[pp.sw] = dist[x] + 1
				q = append(q, int32(pp.sw))
			}
		}
	}
	sh.scr.bfsQueue = q[:0]
	return dist
}

// nextHops returns the adaptive candidate ports and phases for a packet
// at switch s headed to switch d, through the route cache. The returned
// slices are shard scratch: callers may permute or compact them but
// must not retain them past the current decision.
func (sh *shardState) nextHops(s topology.SwitchID, ph updown.Phase, d topology.SwitchID) ([]int, []updown.Phase) {
	n := sh.net
	c := sh.cache
	c.sync(n.routingEpoch)
	if c.disabled {
		return n.rt.NextHops(s, ph, d)
	}
	k := hopKey{sw: int32(s), phase: ph, dest: int32(d)}
	e := c.hops[k]
	if e == nil {
		ports, phases := n.rt.NextHops(s, ph, d)
		if len(c.hops) >= c.hopsCap {
			clear(c.hops)
		}
		e = &hopEntry{ports: ports, phases: phases}
		c.hops[k] = e
	}
	ports := append(sh.scr.portScratch[:0], e.ports...)
	phases := append(sh.scr.phaseScratch[:0], e.phases...)
	sh.scr.portScratch = ports
	sh.scr.phaseScratch = phases
	return ports, phases
}
