package sim

import (
	"strings"
	"testing"
)

// TestEventLoopGuardPanicsOnReentry: the Network and its callbacks are
// single-goroutine by contract; the entry guard must turn a reentrant
// event-loop call (the same bug shape as cross-goroutine use, but
// deterministic to provoke) into a loud panic instead of silent state
// corruption.
func TestEventLoopGuardPanicsOnReentry(t *testing.T) {
	n := twoSwitch(t)
	n.Schedule(10, func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("reentrant Drain did not panic")
				return
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "concurrent use of Network") {
				t.Errorf("unexpected panic: %v", r)
			}
		}()
		n.Drain(1) // reentry from inside the event loop
	})
	if err := n.Drain(100); err != nil {
		t.Fatal(err)
	}
}

// TestEventLoopGuardReleases: after a clean Drain the guard must be
// released so sequential reuse keeps working.
func TestEventLoopGuardReleases(t *testing.T) {
	n := twoSwitch(t)
	for i := 0; i < 3; i++ {
		n.Schedule(n.Now()+1, func() {})
		if err := n.Drain(10); err != nil {
			t.Fatal(err)
		}
	}
}
