package sim

import (
	"fmt"

	"mcastsim/internal/bitset"
	"mcastsim/internal/destset"
	"mcastsim/internal/event"
	"mcastsim/internal/rng"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// Actor→shard ownership for sharded PDES runs.
//
// The network's switches are partitioned into contiguous shard blocks;
// every input buffer, output port and branch belongs to its switch's
// shard, every NI to its home switch's shard, and every channel to the
// shard of its SENDER (credits, line occupancy and the active-sender
// slot are all mutated by the pump/grant/release path on the sending
// side). Events are posted through the owning shard's surface; the only
// cross-shard posts the hot path makes are evDeliver (to the channel's
// destination shard) and evCredit (to the destination buffer's upstream
// sender shard), both scheduled LinkDelay ahead — exactly the
// conservative lookahead the synchronization window is derived from —
// plus the message-level evMsgStart/evDestDone events routed to the
// message's source shard.
//
// Three engine modes share this structure:
//
//   - shards == 1: sh.q is the network's own calendar queue and every
//     shardState field aliases the network's shared state. This is
//     byte-for-byte the pre-shard engine (the golden traces pin it).
//   - serial-equivalence (WithShards): per-shard event.Lanes merged on
//     a global (at, seq) order, still one goroutine, still aliasing ALL
//     shared state (one RNG, one Stats, one pool set, one route cache).
//     Execution is event-for-event identical to shards == 1 for any
//     shard count.
//   - fast (WithFastShards): per-shard queues run by worker goroutines
//     in conservative windows. Each shard owns PRIVATE state: its own
//     arbitration RNG stream, Stats instance (merged on read), entity
//     pools, decision scratch, route cache, and a strided worm-id
//     counter. Deterministic for a fixed shard count, but a different
//     (equally valid) serialization than the serial engines; the model
//     features that are inherently cross-shard-mutating (faults,
//     groups, retry, tracing, obs, mid-run closures) are refused with
//     typed errors at setup.
type shardState struct {
	idx int32
	net *Network

	// Exactly one of q/lane is non-nil: q for the single-queue and fast
	// engines, lane for the serial-equivalence merge.
	q    *event.Queue
	lane *event.Lane

	// Aliased to the network's shared state in serial modes; private
	// per-shard instances in fast mode.
	arb   *rng.Source
	stats *Stats
	cache *routeCache
	pools *entityPools
	scr   *scratchSpace

	// Worm-id allocation: shared counter with stride 1 in serial modes,
	// per-shard counter starting at idx with stride nshards in fast mode
	// (ids stay globally unique without coordination).
	wormID     *int64
	wormStride int64
}

// entityPools carries the per-shard free lists (see pool.go for the
// ownership rules that make recycling safe).
type entityPools struct {
	setPool    []*bitset.Set
	runPool    []*destset.Runs
	wormPool   []*worm
	branchPool []*branch
	occPool    []*occupant
	burstPool  []*burst
}

// scratchSpace is the per-decision scratch reused by the planners and
// arbitration so the steady-state routing path allocates nothing. Valid
// only within one routing decision; never retained. One instance per
// executing shard — in serial modes all shards alias one.
type scratchSpace struct {
	onePort      [1]int
	onePhase     [1]updown.Phase
	portScratch  []int
	phaseScratch []updown.Phase
	downScratch  []int
	partScratch  []portSet
	usedPorts    []bool
	distScratch  []int32
	bfsQueue     []int32
	specScratch  WormSpec
}

func (sc *scratchSpace) init(t *topology.Topology) {
	sc.usedPorts = make([]bool, t.PortsPerSwitch)
	sc.distScratch = make([]int32, t.NumSwitches)
	sc.bfsQueue = make([]int32, 0, t.NumSwitches)
}

// now returns the shard-visible simulation time.
func (sh *shardState) now() event.Time {
	if sh.lane != nil {
		return sh.lane.Now()
	}
	return sh.q.Now()
}

// post schedules a typed event on this shard at absolute time t.
func (sh *shardState) post(t event.Time, k event.Kind, actor any, arg int64) {
	if sh.lane != nil {
		sh.lane.Post(t, k, actor, arg)
		return
	}
	sh.q.Post(t, k, actor, arg)
}

// postAfter schedules a typed event on this shard delay cycles from now.
func (sh *shardState) postAfter(delay event.Time, k event.Kind, actor any, arg int64) {
	sh.post(sh.now()+delay, k, actor, arg)
}

// postTo schedules a typed event on the target shard. Same-shard posts
// go straight to the local queue; cross-shard posts go through the
// serial merge (global-sequence order subsumes the window exchange) or,
// in a running fast engine, the window-edge mailbox.
func (sh *shardState) postTo(tgt *shardState, t event.Time, k event.Kind, actor any, arg int64) {
	if tgt == sh {
		sh.post(t, k, actor, arg)
		return
	}
	if sh.lane != nil {
		tgt.lane.Post(t, k, actor, arg)
		return
	}
	n := sh.net
	if n.fset != nil && n.running.Load() {
		n.fset.Mail(sh.idx, tgt.idx, t, k, actor, arg)
		return
	}
	// Fast engine between windows (or before Start): workers are
	// quiescent, direct posting is safe and keeps setup simple.
	tgt.q.Post(t, k, actor, arg)
}

// shardOf returns the shard owning switch s.
func (n *Network) shardOf(s topology.SwitchID) *shardState { return n.shs[n.swShard[s]] }

// sh0 is the shard every serial-only subsystem (faults, groups, retry,
// obs, control-plane scheduling) runs on. In serial modes all shards
// alias the same shared state, so the choice is immaterial for pool and
// RNG identity; fast mode refuses those subsystems at setup.
func (n *Network) sh0() *shardState { return n.shs[0] }

// --- network-level engine dispatch (cold paths) ---

// nowAt returns the current simulation time under any engine.
func (n *Network) nowAt() event.Time {
	if n.lanes != nil {
		return n.lanes.Now()
	}
	if n.fset != nil {
		return n.fset.Now()
	}
	return n.queue.Now()
}

// queueLen returns the pending-event total under any engine.
func (n *Network) queueLen() int {
	if n.lanes != nil {
		return n.lanes.Len()
	}
	if n.fset != nil {
		return n.fset.Len()
	}
	return n.queue.Len()
}

// engineStep dispatches the next event under a serial engine.
func (n *Network) engineStep() bool {
	if n.lanes != nil {
		return n.lanes.Step()
	}
	return n.queue.Step()
}

// schedAt runs fn at absolute time t (control-plane closures; serial
// engines only — the closure would race with shard workers otherwise).
// Closures ride the typed evSched kind, so the engine-level closure
// shim stays test-only (see event/eventtest).
func (n *Network) schedAt(t event.Time, fn func()) {
	if n.fset != nil {
		panic((&FastModeError{Feature: "Schedule (mid-run closures)"}).Error())
	}
	n.ctlPost(t, evSched, fn, 0)
}

// schedAfter runs fn delay cycles from now.
func (n *Network) schedAfter(delay event.Time, fn func()) {
	n.schedAt(n.nowAt()+delay, fn)
}

// ctlPost schedules a network-level typed event (fault/membership/
// timeout/obs control plane). Under the serial merge the lane choice is
// immaterial — the global sequence counter fixes execution order.
func (n *Network) ctlPost(t event.Time, k event.Kind, actor any, arg int64) {
	if n.lanes != nil {
		n.lanes.Lane(0).Post(t, k, actor, arg)
		return
	}
	n.queue.Post(t, k, actor, arg)
}

// ctlPostAfter schedules a control-plane event delay cycles from now.
func (n *Network) ctlPostAfter(delay event.Time, k event.Kind, actor any, arg int64) {
	n.ctlPost(n.nowAt()+delay, k, actor, arg)
}

// engineObsSink attaches the obs engine sink under any serial engine.
func (n *Network) engineObsSink(o *event.EngineObs) {
	if n.lanes != nil {
		n.lanes.SetObs(o)
		return
	}
	n.queue.SetObs(o)
}

// engineEventStats snapshots scheduler occupancy for obs sampling.
func (n *Network) engineEventStats() event.EngineStats {
	if n.lanes != nil {
		return n.lanes.EngineStats()
	}
	return n.queue.EngineStats()
}

// initShards builds the engine and the shard states. Called by New
// after the topology is known and before any per-port structure exists.
func (n *Network) initShards(shards int, fast bool, seed uint64) {
	t := n.topo
	if shards < 1 {
		shards = 1
	}
	n.nshards = shards
	n.swShard = make([]int32, t.NumSwitches)
	for s := 0; s < t.NumSwitches; s++ {
		n.swShard[s] = int32(s * shards / t.NumSwitches)
	}
	// The synchronization window is the minimum inter-shard link delay.
	// Link delay is uniform in this model, so that is LinkDelay itself
	// (params.Validate pins it >= 1).
	window := n.params.LinkDelay

	n.shs = make([]*shardState, shards)
	switch {
	case fast && shards > 1:
		n.fset = event.NewFastSet(shards, window)
		for i := 0; i < shards; i++ {
			wid := new(int64)
			*wid = int64(i)
			sh := &shardState{
				idx: int32(i), net: n,
				q:      n.fset.Queue(i),
				arb:    rng.New(rng.Mix(seed, shardArbSalt, uint64(i))),
				stats:  &Stats{},
				cache:  &routeCache{},
				pools:  &entityPools{},
				scr:    &scratchSpace{},
				wormID: wid, wormStride: int64(shards),
			}
			sh.cache.init(t.NumSwitches)
			sh.scr.init(t)
			n.shs[i] = sh
		}
	case shards > 1:
		n.lanes = event.NewShardSet(shards, window)
		for i := 0; i < shards; i++ {
			n.shs[i] = n.sharedShard(int32(i))
			n.shs[i].lane = n.lanes.Lane(i)
		}
	default:
		n.shs[0] = n.sharedShard(0)
		n.shs[0].q = &n.queue
	}
	n.cache.init(t.NumSwitches)
	n.scr.init(t)
}

// sharedShard builds a shard state aliasing the network's shared
// serial-mode state (engine surface filled in by the caller).
func (n *Network) sharedShard(idx int32) *shardState {
	return &shardState{
		idx: idx, net: n,
		arb:    n.arb,
		stats:  &n.stats,
		cache:  &n.cache,
		pools:  &n.pools,
		scr:    &n.scr,
		wormID: &n.nextWormID, wormStride: 1,
	}
}

// shardArbSalt derives per-shard arbitration RNG streams in fast mode.
const shardArbSalt = 0x5ade5a17

// Shards reports the configured shard count.
func (n *Network) Shards() int { return n.nshards }

// ShardStats reports window-synchronization counters (zero under the
// single-queue engine).
func (n *Network) ShardStats() event.ShardStats {
	if n.lanes != nil {
		return n.lanes.Stats()
	}
	if n.fset != nil {
		return n.fset.Stats()
	}
	return event.ShardStats{}
}

// validateFastRun refuses model features the parallel engine cannot run
// without cross-shard mutation. Checked at setup so a fast run either
// starts clean or fails with a typed, actionable error.
type FastModeError struct {
	Feature string
}

func (e *FastModeError) Error() string {
	return fmt.Sprintf("sim: %s requires a serial engine (shards=1 or serial-equivalence WithShards); the parallel WithFastShards engine does not support it", e.Feature)
}

func (n *Network) fastModeCheck(feature string) error {
	if n.fset != nil {
		return &FastModeError{Feature: feature}
	}
	return nil
}

// drainFast is Drain's coordinator loop for the parallel engine: open
// the window at the earliest pending timestamp, run every shard through
// it concurrently, exchange boundary mailboxes, then re-check
// termination, invariants and the stall watchdog between windows (the
// barrier gives the coordinator a consistent view).
func (n *Network) drainFast(maxEvents uint64) error {
	f := n.fset
	f.Start()
	defer f.Stop()
	watch := n.params.StallCycles
	lastSig := int64(-1)
	var lastAt event.Time
	var total uint64
	for {
		processed, ran, err := f.Window()
		total += processed
		if err != nil {
			return fmt.Errorf("sim: shard window exchange: %w", err)
		}
		if inv := n.Invariant(); inv != nil {
			return inv
		}
		if !ran {
			if n.outstanding.Load() > 0 {
				return n.stallReport(true)
			}
			return nil
		}
		if n.outstanding.Load() == 0 && f.Len() == 0 {
			return nil
		}
		if total > maxEvents {
			return fmt.Errorf("sim: event budget %d exhausted at t=%d (%d outstanding)", maxEvents, f.Now(), n.outstanding.Load())
		}
		if watch > 0 && n.outstanding.Load() > 0 {
			sig := n.Stats().FlitHops
			now := f.Now()
			if sig != lastSig {
				lastSig = sig
				lastAt = now
			} else if now-lastAt >= watch {
				return n.stallReport(false)
			}
		}
	}
}
