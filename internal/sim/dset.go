package sim

import (
	"mcastsim/internal/bitset"
	"mcastsim/internal/destset"
)

// dset is the planner's destination-set currency: a tree worm's remaining
// destinations, a down-partition subset, a group snapshot. Exactly one of
// bits/runs is non-nil on a live dset; which one is uniform per Network
// (chosen once by Params.SetRep at New), so the hot path never mixes
// representations and the branch predictor sees one arm.
//
//   - bits: the paper's flat N-bit string (bitset.Set). O(N/64) words per
//     set operation — exact historical behavior at paper/S/M sizes.
//   - runs: the interval-coded run list (destset.Runs). Operations cost
//     O(runs) or O(runs × span/64): at the 1M-host tiers a rack-clustered
//     multicast is a handful of runs instead of a 125 KB bit string, which
//     is what lets the XL tier flit-simulate in commodity RAM.
//
// Every method is a pure membership operation, so the two representations
// are observation-equivalent: identical predicates, identical iteration
// order, identical RNG draw sequences downstream. The S/M golden tests pin
// byte-identical traces for both.
type dset struct {
	bits *bitset.Set
	runs *destset.Runs
}

// some reports whether the dset holds a set at all (the nil-pointer check
// of the old *bitset.Set field).
func (d dset) some() bool { return d.bits != nil || d.runs != nil }

func (d dset) count() int {
	if d.bits != nil {
		return d.bits.Count()
	}
	return d.runs.Count()
}

func (d dset) empty() bool {
	if d.bits != nil {
		return d.bits.Empty()
	}
	return d.runs.Empty()
}

func (d dset) contains(i int) bool {
	if d.bits != nil {
		return d.bits.Contains(i)
	}
	return d.runs.Contains(i)
}

func (d dset) add(i int) {
	if d.bits != nil {
		d.bits.Add(i)
		return
	}
	d.runs.Add(i)
}

func (d dset) remove(i int) {
	if d.bits != nil {
		d.bits.Remove(i)
		return
	}
	d.runs.Remove(i)
}

// copyFrom sets d to a copy of o. Both sides come from the same network's
// pools, so the representations always match.
func (d dset) copyFrom(o dset) {
	if d.bits != nil {
		d.bits.CopyFrom(o.bits)
		return
	}
	d.runs.CopyFrom(o.runs)
}

// indices returns the members ascending (cold paths: errors, traces).
func (d dset) indices() []int {
	if d.bits != nil {
		return d.bits.Indices()
	}
	return d.runs.Indices()
}

// anyInRange reports whether any member falls in [lo, hi] — the local-
// delivery gate against a switch's contiguous host range.
func (d dset) anyInRange(lo, hi int) bool {
	if d.bits != nil {
		return d.bits.AnyInRange(lo, hi)
	}
	return d.runs.AnyInRange(lo, hi)
}

// intersectsBits reports whether d shares a member with the reachability
// string o.
func (d dset) intersectsBits(o *bitset.Set) bool {
	if d.bits != nil {
		return d.bits.Intersects(o)
	}
	return d.runs.IntersectsBits(o)
}

// subsetOfBits reports whether every member is set in o — the Covers test.
func (d dset) subsetOfBits(o *bitset.Set) bool {
	if d.bits != nil {
		return d.bits.SubsetOf(o)
	}
	return d.runs.SubsetOfBits(o)
}

// andCountBits returns how many members are set in o — the greedy
// down-partition's scoring primitive.
func (d dset) andCountBits(o *bitset.Set) int {
	if d.bits != nil {
		return bitset.AndCount(d.bits, o)
	}
	return d.runs.AndCountBits(o)
}

// intersectInto sets dst = d & o (dst from the same network's pools; must
// not alias d).
func (d dset) intersectInto(dst dset, o *bitset.Set) {
	if d.bits != nil {
		bitset.AndInto(dst.bits, d.bits, o)
		return
	}
	dst.runs.SetToIntersection(d.runs, o)
}

// differenceWith sets d = d &^ o in place.
func (d dset) differenceWith(o dset) {
	if d.bits != nil {
		d.bits.DifferenceWith(o.bits)
		return
	}
	d.runs.DifferenceWith(o.runs)
}

// equalRuns reports whether d holds exactly the members of the cached run
// snapshot r — the route cache's verify-on-hit step.
func (d dset) equalRuns(r *destset.Runs) bool {
	if d.bits != nil {
		return r.EqualBits(d.bits)
	}
	return d.runs.Equal(r)
}

// cloneRuns returns a fresh cache-owned run snapshot of d's members.
func (d dset) cloneRuns() *destset.Runs {
	var r *destset.Runs
	if d.bits != nil {
		r = destset.NewRuns(d.bits.Len())
		r.CopyFromBits(d.bits)
	} else {
		r = destset.NewRuns(d.runs.Universe())
		r.CopyFrom(d.runs)
	}
	return r
}

// copyFromRuns sets d to the members of the cached run snapshot r — the
// route cache's hit-expansion step into a pooled set.
func (d dset) copyFromRuns(r *destset.Runs) {
	if d.bits != nil {
		r.WriteToBits(d.bits)
		return
	}
	d.runs.CopyFrom(r)
}

// ivalHeaderBytes returns the interval-coded wire size of d's members
// (tree-worm header sizing under HeaderIval).
func (d dset) ivalHeaderBytes() int {
	if d.bits != nil {
		return destset.IvalBytesOf(d.bits)
	}
	return d.runs.HeaderBytes()
}
