package sim

import "mcastsim/internal/obs"

// Obs wiring. The entire subsystem hangs off the single nil-checked
// n.obsRec pointer: with it nil (the default) no probe fires, no event
// is posted, and the steady flit path is bit-for-bit the code it was
// before — the zero-overhead contract TestSteadyFlitPathZeroAllocObsOff
// and the golden traces pin.
//
// Sampling never perturbs the model: the flush only reads counters and
// queue depths, never touches n.arb, and the evObsFlush event's handler
// mutates no simulation state, so TraceEvent streams are byte-identical
// with obs enabled or disabled (only EventsProcessed moves, by the tick
// count).

// attachObs registers the network's shape with the recorder and indexes
// every channel for delta sampling. Enumeration order is deterministic:
// switch output channels in (switch, port) order, then per-node
// injection channels — the same walk ChannelUsage reports.
func (n *Network) attachObs(r *obs.Recorder) {
	n.obsRec = r
	n.obsChans = n.obsChans[:0]
	var labels []string
	for _, sw := range n.switches {
		for _, op := range sw.outPorts {
			if op == nil || op.ch == nil {
				continue
			}
			op.ch.obsID = int32(len(n.obsChans))
			n.obsChans = append(n.obsChans, op.ch)
			labels = append(labels, op.ch.label)
		}
	}
	for _, x := range n.nis {
		x.inj.obsID = int32(len(n.obsChans))
		n.obsChans = append(n.obsChans, x.inj)
		labels = append(labels, x.inj.label)
	}
	r.AttachNetwork(labels, n.topo.NumSwitches, n.topo.NumNodes)
	n.engineObsSink(r.EngineSink())
}

// obsArm starts the sampling tick if obs is attached and no tick is
// pending. Called from Send, so an idle network schedules nothing.
func (n *Network) obsArm() {
	if n.obsRec == nil || n.obsTickArmed {
		return
	}
	n.obsTickArmed = true
	n.ctlPostAfter(n.obsRec.Every(), evObsFlush, nil, 0)
}

// obsTick is the evObsFlush handler: sample, then re-arm only while the
// model still has both in-flight messages and runnable events. The
// second condition matters for termination: Drain treats an empty queue
// with outstanding messages as a stall, and a self-rescheduling tick
// would otherwise keep the queue non-empty forever on a genuinely
// wedged run.
func (n *Network) obsTick() {
	n.obsFlush()
	if n.outstanding.Load() > 0 && n.queueLen() > 0 {
		n.ctlPostAfter(n.obsRec.Every(), evObsFlush, nil, 0)
		return
	}
	n.obsTickArmed = false
}

// FlushObs captures the tail sampling interval — everything since the
// last tick — into the recorder. Traffic drivers call it once per
// network at end of run so interval series reconcile exactly with the
// final Stats (sum of per-channel flits == Stats.FlitHops). No-op when
// obs is disabled.
func (n *Network) FlushObs() {
	if n.obsRec != nil {
		n.obsFlush()
	}
}

// obsFlush writes one sample. Cumulative fields are passed as running
// totals; the recorder differentiates them against the previous sample.
func (n *Network) obsFlush() {
	r := n.obsRec
	r.Sample(n.nowAt(), func(s *obs.Snapshot) {
		for i, ch := range n.obsChans {
			s.ChanFlits[i] = ch.busyFlits
		}
		for si, sw := range n.switches {
			var occ int64
			for _, b := range sw.inBufs {
				if b != nil {
					occ += int64(b.used)
				}
			}
			s.BufOcc[si] = occ
		}
		for node, x := range n.nis {
			s.NISend[node] = int64(len(x.ready) + len(x.injWait))
			s.NIRecv[node] = int64(len(x.rxFlits))
		}
		if len(n.groups) > 0 {
			s.GroupSize = make([]int64, len(n.groups))
			s.GroupStale = make([]int64, len(n.groups))
			s.GroupMissed = make([]int64, len(n.groups))
			s.GroupRepairs = make([]int64, len(n.groups))
			for gi, g := range n.groups {
				s.GroupSize[gi] = int64(g.Size())
				s.GroupStale[gi] = g.stale
				s.GroupMissed[gi] = g.missed
				s.GroupRepairs[gi] = g.repairs
			}
		}
		s.FlitHops = n.stats.FlitHops
		es := n.engineEventStats()
		s.Events = es.Processed
		s.QueueLen = int64(es.Len)
		s.FarLen = int64(es.FarLen)
	})
}
