package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mcastsim/internal/event"
	"mcastsim/internal/obs"
	"mcastsim/internal/rng"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// Stats aggregates conservation and throughput counters over a simulation.
type Stats struct {
	WormsCreated    int64 // worm entities, including replication children
	PacketsInjected int64 // packet streams started at NIs
	FlitHops        int64 // flit transmissions over any channel
	FlitsDelivered  int64 // flits absorbed by NIs
	PacketsAtNI     int64 // packets fully assembled at receiving NIs
	PacketsToHost   int64 // packets DMA'd into host memory
	MessagesSent    int64
	MessagesDone    int64

	// Fault-layer counters (all zero on fault-free runs).
	FlitsDropped int64 // flits of torn-down worms drained on arrival
	WormsKilled  int64 // worms torn down by the fault layer
	DestsFailed  int64 // destination deliveries declared failed
	Reconfigs    int64 // routing-table rebuilds that completed

	// Dynamic-group counters (all zero without registered groups).
	MembershipEvents int64 // applied (non-redundant) join/leave events
	StaleDeliveries  int64 // deliveries to nodes that had left the group
	MissedDeliveries int64 // in-flight snapshots that excluded a joiner
}

// switchState holds one switch's per-port runtime structures; unwired
// (open) ports have nil entries.
type switchState struct {
	inBufs   []*inputBuf
	outPorts []*outPort
}

// portPeer records one end of an up link for the climb BFS.
type portPeer struct {
	sw   int // peer switch (upAdj) or predecessor switch (revUp)
	port int // local port carrying the link
}

// Network is a runnable simulation instance: a routed topology plus all
// switch, link and NI state, driven by a discrete-event queue. It is not
// safe for concurrent use; one goroutine owns one Network.
type Network struct {
	topo   *topology.Topology
	rt     *updown.Routing
	params Params
	queue  event.Queue
	arb    *rng.Source

	// running guards the event loop against concurrent entry (see
	// enterRun): a cheap assertion of the one-goroutine-per-Network
	// contract, not a synchronization mechanism.
	running atomic.Bool

	switches []*switchState
	nis      []*ni

	// upAdj[s] lists s's up ports and their peers; revUp[q] lists the
	// (switch, port) pairs whose up port lands on q.
	upAdj [][]portPeer
	revUp [][]portPeer

	// outstanding is atomic because fast-mode destination completion
	// decrements it from shard workers; every other engine touches it
	// from the single event-loop goroutine.
	outstanding atomic.Int64
	nextWormID  int64
	nextMsgID   int64
	stats       Stats
	tracer      func(TraceEvent)

	// Sharded-PDES state (see shard.go). shs always has nshards >= 1
	// entries; in serial modes every entry aliases the shared state
	// above. lanes is the serial-equivalence merge engine, fset the
	// parallel window engine; with both nil the network runs its own
	// single calendar queue exactly as before sharding existed.
	nshards int
	shs     []*shardState
	swShard []int32
	lanes   *event.ShardSet
	fset    *event.FastSet

	// Observability (see obs.go): obsRec nil means disabled — the only
	// state the rest of the pipeline ever checks. obsChans indexes every
	// channel in registration order for delta sampling; obsTickArmed
	// dedups the self-rescheduling evObsFlush tick.
	obsRec       *obs.Recorder
	obsChans     []*channel
	obsTickArmed bool

	// Fault-layer state (see fault.go). deadLink/deadSwitch mirror the
	// injected faults; faulted flips true at the first fault and gates the
	// dead-port filtering in fileRequest; partitioned records a failed
	// reconfiguration; invariant holds the first routing-invariant
	// violation seen on a fault-free run; progress counts control-plane
	// steps for the stall watchdog; reconfigEpoch coalesces detection
	// windows.
	deadLink      []bool
	deadSwitch    []bool
	faulted       bool
	partitioned   bool
	invMu         sync.Mutex
	invariant     *InvariantError
	progress      int64
	reconfigEpoch int

	// routingEpoch versions the routing-derived state (tables, port
	// orientations, reachability); every applied fault/repair and every
	// table swap bumps it, and the route cache flushes when it lags.
	routingEpoch int
	cache        routeCache

	// origOpts is the routing-options value the network was constructed
	// with — the stable identity Checkpoint fingerprints, since rt.Opts
	// changes when reconfiguration swaps tables. lastSwapOpts records
	// the updown options of the most recent successful reconfiguration
	// swap, so Checkpoint can serialize the routing state as "rebuild
	// with these options" instead of the full tables (the rebuild is
	// deterministic). Nil until the first swap.
	origOpts     updown.Options
	lastSwapOpts *updown.Options

	// Dynamic multicast groups (see group.go); empty on static runs.
	groups []*Group

	// Topology/routing precomputes rebuilt alongside the tables.
	nodesAt   [][]topology.NodeID // nodes attached to each switch
	downPorts [][]int             // rt.DownPorts per switch

	// hostLo/hostHi give each switch's attached hosts as a contiguous id
	// range [lo, hi] when the attachment is contiguous (every scale
	// generator numbers hosts per edge switch that way), replacing the
	// per-switch localNodes bit strings — an O(S×N) table that costs
	// ~1.25 GB at 10k switches × 1M hosts. lo=0/hi=-1 marks a hostless
	// switch; lo=-1 marks an irregular attachment, where planTree's local
	// gate falls back to probing nodesAt[s] (paper-size nets are tiny, so
	// the probe is a handful of Contains calls).
	hostLo []int32
	hostHi []int32

	// sparse selects the run-coded destination-set representation for
	// every pooled planning set (see dset.go); fixed at New from
	// Params.SetRep and never changed.
	sparse bool

	// reclaimAfter is the branch quarantine horizon (see pool.go).
	reclaimAfter event.Time

	// Shared free lists and per-decision scratch (see shard.go): every
	// serial-mode shard aliases these; fast-mode shards own private
	// instances.
	pools entityPools
	scr   scratchSpace
}

// Engine selects the scheduler backend a Network runs on. The calendar
// queue is the production engine; the legacy binary heap is kept for the
// determinism suite, which proves both dispatch identical event streams.
type Engine = event.Backend

const (
	// EngineCalendar is the typed-event calendar-queue scheduler.
	EngineCalendar = event.BackendCalendar
	// EngineHeap is the legacy binary-heap scheduler (same typed
	// entries, (time, seq)-ordered heap instead of bucket ring).
	EngineHeap = event.BackendHeap
)

// New assembles a network over a routed topology. The seed drives only
// adaptive-routing tie-breaks; identical seeds give identical runs.
// Options (WithEngine, WithTrace, WithObs) are applied after assembly,
// before any event exists; their application order is fixed, so the
// order they are passed in never matters.
func New(rt *updown.Routing, params Params, seed uint64, opts ...Option) (*Network, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	var o netOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.shards > 1 && o.engineSet && o.engine == EngineHeap {
		return nil, &event.BackendShardError{Backend: o.engine, Shards: o.shards}
	}
	t := rt.Topo
	n := &Network{
		topo:     t,
		rt:       rt,
		params:   params,
		arb:      rng.New(seed),
		origOpts: rt.Opts,
	}
	n.sparse = params.SetRep == RepSparse ||
		(params.SetRep == RepAuto && t.NumNodes >= SparseUniverseThreshold)
	n.initShards(o.shards, o.fastShards, seed)
	if n.lanes != nil {
		n.registerKinds(n.lanes)
	} else if n.fset != nil {
		for i := 0; i < n.fset.Shards(); i++ {
			n.registerKinds(n.fset.Queue(i))
		}
	} else {
		n.registerKinds(&n.queue)
	}

	// Instantiate per-port structures. Every buffer and output port of a
	// switch belongs to that switch's shard.
	n.switches = make([]*switchState, t.NumSwitches)
	for s := 0; s < t.NumSwitches; s++ {
		st := &switchState{
			inBufs:   make([]*inputBuf, t.PortsPerSwitch),
			outPorts: make([]*outPort, t.PortsPerSwitch),
		}
		n.switches[s] = st
		sh := n.shardOf(topology.SwitchID(s))
		for p := 0; p < t.PortsPerSwitch; p++ {
			if t.Conn[s][p].Kind == topology.Open {
				continue
			}
			st.inBufs[p] = &inputBuf{net: n, sh: sh, sw: topology.SwitchID(s), port: p, cap: params.BufferFlits}
			st.outPorts[p] = &outPort{net: n, sh: sh, sw: topology.SwitchID(s), port: p}
		}
	}

	// Wire channels: switch output ports to their peers, and per-node
	// injection lines. A channel is owned by its sender's shard (credit
	// and line state are mutated on the sending side); dst records the
	// receiving shard for the boundary evDeliver hop.
	for s := 0; s < t.NumSwitches; s++ {
		for p := 0; p < t.PortsPerSwitch; p++ {
			e := t.Conn[s][p]
			op := n.switches[s].outPorts[p]
			switch e.Kind {
			case topology.ToSwitch:
				peer := n.switches[e.Switch].inBufs[e.Port]
				op.ch = &channel{toSwitch: true, dstBuf: peer, credits: peer.cap,
					sh: op.sh, dst: peer.sh,
					label: fmt.Sprintf("s%dp%d->s%d", s, p, e.Switch)}
				peer.bindUpstream(op.ch)
			case topology.ToNode:
				// The ejection channel's NI is homed on this switch, so
				// ejection never crosses a shard boundary.
				op.ch = &channel{toSwitch: false, dstNode: e.Node,
					sh: op.sh, dst: op.sh,
					label: fmt.Sprintf("ej n%d", e.Node)}
			}
		}
	}
	n.nis = make([]*ni, t.NumNodes)
	for node := 0; node < t.NumNodes; node++ {
		home := t.NodeSwitch[node]
		buf := n.switches[home].inBufs[t.NodePort[node]]
		inj := &channel{toSwitch: true, dstBuf: buf, credits: buf.cap,
			sh: buf.sh, dst: buf.sh,
			label: fmt.Sprintf("inj n%d", node)}
		buf.bindUpstream(inj)
		n.nis[node] = newNI(n, topology.NodeID(node), inj)
	}

	// Up-link adjacency for the tree-worm climb.
	n.upAdj = make([][]portPeer, t.NumSwitches)
	n.revUp = make([][]portPeer, t.NumSwitches)
	for s := 0; s < t.NumSwitches; s++ {
		for p := 0; p < t.PortsPerSwitch; p++ {
			if rt.Dirs[s][p] != updown.DirUp {
				continue
			}
			q := int(t.Conn[s][p].Switch)
			n.upAdj[s] = append(n.upAdj[s], portPeer{sw: q, port: p})
			n.revUp[q] = append(n.revUp[q], portPeer{sw: s, port: p})
		}
	}

	// Hot-path precomputes and scratch (see routecache.go / pool.go).
	// NodesBySwitch is one O(N+S) pass; per-switch NodesAt calls here
	// were O(S·N), minutes of setup at datacenter sizes.
	n.nodesAt = t.NodesBySwitch()
	n.hostLo = make([]int32, t.NumSwitches)
	n.hostHi = make([]int32, t.NumSwitches)
	for s := 0; s < t.NumSwitches; s++ {
		nodes := n.nodesAt[s]
		if len(nodes) == 0 {
			n.hostLo[s], n.hostHi[s] = 0, -1
			continue
		}
		lo, hi := nodes[0], nodes[len(nodes)-1]
		if int(hi)-int(lo)+1 == len(nodes) {
			// NodesBySwitch lists ids ascending, so first==min and
			// last==max; an exact span means the attachment is contiguous.
			n.hostLo[s], n.hostHi[s] = int32(lo), int32(hi)
		} else {
			n.hostLo[s], n.hostHi[s] = -1, -2
		}
	}
	n.rebuildDownPorts()
	n.reclaimAfter = n.reclaimQuarantine()

	if err := n.applyOptions(&o); err != nil {
		return nil, err
	}
	return n, nil
}

// localIntersects reports whether d contains a host attached to switch s
// — planTree's local-delivery gate, formerly Intersects against a
// per-switch localNodes bit string. Same predicate, no O(S×N) table.
func (n *Network) localIntersects(d dset, s topology.SwitchID) bool {
	lo, hi := n.hostLo[s], n.hostHi[s]
	if lo >= 0 {
		return lo <= hi && d.anyInRange(int(lo), int(hi))
	}
	for _, node := range n.nodesAt[s] {
		if d.contains(int(node)) {
			return true
		}
	}
	return false
}

// rebuildDownPorts refreshes the per-switch down-port lists from the
// current routing tables (New and every table swap).
func (n *Network) rebuildDownPorts() {
	if n.downPorts == nil {
		n.downPorts = make([][]int, n.topo.NumSwitches)
	}
	for s := 0; s < n.topo.NumSwitches; s++ {
		n.downPorts[s] = n.rt.DownPorts(topology.SwitchID(s))
	}
}

// Topology returns the simulated topology.
func (n *Network) Topology() *topology.Topology { return n.topo }

// Routing returns the up*/down* state the network routes with.
func (n *Network) Routing() *updown.Routing { return n.rt }

// Params returns the network's timing parameters.
func (n *Network) Params() Params { return n.params }

// Now returns the current simulation time.
func (n *Network) Now() event.Time { return n.nowAt() }

// Stats returns a snapshot of the conservation counters. Under the
// parallel engine the per-shard instances are merged on read (only
// between windows — Drain's coordinator context — is the view
// consistent).
func (n *Network) Stats() Stats {
	if n.fset == nil {
		return n.stats
	}
	out := n.stats
	for _, sh := range n.shs {
		out.add(sh.stats)
	}
	return out
}

// add accumulates o's counters into s (fast-mode per-shard merge).
func (s *Stats) add(o *Stats) {
	s.WormsCreated += o.WormsCreated
	s.PacketsInjected += o.PacketsInjected
	s.FlitHops += o.FlitHops
	s.FlitsDelivered += o.FlitsDelivered
	s.PacketsAtNI += o.PacketsAtNI
	s.PacketsToHost += o.PacketsToHost
	s.MessagesSent += o.MessagesSent
	s.MessagesDone += o.MessagesDone
	s.FlitsDropped += o.FlitsDropped
	s.WormsKilled += o.WormsKilled
	s.DestsFailed += o.DestsFailed
	s.Reconfigs += o.Reconfigs
	s.MembershipEvents += o.MembershipEvents
	s.StaleDeliveries += o.StaleDeliveries
	s.MissedDeliveries += o.MissedDeliveries
}

// Outstanding returns the number of in-flight messages.
func (n *Network) Outstanding() int { return int(n.outstanding.Load()) }

// EventsProcessed returns the total number of discrete events the
// network's scheduler has executed — the denominator of the events/sec
// throughput metric the perf benchmarks report.
func (n *Network) EventsProcessed() uint64 {
	if n.lanes != nil {
		return n.lanes.Processed()
	}
	if n.fset != nil {
		return n.fset.Processed()
	}
	return n.queue.Processed()
}

// Schedule runs fn at absolute simulation time t (for traffic generators).
func (n *Network) Schedule(t event.Time, fn func()) { n.schedAt(t, fn) }

// Send schedules a multicast described by plan carrying flits payload flits,
// initiated at time at. onComplete (optional) fires when the last
// destination's host has the message.
func (n *Network) Send(plan *Plan, flits int, at event.Time, onComplete func(*Message)) (*Message, error) {
	if err := plan.Validate(n.topo.NumNodes, n.topo.NumSwitches); err != nil {
		return nil, err
	}
	if flits <= 0 {
		return nil, fmt.Errorf("sim: message length %d", flits)
	}
	if at < n.nowAt() {
		return nil, fmt.Errorf("sim: send scheduled in the past")
	}
	if n.fset != nil {
		if err := n.validateFastPlan(plan, onComplete); err != nil {
			return nil, err
		}
	}
	m := &Message{
		ID:         n.nextMsgID,
		Plan:       plan,
		Flits:      flits,
		Packets:    n.params.Packets(flits),
		Initiated:  at,
		DoneAt:     make(map[topology.NodeID]event.Time, len(plan.Dests)),
		remaining:  len(plan.Dests),
		onComplete: onComplete,
	}
	// All message-level events (start, per-destination completion) run
	// on the source NI's shard: Message state has a single owner.
	m.sh = n.shardOf(n.topo.NodeSwitch[plan.Source])
	n.nextMsgID++
	n.outstanding.Add(1)
	n.stats.MessagesSent++
	m.sh.post(at, evMsgStart, m, 0)
	if n.obsRec != nil {
		n.obsArm()
	}
	return m, nil
}

// validateFastPlan refuses plan shapes the parallel engine cannot run:
// secondary host sends execute on arbitrary destination shards and
// would mutate NI state cross-shard, and completion callbacks would run
// on a shard worker against caller state. Both work fine on the serial
// engines.
func (n *Network) validateFastPlan(plan *Plan, onComplete func(*Message)) error {
	if onComplete != nil {
		return &FastModeError{Feature: "Send with an onComplete callback"}
	}
	for node := range plan.HostSends {
		if node != plan.Source {
			return &FastModeError{Feature: "secondary-source host sends (Plan.HostSends at a non-source node)"}
		}
	}
	return nil
}

// msgStart fires at a message's initiation time (the evMsgStart handler):
// the source host begins its sends.
func (n *Network) msgStart(m *Message) {
	src := n.nis[m.Plan.Source]
	if m.Plan.NITree != nil {
		src.hostSend(m, nil)
		return
	}
	for i := range m.Plan.HostSends[m.Plan.Source] {
		src.hostSend(m, &m.Plan.HostSends[m.Plan.Source][i])
	}
}

// DeadlockError reports a simulation that stopped making progress with
// messages still in flight. Drain now diagnoses stalls with the richer
// StallError; this type remains only for message-format compatibility.
type DeadlockError struct {
	At          event.Time
	Outstanding int
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: no runnable events at t=%d with %d messages outstanding", e.At, e.Outstanding)
}

// StuckWorm is one worm the stall watchdog found resident in an input
// buffer when the simulation stopped making progress.
type StuckWorm struct {
	Worm    int64
	Msg     int64
	Switch  topology.SwitchID
	Port    int
	Arrived int // flits that reached the buffer
	Len     int // the worm's full stream length
	Routed  bool
}

// HeldPort is one output port the stall watchdog found allocated, with
// the holding worm and the number of queued waiters.
type HeldPort struct {
	Switch  topology.SwitchID
	Port    int
	Worm    int64
	Waiters int
}

// StallError is the progress watchdog's structured report: the
// simulation went StallCycles (or ran out of events entirely —
// QueueEmpty) without a single flit movement or control-plane step while
// messages were still outstanding. Stuck and Held name the wedged worms
// and the ports they are fighting over.
type StallError struct {
	At          event.Time
	Outstanding int
	QueueEmpty  bool
	Stuck       []StuckWorm
	Held        []HeldPort
}

func (e *StallError) Error() string {
	cause := "no flit progress"
	if e.QueueEmpty {
		cause = "no runnable events"
	}
	s := fmt.Sprintf("sim: stall: %s at t=%d with %d messages outstanding; %d stuck worms, %d held ports",
		cause, e.At, e.Outstanding, len(e.Stuck), len(e.Held))
	const cap = 8
	for i, w := range e.Stuck {
		if i == cap {
			s += fmt.Sprintf("\n  ... %d more stuck worms", len(e.Stuck)-cap)
			break
		}
		s += fmt.Sprintf("\n  worm %d (msg %d) at switch %d port %d: %d/%d flits, routed=%v",
			w.Worm, w.Msg, w.Switch, w.Port, w.Arrived, w.Len, w.Routed)
	}
	for i, h := range e.Held {
		if i == cap {
			s += fmt.Sprintf("\n  ... %d more held ports", len(e.Held)-cap)
			break
		}
		s += fmt.Sprintf("\n  port %d/%d held by worm %d with %d waiters", h.Switch, h.Port, h.Worm, h.Waiters)
	}
	return s
}

// stallReport assembles the watchdog's structured stall report from the
// live switch state.
func (n *Network) stallReport(queueEmpty bool) *StallError {
	e := &StallError{At: n.nowAt(), Outstanding: int(n.outstanding.Load()), QueueEmpty: queueEmpty}
	for s, st := range n.switches {
		for p, b := range st.inBufs {
			if b == nil {
				continue
			}
			for _, o := range b.occupants {
				e.Stuck = append(e.Stuck, StuckWorm{
					Worm: o.w.id, Msg: o.w.msg.ID,
					Switch: topology.SwitchID(s), Port: p,
					Arrived: o.arrived, Len: o.w.len, Routed: o.routed,
				})
			}
		}
		for p, op := range st.outPorts {
			if op == nil || op.holder == nil {
				continue
			}
			waiters := 0
			for _, req := range op.queue {
				if !req.granted {
					waiters++
				}
			}
			e.Held = append(e.Held, HeldPort{
				Switch: topology.SwitchID(s), Port: p,
				Worm: op.holder.w.id, Waiters: waiters,
			})
		}
	}
	return e
}

// Drain runs the simulation until all in-flight work completes. maxEvents
// (0 = a generous default) bounds runaway simulations.
//
// Termination diagnostics: if a routing invariant was violated on a
// fault-free network Drain returns the recorded *InvariantError; if the
// event queue empties with messages outstanding, or the progress watchdog
// sees no flit movement (and no control-plane step) for
// Params.StallCycles while work is outstanding, Drain returns a
// *StallError naming the stuck worms and held ports.
func (n *Network) Drain(maxEvents uint64) error {
	n.enterRun()
	defer n.exitRun()
	if maxEvents == 0 {
		maxEvents = 1 << 34
	}
	if n.fset != nil {
		return n.drainFast(maxEvents)
	}
	watch := n.params.StallCycles
	lastSig := int64(-1)
	var lastAt event.Time
	for i := uint64(0); i < maxEvents; i++ {
		if !n.engineStep() {
			if n.outstanding.Load() > 0 {
				return n.stallReport(true)
			}
			return nil
		}
		if n.invariant != nil {
			return n.invariant
		}
		if n.outstanding.Load() == 0 && n.queueLen() == 0 {
			return nil
		}
		if watch > 0 && n.outstanding.Load() > 0 {
			sig := n.stats.FlitHops + n.progress
			now := n.nowAt()
			if sig != lastSig {
				lastSig = sig
				lastAt = now
			} else if now-lastAt >= watch {
				return n.stallReport(false)
			}
		}
	}
	return fmt.Errorf("sim: event budget %d exhausted at t=%d (%d outstanding)", maxEvents, n.nowAt(), n.outstanding.Load())
}

// enterRun asserts the single-goroutine contract on event-loop entry: a
// Network, its event loop, and every callback the loop fires (message
// completion hooks, scheduled arrival closures) all run on the one
// goroutine that entered Drain or RunUntil. Captured variables in those
// callbacks (e.g. traffic.RunLoadOn's latency slice and error slot) are
// therefore safe without locks. A parallel harness may only parallelize
// across Networks, never within one; concurrent entry is a programming
// error and panics rather than silently corrupting simulator state.
func (n *Network) enterRun() {
	if !n.running.CompareAndSwap(false, true) {
		panic("sim: concurrent use of Network: the event loop and its callbacks are single-goroutine; parallelize across networks, never within one")
	}
}

// exitRun releases the event-loop entry guard.
func (n *Network) exitRun() { n.running.Store(false) }

// RunUntil advances the simulation clock to limit, executing all events due
// by then (open-loop load experiments use this).
func (n *Network) RunUntil(limit event.Time) {
	n.enterRun()
	defer n.exitRun()
	if n.lanes != nil {
		n.lanes.RunUntil(limit)
		return
	}
	if n.fset != nil {
		// The parallel engine advances in whole windows; events inside
		// the window that straddles limit run with it (open-loop drivers
		// that need exact stopping points use a serial engine).
		n.fset.Start()
		defer n.fset.Stop()
		for {
			t, ok := n.fset.NextTime()
			if !ok || t > limit {
				return
			}
			if _, _, err := n.fset.Window(); err != nil {
				panic(err)
			}
		}
	}
	n.queue.RunUntil(limit)
}

// RunSingle sends one multicast at the current time, drains the network,
// and returns the completed message. It is the primitive behind all
// single-multicast latency experiments.
func (n *Network) RunSingle(plan *Plan, flits int) (*Message, error) {
	m, err := n.Send(plan, flits, n.nowAt(), nil)
	if err != nil {
		return nil, err
	}
	if err := n.Drain(0); err != nil {
		return nil, err
	}
	return m, nil
}

// ChannelUse is one channel's carried-flit count, for utilization studies.
type ChannelUse struct {
	Label string
	Flits int64
}

// ChannelUsage returns every channel's carried flits, busiest first. Divide
// by elapsed cycles for utilization (each channel carries 1 flit/cycle).
func (n *Network) ChannelUsage() []ChannelUse {
	var out []ChannelUse
	add := func(ch *channel) {
		if ch != nil {
			out = append(out, ChannelUse{Label: ch.label, Flits: ch.busyFlits})
		}
	}
	for _, st := range n.switches {
		for _, op := range st.outPorts {
			if op != nil {
				add(op.ch)
			}
		}
	}
	for _, x := range n.nis {
		add(x.inj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Flits > out[j].Flits })
	return out
}

// CheckConservation verifies flit/packet/message accounting invariants on
// an idle network and returns a descriptive error on violation.
func (n *Network) CheckConservation() error {
	if v := n.outstanding.Load(); v != 0 {
		return fmt.Errorf("sim: conservation checked with %d messages in flight", v)
	}
	s := n.Stats()
	if s.MessagesSent != s.MessagesDone {
		return fmt.Errorf("sim: %d messages sent but %d completed", s.MessagesSent, s.MessagesDone)
	}
	if s.PacketsAtNI != s.PacketsToHost {
		return fmt.Errorf("sim: %d packets at NIs but %d reached hosts", s.PacketsAtNI, s.PacketsToHost)
	}
	for _, x := range n.nis {
		if len(x.rxFlits) != 0 || len(x.rxMsgs) != 0 || len(x.rxHeld) != 0 || len(x.ready) != 0 || x.streaming {
			return fmt.Errorf("sim: NI %d left with residual state", x.node)
		}
	}
	for s2, st := range n.switches {
		for p, b := range st.inBufs {
			if b != nil && (b.used != 0 || len(b.occupants) != 0) {
				return fmt.Errorf("sim: buffer %d/%d not empty after drain", s2, p)
			}
		}
		for p, op := range st.outPorts {
			if op != nil && (op.holder != nil || len(op.queue) != 0) {
				return fmt.Errorf("sim: port %d/%d still allocated after drain", s2, p)
			}
		}
	}
	return nil
}
