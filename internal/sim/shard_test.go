package sim

import (
	"errors"
	"strings"
	"testing"

	"mcastsim/internal/event"
	"mcastsim/internal/obs"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// fixtureNetOpts is fixtureNet with engine options (shard tests pick the
// engine per subtest; every other suite keeps the plain constructor).
func fixtureNetOpts(t *testing.T, p Params, opts ...Option) *Network {
	t.Helper()
	links := [][4]int{
		{0, 0, 1, 0}, {0, 1, 2, 0}, {1, 1, 3, 0}, {2, 1, 3, 1}, {2, 2, 4, 0},
		{3, 2, 5, 0}, {4, 1, 5, 1}, {4, 2, 6, 0}, {5, 2, 7, 0}, {6, 1, 7, 1},
	}
	nodes := make([][2]int, 8)
	for i := range nodes {
		nodes[i] = [2]int{i, 7}
	}
	topo, err := topology.Build(8, 8, links, nodes)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := updown.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(rt, p, 1, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestHeapBackendShardsRefused pins the typed setup error: the heap
// backend renumbers sequence values on migration, which breaks the
// (at, seq, shard) merge contract, so combining it with any sharded
// engine must fail up front — for both the serial-equivalence and the
// parallel engine — while shards=1 still accepts the heap.
func TestHeapBackendShardsRefused(t *testing.T) {
	topo, err := topology.Build(2, 4,
		[][4]int{{0, 0, 1, 0}},
		[][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := updown.New(topo)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		opt  Option
	}{
		{"serial-equivalence", WithShards(2)},
		{"fast", WithFastShards(2)},
	} {
		_, err := New(rt, DefaultParams(), 1, tc.opt, WithEngine(EngineHeap))
		var bse *event.BackendShardError
		if !errors.As(err, &bse) {
			t.Fatalf("%s + heap: New returned %v, want *event.BackendShardError", tc.name, err)
		}
		if bse.Backend != event.BackendHeap || bse.Shards != 2 {
			t.Fatalf("%s: error carries %+v, want backend heap, 2 shards", tc.name, bse)
		}
	}

	if _, err := New(rt, DefaultParams(), 1, WithShards(1), WithEngine(EngineHeap)); err != nil {
		t.Fatalf("shards=1 + heap must remain legal, got %v", err)
	}
	if _, err := New(rt, DefaultParams(), 1, WithShards(2), WithEngine(EngineCalendar)); err != nil {
		t.Fatalf("shards=2 + calendar must be legal, got %v", err)
	}
}

// TestSerialEquivalenceTraceIdentity is the tentpole's core contract:
// under the serial-equivalence engine the tree-storm workload must
// produce a byte-identical TraceEvent stream and identical Stats for
// ANY shard count, because the global (at, seq) merge realizes exactly
// the single-queue execution order.
func TestSerialEquivalenceTraceIdentity(t *testing.T) {
	baseline := fixtureNet(t, DefaultParams())
	want := runTreeStorm(t, baseline)
	wantStats := baseline.Stats()

	for _, shards := range []int{2, 4, 8} {
		n := fixtureNetOpts(t, DefaultParams(), WithShards(shards))
		got := runTreeStorm(t, n)
		diffTraces(t, got, want)
		if gs := n.Stats(); gs != wantStats {
			t.Fatalf("shards=%d: stats diverged:\n sharded: %+v\n single:  %+v", shards, gs, wantStats)
		}
		st := n.ShardStats()
		if st.Violations != 0 {
			t.Fatalf("shards=%d: %d lookahead violations on a conforming model", shards, st.Violations)
		}
		if st.Crossings == 0 {
			t.Fatalf("shards=%d: workload never crossed a shard boundary — identity is vacuous", shards)
		}
		if st.Windows == 0 {
			t.Fatalf("shards=%d: window accounting never advanced", shards)
		}
	}
}

// TestSerialEquivalenceFaultScriptIdentity extends byte-identity to the
// control plane: the fault/repair/reconfiguration script (evFaultApply,
// table swaps, cache flushes, kills) must replay identically under the
// sharded serial engine. This is what licenses faultsweep and churnsweep
// to run with -shards > 1.
func TestSerialEquivalenceFaultScriptIdentity(t *testing.T) {
	baseline := fixtureNet(t, DefaultParams())
	want := runFaultScript(t, baseline)
	wantStats := baseline.Stats()

	for _, shards := range []int{2, 4} {
		n := fixtureNetOpts(t, DefaultParams(), WithShards(shards))
		got := runFaultScript(t, n)
		diffTraces(t, got, want)
		if gs := n.Stats(); gs != wantStats {
			t.Fatalf("shards=%d: stats diverged:\n sharded: %+v\n single:  %+v", shards, gs, wantStats)
		}
		if st := n.ShardStats(); st.Violations != 0 {
			t.Fatalf("shards=%d: %d lookahead violations", shards, st.Violations)
		}
	}
}

// fastStorm drives the tracer-free tree-storm script (fast mode refuses
// tracing) and returns per-run message latencies plus final stats.
func fastStorm(t *testing.T, n *Network) ([]event.Time, Stats) {
	t.Helper()
	var lat []event.Time
	for round := 0; round < 3; round++ {
		for _, src := range []topology.NodeID{0, 4, 7} {
			m := mustRun(t, n, treeStormPlan(src), 48)
			lat = append(lat, m.Latency())
		}
		lat = append(lat, mustRun(t, n, unicastPlan(0, 7), 48).Latency())
		lat = append(lat, mustRun(t, n, unicastPlan(6, 1), 48).Latency())
	}
	return lat, n.Stats()
}

// TestFastShardsDeterminismAndConservation: the parallel engine must (a)
// complete the storm with conservation intact, (b) be run-to-run
// deterministic for a fixed shard count, and (c) agree with the serial
// engine on every delivery-side counter (routes may differ — per-shard
// arbitration RNG streams — but what arrives must not).
func TestFastShardsDeterminismAndConservation(t *testing.T) {
	serialLat, serialStats := fastStorm(t, fixtureNet(t, DefaultParams()))

	for _, shards := range []int{2, 4} {
		a := fixtureNetOpts(t, DefaultParams(), WithFastShards(shards))
		latA, statsA := fastStorm(t, a)
		b := fixtureNetOpts(t, DefaultParams(), WithFastShards(shards))
		latB, statsB := fastStorm(t, b)

		if len(latA) != len(latB) {
			t.Fatalf("shards=%d: run lengths diverged", shards)
		}
		for i := range latA {
			if latA[i] != latB[i] {
				t.Fatalf("shards=%d: nondeterministic latency at message %d: %d vs %d", shards, i, latA[i], latB[i])
			}
		}
		if statsA != statsB {
			t.Fatalf("shards=%d: nondeterministic stats:\n run A: %+v\n run B: %+v", shards, statsA, statsB)
		}

		if statsA.MessagesSent != serialStats.MessagesSent ||
			statsA.MessagesDone != serialStats.MessagesDone ||
			statsA.PacketsInjected != serialStats.PacketsInjected ||
			statsA.PacketsAtNI != serialStats.PacketsAtNI ||
			statsA.PacketsToHost != serialStats.PacketsToHost ||
			statsA.FlitsDelivered != serialStats.FlitsDelivered {
			t.Fatalf("shards=%d: delivery counters diverged from serial:\n fast:   %+v\n serial: %+v",
				shards, statsA, serialStats)
		}
		if len(latA) != len(serialLat) {
			t.Fatalf("shards=%d: message count diverged from serial", shards)
		}

		st := a.ShardStats()
		if st.Windows == 0 || st.Crossings == 0 {
			t.Fatalf("shards=%d: fast run exchanged nothing (windows=%d crossings=%d) — parallelism is vacuous",
				shards, st.Windows, st.Crossings)
		}
	}
}

// TestFastShardsWideWindow is the wide-lookahead regression: with
// LinkDelay 8 the window is 8 cycles, so a cross-shard evDeliver and
// the sender-side evReclaim that recycles its branch can carry
// timestamps inside ONE window — the quarantine must push the reclaim
// into a later window or the destination shard dereferences a recycled
// branch (the crash the ShardScaling benchmark first hit). Asserts the
// same conservation and determinism contract as the narrow-window test.
func TestFastShardsWideWindow(t *testing.T) {
	p := DefaultParams()
	p.LinkDelay = 8
	serialLat, serialStats := fastStorm(t, fixtureNet(t, p))

	for _, shards := range []int{2, 4} {
		a := fixtureNetOpts(t, p, WithFastShards(shards))
		latA, statsA := fastStorm(t, a)
		b := fixtureNetOpts(t, p, WithFastShards(shards))
		latB, statsB := fastStorm(t, b)

		if len(latA) != len(latB) || statsA != statsB {
			t.Fatalf("shards=%d: wide-window fast run is nondeterministic", shards)
		}
		for i := range latA {
			if latA[i] != latB[i] {
				t.Fatalf("shards=%d: nondeterministic latency at message %d", shards, i)
			}
		}
		if statsA.MessagesDone != serialStats.MessagesDone ||
			statsA.FlitsDelivered != serialStats.FlitsDelivered ||
			statsA.PacketsToHost != serialStats.PacketsToHost {
			t.Fatalf("shards=%d: delivery counters diverged from serial:\n fast:   %+v\n serial: %+v",
				shards, statsA, serialStats)
		}
		if len(latA) != len(serialLat) {
			t.Fatalf("shards=%d: message count diverged from serial", shards)
		}
	}
}

// TestFastModeRefusals pins the typed refusal surface: every model
// feature that would mutate cross-shard state from a worker is rejected
// at setup with *FastModeError, never silently misrun.
func TestFastModeRefusals(t *testing.T) {
	isFastErr := func(t *testing.T, err error, what string) {
		t.Helper()
		var fe *FastModeError
		if !errors.As(err, &fe) {
			t.Fatalf("%s: got %v, want *FastModeError", what, err)
		}
	}

	t.Run("trace", func(t *testing.T) {
		topoErr := func() error {
			links := [][4]int{{0, 0, 1, 0}}
			topo, _ := topology.Build(2, 4, links, [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}})
			rt, _ := updown.New(topo)
			_, err := New(rt, DefaultParams(), 1, WithFastShards(2), WithTrace(func(TraceEvent) {}))
			return err
		}()
		isFastErr(t, topoErr, "WithTrace")
	})

	t.Run("obs", func(t *testing.T) {
		links := [][4]int{{0, 0, 1, 0}}
		topo, _ := topology.Build(2, 4, links, [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}})
		rt, _ := updown.New(topo)
		_, err := New(rt, DefaultParams(), 1, WithFastShards(2), WithObs(obs.NewRecorder(obs.Config{})))
		isFastErr(t, err, "WithObs")
	})

	n := fixtureNetOpts(t, DefaultParams(), WithFastShards(2))

	t.Run("onComplete", func(t *testing.T) {
		_, err := n.Send(unicastPlan(0, 7), 16, 0, func(*Message) {})
		isFastErr(t, err, "Send onComplete")
	})

	t.Run("secondary host sends", func(t *testing.T) {
		plan := &Plan{
			Source: 0,
			Dests:  []topology.NodeID{3, 7},
			HostSends: map[topology.NodeID][]WormSpec{
				0: {{Kind: WormUnicast, Dest: 3}},
				3: {{Kind: WormUnicast, Dest: 7}},
			},
		}
		_, err := n.Send(plan, 16, 0, nil)
		isFastErr(t, err, "secondary HostSends")
	})

	t.Run("faults", func(t *testing.T) {
		err := n.InstallFaults(&FaultSchedule{Events: []FaultEvent{{At: 100, Kind: FaultLink, Link: 0}}})
		isFastErr(t, err, "InstallFaults")
	})

	t.Run("membership", func(t *testing.T) {
		err := n.InstallMembership(&MembershipSchedule{})
		isFastErr(t, err, "InstallMembership")
	})

	t.Run("reliable", func(t *testing.T) {
		replan := func(rt *updown.Routing, src topology.NodeID, dests []topology.NodeID, flits int) (*Plan, error) {
			return unicastPlan(src, dests[0]), nil
		}
		_, err := n.SendReliable(unicastPlan(0, 7), 16, 0, replan, RetryPolicy{Timeout: 10000, Backoff: 100, BackoffFactor: 2, MaxAttempts: 2}, nil)
		isFastErr(t, err, "SendReliable")
	})

	t.Run("schedule closure", func(t *testing.T) {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("Schedule on a fast network did not panic")
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "serial engine") {
				t.Fatalf("Schedule panicked with %v, want a FastModeError message", r)
			}
		}()
		n.Schedule(100, func() {})
	})
}

// TestShardAccessors pins the introspection surface the experiment layer
// threads through: shard count and the zero value of ShardStats on the
// plain engine.
func TestShardAccessors(t *testing.T) {
	n := fixtureNet(t, DefaultParams())
	if n.Shards() != 1 {
		t.Fatalf("default Shards() = %d, want 1", n.Shards())
	}
	if st := n.ShardStats(); st != (event.ShardStats{}) {
		t.Fatalf("single-queue ShardStats = %+v, want zero", st)
	}
	s := fixtureNetOpts(t, DefaultParams(), WithShards(4))
	if s.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", s.Shards())
	}
	f := fixtureNetOpts(t, DefaultParams(), WithFastShards(2))
	if f.Shards() != 2 {
		t.Fatalf("fast Shards() = %d, want 2", f.Shards())
	}
}
