// Package sim is the flit-level network simulator at the heart of the
// reproduction: cut-through switches with finite input buffers and
// credit-based backpressure, wormhole-style output-port circuits,
// multidestination-worm replication (tree and path), and a host/NI model
// with software overheads and a shared DMA I/O bus (paper §4.1).
//
// The package executes multicast Plans (package mcast builds them) over a
// routed topology (packages topology + updown) and reports per-message
// latencies. All timing is in integer cycles; the paper's defaults are in
// DefaultParams.
package sim

import (
	"fmt"

	"mcastsim/internal/event"
)

// Params collects every timing and sizing knob of the simulated system.
// All cycle values are in switch cycles (10 ns at the paper's defaults).
type Params struct {
	// OHostSend / OHostRecv: communication software overhead per MESSAGE at
	// the sending / receiving host processor (the paper's o_s and o_r; both
	// default to o_h = 100 cycles = 1 µs).
	OHostSend event.Time
	OHostRecv event.Time
	// ONISend / ONIRecv: overhead per PACKET at the sending / receiving NI
	// processor. The paper's ratio R = o_h / o_ni is the pivotal parameter;
	// R = 1 by default.
	ONISend event.Time
	ONIRecv event.Time

	// BusMBps is the host I/O (PCI-like) bus bandwidth in MB/s; CycleNS is
	// the cycle time in nanoseconds. Together they set the DMA rate
	// (266 MB/s at 10 ns/cycle = 2.66 bytes/cycle).
	BusMBps int
	CycleNS int

	// PacketFlits is the payload flit count per packet (flit = 1 byte =
	// link width); messages longer than one packet are split.
	PacketFlits int
	// BufferFlits is the per-input-port buffer depth at switches.
	BufferFlits int

	// RoutingDelay: header decode + routing decision, charged once per worm
	// per switch (the paper argues 1 cycle for all three header types).
	// CrossbarDelay: input-to-output traversal, a per-hop pipeline fill of
	// 1 cycle. LinkDelay: flit propagation per physical link, 1 cycle.
	RoutingDelay  event.Time
	CrossbarDelay event.Time
	LinkDelay     event.Time

	// NIInjectBufferPackets bounds how many prepared packets may sit in the
	// NI's injection queue; 0 means unbounded. The NI-based scheme needs
	// NI-side buffering (paper §3.3 lists this as its cost); bounding it is
	// exposed for sensitivity studies.
	NIInjectBufferPackets int

	// EarlyTreeBranch enables the ablation variant of tree-worm routing
	// that splits off covered destination subsets while still climbing
	// (the paper's base scheme climbs to a covering switch first).
	EarlyTreeBranch bool

	// NIStoreAndForward is the ablation of the paper's FPFS discipline
	// (§3.2.1): when set, an intermediate smart NI forwards replicas only
	// after the WHOLE message has assembled at the NI, instead of
	// forwarding each packet as it arrives. Multi-packet messages then
	// lose their pipeline across tree levels.
	NIStoreAndForward bool

	// FaultDetectCycles is the reconfiguration epoch: the delay between a
	// fault event and the moment recomputed up*/down* tables are swapped
	// into the switches (fault detection + Autonet-style rebuild +
	// distribution, modeled as one lump). Worms routed in that window see
	// stale tables and may be torn down. Negative disables reconfiguration
	// entirely (tables stay stale); 0 swaps in the same cycle.
	FaultDetectCycles event.Time

	// StallCycles is the progress-watchdog horizon: when a Drain has
	// messages outstanding and sees no flit movement and no control-plane
	// progress (reconfiguration, retransmission scheduling) for this many
	// cycles, it fails with a structured StallError naming the stuck worms
	// and held ports instead of spinning or hanging. <= 0 disables the
	// periodic watchdog; the empty-queue check always applies.
	StallCycles event.Time

	// DestCoding selects the tree-worm destination-header encoding. The
	// zero value (HeaderFlat) is the paper's N-bit string, so every
	// existing configuration is unchanged; HeaderIval switches to the
	// interval-coded run list (package destset), whose header cost scales
	// with the destination set's run structure instead of the host count.
	DestCoding DestCoding

	// SetRep selects the in-core destination-set representation the
	// planners and route cache work with (independent of the wire coding
	// above). The zero value (RepAuto) picks flat bit strings up to
	// SparseUniverseThreshold hosts — byte-identical to the historical
	// engine — and the run-coded sparse representation beyond it, where a
	// flat set is ~125 KB at 1M hosts and the O(S×N) planning state stops
	// fitting in RAM. RepFlat/RepSparse force either one; the two produce
	// byte-identical traces and tables (the representation only changes
	// how membership is stored, never a routing predicate or RNG draw).
	SetRep SetRep
}

// SetRep names an in-core destination-set representation policy (see
// Params.SetRep).
type SetRep int

const (
	// RepAuto: flat below SparseUniverseThreshold hosts, sparse at or
	// above it.
	RepAuto SetRep = iota
	// RepFlat forces the paper's flat bit strings at every size.
	RepFlat
	// RepSparse forces the run-coded sparse representation at every size.
	RepSparse
)

// SparseUniverseThreshold is the RepAuto cutover: networks with at least
// this many hosts plan on run-coded sets. Every paper/S/M experiment size
// sits well below it (history unchanged); the L (≥100k hosts) and XL
// (≥1M hosts) tiers sit above.
const SparseUniverseThreshold = 65536

// String renders the representation policy for flags and table notes.
func (r SetRep) String() string {
	switch r {
	case RepAuto:
		return "auto"
	case RepFlat:
		return "flat"
	case RepSparse:
		return "sparse"
	default:
		return fmt.Sprintf("SetRep(%d)", int(r))
	}
}

// DestCoding names a destination-set header encoding (see Params).
type DestCoding int

const (
	// HeaderFlat is the paper's flat N-bit destination string (§3.2.3).
	HeaderFlat DestCoding = iota
	// HeaderIval is the interval-coded per-subtree range encoding.
	HeaderIval
)

// String renders the coding for flags and table notes.
func (c DestCoding) String() string {
	switch c {
	case HeaderFlat:
		return "flat"
	case HeaderIval:
		return "ival"
	default:
		return fmt.Sprintf("DestCoding(%d)", int(c))
	}
}

// DefaultParams returns the paper's default system parameters (§4.1,
// reconstructed — see DESIGN.md §5).
func DefaultParams() Params {
	return Params{
		OHostSend:     100,
		OHostRecv:     100,
		ONISend:       100,
		ONIRecv:       100,
		BusMBps:       266,
		CycleNS:       10,
		PacketFlits:   128,
		BufferFlits:   16,
		RoutingDelay:  1,
		CrossbarDelay: 1,
		LinkDelay:     1,

		FaultDetectCycles: 2_000,
		StallCycles:       200_000,
	}
}

// WithR returns a copy of p with the NI overheads set so that
// R = o_h / o_ni equals r (paper §4.2.1 sweeps R by varying o_ni).
func (p Params) WithR(r float64) Params {
	if r <= 0 {
		panic("sim: R must be positive")
	}
	oni := event.Time(float64(p.OHostSend)/r + 0.5)
	if oni < 1 {
		oni = 1
	}
	p.ONISend = oni
	p.ONIRecv = oni
	return p
}

// R reports the o_h/o_ni ratio of p.
func (p Params) R() float64 { return float64(p.OHostSend) / float64(p.ONISend) }

// BusCycles returns the DMA occupancy in cycles for a transfer of the given
// number of bytes, rounded up.
func (p Params) BusCycles(bytes int) event.Time {
	// bytes/cycle = MBps * 1e6 * ns * 1e-9 = MBps*ns/1000, so
	// cycles = ceil(bytes * 1000 / (MBps*ns)).
	num := bytes * 1000
	den := p.BusMBps * p.CycleNS
	return event.Time((num + den - 1) / den)
}

// Packets returns how many packets a payload of msgFlits flits needs.
func (p Params) Packets(msgFlits int) int {
	if msgFlits <= 0 {
		return 0
	}
	return (msgFlits + p.PacketFlits - 1) / p.PacketFlits
}

// Validate rejects nonsensical parameter combinations early.
func (p Params) Validate() error {
	switch {
	case p.OHostSend < 0 || p.OHostRecv < 0 || p.ONISend < 0 || p.ONIRecv < 0:
		return fmt.Errorf("sim: negative software overhead")
	case p.BusMBps <= 0 || p.CycleNS <= 0:
		return fmt.Errorf("sim: bus bandwidth and cycle time must be positive")
	case p.PacketFlits <= 0:
		return fmt.Errorf("sim: packet size must be positive")
	case p.BufferFlits <= 0:
		return fmt.Errorf("sim: buffer size must be positive")
	case p.RoutingDelay < 0 || p.CrossbarDelay < 0 || p.LinkDelay < 1:
		return fmt.Errorf("sim: invalid pipeline delays")
	case p.NIInjectBufferPackets < 0:
		return fmt.Errorf("sim: negative NI buffer bound")
	case p.DestCoding != HeaderFlat && p.DestCoding != HeaderIval:
		return fmt.Errorf("sim: unknown destination coding %d", p.DestCoding)
	case p.SetRep != RepAuto && p.SetRep != RepFlat && p.SetRep != RepSparse:
		return fmt.Errorf("sim: unknown set representation %d", p.SetRep)
	}
	return nil
}
