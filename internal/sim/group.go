package sim

import (
	"fmt"

	"mcastsim/internal/bitset"
	"mcastsim/internal/event"
	"mcastsim/internal/topology"
)

// This file implements dynamic multicast groups: named destination sets
// whose membership evolves over simulated time via scheduled join/leave
// events (a MembershipSchedule mirroring FaultSchedule, driven through
// the typed evMembership kind). The paper freezes destination sets at
// send time; IGMP-style group management makes them moving targets, and
// the interesting physics is the race between in-flight worms and
// membership deltas:
//
//   - A message snapshots the group's membership at send time. A member
//     that leaves while the message is in flight still receives it — a
//     STALE delivery (wasted bandwidth plus a delivery the application
//     must discard).
//
//   - A node that joins while a message is in flight is not in that
//     message's snapshot and never receives it — a MISSED delivery (the
//     gap a higher-level state-transfer protocol would have to fill).
//
// Both are counted per group and surfaced as first-class metrics.
//
// Tree repair itself lives outside the Network (see
// internal/mcast/groupplan): the simulator only applies membership to
// bitsets, versions each group with its own epoch, invalidates route-
// cache entries whose destination fingerprint intersects the delta, and
// fires the group's OnDelta hook so a planner can splice or rebuild the
// multicast plan. With no groups registered none of this code runs and
// the steady flit path is untouched.

// GroupID names a group within one Network (dense, in registration
// order).
type GroupID int32

// MembershipKind selects what a MembershipEvent does.
type MembershipKind uint8

const (
	// MemberJoin adds a node to the group.
	MemberJoin MembershipKind = iota
	// MemberLeave removes a node from the group.
	MemberLeave
)

func (k MembershipKind) String() string {
	switch k {
	case MemberJoin:
		return "join"
	case MemberLeave:
		return "leave"
	default:
		return fmt.Sprintf("MembershipKind(%d)", k)
	}
}

// MembershipEvent is one scheduled membership change: at cycle At, Node
// joins or leaves Group.
type MembershipEvent struct {
	At    event.Time
	Group GroupID
	Node  topology.NodeID
	Kind  MembershipKind
}

// MembershipSchedule is a deterministic list of membership events. Build
// it before the run (seeded however the caller likes, see
// traffic.ChurnSpec) and install it once.
type MembershipSchedule struct {
	Events []MembershipEvent
}

// Group is one dynamic multicast group. All mutation happens on the
// network's event loop (the single-goroutine contract covers groups
// exactly as it covers every other entity).
type Group struct {
	net  *Network
	id   GroupID
	name string

	// members is the live membership bitset; epoch counts applied deltas
	// (the per-group analogue of routingEpoch — a repair planner or cache
	// layer can compare it to detect staleness without a global flush).
	members *bitset.Set
	epoch   int

	joins  int64
	leaves int64
	stale  int64 // deliveries to nodes that had already left
	missed int64 // in-flight snapshots that excluded a joiner

	repairs      int64      // plan repairs the owner reported via NoteRepair
	repairEdges  int64      // tree edges rewritten across those repairs
	repairCycles event.Time // modeled repair latency summed across them

	// onDelta fires after a membership event is applied (bitset updated,
	// counters bumped, cache invalidated) — the hook a group planner uses
	// to repair its multicast plan.
	onDelta func(MembershipEvent)

	// inflight holds the group's unfinished messages; each carries a
	// pooled snapshot of the membership it was addressed to.
	inflight []*Message
}

// ID returns the group's dense per-network ID.
func (g *Group) ID() GroupID { return g.id }

// Name returns the group's registration name.
func (g *Group) Name() string { return g.name }

// Epoch returns the number of membership deltas applied so far.
func (g *Group) Epoch() int { return g.epoch }

// Size returns the current member count.
func (g *Group) Size() int { return g.members.Count() }

// Contains reports whether node d is currently a member.
func (g *Group) Contains(d topology.NodeID) bool { return g.members.Contains(int(d)) }

// Members returns the current membership in ascending node order (a
// fresh slice; cold path).
func (g *Group) Members() []topology.NodeID {
	out := make([]topology.NodeID, 0, g.members.Count())
	g.members.ForEach(func(i int) bool {
		out = append(out, topology.NodeID(i))
		return true
	})
	return out
}

// Joins and Leaves return the applied join/leave event counts.
func (g *Group) Joins() int64  { return g.joins }
func (g *Group) Leaves() int64 { return g.leaves }

// Stale returns the stale-delivery count: completed deliveries to nodes
// that had left the group between the message's send-time snapshot and
// its arrival.
func (g *Group) Stale() int64 { return g.stale }

// Missed returns the missed-delivery count: (message, joiner) pairs
// where the join landed while a message addressed before it was still in
// flight.
func (g *Group) Missed() int64 { return g.missed }

// SetOnDelta installs fn as the group's post-delta hook (nil disables).
// Install before advancing past the first membership event.
func (g *Group) SetOnDelta(fn func(MembershipEvent)) { g.onDelta = fn }

// NoteRepair records one plan repair against the group: edges tree edges
// rewritten at a modeled cost of cycles. The simulator does not execute
// repairs itself — the group planner owns the plan — but the counters
// live here so observability and experiment code read one place.
func (g *Group) NoteRepair(edges int, cycles event.Time) {
	g.repairs++
	g.repairEdges += int64(edges)
	g.repairCycles += cycles
}

// Repairs returns (count, edges rewritten, summed modeled cycles) of the
// repairs reported via NoteRepair.
func (g *Group) Repairs() (int64, int64, event.Time) {
	return g.repairs, g.repairEdges, g.repairCycles
}

// NewGroup registers a dynamic multicast group with the given initial
// members. Group IDs are dense in registration order.
func (n *Network) NewGroup(name string, members []topology.NodeID) (*Group, error) {
	set := bitset.New(n.topo.NumNodes)
	for _, m := range members {
		if int(m) < 0 || int(m) >= n.topo.NumNodes {
			return nil, fmt.Errorf("sim: group %q member %d out of range", name, m)
		}
		set.Add(int(m))
	}
	g := &Group{net: n, id: GroupID(len(n.groups)), name: name, members: set}
	n.groups = append(n.groups, g)
	return g, nil
}

// Groups returns the registered groups in registration order.
func (n *Network) Groups() []*Group { return n.groups }

// InstallMembership schedules every event of ms on the simulation clock.
// Call before advancing past the earliest event time. The schedule is
// copied so callers may reuse ms.
func (n *Network) InstallMembership(ms *MembershipSchedule) error {
	if err := n.fastModeCheck("dynamic group membership (InstallMembership)"); err != nil {
		return err
	}
	now := n.nowAt()
	events := append([]MembershipEvent(nil), ms.Events...)
	for i := range events {
		ev := events[i]
		if ev.At < now {
			return fmt.Errorf("sim: membership event %d scheduled in the past (t=%d, now %d)", i, ev.At, now)
		}
		if int(ev.Group) < 0 || int(ev.Group) >= len(n.groups) {
			return fmt.Errorf("sim: membership event %d: group %d not registered", i, ev.Group)
		}
		if int(ev.Node) < 0 || int(ev.Node) >= n.topo.NumNodes {
			return fmt.Errorf("sim: membership event %d: node %d out of range", i, ev.Node)
		}
		if ev.Kind != MemberJoin && ev.Kind != MemberLeave {
			return fmt.Errorf("sim: membership event %d: unknown kind %d", i, ev.Kind)
		}
		n.ctlPost(ev.At, evMembership, &events[i], 0)
	}
	return nil
}

// applyMembership is the evMembership handler. Redundant events (joining
// a member, removing a non-member) are no-ops and do not bump the epoch.
func (n *Network) applyMembership(ev *MembershipEvent) {
	g := n.groups[ev.Group]
	node := int(ev.Node)
	switch ev.Kind {
	case MemberJoin:
		if g.members.Contains(node) {
			return
		}
		g.members.Add(node)
		g.joins++
		// Every in-flight message was addressed to a snapshot that
		// excludes the joiner: each is a missed delivery.
		for _, m := range g.inflight {
			if !m.snapshot.contains(node) {
				g.missed++
				n.stats.MissedDeliveries++
			}
		}
	case MemberLeave:
		if !g.members.Contains(node) {
			return
		}
		g.members.Remove(node)
		g.leaves++
	}
	g.epoch++
	n.stats.MembershipEvents++
	// Per-group cache hygiene: drop only the route-cache entries whose
	// keying set contains the changed node — never a global routingEpoch
	// bump, so unrelated groups' cached routes survive.
	n.cache.invalidateNode(node)
	n.trace(TraceEvent{Kind: TraceMember, Node: ev.Node, Msg: int64(ev.Group), Pkt: int(ev.Kind)})
	n.markProgress()
	if g.onDelta != nil {
		g.onDelta(*ev)
	}
}

// SendToGroup sends a multicast addressed to group g: a plain Send plus
// the group bookkeeping that makes the churn races observable. The plan
// is the caller's (built by a scheme or a group planner against the
// membership the caller saw); the message snapshots plan.Dests ∪ source
// into a pooled bitset so later deltas can be classified as stale or
// missed against it. The snapshot is recycled when the message
// completes.
func (n *Network) SendToGroup(g *Group, plan *Plan, flits int, at event.Time, onComplete func(*Message)) (*Message, error) {
	if g == nil || g.net != n {
		return nil, fmt.Errorf("sim: SendToGroup with a foreign or nil group")
	}
	m, err := n.Send(plan, flits, at, onComplete)
	if err != nil {
		return nil, err
	}
	snap := n.getDset()
	for _, d := range plan.Dests {
		snap.add(int(d))
	}
	snap.add(int(plan.Source))
	m.group = g
	m.snapshot = snap
	g.inflight = append(g.inflight, m)
	return m, nil
}

// groupNoteDelivered classifies one completed delivery against the
// group's current membership: a receiver that already left is a stale
// delivery. Called from destDone only when the message carries a group
// tag.
func (n *Network) groupNoteDelivered(m *Message, d topology.NodeID) {
	if !m.group.members.Contains(int(d)) {
		m.group.stale++
		n.stats.StaleDeliveries++
	}
}

// groupMsgDone retires a completed group message: it leaves the
// in-flight race window and returns its snapshot to the set pool. Runs
// before the message's onComplete so callbacks observe settled counters.
func (n *Network) groupMsgDone(m *Message) {
	g := m.group
	for i, x := range g.inflight {
		if x == m {
			g.inflight = append(g.inflight[:i], g.inflight[i+1:]...)
			break
		}
	}
	n.putDset(m.snapshot)
	m.snapshot = dset{}
}
