package sim

import (
	"errors"
	"strings"
	"testing"

	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// unicastReplanner retransmits the failed remainder as plain unicast
// sends from the source — the simplest legal fallback any scheme can use.
func unicastReplanner(rt *updown.Routing, src topology.NodeID, dests []topology.NodeID, _ int) (*Plan, error) {
	specs := make([]WormSpec, len(dests))
	for i, d := range dests {
		specs[i] = WormSpec{Kind: WormUnicast, Dest: d}
	}
	return &Plan{
		Source:    src,
		Dests:     append([]topology.NodeID(nil), dests...),
		HostSends: map[topology.NodeID][]WormSpec{src: specs},
	}, nil
}

// killFirstGrantedLink installs a tracer that fails the first inter-switch
// link a worm is granted, a few cycles into its stream — a guaranteed
// mid-flight severing of the worm's own path.
func killFirstGrantedLink(n *Network) {
	fired := false
	setTestTracer(n, func(ev TraceEvent) {
		if fired || ev.Kind != TraceGrant {
			return
		}
		li := n.Topology().LinkAt(ev.Switch, ev.Port)
		if li < 0 {
			return
		}
		fired = true
		n.Schedule(n.Now()+20, func() { n.FailLink(li) })
	})
}

func TestLinkFaultMidFlightUnicastRecovers(t *testing.T) {
	n := fixtureNet(t, DefaultParams())
	killFirstGrantedLink(n)
	plan := unicastPlan(0, 7)
	d, err := n.RunReliable(plan, 512, unicastReplanner, DefaultRetryPolicy())
	if err != nil {
		t.Fatalf("RunReliable: %v", err)
	}
	if !d.DeliveredAll() {
		t.Fatalf("not fully delivered: %d/%d, failed %v", d.Delivered(), len(d.Dests), d.Failed)
	}
	s := n.Stats()
	if s.WormsKilled == 0 {
		t.Fatal("fault never tore down a worm (did the kill miss the flight?)")
	}
	if d.Attempts < 2 {
		t.Fatalf("delivered in %d attempts despite a severed path", d.Attempts)
	}
	if s.FlitsDropped == 0 {
		t.Fatal("severed worm dropped no flits")
	}
}

func TestLinkFaultTreeWormRecovers(t *testing.T) {
	n := fixtureNet(t, DefaultParams())
	killFirstGrantedLink(n)
	dests := []topology.NodeID{3, 5, 7}
	plan := &Plan{
		Source: 0,
		Dests:  dests,
		HostSends: map[topology.NodeID][]WormSpec{
			0: {{Kind: WormTree, DestSet: dests}},
		},
	}
	d, err := n.RunReliable(plan, 256, unicastReplanner, DefaultRetryPolicy())
	if err != nil {
		t.Fatalf("RunReliable: %v", err)
	}
	if !d.DeliveredAll() {
		t.Fatalf("not fully delivered: %d/%d, failed %v", d.Delivered(), len(d.Dests), d.Failed)
	}
	if n.Stats().WormsKilled == 0 {
		t.Fatal("fault never tore down a worm")
	}
}

func TestLinkFaultPathWormRecovers(t *testing.T) {
	n := fixtureNet(t, DefaultParams())
	killFirstGrantedLink(n)
	// Path: source 0 -> stop at switch 3 (drop node 3) -> continue out
	// port 2 (the 3-5 link) -> stop at switch 5 (drop node 5).
	plan := &Plan{
		Source: 0,
		Dests:  []topology.NodeID{3, 5},
		HostSends: map[topology.NodeID][]WormSpec{
			0: {{Kind: WormPath, Path: []PathSeg{
				{Switch: 3, Drops: []topology.NodeID{3}, NextPort: 2},
				{Switch: 5, Drops: []topology.NodeID{5}, NextPort: -1},
			}}},
		},
	}
	d, err := n.RunReliable(plan, 256, unicastReplanner, DefaultRetryPolicy())
	if err != nil {
		t.Fatalf("RunReliable: %v", err)
	}
	if !d.DeliveredAll() {
		t.Fatalf("not fully delivered: %d/%d, failed %v", d.Delivered(), len(d.Dests), d.Failed)
	}
	if n.Stats().WormsKilled == 0 {
		t.Fatal("fault never tore down a worm")
	}
}

func TestSwitchFaultOrphansDestination(t *testing.T) {
	n := fixtureNet(t, DefaultParams())
	// Fail node 7's home switch while the message streams toward it.
	n.Schedule(300, func() { n.FailSwitch(7) })
	plan := &Plan{
		Source: 0,
		Dests:  []topology.NodeID{3, 7},
		HostSends: map[topology.NodeID][]WormSpec{
			0: {
				{Kind: WormUnicast, Dest: 3},
				{Kind: WormUnicast, Dest: 7},
			},
		},
	}
	d, err := n.RunReliable(plan, 512, unicastReplanner, DefaultRetryPolicy())
	if err != nil {
		t.Fatalf("RunReliable: %v", err)
	}
	if !n.NodeAlive(3) || n.NodeAlive(7) {
		t.Fatal("aliveness wrong after switch fault")
	}
	if _, ok := d.DoneAt[3]; !ok {
		t.Fatal("node 3 (on a surviving switch) was not delivered")
	}
	if len(d.Failed) != 1 || d.Failed[0] != 7 {
		t.Fatalf("failed = %v, want [7]", d.Failed)
	}
	if d.Attempts != 1 {
		t.Fatalf("retried toward a dead node: %d attempts", d.Attempts)
	}
}

func TestReconfigurationReroutesAfterFault(t *testing.T) {
	n := fixtureNet(t, DefaultParams())
	// Fail the 5-7 link on an idle network, let the detection window pass,
	// then verify a fresh multicast routes around it (7 only reachable via
	// 6 now) with no retries needed.
	n.Schedule(0, func() { n.FailLink(8) })
	if err := n.Drain(0); err != nil {
		t.Fatalf("drain after fault: %v", err)
	}
	if n.Stats().Reconfigs != 1 {
		t.Fatalf("Reconfigs = %d, want 1", n.Stats().Reconfigs)
	}
	if n.Partitioned() {
		t.Fatal("spuriously partitioned")
	}
	d, err := n.RunReliable(unicastPlan(0, 7), 128, unicastReplanner, DefaultRetryPolicy())
	if err != nil {
		t.Fatalf("RunReliable: %v", err)
	}
	if !d.DeliveredAll() || d.Attempts != 1 {
		t.Fatalf("post-reconfiguration delivery: attempts=%d failed=%v", d.Attempts, d.Failed)
	}
	if n.Stats().WormsKilled != 0 {
		t.Fatal("post-reconfiguration route still hit the dead link")
	}
}

func TestRepairLinkRestoresRouting(t *testing.T) {
	n := twoSwitch(t)
	n.Schedule(0, func() { n.FailLink(0) })
	n.Schedule(10_000, func() {
		if !n.Partitioned() {
			t.Error("single-link two-switch network should be partitioned after the failure")
		}
	})
	n.Schedule(20_000, func() { n.RepairLink(0) })
	if err := n.Drain(0); err != nil {
		t.Fatalf("drain across fail/repair: %v", err)
	}
	if n.Partitioned() {
		t.Fatal("still marked partitioned after repair + reconfiguration")
	}
	d, err := n.RunReliable(unicastPlan(0, 2), 128, unicastReplanner, DefaultRetryPolicy())
	if err != nil {
		t.Fatalf("RunReliable after repair: %v", err)
	}
	if !d.DeliveredAll() || d.Attempts != 1 {
		t.Fatalf("post-repair delivery: attempts=%d failed=%v", d.Attempts, d.Failed)
	}
}

func TestPartitionFailsUnreachableDests(t *testing.T) {
	n := twoSwitch(t)
	// Sever the only link mid-flight: nodes 2,3 become unreachable, and
	// no amount of retrying can fix it — the protocol must give up.
	killFirstGrantedLink(n)
	plan := unicastPlan(0, 2)
	d, err := n.RunReliable(plan, 512, unicastReplanner, DefaultRetryPolicy())
	if err != nil {
		t.Fatalf("RunReliable: %v", err)
	}
	if len(d.Failed) != 1 || d.Failed[0] != 2 {
		t.Fatalf("failed = %v, want [2]", d.Failed)
	}
	if !n.Partitioned() {
		t.Fatal("partition not detected")
	}
	if d.Attempts > DefaultRetryPolicy().MaxAttempts {
		t.Fatalf("attempts %d exceeded policy cap", d.Attempts)
	}
}

func TestStallWatchdogReportsStructure(t *testing.T) {
	p := DefaultParams()
	p.StallCycles = 5_000
	topo, err := topology.Build(2, 4,
		[][4]int{{0, 0, 1, 0}},
		[][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := updown.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(rt, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Induce a permanent stall without the fault layer's teardown: once
	// the stream starts, zero the injection line's credits and turn the
	// home buffer's credit return into a no-op, so the sender blocks on
	// backpressure forever.
	sabotaged := false
	setTestTracer(n, func(ev TraceEvent) {
		if sabotaged || ev.Kind != TraceInject {
			return
		}
		sabotaged = true
		n.Schedule(n.Now()+50, func() {
			n.nis[0].inj.credits = 0
			// Point credit returns at a detached channel: the injection
			// line never regains credits and its sender never wakes.
			n.switches[0].inBufs[2].upstream = &channel{sh: n.sh0()}
		})
	})
	// Keep the event queue alive so the watchdog (not queue exhaustion)
	// fires.
	var heartbeat func()
	heartbeat = func() {
		if n.Outstanding() > 0 {
			n.Schedule(n.Now()+500, heartbeat)
		}
	}
	n.Schedule(500, heartbeat)
	_, err = n.Send(unicastPlan(0, 2), 512, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = n.Drain(0)
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("Drain = %v, want *StallError", err)
	}
	if stall.QueueEmpty {
		t.Fatal("watchdog should have fired before the queue emptied")
	}
	if stall.Outstanding != 1 {
		t.Fatalf("Outstanding = %d, want 1", stall.Outstanding)
	}
	if len(stall.Stuck) == 0 {
		t.Fatal("stall report names no stuck worms")
	}
	if !strings.Contains(err.Error(), "stall") || !strings.Contains(err.Error(), "stuck") {
		t.Fatalf("unhelpful stall message: %q", err.Error())
	}
}

func TestInvariantErrorOnFaultFreeNetwork(t *testing.T) {
	n := twoSwitch(t)
	// A structurally valid plan whose continuation makes an illegal up
	// turn after descending: switch 1's port 0 points up (to the root),
	// and the worm arrives at switch 1 in the down phase.
	plan := &Plan{
		Source: 0,
		Dests:  []topology.NodeID{2, 1},
		HostSends: map[topology.NodeID][]WormSpec{
			0: {{Kind: WormPath, Path: []PathSeg{
				{Switch: 1, Drops: []topology.NodeID{2}, NextPort: 0},
				{Switch: 0, Drops: []topology.NodeID{1}, NextPort: -1},
			}}},
		},
	}
	_, err := n.RunSingle(plan, 64)
	var inv *InvariantError
	if !errors.As(err, &inv) {
		t.Fatalf("RunSingle = %v, want *InvariantError", err)
	}
	if inv.Switch != 1 {
		t.Fatalf("invariant blamed switch %d, want 1", inv.Switch)
	}
	if !strings.Contains(inv.Error(), "up turn") {
		t.Fatalf("unhelpful invariant message: %q", inv.Error())
	}
}

func TestFaultScheduleValidation(t *testing.T) {
	n := twoSwitch(t)
	if err := n.InstallFaults(&FaultSchedule{Events: []FaultEvent{
		{At: 10, Kind: FaultLink, Link: 99},
	}}); err == nil {
		t.Fatal("out-of-range link accepted")
	}
	if err := n.InstallFaults(&FaultSchedule{Events: []FaultEvent{
		{At: 10, Kind: FaultSwitch, Switch: 99},
	}}); err == nil {
		t.Fatal("out-of-range switch accepted")
	}
	if err := n.InstallFaults(&FaultSchedule{Events: []FaultEvent{
		{At: 10, Kind: FaultLink, Link: 0},
		{At: 500, Kind: RepairLink, Link: 0},
	}}); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}
