package sim

import (
	"testing"

	"mcastsim/internal/event"
	"mcastsim/internal/rng"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// randomNet builds a random routed network for stress testing.
func randomNet(t *testing.T, cfg topology.Config, p Params, seed uint64) *Network {
	t.Helper()
	topo, err := topology.Generate(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := updown.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(rt, p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// randomTreePlan builds a single-tree-worm plan to a random destination set.
func randomTreePlan(r *rng.Source, numNodes int) *Plan {
	src := topology.NodeID(r.Intn(numNodes))
	k := 1 + r.Intn(numNodes-1)
	var dests []topology.NodeID
	for _, v := range r.Sample(numNodes, k+1) {
		if topology.NodeID(v) != src && len(dests) < k {
			dests = append(dests, topology.NodeID(v))
		}
	}
	if len(dests) == 0 {
		dests = []topology.NodeID{topology.NodeID((int(src) + 1) % numNodes)}
	}
	return &Plan{
		Source:    src,
		Dests:     dests,
		HostSends: map[topology.NodeID][]WormSpec{src: {{Kind: WormTree, DestSet: dests}}},
	}
}

func randomUnicastPlan(r *rng.Source, numNodes int) *Plan {
	src := topology.NodeID(r.Intn(numNodes))
	dst := topology.NodeID(r.Intn(numNodes))
	for dst == src {
		dst = topology.NodeID(r.Intn(numNodes))
	}
	return unicastPlan(src, dst)
}

func TestStressRandomUnicastTraffic(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		n := randomNet(t, topology.DefaultConfig(), DefaultParams(), seed)
		r := rng.New(seed * 977)
		for i := 0; i < 120; i++ {
			plan := randomUnicastPlan(r, n.Topology().NumNodes)
			flits := 1 + r.Intn(400)
			if _, err := n.Send(plan, flits, event.Time(r.Intn(3000)), nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := n.Drain(0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := n.CheckConservation(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestStressRandomTreeWorms(t *testing.T) {
	cfgs := []topology.Config{
		{Switches: 8, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
		{Switches: 16, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
	}
	for ci, cfg := range cfgs {
		for seed := uint64(1); seed <= 3; seed++ {
			n := randomNet(t, cfg, DefaultParams(), seed+uint64(ci)*100)
			r := rng.New(seed * 31)
			sent := make([]*Message, 0, 60)
			for i := 0; i < 60; i++ {
				plan := randomTreePlan(r, n.Topology().NumNodes)
				m, err := n.Send(plan, 128, event.Time(r.Intn(4000)), nil)
				if err != nil {
					t.Fatal(err)
				}
				sent = append(sent, m)
			}
			if err := n.Drain(0); err != nil {
				t.Fatalf("cfg %d seed %d: %v", ci, seed, err)
			}
			if err := n.CheckConservation(); err != nil {
				t.Fatalf("cfg %d seed %d: %v", ci, seed, err)
			}
			for _, m := range sent {
				if len(m.DoneAt) != len(m.Plan.Dests) {
					t.Fatalf("message %d delivered %d/%d", m.ID, len(m.DoneAt), len(m.Plan.Dests))
				}
			}
		}
	}
}

func TestStressMixedKinds(t *testing.T) {
	// Unicast and tree worms interleaved under the same load; exercises
	// port contention between replication branches and ordinary worms.
	n := randomNet(t, topology.DefaultConfig(), DefaultParams(), 42)
	r := rng.New(4242)
	for i := 0; i < 100; i++ {
		var plan *Plan
		if r.Intn(2) == 0 {
			plan = randomTreePlan(r, n.Topology().NumNodes)
		} else {
			plan = randomUnicastPlan(r, n.Topology().NumNodes)
		}
		if _, err := n.Send(plan, 1+r.Intn(300), event.Time(r.Intn(2500)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Drain(0); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestStressSmallBuffers(t *testing.T) {
	// Tiny buffers stress the credit machinery and wormhole blocking.
	p := DefaultParams()
	p.BufferFlits = 2
	n := randomNet(t, topology.DefaultConfig(), p, 7)
	r := rng.New(77)
	for i := 0; i < 80; i++ {
		if _, err := n.Send(randomTreePlan(r, n.Topology().NumNodes), 256, event.Time(r.Intn(2000)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Drain(0); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	// Identical seeds must give bit-identical latency traces.
	run := func() []event.Time {
		n := randomNet(t, topology.DefaultConfig(), DefaultParams(), 5)
		r := rng.New(55)
		msgs := make([]*Message, 0, 40)
		for i := 0; i < 40; i++ {
			m, err := n.Send(randomTreePlan(r, n.Topology().NumNodes), 128, event.Time(r.Intn(2000)), nil)
			if err != nil {
				t.Fatal(err)
			}
			msgs = append(msgs, m)
		}
		if err := n.Drain(0); err != nil {
			t.Fatal(err)
		}
		out := make([]event.Time, len(msgs))
		for i, m := range msgs {
			out[i] = m.Latency()
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at message %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestFlitConservationTreeWorms checks exact flit accounting: each tree
// multicast delivers exactly (header + payload) flits per destination.
func TestFlitConservationTreeWorms(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		n := randomNet(t, topology.DefaultConfig(), DefaultParams(), seed)
		r := rng.New(seed * 7)
		totalDests := 0
		for i := 0; i < 25; i++ {
			plan := randomTreePlan(r, n.Topology().NumNodes)
			totalDests += len(plan.Dests)
			if _, err := n.Send(plan, 128, event.Time(i*500), nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := n.Drain(0); err != nil {
			t.Fatal(err)
		}
		per := int64(TreeHeaderFlits(n.Topology().NumNodes) + 128)
		if got, want := n.Stats().FlitsDelivered, per*int64(totalDests); got != want {
			t.Fatalf("seed %d: delivered %d flits, want %d", seed, got, want)
		}
	}
}

// TestFlitConservationNITree: each NI-tree destination receives one
// unicast copy (header + payload) per packet.
func TestFlitConservationNITree(t *testing.T) {
	n := randomNet(t, topology.DefaultConfig(), DefaultParams(), 9)
	plan := &Plan{
		Source: 0,
		Dests:  []topology.NodeID{1, 2, 3, 4, 5},
		NITree: map[topology.NodeID][]topology.NodeID{
			0: {1, 2},
			1: {3, 4},
			2: {5},
		},
	}
	const flits = 128 * 2 // two packets
	if _, err := n.Send(plan, flits, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := n.Drain(0); err != nil {
		t.Fatal(err)
	}
	per := int64(UnicastHeaderFlits + 128)
	want := per * 2 /*packets*/ * 5 /*dests*/
	if got := n.Stats().FlitsDelivered; got != want {
		t.Fatalf("delivered %d flits, want %d", got, want)
	}
	// Replication accounting: 5 copies per packet = 10 packet injections
	// across all NIs.
	if got := n.Stats().PacketsInjected; got != 10 {
		t.Fatalf("injected %d packet streams, want 10", got)
	}
}

// TestStoreAndForwardConservation: the S&F ablation must deliver exactly
// the same flit totals as FPFS, only later.
func TestStoreAndForwardConservation(t *testing.T) {
	run := func(sf bool) (int64, event.Time) {
		p := DefaultParams()
		p.NIStoreAndForward = sf
		n := randomNet(t, topology.DefaultConfig(), p, 4)
		plan := &Plan{
			Source: 0,
			Dests:  []topology.NodeID{1, 2, 3},
			NITree: map[topology.NodeID][]topology.NodeID{0: {1}, 1: {2}, 2: {3}},
		}
		m, err := n.Send(plan, 128*4, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Drain(0); err != nil {
			t.Fatal(err)
		}
		if err := n.CheckConservation(); err != nil {
			t.Fatal(err)
		}
		return n.Stats().FlitsDelivered, m.Latency()
	}
	fpfsFlits, fpfsLat := run(false)
	sfFlits, sfLat := run(true)
	if fpfsFlits != sfFlits {
		t.Fatalf("flit totals differ: fpfs=%d sf=%d", fpfsFlits, sfFlits)
	}
	if sfLat <= fpfsLat {
		t.Fatalf("store-and-forward (%d) not slower than FPFS (%d) on a 3-deep chain", sfLat, fpfsLat)
	}
}

// TestCrossInstanceDeterminism guards against map-iteration-order leaks
// into simulation behavior (Go randomizes map ranges per iteration, so
// identical fresh networks diverge if any behavior path ranges over a
// map). Two independently built networks must produce bit-identical
// latencies for the same multicast workload.
func TestCrossInstanceDeterminism(t *testing.T) {
	run := func() []event.Time {
		n := randomNet(t, topology.DefaultConfig(), DefaultParams(), 17)
		r := rng.New(171)
		msgs := make([]*Message, 0, 30)
		for i := 0; i < 30; i++ {
			plan := randomTreePlan(r, n.Topology().NumNodes)
			m, err := n.Send(plan, 128, event.Time(i*300), nil)
			if err != nil {
				t.Fatal(err)
			}
			msgs = append(msgs, m)
		}
		if err := n.Drain(0); err != nil {
			t.Fatal(err)
		}
		out := make([]event.Time, len(msgs))
		for i, m := range msgs {
			out[i] = m.Latency()
		}
		return out
	}
	for trial := 0; trial < 5; trial++ {
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: run diverged at message %d: %d vs %d", trial, i, a[i], b[i])
			}
		}
	}
}
