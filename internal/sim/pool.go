package sim

import (
	"sync/atomic"

	"mcastsim/internal/bitset"
	"mcastsim/internal/destset"
	"mcastsim/internal/event"
)

// This file implements the simulator's per-shard free lists. A shard is
// single-goroutine (one event-loop goroutine in serial modes, one
// worker per shard in fast mode), so the pools are plain slices with
// LIFO reuse — no locking, no sync.Pool clearing at GC. In serial modes
// every shard aliases one shared pool set, so recycling behaviour is
// bit-identical to the pre-shard engine; in fast mode each shard
// recycles into its own pools (an entity freed on a different shard
// than it was allocated simply migrates — harmless, the pools are
// interchangeable).
//
// Ownership and lifetime rules:
//
//   - Destination sets (*bitset.Set, universe NumNodes): owned by exactly
//     one worm (w.destSet) or held transiently by a planner. getSet
//     returns a cleared set; putSet recycles it. The route cache keeps
//     its own clones and never lends storage out (see routecache.go).
//
//   - Worms are reference-counted (atomically: the legs live on
//     different shards in fast mode). The legs are: the producing branch
//     (released when the branch is reclaimed after its quarantine), the
//     downstream occupant assembling the worm in an input buffer
//     (released when the occupant is recycled), and the destination NI
//     assembling the packet (taken at the first received flit, released
//     after NI receive processing or at any rxFlits teardown). A worm in
//     an un-streamed burst has zero refs and is recycled directly when
//     the burst is dropped. Whichever shard drops the last leg owns the
//     worm exclusively at that point and recycles it locally.
//
//   - Branches are time-quarantined: a branch goes done exactly once (the
//     pump tail or a fault kill), is spliced out of its occupant's branch
//     list immediately, and an evReclaim fires reclaimAfter cycles later —
//     strictly after every pending evPump/evDeliver/evTail that still
//     names it — to release its worm ref and recycle it. Splicing at
//     done-time is safe: a done branch never gates eviction (its window
//     ends at the parent stream's length) and schedulePump no-ops on it.
//
//   - Occupants are recycled when they are detached from their buffer
//     (head retirement or fault removal), have no pending evRoute, and no
//     live (undone) branch remains.

// reclaimQuarantine returns the branch quarantine horizon: an upper bound,
// in cycles, on how far past a branch's done-transition a pending event
// naming it can still fire (evPump <= max(CrossbarDelay,1), evDeliver <=
// LinkDelay, evTail = +1), plus slack.
func (n *Network) reclaimQuarantine() event.Time {
	h := n.params.LinkDelay
	if n.params.CrossbarDelay > h {
		h = n.params.CrossbarDelay
	}
	if n.params.RoutingDelay > h {
		h = n.params.RoutingDelay
	}
	if h < 1 {
		h = 1
	}
	q := h + 2
	// Fast mode executes one window's events concurrently across shards,
	// so timestamp order alone is not "strictly after": a cross-shard
	// evDeliver and the evReclaim that invalidates its branch must land
	// in different windows (the barrier is the only cross-shard
	// ordering). Padding by the window width W = LinkDelay puts the
	// reclaim > W past every pending event naming the branch, which
	// forces a later window. Serial modes keep the exact pre-shard
	// horizon, preserving byte-identity.
	if n.fset != nil {
		q += n.params.LinkDelay
	}
	return q
}

// --- destination sets ---

func (sh *shardState) getSet() *bitset.Set {
	p := sh.pools
	if len(p.setPool) == 0 {
		return bitset.New(sh.net.topo.NumNodes)
	}
	s := p.setPool[len(p.setPool)-1]
	p.setPool = p.setPool[:len(p.setPool)-1]
	s.Clear()
	return s
}

func (sh *shardState) putSet(s *bitset.Set) {
	sh.pools.setPool = append(sh.pools.setPool, s)
}

func (sh *shardState) getRuns() *destset.Runs {
	p := sh.pools
	if len(p.runPool) == 0 {
		return destset.NewRuns(sh.net.topo.NumNodes)
	}
	r := p.runPool[len(p.runPool)-1]
	p.runPool = p.runPool[:len(p.runPool)-1]
	r.Clear()
	return r
}

func (sh *shardState) putRuns(r *destset.Runs) {
	sh.pools.runPool = append(sh.pools.runPool, r)
}

// getDset returns a cleared destination set in the network's chosen
// representation. Sparse networks pool run lists sized by run count (a
// few dozen bytes for rack-clustered sets) instead of universe bits.
func (sh *shardState) getDset() dset {
	if sh.net.sparse {
		return dset{runs: sh.getRuns()}
	}
	return dset{bits: sh.getSet()}
}

func (sh *shardState) putDset(d dset) {
	if d.bits != nil {
		sh.putSet(d.bits)
		return
	}
	sh.putRuns(d.runs)
}

// Network-level wrappers for the serial-only subsystems (faults,
// groups); in serial modes every shard aliases one pool set, so the
// shard choice is immaterial.
func (n *Network) getSet() *bitset.Set  { return n.sh0().getSet() }
func (n *Network) putSet(s *bitset.Set) { n.sh0().putSet(s) }
func (n *Network) getDset() dset        { return n.sh0().getDset() }
func (n *Network) putDset(d dset)       { n.sh0().putDset(d) }

// --- worms ---

func (sh *shardState) getWorm() *worm {
	p := sh.pools
	if len(p.wormPool) == 0 {
		return &worm{}
	}
	w := p.wormPool[len(p.wormPool)-1]
	p.wormPool = p.wormPool[:len(p.wormPool)-1]
	return w
}

// recycleWorm returns an unreferenced worm (and its destination set) to
// the pools.
func (sh *shardState) recycleWorm(w *worm) {
	if atomic.LoadInt32(&w.refs) != 0 {
		panic("sim: recycling a referenced worm")
	}
	if w.destSet.some() {
		sh.putDset(w.destSet)
	}
	*w = worm{}
	sh.pools.wormPool = append(sh.pools.wormPool, w)
}

// wormRef takes one reference leg.
func wormRef(w *worm) { atomic.AddInt32(&w.refs, 1) }

// wormDecref releases one reference leg; the shard dropping the last
// leg holds the only remaining pointer and recycles the worm locally.
func (sh *shardState) wormDecref(w *worm) {
	left := atomic.AddInt32(&w.refs, -1)
	if left > 0 {
		return
	}
	if left < 0 {
		panic("sim: worm refcount underflow")
	}
	sh.recycleWorm(w)
}

func (n *Network) wormDecref(w *worm) { n.sh0().wormDecref(w) }

// --- branches ---

func (sh *shardState) getBranch() *branch {
	p := sh.pools
	if len(p.branchPool) == 0 {
		return &branch{net: sh.net, sh: sh}
	}
	br := p.branchPool[len(p.branchPool)-1]
	p.branchPool = p.branchPool[:len(p.branchPool)-1]
	br.sh = sh
	return br
}

// detachBranch splices a just-done branch out of its occupant's consumer
// list (callers guarantee br.occ != nil and br.done). The occupant may
// recycle here when this was its last live branch.
func (sh *shardState) detachBranch(br *branch) {
	o := br.occ
	for i, cand := range o.branches {
		if cand == br {
			o.branches = append(o.branches[:i], o.branches[i+1:]...)
			break
		}
	}
	o.live--
	sh.tryRecycleOccupant(o)
}

func (n *Network) detachBranch(br *branch) { n.sh0().detachBranch(br) }

// reclaimBranch is the evReclaim handler: the quarantine has elapsed, no
// pending event names this branch anymore, so its worm ref is released
// and the branch recycles.
func (sh *shardState) reclaimBranch(br *branch) {
	if br.pumping {
		// Unreachable by construction (a pending pump fires well inside
		// the quarantine and no-ops on done); leak to GC rather than
		// recycle under a live event.
		return
	}
	sh.wormDecref(br.w)
	br.occ = nil
	br.w = nil
	br.elastic = false
	br.offset = 0
	br.sent = 0
	br.ch = nil
	br.port = nil
	br.done = false
	br.req = nil
	br.drops = nil
	br.injNI = nil
	br.injLast = false
	sh.pools.branchPool = append(sh.pools.branchPool, br)
}

// --- occupants ---

func (sh *shardState) getOccupant() *occupant {
	p := sh.pools
	if len(p.occPool) == 0 {
		return &occupant{}
	}
	o := p.occPool[len(p.occPool)-1]
	p.occPool = p.occPool[:len(p.occPool)-1]
	return o
}

// tryRecycleOccupant recycles an occupant once it is out of its buffer,
// has no routing event in flight, and no live branch still reads it.
func (sh *shardState) tryRecycleOccupant(o *occupant) {
	if !o.detached || o.routing || o.live != 0 {
		return
	}
	sh.wormDecref(o.w)
	o.buf = nil
	o.w = nil
	o.arrived = 0
	o.evicted = 0
	o.routed = false
	o.routing = false
	o.killed = false
	o.detached = false
	o.live = 0
	o.branches = o.branches[:0]
	sh.pools.occPool = append(sh.pools.occPool, o)
}

func (n *Network) tryRecycleOccupant(o *occupant) { n.sh0().tryRecycleOccupant(o) }

// --- bursts ---

func (sh *shardState) getBurst() *burst {
	p := sh.pools
	if len(p.burstPool) == 0 {
		return &burst{}
	}
	b := p.burstPool[len(p.burstPool)-1]
	p.burstPool = p.burstPool[:len(p.burstPool)-1]
	return b
}

func (sh *shardState) putBurst(b *burst) {
	b.owner = nil
	b.worms = b.worms[:0]
	b.next = 0
	sh.pools.burstPool = append(sh.pools.burstPool, b)
}
