package sim

import (
	"mcastsim/internal/bitset"
	"mcastsim/internal/event"
)

// This file implements the simulator's per-network free lists. A Network
// is single-goroutine (see enterRun), so the pools are plain slices with
// LIFO reuse — no locking, no sync.Pool clearing at GC.
//
// Ownership and lifetime rules:
//
//   - Destination sets (*bitset.Set, universe NumNodes): owned by exactly
//     one worm (w.destSet) or held transiently by a planner. getSet
//     returns a cleared set; putSet recycles it. The route cache keeps
//     its own clones and never lends storage out (see routecache.go).
//
//   - Worms are reference-counted. The legs are: the producing branch
//     (released when the branch is reclaimed after its quarantine), the
//     downstream occupant assembling the worm in an input buffer
//     (released when the occupant is recycled), and the destination NI
//     assembling the packet (taken at the first received flit, released
//     after NI receive processing or at any rxFlits teardown). A worm in
//     an un-streamed burst has zero refs and is recycled directly when
//     the burst is dropped.
//
//   - Branches are time-quarantined: a branch goes done exactly once (the
//     pump tail or a fault kill), is spliced out of its occupant's branch
//     list immediately, and an evReclaim fires reclaimAfter cycles later —
//     strictly after every pending evPump/evDeliver/evTail that still
//     names it — to release its worm ref and recycle it. Splicing at
//     done-time is safe: a done branch never gates eviction (its window
//     ends at the parent stream's length) and schedulePump no-ops on it.
//
//   - Occupants are recycled when they are detached from their buffer
//     (head retirement or fault removal), have no pending evRoute, and no
//     live (undone) branch remains.

// reclaimQuarantine returns the branch quarantine horizon: an upper bound,
// in cycles, on how far past a branch's done-transition a pending event
// naming it can still fire (evPump <= max(CrossbarDelay,1), evDeliver <=
// LinkDelay, evTail = +1), plus slack.
func (n *Network) reclaimQuarantine() event.Time {
	h := n.params.LinkDelay
	if n.params.CrossbarDelay > h {
		h = n.params.CrossbarDelay
	}
	if n.params.RoutingDelay > h {
		h = n.params.RoutingDelay
	}
	if h < 1 {
		h = 1
	}
	return h + 2
}

// --- destination sets ---

func (n *Network) getSet() *bitset.Set {
	if len(n.setPool) == 0 {
		return bitset.New(n.topo.NumNodes)
	}
	s := n.setPool[len(n.setPool)-1]
	n.setPool = n.setPool[:len(n.setPool)-1]
	s.Clear()
	return s
}

func (n *Network) putSet(s *bitset.Set) {
	n.setPool = append(n.setPool, s)
}

// --- worms ---

func (n *Network) getWorm() *worm {
	if len(n.wormPool) == 0 {
		return &worm{}
	}
	w := n.wormPool[len(n.wormPool)-1]
	n.wormPool = n.wormPool[:len(n.wormPool)-1]
	return w
}

// recycleWorm returns an unreferenced worm (and its destination set) to
// the pools.
func (n *Network) recycleWorm(w *worm) {
	if w.refs != 0 {
		panic("sim: recycling a referenced worm")
	}
	if w.destSet != nil {
		n.putSet(w.destSet)
	}
	*w = worm{}
	n.wormPool = append(n.wormPool, w)
}

// wormDecref releases one reference leg; the last leg recycles the worm.
func (n *Network) wormDecref(w *worm) {
	w.refs--
	if w.refs > 0 {
		return
	}
	if w.refs < 0 {
		panic("sim: worm refcount underflow")
	}
	n.recycleWorm(w)
}

// --- branches ---

func (n *Network) getBranch() *branch {
	if len(n.branchPool) == 0 {
		return &branch{net: n}
	}
	br := n.branchPool[len(n.branchPool)-1]
	n.branchPool = n.branchPool[:len(n.branchPool)-1]
	return br
}

// detachBranch splices a just-done branch out of its occupant's consumer
// list (callers guarantee br.occ != nil and br.done). The occupant may
// recycle here when this was its last live branch.
func (n *Network) detachBranch(br *branch) {
	o := br.occ
	for i, cand := range o.branches {
		if cand == br {
			o.branches = append(o.branches[:i], o.branches[i+1:]...)
			break
		}
	}
	o.live--
	n.tryRecycleOccupant(o)
}

// reclaimBranch is the evReclaim handler: the quarantine has elapsed, no
// pending event names this branch anymore, so its worm ref is released
// and the branch recycles.
func (n *Network) reclaimBranch(br *branch) {
	if br.pumping {
		// Unreachable by construction (a pending pump fires well inside
		// the quarantine and no-ops on done); leak to GC rather than
		// recycle under a live event.
		return
	}
	n.wormDecref(br.w)
	br.occ = nil
	br.w = nil
	br.elastic = false
	br.offset = 0
	br.sent = 0
	br.ch = nil
	br.port = nil
	br.done = false
	br.req = nil
	br.drops = nil
	br.injNI = nil
	br.injLast = false
	n.branchPool = append(n.branchPool, br)
}

// --- occupants ---

func (n *Network) getOccupant() *occupant {
	if len(n.occPool) == 0 {
		return &occupant{}
	}
	o := n.occPool[len(n.occPool)-1]
	n.occPool = n.occPool[:len(n.occPool)-1]
	return o
}

// tryRecycleOccupant recycles an occupant once it is out of its buffer,
// has no routing event in flight, and no live branch still reads it.
func (n *Network) tryRecycleOccupant(o *occupant) {
	if !o.detached || o.routing || o.live != 0 {
		return
	}
	n.wormDecref(o.w)
	o.buf = nil
	o.w = nil
	o.arrived = 0
	o.evicted = 0
	o.routed = false
	o.routing = false
	o.killed = false
	o.detached = false
	o.live = 0
	o.branches = o.branches[:0]
	n.occPool = append(n.occPool, o)
}

// --- bursts ---

func (n *Network) getBurst() *burst {
	if len(n.burstPool) == 0 {
		return &burst{}
	}
	b := n.burstPool[len(n.burstPool)-1]
	n.burstPool = n.burstPool[:len(n.burstPool)-1]
	return b
}

func (n *Network) putBurst(b *burst) {
	b.owner = nil
	b.worms = b.worms[:0]
	b.next = 0
	n.burstPool = append(n.burstPool, b)
}
