package sim

import (
	"fmt"
	"strings"
	"testing"

	"mcastsim/internal/event"
	"mcastsim/internal/rng"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// The sparse-representation determinism contract (DESIGN.md §18): a
// network planned on run-coded destination sets must produce BYTE-
// IDENTICAL traces, latencies and stats to the same network planned on
// flat bit strings. Every dset method is a pure membership operation, so
// the contract holds by construction; these tests pin it against
// regressions the same way the golden traces pin the engine itself.

// repTraceRun executes a fixed multicast workload under the given
// representation and returns the full formatted trace plus final stats.
func repTraceRun(t *testing.T, rep SetRep, coding DestCoding, early bool, shards int) (string, Stats) {
	t.Helper()
	topo, err := topology.Generate(topology.DefaultConfig(), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := updown.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.SetRep = rep
	p.DestCoding = coding
	p.EarlyTreeBranch = early
	var sb strings.Builder
	opts := []Option{WithTrace(func(ev TraceEvent) {
		fmt.Fprintf(&sb, "%d %v w%d m%d p%d s%d/%d n%d\n",
			ev.At, ev.Kind, ev.Worm, ev.Msg, ev.Pkt, ev.Switch, ev.Port, ev.Node)
	})}
	if shards > 1 {
		opts = append(opts, WithShards(shards))
	}
	n, err := New(rt, p, 11, opts...)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1111)
	for i := 0; i < 30; i++ {
		if _, err := n.Send(randomTreePlan(r, topo.NumNodes), 128, event.Time(r.Intn(1500)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Drain(0); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	return sb.String(), n.Stats()
}

// TestSparseFlatTraceIdentical: the same workload under RepFlat and
// RepSparse produces byte-identical traces for every coding × ablation
// combination, single-queue engine.
func TestSparseFlatTraceIdentical(t *testing.T) {
	for _, coding := range []DestCoding{HeaderFlat, HeaderIval} {
		for _, early := range []bool{false, true} {
			name := fmt.Sprintf("coding=%v/early=%v", coding, early)
			t.Run(name, func(t *testing.T) {
				flat, fs := repTraceRun(t, RepFlat, coding, early, 1)
				sparse, ss := repTraceRun(t, RepSparse, coding, early, 1)
				if flat != sparse {
					t.Fatalf("trace diverged between representations (flat %d bytes, sparse %d bytes)",
						len(flat), len(sparse))
				}
				if fs != ss {
					t.Fatalf("stats diverged: flat %+v sparse %+v", fs, ss)
				}
				if flat == "" {
					t.Fatal("empty trace: workload did not run")
				}
			})
		}
	}
}

// TestSparseFlatShardedIdentical extends the contract to the serial-
// equivalence sharded engine: representation × shard count is one trace.
func TestSparseFlatShardedIdentical(t *testing.T) {
	ref, _ := repTraceRun(t, RepFlat, HeaderIval, false, 1)
	for _, shards := range []int{2, 4} {
		got, _ := repTraceRun(t, RepSparse, HeaderIval, false, shards)
		if got != ref {
			t.Fatalf("sparse %d-shard trace diverged from flat single-queue trace", shards)
		}
	}
}

// TestSparseGroupChurnIdentical: the dynamic-group path (pooled
// snapshots, per-node cache invalidation, stale/missed classification)
// is representation-blind too.
func TestSparseGroupChurnIdentical(t *testing.T) {
	run := func(rep SetRep) (string, Stats) {
		topo, err := topology.Generate(topology.DefaultConfig(), rng.New(13))
		if err != nil {
			t.Fatal(err)
		}
		rt, err := updown.New(topo)
		if err != nil {
			t.Fatal(err)
		}
		p := DefaultParams()
		p.SetRep = rep
		var sb strings.Builder
		n, err := New(rt, p, 13, WithTrace(func(ev TraceEvent) {
			fmt.Fprintf(&sb, "%d %v w%d m%d p%d n%d\n", ev.At, ev.Kind, ev.Worm, ev.Msg, ev.Pkt, ev.Node)
		}))
		if err != nil {
			t.Fatal(err)
		}
		dests := []topology.NodeID{2, 5, 9, 12}
		g, err := n.NewGroup("g", dests)
		if err != nil {
			t.Fatal(err)
		}
		err = n.InstallMembership(&MembershipSchedule{Events: []MembershipEvent{
			{At: 50, Group: g.ID(), Node: 7, Kind: MemberJoin},
			{At: 400, Group: g.ID(), Node: 5, Kind: MemberLeave},
			{At: 900, Group: g.ID(), Node: 5, Kind: MemberJoin},
		}})
		if err != nil {
			t.Fatal(err)
		}
		plan := &Plan{
			Source:    0,
			Dests:     dests,
			HostSends: map[topology.NodeID][]WormSpec{0: {{Kind: WormTree, DestSet: dests}}},
		}
		for _, at := range []event.Time{0, 300, 800} {
			if _, err := n.SendToGroup(g, plan, 256, at, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := n.Drain(0); err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "stale=%d missed=%d invals=%d\n", g.Stale(), g.Missed(), n.cache.groupInvals)
		return sb.String(), n.Stats()
	}
	flat, fs := run(RepFlat)
	sparse, ss := run(RepSparse)
	if flat != sparse {
		t.Fatalf("churn trace diverged:\nflat:\n%s\nsparse:\n%s", flat, sparse)
	}
	if fs != ss {
		t.Fatalf("churn stats diverged: flat %+v sparse %+v", fs, ss)
	}
}

// TestSparseAutoSelection pins the RepAuto cutover and the forced modes.
func TestSparseAutoSelection(t *testing.T) {
	n := randomNet(t, topology.DefaultConfig(), DefaultParams(), 3)
	if n.sparse {
		t.Fatal("RepAuto selected sparse below the universe threshold")
	}
	p := DefaultParams()
	p.SetRep = RepSparse
	n = randomNet(t, topology.DefaultConfig(), p, 3)
	if !n.sparse {
		t.Fatal("RepSparse did not force the sparse representation")
	}
	if got := n.getDset(); got.runs == nil || got.bits != nil {
		t.Fatalf("sparse pool handed out %+v", got)
	}
	p.SetRep = RepFlat
	n = randomNet(t, topology.DefaultConfig(), p, 3)
	if n.sparse {
		t.Fatal("RepFlat did not force the flat representation")
	}
}

// TestSparseLocalRange pins the hostLo/hostHi precompute: contiguous
// attachments get ranges, irregular ones fall back to the probe, and the
// gate predicate matches the old Intersects(localNodes) on both.
func TestSparseLocalRange(t *testing.T) {
	n := randomNet(t, topology.DefaultConfig(), DefaultParams(), 19)
	topo := n.topo
	for s := 0; s < topo.NumSwitches; s++ {
		nodes := n.nodesAt[s]
		lo, hi := n.hostLo[s], n.hostHi[s]
		switch {
		case len(nodes) == 0:
			if lo != 0 || hi != -1 {
				t.Fatalf("switch %d: hostless sentinel wrong: [%d,%d]", s, lo, hi)
			}
		case int(nodes[len(nodes)-1])-int(nodes[0])+1 == len(nodes):
			if int(lo) != int(nodes[0]) || int(hi) != int(nodes[len(nodes)-1]) {
				t.Fatalf("switch %d: contiguous range [%d,%d], nodes %v", s, lo, hi, nodes)
			}
		default:
			if lo != -1 {
				t.Fatalf("switch %d: irregular attachment not marked: [%d,%d]", s, lo, hi)
			}
		}
		// Predicate equivalence against a brute-force membership check.
		d := n.getDset()
		d.add(int(topo.NumNodes - 1))
		if len(nodes) > 0 {
			d.add(int(nodes[0]))
		}
		want := false
		for _, node := range nodes {
			if d.contains(int(node)) {
				want = true
			}
		}
		if got := n.localIntersects(d, topology.SwitchID(s)); got != want {
			t.Fatalf("switch %d: localIntersects=%v, brute force %v", s, got, want)
		}
		n.putDset(d)
	}
}
