package sim

import (
	"fmt"
	"sort"

	"mcastsim/internal/event"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// Replanner rebuilds a multicast plan for the undelivered remainder of a
// timed-out or partially failed message, against the routing state in
// force at re-plan time (i.e. post-reconfiguration tables once the
// detection window has elapsed). Each multicast scheme supplies one; the
// traffic layer adapts its Scheme.Plan.
type Replanner func(rt *updown.Routing, src topology.NodeID, dests []topology.NodeID, msgFlits int) (*Plan, error)

// RetryPolicy parameterizes the NI-level reliable-delivery protocol: a
// per-attempt delivery deadline plus exponential backoff between
// retransmissions of the failed remainder.
type RetryPolicy struct {
	// Timeout is the per-attempt deadline: an attempt that has not
	// completed Timeout cycles after initiation is aborted (its worms torn
	// down, its undelivered destinations failed) and handed to the backoff
	// schedule.
	Timeout event.Time
	// Backoff is the wait before the first retransmission; attempt k waits
	// Backoff * BackoffFactor^(k-1).
	Backoff event.Time
	// BackoffFactor is the exponential base (>= 1).
	BackoffFactor int
	// MaxAttempts bounds total attempts, the initial send included.
	MaxAttempts int
}

// DefaultRetryPolicy is tuned for the paper's cycle scale: the timeout
// comfortably exceeds a healthy multicast's completion time, and the
// backoff ladder keeps the worst-case wait under the stall watchdog's
// default window.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Timeout: 30_000, Backoff: 2_000, BackoffFactor: 2, MaxAttempts: 6}
}

func (p RetryPolicy) validate() error {
	if p.Timeout <= 0 || p.Backoff < 0 || p.BackoffFactor < 1 || p.MaxAttempts < 1 {
		return fmt.Errorf("sim: invalid retry policy %+v", p)
	}
	return nil
}

// Delivery is the outcome of one reliable multicast: deliveries merged
// over every attempt, the permanently failed remainder, and the attempt
// count.
type Delivery struct {
	Source topology.NodeID
	Dests  []topology.NodeID
	Flits  int

	Attempts  int
	Initiated event.Time
	// Completed is when the protocol finished: every destination
	// delivered, or the remainder abandoned (dead nodes, exhausted
	// attempts, or an un-replannable remainder).
	Completed event.Time
	// DoneAt merges each destination's first successful host delivery
	// across attempts.
	DoneAt map[topology.NodeID]event.Time
	// Failed lists destinations never delivered, ascending.
	Failed []topology.NodeID
}

// Delivered returns the count of destinations that got the message.
func (d *Delivery) Delivered() int { return len(d.DoneAt) }

// DeliveredAll reports full delivery.
func (d *Delivery) DeliveredAll() bool { return len(d.Failed) == 0 && len(d.DoneAt) == len(d.Dests) }

// Latency returns completion latency of the whole reliable operation —
// under faults, the recovery latency including timeouts and retries.
func (d *Delivery) Latency() event.Time { return d.Completed - d.Initiated }

// SendReliable runs plan under the NI-level reliable-delivery protocol:
// the message is sent at time at; if the attempt times out or completes
// with failed destinations, the live remainder is re-planned via replan
// (against current routing tables) and retransmitted after exponential
// backoff, up to pol.MaxAttempts attempts. onDone (optional) fires when
// the protocol finishes. The returned Delivery is filled in as the
// simulation advances; read it after Drain.
func (n *Network) SendReliable(plan *Plan, flits int, at event.Time, replan Replanner, pol RetryPolicy, onDone func(*Delivery)) (*Delivery, error) {
	if err := pol.validate(); err != nil {
		return nil, err
	}
	if replan == nil {
		return nil, fmt.Errorf("sim: SendReliable requires a replanner")
	}
	if err := n.fastModeCheck("reliable delivery (SendReliable)"); err != nil {
		return nil, err
	}
	d := &Delivery{
		Source:    plan.Source,
		Dests:     append([]topology.NodeID(nil), plan.Dests...),
		Flits:     flits,
		Initiated: at,
		DoneAt:    make(map[topology.NodeID]event.Time, len(plan.Dests)),
	}

	finish := func() {
		d.Completed = n.nowAt()
		sort.Slice(d.Failed, func(i, j int) bool { return d.Failed[i] < d.Failed[j] })
		if onDone != nil {
			onDone(d)
		}
	}

	var attempt func(p *Plan, sendAt, wait event.Time) error
	attempt = func(p *Plan, sendAt, wait event.Time) error {
		d.Attempts++
		m, err := n.Send(p, flits, sendAt, func(m *Message) {
			for node, t := range m.DoneAt {
				if _, ok := d.DoneAt[node]; !ok {
					d.DoneAt[node] = t
				}
			}
			rem := m.FailedDests()
			if len(rem) == 0 {
				finish()
				return
			}
			var retry []topology.NodeID
			for _, q := range rem {
				if n.NodeAlive(q) {
					retry = append(retry, q)
				} else {
					d.Failed = append(d.Failed, q)
				}
			}
			if len(retry) == 0 || d.Attempts >= pol.MaxAttempts {
				d.Failed = append(d.Failed, retry...)
				finish()
				return
			}
			n.schedAfter(wait, func() {
				n.markProgress()
				p2, err := replan(n.rt, d.Source, retry, flits)
				if err != nil {
					// The remainder cannot be planned at all (e.g. the
					// survivors are across a partition): abandon it.
					d.Failed = append(d.Failed, retry...)
					finish()
					return
				}
				// Scheduling from inside an event: errors here are plan
				// bugs, surfaced by failing the remainder.
				if err := attempt(p2, n.nowAt(), wait*event.Time(pol.BackoffFactor)); err != nil {
					d.Failed = append(d.Failed, retry...)
					finish()
				}
			})
		})
		if err != nil {
			return err
		}
		n.ctlPost(sendAt+pol.Timeout, evMsgTimeout, m, 0)
		return nil
	}
	if err := attempt(plan, at, pol.Backoff); err != nil {
		return nil, err
	}
	return d, nil
}

// RunReliable sends one reliable multicast at the current time, drains
// the network, and returns the outcome. The fault-injection analogue of
// RunSingle.
func (n *Network) RunReliable(plan *Plan, flits int, replan Replanner, pol RetryPolicy) (*Delivery, error) {
	d, err := n.SendReliable(plan, flits, n.nowAt(), replan, pol, nil)
	if err != nil {
		return nil, err
	}
	if err := n.Drain(0); err != nil {
		return nil, err
	}
	return d, nil
}
