package sim

import (
	"testing"

	"mcastsim/internal/rng"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// setTestTracer installs a trace sink on an already-built network. The
// public surface is sim.WithTrace at construction; in-package tests that
// build fixtures first reach the field directly through this helper.
func setTestTracer(n *Network, fn func(TraceEvent)) { n.tracer = fn }

// collectTrace runs a plan on a traced network and groups route events per
// worm ID.
func collectTrace(t *testing.T, n *Network, plan *Plan, flits int) (map[int64][]TraceEvent, []TraceEvent) {
	t.Helper()
	var all []TraceEvent
	setTestTracer(n, func(ev TraceEvent) { all = append(all, ev) })
	if _, err := n.RunSingle(plan, flits); err != nil {
		t.Fatal(err)
	}
	perWorm := map[int64][]TraceEvent{}
	for _, ev := range all {
		perWorm[ev.Worm] = append(perWorm[ev.Worm], ev)
	}
	return perWorm, all
}

func TestTraceUnicastVisitsLegalPath(t *testing.T) {
	n := fixtureNet(t, DefaultParams())
	rt := n.Routing()
	perWorm, all := collectTrace(t, n, unicastPlan(7, 0), 128)
	if len(all) == 0 {
		t.Fatal("no trace events")
	}
	// Exactly one injection, one delivery.
	counts := map[TraceKind]int{}
	for _, ev := range all {
		counts[ev.Kind]++
	}
	if counts[TraceInject] != 1 || counts[TraceDeliver] != 1 {
		t.Fatalf("inject/deliver counts: %v", counts)
	}
	// The route sequence must be up* then down* (node 7's switch climbs
	// to reach node 0's switch in this fixture).
	for _, evs := range perWorm {
		var switches []topology.SwitchID
		for _, ev := range evs {
			if ev.Kind == TraceRoute {
				switches = append(switches, ev.Switch)
			}
		}
		if len(switches) == 0 {
			continue
		}
		descended := false
		for i := 1; i < len(switches); i++ {
			a, b := switches[i-1], switches[i]
			dir := linkDir(rt, a, b)
			if dir == updown.DirNone {
				t.Fatalf("trace shows non-adjacent hop %d->%d", a, b)
			}
			if dir == updown.DirUp && descended {
				t.Fatalf("up turn after down in %v", switches)
			}
			if dir == updown.DirDown {
				descended = true
			}
		}
	}
}

// linkDir returns the direction of a->b if adjacent.
func linkDir(rt *updown.Routing, a, b topology.SwitchID) updown.Dir {
	topo := rt.Topo
	for p := 0; p < topo.PortsPerSwitch; p++ {
		e := topo.Conn[a][p]
		if e.Kind == topology.ToSwitch && e.Switch == b {
			return rt.Dirs[a][p]
		}
	}
	return updown.DirNone
}

func TestTraceTreeWormClimbStopsAtCoveringSwitch(t *testing.T) {
	n := fixtureNet(t, DefaultParams())
	rt := n.Routing()
	dests := []topology.NodeID{0, 1, 2}
	plan := &Plan{
		Source:    7,
		Dests:     dests,
		HostSends: map[topology.NodeID][]WormSpec{7: {{Kind: WormTree, DestSet: dests}}},
	}
	_, all := collectTrace(t, n, plan, 128)
	// At least one visited switch must cover the full destination set (the
	// climb's goal), and every destination must see exactly one delivery.
	covered := false
	for _, ev := range all {
		if ev.Kind == TraceRoute {
			set := rt.Cover[ev.Switch]
			all3 := true
			for _, d := range dests {
				if !set.Contains(int(d)) {
					all3 = false
					break
				}
			}
			if all3 {
				covered = true
			}
		}
	}
	if !covered {
		t.Fatal("tree worm never reached a switch covering the full set")
	}
	deliveries := 0
	for _, ev := range all {
		if ev.Kind == TraceDeliver {
			deliveries++
		}
	}
	if deliveries != len(dests) {
		t.Fatalf("deliveries = %d", deliveries)
	}
}

func TestTracePathWormVisitsStopsInOrder(t *testing.T) {
	n := twoSwitch(t)
	plan := &Plan{
		Source: 0,
		Dests:  []topology.NodeID{1, 2, 3},
		HostSends: map[topology.NodeID][]WormSpec{
			0: {{Kind: WormPath, Path: []PathSeg{
				{Switch: 0, Drops: []topology.NodeID{1}, NextPort: 0},
				{Switch: 1, Drops: []topology.NodeID{2, 3}, NextPort: -1},
			}}},
		},
	}
	_, all := collectTrace(t, n, plan, 128)
	// Route events at switch 0 must precede those at switch 1.
	seen1 := false
	for _, ev := range all {
		if ev.Kind != TraceRoute {
			continue
		}
		if ev.Switch == 1 {
			seen1 = true
		}
		if ev.Switch == 0 && seen1 {
			t.Fatal("stop order violated in trace")
		}
	}
	// Delivery order: node 1 before nodes 2 and 3.
	var order []topology.NodeID
	for _, ev := range all {
		if ev.Kind == TraceDeliver {
			order = append(order, ev.Node)
		}
	}
	if len(order) != 3 || order[0] != 1 {
		t.Fatalf("delivery order %v", order)
	}
}

func TestTraceGrantBeforeTail(t *testing.T) {
	// Per (worm, switch, port): grant precedes tail, and event times are
	// monotone within each worm's lifecycle records.
	n := fixtureNet(t, DefaultParams())
	perWorm, _ := collectTrace(t, n, unicastPlan(0, 7), 256)
	for id, evs := range perWorm {
		granted := map[[2]int]bool{}
		for i, ev := range evs {
			if i > 0 && ev.At < evs[i-1].At {
				t.Fatalf("worm %d: trace times not monotone", id)
			}
			key := [2]int{int(ev.Switch), ev.Port}
			switch ev.Kind {
			case TraceGrant:
				granted[key] = true
			case TraceTail:
				if !granted[key] {
					t.Fatalf("worm %d: tail without grant at %v", id, key)
				}
			}
		}
	}
}

func TestTraceDisabledByDefaultNoPanic(t *testing.T) {
	n := twoSwitch(t)
	mustRun(t, n, unicastPlan(0, 2), 128) // no tracer installed
}

func TestTraceRandomTreeWormsRouteLegally(t *testing.T) {
	// Property over random topologies/sets: every tree-worm branch's
	// switch sequence observed in the trace is up* then down*.
	for seed := uint64(1); seed <= 3; seed++ {
		topo, err := topology.Generate(topology.DefaultConfig(), rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		rt, err := updown.New(topo)
		if err != nil {
			t.Fatal(err)
		}
		n, err := New(rt, DefaultParams(), seed)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(seed * 101)
		plan := randomTreePlan(r, topo.NumNodes)
		perWorm, _ := collectTrace(t, n, plan, 128)
		for id, evs := range perWorm {
			var switches []topology.SwitchID
			for _, ev := range evs {
				if ev.Kind == TraceRoute {
					switches = append(switches, ev.Switch)
				}
			}
			descended := false
			for i := 1; i < len(switches); i++ {
				dir := linkDir(rt, switches[i-1], switches[i])
				if dir == updown.DirNone {
					continue // child worms: route events of different branches interleave per worm copy only
				}
				if dir == updown.DirUp && descended {
					t.Fatalf("seed %d worm %d: up after down: %v", seed, id, switches)
				}
				if dir == updown.DirDown {
					descended = true
				}
			}
		}
	}
}
