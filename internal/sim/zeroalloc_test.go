package sim

import (
	"testing"

	"mcastsim/internal/topology"
)

// TestSteadyFlitPathZeroAlloc pins the PR 3 performance contract at the
// model level: once a worm is streaming, advancing flits (pump, deliver,
// credit return) posts and dispatches typed events with zero heap
// allocations per event. The event package has its own synthetic version
// of this test; this one drives the real switch pipeline.
func TestSteadyFlitPathZeroAlloc(t *testing.T) {
	p := DefaultParams()
	// One giant packet: no packet boundaries (worm creation, NI bursts)
	// inside the measured window — only the pure flit-advance path.
	const flits = 4096
	p.PacketFlits = flits
	n := fixtureNet(t, p)
	if _, err := n.Send(unicastPlan(0, 7), flits, 0, nil); err != nil {
		t.Fatal(err)
	}
	// Run into the steady stream: past message setup (host overhead, DMA,
	// NI processing, routing) and past the calendar ring's first wrap, so
	// every bucket slot has a warm backing slice.
	const ringWarm = 1100 // > event ring size (1024)
	for n.queue.Len() > 0 && (n.stats.FlitHops < 512 || n.queue.Now() < ringWarm) {
		n.queue.Step()
	}
	if n.queue.Len() == 0 {
		t.Fatal("message finished before reaching steady state")
	}
	avg := testing.AllocsPerRun(1000, func() { n.queue.Step() })
	if avg != 0 {
		t.Fatalf("steady flit-advance path allocates %v per event, want 0", avg)
	}
	if n.queue.Len() == 0 {
		t.Fatal("queue drained inside the measured window; window is not steady-state")
	}
	if err := n.Drain(0); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestSteadyTreeWormZeroAlloc extends the contract to replicating tree
// traffic: with the route cache warm (the first packets of each stream
// populate it) and the entity pools primed, streaming a tree worm through
// its replication switches allocates nothing per event. This is the PR 4
// hot path — partition lookups serve pooled subsets, replica worms and
// branches come from free lists, and teardown recycles them back.
func TestSteadyTreeWormZeroAlloc(t *testing.T) {
	p := DefaultParams()
	const flits = 8192
	p.PacketFlits = flits
	n := fixtureNet(t, p)
	dests := []topology.NodeID{1, 2, 3, 4, 5, 6, 7}
	plan := &Plan{
		Source: 0,
		Dests:  dests,
		HostSends: map[topology.NodeID][]WormSpec{
			0: {{Kind: WormTree, DestSet: dests}},
		},
	}
	// Prime run: the first full multicast warms the route cache and stocks
	// every free list (worms, branches, occupants, sets, bursts) at the
	// high-water mark the steady stream needs.
	if _, err := n.RunSingle(plan, flits); err != nil {
		t.Fatal(err)
	}
	if len(n.cache.part) == 0 {
		t.Fatal("prime run never cached a down partition")
	}
	if _, err := n.Send(plan, flits, n.Now(), nil); err != nil {
		t.Fatal(err)
	}
	const ringWarm = 1100 // > event ring size (1024)
	steady := n.Now() + ringWarm
	start := n.stats.FlitHops
	for n.queue.Len() > 0 && (n.stats.FlitHops-start < 512 || n.queue.Now() < steady) {
		n.queue.Step()
	}
	if n.queue.Len() == 0 {
		t.Fatal("multicast finished before reaching steady state")
	}
	avg := testing.AllocsPerRun(1000, func() { n.queue.Step() })
	if avg != 0 {
		t.Fatalf("steady tree-worm path allocates %v per event, want 0", avg)
	}
	if n.queue.Len() == 0 {
		t.Fatal("queue drained inside the measured window; window is not steady-state")
	}
	if err := n.Drain(0); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}
