package sim

import "testing"

// TestSteadyFlitPathZeroAlloc pins the PR 3 performance contract at the
// model level: once a worm is streaming, advancing flits (pump, deliver,
// credit return) posts and dispatches typed events with zero heap
// allocations per event. The event package has its own synthetic version
// of this test; this one drives the real switch pipeline.
func TestSteadyFlitPathZeroAlloc(t *testing.T) {
	p := DefaultParams()
	// One giant packet: no packet boundaries (worm creation, NI bursts)
	// inside the measured window — only the pure flit-advance path.
	const flits = 4096
	p.PacketFlits = flits
	n := fixtureNet(t, p)
	if _, err := n.Send(unicastPlan(0, 7), flits, 0, nil); err != nil {
		t.Fatal(err)
	}
	// Run into the steady stream: past message setup (host overhead, DMA,
	// NI processing, routing) and past the calendar ring's first wrap, so
	// every bucket slot has a warm backing slice.
	const ringWarm = 1100 // > event ring size (1024)
	for n.queue.Len() > 0 && (n.stats.FlitHops < 512 || n.queue.Now() < ringWarm) {
		n.queue.Step()
	}
	if n.queue.Len() == 0 {
		t.Fatal("message finished before reaching steady state")
	}
	avg := testing.AllocsPerRun(1000, func() { n.queue.Step() })
	if avg != 0 {
		t.Fatalf("steady flit-advance path allocates %v per event, want 0", avg)
	}
	if n.queue.Len() == 0 {
		t.Fatal("queue drained inside the measured window; window is not steady-state")
	}
	if err := n.Drain(0); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}
