package sim

import (
	"strings"
	"testing"

	"mcastsim/internal/event"
	"mcastsim/internal/rng"
	"mcastsim/internal/topology"
)

// groupPlan multicasts from src to dests as one tree worm — the shape the
// dynamic-group tests race against membership deltas.
func groupPlan(src topology.NodeID, dests []topology.NodeID) *Plan {
	return &Plan{
		Source: src,
		Dests:  append([]topology.NodeID(nil), dests...),
		HostSends: map[topology.NodeID][]WormSpec{
			src: {{Kind: WormTree, DestSet: append([]topology.NodeID(nil), dests...)}},
		},
	}
}

func TestGroupApplyAndEpoch(t *testing.T) {
	n := fixtureNet(t, DefaultParams())
	g, err := n.NewGroup("g0", []topology.NodeID{1, 2})
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	var members []TraceEvent
	setTestTracer(n, func(ev TraceEvent) {
		if ev.Kind == TraceMember {
			members = append(members, ev)
		}
	})
	err = n.InstallMembership(&MembershipSchedule{Events: []MembershipEvent{
		{At: 10, Group: g.ID(), Node: 3, Kind: MemberJoin},
		{At: 20, Group: g.ID(), Node: 3, Kind: MemberJoin}, // redundant: no-op
		{At: 30, Group: g.ID(), Node: 2, Kind: MemberLeave},
		{At: 40, Group: g.ID(), Node: 5, Kind: MemberLeave}, // non-member: no-op
		{At: 50, Group: g.ID(), Node: 4, Kind: MemberJoin},
	}})
	if err != nil {
		t.Fatalf("InstallMembership: %v", err)
	}
	if err := n.Drain(0); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got, want := g.Epoch(), 3; got != want {
		t.Fatalf("epoch = %d, want %d (redundant events must not bump it)", got, want)
	}
	if g.Joins() != 2 || g.Leaves() != 1 {
		t.Fatalf("joins/leaves = %d/%d, want 2/1", g.Joins(), g.Leaves())
	}
	if got := n.Stats().MembershipEvents; got != 3 {
		t.Fatalf("Stats.MembershipEvents = %d, want 3", got)
	}
	want := []topology.NodeID{1, 3, 4}
	got := g.Members()
	if len(got) != len(want) {
		t.Fatalf("members = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("members = %v, want %v", got, want)
		}
	}
	if g.Size() != 3 || !g.Contains(3) || g.Contains(2) {
		t.Fatalf("membership accessors disagree: size=%d", g.Size())
	}
	if len(members) != 3 {
		t.Fatalf("got %d TraceMember events, want 3 (no-ops must not trace)", len(members))
	}
	if ev := members[0]; ev.Node != 3 || ev.Msg != int64(g.ID()) || ev.Pkt != int(MemberJoin) {
		t.Fatalf("first TraceMember = %+v", ev)
	}
}

func TestInstallMembershipValidation(t *testing.T) {
	n := fixtureNet(t, DefaultParams())
	g, err := n.NewGroup("g0", []topology.NodeID{1, 2})
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	cases := map[string]MembershipEvent{
		"unregistered group": {At: 10, Group: g.ID() + 1, Node: 3, Kind: MemberJoin},
		"node out of range":  {At: 10, Group: g.ID(), Node: 99, Kind: MemberJoin},
		"unknown kind":       {At: 10, Group: g.ID(), Node: 3, Kind: MembershipKind(7)},
	}
	for name, ev := range cases {
		if err := n.InstallMembership(&MembershipSchedule{Events: []MembershipEvent{ev}}); err == nil {
			t.Errorf("%s: InstallMembership accepted %+v", name, ev)
		}
	}
	// Advance the clock, then try to schedule in the past.
	n.Schedule(100, func() {})
	if err := n.Drain(0); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	err = n.InstallMembership(&MembershipSchedule{Events: []MembershipEvent{
		{At: 50, Group: g.ID(), Node: 3, Kind: MemberJoin},
	}})
	if err == nil || !strings.Contains(err.Error(), "past") {
		t.Fatalf("past-event install: err = %v", err)
	}
	if g.Epoch() != 0 {
		t.Fatalf("rejected installs mutated the group: epoch=%d", g.Epoch())
	}
}

func TestNewGroupRejectsOutOfRangeMember(t *testing.T) {
	n := fixtureNet(t, DefaultParams())
	if _, err := n.NewGroup("bad", []topology.NodeID{1, 99}); err == nil {
		t.Fatal("NewGroup accepted an out-of-range member")
	}
}

func TestGroupStaleDelivery(t *testing.T) {
	n := fixtureNet(t, DefaultParams())
	dests := []topology.NodeID{3, 5, 7}
	g, err := n.NewGroup("g0", dests)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	// Node 7 leaves one cycle in — long before any flit can arrive — so
	// the in-flight message's snapshot delivers to a departed member.
	err = n.InstallMembership(&MembershipSchedule{Events: []MembershipEvent{
		{At: 1, Group: g.ID(), Node: 7, Kind: MemberLeave},
	}})
	if err != nil {
		t.Fatalf("InstallMembership: %v", err)
	}
	m, err := n.SendToGroup(g, groupPlan(0, dests), 64, 0, nil)
	if err != nil {
		t.Fatalf("SendToGroup: %v", err)
	}
	if err := n.Drain(0); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !m.DeliveredAll() {
		t.Fatalf("delivered %d/%d", len(m.DoneAt), len(m.Plan.Dests))
	}
	if g.Stale() != 1 || n.Stats().StaleDeliveries != 1 {
		t.Fatalf("stale = %d (stats %d), want 1", g.Stale(), n.Stats().StaleDeliveries)
	}
	if g.Missed() != 0 {
		t.Fatalf("missed = %d, want 0", g.Missed())
	}
	if m.Group() != g || m.snapshot.some() {
		t.Fatal("completed message kept its snapshot (pool leak)")
	}
	if len(g.inflight) != 0 {
		t.Fatalf("inflight not retired: %d", len(g.inflight))
	}
	if err := n.CheckConservation(); err != nil {
		t.Fatalf("conservation: %v (stale deliveries are physical deliveries)", err)
	}
}

func TestGroupMissedDelivery(t *testing.T) {
	n := fixtureNet(t, DefaultParams())
	dests := []topology.NodeID{3, 5}
	g, err := n.NewGroup("g0", dests)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	// Node 6 joins while the message is in flight: its snapshot excludes
	// the joiner, so the join is a missed delivery.
	err = n.InstallMembership(&MembershipSchedule{Events: []MembershipEvent{
		{At: 1, Group: g.ID(), Node: 6, Kind: MemberJoin},
	}})
	if err != nil {
		t.Fatalf("InstallMembership: %v", err)
	}
	m, err := n.SendToGroup(g, groupPlan(0, dests), 64, 0, nil)
	if err != nil {
		t.Fatalf("SendToGroup: %v", err)
	}
	if err := n.Drain(0); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if g.Missed() != 1 || n.Stats().MissedDeliveries != 1 {
		t.Fatalf("missed = %d (stats %d), want 1", g.Missed(), n.Stats().MissedDeliveries)
	}
	if g.Stale() != 0 {
		t.Fatalf("stale = %d, want 0", g.Stale())
	}
	if _, ok := m.DoneAt[6]; ok {
		t.Fatal("joiner received a message addressed before its join")
	}
	// A join after the message completes is not missed.
	err = n.InstallMembership(&MembershipSchedule{Events: []MembershipEvent{
		{At: n.Now() + 1, Group: g.ID(), Node: 4, Kind: MemberJoin},
	}})
	if err != nil {
		t.Fatalf("InstallMembership: %v", err)
	}
	if err := n.Drain(0); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if g.Missed() != 1 {
		t.Fatalf("missed moved to %d on a join with nothing in flight", g.Missed())
	}
}

// TestGroupIncrementalEqualsScratch is the sim-level half of the
// incremental-vs-rebuild property: any seeded join/leave interleaving
// applied event-by-event through the network leaves the group's bitset
// equal to a from-scratch replay over a plain set.
func TestGroupIncrementalEqualsScratch(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		n := fixtureNet(t, DefaultParams())
		g, err := n.NewGroup("g0", []topology.NodeID{1, 2, 3})
		if err != nil {
			t.Fatalf("NewGroup: %v", err)
		}
		r := rng.New(uint64(trial) + 1)
		var evs []MembershipEvent
		for i := 0; i < 40; i++ {
			evs = append(evs, MembershipEvent{
				At:    event.Time(1 + i),
				Group: g.ID(),
				Node:  topology.NodeID(r.Intn(8)),
				Kind:  MembershipKind(r.Intn(2)),
			})
		}
		if err := n.InstallMembership(&MembershipSchedule{Events: evs}); err != nil {
			t.Fatalf("InstallMembership: %v", err)
		}
		if err := n.Drain(0); err != nil {
			t.Fatalf("Drain: %v", err)
		}
		scratch := map[topology.NodeID]bool{1: true, 2: true, 3: true}
		for _, ev := range evs {
			if ev.Kind == MemberJoin {
				scratch[ev.Node] = true
			} else {
				delete(scratch, ev.Node)
			}
		}
		if g.Size() != len(scratch) {
			t.Fatalf("trial %d: size %d, scratch %d", trial, g.Size(), len(scratch))
		}
		for _, m := range g.Members() {
			if !scratch[m] {
				t.Fatalf("trial %d: member %d not in scratch replay", trial, m)
			}
		}
	}
}

// TestGroupInvalidateIntersecting checks the per-group cache hygiene at
// the map level: after a membership delta, exactly the set-keyed entries
// whose stored destination set intersects the delta are gone, and the
// next-hop map (keyed by destination switch, membership-independent) is
// untouched — the surgical alternative to a routingEpoch flush.
func TestGroupInvalidateIntersecting(t *testing.T) {
	n := fixtureNet(t, DefaultParams())
	g, err := n.NewGroup("g0", []topology.NodeID{3, 5, 7})
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	// Warm the cache with two disjoint destination sets plus a unicast.
	// The tree worms start at switch 6, which must climb before it covers
	// either set, so both the climb and partition maps fill.
	mustRun(t, n, groupPlan(6, []topology.NodeID{3, 5, 7}), 48)
	mustRun(t, n, groupPlan(6, []topology.NodeID{1, 2}), 48)
	mustRun(t, n, unicastPlan(0, 6), 48)
	if len(n.cache.climb) == 0 || len(n.cache.part) == 0 || len(n.cache.hops) == 0 {
		t.Fatalf("cache not warmed: climb=%d part=%d hops=%d",
			len(n.cache.climb), len(n.cache.part), len(n.cache.hops))
	}
	hops := len(n.cache.hops)
	err = n.InstallMembership(&MembershipSchedule{Events: []MembershipEvent{
		{At: n.Now() + 1, Group: g.ID(), Node: 7, Kind: MemberLeave},
	}})
	if err != nil {
		t.Fatalf("InstallMembership: %v", err)
	}
	if err := n.Drain(0); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if n.cache.groupInvals != 1 {
		t.Fatalf("groupInvals = %d, want 1", n.cache.groupInvals)
	}
	for _, e := range n.cache.climb {
		if e.key.Contains(7) {
			t.Fatal("climb entry intersecting the delta survived")
		}
	}
	for _, e := range n.cache.part {
		if e.key.Contains(7) {
			t.Fatal("partition entry intersecting the delta survived")
		}
	}
	// The disjoint {1,2} multicast's entries must survive (a full flush
	// would have dropped them).
	found := false
	for _, e := range n.cache.climb {
		if e.key.Contains(1) && e.key.Contains(2) {
			found = true
		}
	}
	if !found {
		t.Fatal("disjoint climb entry was dropped: invalidation is not surgical")
	}
	if len(n.cache.hops) != hops {
		t.Fatalf("hops map changed %d -> %d; membership never invalidates next-hop entries",
			hops, len(n.cache.hops))
	}
}

// churnScript drives a fixed interleaving of group multicasts and
// membership deltas and returns the full trace.
func churnScript(t *testing.T, n *Network, g *Group, flush bool) []TraceEvent {
	t.Helper()
	var evs []TraceEvent
	setTestTracer(n, func(ev TraceEvent) { evs = append(evs, ev) })
	if flush {
		// Full-flush variant: every delta also bumps the routing epoch,
		// so the next lookup drops the whole cache instead of only the
		// intersecting entries.
		g.SetOnDelta(func(MembershipEvent) { n.routingEpoch++ })
	}
	err := n.InstallMembership(&MembershipSchedule{Events: []MembershipEvent{
		{At: 200, Group: g.ID(), Node: 6, Kind: MemberJoin},
		{At: 400, Group: g.ID(), Node: 5, Kind: MemberLeave},
		{At: 600, Group: g.ID(), Node: 5, Kind: MemberJoin},
	}})
	if err != nil {
		t.Fatalf("InstallMembership: %v", err)
	}
	send := func(at event.Time, dests []topology.NodeID) {
		if _, err := n.SendToGroup(g, groupPlan(6, dests), 48, at, nil); err != nil {
			t.Fatalf("SendToGroup: %v", err)
		}
	}
	// All sends are scheduled up front so they genuinely interleave with
	// the deltas under one Drain. Destination sets recur across deltas,
	// so invalidated entries recompute and surviving entries get warm
	// hits — the divergence surface between surgical and full flushing.
	send(0, []topology.NodeID{3, 5, 7})
	send(300, []topology.NodeID{3, 5, 7})
	send(310, []topology.NodeID{1, 2})
	send(500, []topology.NodeID{3, 7})
	send(700, []topology.NodeID{3, 5, 7})
	send(710, []topology.NodeID{1, 2})
	if err := n.Drain(0); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	return evs
}

// TestGroupInvalidationMatchesFullFlush pins the trace equivalence of the
// surgical per-group invalidation against a global flush on every delta:
// both recompute to identical routing decisions, so the surviving-entry
// optimization can never change simulated behavior.
func TestGroupInvalidationMatchesFullFlush(t *testing.T) {
	run := func(flush bool) []TraceEvent {
		n := fixtureNet(t, DefaultParams())
		g, err := n.NewGroup("g0", []topology.NodeID{3, 5, 7})
		if err != nil {
			t.Fatalf("NewGroup: %v", err)
		}
		return churnScript(t, n, g, flush)
	}
	diffTraces(t, run(false), run(true))
}
