package sim

import (
	"testing"

	"mcastsim/internal/topology"
)

// treeStormPlan multicasts from src to every other node in the fixture as
// a single tree worm — the workload whose routing decisions (climb BFS,
// down partition, adaptive next hops) the route cache memoizes.
func treeStormPlan(src topology.NodeID) *Plan {
	var dests []topology.NodeID
	for d := topology.NodeID(0); d < 8; d++ {
		if d != src {
			dests = append(dests, d)
		}
	}
	return &Plan{
		Source: src,
		Dests:  dests,
		HostSends: map[topology.NodeID][]WormSpec{
			src: {{Kind: WormTree, DestSet: dests}},
		},
	}
}

// runTreeStorm drives a scripted tree-heavy workload (repeated multicasts
// from several sources so every cacheable decision recurs) and returns the
// full trace. The script is deterministic, so two networks built with the
// same seed must produce byte-identical traces regardless of whether the
// route cache is enabled.
func runTreeStorm(t *testing.T, n *Network) []TraceEvent {
	t.Helper()
	var evs []TraceEvent
	setTestTracer(n, func(ev TraceEvent) { evs = append(evs, ev) })
	for round := 0; round < 3; round++ {
		for _, src := range []topology.NodeID{0, 4, 7} {
			mustRun(t, n, treeStormPlan(src), 48)
		}
		// Cross-switch unicasts exercise the adaptive next-hop cache,
		// which tree worms never consult.
		mustRun(t, n, unicastPlan(0, 7), 48)
		mustRun(t, n, unicastPlan(6, 1), 48)
	}
	return evs
}

func diffTraces(t *testing.T, got, want []TraceEvent) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trace length diverged: cached %d events, uncached %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("trace diverged at event %d:\n cached:   %+v\n uncached: %+v", i, got[i], want[i])
		}
	}
}

// TestRouteCacheTraceEquivalence is the cache's core contract: the cached
// and uncached simulations must be indistinguishable at the TraceEvent
// level — same grants, same branch order, same RNG draws — on a workload
// where most decisions are cache hits.
func TestRouteCacheTraceEquivalence(t *testing.T) {
	cached := fixtureNet(t, DefaultParams())
	uncached := fixtureNet(t, DefaultParams())
	uncached.cache.disabled = true

	gotC := runTreeStorm(t, cached)
	gotU := runTreeStorm(t, uncached)
	diffTraces(t, gotC, gotU)

	if len(cached.cache.part) == 0 || len(cached.cache.climb) == 0 || len(cached.cache.hops) == 0 {
		t.Fatalf("workload never populated the cache (part=%d climb=%d hops=%d) — equivalence is vacuous",
			len(cached.cache.part), len(cached.cache.climb), len(cached.cache.hops))
	}
	if cached.cache.flushes != 0 {
		t.Fatalf("fault-free run flushed the cache %d times", cached.cache.flushes)
	}
	if cs, us := cached.Stats(), uncached.Stats(); cs != us {
		t.Fatalf("stats diverged:\n cached:   %+v\n uncached: %+v", cs, us)
	}
}

// runFaultScript runs tree traffic, fails a link, drains past the
// reconfiguration, runs more traffic against the swapped tables, repairs
// the link, reconfigures again, and finishes with a final storm. Every
// step happens at a deterministic simulation time, so a cached and an
// uncached network replay the identical schedule.
func runFaultScript(t *testing.T, n *Network) []TraceEvent {
	t.Helper()
	var evs []TraceEvent
	setTestTracer(n, func(ev TraceEvent) { evs = append(evs, ev) })

	settle := n.Params().FaultDetectCycles + 500

	mustRun(t, n, treeStormPlan(0), 48) // populate the cache under the healthy tables

	n.FailLink(0) // switch 0 port 0 <-> switch 1 port 0; graph stays connected
	n.RunUntil(n.Now() + settle)
	if n.Stats().Reconfigs != 1 {
		t.Fatalf("expected 1 reconfiguration after the fault, got %d", n.Stats().Reconfigs)
	}
	for _, src := range []topology.NodeID{0, 7} {
		mustRun(t, n, treeStormPlan(src), 48) // decisions under the degraded tables
	}

	n.RepairLink(0)
	n.RunUntil(n.Now() + settle)
	if n.Stats().Reconfigs != 2 {
		t.Fatalf("expected 2 reconfigurations after the repair, got %d", n.Stats().Reconfigs)
	}
	for _, src := range []topology.NodeID{0, 4, 7} {
		mustRun(t, n, treeStormPlan(src), 48) // decisions under the restored tables
	}
	return evs
}

// TestRouteCacheEpochInvalidation proves the epoch tag actually flushes:
// after a fault and again after a repair, cached decisions must match a
// cache-disabled twin bit for bit. A stale entry surviving either table
// swap would route a worm down a port the new tables never pick and the
// traces would diverge at the first post-reconfiguration grant.
func TestRouteCacheEpochInvalidation(t *testing.T) {
	cached := fixtureNet(t, DefaultParams())
	uncached := fixtureNet(t, DefaultParams())
	uncached.cache.disabled = true

	gotC := runFaultScript(t, cached)
	gotU := runFaultScript(t, uncached)
	diffTraces(t, gotC, gotU)

	// Fault + reconfig, then repair + reconfig: traffic ran between each
	// epoch group, so the lazy sync must have flushed at least twice.
	if cached.cache.flushes < 2 {
		t.Fatalf("cache flushed %d times across fault+repair, want >= 2", cached.cache.flushes)
	}
	if cached.routingEpoch == 0 {
		t.Fatal("routingEpoch never advanced")
	}
	if cs, us := cached.Stats(), uncached.Stats(); cs != us {
		t.Fatalf("stats diverged:\n cached:   %+v\n uncached: %+v", cs, us)
	}
}

// TestRouteCacheWarmDecisionsZeroAlloc pins the allocation-free claim for
// the memoized hot paths: once an entry exists and the pools are primed, a
// climb lookup and a down partition (including handing back the pooled
// subsets) allocate nothing.
func TestRouteCacheWarmDecisionsZeroAlloc(t *testing.T) {
	n := fixtureNet(t, DefaultParams())
	set := n.getSet()
	for _, d := range []int{1, 3, 5, 7} {
		set.Add(d)
	}

	// Pick a covering switch for the partition and a non-covering one for
	// the climb, from the live tables rather than assuming the root's ID.
	coverer, climber := topology.SwitchID(-1), topology.SwitchID(-1)
	for s := 0; s < 8; s++ {
		if n.rt.Covers(topology.SwitchID(s), set) {
			if coverer < 0 {
				coverer = topology.SwitchID(s)
			}
		} else if climber < 0 {
			climber = topology.SwitchID(s)
		}
	}
	if coverer < 0 || climber < 0 {
		t.Fatalf("fixture lacks a covering/non-covering switch pair (coverer=%d climber=%d)", coverer, climber)
	}

	partition := func() {
		out, ok := n.sh0().partitionDownAdaptive(coverer, dset{bits: set})
		if !ok {
			t.Fatal("partition failed on healthy tables")
		}
		for _, ps := range out {
			n.putDset(ps.sub)
		}
	}
	climb := func() {
		if ports := n.sh0().climbPorts(climber, dset{bits: set}); len(ports) == 0 {
			t.Fatalf("no climb ports from switch %d", climber)
		}
	}

	// Warm: first calls populate the cache (and may allocate the entries).
	partition()
	climb()

	if allocs := testing.AllocsPerRun(200, partition); allocs != 0 {
		t.Fatalf("warm partitionDownAdaptive allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, climb); allocs != 0 {
		t.Fatalf("warm climbPorts allocates %.1f/op, want 0", allocs)
	}
	n.putSet(set)
}
