package updown

import (
	"testing"

	"mcastsim/internal/rng"
	"mcastsim/internal/topology"
)

// This file property-tests the fault-masked routing path: for random
// sequences of non-partitioning link removals, the masked routing state
// (Options.DeadLinks on the original topology) must stay legal, keep
// every surviving switch pair mutually reachable, keep its reachability
// strings exact, and agree bit-for-bit with routing computed fresh on a
// rebuilt topology with the links actually gone (RemoveLink preserves
// port numbering, so the two constructions must coincide).

// checkOrientationLegal asserts the up*/down* orientation invariants: a
// live link is up on exactly one side, dead/open/node ports carry no
// direction, and no switch other than the root lacks an up port.
func checkOrientationLegal(t *testing.T, rt *Routing) {
	t.Helper()
	topo := rt.Topo
	for li, l := range topo.Links {
		da, db := rt.Dirs[l.A][l.APort], rt.Dirs[l.B][l.BPort]
		if !rt.PortAlive(l.A, l.APort) || !rt.PortAlive(l.B, l.BPort) {
			if da != DirNone || db != DirNone {
				t.Fatalf("dead link %d still oriented (%v/%v)", li, da, db)
			}
			continue
		}
		if !(da == DirUp && db == DirDown) && !(da == DirDown && db == DirUp) {
			t.Fatalf("link %d orientation illegal: %v/%v", li, da, db)
		}
	}
	for s := 0; s < topo.NumSwitches; s++ {
		sw := topology.SwitchID(s)
		if !rt.SwitchAlive(sw) {
			continue
		}
		if sw != rt.Root && len(rt.UpPorts(sw)) == 0 {
			t.Fatalf("non-root switch %d has no up port", s)
		}
	}
}

// checkPairwiseReachable asserts every ordered pair of alive switches has
// a legal up*/down* route (finite fresh-phase distance).
func checkPairwiseReachable(t *testing.T, rt *Routing) {
	t.Helper()
	S := rt.Topo.NumSwitches
	for s := 0; s < S; s++ {
		for d := 0; d < S; d++ {
			if s == d || !rt.SwitchAlive(topology.SwitchID(s)) || !rt.SwitchAlive(topology.SwitchID(d)) {
				continue
			}
			if rt.DistUp(topology.SwitchID(s), topology.SwitchID(d)) < 0 {
				t.Fatalf("no legal route %d -> %d", s, d)
			}
			ports, _ := rt.NextHops(topology.SwitchID(s), PhaseUp, topology.SwitchID(d))
			if len(ports) == 0 {
				t.Fatalf("NextHops(%d, up, %d) empty despite finite distance", s, d)
			}
		}
	}
}

// bruteDownReach recomputes one down port's reachability string the slow
// way: enter the peer switch, then close over down links only.
func bruteDownReach(rt *Routing, s topology.SwitchID, p int) map[topology.NodeID]bool {
	topo := rt.Topo
	out := map[topology.NodeID]bool{}
	seen := make([]bool, topo.NumSwitches)
	var walk func(q topology.SwitchID)
	walk = func(q topology.SwitchID) {
		if seen[q] {
			return
		}
		seen[q] = true
		for _, node := range topo.NodesAt(q) {
			out[node] = true
		}
		for _, dp := range rt.DownPorts(q) {
			walk(topo.Conn[q][dp].Switch)
		}
	}
	walk(topo.Conn[s][p].Switch)
	return out
}

// checkDownReachExact asserts every down port's reachability string
// matches the brute-force down-only closure.
func checkDownReachExact(t *testing.T, rt *Routing) {
	t.Helper()
	topo := rt.Topo
	for s := 0; s < topo.NumSwitches; s++ {
		sw := topology.SwitchID(s)
		if !rt.SwitchAlive(sw) {
			continue
		}
		for _, p := range rt.DownPorts(sw) {
			want := bruteDownReach(rt, sw, p)
			got := rt.DownReach[s][p]
			if got.Count() != len(want) {
				t.Fatalf("DownReach[%d][%d] has %d nodes, brute force %d", s, p, got.Count(), len(want))
			}
			for node := range want {
				if !got.Contains(int(node)) {
					t.Fatalf("DownReach[%d][%d] missing node %d", s, p, node)
				}
			}
		}
	}
}

// checkMaskMatchesRebuild asserts the masked routing agrees exactly with
// routing computed fresh on a topology with the dead links truly removed.
func checkMaskMatchesRebuild(t *testing.T, masked *Routing, rebuilt *Routing) {
	t.Helper()
	topo := masked.Topo
	if masked.Root != rebuilt.Root {
		t.Fatalf("roots differ: masked %d, rebuilt %d", masked.Root, rebuilt.Root)
	}
	for s := 0; s < topo.NumSwitches; s++ {
		if masked.Level[s] != rebuilt.Level[s] {
			t.Fatalf("Level[%d]: masked %d, rebuilt %d", s, masked.Level[s], rebuilt.Level[s])
		}
		for p := 0; p < topo.PortsPerSwitch; p++ {
			if masked.Dirs[s][p] != rebuilt.Dirs[s][p] {
				t.Fatalf("Dirs[%d][%d]: masked %v, rebuilt %v", s, p, masked.Dirs[s][p], rebuilt.Dirs[s][p])
			}
			mr, rr := masked.DownReach[s][p], rebuilt.DownReach[s][p]
			if (mr == nil) != (rr == nil) {
				t.Fatalf("DownReach[%d][%d]: nil mismatch", s, p)
			}
			if mr == nil {
				continue
			}
			if mr.Count() != rr.Count() {
				t.Fatalf("DownReach[%d][%d]: masked %v, rebuilt %v", s, p, mr.Indices(), rr.Indices())
			}
			for _, idx := range mr.Indices() {
				if !rr.Contains(idx) {
					t.Fatalf("DownReach[%d][%d]: masked %v, rebuilt %v", s, p, mr.Indices(), rr.Indices())
				}
			}
		}
	}
}

// removalSequence drives one random sequence of non-partitioning link
// removals over topo, checking every property after every step.
func removalSequence(t *testing.T, topo *topology.Topology, seed uint64, steps int) {
	t.Helper()
	r := rng.New(seed)
	dead := make([]bool, len(topo.Links))
	var deadList []int
	rebuilt := topo
	for step := 0; step < steps; step++ {
		// Pick a random link whose removal keeps the graph connected.
		picked := -1
		for _, li := range r.Perm(len(topo.Links)) {
			if dead[li] {
				continue
			}
			dead[li] = true
			if topo.ConnectedExcluding(dead, nil) {
				picked = li
				break
			}
			dead[li] = false
		}
		if picked == -1 {
			return // pure tree remains; nothing left to remove
		}
		deadList = append(deadList, picked)
		// Rebuilt topology: remove the same link for real. Its index in
		// the rebuilt link list shifts down by the removed-before count.
		shifted := picked
		for _, q := range deadList[:len(deadList)-1] {
			if q < picked {
				shifted--
			}
		}
		var err error
		rebuilt, err = rebuilt.RemoveLink(shifted)
		if err != nil {
			t.Fatalf("step %d: RemoveLink(%d): %v", step, shifted, err)
		}
		masked, err := NewWithOptions(topo, Options{Root: -1, DeadLinks: append([]int(nil), deadList...)})
		if err != nil {
			t.Fatalf("step %d: masked routing: %v", step, err)
		}
		fresh, err := New(rebuilt)
		if err != nil {
			t.Fatalf("step %d: rebuilt routing: %v", step, err)
		}
		checkOrientationLegal(t, masked)
		checkPairwiseReachable(t, masked)
		checkDownReachExact(t, masked)
		checkMaskMatchesRebuild(t, masked, fresh)
	}
}

func TestRemovalSequenceProperties(t *testing.T) {
	topos, err := topology.GenerateFamily(topology.DefaultConfig(), 4, 77)
	if err != nil {
		t.Fatal(err)
	}
	for ti, topo := range topos {
		for trial := 0; trial < 4; trial++ {
			removalSequence(t, topo, rng.Mix(77, uint64(ti), uint64(trial)), 3)
		}
	}
}

func FuzzRemovalSequence(f *testing.F) {
	f.Add(uint64(1), uint64(0))
	f.Add(uint64(42), uint64(1))
	f.Add(uint64(1998), uint64(2))
	f.Add(uint64(0), uint64(3))
	topos, err := topology.GenerateFamily(topology.DefaultConfig(), 4, 123)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, seed uint64, pick uint64) {
		removalSequence(t, topos[pick%uint64(len(topos))], seed, 4)
	})
}
