package updown

import (
	"testing"

	"mcastsim/internal/bitset"
	"mcastsim/internal/rng"
	"mcastsim/internal/topology"
)

// fixture builds the 8-switch graph used across the topology tests (the
// paper's Figure 1 shape), one node per switch.
func fixture(t *testing.T) (*topology.Topology, *Routing) {
	t.Helper()
	links := [][4]int{
		{0, 0, 1, 0}, {0, 1, 2, 0}, {1, 1, 3, 0}, {2, 1, 3, 1}, {2, 2, 4, 0},
		{3, 2, 5, 0}, {4, 1, 5, 1}, {4, 2, 6, 0}, {5, 2, 7, 0}, {6, 1, 7, 1},
	}
	nodes := make([][2]int, 8)
	for n := range nodes {
		nodes[n] = [2]int{n, 7}
	}
	topo, err := topology.Build(8, 8, links, nodes)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(topo)
	if err != nil {
		t.Fatal(err)
	}
	return topo, r
}

func family(t *testing.T, cfg topology.Config, count int, seed uint64) []*Routing {
	t.Helper()
	topos, err := topology.GenerateFamily(cfg, count, seed)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*Routing, len(topos))
	for i, topo := range topos {
		r, err := New(topo)
		if err != nil {
			t.Fatalf("topology %d: %v", i, err)
		}
		out[i] = r
	}
	return out
}

func TestBFSLevelsFixture(t *testing.T) {
	_, r := fixture(t)
	want := []int{0, 1, 1, 2, 2, 3, 3, 4}
	for s, lv := range r.Level {
		if lv != want[s] {
			t.Fatalf("level[%d] = %d, want %d", s, lv, want[s])
		}
	}
	if r.Root != 0 {
		t.Fatalf("root = %d", r.Root)
	}
}

func TestParentIsCloser(t *testing.T) {
	for _, r := range family(t, topology.DefaultConfig(), 10, 42) {
		for s, par := range r.Parent {
			if s == int(r.Root) {
				if par != -1 {
					t.Fatal("root has a parent")
				}
				continue
			}
			if r.Level[par] != r.Level[s]-1 {
				t.Fatalf("parent level mismatch at switch %d", s)
			}
		}
	}
}

func TestOrientationAntisymmetric(t *testing.T) {
	// For every inter-switch link, exactly one end must be up and the
	// other down.
	for _, r := range family(t, topology.DefaultConfig(), 10, 43) {
		topo := r.Topo
		for _, l := range topo.Links {
			da := r.Dirs[l.A][l.APort]
			db := r.Dirs[l.B][l.BPort]
			if !((da == DirUp && db == DirDown) || (da == DirDown && db == DirUp)) {
				t.Fatalf("link %+v oriented %v/%v", l, da, db)
			}
		}
	}
}

func TestUpMovesDecreaseLevelID(t *testing.T) {
	// Any up traversal strictly decreases (level, id) lexicographically —
	// the acyclicity argument of §2.2.
	for _, r := range family(t, topology.Config{Switches: 16, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1}, 10, 44) {
		topo := r.Topo
		for s := 0; s < topo.NumSwitches; s++ {
			for p := 0; p < topo.PortsPerSwitch; p++ {
				if r.Dirs[s][p] != DirUp {
					continue
				}
				q := int(topo.Conn[s][p].Switch)
				if !(r.Level[q] < r.Level[s] || (r.Level[q] == r.Level[s] && q < s)) {
					t.Fatalf("up move %d->%d does not decrease (level,id)", s, q)
				}
			}
		}
	}
}

func TestAllPairsLegallyReachable(t *testing.T) {
	cfgs := []topology.Config{
		{Switches: 8, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
		{Switches: 16, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
		{Switches: 32, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
		{Switches: 32, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: 0}, // pure tree
	}
	for _, cfg := range cfgs {
		for _, r := range family(t, cfg, 5, 45) {
			S := r.Topo.NumSwitches
			for a := 0; a < S; a++ {
				for b := 0; b < S; b++ {
					d := r.DistUp(topology.SwitchID(a), topology.SwitchID(b))
					if a == b && d != 0 {
						t.Fatalf("DistUp(%d,%d) = %d", a, b, d)
					}
					if d >= unreachable {
						t.Fatalf("pair %d->%d unreachable", a, b)
					}
				}
			}
		}
	}
}

func TestDistUpAtLeastGraphDistance(t *testing.T) {
	// Legal routes are a subset of all routes, so the legal distance can
	// never beat plain BFS distance.
	for _, r := range family(t, topology.DefaultConfig(), 10, 46) {
		plain := r.Topo.SwitchDistances()
		S := r.Topo.NumSwitches
		for a := 0; a < S; a++ {
			for b := 0; b < S; b++ {
				if r.DistUp(topology.SwitchID(a), topology.SwitchID(b)) < plain[a][b] {
					t.Fatalf("legal distance beats BFS for %d->%d", a, b)
				}
			}
		}
	}
}

func TestNextHopsLegalAndShortest(t *testing.T) {
	for _, r := range family(t, topology.DefaultConfig(), 8, 47) {
		topo := r.Topo
		S := topo.NumSwitches
		for a := 0; a < S; a++ {
			for b := 0; b < S; b++ {
				if a == b {
					continue
				}
				for _, ph := range []Phase{PhaseUp, PhaseDown} {
					row := r.row(topology.SwitchID(b))
					var cur int32
					if ph == PhaseUp {
						cur = row.up[a]
					} else {
						cur = row.down[a]
					}
					ports, phases := r.NextHops(topology.SwitchID(a), ph, topology.SwitchID(b))
					if cur >= unreachable32 {
						if len(ports) != 0 {
							t.Fatalf("unreachable state has next hops")
						}
						continue
					}
					if len(ports) == 0 {
						t.Fatalf("reachable state (%d,%v)->%d has no next hops", a, ph, b)
					}
					for i, p := range ports {
						dir := r.Dirs[a][p]
						if ph == PhaseDown && dir != DirDown {
							t.Fatalf("illegal up turn offered at switch %d", a)
						}
						q := topo.Conn[a][p].Switch
						var rem int32
						if phases[i] == PhaseUp {
							rem = row.up[q]
						} else {
							rem = row.down[q]
						}
						if rem+1 != cur {
							t.Fatalf("non-shortest hop offered at switch %d", a)
						}
						if dir == DirDown && phases[i] != PhaseDown {
							t.Fatalf("down move did not switch phase")
						}
						if dir == DirUp && phases[i] != PhaseUp {
							t.Fatalf("up move changed phase")
						}
					}
				}
			}
		}
	}
}

// walkAllLegalRoutes drives NextHops transitions and confirms no route ever
// makes an up turn after a down turn (exhaustive over adaptive choices).
func TestNoUpAfterDownByConstruction(t *testing.T) {
	_, r := fixture(t)
	topo := r.Topo
	S := topo.NumSwitches
	for a := 0; a < S; a++ {
		for b := 0; b < S; b++ {
			if a == b {
				continue
			}
			// DFS over (switch, phase) following only NextHops choices.
			type state struct {
				s  topology.SwitchID
				ph Phase
			}
			stack := []state{{topology.SwitchID(a), PhaseUp}}
			seen := map[state]bool{}
			for len(stack) > 0 {
				st := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if seen[st] || st.s == topology.SwitchID(b) {
					continue
				}
				seen[st] = true
				ports, phases := r.NextHops(st.s, st.ph, topology.SwitchID(b))
				for i, p := range ports {
					if st.ph == PhaseDown && r.Dirs[st.s][p] == DirUp {
						t.Fatalf("up after down %d->%d", a, b)
					}
					stack = append(stack, state{topo.Conn[st.s][p].Switch, phases[i]})
				}
			}
		}
	}
}

func TestDownReachExact(t *testing.T) {
	// DownReach[s][p] must equal the set computed by explicit DFS over
	// down links from the far end of p.
	for _, r := range family(t, topology.DefaultConfig(), 10, 48) {
		topo := r.Topo
		for s := 0; s < topo.NumSwitches; s++ {
			for p := 0; p < topo.PortsPerSwitch; p++ {
				if r.Dirs[s][p] != DirDown {
					if r.DownReach[s][p] != nil {
						t.Fatalf("non-down port %d/%d has reachability", s, p)
					}
					continue
				}
				want := bitset.New(topo.NumNodes)
				var dfs func(q topology.SwitchID)
				visited := map[topology.SwitchID]bool{}
				dfs = func(q topology.SwitchID) {
					if visited[q] {
						return
					}
					visited[q] = true
					for _, n := range topo.NodesAt(q) {
						want.Add(int(n))
					}
					for pp := 0; pp < topo.PortsPerSwitch; pp++ {
						if r.Dirs[q][pp] == DirDown {
							dfs(topo.Conn[q][pp].Switch)
						}
					}
				}
				dfs(topo.Conn[s][p].Switch)
				if !want.Equal(r.DownReach[s][p]) {
					t.Fatalf("DownReach mismatch at switch %d port %d", s, p)
				}
			}
		}
	}
}

func TestRootCoversEverything(t *testing.T) {
	for _, r := range family(t, topology.Config{Switches: 16, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1}, 10, 49) {
		if r.Cover[r.Root].Count() != r.Topo.NumNodes {
			t.Fatal("root does not cover all nodes")
		}
	}
}

func TestCoverIsLocalPlusDownReach(t *testing.T) {
	for _, r := range family(t, topology.DefaultConfig(), 5, 50) {
		topo := r.Topo
		for s := 0; s < topo.NumSwitches; s++ {
			want := bitset.New(topo.NumNodes)
			for _, n := range topo.NodesAt(topology.SwitchID(s)) {
				want.Add(int(n))
			}
			for _, p := range r.DownPorts(topology.SwitchID(s)) {
				want.UnionWith(r.DownReach[s][p])
			}
			if !want.Equal(r.Cover[s]) {
				t.Fatalf("Cover mismatch at switch %d", s)
			}
		}
	}
}

func TestDistDownConsistentWithReach(t *testing.T) {
	// A node n is in Cover[s] iff its home switch is down-reachable from s
	// (or is s itself).
	for _, r := range family(t, topology.DefaultConfig(), 10, 51) {
		topo := r.Topo
		for s := 0; s < topo.NumSwitches; s++ {
			for n := 0; n < topo.NumNodes; n++ {
				home := topo.NodeSwitch[n]
				_, downOK := r.DistDown(topology.SwitchID(s), home)
				inCover := r.Cover[s].Contains(n)
				if downOK != inCover {
					t.Fatalf("switch %d node %d: DistDown ok=%v but Cover=%v", s, n, downOK, inCover)
				}
			}
		}
	}
}

func TestPartitionDownCoversExactlyOnce(t *testing.T) {
	for _, r := range family(t, topology.DefaultConfig(), 10, 52) {
		topo := r.Topo
		src := rng.New(99)
		for trial := 0; trial < 20; trial++ {
			k := 1 + src.Intn(topo.NumNodes-1)
			dests := bitset.FromIndices(topo.NumNodes, src.Sample(topo.NumNodes, k))
			// Partition at the root, which always covers.
			local, perPort := r.PartitionDown(r.Root, dests)
			got := bitset.New(topo.NumNodes)
			for _, n := range local {
				if got.Contains(int(n)) {
					t.Fatal("local destination duplicated")
				}
				got.Add(int(n))
			}
			for p, sub := range perPort {
				if !sub.SubsetOf(r.DownReach[r.Root][p]) {
					t.Fatalf("branch through port %d exceeds its reachability", p)
				}
				sub.ForEach(func(i int) bool {
					if got.Contains(i) {
						t.Fatalf("destination %d assigned to two branches", i)
					}
					got.Add(i)
					return true
				})
			}
			if !got.Equal(dests) {
				t.Fatalf("partition delivers %v, want %v", got.Indices(), dests.Indices())
			}
		}
	}
}

func TestPartitionDownPanicsWithoutCover(t *testing.T) {
	_, r := fixture(t)
	// Find a leaf-ish switch that does not cover everything.
	var s topology.SwitchID = -1
	for cand := 0; cand < r.Topo.NumSwitches; cand++ {
		if r.Cover[cand].Count() < r.Topo.NumNodes {
			s = topology.SwitchID(cand)
			break
		}
	}
	if s == -1 {
		t.Skip("every switch covers everything in fixture")
	}
	all := bitset.New(r.Topo.NumNodes)
	for i := 0; i < r.Topo.NumNodes; i++ {
		all.Add(i)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PartitionDown without cover did not panic")
		}
	}()
	r.PartitionDown(s, all)
}

func TestUpPortsParentFirst(t *testing.T) {
	for _, r := range family(t, topology.DefaultConfig(), 5, 53) {
		topo := r.Topo
		for s := 0; s < topo.NumSwitches; s++ {
			if s == int(r.Root) {
				if len(r.UpPorts(topology.SwitchID(s))) != 0 {
					t.Fatal("root has up ports")
				}
				continue
			}
			ups := r.UpPorts(topology.SwitchID(s))
			if len(ups) == 0 {
				t.Fatalf("switch %d has no up ports", s)
			}
			if topo.Conn[s][ups[0]].Switch != r.Parent[s] {
				t.Fatalf("switch %d: first up port is not the tree parent", s)
			}
		}
	}
}

func TestNodePortAt(t *testing.T) {
	topo, r := fixture(t)
	for n := 0; n < topo.NumNodes; n++ {
		home := topo.NodeSwitch[n]
		if got := r.NodePortAt(home, topology.NodeID(n)); got != topo.NodePort[n] {
			t.Fatalf("NodePortAt(%d,%d) = %d", home, n, got)
		}
		other := topology.SwitchID((int(home) + 1) % topo.NumSwitches)
		if got := r.NodePortAt(other, topology.NodeID(n)); got != -1 {
			t.Fatalf("NodePortAt wrong switch returned %d", got)
		}
	}
}

func TestDirString(t *testing.T) {
	if DirUp.String() != "up" || DirDown.String() != "down" || DirNone.String() != "none" {
		t.Fatal("Dir.String broken")
	}
}

func TestNewWithOptionsExplicitRoot(t *testing.T) {
	_, rDefault := fixture(t)
	topo := rDefault.Topo
	for root := 0; root < topo.NumSwitches; root++ {
		r, err := NewWithOptions(topo, Options{Root: topology.SwitchID(root)})
		if err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
		if r.Root != topology.SwitchID(root) {
			t.Fatalf("root %d not applied", root)
		}
		if r.Level[root] != 0 {
			t.Fatalf("root %d level %d", root, r.Level[root])
		}
		// All invariants must hold for every root choice.
		if r.Cover[root].Count() != topo.NumNodes {
			t.Fatalf("root %d does not cover all nodes", root)
		}
	}
}

func TestNewWithOptionsRejectsBadRoot(t *testing.T) {
	_, r := fixture(t)
	if _, err := NewWithOptions(r.Topo, Options{Root: 99}); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

func TestCenterRootShallowerOrEqual(t *testing.T) {
	// The center root's tree depth can never exceed the default root's
	// eccentricity-driven depth; usually it is strictly smaller.
	deeper := 0
	for _, cfg := range []topology.Config{
		{Switches: 16, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
		{Switches: 32, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
	} {
		topos, err := topology.GenerateFamily(cfg, 10, 321)
		if err != nil {
			t.Fatal(err)
		}
		for _, topo := range topos {
			def, err := New(topo)
			if err != nil {
				t.Fatal(err)
			}
			cen, err := NewWithOptions(topo, Options{Root: -1, CenterRoot: true})
			if err != nil {
				t.Fatal(err)
			}
			maxLevel := func(r *Routing) int {
				m := 0
				for _, l := range r.Level {
					if l > m {
						m = l
					}
				}
				return m
			}
			if maxLevel(cen) > maxLevel(def) {
				deeper++
			}
		}
	}
	if deeper > 0 {
		t.Fatalf("center root produced a deeper tree on %d topologies", deeper)
	}
}

func TestDFSTreeInvariants(t *testing.T) {
	// DFS construction must satisfy every invariant the verify() pass
	// checks (it runs inside NewWithOptions), plus DFS-specific shape:
	// parent levels differ by exactly one and trees are generally deeper
	// than BFS trees.
	deeperOrEqual := 0
	total := 0
	for _, cfg := range []topology.Config{
		{Switches: 8, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
		{Switches: 16, PortsPerSwitch: 8, Nodes: 32, ExtraLinksPerSwitch: -1},
	} {
		topos, err := topology.GenerateFamily(cfg, 8, 555)
		if err != nil {
			t.Fatal(err)
		}
		for _, topo := range topos {
			dfs, err := NewWithOptions(topo, Options{Root: -1, Tree: TreeDFS})
			if err != nil {
				t.Fatalf("DFS routing failed: %v", err)
			}
			bfs, err := New(topo)
			if err != nil {
				t.Fatal(err)
			}
			for s, par := range dfs.Parent {
				if s == int(dfs.Root) {
					continue
				}
				if dfs.Level[s] != dfs.Level[par]+1 {
					t.Fatalf("DFS parent level gap at switch %d", s)
				}
			}
			maxL := func(r *Routing) int {
				m := 0
				for _, l := range r.Level {
					if l > m {
						m = l
					}
				}
				return m
			}
			total++
			if maxL(dfs) >= maxL(bfs) {
				deeperOrEqual++
			}
		}
	}
	if deeperOrEqual < total {
		t.Fatalf("DFS tree shallower than BFS on %d/%d topologies", total-deeperOrEqual, total)
	}
}

func TestDFSRoutingAllPairs(t *testing.T) {
	topos, err := topology.GenerateFamily(topology.DefaultConfig(), 5, 777)
	if err != nil {
		t.Fatal(err)
	}
	for _, topo := range topos {
		r, err := NewWithOptions(topo, Options{Root: -1, Tree: TreeDFS})
		if err != nil {
			t.Fatal(err)
		}
		S := topo.NumSwitches
		for a := 0; a < S; a++ {
			for b := 0; b < S; b++ {
				if r.DistUp(topology.SwitchID(a), topology.SwitchID(b)) >= unreachable {
					t.Fatalf("DFS: pair %d->%d unreachable", a, b)
				}
			}
		}
	}
}

func TestMeshRoutingExactLevels(t *testing.T) {
	// On a mesh rooted at switch 0 (corner), BFS levels are Manhattan
	// distances from the corner — an exact-value check of the substrate.
	const rows, cols = 3, 4
	topo, err := topology.Mesh2D(rows, cols, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(topo)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < rows; row++ {
		for col := 0; col < cols; col++ {
			if got := r.Level[row*cols+col]; got != row+col {
				t.Fatalf("level[(%d,%d)] = %d, want %d", row, col, got, row+col)
			}
		}
	}
	// Legal distance on a mesh from the corner root equals graph distance
	// for all pairs reachable without an up-after-down violation from the
	// root's perspective... at minimum, distances from the root itself.
	for s := 0; s < rows*cols; s++ {
		if got := r.DistUp(0, topology.SwitchID(s)); got != r.Level[s] {
			t.Fatalf("DistUp(0,%d) = %d, want %d", s, got, r.Level[s])
		}
	}
}

func TestRingOrientationBreaksCycle(t *testing.T) {
	topo, err := topology.Ring(6, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(topo)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one switch (the "anti-root") has two up ports; the root has
	// none; everyone else has one: the ring's single cycle is broken at
	// one point.
	twoUp, zeroUp := 0, 0
	for s := 0; s < 6; s++ {
		ups := len(r.UpPorts(topology.SwitchID(s)))
		switch ups {
		case 0:
			zeroUp++
		case 2:
			twoUp++
		case 1:
		default:
			t.Fatalf("switch %d has %d up ports", s, ups)
		}
	}
	if zeroUp != 1 || twoUp != 1 {
		t.Fatalf("ring orientation wrong: %d roots, %d anti-roots", zeroUp, twoUp)
	}
}
