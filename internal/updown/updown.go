// Package updown implements the Autonet-style up*/down* routing substrate
// the paper assumes (§2.2).
//
// A breadth-first spanning tree is computed over the switch graph from a
// deterministic root (the lowest-ID switch; the paper's distributed
// agreement protocol is irrelevant to the comparison, only the resulting
// unique tree matters). Every inter-switch link is then oriented: the "up"
// end is the end closer to the root, with ties broken toward the lower
// switch ID. Because (level, id) strictly decreases along every up
// traversal, the directed links form no loops.
//
// A legal route traverses zero or more up links followed by zero or more
// down links — never up after down. The package exposes:
//
//   - per-port directions and adaptive shortest legal-path next-hop tables
//     for unicast routing (used by all schemes and by path worms between
//     drop switches),
//   - per-down-port reachability bit-strings (the switch state that routes
//     tree-based multidestination worms, paper §3.2.3),
//   - down-only distance tables (the continuation constraint for multi-drop
//     path worms, paper §3.2.4).
package updown

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"mcastsim/internal/bitset"
	"mcastsim/internal/topology"
)

// ErrPartitioned reports that the alive switch graph is disconnected, so no
// routing state covering every surviving switch exists. Reconfiguration
// keeps the old tables when it sees this.
var ErrPartitioned = errors.New("updown: alive switch graph is partitioned")

// Dir classifies a switch port under the up/down orientation.
type Dir uint8

const (
	// DirNone marks open ports and ports to nodes (orientation applies
	// only to inter-switch links).
	DirNone Dir = iota
	// DirUp means leaving through this port moves toward the root.
	DirUp
	// DirDown means leaving through this port moves away from the root.
	DirDown
)

func (d Dir) String() string {
	switch d {
	case DirUp:
		return "up"
	case DirDown:
		return "down"
	default:
		return "none"
	}
}

// Phase is the routing phase a packet carries: a fresh packet may still
// climb; once it has taken a down link it may only descend.
type Phase uint8

const (
	// PhaseUp: the packet has taken no down link yet; both directions are
	// legal.
	PhaseUp Phase = iota
	// PhaseDown: the packet has taken a down link; only down links remain
	// legal.
	PhaseDown
)

const unreachable = int(^uint(0) >> 2) // effectively infinity for hop counts

// unreachable32 is the row-local sentinel; DistUp/DistDown translate it
// back to the package-wide unreachable value.
const unreachable32 = int32(^uint32(0) >> 2)

// Routing is the immutable routing state derived from a topology.
type Routing struct {
	Topo *topology.Topology
	// Root is the BFS root switch (lowest ID, i.e. 0).
	Root topology.SwitchID
	// Level[s] is the BFS tree depth of switch s.
	Level []int
	// Parent[s] is s's BFS tree parent (-1 for the root).
	Parent []topology.SwitchID
	// Dirs[s][p] orients each port of each switch.
	Dirs [][]Dir

	// dist[d] holds destination d's distance row: row.up[s] is the
	// shortest legal route length (switch hops) from s, starting fresh,
	// to switch d; row.down[s] the same restricted to down links only
	// (unreachable32 if no down-only route exists). Rows are computed
	// lazily per destination on first use — a 10k-switch network's full
	// table would be ~1.7 GB and O(S·(S+L)) to build, but a simulation
	// probe only routes toward a handful of destination switches. The
	// BFS is deterministic, so concurrent users publishing the same row
	// via CompareAndSwap always agree; Routing stays safe for shared
	// read-only use across worker goroutines.
	dist []atomic.Pointer[distRow]
	// revAdj is the reverse adjacency over (switch, phase) states that
	// each row BFS runs on, built once at construction.
	revAdj [][]revState

	// DownReach[s][p] is the reachability string of down port p of switch
	// s: node n is in the set iff n is legally reachable by entering that
	// port and continuing on down links only. Nil for non-down ports.
	DownReach [][]*bitset.Set
	// Cover[s] is the set of nodes deliverable from switch s without any
	// further up movement: nodes attached to s plus the union of its down
	// ports' reachability strings.
	Cover []*bitset.Set

	// nodesBySwitch[s] lists the nodes attached to switch s (shared
	// backing array, see topology.NodesBySwitch). Replaces the old S×N
	// nodePort table, whose footprint was quadratic in system size.
	nodesBySwitch [][]topology.NodeID

	// deadSwitch[s] / deadPort[s][p] mark failed switches and ports whose
	// link, peer switch, or own switch has failed. A dead port keeps
	// Dirs == DirNone, so every consumer of the orientation (NextHops,
	// UpPorts, DownPorts, DownReach, tree climbs) avoids it without
	// special-casing faults.
	deadSwitch []bool
	deadPort   [][]bool

	// Opts records the options this state was built with, so a
	// reconfiguration can recompute routing under the same policy with an
	// updated fault mask.
	Opts Options
}

// TreePolicy selects the spanning-tree construction behind the up/down
// orientation.
type TreePolicy uint8

const (
	// TreeBFS is Autonet's breadth-first tree (the paper's §2.2 model).
	TreeBFS TreePolicy = iota
	// TreeDFS builds a depth-first tree instead — the classic up*/down*
	// variant from the literature. Its levels are DFS depths; the same
	// orientation rule stays loop-free for any level assignment, but the
	// deeper, skinnier tree shifts which links are "up", typically moving
	// traffic off the BFS root at the cost of longer legal paths.
	TreeDFS
)

// Options configures routing construction.
type Options struct {
	// Root forces the spanning-tree root when >= 0. The default (-1 via
	// New) is switch 0 — the deterministic lowest-ID stand-in for
	// Autonet's UID-based agreement.
	Root topology.SwitchID
	// CenterRoot, when Root < 0, picks a graph center (minimum
	// eccentricity, ties to the lower ID) instead of switch 0: a known
	// up*/down* optimization that shortens tree depth and hence worm
	// climbs. Exposed for the "root" experiment.
	CenterRoot bool
	// Tree selects BFS (default, the paper's model) or DFS construction.
	Tree TreePolicy
	// DeadLinks lists indices into Topo.Links of failed links; DeadSwitches
	// lists failed switches (all their ports die with them). Routing is
	// computed over the surviving subgraph: dead ports stay DirNone, dead
	// switches get no levels, and verification covers only alive switches
	// and the nodes attached to them. If the alive subgraph is
	// disconnected, construction fails with an error wrapping
	// ErrPartitioned.
	DeadLinks    []int
	DeadSwitches []topology.SwitchID
}

// New computes the full routing state for t with the default root.
func New(t *topology.Topology) (*Routing, error) {
	return NewWithOptions(t, Options{Root: -1})
}

// NewWithOptions computes the routing state with explicit root policy.
func NewWithOptions(t *topology.Topology, opt Options) (*Routing, error) {
	r := &Routing{Topo: t, Opts: opt}
	if err := r.buildMasks(opt); err != nil {
		return nil, err
	}
	root := opt.Root
	if root >= 0 {
		if int(root) >= t.NumSwitches {
			return nil, fmt.Errorf("updown: root %d out of range", root)
		}
		if r.deadSwitch[root] {
			return nil, fmt.Errorf("updown: root %d is a dead switch", root)
		}
	} else {
		// Default: lowest alive switch; with CenterRoot, a center of the
		// alive subgraph (minimum eccentricity, ties to the lower ID).
		root = -1
		for s := 0; s < t.NumSwitches; s++ {
			if !r.deadSwitch[s] {
				root = topology.SwitchID(s)
				break
			}
		}
		if root < 0 {
			return nil, fmt.Errorf("updown: every switch is dead")
		}
		if opt.CenterRoot {
			root = r.centerAlive()
		}
	}
	r.Root = root
	if opt.Tree == TreeDFS {
		r.computeDFSTree()
	} else {
		r.computeTree()
	}
	// A surviving switch the tree never reached means the alive subgraph is
	// disconnected: no single up*/down* state can serve it.
	for s := 0; s < t.NumSwitches; s++ {
		if !r.deadSwitch[s] && r.Level[s] == -1 {
			return nil, fmt.Errorf("updown: switch %d unreachable from root %d: %w", s, root, ErrPartitioned)
		}
	}
	r.orientPorts()
	r.computeDistances()
	r.nodesBySwitch = t.NodesBySwitch()
	r.computeReachability()
	if err := r.verify(); err != nil {
		return nil, err
	}
	return r, nil
}

// buildMasks derives deadSwitch/deadPort from the options. A port is dead
// when its switch is dead, its link is listed dead, or its peer switch is
// dead.
func (r *Routing) buildMasks(opt Options) error {
	t := r.Topo
	r.deadSwitch = make([]bool, t.NumSwitches)
	for _, s := range opt.DeadSwitches {
		if int(s) < 0 || int(s) >= t.NumSwitches {
			return fmt.Errorf("updown: dead switch %d out of range", s)
		}
		r.deadSwitch[s] = true
	}
	r.deadPort = make([][]bool, t.NumSwitches)
	for s := range r.deadPort {
		r.deadPort[s] = make([]bool, t.PortsPerSwitch)
	}
	for _, li := range opt.DeadLinks {
		if li < 0 || li >= len(t.Links) {
			return fmt.Errorf("updown: dead link %d out of range", li)
		}
		l := t.Links[li]
		r.deadPort[l.A][l.APort] = true
		r.deadPort[l.B][l.BPort] = true
	}
	for s := 0; s < t.NumSwitches; s++ {
		for p := 0; p < t.PortsPerSwitch; p++ {
			e := t.Conn[s][p]
			if r.deadSwitch[s] || (e.Kind == topology.ToSwitch && r.deadSwitch[e.Switch]) {
				r.deadPort[s][p] = true
			}
		}
	}
	return nil
}

// centerAlive returns an alive switch of minimum eccentricity over the
// alive subgraph (lowest ID among ties). Must be called after buildMasks on
// a connected alive subgraph; unreachable alive switches are caught later
// by the tree check.
func (r *Routing) centerAlive() topology.SwitchID {
	t := r.Topo
	best, bestEcc := -1, unreachable
	for src := 0; src < t.NumSwitches; src++ {
		if r.deadSwitch[src] {
			continue
		}
		dist := make([]int, t.NumSwitches)
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue := []topology.SwitchID{topology.SwitchID(src)}
		ecc := 0
		for len(queue) > 0 {
			s := queue[0]
			queue = queue[1:]
			for p, e := range t.Conn[s] {
				if e.Kind != topology.ToSwitch || r.deadPort[s][p] || dist[e.Switch] != -1 {
					continue
				}
				dist[e.Switch] = dist[s] + 1
				if dist[e.Switch] > ecc {
					ecc = dist[e.Switch]
				}
				queue = append(queue, e.Switch)
			}
		}
		if ecc < bestEcc {
			best, bestEcc = src, ecc
		}
	}
	return topology.SwitchID(best)
}

// computeTree builds BFS levels and parents from the root. Neighbor order
// is by (switch ID, port) so the tree is unique and platform-independent —
// the property the Autonet agreement protocol provides.
func (r *Routing) computeTree() {
	t := r.Topo
	r.Level = make([]int, t.NumSwitches)
	r.Parent = make([]topology.SwitchID, t.NumSwitches)
	for i := range r.Level {
		r.Level[i] = -1
		r.Parent[i] = -1
	}
	r.Level[r.Root] = 0
	queue := []topology.SwitchID{r.Root}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		// Deterministic neighbor visitation: ascending port order.
		for p := 0; p < t.PortsPerSwitch; p++ {
			e := t.Conn[s][p]
			if e.Kind != topology.ToSwitch || r.deadPort[s][p] {
				continue
			}
			if r.Level[e.Switch] == -1 {
				r.Level[e.Switch] = r.Level[s] + 1
				r.Parent[e.Switch] = s
				queue = append(queue, e.Switch)
			}
		}
	}
}

// computeDFSTree builds a depth-first spanning tree; Level[s] is the DFS
// depth. Deterministic: neighbors visited in ascending port order,
// iteratively to keep deep graphs off the Go stack.
func (r *Routing) computeDFSTree() {
	t := r.Topo
	r.Level = make([]int, t.NumSwitches)
	r.Parent = make([]topology.SwitchID, t.NumSwitches)
	for i := range r.Level {
		r.Level[i] = -1
		r.Parent[i] = -1
	}
	type frame struct {
		sw   topology.SwitchID
		port int
	}
	r.Level[r.Root] = 0
	stack := []frame{{sw: r.Root}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		advanced := false
		for ; f.port < t.PortsPerSwitch; f.port++ {
			e := t.Conn[f.sw][f.port]
			if e.Kind != topology.ToSwitch || r.deadPort[f.sw][f.port] || r.Level[e.Switch] != -1 {
				continue
			}
			r.Level[e.Switch] = r.Level[f.sw] + 1
			r.Parent[e.Switch] = f.sw
			f.port++
			stack = append(stack, frame{sw: e.Switch})
			advanced = true
			break
		}
		if !advanced {
			stack = stack[:len(stack)-1]
		}
	}
}

// orientPorts assigns Up/Down to every inter-switch port end.
func (r *Routing) orientPorts() {
	t := r.Topo
	r.Dirs = make([][]Dir, t.NumSwitches)
	for s := 0; s < t.NumSwitches; s++ {
		r.Dirs[s] = make([]Dir, t.PortsPerSwitch)
		for p := 0; p < t.PortsPerSwitch; p++ {
			e := t.Conn[s][p]
			if e.Kind != topology.ToSwitch || r.deadPort[s][p] {
				continue
			}
			q := int(e.Switch)
			// Leaving s through p is "up" iff the peer q is the up end.
			if r.Level[q] < r.Level[s] || (r.Level[q] == r.Level[s] && q < s) {
				r.Dirs[s][p] = DirUp
			} else {
				r.Dirs[s][p] = DirDown
			}
		}
	}
}

// distRow is one destination switch's distance vectors (see Routing.dist).
type distRow struct {
	up   []int32
	down []int32
}

// revState is a predecessor (switch, phase) state in the reverse
// adjacency; int32 keeps the edge lists compact at 10k-switch scale.
type revState struct {
	s     int32
	phase Phase
}

// computeDistances prepares the lazy distance machinery: the reverse
// adjacency over (switch, phase) states and an empty row table. Rows are
// filled by row() on first use per destination.
func (r *Routing) computeDistances() {
	t := r.Topo
	S := t.NumSwitches
	r.dist = make([]atomic.Pointer[distRow], S)
	// Reverse adjacency over states. State encoding: s*2 + phase.
	// Forward edges:
	//   (s, up)   --up-port-->   (q, up)
	//   (s, up)   --down-port--> (q, down)
	//   (s, down) --down-port--> (q, down)
	// For the reverse BFS we need, for each state, the states with a
	// forward edge into it.
	r.revAdj = make([][]revState, 2*S)
	for s := 0; s < S; s++ {
		for p := 0; p < t.PortsPerSwitch; p++ {
			e := t.Conn[s][p]
			if e.Kind != topology.ToSwitch {
				continue
			}
			q := int(e.Switch)
			switch r.Dirs[s][p] {
			case DirUp:
				// (s,up) -> (q,up)
				r.revAdj[q*2+int(PhaseUp)] = append(r.revAdj[q*2+int(PhaseUp)], revState{int32(s), PhaseUp})
			case DirDown:
				// (s,up) -> (q,down) and (s,down) -> (q,down)
				r.revAdj[q*2+int(PhaseDown)] = append(r.revAdj[q*2+int(PhaseDown)], revState{int32(s), PhaseUp})
				r.revAdj[q*2+int(PhaseDown)] = append(r.revAdj[q*2+int(PhaseDown)], revState{int32(s), PhaseDown})
			}
		}
	}
}

// row returns destination d's distance row, computing and publishing it
// on first use. Safe for concurrent callers: the BFS is deterministic,
// so every racer computes an identical row and CompareAndSwap keeps
// exactly one.
func (r *Routing) row(d topology.SwitchID) *distRow {
	if p := r.dist[d].Load(); p != nil {
		return p
	}
	row := r.computeRow(int(d))
	if r.dist[d].CompareAndSwap(nil, row) {
		return row
	}
	return r.dist[d].Load()
}

// computeRow runs the reverse BFS for one destination switch over the
// (switch, phase) state graph.
func (r *Routing) computeRow(d int) *distRow {
	S := r.Topo.NumSwitches
	distState := make([]int32, 2*S)
	for i := range distState {
		distState[i] = unreachable32
	}
	// Arriving at switch d in either phase terminates the route.
	distState[d*2+int(PhaseUp)] = 0
	distState[d*2+int(PhaseDown)] = 0
	queue := make([]int32, 0, 2*S)
	queue = append(queue, int32(d*2+int(PhaseUp)), int32(d*2+int(PhaseDown)))
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		for _, prev := range r.revAdj[cur] {
			pi := prev.s*2 + int32(prev.phase)
			if distState[pi] == unreachable32 {
				distState[pi] = distState[cur] + 1
				queue = append(queue, pi)
			}
		}
	}
	row := &distRow{up: make([]int32, S), down: make([]int32, S)}
	for s := 0; s < S; s++ {
		row.up[s] = distState[s*2+int(PhaseUp)]
		row.down[s] = distState[s*2+int(PhaseDown)]
	}
	return row
}

// computeReachability fills DownReach and Cover. Down links form a DAG
// ordered by increasing (level, id), so a single sweep in decreasing order
// suffices.
func (r *Routing) computeReachability() {
	t := r.Topo
	S := t.NumSwitches
	N := t.NumNodes

	// downSet[s]: nodes reachable from switch s via down links only
	// (including s's own nodes).
	downSet := make([]*bitset.Set, S)
	order := make([]int, S)
	for i := range order {
		order[i] = i
	}
	// Decreasing (level, id): every down edge from s points to a switch
	// strictly later in increasing order, hence earlier in this sweep.
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if r.Level[a] != r.Level[b] {
			return r.Level[a] > r.Level[b]
		}
		return a > b
	})
	for _, s := range order {
		set := bitset.New(N)
		for _, n := range r.nodesBySwitch[s] {
			set.Add(int(n))
		}
		for p := 0; p < t.PortsPerSwitch; p++ {
			if r.Dirs[s][p] != DirDown {
				continue
			}
			q := int(t.Conn[s][p].Switch)
			set.UnionWith(downSet[q]) // q already computed by sweep order
		}
		downSet[s] = set
	}

	r.DownReach = make([][]*bitset.Set, S)
	r.Cover = make([]*bitset.Set, S)
	for s := 0; s < S; s++ {
		r.DownReach[s] = make([]*bitset.Set, t.PortsPerSwitch)
		cover := bitset.New(N)
		for _, n := range r.nodesBySwitch[s] {
			cover.Add(int(n))
		}
		for p := 0; p < t.PortsPerSwitch; p++ {
			if r.Dirs[s][p] != DirDown {
				continue
			}
			q := int(t.Conn[s][p].Switch)
			r.DownReach[s][p] = downSet[q]
			cover.UnionWith(downSet[q])
		}
		r.Cover[s] = cover
	}
}

// verifyPairwiseMax bounds the switch count for verify's exhaustive
// pairwise-reachability sweep (covers every paper/S/M experiment size).
const verifyPairwiseMax = 2048

// verify checks the invariants the rest of the system depends on,
// restricted to the alive subgraph when faults are masked out.
func (r *Routing) verify() error {
	t := r.Topo
	// Every alive non-root switch has at least one up port (its tree
	// parent link), and the root has none.
	for s := 0; s < t.NumSwitches; s++ {
		if r.deadSwitch[s] {
			continue
		}
		ups := 0
		for p := 0; p < t.PortsPerSwitch; p++ {
			if r.Dirs[s][p] == DirUp {
				ups++
			}
		}
		if s == int(r.Root) && ups != 0 {
			return fmt.Errorf("updown: root has %d up ports", ups)
		}
		if s != int(r.Root) && ups == 0 {
			return fmt.Errorf("updown: switch %d has no up port", s)
		}
	}
	// Every alive switch pair must be mutually reachable by a legal route.
	// The explicit pairwise sweep materializes every distance row — O(S²)
	// space and O(S·(S+L)) time — so it is gated to paper/experiment
	// sizes. At larger sizes the property holds structurally: every alive
	// switch has an all-up path to the root (the tree-parent chain, whose
	// (level, id) strictly decreases — checked above via up ports), and
	// every tree edge parent→child is a down link, so the root reaches
	// every alive switch down-only (the root-cover check below confirms
	// the node-level consequence). Climb-then-descend is a legal route.
	if t.NumSwitches <= verifyPairwiseMax {
		for d := 0; d < t.NumSwitches; d++ {
			if r.deadSwitch[d] {
				continue
			}
			up := r.row(topology.SwitchID(d)).up
			for s := 0; s < t.NumSwitches; s++ {
				if r.deadSwitch[s] {
					continue
				}
				if up[s] >= unreachable32 {
					return fmt.Errorf("updown: no legal route %d -> %d", s, d)
				}
			}
		}
	}
	// The root must cover every reachable node (tree worms terminate there
	// at worst).
	live := 0
	for n := 0; n < t.NumNodes; n++ {
		if !r.deadSwitch[t.NodeSwitch[n]] {
			live++
		}
	}
	if r.Cover[r.Root].Count() != live {
		return fmt.Errorf("updown: root covers %d of %d reachable nodes", r.Cover[r.Root].Count(), live)
	}
	return nil
}

// SwitchAlive reports whether switch s survived the fault mask this routing
// state was built with (always true for a fault-free routing).
func (r *Routing) SwitchAlive(s topology.SwitchID) bool {
	return !r.deadSwitch[s]
}

// NodeReachable reports whether node n's attachment switch is alive, i.e.
// whether the routing state can deliver to n at all.
func (r *Routing) NodeReachable(n topology.NodeID) bool {
	return !r.deadSwitch[r.Topo.NodeSwitch[n]]
}

// PortAlive reports whether switch s, port p survived the fault mask (its
// switch, link, and peer all alive). Node and open ports of alive switches
// are alive.
func (r *Routing) PortAlive(s topology.SwitchID, p int) bool {
	return !r.deadPort[s][p]
}

// DistUp returns the shortest legal route length in switch hops from s
// (fresh) to d.
func (r *Routing) DistUp(s, d topology.SwitchID) int {
	v := r.row(d).up[s]
	if v >= unreachable32 {
		return unreachable
	}
	return int(v)
}

// DistDown returns the shortest down-only route length from s to d, or
// ok=false when no down-only route exists.
func (r *Routing) DistDown(s, d topology.SwitchID) (int, bool) {
	v := r.row(d).down[s]
	if v >= unreachable32 {
		return unreachable, false
	}
	return int(v), true
}

// NodePortAt returns the port of switch s wired to node n, or -1 if n is
// not attached to s. Computed from the topology's node attachment arrays
// rather than a precomputed S×N table (which would be quadratic in
// system size).
func (r *Routing) NodePortAt(s topology.SwitchID, n topology.NodeID) int {
	if r.Topo.NodeSwitch[n] == s {
		return r.Topo.NodePort[n]
	}
	return -1
}

// NextHops returns the adaptive candidate output ports at switch s, in
// phase ph, for a packet headed to switch d: every port whose traversal is
// legal and lies on a shortest remaining legal route. The resulting phase
// for each candidate is also returned (parallel slices).
func (r *Routing) NextHops(s topology.SwitchID, ph Phase, d topology.SwitchID) (ports []int, phases []Phase) {
	if s == d {
		return nil, nil
	}
	t := r.Topo
	row := r.row(d)
	var cur int32
	if ph == PhaseUp {
		cur = row.up[s]
	} else {
		cur = row.down[s]
	}
	for p := 0; p < t.PortsPerSwitch; p++ {
		e := t.Conn[s][p]
		if e.Kind != topology.ToSwitch {
			continue
		}
		q := e.Switch
		switch r.Dirs[s][p] {
		case DirUp:
			if ph == PhaseDown {
				continue // illegal turn
			}
			if row.up[q]+1 == cur {
				ports = append(ports, p)
				phases = append(phases, PhaseUp)
			}
		case DirDown:
			if row.down[q]+1 == cur {
				ports = append(ports, p)
				phases = append(phases, PhaseDown)
			}
		}
	}
	return ports, phases
}

// UpPorts returns the up-oriented ports of s, tree-parent links first (the
// preference tree worms use while climbing).
func (r *Routing) UpPorts(s topology.SwitchID) []int {
	t := r.Topo
	var parentPorts, others []int
	for p := 0; p < t.PortsPerSwitch; p++ {
		if r.Dirs[s][p] != DirUp {
			continue
		}
		if t.Conn[s][p].Switch == r.Parent[s] {
			parentPorts = append(parentPorts, p)
		} else {
			others = append(others, p)
		}
	}
	return append(parentPorts, others...)
}

// DownPorts returns the down-oriented ports of s in ascending order.
func (r *Routing) DownPorts(s topology.SwitchID) []int {
	t := r.Topo
	var out []int
	for p := 0; p < t.PortsPerSwitch; p++ {
		if r.Dirs[s][p] == DirDown {
			out = append(out, p)
		}
	}
	return out
}

// Covers reports whether switch s can deliver every node in set without
// further up movement.
func (r *Routing) Covers(s topology.SwitchID, set *bitset.Set) bool {
	return set.SubsetOf(r.Cover[s])
}

// PartitionDown splits a destination set at covering switch s into
// (localNodes, perPort) where localNodes are destinations attached to s and
// perPort maps down-port -> the subset of destinations that branch will
// carry. Every destination is assigned to exactly one branch; ports with
// larger overlaps are preferred so the branch count is small (greedy set
// cover). Covers(s, set) must be true.
func (r *Routing) PartitionDown(s topology.SwitchID, set *bitset.Set) (local []topology.NodeID, perPort map[int]*bitset.Set) {
	remaining := set.Clone()
	for _, n := range r.nodesBySwitch[s] {
		if remaining.Contains(int(n)) {
			local = append(local, n)
			remaining.Remove(int(n))
		}
	}
	perPort = make(map[int]*bitset.Set)
	downs := r.DownPorts(s)
	for !remaining.Empty() {
		best, bestCount := -1, 0
		for _, p := range downs {
			if _, used := perPort[p]; used {
				continue
			}
			// AndCount, not And().Count(): the greedy loop runs ports ×
			// rounds times per switch, and a materialized intersection is
			// a universe-sized allocation each — gigabytes of garbage per
			// tree plan at the 1M-host tiers.
			c := bitset.AndCount(remaining, r.DownReach[s][p])
			if c > bestCount {
				best, bestCount = p, c
			}
		}
		if best == -1 {
			// Caller violated the Covers precondition.
			panic(fmt.Sprintf("updown: PartitionDown at switch %d cannot cover %v", s, remaining.Indices()))
		}
		sub := bitset.And(remaining, r.DownReach[s][best])
		perPort[best] = sub
		remaining.DifferenceWith(sub)
	}
	return local, perPort
}
