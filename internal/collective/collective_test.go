package collective

import (
	"testing"

	"mcastsim/internal/mcast"
	"mcastsim/internal/mcast/binomial"
	"mcastsim/internal/mcast/kbinomial"
	"mcastsim/internal/mcast/pathworm"
	"mcastsim/internal/mcast/treeworm"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

func routed(t *testing.T, seed uint64) *updown.Routing {
	t.Helper()
	topo, err := topology.Generate(topology.DefaultConfig(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := updown.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func cfg(sch mcast.Scheme) Config {
	return Config{Scheme: sch, Params: sim.DefaultParams(), Root: 0, Flits: 64, Seed: 1}
}

func TestBroadcastAllSchemes(t *testing.T) {
	rt := routed(t, 1)
	for _, sch := range []mcast.Scheme{binomial.New(), kbinomial.New(), treeworm.New(), pathworm.New()} {
		res, err := Broadcast(rt, cfg(sch))
		if err != nil {
			t.Fatalf("%s: %v", sch.Name(), err)
		}
		if res.Latency <= 0 {
			t.Fatalf("%s: latency %d", sch.Name(), res.Latency)
		}
	}
}

func TestGatherCompletes(t *testing.T) {
	rt := routed(t, 2)
	res, err := Gather(rt, cfg(treeworm.New()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= 0 {
		t.Fatalf("latency %d", res.Latency)
	}
	// 31 contributions, one message each.
	if res.Messages != 31 {
		t.Fatalf("messages %d, want 31", res.Messages)
	}
}

func TestGatherFasterThanFlat(t *testing.T) {
	// The combining tree must beat 31 direct unicasts serializing o_r at
	// the root (31 x 100 cycles of host receive alone).
	rt := routed(t, 3)
	res, err := Gather(rt, cfg(treeworm.New()))
	if err != nil {
		t.Fatal(err)
	}
	flatLowerBound := 31 * sim.DefaultParams().OHostRecv
	if res.Latency >= flatLowerBound {
		t.Fatalf("combining gather (%d) not faster than the flat-gather bound (%d)", res.Latency, flatLowerBound)
	}
}

func TestBarrierOrdering(t *testing.T) {
	// Barrier = gather + broadcast: it must cost more than either alone,
	// and the tree-worm release must beat the binomial release.
	rt := routed(t, 4)
	g, err := Gather(rt, cfg(treeworm.New()))
	if err != nil {
		t.Fatal(err)
	}
	bTree, err := Barrier(rt, cfg(treeworm.New()))
	if err != nil {
		t.Fatal(err)
	}
	bBin, err := Barrier(rt, cfg(binomial.New()))
	if err != nil {
		t.Fatal(err)
	}
	if bTree.Latency <= g.Latency {
		t.Fatalf("barrier (%d) not slower than gather alone (%d)", bTree.Latency, g.Latency)
	}
	if bTree.Latency >= bBin.Latency {
		t.Fatalf("tree-release barrier (%d) not faster than binomial-release (%d)", bTree.Latency, bBin.Latency)
	}
}

func TestAllReduceMatchesBarrierShape(t *testing.T) {
	rt := routed(t, 5)
	c := cfg(treeworm.New())
	c.Flits = 256
	res, err := AllReduce(rt, c)
	if err != nil {
		t.Fatal(err)
	}
	small := cfg(treeworm.New())
	small.Flits = 8
	res2, err := AllReduce(rt, small)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency <= res2.Latency {
		t.Fatal("payload size had no cost")
	}
}

func TestCombineTreeShape(t *testing.T) {
	rt := routed(t, 6)
	parent, children := combineTree(rt, 5)
	// Every node except the root has exactly one parent; the structure is
	// acyclic and rooted at 5.
	seen := 0
	for v := 0; v < rt.Topo.NumNodes; v++ {
		node := topology.NodeID(v)
		if node == 5 {
			if _, has := parent[node]; has {
				t.Fatal("root has a parent")
			}
			continue
		}
		p, has := parent[node]
		if !has {
			t.Fatalf("node %d orphaned", v)
		}
		// Walk to the root; must terminate.
		cur, steps := p, 0
		for cur != 5 {
			cur = parent[cur]
			steps++
			if steps > rt.Topo.NumNodes {
				t.Fatalf("cycle above node %d", v)
			}
		}
		seen++
	}
	if seen != rt.Topo.NumNodes-1 {
		t.Fatalf("tree covers %d nodes", seen)
	}
	total := 0
	for _, kids := range children {
		total += len(kids)
	}
	if total != rt.Topo.NumNodes-1 {
		t.Fatalf("children lists cover %d", total)
	}
}

func TestBadConfigRejected(t *testing.T) {
	rt := routed(t, 7)
	bad := cfg(treeworm.New())
	bad.Root = 99
	if _, err := Gather(rt, bad); err == nil {
		t.Fatal("out-of-range root accepted")
	}
	bad = cfg(treeworm.New())
	bad.Flits = 0
	if _, err := Gather(rt, bad); err == nil {
		t.Fatal("zero payload accepted")
	}
}

func TestDifferentRoots(t *testing.T) {
	rt := routed(t, 8)
	for _, root := range []topology.NodeID{0, 7, 31} {
		c := cfg(treeworm.New())
		c.Root = root
		if _, err := Barrier(rt, c); err != nil {
			t.Fatalf("root %d: %v", root, err)
		}
	}
}
