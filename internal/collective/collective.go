// Package collective builds the collective communication operations the
// paper motivates (§1: multicast "is used for implementing several of the
// other collective operations" — barrier synchronization, reduction,
// MPI-style broadcasts) on top of the multicast schemes and the simulator.
//
// The operations run on a fresh simulator instance and report completion
// latency, so experiments can ask the paper's question one level up: how
// much does the choice of multicast support change a full barrier or
// all-reduce?
//
// Gather-direction traffic uses a switch-clustered binomial combining
// tree of unicast messages: a node forwards its combined contribution to
// its parent once every child's message has arrived at its host (the
// per-message o_r at the parent is the combining cost, charged naturally
// by the host model).
package collective

import (
	"fmt"

	"mcastsim/internal/event"
	"mcastsim/internal/mcast"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// Config parameterizes one collective run.
type Config struct {
	// Scheme drives the multicast (broadcast-direction) phases.
	Scheme mcast.Scheme
	Params sim.Params
	// Root is the collective's root node.
	Root topology.NodeID
	// Flits is the payload size per message.
	Flits int
	// Seed feeds simulator arbitration.
	Seed uint64
}

// Result reports one collective operation.
type Result struct {
	// Latency is start-to-global-completion in cycles.
	Latency event.Time
	// Messages is the number of point-to-point/multicast messages used.
	Messages int64
}

// Broadcast multicasts from the root to every other node.
func Broadcast(rt *updown.Routing, cfg Config) (Result, error) {
	n, err := sim.New(rt, cfg.Params, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	done, err := broadcastOn(n, rt, cfg, 0)
	if err != nil {
		return Result{}, err
	}
	if err := n.Drain(0); err != nil {
		return Result{}, err
	}
	if err := n.CheckConservation(); err != nil {
		return Result{}, err
	}
	return Result{Latency: *done, Messages: n.Stats().MessagesSent}, nil
}

// broadcastOn issues the broadcast at time at and returns a pointer that
// will hold the completion time after the network drains.
func broadcastOn(n *sim.Network, rt *updown.Routing, cfg Config, at event.Time) (*event.Time, error) {
	dests := allExcept(rt.Topo.NumNodes, cfg.Root)
	plan, err := cfg.Scheme.Plan(rt, cfg.Params, cfg.Root, dests, cfg.Flits)
	if err != nil {
		return nil, err
	}
	done := new(event.Time)
	_, err = n.Send(plan, cfg.Flits, at, func(m *sim.Message) {
		*done = n.Now()
	})
	if err != nil {
		return nil, err
	}
	return done, nil
}

// Gather runs the combining tree toward the root: every node contributes
// one message; inner nodes combine and forward. Completion is the root's
// receipt of its last child's combined message.
func Gather(rt *updown.Routing, cfg Config) (Result, error) {
	n, err := sim.New(rt, cfg.Params, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	done, err := gatherOn(n, rt, cfg, nil)
	if err != nil {
		return Result{}, err
	}
	if err := n.Drain(0); err != nil {
		return Result{}, err
	}
	if err := n.CheckConservation(); err != nil {
		return Result{}, err
	}
	return Result{Latency: *done, Messages: n.Stats().MessagesSent}, nil
}

// Barrier is a combining gather followed by a release broadcast: the full
// synchronization the paper's §1 lists among multicast's clients. All
// nodes arrive at time 0.
func Barrier(rt *updown.Routing, cfg Config) (Result, error) {
	n, err := sim.New(rt, cfg.Params, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	release := new(event.Time)
	_, err = gatherOn(n, rt, cfg, func() {
		// The root saw every arrival: release.
		done, err := broadcastOn(n, rt, cfg, n.Now())
		if err != nil {
			panic(err) // plans were validated in gatherOn's twin path
		}
		release = done
	})
	if err != nil {
		return Result{}, err
	}
	if err := n.Drain(0); err != nil {
		return Result{}, err
	}
	if err := n.CheckConservation(); err != nil {
		return Result{}, err
	}
	return Result{Latency: *release, Messages: n.Stats().MessagesSent}, nil
}

// AllReduce is semantically reduce-then-broadcast: the combining gather
// carries data (cfg.Flits per contribution) and the result is broadcast
// back. Latency-wise it is Barrier with payload.
func AllReduce(rt *updown.Routing, cfg Config) (Result, error) {
	return Barrier(rt, cfg)
}

// gatherOn wires the combining tree on a live network. onRootDone
// (optional) fires when the root has combined everything. The returned
// pointer holds the gather completion time after draining.
func gatherOn(n *sim.Network, rt *updown.Routing, cfg Config, onRootDone func()) (*event.Time, error) {
	numNodes := rt.Topo.NumNodes
	if int(cfg.Root) < 0 || int(cfg.Root) >= numNodes {
		return nil, fmt.Errorf("collective: root %d out of range", cfg.Root)
	}
	if cfg.Flits <= 0 {
		return nil, fmt.Errorf("collective: flits %d", cfg.Flits)
	}
	parent, children := combineTree(rt, cfg.Root)
	pending := make(map[topology.NodeID]int, numNodes)
	done := new(event.Time)

	var contribute func(v topology.NodeID)
	contribute = func(v topology.NodeID) {
		if v == cfg.Root {
			*done = n.Now()
			if onRootDone != nil {
				onRootDone()
			}
			return
		}
		p := parent[v]
		plan := &sim.Plan{
			Source: v,
			Dests:  []topology.NodeID{p},
			HostSends: map[topology.NodeID][]sim.WormSpec{
				v: {{Kind: sim.WormUnicast, Dest: p}},
			},
		}
		_, err := n.Send(plan, cfg.Flits, n.Now(), func(*sim.Message) {
			// p has combined this child (o_r charged by the host model).
			pending[p]--
			if pending[p] == 0 {
				contribute(p)
			}
		})
		if err != nil {
			panic(err) // structurally impossible: validated plan shape
		}
	}

	for v := 0; v < numNodes; v++ {
		pending[topology.NodeID(v)] = len(children[topology.NodeID(v)])
	}
	// Leaves fire at t=0; inner nodes when their subtree completes.
	n.Schedule(0, func() {
		for v := 0; v < numNodes; v++ {
			node := topology.NodeID(v)
			if pending[node] == 0 && node != cfg.Root {
				contribute(node)
			}
		}
		if pending[cfg.Root] == 0 {
			// Degenerate single-node "collective".
			contribute(cfg.Root)
		}
	})
	return done, nil
}

// combineTree builds a switch-clustered binomial combining tree rooted at
// root, returning parent and children maps.
func combineTree(rt *updown.Routing, root topology.NodeID) (map[topology.NodeID]topology.NodeID, map[topology.NodeID][]topology.NodeID) {
	others := allExcept(rt.Topo.NumNodes, root)
	ordered := mcast.ClusterBySwitch(rt, root, others)
	parent := make(map[topology.NodeID]topology.NodeID)
	children := make(map[topology.NodeID][]topology.NodeID)
	var build func(list []topology.NodeID)
	build = func(list []topology.NodeID) {
		// list[0] is the subtree root; split binomially as in the
		// broadcast direction, reversed.
		for len(list) > 1 {
			half := (len(list) + 1) / 2
			far := list[half:]
			parent[far[0]] = list[0]
			children[list[0]] = append(children[list[0]], far[0])
			build(far)
			list = list[:half]
		}
	}
	build(append([]topology.NodeID{root}, ordered...))
	return parent, children
}

func allExcept(numNodes int, skip topology.NodeID) []topology.NodeID {
	out := make([]topology.NodeID, 0, numNodes-1)
	for v := 0; v < numNodes; v++ {
		if topology.NodeID(v) != skip {
			out = append(out, topology.NodeID(v))
		}
	}
	return out
}
