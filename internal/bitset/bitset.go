// Package bitset implements fixed-capacity bit strings.
//
// Bit strings are the paper's central encoding device: a tree-based
// multidestination worm carries an N-bit destination string in its header
// (bit i set means node i is a destination), and every switch holds one
// "reachability string" per down output port describing the nodes legally
// reachable through it. Routing a tree worm is the AND of header and
// reachability strings (paper §3.2.3), so this package is on the
// simulator's hot path and avoids allocation in the common operations.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a bit string over the universe [0, Len()). The zero value is an
// empty set of length 0; use New for a sized set.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty Set with capacity for n bits.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative length")
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromIndices returns a Set of length n with the given bits set.
func FromIndices(n int, idx []int) *Set {
	s := New(n)
	for _, i := range idx {
		s.Add(i)
	}
	return s
}

// Len returns the universe size (capacity in bits).
func (s *Set) Len() int { return s.n }

// check panics when i is outside the universe; all mutators call it so
// out-of-range bits can never silently appear in a header.
func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Add sets bit i.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove clears bit i.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bits are set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Clear removes all bits in place.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// sameLen panics unless the two sets share a universe; mixing headers from
// different-sized networks is always a bug.
func (s *Set) sameLen(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: universe mismatch %d vs %d", s.n, o.n))
	}
}

// UnionWith sets s = s | o in place.
func (s *Set) UnionWith(o *Set) {
	s.sameLen(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// IntersectWith sets s = s & o in place.
func (s *Set) IntersectWith(o *Set) {
	s.sameLen(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// DifferenceWith sets s = s &^ o in place.
func (s *Set) DifferenceWith(o *Set) {
	s.sameLen(o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Intersects reports whether s and o share any set bit. This is the
// header-vs-reachability test a tree-worm switch performs per down port,
// so it allocates nothing.
func (s *Set) Intersects(o *Set) bool {
	s.sameLen(o)
	for i, w := range o.words {
		if s.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// And returns a new set s & o.
func And(s, o *Set) *Set {
	c := s.Clone()
	c.IntersectWith(o)
	return c
}

// AndCount returns Count(s & o) without materializing the intersection.
// This is the greedy down-partition's inner loop ("how many remaining
// destinations does this port's reachability string cover?"), so it must
// not allocate.
func AndCount(s, o *Set) int {
	s.sameLen(o)
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & o.words[i])
	}
	return c
}

// AndInto sets dst = s & o in place, allocating nothing. dst may alias s
// or o.
func AndInto(dst, s, o *Set) {
	dst.sameLen(s)
	s.sameLen(o)
	for i, w := range s.words {
		dst.words[i] = w & o.words[i]
	}
}

// AndNot returns a new set s &^ o (the elements of s not in o) — the
// membership delta "who left" / "who is not yet covered" computation of
// the dynamic-group layer.
func AndNot(s, o *Set) *Set {
	c := s.Clone()
	c.DifferenceWith(o)
	return c
}

// DiffInto sets dst = s &^ o in place, allocating nothing. dst may alias
// s or o. It is the pooled-set counterpart of AndNot, used by membership
// delta application on the churn path.
func DiffInto(dst, s, o *Set) {
	dst.sameLen(s)
	s.sameLen(o)
	for i, w := range s.words {
		dst.words[i] = w &^ o.words[i]
	}
}

// CopyFrom sets s to an exact copy of o in place (same universe required).
// It is the recycling counterpart of Clone for pooled sets.
func (s *Set) CopyFrom(o *Set) {
	s.sameLen(o)
	copy(s.words, o.words)
}

// Hash returns a 64-bit FNV-1a digest of the set's contents, mixing in the
// universe size. Equal sets hash equal; the route cache uses this as a
// fingerprint key and re-checks Equal on hit, so collisions cost a cache
// miss, never a wrong route.
func (s *Set) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h ^= uint64(s.n)
	h *= prime64
	for _, w := range s.words {
		h ^= w
		h *= prime64
	}
	return h
}

// SubsetOf reports whether every bit of s is also in o.
func (s *Set) SubsetOf(o *Set) bool {
	s.sameLen(o)
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o contain exactly the same bits.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Indices returns the set bits in ascending order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn for every set bit in ascending order; fn returning false
// stops the iteration early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// ForEachRun calls fn for every maximal run [lo, hi] of consecutive set
// bits, in ascending order; fn returning false stops the iteration early.
// Runs are the unit of the interval-coded destination header (package
// destset), and this walks them word-at-a-time without allocating, so the
// simulator can size and fingerprint compressed headers on the hot path.
func (s *Set) ForEachRun(fn func(lo, hi int) bool) {
	runStart, runEnd := -1, -1
	for wi, w := range s.words {
		base := wi * wordBits
		for w != 0 {
			start := bits.TrailingZeros64(w)
			// Length of the 1-run beginning at start. w>>start zero-fills
			// from the top, so ^(w>>start) is 0 only when start == 0 and w
			// is all ones — TrailingZeros64 then returns 64, still correct.
			length := bits.TrailingZeros64(^(w >> uint(start)))
			lo, hi := base+start, base+start+length-1
			if runStart >= 0 && lo == runEnd+1 {
				runEnd = hi // continues a run across the word boundary
			} else {
				if runStart >= 0 && !fn(runStart, runEnd) {
					return
				}
				runStart, runEnd = lo, hi
			}
			if start+length >= wordBits {
				w = 0
			} else {
				w &^= ((1 << uint(length)) - 1) << uint(start)
			}
		}
	}
	if runStart >= 0 {
		fn(runStart, runEnd)
	}
}

// rangeMasks yields the word index range and edge masks covering [lo, hi].
func rangeWords(lo, hi int) (wLo, wHi int, mLo, mHi uint64) {
	wLo, wHi = lo/wordBits, hi/wordBits
	mLo = ^uint64(0) << (uint(lo) % wordBits)
	mHi = ^uint64(0) >> (wordBits - 1 - uint(hi)%wordBits)
	return
}

// AnyInRange reports whether any bit in [lo, hi] is set, allocating
// nothing. It is the interval backend's Intersects primitive.
func (s *Set) AnyInRange(lo, hi int) bool {
	if lo > hi {
		return false
	}
	s.check(lo)
	s.check(hi)
	wLo, wHi, mLo, mHi := rangeWords(lo, hi)
	if wLo == wHi {
		return s.words[wLo]&mLo&mHi != 0
	}
	if s.words[wLo]&mLo != 0 || s.words[wHi]&mHi != 0 {
		return true
	}
	for wi := wLo + 1; wi < wHi; wi++ {
		if s.words[wi] != 0 {
			return true
		}
	}
	return false
}

// AddRange sets every bit in [lo, hi], allocating nothing. It is how a
// run-coded destination set is materialized back into a flat header.
func (s *Set) AddRange(lo, hi int) {
	if lo > hi {
		return
	}
	s.check(lo)
	s.check(hi)
	wLo, wHi, mLo, mHi := rangeWords(lo, hi)
	if wLo == wHi {
		s.words[wLo] |= mLo & mHi
		return
	}
	s.words[wLo] |= mLo
	s.words[wHi] |= mHi
	for wi := wLo + 1; wi < wHi; wi++ {
		s.words[wi] = ^uint64(0)
	}
}

// AllInRange reports whether every bit in [lo, hi] is set, allocating
// nothing. It is the interval backend's SubsetOf primitive: a run-coded
// set is a subset of s exactly when each of its runs passes this test,
// which costs O(run span / 64) words instead of a full-universe scan.
func (s *Set) AllInRange(lo, hi int) bool {
	if lo > hi {
		return true
	}
	s.check(lo)
	s.check(hi)
	wLo, wHi, mLo, mHi := rangeWords(lo, hi)
	if wLo == wHi {
		m := mLo & mHi
		return s.words[wLo]&m == m
	}
	if s.words[wLo]&mLo != mLo || s.words[wHi]&mHi != mHi {
		return false
	}
	for wi := wLo + 1; wi < wHi; wi++ {
		if s.words[wi] != ^uint64(0) {
			return false
		}
	}
	return true
}

// ForEachRunInRange calls fn for every maximal run of consecutive set
// bits within the window [lo, hi] (runs are clipped to the window), in
// ascending order; fn returning false stops early. It is the interval
// backend's AndInto primitive: intersecting a run-coded set with a bit
// string walks each run's window instead of the whole universe.
func (s *Set) ForEachRunInRange(lo, hi int, fn func(lo, hi int) bool) {
	if lo > hi {
		return
	}
	s.check(lo)
	s.check(hi)
	wLo, wHi, mLo, mHi := rangeWords(lo, hi)
	runStart, runEnd := -1, -1
	for wi := wLo; wi <= wHi; wi++ {
		w := s.words[wi]
		if wi == wLo {
			w &= mLo
		}
		if wi == wHi {
			w &= mHi
		}
		base := wi * wordBits
		for w != 0 {
			start := bits.TrailingZeros64(w)
			length := bits.TrailingZeros64(^(w >> uint(start)))
			rLo, rHi := base+start, base+start+length-1
			if runStart >= 0 && rLo == runEnd+1 {
				runEnd = rHi
			} else {
				if runStart >= 0 && !fn(runStart, runEnd) {
					return
				}
				runStart, runEnd = rLo, rHi
			}
			if start+length >= wordBits {
				w = 0
			} else {
				w &^= ((1 << uint(length)) - 1) << uint(start)
			}
		}
	}
	if runStart >= 0 {
		fn(runStart, runEnd)
	}
}

// RunCount returns the number of maximal runs of consecutive set bits,
// without iterating them: a run starts at every set bit whose predecessor
// is clear, so per word it popcounts w &^ (w<<1) with the carry bit from
// the previous word. The header encoder uses this to size run-coded
// output in a single pass.
func (s *Set) RunCount() int {
	c := 0
	carry := uint64(0) // bit 0 set iff the previous word ended in a 1
	for _, w := range s.words {
		c += bits.OnesCount64(w &^ (w<<1 | carry))
		carry = w >> (wordBits - 1)
	}
	return c
}

// CountRange returns the number of set bits in [lo, hi], allocating
// nothing. It is the interval backend's AndCount primitive.
func (s *Set) CountRange(lo, hi int) int {
	if lo > hi {
		return 0
	}
	s.check(lo)
	s.check(hi)
	wLo, wHi, mLo, mHi := rangeWords(lo, hi)
	if wLo == wHi {
		return bits.OnesCount64(s.words[wLo] & mLo & mHi)
	}
	c := bits.OnesCount64(s.words[wLo]&mLo) + bits.OnesCount64(s.words[wHi]&mHi)
	for wi := wLo + 1; wi < wHi; wi++ {
		c += bits.OnesCount64(s.words[wi])
	}
	return c
}

// String renders the set as the paper draws headers: a bit string with bit 0
// leftmost, e.g. "01001000" (length capped with an ellipsis for big sets).
func (s *Set) String() string {
	const maxRender = 128
	var b strings.Builder
	n := s.n
	trunc := false
	if n > maxRender {
		n, trunc = maxRender, true
	}
	for i := 0; i < n; i++ {
		if s.Contains(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	if trunc {
		b.WriteString("…")
	}
	return b.String()
}

// HeaderBytes returns the number of bytes (flit-widths, since a flit is one
// byte) a bit-string header of this universe occupies on the wire. Used by
// the architectural-cost comparison (paper §3.3).
func (s *Set) HeaderBytes() int { return (s.n + 7) / 8 }
