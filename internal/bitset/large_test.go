package bitset

import (
	"testing"
)

// The run-iteration primitives became the sparse hot path in PR 9: at
// the XL tier every destination-set operation is O(runs), and the runs
// are produced by ForEachRun/ForEachRunInRange over >=1M-bit universes.
// These tests drive the word-scan machinery with adversarial patterns —
// single-bit runs, full-universe runs, alternating words, runs straddling
// word boundaries — at that scale, cross-check it against a naive
// per-bit reference, and pin the zero-allocation contract the per-branch
// planning path depends on.

// largeN is deliberately not a multiple of 64 so every pattern also
// exercises the partial final word.
const largeN = 1<<20 + 37

// largePatterns builds the adversarial pattern suite over an n-bit
// universe.
func largePatterns(n int) map[string]*Set {
	pat := map[string]*Set{}

	empty := New(n)
	pat["empty"] = empty

	full := New(n)
	full.AddRange(0, n-1)
	pat["full"] = full

	// Alternating bits: every run is a single bit and every word holds 32
	// of them — the worst case for run iteration.
	alt := New(n)
	for i := 0; i < n; i += 2 {
		alt.Add(i)
	}
	pat["alternating"] = alt

	// Sparse single bits at a stride coprime to 64, so run starts drift
	// through every bit position of a word.
	single := New(n)
	for i := 0; i < n; i += 97 {
		single.Add(i)
	}
	pat["single-bits"] = single

	// Rack-like long runs (the scale sweep's destination shape): 1024-bit
	// runs every 8192 bits.
	racks := New(n)
	for base := 0; base+1024 <= n; base += 8192 {
		racks.AddRange(base, base+1023)
	}
	pat["long-runs"] = racks

	// Runs engineered to straddle word boundaries: [63,64], [127,192],
	// plus single bits at word starts/ends and a run into the final
	// partial word.
	edges := New(n)
	edges.AddRange(63, 64)
	edges.AddRange(127, 192)
	edges.Add(256)
	edges.Add(319)
	edges.AddRange(n-40, n-1)
	pat["word-edges"] = edges

	return pat
}

// refRuns computes the maximal runs of s by scanning every bit.
func refRuns(s *Set) [][2]int {
	var out [][2]int
	inRun := false
	lo := 0
	for i := 0; i < s.Len(); i++ {
		if s.Contains(i) {
			if !inRun {
				inRun, lo = true, i
			}
		} else if inRun {
			out = append(out, [2]int{lo, i - 1})
			inRun = false
		}
	}
	if inRun {
		out = append(out, [2]int{lo, s.Len() - 1})
	}
	return out
}

func collectRuns(s *Set) [][2]int {
	var out [][2]int
	s.ForEachRun(func(lo, hi int) bool {
		out = append(out, [2]int{lo, hi})
		return true
	})
	return out
}

func runsEqual(a, b [][2]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestForEachRunMillionBit(t *testing.T) {
	for name, s := range largePatterns(largeN) {
		ref := refRuns(s)
		got := collectRuns(s)
		if !runsEqual(got, ref) {
			t.Errorf("%s: ForEachRun produced %d runs, reference %d (first diff near %v vs %v)",
				name, len(got), len(ref), head(got), head(ref))
		}
		if rc := s.RunCount(); rc != len(ref) {
			t.Errorf("%s: RunCount %d, reference %d", name, rc, len(ref))
		}
		// Early exit: stopping after the first run visits exactly one.
		if len(ref) > 1 {
			n := 0
			s.ForEachRun(func(lo, hi int) bool { n++; return false })
			if n != 1 {
				t.Errorf("%s: early-exit ForEachRun visited %d runs", name, n)
			}
		}
	}
}

func head(r [][2]int) [][2]int {
	if len(r) > 3 {
		return r[:3]
	}
	return r
}

// TestForEachRunInRangeMillionBit clips every pattern against windows
// chosen to straddle word boundaries, split runs, and cover degenerate
// single-bit ranges, comparing against the clipped per-bit reference.
func TestForEachRunInRangeMillionBit(t *testing.T) {
	windows := [][2]int{
		{0, largeN - 1},           // full universe
		{63, 64},                  // word boundary pair
		{64, 127},                 // exactly one word
		{100, 100},                // single bit
		{1, largeN - 2},           // clips both ends
		{8190, 8195},              // splits a long-runs gap edge
		{largeN - 41, largeN - 1}, // final partial word
	}
	for name, s := range largePatterns(largeN) {
		for _, w := range windows {
			var got [][2]int
			s.ForEachRunInRange(w[0], w[1], func(lo, hi int) bool {
				got = append(got, [2]int{lo, hi})
				return true
			})
			var ref [][2]int
			inRun, lo := false, 0
			for i := w[0]; i <= w[1]; i++ {
				if s.Contains(i) {
					if !inRun {
						inRun, lo = true, i
					}
				} else if inRun {
					ref = append(ref, [2]int{lo, i - 1})
					inRun = false
				}
			}
			if inRun {
				ref = append(ref, [2]int{lo, w[1]})
			}
			if !runsEqual(got, ref) {
				t.Errorf("%s window %v: got %v..., want %v...", name, w, head(got), head(ref))
			}
		}
	}
}

// TestRangePredicatesMillionBit pins AddRange/AllInRange/AnyInRange
// against per-bit equivalents at scale (the hostLo/hostHi local-delivery
// gate is built on exactly these).
func TestRangePredicatesMillionBit(t *testing.T) {
	for name, s := range largePatterns(largeN) {
		for _, w := range [][2]int{{0, largeN - 1}, {63, 64}, {500, 500}, {8191, 9300}, {largeN - 40, largeN - 1}} {
			wantAll, wantAny := true, false
			for i := w[0]; i <= w[1]; i++ {
				if s.Contains(i) {
					wantAny = true
				} else {
					wantAll = false
				}
			}
			if got := s.AllInRange(w[0], w[1]); got != wantAll {
				t.Errorf("%s: AllInRange%v = %v, want %v", name, w, got, wantAll)
			}
			if got := s.AnyInRange(w[0], w[1]); got != wantAny {
				t.Errorf("%s: AnyInRange%v = %v, want %v", name, w, got, wantAny)
			}
		}
	}
	// AddRange == per-bit Add, on a boundary-hostile range.
	a, b := New(largeN), New(largeN)
	a.AddRange(61, 200_131)
	for i := 61; i <= 200_131; i++ {
		b.Add(i)
	}
	if !a.Equal(b) || a.Count() != 200_131-61+1 {
		t.Fatal("AddRange disagrees with per-bit Add")
	}
}

// TestRunIterationZeroAlloc pins the allocation-free contract of the
// iteration and range primitives: the sparse planning path calls them
// per branch, so a single allocation here multiplies by the tree size.
func TestRunIterationZeroAlloc(t *testing.T) {
	pats := largePatterns(largeN)
	sink := 0
	for name, s := range pats {
		s := s
		for probe, f := range map[string]func(){
			"ForEachRun": func() {
				s.ForEachRun(func(lo, hi int) bool { sink += hi - lo; return true })
			},
			"ForEachRunInRange": func() {
				s.ForEachRunInRange(1, largeN-2, func(lo, hi int) bool { sink += hi - lo; return true })
			},
			"RunCount":   func() { sink += s.RunCount() },
			"AnyInRange": func() { sink += boolInt(s.AnyInRange(63, 1<<19)) },
			"AllInRange": func() { sink += boolInt(s.AllInRange(63, 1<<19)) },
			"CountRange": func() { sink += s.CountRange(63, 1<<19) },
		} {
			if allocs := testing.AllocsPerRun(2, f); allocs != 0 {
				t.Errorf("%s on %s: %v allocs/op, want 0", probe, name, allocs)
			}
		}
	}
	if sink == 1<<62 {
		t.Log(sink) // keep the measured work observable
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
