package bitset

import (
	"testing"
	"testing/quick"

	"mcastsim/internal/rng"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if !s.Empty() || s.Count() != 0 || s.Len() != 100 {
		t.Fatalf("New(100) not empty: count=%d len=%d", s.Count(), s.Len())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130) // crosses a word boundary
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(i) {
			t.Fatalf("bit %d set before Add", i)
		}
		s.Add(i)
		if !s.Contains(i) {
			t.Fatalf("bit %d not set after Add", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d, want 8", s.Count())
	}
	s.Remove(64)
	if s.Contains(64) || s.Count() != 7 {
		t.Fatal("Remove failed")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	for name, fn := range map[string]func(*Set){
		"Add-high":  func(s *Set) { s.Add(10) },
		"Add-neg":   func(s *Set) { s.Add(-1) },
		"Contains":  func(s *Set) { s.Contains(10) },
		"Remove":    func(s *Set) { s.Remove(10) },
		"NegLength": func(s *Set) { New(-1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn(New(10))
		})
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mixed universes did not panic")
		}
	}()
	New(10).UnionWith(New(11))
}

func TestSetAlgebra(t *testing.T) {
	a := FromIndices(64, []int{1, 5, 9})
	b := FromIndices(64, []int{5, 9, 20})

	u := a.Clone()
	u.UnionWith(b)
	if got := u.Indices(); len(got) != 4 || got[0] != 1 || got[3] != 20 {
		t.Fatalf("union = %v", got)
	}

	i := a.Clone()
	i.IntersectWith(b)
	if got := i.Indices(); len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Fatalf("intersection = %v", got)
	}

	d := a.Clone()
	d.DifferenceWith(b)
	if got := d.Indices(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("difference = %v", got)
	}
}

func TestIntersectsMatchesAnd(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(200)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if r.Intn(4) == 0 {
				a.Add(i)
			}
			if r.Intn(4) == 0 {
				b.Add(i)
			}
		}
		if a.Intersects(b) != !And(a, b).Empty() {
			t.Fatalf("Intersects disagrees with And on n=%d", n)
		}
	}
}

func TestSubsetOf(t *testing.T) {
	a := FromIndices(70, []int{3, 66})
	b := FromIndices(70, []int{3, 10, 66})
	if !a.SubsetOf(b) {
		t.Fatal("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Fatal("b should not be subset of a")
	}
	if !a.SubsetOf(a) {
		t.Fatal("a should be subset of itself")
	}
	empty := New(70)
	if !empty.SubsetOf(a) {
		t.Fatal("empty should be subset of anything")
	}
}

func TestEqual(t *testing.T) {
	a := FromIndices(32, []int{0, 31})
	b := FromIndices(32, []int{0, 31})
	c := FromIndices(32, []int{0})
	d := FromIndices(33, []int{0, 31})
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Fatal("Equal misbehaves")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromIndices(10, []int{2})
	b := a.Clone()
	b.Add(3)
	if a.Contains(3) {
		t.Fatal("Clone shares storage")
	}
}

func TestClear(t *testing.T) {
	a := FromIndices(100, []int{1, 99})
	a.Clear()
	if !a.Empty() {
		t.Fatal("Clear left bits")
	}
}

func TestIndicesRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 300
		s := New(n)
		want := map[int]bool{}
		for _, v := range raw {
			i := int(v) % n
			s.Add(i)
			want[i] = true
		}
		idx := s.Indices()
		if len(idx) != len(want) {
			return false
		}
		prev := -1
		for _, i := range idx {
			if i <= prev || !want[i] {
				return false
			}
			prev = i
		}
		return s.Count() == len(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromIndices(100, []int{1, 2, 3, 4})
	var visited []int
	s.ForEach(func(i int) bool {
		visited = append(visited, i)
		return len(visited) < 2
	})
	if len(visited) != 2 || visited[0] != 1 || visited[1] != 2 {
		t.Fatalf("ForEach early stop visited %v", visited)
	}
}

func TestString(t *testing.T) {
	s := FromIndices(8, []int{1, 4})
	if got := s.String(); got != "01001000" {
		t.Fatalf("String = %q, want 01001000", got)
	}
}

func TestHeaderBytes(t *testing.T) {
	cases := map[int]int{1: 1, 8: 1, 9: 2, 32: 4, 33: 5, 128: 16}
	for n, want := range cases {
		if got := New(n).HeaderBytes(); got != want {
			t.Fatalf("HeaderBytes(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestDeMorgan(t *testing.T) {
	// (A ∪ B) \ (A ∩ B) == symmetric difference, built two ways.
	f := func(rawA, rawB []uint8) bool {
		const n = 128
		a, b := New(n), New(n)
		for _, v := range rawA {
			a.Add(int(v) % n)
		}
		for _, v := range rawB {
			b.Add(int(v) % n)
		}
		lhs := a.Clone()
		lhs.UnionWith(b)
		lhs.DifferenceWith(And(a, b))

		aOnly := a.Clone()
		aOnly.DifferenceWith(b)
		bOnly := b.Clone()
		bOnly.DifferenceWith(a)
		rhs := aOnly
		rhs.UnionWith(bOnly)
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// randomPair builds two random same-universe sets for the AndCount /
// AndInto property tests.
func randomPair(r *rng.Source) (*Set, *Set) {
	n := 1 + r.Intn(300)
	a, b := New(n), New(n)
	for i := 0; i < n; i++ {
		if r.Intn(3) == 0 {
			a.Add(i)
		}
		if r.Intn(3) == 0 {
			b.Add(i)
		}
	}
	return a, b
}

func TestAndCountMatchesAnd(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 300; trial++ {
		a, b := randomPair(r)
		if got, want := AndCount(a, b), And(a, b).Count(); got != want {
			t.Fatalf("AndCount = %d, And().Count() = %d (n=%d)", got, want, a.Len())
		}
	}
}

func TestAndIntoMatchesAnd(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 300; trial++ {
		a, b := randomPair(r)
		dst := New(a.Len())
		AndInto(dst, a, b)
		if want := And(a, b); !dst.Equal(want) {
			t.Fatalf("AndInto = %v, want %v", dst, want)
		}
	}
}

func TestAndIntoAliasing(t *testing.T) {
	a := FromIndices(130, []int{0, 5, 64, 129})
	b := FromIndices(130, []int{5, 64, 100})
	want := And(a, b)
	// dst aliases the first operand.
	x := a.Clone()
	AndInto(x, x, b)
	if !x.Equal(want) {
		t.Fatalf("AndInto(x, x, b) = %v, want %v", x, want)
	}
	// dst aliases the second operand.
	y := b.Clone()
	AndInto(y, a, y)
	if !y.Equal(want) {
		t.Fatalf("AndInto(y, a, y) = %v, want %v", y, want)
	}
}

func TestAndPrimitivesMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"AndCount":    func() { AndCount(New(10), New(11)) },
		"AndInto-src": func() { AndInto(New(10), New(10), New(11)) },
		"AndInto-dst": func() { AndInto(New(11), New(10), New(10)) },
		"CopyFrom":    func() { New(10).CopyFrom(New(11)) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with mismatched universes did not panic", name)
				}
			}()
			fn()
		})
	}
}

func TestAndPrimitivesZeroAlloc(t *testing.T) {
	a := FromIndices(512, []int{1, 100, 511})
	b := FromIndices(512, []int{100, 200})
	dst := New(512)
	if avg := testing.AllocsPerRun(100, func() {
		_ = AndCount(a, b)
		AndInto(dst, a, b)
	}); avg != 0 {
		t.Fatalf("AndCount/AndInto allocate %v per run, want 0", avg)
	}
}

func TestCopyFrom(t *testing.T) {
	a := FromIndices(100, []int{1, 64, 99})
	s := FromIndices(100, []int{2, 3})
	s.CopyFrom(a)
	if !s.Equal(a) {
		t.Fatalf("CopyFrom = %v, want %v", s, a)
	}
	s.Add(50)
	if a.Contains(50) {
		t.Fatal("CopyFrom shares storage")
	}
}

func TestHash(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 200; trial++ {
		a, _ := randomPair(r)
		if a.Hash() != a.Clone().Hash() {
			t.Fatal("equal sets hash differently")
		}
	}
	// Same bits, different universe size must not collide by construction.
	if FromIndices(64, []int{3}).Hash() == FromIndices(65, []int{3}).Hash() {
		t.Fatal("Hash ignores the universe size")
	}
	// A one-bit flip changes the digest (FNV is not cryptographic, but the
	// route cache relies on cheap flips not colliding in practice).
	a := FromIndices(128, []int{0, 64})
	b := FromIndices(128, []int{0, 65})
	if a.Hash() == b.Hash() {
		t.Fatal("adjacent one-bit sets collide")
	}
}

func BenchmarkIntersects(b *testing.B) {
	x := FromIndices(1024, []int{1000})
	y := FromIndices(1024, []int{3})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Intersects(y)
	}
}

func TestAndNotMatchesDifferenceWith(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 300; trial++ {
		a, b := randomPair(r)
		want := a.Clone()
		want.DifferenceWith(b)
		if got := AndNot(a, b); !got.Equal(want) {
			t.Fatalf("AndNot = %v, want %v (n=%d)", got, want, a.Len())
		}
	}
}

func TestDiffIntoMatchesAndNot(t *testing.T) {
	r := rng.New(6)
	for trial := 0; trial < 300; trial++ {
		a, b := randomPair(r)
		dst := New(a.Len())
		DiffInto(dst, a, b)
		if want := AndNot(a, b); !dst.Equal(want) {
			t.Fatalf("DiffInto = %v, want %v", dst, want)
		}
	}
}

func TestDiffPrimitivesWordBoundaries(t *testing.T) {
	// Universes straddling word boundaries: exactly one word, one word
	// plus one bit, and two full words, with members on both sides of
	// the 64-bit seam.
	for _, n := range []int{64, 65, 128} {
		a := New(n)
		b := New(n)
		for _, v := range []int{0, 63, n - 1} {
			a.Add(v)
		}
		b.Add(0)
		got := AndNot(a, b)
		if got.Contains(0) || !got.Contains(63) || !got.Contains(n-1) {
			t.Fatalf("n=%d: AndNot = %v", n, got)
		}
		dst := New(n)
		DiffInto(dst, a, b)
		if !dst.Equal(got) {
			t.Fatalf("n=%d: DiffInto = %v, want %v", n, dst, got)
		}
	}
}

func TestDiffPrimitivesEmptySets(t *testing.T) {
	a := FromIndices(100, []int{1, 64, 99})
	empty := New(100)
	if got := AndNot(a, empty); !got.Equal(a) {
		t.Fatalf("AndNot(a, empty) = %v, want %v", got, a)
	}
	if got := AndNot(empty, a); !got.Empty() {
		t.Fatalf("AndNot(empty, a) = %v, want empty", got)
	}
	if got := AndNot(empty, empty); !got.Empty() {
		t.Fatalf("AndNot(empty, empty) = %v, want empty", got)
	}
	dst := FromIndices(100, []int{7}) // stale contents must be overwritten
	DiffInto(dst, empty, a)
	if !dst.Empty() {
		t.Fatalf("DiffInto(dst, empty, a) = %v, want empty", dst)
	}
}

func TestDiffIntoAliasing(t *testing.T) {
	a := FromIndices(130, []int{0, 5, 64, 129})
	b := FromIndices(130, []int{5, 64, 100})
	want := AndNot(a, b)
	// dst aliases the first operand.
	x := a.Clone()
	DiffInto(x, x, b)
	if !x.Equal(want) {
		t.Fatalf("DiffInto(x, x, b) = %v, want %v", x, want)
	}
	// dst aliases the second operand.
	y := b.Clone()
	DiffInto(y, a, y)
	if !y.Equal(want) {
		t.Fatalf("DiffInto(y, a, y) = %v, want %v", y, want)
	}
}

func TestDiffPrimitivesMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"AndNot":       func() { AndNot(New(10), New(11)) },
		"DiffInto-src": func() { DiffInto(New(10), New(10), New(11)) },
		"DiffInto-dst": func() { DiffInto(New(11), New(10), New(10)) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with mismatched universes did not panic", name)
				}
			}()
			fn()
		})
	}
}

func TestDiffIntoZeroAlloc(t *testing.T) {
	a := FromIndices(512, []int{1, 100, 511})
	b := FromIndices(512, []int{100, 200})
	dst := New(512)
	if avg := testing.AllocsPerRun(100, func() {
		DiffInto(dst, a, b)
	}); avg != 0 {
		t.Fatalf("DiffInto allocates %v per run, want 0", avg)
	}
}
