package snap

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

var testMagic = [4]byte{'T', 'S', 'T', '1'}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testMagic, 3)
	w.Section(1, func(w *Writer) {
		w.U8(7)
		w.U16(65500)
		w.U64(1<<63 + 5)
		w.Uvarint(300)
		w.Varint(-12345)
		w.Int(42)
		w.Bool(true)
		w.Bool(false)
		w.F64(math.NaN())
		w.String("hello")
		w.Ints([]int{3, -1, 0})
		w.Bitmap([]bool{true, false, true, true, false, false, false, true, true})
		w.Bitmap(nil)
		w.Bitmap([]bool{})
	})
	w.Section(9, func(w *Writer) { w.Uvarint(0) })
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()), testMagic, 3)
	if err != nil {
		t.Fatal(err)
	}
	r.Section(1, func(r *Reader) {
		if got := r.U8(); got != 7 {
			t.Errorf("u8 = %d", got)
		}
		if got := r.U16(); got != 65500 {
			t.Errorf("u16 = %d", got)
		}
		if got := r.U64(); got != 1<<63+5 {
			t.Errorf("u64 = %d", got)
		}
		if got := r.Uvarint(); got != 300 {
			t.Errorf("uvarint = %d", got)
		}
		if got := r.Varint(); got != -12345 {
			t.Errorf("varint = %d", got)
		}
		if got := r.Int(); got != 42 {
			t.Errorf("int = %d", got)
		}
		if !r.Bool() || r.Bool() {
			t.Error("bool round-trip failed")
		}
		if got := r.F64(); !math.IsNaN(got) {
			t.Errorf("f64 = %v, want NaN", got)
		}
		if got := r.String(); got != "hello" {
			t.Errorf("string = %q", got)
		}
		ints := r.Ints()
		if len(ints) != 3 || ints[0] != 3 || ints[1] != -1 || ints[2] != 0 {
			t.Errorf("ints = %v", ints)
		}
		bm := r.Bitmap()
		want := []bool{true, false, true, true, false, false, false, true, true}
		if len(bm) != len(want) {
			t.Fatalf("bitmap len = %d", len(bm))
		}
		for i := range bm {
			if bm[i] != want[i] {
				t.Errorf("bitmap[%d] = %v", i, bm[i])
			}
		}
		if r.Bitmap() != nil {
			t.Error("nil bitmap did not round-trip as nil")
		}
		if got := r.Bitmap(); got == nil || len(got) != 0 {
			t.Errorf("empty bitmap = %v", got)
		}
	})
	r.Section(9, func(r *Reader) {
		if got := r.Uvarint(); got != 0 {
			t.Errorf("uvarint = %d", got)
		}
	})
	if err := r.ExpectEOF(); err != nil {
		t.Fatal(err)
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testMagic, 1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var ve *VersionError
	if _, err := NewReader(bytes.NewReader(buf.Bytes()), [4]byte{'N', 'O', 'P', 'E'}, 1); !errors.As(err, &ve) {
		t.Errorf("bad magic: got %v, want *VersionError", err)
	}
	if _, err := NewReader(bytes.NewReader(buf.Bytes()), testMagic, 2); !errors.As(err, &ve) {
		t.Errorf("bad version: got %v, want *VersionError", err)
	}
	var ce *CorruptError
	if _, err := NewReader(bytes.NewReader(buf.Bytes()[:3]), testMagic, 1); !errors.As(err, &ce) {
		t.Errorf("short header: got %v, want *CorruptError", err)
	}
}

func TestTruncationAndDrift(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testMagic, 1)
	w.Section(4, func(w *Writer) {
		w.String("payload")
		w.U64(99)
	})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Truncation anywhere in the body must yield a CorruptError.
	for cut := 6; cut < len(full); cut++ {
		r, err := NewReader(bytes.NewReader(full[:cut]), testMagic, 1)
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("cut %d: header error %v", cut, err)
			}
			continue
		}
		r.Section(4, func(r *Reader) { _ = r.String(); r.U64() })
		if err := r.ExpectEOF(); err == nil {
			t.Errorf("cut %d: truncated stream decoded cleanly", cut)
		}
	}

	// Under-consuming a section is decoder drift and must fail too.
	r, err := NewReader(bytes.NewReader(full), testMagic, 1)
	if err != nil {
		t.Fatal(err)
	}
	r.Section(4, func(r *Reader) { _ = r.String() }) // leaves the U64 unread
	var ce *CorruptError
	if err := r.Err(); !errors.As(err, &ce) {
		t.Errorf("drift: got %v, want *CorruptError", err)
	}

	// Wrong section tag.
	r2, err := NewReader(bytes.NewReader(full), testMagic, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2.Section(5, func(r *Reader) {})
	if err := r2.Err(); !errors.As(err, &ce) {
		t.Errorf("wrong tag: got %v, want *CorruptError", err)
	}
}
