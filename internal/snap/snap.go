// Package snap is the compact self-describing binary codec behind the
// simulator's snapshot files (sim.Network.Checkpoint / Restore and the
// experiment journal headers).
//
// A snapshot stream is:
//
//	magic   [4]byte  — format identifier, e.g. "MCS1"
//	version uint16   — format version; readers reject unknown versions
//	body    sections — tagged sections, each length-prefixed
//	crc     uint32   — IEEE CRC-32 of everything before it
//
// Every section opens with a one-byte tag and a uvarint byte length, so
// a reader can verify it consumed exactly the bytes the writer emitted
// (catching encoder/decoder drift loudly) and a future version can skip
// sections it does not understand. Scalars use unsigned varints
// (zig-zag for signed), which keeps mostly-small counters to one or two
// bytes; fixed 64-bit words (RNG state, float bits) use little-endian.
//
// Decoding never trusts the stream: the trailing checksum is verified
// before any field is decoded (framing catches truncation and drift,
// but only the CRC catches a flipped bit inside value bytes), lengths
// are bounds-checked against the remaining input and declared limits,
// and every failure surfaces
// as a *CorruptError (wrapping io.ErrUnexpectedEOF for truncation) so
// callers can distinguish "bad file" from I/O errors and guarantee
// no-partial-restore semantics by staging decodes before applying them.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// CorruptError reports a malformed or truncated snapshot stream. It
// wraps the underlying cause (often io.ErrUnexpectedEOF) and names the
// decode context that failed.
type CorruptError struct {
	Context string // what was being decoded
	Err     error  // underlying cause, possibly nil
}

func (e *CorruptError) Error() string {
	if e.Err == nil {
		return "snap: corrupt snapshot: " + e.Context
	}
	return fmt.Sprintf("snap: corrupt snapshot: %s: %v", e.Context, e.Err)
}

func (e *CorruptError) Unwrap() error { return e.Err }

// VersionError reports a snapshot whose magic or format version does
// not match what the reader supports. Old snapshots fail loudly here.
type VersionError struct {
	Magic       [4]byte
	Got, Want   uint16
	MagicWanted [4]byte
}

func (e *VersionError) Error() string {
	if e.Magic != e.MagicWanted {
		return fmt.Sprintf("snap: bad magic %q (want %q): not a snapshot of this format", e.Magic[:], e.MagicWanted[:])
	}
	return fmt.Sprintf("snap: unsupported snapshot format version %d (this build reads version %d)", e.Got, e.Want)
}

// maxSliceLen bounds any single decoded length. It is far above any
// real snapshot section but small enough that a corrupted length
// cannot drive a multi-gigabyte allocation.
const maxSliceLen = 1 << 28

// Writer serializes a snapshot stream. Errors are sticky: the first
// write failure is retained and later calls become no-ops, so call
// sites encode straight-line and check Close once.
type Writer struct {
	w   io.Writer
	err error
	buf []byte
	crc uint32
}

// NewWriter starts a snapshot stream on w with the given magic and
// version header.
func NewWriter(w io.Writer, magic [4]byte, version uint16) *Writer {
	sw := &Writer{w: w}
	sw.write(magic[:])
	sw.U16(version)
	return sw
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	if _, w.err = w.w.Write(p); w.err == nil {
		w.crc = crc32.Update(w.crc, crc32.IEEETable, p)
	}
}

// U8 emits one byte.
func (w *Writer) U8(v uint8) { w.write([]byte{v}) }

// U16 emits a little-endian 16-bit word.
func (w *Writer) U16(v uint16) {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	w.write(b[:])
}

// U64 emits a fixed little-endian 64-bit word (RNG state, float bits).
func (w *Writer) U64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.write(b[:])
}

// Uvarint emits an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	w.write(b[:n])
}

// Varint emits a zig-zag signed varint.
func (w *Writer) Varint(v int64) {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutVarint(b[:], v)
	w.write(b[:n])
}

// Int emits an int as a signed varint.
func (w *Writer) Int(v int) { w.Varint(int64(v)) }

// Bool emits a boolean byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// F64 emits a float64 as its IEEE bits (NaN-exact).
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// String emits a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.write([]byte(s))
}

// Ints emits a length-prefixed signed-varint slice.
func (w *Writer) Ints(vs []int) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.Int(v)
	}
}

// Bitmap emits a []bool as a length-prefixed packed bitmap. A nil
// slice is distinguished from an empty one (lazily allocated masks
// round-trip as nil).
func (w *Writer) Bitmap(bs []bool) {
	if bs == nil {
		w.Uvarint(0)
		return
	}
	w.Uvarint(uint64(len(bs)) + 1)
	var cur byte
	for i, b := range bs {
		if b {
			cur |= 1 << (i & 7)
		}
		if i&7 == 7 {
			w.U8(cur)
			cur = 0
		}
	}
	if len(bs)&7 != 0 {
		w.U8(cur)
	}
}

// Section opens a tagged, length-prefixed section: body runs against a
// scratch writer and the accumulated bytes are emitted with the tag and
// length. Sections make the stream self-describing and let the reader
// verify exact consumption.
func (w *Writer) Section(tag uint8, body func(*Writer)) {
	if w.err != nil {
		return
	}
	sub := &Writer{w: (*sliceWriter)(&w.buf)}
	w.buf = w.buf[:0]
	body(sub)
	if sub.err != nil {
		w.err = sub.err
		return
	}
	w.U8(tag)
	w.Uvarint(uint64(len(w.buf)))
	w.write(w.buf)
}

type sliceWriter []byte

func (s *sliceWriter) Write(p []byte) (int, error) {
	*s = append(*s, p...)
	return len(p), nil
}

// Close seals the stream with its CRC-32 trailer and reports the first
// error encountered while encoding. The trailer itself is not hashed.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], w.crc)
	_, w.err = w.w.Write(b[:])
	return w.err
}

// Reader decodes a snapshot stream produced by Writer. All input is
// slurped up front so truncation is detected deterministically; decode
// errors are sticky and surface as *CorruptError from Err.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader reads the magic/version header from r and returns a Reader
// positioned at the body. A wrong magic or version yields a
// *VersionError; a short header yields a *CorruptError.
func NewReader(r io.Reader, magic [4]byte, version uint16) (*Reader, error) {
	buf, err := io.ReadAll(io.LimitReader(r, maxSliceLen))
	if err != nil {
		return nil, err
	}
	if len(buf) < 6 {
		return nil, &CorruptError{Context: "header", Err: io.ErrUnexpectedEOF}
	}
	var got [4]byte
	copy(got[:], buf[:4])
	ver := binary.LittleEndian.Uint16(buf[4:6])
	if got != magic || ver != version {
		return nil, &VersionError{Magic: got, Got: ver, Want: version, MagicWanted: magic}
	}
	if len(buf) < 6+4 {
		return nil, &CorruptError{Context: "checksum", Err: io.ErrUnexpectedEOF}
	}
	body := buf[:len(buf)-4]
	want := binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if sum := crc32.ChecksumIEEE(body); sum != want {
		return nil, &CorruptError{Context: "checksum", Err: fmt.Errorf("crc32 %08x, trailer says %08x", sum, want)}
	}
	return &Reader{buf: body, off: 6}, nil
}

func (r *Reader) fail(ctx string, err error) {
	if r.err == nil {
		r.err = &CorruptError{Context: ctx, Err: err}
	}
}

// Fail records a caller-detected corruption (an implausible decoded
// value) as the reader's sticky error, so section decoders can reject
// bad data through the same error path as framing failures.
func (r *Reader) Fail(ctx string, err error) { r.fail(ctx, err) }

func (r *Reader) take(n int, ctx string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.buf)-r.off {
		r.fail(ctx, io.ErrUnexpectedEOF)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 decodes one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 decodes a little-endian 16-bit word.
func (r *Reader) U16() uint16 {
	b := r.take(2, "u16")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U64 decodes a fixed little-endian 64-bit word.
func (r *Reader) U64() uint64 {
	b := r.take(8, "u64")
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("uvarint", io.ErrUnexpectedEOF)
		return 0
	}
	r.off += n
	return v
}

// Varint decodes a zig-zag signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("varint", io.ErrUnexpectedEOF)
		return 0
	}
	r.off += n
	return v
}

// Int decodes an int-sized signed varint.
func (r *Reader) Int() int { return int(r.Varint()) }

// Bool decodes a boolean byte; any value other than 0 or 1 is corrupt.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("bool", errors.New("invalid boolean byte"))
		return false
	}
}

// F64 decodes IEEE float64 bits.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uvarint()
	if n > maxSliceLen {
		r.fail("string", fmt.Errorf("length %d exceeds limit", n))
		return ""
	}
	return string(r.take(int(n), "string"))
}

// Ints decodes a length-prefixed signed-varint slice.
func (r *Reader) Ints() []int {
	n := r.Uvarint()
	if n > maxSliceLen {
		r.fail("ints", fmt.Errorf("length %d exceeds limit", n))
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Int()
	}
	return out
}

// Bitmap decodes a packed bitmap written by Writer.Bitmap (nil-aware).
func (r *Reader) Bitmap() []bool {
	n := r.Uvarint()
	if n == 0 {
		return nil
	}
	n--
	if n > maxSliceLen {
		r.fail("bitmap", fmt.Errorf("length %d exceeds limit", n))
		return nil
	}
	bytes := r.take(int(n+7)/8, "bitmap")
	if bytes == nil {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = bytes[i/8]&(1<<(i&7)) != 0
	}
	return out
}

// Section decodes a tagged section written by Writer.Section: the tag
// must match, and body must consume the section's bytes exactly.
func (r *Reader) Section(tag uint8, body func(*Reader)) {
	if r.err != nil {
		return
	}
	ctx := fmt.Sprintf("section %d", tag)
	if got := r.U8(); r.err == nil && got != tag {
		r.fail(ctx, fmt.Errorf("found tag %d", got))
	}
	n := r.Uvarint()
	if n > maxSliceLen {
		r.fail(ctx, fmt.Errorf("length %d exceeds limit", n))
	}
	b := r.take(int(n), ctx)
	if r.err != nil {
		return
	}
	sub := &Reader{buf: b}
	body(sub)
	if sub.err != nil {
		r.fail(ctx, sub.err)
		return
	}
	if sub.off != len(sub.buf) {
		r.fail(ctx, fmt.Errorf("%d trailing bytes", len(sub.buf)-sub.off))
	}
}

// Err reports the first decode error, if any. Call after decoding.
func (r *Reader) Err() error { return r.err }

// ExpectEOF verifies the whole stream was consumed.
func (r *Reader) ExpectEOF() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return &CorruptError{Context: "trailer", Err: fmt.Errorf("%d trailing bytes", len(r.buf)-r.off)}
	}
	return nil
}
