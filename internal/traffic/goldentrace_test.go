package traffic_test

// Golden-trace determinism suite for the PR 3 scheduler refactor.
//
// The hard constraint on the typed-event calendar-queue core is that it
// preserves the exact event order of the closure/binary-heap engine:
// same-cycle FIFO, cross-cycle time order, identical arbitration RNG
// consumption. These tests pin that down at the finest observable grain —
// the full TraceEvent stream of representative fig6 (isolated multicast)
// and fig9 (open-loop load) cells, hashed byte-for-byte — plus the final
// Stats counters and event counts.
//
// testdata/golden_traces.json was recorded on the pre-refactor engine
// (closure entries in a binary min-heap). Any divergence — one event
// reordered, one extra RNG draw — changes the hash. Regenerate only when
// a simulation-semantics change is intended: go test -run Golden -update.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mcastsim/internal/mcast"
	"mcastsim/internal/mcast/kbinomial"
	"mcastsim/internal/mcast/pathworm"
	"mcastsim/internal/mcast/treeworm"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/traffic"
	"mcastsim/internal/updown"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace/table files")

// traceHasher folds a TraceEvent stream into a canonical SHA-256: every
// field in fixed-width little-endian, so two streams share a hash iff
// they are byte-for-byte identical.
type traceHasher struct {
	sum    interface{ Write(p []byte) (int, error) }
	events uint64
	buf    [57]byte
}

func newTraceHasher() (*traceHasher, func() string) {
	h := sha256.New()
	th := &traceHasher{sum: h}
	return th, func() string { return hex.EncodeToString(h.Sum(nil)) }
}

func (th *traceHasher) observe(ev sim.TraceEvent) {
	b := th.buf[:]
	binary.LittleEndian.PutUint64(b[0:], uint64(ev.At))
	b[8] = byte(ev.Kind)
	binary.LittleEndian.PutUint64(b[9:], uint64(ev.Worm))
	binary.LittleEndian.PutUint64(b[17:], uint64(ev.Msg))
	binary.LittleEndian.PutUint64(b[25:], uint64(ev.Pkt))
	binary.LittleEndian.PutUint64(b[33:], uint64(ev.Switch))
	binary.LittleEndian.PutUint64(b[41:], uint64(ev.Port))
	binary.LittleEndian.PutUint64(b[49:], uint64(ev.Node))
	th.sum.Write(b)
	th.events++
}

// goldenCell is one recorded determinism cell.
type goldenCell struct {
	Name   string    `json:"name"`
	Hash   string    `json:"hash"`
	Events uint64    `json:"events"`
	Stats  sim.Stats `json:"stats"`
}

const goldenPath = "testdata/golden_traces.json"

// goldenTopology builds the routed topology every golden cell runs on:
// the paper's default system, generation seed 1998 (the experiment
// harness's base seed).
func goldenTopology(t testing.TB) *updown.Routing {
	t.Helper()
	topo, err := topology.Generate(topology.DefaultConfig(), rng.New(1998))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := updown.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func goldenSchemes() []mcast.Scheme {
	return []mcast.Scheme{kbinomial.New(), treeworm.New(), pathworm.New()}
}

// runFig6Cell replays one fig6-style isolated-multicast cell (the loop of
// traffic.RunSingle, with a tracer installed) on the given engine and
// returns its trace hash, event count and stats.
func runFig6Cell(t testing.TB, rt *updown.Routing, sch mcast.Scheme, r float64, eng sim.Engine) goldenCell {
	t.Helper()
	p := sim.DefaultParams().WithR(r)
	const probes, degree, flits, seed = 4, 16, 128, 7
	src := rng.New(seed)
	th, sum := newTraceHasher()
	var stats sim.Stats
	var events uint64
	for i := 0; i < probes; i++ {
		picks := src.Sample(rt.Topo.NumNodes, degree+1)
		from := topology.NodeID(picks[0])
		dests := make([]topology.NodeID, degree)
		for j, v := range picks[1:] {
			dests[j] = topology.NodeID(v)
		}
		plan, err := sch.Plan(rt, p, from, dests, flits)
		if err != nil {
			t.Fatal(err)
		}
		n, err := sim.New(rt, p, rng.Mix(seed, 0xa2b17, uint64(i)),
			sim.WithEngine(eng), sim.WithTrace(th.observe))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.RunSingle(plan, flits); err != nil {
			t.Fatalf("%s probe %d: %v", sch.Name(), i, err)
		}
		s := n.Stats()
		stats = addStats(stats, s)
		events += n.EventsProcessed()
	}
	return goldenCell{
		Name:   fmt.Sprintf("fig6/R=%.1f/%s", r, sch.Name()),
		Hash:   sum(),
		Events: events,
		Stats:  stats,
	}
}

// runFig9Cell runs one fig9-style open-loop load cell through the real
// traffic.RunLoadOn on a traced network.
func runFig9Cell(t testing.TB, rt *updown.Routing, sch mcast.Scheme, eng sim.Engine) goldenCell {
	t.Helper()
	p := sim.DefaultParams()
	cfg := traffic.LoadConfig{
		Workload: traffic.Workload{Scheme: sch, Params: p, Degree: 8, MsgFlits: 128,
			Seed: rng.Mix(1998, 0x10adce11, 0)},
		LoadSpec: traffic.LoadSpec{EffectiveLoad: 0.3,
			Warmup: 2_000, Measure: 10_000, Drain: 10_000},
	}
	th, sum := newTraceHasher()
	n, err := sim.New(rt, p, cfg.Seed, sim.WithEngine(eng), sim.WithTrace(th.observe))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := traffic.RunLoadOn(n, rt, cfg); err != nil {
		t.Fatalf("%s load cell: %v", sch.Name(), err)
	}
	return goldenCell{
		Name:   "fig9/load=0.3/" + sch.Name(),
		Hash:   sum(),
		Events: n.EventsProcessed(),
		Stats:  n.Stats(),
	}
}

func addStats(a, b sim.Stats) sim.Stats {
	a.WormsCreated += b.WormsCreated
	a.PacketsInjected += b.PacketsInjected
	a.FlitHops += b.FlitHops
	a.FlitsDelivered += b.FlitsDelivered
	a.PacketsAtNI += b.PacketsAtNI
	a.PacketsToHost += b.PacketsToHost
	a.MessagesSent += b.MessagesSent
	a.MessagesDone += b.MessagesDone
	a.FlitsDropped += b.FlitsDropped
	a.WormsKilled += b.WormsKilled
	a.DestsFailed += b.DestsFailed
	a.Reconfigs += b.Reconfigs
	return a
}

// collectCells runs every golden cell on one engine.
func collectCells(t testing.TB, eng sim.Engine) []goldenCell {
	t.Helper()
	rt := goldenTopology(t)
	var cells []goldenCell
	for _, r := range []float64{1, 4} {
		for _, sch := range goldenSchemes() {
			cells = append(cells, runFig6Cell(t, rt, sch, r, eng))
		}
	}
	for _, sch := range goldenSchemes() {
		cells = append(cells, runFig9Cell(t, rt, sch, eng))
	}
	return cells
}

// TestGoldenTraces compares the current engine's full TraceEvent streams
// against the hashes recorded on the pre-refactor closure/heap engine.
func TestGoldenTraces(t *testing.T) {
	got := collectCells(t, sim.EngineCalendar)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded %d golden cells", len(got))
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	var want []goldenCell
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("cell count %d, golden has %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Name != want[i].Name {
			t.Fatalf("cell %d name %q, golden %q", i, got[i].Name, want[i].Name)
		}
		if got[i].Events != want[i].Events {
			t.Errorf("%s: %d events, golden %d", got[i].Name, got[i].Events, want[i].Events)
		}
		if got[i].Stats != want[i].Stats {
			t.Errorf("%s: stats %+v, golden %+v", got[i].Name, got[i].Stats, want[i].Stats)
		}
		if got[i].Hash != want[i].Hash {
			t.Errorf("%s: trace stream diverged from pre-refactor engine (hash %s, golden %s)",
				got[i].Name, got[i].Hash, want[i].Hash)
		}
	}
}

// TestEngineEquivalence runs every golden cell on both live backends and
// diffs them cell by cell. Unlike TestGoldenTraces this needs no recorded
// file, so it keeps guarding the calendar/heap equivalence even after the
// goldens are legitimately regenerated for a semantics change.
func TestEngineEquivalence(t *testing.T) {
	heap := collectCells(t, sim.EngineHeap)
	cal := collectCells(t, sim.EngineCalendar)
	if len(heap) != len(cal) {
		t.Fatalf("cell counts differ: heap %d, calendar %d", len(heap), len(cal))
	}
	for i := range heap {
		if heap[i].Name != cal[i].Name {
			t.Fatalf("cell %d: heap ran %q, calendar ran %q", i, heap[i].Name, cal[i].Name)
		}
		if heap[i] != cal[i] {
			t.Errorf("%s: engines diverged\n  heap:     hash=%s events=%d\n  calendar: hash=%s events=%d\n  heap stats:     %+v\n  calendar stats: %+v",
				heap[i].Name, heap[i].Hash, heap[i].Events, cal[i].Hash, cal[i].Events,
				heap[i].Stats, cal[i].Stats)
			return // first divergence is the informative one
		}
	}
}
