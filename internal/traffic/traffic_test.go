package traffic

import (
	"testing"

	"mcastsim/internal/mcast"
	"mcastsim/internal/mcast/binomial"
	"mcastsim/internal/mcast/kbinomial"
	"mcastsim/internal/mcast/pathworm"
	"mcastsim/internal/mcast/treeworm"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// runSingleLats, runLoadPoint and runMixedLats drive Run in one mode
// and unwrap that mode's result, keeping call sites compact.
func runSingleLats(rt *updown.Routing, w Workload, probes int) ([]float64, error) {
	res, err := Run(rt, w, WithProbes(probes))
	if err != nil {
		return nil, err
	}
	return res.Latencies, nil
}

func runLoadPoint(rt *updown.Routing, w Workload, spec LoadSpec) (LoadResult, error) {
	res, err := Run(rt, w, WithLoad(spec))
	if err != nil {
		return LoadResult{}, err
	}
	return *res.Load, nil
}

func runMixedLats(rt *updown.Routing, w Workload, spec MixedSpec) ([]float64, error) {
	res, err := Run(rt, w, WithMixed(spec))
	if err != nil {
		return nil, err
	}
	return res.Latencies, nil
}

func routed(t *testing.T, seed uint64) *updown.Routing {
	t.Helper()
	topo, err := topology.Generate(topology.DefaultConfig(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := updown.New(topo)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestDestsFromExcludesSource(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 200; trial++ {
		src := topology.NodeID(r.Intn(32))
		dests := destsFrom(r, 32, 8, src)
		if len(dests) != 8 {
			t.Fatalf("degree %d", len(dests))
		}
		seen := map[topology.NodeID]bool{}
		for _, d := range dests {
			if d == src {
				t.Fatal("source drawn as destination")
			}
			if int(d) < 0 || int(d) >= 32 {
				t.Fatalf("destination %d out of range", d)
			}
			if seen[d] {
				t.Fatal("duplicate destination")
			}
			seen[d] = true
		}
	}
}

func TestRunSingleAllSchemes(t *testing.T) {
	rt := routed(t, 3)
	for _, sch := range []mcast.Scheme{binomial.New(), kbinomial.New(), treeworm.New(), pathworm.New()} {
		lats, err := runSingleLats(rt, Workload{Scheme: sch, Params: sim.DefaultParams(),
			Degree: 16, MsgFlits: 128, Seed: 9}, 5)
		if err != nil {
			t.Fatalf("%s: %v", sch.Name(), err)
		}
		if len(lats) != 5 {
			t.Fatalf("%s: %d probes", sch.Name(), len(lats))
		}
		for _, l := range lats {
			if l <= 0 {
				t.Fatalf("%s: non-positive latency %v", sch.Name(), l)
			}
		}
	}
}

func TestRunSingleDeterministic(t *testing.T) {
	rt := routed(t, 4)
	w := Workload{Scheme: treeworm.New(),
		Params: sim.DefaultParams(), Degree: 8, MsgFlits: 128, Seed: 11}
	a, err := runSingleLats(rt, w, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runSingleLats(rt, w, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe %d diverged", i)
		}
	}
}

func TestRunSingleCheckpointResume(t *testing.T) {
	// Resuming single mode from any probe-granular checkpoint must
	// reproduce the uninterrupted run's latencies exactly.
	rt := routed(t, 4)
	w := Workload{Scheme: treeworm.New(), Params: sim.DefaultParams(),
		Degree: 8, MsgFlits: 128, Seed: 17}
	const probes = 6
	full, err := runSingleLats(rt, w, probes)
	if err != nil {
		t.Fatal(err)
	}
	var cps []CellCheckpoint
	if _, err := Run(rt, w, WithProbes(probes),
		WithCheckpoint(func(cp CellCheckpoint) { cps = append(cps, cp) })); err != nil {
		t.Fatal(err)
	}
	if len(cps) != probes {
		t.Fatalf("got %d checkpoints, want %d", len(cps), probes)
	}
	for _, cp := range cps {
		res, err := Run(rt, w, WithProbes(probes), WithResume(cp))
		if err != nil {
			t.Fatalf("resume at probe %d: %v", cp.NextProbe, err)
		}
		if len(res.Latencies) != probes {
			t.Fatalf("resume at probe %d: %d latencies", cp.NextProbe, len(res.Latencies))
		}
		for i := range full {
			if res.Latencies[i] != full[i] {
				t.Fatalf("resume at probe %d: latency %d diverged: %v vs %v",
					cp.NextProbe, i, res.Latencies[i], full[i])
			}
		}
	}
	// Checkpoint options are single-mode only.
	if _, err := Run(rt, w, WithLoad(LoadSpec{EffectiveLoad: 0.1, Measure: 1}),
		WithCheckpoint(func(CellCheckpoint) {})); err == nil {
		t.Fatal("WithCheckpoint accepted alongside WithLoad")
	}
	// A checkpoint past the probe count is rejected.
	if _, err := Run(rt, w, WithProbes(2), WithResume(cps[probes-1])); err == nil {
		t.Fatal("out-of-range resume accepted")
	}
}

func TestSingleMulticastOrdering(t *testing.T) {
	// At default parameters the paper's central single-multicast result:
	// tree (one phase) < {NI-based, path-based} < binomial baseline.
	rt := routed(t, 5)
	p := sim.DefaultParams()
	mean := func(s mcast.Scheme) float64 {
		lats, err := runSingleLats(rt, Workload{Scheme: s, Params: p, Degree: 16, MsgFlits: 128, Seed: 21}, 10)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, l := range lats {
			sum += l
		}
		return sum / float64(len(lats))
	}
	tree := mean(treeworm.New())
	path := mean(pathworm.New())
	ni := mean(kbinomial.New())
	base := mean(binomial.New())
	if !(tree < path && tree < ni) {
		t.Fatalf("tree worm not fastest: tree=%v path=%v ni=%v", tree, path, ni)
	}
	if !(base > tree && base > path) {
		t.Fatalf("binomial baseline not slowest of host schemes: base=%v tree=%v path=%v", base, tree, path)
	}
}

func TestRunLoadLowLoadMatchesSingle(t *testing.T) {
	// At very low load, mean latency must approach the isolated latency.
	rt := routed(t, 6)
	p := sim.DefaultParams()
	sch := treeworm.New()
	iso, err := runSingleLats(rt, Workload{Scheme: sch, Params: p, Degree: 8, MsgFlits: 128, Seed: 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	var isoMean float64
	for _, l := range iso {
		isoMean += l
	}
	isoMean /= float64(len(iso))

	res, err := runLoadPoint(rt,
		Workload{Scheme: sch, Params: p, Degree: 8, MsgFlits: 128, Seed: 12},
		LoadSpec{EffectiveLoad: 0.02, Warmup: 20000, Measure: 60000, Drain: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Fatal("saturated at 2% load")
	}
	if res.Latency.Count == 0 {
		t.Fatal("no measured messages")
	}
	if res.Latency.Mean < 0.8*isoMean || res.Latency.Mean > 2.0*isoMean {
		t.Fatalf("low-load latency %v vs isolated %v", res.Latency.Mean, isoMean)
	}
}

func TestRunLoadLatencyIncreasesWithLoad(t *testing.T) {
	rt := routed(t, 7)
	p := sim.DefaultParams()
	w := Workload{Scheme: treeworm.New(), Params: p, Degree: 8, MsgFlits: 128, Seed: 13}
	base := LoadSpec{Warmup: 20000, Measure: 60000, Drain: 40000}
	lo := base
	lo.EffectiveLoad = 0.05
	hi := base
	hi.EffectiveLoad = 0.5
	rl, err := runLoadPoint(rt, w, lo)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := runLoadPoint(rt, w, hi)
	if err != nil {
		t.Fatal(err)
	}
	if !rh.Saturated && rh.Latency.Mean <= rl.Latency.Mean {
		t.Fatalf("latency did not increase with load: %v -> %v", rl.Latency.Mean, rh.Latency.Mean)
	}
}

func TestLoadSweepStopsAtSaturation(t *testing.T) {
	rt := routed(t, 8)
	base := LoadConfig{
		Workload: Workload{Scheme: binomial.New(), Params: sim.DefaultParams(),
			Degree: 16, MsgFlits: 128, Seed: 14},
		LoadSpec: LoadSpec{Warmup: 10000, Measure: 40000, Drain: 20000},
	}
	// The software baseline saturates early; the sweep must stop there.
	loads := []float64{0.05, 0.15, 0.3, 0.5, 0.8, 1.2, 2.0, 3.0}
	results, err := LoadSweep(rt, base, loads)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	for i, r := range results[:len(results)-1] {
		if r.Saturated {
			t.Fatalf("intermediate point %d saturated but sweep continued", i)
		}
	}
	if len(results) == len(loads) && !results[len(results)-1].Saturated {
		t.Log("baseline never saturated in this sweep (acceptable but unexpected)")
	}
}

func TestRunLoadRejectsBadConfig(t *testing.T) {
	rt := routed(t, 9)
	w := Workload{Scheme: treeworm.New(), Params: sim.DefaultParams(), Degree: 8, MsgFlits: 128}
	if _, err := runLoadPoint(rt, w,
		LoadSpec{EffectiveLoad: 0, Warmup: 1, Measure: 1, Drain: 1}); err == nil {
		t.Fatal("zero load accepted")
	}
	if _, err := runLoadPoint(rt, w,
		LoadSpec{EffectiveLoad: 0.1, Warmup: 1, Measure: 0, Drain: 1}); err == nil {
		t.Fatal("zero measure window accepted")
	}
}

func TestRunSingleRejectsBadProbes(t *testing.T) {
	rt := routed(t, 10)
	if _, err := runSingleLats(rt,
		Workload{Scheme: treeworm.New(), Params: sim.DefaultParams(), Degree: 8, MsgFlits: 128},
		0); err == nil {
		t.Fatal("zero probes accepted")
	}
}

func TestRunMixedBackgroundSlowsMulticast(t *testing.T) {
	rt := routed(t, 11)
	p := sim.DefaultParams()
	w := Workload{Scheme: treeworm.New(), Params: p, Degree: 8, MsgFlits: 128, Seed: 31}
	base := MixedSpec{BackgroundFlits: 128, Probes: 8, ProbeGap: 4000, Warmup: 8000}
	quiet := base
	quiet.BackgroundLoad = 0
	qLats, err := runMixedLats(rt, w, quiet)
	if err != nil {
		t.Fatal(err)
	}
	busy := base
	busy.BackgroundLoad = 0.15
	bLats, err := runMixedLats(rt, w, busy)
	if err != nil {
		t.Fatal(err)
	}
	var qm, bm float64
	for _, v := range qLats {
		qm += v
	}
	for _, v := range bLats {
		bm += v
	}
	qm /= float64(len(qLats))
	bm /= float64(len(bLats))
	if bm <= qm {
		t.Fatalf("background traffic did not slow multicast: quiet=%v busy=%v", qm, bm)
	}
}

func TestRunMixedQuietMatchesSingle(t *testing.T) {
	rt := routed(t, 12)
	p := sim.DefaultParams()
	lats, err := runMixedLats(rt,
		Workload{Scheme: treeworm.New(), Params: p, Degree: 8, MsgFlits: 128, Seed: 32},
		MixedSpec{BackgroundLoad: 0, BackgroundFlits: 128,
			Probes: 6, ProbeGap: 5000, Warmup: 1000})
	if err != nil {
		t.Fatal(err)
	}
	iso, err := runSingleLats(rt, Workload{Scheme: treeworm.New(),
		Params: p, Degree: 8, MsgFlits: 128, Seed: 33}, 6)
	if err != nil {
		t.Fatal(err)
	}
	var mm, im float64
	for _, v := range lats {
		mm += v
	}
	for _, v := range iso {
		im += v
	}
	mm /= float64(len(lats))
	im /= float64(len(iso))
	if mm < 0.7*im || mm > 1.4*im {
		t.Fatalf("quiet mixed (%v) far from isolated (%v)", mm, im)
	}
}

func TestRunMixedRejectsBadConfig(t *testing.T) {
	rt := routed(t, 13)
	w := Workload{Scheme: treeworm.New(), Params: sim.DefaultParams(), Degree: 8, MsgFlits: 128}
	if _, err := runMixedLats(rt, w, MixedSpec{Probes: 0, ProbeGap: 100}); err == nil {
		t.Fatal("zero probes accepted")
	}
	if _, err := runMixedLats(rt, w, MixedSpec{Probes: 3, ProbeGap: 100, BackgroundLoad: -1}); err == nil {
		t.Fatal("negative background accepted")
	}
}
