package traffic_test

// Tentpole non-interference checks at the workload-API level: a fig9-style
// load cell driven through traffic.Run must emit the exact same TraceEvent
// stream with and without a telemetry recorder attached, and the recorder
// must come back with a non-empty per-link utilization series whose flit
// total reconciles exactly with the network's own Stats.FlitHops.

import (
	"testing"

	"mcastsim/internal/mcast/treeworm"
	"mcastsim/internal/obs"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/traffic"
)

func fig9Workload() traffic.Workload {
	return traffic.Workload{
		Scheme: treeworm.New(), Params: sim.DefaultParams(),
		Degree: 8, MsgFlits: 128,
		Seed: rng.Mix(1998, 0x10adce11, 0),
	}
}

func fig9Spec() traffic.LoadSpec {
	return traffic.LoadSpec{EffectiveLoad: 0.3, Warmup: 2_000, Measure: 10_000, Drain: 10_000}
}

func TestRunLoadTraceIdenticalWithObs(t *testing.T) {
	rt := goldenTopology(t)
	run := func(rec *obs.Recorder) (string, uint64) {
		th, sum := newTraceHasher()
		opts := []traffic.Option{traffic.WithLoad(fig9Spec()), traffic.WithTrace(th.observe)}
		if rec != nil {
			opts = append(opts, traffic.WithObs(rec))
		}
		if _, err := traffic.Run(rt, fig9Workload(), opts...); err != nil {
			t.Fatal(err)
		}
		return sum(), th.events
	}
	plainHash, plainEvents := run(nil)
	rec := obs.NewRecorder(obs.Config{})
	obsHash, obsEvents := run(rec)
	if plainEvents == 0 {
		t.Fatal("load cell emitted no trace events")
	}
	if obsEvents != plainEvents || obsHash != plainHash {
		t.Fatalf("trace stream moved under obs: %d events hash %s, plain %d events hash %s",
			obsEvents, obsHash, plainEvents, plainHash)
	}
	if len(rec.Samples()) == 0 {
		t.Fatal("recorder sampled nothing over a 22k-cycle load run")
	}
}

func TestRunLoadObsSeriesReconcilesWithStats(t *testing.T) {
	rt := goldenTopology(t)
	rec := obs.NewRecorder(obs.Config{Every: 512})
	w := fig9Workload()
	n, err := sim.New(rt, w.Params, w.Seed, sim.WithObs(rec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := traffic.RunLoadOn(n, rt, traffic.LoadConfig{
		Workload: w, LoadSpec: fig9Spec(),
	}); err != nil {
		t.Fatal(err)
	}
	b := rec.Bundle("fig9/load=0.3/sw-tree")
	if len(b.Snapshots) < 10 {
		t.Fatalf("expected a dense sample series at cadence 512, got %d snapshots", len(b.Snapshots))
	}
	hops := int64(n.Stats().FlitHops)
	if hops == 0 {
		t.Fatal("load run moved no flits")
	}
	if got := b.TotalFlits(); got != hops {
		t.Fatalf("summed per-link series %d != Stats.FlitHops %d", got, hops)
	}
	// The series must be spread over time, not piled on the final flush:
	// at 30% load most sampling intervals see traffic.
	busy := 0
	for _, s := range b.Snapshots {
		var f int64
		for _, v := range s.ChanFlits {
			f += v
		}
		if f > 0 {
			busy++
		}
	}
	if busy < len(b.Snapshots)/2 {
		t.Fatalf("only %d of %d intervals saw traffic", busy, len(b.Snapshots))
	}
	for i := 1; i < len(b.Snapshots); i++ {
		if b.Snapshots[i].At < b.Snapshots[i-1].At {
			t.Fatalf("sample times not monotone: %d then %d",
				b.Snapshots[i-1].At, b.Snapshots[i].At)
		}
	}
	if b.Every != 512 {
		t.Fatalf("bundle cadence %d, want 512", b.Every)
	}
}
