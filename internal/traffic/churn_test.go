package traffic

import (
	"reflect"
	"testing"

	"mcastsim/internal/event"
	"mcastsim/internal/mcast"
	"mcastsim/internal/mcast/kbinomial"
	"mcastsim/internal/mcast/pathworm"
	"mcastsim/internal/mcast/treeworm"
	"mcastsim/internal/obs"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

func churnWorkload(sch mcast.Scheme, seed uint64) Workload {
	return Workload{Scheme: sch, Params: sim.DefaultParams(),
		Degree: 8, MsgFlits: 64, Seed: seed}
}

func quickChurn(events int) ChurnSpec {
	return ChurnSpec{Probes: 3, Events: events, Horizon: 8_000, SendEvery: 1_000}
}

// staticComparator replays zero-churn churn mode by hand with plain
// sends: the same master-RNG draws, the same per-probe arbitration seeds,
// the same send cadence and post-probe — but no group, no schedule, no
// planner. Zero churn must be byte-identical to this.
func staticComparator(t *testing.T, rt *updown.Routing, w Workload, spec ChurnSpec, trace func(sim.TraceEvent), rec *obs.Recorder) {
	t.Helper()
	numNodes := rt.Topo.NumNodes
	r := rng.New(w.Seed)
	for i := 0; i < spec.Probes; i++ {
		src, members := randomSet(r, numNodes, w.Degree)
		var opts []sim.Option
		if trace != nil {
			opts = append(opts, sim.WithTrace(trace))
		}
		if rec != nil {
			opts = append(opts, sim.WithObs(rec))
		}
		n, err := sim.New(rt, w.Params, rng.Mix(w.Seed, saltChurnArb, uint64(i)), opts...)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := w.Scheme.Plan(rt, w.Params, src, members, w.MsgFlits)
		if err != nil {
			t.Fatal(err)
		}
		var sendErr error
		var sendTick func()
		sendTick = func() {
			now := n.Now()
			if sendErr != nil || now > spec.Horizon {
				return
			}
			if _, err := n.Send(plan, w.MsgFlits, now, nil); err != nil {
				sendErr = err
				return
			}
			if now+spec.SendEvery <= spec.Horizon {
				n.Schedule(now+spec.SendEvery, sendTick)
			}
		}
		n.Schedule(0, sendTick)
		if err := n.Drain(0); err != nil {
			t.Fatal(err)
		}
		if sendErr != nil {
			t.Fatal(sendErr)
		}
		if _, err := n.Send(plan, w.MsgFlits, n.Now(), nil); err != nil {
			t.Fatal(err)
		}
		if err := n.Drain(0); err != nil {
			t.Fatal(err)
		}
		n.FlushObs()
	}
}

// TestZeroChurnTraceMatchesStatic pins the zero-churn equivalence: a
// churn run with an empty membership schedule emits the exact TraceEvent
// stream of the static comparator — the group machinery, the planner
// wrapper and the pooled snapshots are all trace-invisible — with obs
// attached and without.
func TestZeroChurnTraceMatchesStatic(t *testing.T) {
	rt := routed(t, 21)
	for _, withObs := range []bool{false, true} {
		for _, sch := range []mcast.Scheme{kbinomial.New(), treeworm.New(), pathworm.New()} {
			w := churnWorkload(sch, 1234)
			spec := quickChurn(0)

			var churnTrace []sim.TraceEvent
			var rec *obs.Recorder
			if withObs {
				rec = obs.NewRecorder(obs.Config{})
			}
			opts := []Option{WithChurn(spec), WithTrace(func(ev sim.TraceEvent) {
				churnTrace = append(churnTrace, ev)
			})}
			if rec != nil {
				opts = append(opts, WithObs(rec))
			}
			res, err := Run(rt, w, opts...)
			if err != nil {
				t.Fatalf("%s obs=%v: %v", sch.Name(), withObs, err)
			}
			for _, pr := range res.Churn {
				if pr.Stale != 0 || pr.Missed != 0 || pr.Repairs != 0 {
					t.Fatalf("%s: zero churn produced stale=%d missed=%d repairs=%d",
						sch.Name(), pr.Stale, pr.Missed, pr.Repairs)
				}
				if pr.FinalMembers != w.Degree {
					t.Fatalf("%s: membership moved to %d without events", sch.Name(), pr.FinalMembers)
				}
			}

			var staticTrace []sim.TraceEvent
			var rec2 *obs.Recorder
			if withObs {
				rec2 = obs.NewRecorder(obs.Config{})
			}
			staticComparator(t, rt, w, spec, func(ev sim.TraceEvent) {
				staticTrace = append(staticTrace, ev)
			}, rec2)

			if len(churnTrace) == 0 {
				t.Fatalf("%s: churn run emitted no trace events", sch.Name())
			}
			if len(churnTrace) != len(staticTrace) {
				t.Fatalf("%s obs=%v: trace length diverged: churn %d, static %d",
					sch.Name(), withObs, len(churnTrace), len(staticTrace))
			}
			for i := range churnTrace {
				if churnTrace[i] != staticTrace[i] {
					t.Fatalf("%s obs=%v: trace diverged at event %d:\n churn:  %+v\n static: %+v",
						sch.Name(), withObs, i, churnTrace[i], staticTrace[i])
				}
			}
		}
	}
}

// TestChurnSeedsPairwiseDistinct is the seed-discipline regression: every
// derived stream seed in churn mode (arbitration and schedule, across
// probes and across nearby workload seeds) must be pairwise distinct —
// the additive-derivation bug class makes adjacent cells collide.
func TestChurnSeedsPairwiseDistinct(t *testing.T) {
	seen := map[uint64]string{}
	note := func(s uint64, what string) {
		if prev, ok := seen[s]; ok {
			t.Fatalf("seed collision: %s and %s both derive %#x", prev, what, s)
		}
		seen[s] = what
	}
	for _, base := range []uint64{1998, 1999, 2000} {
		note(base, "workload")
		for probe := 0; probe < 8; probe++ {
			note(rng.Mix(base, saltChurnArb, uint64(probe)), "arb")
			note(rng.Mix(base, saltChurnSched, uint64(probe)), "sched")
		}
	}
}

func TestChurnScheduleRespectsBounds(t *testing.T) {
	spec := ChurnSpec{Events: 200, Horizon: 10_000, MinMembers: 3, MaxMembers: 6}
	initial := []topology.NodeID{1, 2, 3, 4}
	ms := churnSchedule(42, 0, 32, 0, initial, spec)
	if len(ms.Events) != spec.Events {
		t.Fatalf("schedule has %d events, want %d", len(ms.Events), spec.Events)
	}
	size := len(initial)
	var last event.Time
	for i, ev := range ms.Events {
		if ev.At < last {
			t.Fatalf("event %d out of order: %d after %d", i, ev.At, last)
		}
		last = ev.At
		if ev.At < 1 || ev.At > spec.Horizon {
			t.Fatalf("event %d at %d outside (0, %d]", i, ev.At, spec.Horizon)
		}
		if ev.Node == 0 {
			t.Fatal("the source was scheduled to join/leave")
		}
		if ev.Kind == sim.MemberJoin {
			size++
		} else {
			size--
		}
		if size < spec.MinMembers || size > spec.MaxMembers {
			t.Fatalf("event %d drives membership to %d, bounds [%d, %d]",
				i, size, spec.MinMembers, spec.MaxMembers)
		}
	}
	// Determinism: same seed, same schedule.
	if !reflect.DeepEqual(ms, churnSchedule(42, 0, 32, 0, initial, spec)) {
		t.Fatal("churnSchedule is not deterministic")
	}
	if reflect.DeepEqual(ms, churnSchedule(43, 0, 32, 0, initial, spec)) {
		t.Fatal("adjacent seeds produced the same schedule")
	}
}

// TestRunChurnAllSchemes smoke-tests real churn per scheme and checks the
// architectural asymmetry: the NI scheme repairs by splicing (never a
// rebuild), the header-encoded schemes rebuild on every delta.
func TestRunChurnAllSchemes(t *testing.T) {
	rt := routed(t, 22)
	for _, sch := range []mcast.Scheme{kbinomial.New(), treeworm.New(), pathworm.New()} {
		res, err := Run(rt, churnWorkload(sch, 77), WithChurn(quickChurn(12)))
		if err != nil {
			t.Fatalf("%s: %v", sch.Name(), err)
		}
		if len(res.Churn) != 3 {
			t.Fatalf("%s: %d probes, want 3", sch.Name(), len(res.Churn))
		}
		for i, pr := range res.Churn {
			if pr.Sent == 0 || pr.Delivered == 0 || pr.Delivered != pr.TotalDests {
				t.Fatalf("%s probe %d: sent=%d delivered=%d/%d (fault-free churn loses nothing)",
					sch.Name(), i, pr.Sent, pr.Delivered, pr.TotalDests)
			}
			// The generator never emits redundant events, so every event
			// applies and every applied event triggers one repair.
			if pr.Joins+pr.Leaves != 12 || pr.Repairs != 12 {
				t.Fatalf("%s probe %d: joins=%d leaves=%d repairs=%d, want 12 events and repairs",
					sch.Name(), i, pr.Joins, pr.Leaves, pr.Repairs)
			}
			if pr.RepairCycles <= 0 || pr.RepairEdges <= 0 {
				t.Fatalf("%s probe %d: free repairs (cycles=%d edges=%d)",
					sch.Name(), i, pr.RepairCycles, pr.RepairEdges)
			}
			switch sch.(type) {
			case kbinomial.Scheme:
				if pr.Rebuilds != 0 {
					t.Fatalf("NI scheme rebuilt %d times; splices expected", pr.Rebuilds)
				}
			default:
				if pr.Rebuilds != pr.Repairs {
					t.Fatalf("%s: %d rebuilds of %d repairs; header schemes always regenerate",
						sch.Name(), pr.Rebuilds, pr.Repairs)
				}
			}
			if pr.PostTotal == 0 || pr.PostDelivered != pr.PostTotal {
				t.Fatalf("%s probe %d: post-churn probe delivered %d/%d",
					sch.Name(), i, pr.PostDelivered, pr.PostTotal)
			}
		}
	}
}

func TestRunChurnDeterministic(t *testing.T) {
	rt := routed(t, 23)
	run := func() []ChurnProbe {
		res, err := Run(rt, churnWorkload(treeworm.New(), 5), WithChurn(quickChurn(8)))
		if err != nil {
			t.Fatal(err)
		}
		return res.Churn
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("identical churn runs diverged")
	}
}

func TestRunChurnRejectsBadConfig(t *testing.T) {
	rt := routed(t, 24)
	w := churnWorkload(treeworm.New(), 5)
	for name, spec := range map[string]ChurnSpec{
		"no probes":       {Probes: 0, Horizon: 100, SendEvery: 10},
		"no horizon":      {Probes: 1, Horizon: 0, SendEvery: 10},
		"no cadence":      {Probes: 1, Horizon: 100, SendEvery: 0},
		"negative events": {Probes: 1, Events: -1, Horizon: 100, SendEvery: 10},
	} {
		if _, err := Run(rt, w, WithChurn(spec)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := Run(rt, w, WithChurn(quickChurn(0)), WithLoad(LoadSpec{})); err == nil {
		t.Error("WithChurn+WithLoad accepted")
	}
}
