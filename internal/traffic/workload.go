package traffic

import (
	"fmt"

	"mcastsim/internal/event"
	"mcastsim/internal/mcast"
	"mcastsim/internal/obs"
	"mcastsim/internal/sim"
	"mcastsim/internal/updown"
)

// Workload is the scheme/shape tuple every traffic mode shares: which
// multicast scheme to drive, the simulated machine's timing parameters,
// the multicast degree and message length, and the seed every derived
// stream (probe draws, arrival processes, arbitration) mixes from. The
// mode-specific configs embed it, and the unified Run takes it directly.
type Workload struct {
	Scheme   mcast.Scheme
	Params   sim.Params
	Degree   int
	MsgFlits int
	Seed     uint64
}

// LoadSpec selects open-loop load mode (see WithLoad): every node
// generates degree-d multicasts with exponential interarrival times.
type LoadSpec struct {
	// EffectiveLoad is the paper's x-axis: for degree-d multicast applied
	// at raw per-node injection rate l (flits/cycle, normalized to the
	// 1 flit/cycle link bandwidth), the effective applied load is l*d.
	EffectiveLoad float64
	// Warmup is the cold-start period excluded from measurement (paper:
	// 100k cycles); Measure is the generation window measured; after it,
	// generation stops and in-flight messages get Drain cycles to finish.
	Warmup  event.Time
	Measure event.Time
	Drain   event.Time
}

// MixedSpec selects mixed mode (see WithMixed): isolated multicast
// probes over a background of uniform unicast traffic.
type MixedSpec struct {
	// BackgroundLoad is the unicast background intensity in flits per
	// cycle per node (fraction of injection-link capacity).
	BackgroundLoad float64
	// BackgroundFlits is the unicast message length.
	BackgroundFlits int
	// Probes multicast measurements are taken, spaced ProbeGap cycles
	// apart after Warmup cycles of background ramp-up.
	Probes   int
	ProbeGap event.Time
	Warmup   event.Time
}

// FaultSpec selects fault mode (see WithFaults): reliable single
// multicasts under an injected fault schedule.
type FaultSpec struct {
	Probes int
	// Retry is the NI-level reliable-delivery policy; the zero value means
	// sim.DefaultRetryPolicy.
	Retry sim.RetryPolicy
	// Faults builds probe i's fault schedule (nil, or a nil return, means
	// a fault-free probe). It runs before the probe's multicast is sent.
	Faults func(probe int, rt *updown.Routing) *sim.FaultSchedule
}

// Result is the union of every traffic mode's outcome; exactly the
// fields of the selected mode are populated.
type Result struct {
	// Latencies holds per-probe multicast latencies (single and mixed
	// modes).
	Latencies []float64
	// Load is the measured load point (load mode).
	Load *LoadResult
	// Faults holds per-probe reliable-delivery outcomes (fault mode).
	Faults []FaultProbe
	// Churn holds per-probe dynamic-group outcomes (churn mode).
	Churn []ChurnProbe
}

// CellCheckpoint is single mode's resume state, captured between two
// probes. Each probe runs on its own quiet network, so the inter-probe
// position is fully described by the next probe index, the draw RNG's
// state, and the latencies collected so far; per-probe network seeds
// derive from the probe index alone. Restarting a Run with WithResume
// produces exactly the probes the uninterrupted run would have produced.
type CellCheckpoint struct {
	NextProbe int       `json:"next_probe"`
	RNG       [4]uint64 `json:"rng"`
	Latencies []float64 `json:"latencies"`
}

// runOpts is the collected option state for one Run.
type runOpts struct {
	probes int
	load   *LoadSpec
	mixed  *MixedSpec
	fault  *FaultSpec
	churn  *ChurnSpec
	rec    *obs.Recorder
	trace  func(sim.TraceEvent)
	shards int
	ckpt   func(CellCheckpoint)
	resume *CellCheckpoint
}

// Option configures a Run.
type Option func(*runOpts)

// WithProbes sets the probe count for single mode (ignored by the other
// modes, which carry their own counts in their specs).
func WithProbes(n int) Option {
	return func(o *runOpts) { o.probes = n }
}

// WithLoad selects open-loop load mode. Mutually exclusive with
// WithMixed and WithFaults.
func WithLoad(l LoadSpec) Option {
	return func(o *runOpts) { o.load = &l }
}

// WithMixed selects mixed multicast-over-unicast mode. Mutually
// exclusive with WithLoad and WithFaults.
func WithMixed(m MixedSpec) Option {
	return func(o *runOpts) { o.mixed = &m }
}

// WithFaults selects reliable-delivery-under-faults mode. Mutually
// exclusive with WithLoad, WithMixed and WithChurn.
func WithFaults(f FaultSpec) Option {
	return func(o *runOpts) { o.fault = &f }
}

// WithChurn selects dynamic-group churn mode: seeded join/leave streams
// mutate a multicast group's membership while the source keeps sending
// to it, with incremental plan repair (see ChurnSpec). Mutually
// exclusive with WithLoad, WithMixed and WithFaults.
func WithChurn(c ChurnSpec) Option {
	return func(o *runOpts) { o.churn = &c }
}

// WithObs attaches a telemetry recorder to every network the run
// creates; the run flushes the tail interval before returning, so the
// recorder's series reconcile with the final Stats. Passing nil leaves
// observability disabled, so optional recorders thread straight through.
func WithObs(r *obs.Recorder) Option {
	return func(o *runOpts) { o.rec = r }
}

// WithTrace installs fn as the TraceEvent sink on every network the run
// creates.
func WithTrace(fn func(sim.TraceEvent)) Option {
	return func(o *runOpts) { o.trace = fn }
}

// WithShards runs every network the run creates on the serial-equivalence
// sharded PDES engine with k shards (see sim.WithShards). Results are
// byte-identical to the single-queue engine for any k, so experiment
// tables never depend on the shard count; k <= 1 keeps the plain engine.
func WithShards(k int) Option {
	return func(o *runOpts) { o.shards = k }
}

// WithCheckpoint installs fn as single mode's probe-granular checkpoint
// sink: after every completed probe, fn receives the CellCheckpoint that
// resumes the run from the next probe. The snapshot owns its Latencies
// slice, so fn may retain it. Only single mode checkpoints (the other
// modes run one long-lived network per cell and are resumed at cell
// granularity); selecting it together with another mode is an error.
func WithCheckpoint(fn func(CellCheckpoint)) Option {
	return func(o *runOpts) { o.ckpt = fn }
}

// WithResume starts single mode from a CellCheckpoint previously handed
// to a WithCheckpoint sink, skipping the probes it already covers.
func WithResume(cp CellCheckpoint) Option {
	return func(o *runOpts) { o.resume = &cp }
}

// simOpts translates the run options into network assembly options.
func (o *runOpts) simOpts() []sim.Option {
	var opts []sim.Option
	if o.shards > 1 {
		opts = append(opts, sim.WithShards(o.shards))
	}
	if o.trace != nil {
		opts = append(opts, sim.WithTrace(o.trace))
	}
	if o.rec != nil {
		opts = append(opts, sim.WithObs(o.rec))
	}
	return opts
}

// Run is the unified traffic entrypoint: one workload, one mode picked
// by options (single-probe latency by default; WithLoad, WithMixed and
// WithFaults select the open-loop, background-unicast and fault modes),
// plus cross-cutting options (WithObs, WithTrace, WithCheckpoint) that
// apply to every network the run creates. Seed derivations are
// identical to the retired per-mode entrypoints, so results are
// bit-for-bit the same as tables produced before the consolidation.
func Run(rt *updown.Routing, w Workload, opts ...Option) (Result, error) {
	var o runOpts
	for _, f := range opts {
		f(&o)
	}
	modes := 0
	for _, set := range []bool{o.load != nil, o.mixed != nil, o.fault != nil, o.churn != nil} {
		if set {
			modes++
		}
	}
	if modes > 1 {
		return Result{}, fmt.Errorf("traffic: WithLoad, WithMixed, WithFaults and WithChurn are mutually exclusive")
	}
	if (o.ckpt != nil || o.resume != nil) && modes > 0 {
		return Result{}, fmt.Errorf("traffic: WithCheckpoint and WithResume apply only to single mode")
	}
	switch {
	case o.load != nil:
		res, err := runLoad(rt, w, *o.load, &o)
		if err != nil {
			return Result{}, err
		}
		return Result{Load: &res}, nil
	case o.mixed != nil:
		lats, err := runMixed(rt, w, *o.mixed, &o)
		if err != nil {
			return Result{}, err
		}
		return Result{Latencies: lats}, nil
	case o.fault != nil:
		probes, err := runFault(rt, w, *o.fault, &o)
		if err != nil {
			return Result{}, err
		}
		return Result{Faults: probes}, nil
	case o.churn != nil:
		probes, err := runChurn(rt, w, *o.churn, &o)
		if err != nil {
			return Result{}, err
		}
		return Result{Churn: probes}, nil
	default:
		lats, err := runSingle(rt, w, o.probes, &o)
		if err != nil {
			return Result{}, err
		}
		return Result{Latencies: lats}, nil
	}
}
