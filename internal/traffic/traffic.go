// Package traffic drives the simulator with the paper's two workload
// types: isolated single multicasts ("exactly one multicast in the system
// at any given time", §4.1) and open-loop multicast load, where every node
// generates degree-d multicasts with exponential interarrival times and
// latency is measured against effective applied load (§4.3).
//
// Run is the only entrypoint: a Workload plus functional options
// selecting the mode and cross-cutting concerns (telemetry, tracing,
// probe-granular checkpointing for resumable experiments).
package traffic

import (
	"fmt"
	"math"

	"mcastsim/internal/event"
	"mcastsim/internal/mcast"
	"mcastsim/internal/metrics"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// randomSet draws a source and a degree-d destination set, uniform over
// nodes, source excluded.
func randomSet(r *rng.Source, numNodes, degree int) (topology.NodeID, []topology.NodeID) {
	if degree >= numNodes {
		panic(fmt.Sprintf("traffic: degree %d with %d nodes", degree, numNodes))
	}
	picks := r.Sample(numNodes, degree+1)
	src := topology.NodeID(picks[0])
	dests := make([]topology.NodeID, degree)
	for i, v := range picks[1:] {
		dests[i] = topology.NodeID(v)
	}
	return src, dests
}

// destsFrom draws a degree-d destination set excluding src.
func destsFrom(r *rng.Source, numNodes, degree int, src topology.NodeID) []topology.NodeID {
	if degree >= numNodes {
		panic(fmt.Sprintf("traffic: degree %d with %d nodes", degree, numNodes))
	}
	out := make([]topology.NodeID, 0, degree)
	for _, v := range r.Sample(numNodes-1, degree) {
		// Map [0, numNodes-1) onto node IDs skipping src.
		if topology.NodeID(v) >= src {
			v++
		}
		out = append(out, topology.NodeID(v))
	}
	return out
}

// runSingle is single mode's implementation (Run's default mode). Each
// probe runs on its own quiet network, so between probes the only live
// state is the draw RNG and the collected latencies — exactly what
// CellCheckpoint captures; WithResume re-enters the loop mid-cell with
// the same per-probe seeds and draws as the uninterrupted run.
func runSingle(rt *updown.Routing, w Workload, probes int, o *runOpts) ([]float64, error) {
	if probes <= 0 {
		return nil, fmt.Errorf("traffic: non-positive probe count")
	}
	r := rng.New(w.Seed)
	out := make([]float64, 0, probes)
	start := 0
	if o.resume != nil {
		if o.resume.NextProbe < 0 || o.resume.NextProbe > probes {
			return nil, fmt.Errorf("traffic: resume checkpoint at probe %d of %d", o.resume.NextProbe, probes)
		}
		start = o.resume.NextProbe
		r.SetState(o.resume.RNG)
		out = append(out, o.resume.Latencies...)
	}
	for i := start; i < probes; i++ {
		src, dests := randomSet(r, rt.Topo.NumNodes, w.Degree)
		plan, err := w.Scheme.Plan(rt, w.Params, src, dests, w.MsgFlits)
		if err != nil {
			return nil, fmt.Errorf("traffic: probe %d: %w", i, err)
		}
		// Mix, not add: w.Seed+uint64(i) makes probe i's arbitration
		// stream collide with the traffic stream of a cell seeded one
		// apart.
		n, err := sim.New(rt, w.Params, rng.Mix(w.Seed, 0xa2b17, uint64(i)), o.simOpts()...)
		if err != nil {
			return nil, err
		}
		m, err := n.RunSingle(plan, w.MsgFlits)
		if err != nil {
			return nil, fmt.Errorf("traffic: probe %d (%s): %w", i, w.Scheme.Name(), err)
		}
		if err := n.CheckConservation(); err != nil {
			return nil, fmt.Errorf("traffic: probe %d: %w", i, err)
		}
		n.FlushObs()
		out = append(out, float64(m.Latency()))
		if o.ckpt != nil {
			o.ckpt(CellCheckpoint{
				NextProbe: i + 1,
				RNG:       r.State(),
				Latencies: append([]float64(nil), out...),
			})
		}
	}
	return out, nil
}

// LoadConfig parameterizes an open-loop multicast load run.
type LoadConfig struct {
	Workload
	LoadSpec
}

// LoadResult is one point of a latency-vs-load curve.
type LoadResult struct {
	EffectiveLoad float64
	Latency       metrics.Summary // completed messages initiated in the window
	Initiated     int             // messages initiated in the window
	Completed     int             // of those, completed by the end of drain
	// AcceptedLoad is the measured delivery rate normalized like the
	// x-axis (payload flits delivered to hosts per node per cycle).
	AcceptedLoad float64
	// Saturated flags the point: completions fell behind initiations or
	// the queue kept growing (latency values then mean little).
	Saturated bool
}

// runLoad is load mode's implementation: a fresh network assembled with
// the run's cross-cutting options, then the shared load loop.
func runLoad(rt *updown.Routing, w Workload, spec LoadSpec, o *runOpts) (LoadResult, error) {
	n, err := sim.New(rt, w.Params, w.Seed, o.simOpts()...)
	if err != nil {
		return LoadResult{}, err
	}
	return RunLoadOn(n, rt, LoadConfig{Workload: w, LoadSpec: spec})
}

// RunLoadOn runs the load point on a caller-provided network (which must be
// fresh), so the caller can inspect the network — channel utilization,
// conservation counters — afterwards.
//
// Concurrency contract: the arrival closures below capture res, measured
// and genErr with no synchronization. That is safe because a sim.Network
// and every callback it fires are single-goroutine — the closures only run
// inside n.RunUntil on this goroutine (the Network's event-loop guard
// panics on concurrent entry). A parallel harness may therefore only
// parallelize across networks (one cell = one Network), never within one.
func RunLoadOn(n *sim.Network, rt *updown.Routing, cfg LoadConfig) (LoadResult, error) {
	if cfg.EffectiveLoad <= 0 {
		return LoadResult{}, fmt.Errorf("traffic: non-positive load")
	}
	if cfg.Warmup < 0 || cfg.Measure <= 0 || cfg.Drain < 0 {
		return LoadResult{}, fmt.Errorf("traffic: bad load windows")
	}
	numNodes := rt.Topo.NumNodes
	// Per-node message interarrival mean: raw flit rate l = E/d, message
	// rate = l / MsgFlits, so mean gap = d*MsgFlits/E cycles.
	meanGap := float64(cfg.Degree) * float64(cfg.MsgFlits) / cfg.EffectiveLoad

	genEnd := cfg.Warmup + cfg.Measure
	res := LoadResult{EffectiveLoad: cfg.EffectiveLoad}
	var measured []float64
	var genErr error
	root := rng.New(cfg.Seed ^ 0x9e3779b97f4a7c15)

	for node := 0; node < numNodes; node++ {
		node := node
		r := root.Split()
		var arrival func()
		arrival = func() {
			now := n.Now()
			if now >= genEnd || genErr != nil {
				return
			}
			dests := destsFrom(r, numNodes, cfg.Degree, topology.NodeID(node))
			plan, err := cfg.Scheme.Plan(rt, cfg.Params, topology.NodeID(node), dests, cfg.MsgFlits)
			if err != nil {
				genErr = err
				return
			}
			inWindow := now >= cfg.Warmup
			if inWindow {
				res.Initiated++
			}
			_, err = n.Send(plan, cfg.MsgFlits, now, func(m *sim.Message) {
				if inWindow {
					res.Completed++
					measured = append(measured, float64(m.Latency()))
				}
			})
			if err != nil {
				genErr = err
				return
			}
			gap := event.Time(r.Exp(meanGap)) + 1
			n.Schedule(now+gap, arrival)
		}
		first := event.Time(root.Exp(meanGap))
		n.Schedule(first, arrival)
	}

	n.RunUntil(genEnd + cfg.Drain)
	n.FlushObs()
	if genErr != nil {
		return LoadResult{}, genErr
	}
	res.Latency = metrics.Summarize(measured)
	// Completed messages were all initiated within the measure window, so
	// that window is the rate denominator (the drain only lets stragglers
	// finish).
	res.AcceptedLoad = float64(res.Completed*cfg.Degree*cfg.MsgFlits) / (float64(numNodes) * float64(cfg.Measure))
	// Saturation: a meaningful fraction of measured messages never
	// finished even after the drain window.
	res.Saturated = res.Initiated > 0 && float64(res.Completed) < 0.9*float64(res.Initiated)
	return res, nil
}

// runMixed is mixed mode's implementation: multicast probes over a
// background of uniform unicast traffic — the regime a real NOW lives
// in, where multicast competes with ordinary point-to-point messages
// rather than only with other multicasts.
func runMixed(rt *updown.Routing, w Workload, spec MixedSpec, o *runOpts) ([]float64, error) {
	if spec.Probes <= 0 || spec.ProbeGap <= 0 {
		return nil, fmt.Errorf("traffic: bad mixed probe settings")
	}
	if spec.BackgroundLoad < 0 {
		return nil, fmt.Errorf("traffic: negative background load")
	}
	n, err := sim.New(rt, w.Params, w.Seed, o.simOpts()...)
	if err != nil {
		return nil, err
	}
	numNodes := rt.Topo.NumNodes
	end := spec.Warmup + event.Time(spec.Probes+1)*spec.ProbeGap
	root := rng.New(w.Seed ^ 0xABCDEF)
	var genErr error

	// Unicast background: open loop per node.
	if spec.BackgroundLoad > 0 {
		meanGap := float64(spec.BackgroundFlits) / spec.BackgroundLoad
		for node := 0; node < numNodes; node++ {
			node := node
			r := root.Split()
			var arrival func()
			arrival = func() {
				now := n.Now()
				if now >= end || genErr != nil {
					return
				}
				dst := topology.NodeID(r.Intn(numNodes - 1))
				if int(dst) >= node {
					dst++
				}
				plan := &sim.Plan{
					Source: topology.NodeID(node),
					Dests:  []topology.NodeID{dst},
					HostSends: map[topology.NodeID][]sim.WormSpec{
						topology.NodeID(node): {{Kind: sim.WormUnicast, Dest: dst}},
					},
				}
				if _, err := n.Send(plan, spec.BackgroundFlits, now, nil); err != nil {
					genErr = err
					return
				}
				n.Schedule(now+event.Time(r.Exp(meanGap))+1, arrival)
			}
			n.Schedule(event.Time(root.Exp(meanGap)), arrival)
		}
	}

	// Multicast probes, one at a time on top of the background.
	probeRng := root.Split()
	lats := make([]float64, 0, spec.Probes)
	for i := 0; i < spec.Probes; i++ {
		i := i
		at := spec.Warmup + event.Time(i+1)*spec.ProbeGap
		n.Schedule(at, func() {
			if genErr != nil {
				return
			}
			src, dests := randomSet(probeRng, numNodes, w.Degree)
			plan, err := w.Scheme.Plan(rt, w.Params, src, dests, w.MsgFlits)
			if err != nil {
				genErr = err
				return
			}
			if _, err := n.Send(plan, w.MsgFlits, n.Now(), func(m *sim.Message) {
				lats = append(lats, float64(m.Latency()))
			}); err != nil {
				genErr = err
			}
		})
	}
	n.RunUntil(end + 200_000) // let probes finish after generation stops
	n.FlushObs()
	if genErr != nil {
		return nil, genErr
	}
	if len(lats) < spec.Probes {
		return nil, fmt.Errorf("traffic: only %d/%d probes completed (background saturated?)", len(lats), spec.Probes)
	}
	return lats, nil
}

// AsReplanner adapts a multicast scheme to the simulator's retransmission
// hook: the failed remainder is re-planned exactly like a fresh multicast,
// against whatever routing tables are in force at re-plan time.
func AsReplanner(s mcast.Scheme, p sim.Params) sim.Replanner {
	return func(rt *updown.Routing, src topology.NodeID, dests []topology.NodeID, msgFlits int) (*sim.Plan, error) {
		return s.Plan(rt, p, src, dests, msgFlits)
	}
}

// FaultProbe is one reliable multicast's outcome under faults, plus a
// post-fault steady-state measurement taken on the same (reconfigured)
// network once the dust settles.
type FaultProbe struct {
	Delivered, Total int
	Attempts         int
	// Recovery is the reliable operation's completion latency in cycles —
	// under faults, the recovery latency including timeouts and retries.
	Recovery float64
	// Partitioned reports whether reconfiguration found the surviving
	// switch graph disconnected.
	Partitioned bool
	// Post is a clean probe's latency on the post-fault network (NaN when
	// it could not be fully delivered or no probe fit the survivors);
	// PostDelivered/PostTotal give its delivery counts.
	Post                     float64
	PostDelivered, PostTotal int
}

// runFault is fault mode's implementation: each probe gets a fresh
// network, its schedule installed, one reliable multicast driven to
// completion, and then one clean follow-up multicast measuring
// post-fault steady-state latency. Conservation is not checked —
// torn-down worms legitimately drop flits.
func runFault(rt *updown.Routing, w Workload, spec FaultSpec, o *runOpts) ([]FaultProbe, error) {
	if spec.Probes <= 0 {
		return nil, fmt.Errorf("traffic: non-positive probe count")
	}
	pol := spec.Retry
	if pol == (sim.RetryPolicy{}) {
		pol = sim.DefaultRetryPolicy()
	}
	replan := AsReplanner(w.Scheme, w.Params)
	r := rng.New(w.Seed)
	out := make([]FaultProbe, 0, spec.Probes)
	for i := 0; i < spec.Probes; i++ {
		src, dests := randomSet(r, rt.Topo.NumNodes, w.Degree)
		plan, err := w.Scheme.Plan(rt, w.Params, src, dests, w.MsgFlits)
		if err != nil {
			return nil, fmt.Errorf("traffic: fault probe %d: %w", i, err)
		}
		n, err := sim.New(rt, w.Params, rng.Mix(w.Seed, 0xfa017, uint64(i)), o.simOpts()...)
		if err != nil {
			return nil, err
		}
		if spec.Faults != nil {
			if fs := spec.Faults(i, rt); fs != nil {
				if err := n.InstallFaults(fs); err != nil {
					return nil, fmt.Errorf("traffic: fault probe %d: %w", i, err)
				}
			}
		}
		d, err := n.RunReliable(plan, w.MsgFlits, replan, pol)
		if err != nil {
			return nil, fmt.Errorf("traffic: fault probe %d (%s): %w", i, w.Scheme.Name(), err)
		}
		pr := FaultProbe{
			Delivered:   d.Delivered(),
			Total:       len(d.Dests),
			Attempts:    d.Attempts,
			Recovery:    float64(d.Latency()),
			Partitioned: n.Partitioned(),
			Post:        nan(),
		}
		if post, ok := postFaultProbe(n, r, w, replan, pol); ok {
			pr.Post = post.Post
			pr.PostDelivered = post.PostDelivered
			pr.PostTotal = post.PostTotal
		}
		n.FlushObs()
		out = append(out, pr)
	}
	return out, nil
}

func nan() float64 { return math.NaN() }

// postFaultProbe runs one clean reliable multicast among surviving nodes
// on the settled post-fault network, against the reconfigured tables.
func postFaultProbe(n *sim.Network, r *rng.Source, w Workload, replan sim.Replanner, pol sim.RetryPolicy) (FaultProbe, bool) {
	var alive []topology.NodeID
	for node := 0; node < n.Topology().NumNodes; node++ {
		if n.NodeAlive(topology.NodeID(node)) {
			alive = append(alive, topology.NodeID(node))
		}
	}
	if len(alive) < w.Degree+1 {
		return FaultProbe{}, false
	}
	picks := r.Sample(len(alive), w.Degree+1)
	src := alive[picks[0]]
	dests := make([]topology.NodeID, w.Degree)
	for i, v := range picks[1:] {
		dests[i] = alive[v]
	}
	plan, err := w.Scheme.Plan(n.Routing(), w.Params, src, dests, w.MsgFlits)
	if err != nil {
		return FaultProbe{}, false
	}
	d, err := n.RunReliable(plan, w.MsgFlits, replan, pol)
	if err != nil {
		return FaultProbe{}, false
	}
	pr := FaultProbe{Post: nan(), PostDelivered: d.Delivered(), PostTotal: len(d.Dests)}
	if d.DeliveredAll() {
		pr.Post = float64(d.Latency())
	}
	return pr, true
}

// LoadSweep runs load mode across the given effective loads, stopping
// early once a point saturates (the curve past saturation is off the
// chart, as in the paper's figures). It always evaluates at least one
// point.
func LoadSweep(rt *updown.Routing, base LoadConfig, loads []float64) ([]LoadResult, error) {
	var out []LoadResult
	for _, l := range loads {
		spec := base.LoadSpec
		spec.EffectiveLoad = l
		res, err := Run(rt, base.Workload, WithLoad(spec))
		if err != nil {
			return nil, err
		}
		out = append(out, *res.Load)
		if res.Load.Saturated {
			break
		}
	}
	return out, nil
}
