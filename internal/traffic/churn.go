package traffic

import (
	"fmt"
	"sort"

	"mcastsim/internal/event"
	"mcastsim/internal/mcast/groupplan"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// Churn mode drives a dynamic multicast group (sim/group.go) through a
// seeded join/leave schedule while the source keeps multicasting to it,
// with the group's plan repaired by the scheme's groupplan.Planner on
// every delta. Each probe is one independent cell: fresh network, fresh
// group, fresh schedule. With Events == 0 the driver degenerates to
// periodic static multicasts — byte-identical TraceEvent streams to a
// plain-Send loop, which the equivalence tests pin.

// Seed salts for churn mode's derived streams. Mix, not add (the PR 2
// bug class): additive derivation makes adjacent probes' streams
// collide with cells seeded one apart.
const (
	saltChurnArb   uint64 = 0xc4a3b  // per-probe network arbitration seed
	saltChurnSched uint64 = 0xc45ced // per-probe membership schedule seed
)

// ChurnSpec selects dynamic-group churn mode (see WithChurn).
type ChurnSpec struct {
	// Probes independent churn cells are run.
	Probes int
	// Events is the number of join/leave events per probe, spread over
	// (0, Horizon]; 0 means a static group (the zero-churn baseline).
	Events int
	// Horizon is the churn-and-send window in cycles.
	Horizon event.Time
	// SendEvery is the group multicast cadence within the window; the
	// first send is at t=0.
	SendEvery event.Time
	// MinMembers floors the group size (the schedule generator forces
	// joins at the floor); 0 means 2. MaxMembers caps it; 0 means
	// numNodes-1.
	MinMembers int
	MaxMembers int
	// Faults, when non-nil, builds probe i's fault schedule (as in
	// FaultSpec.Faults), composing link/switch failures with membership
	// churn. Sends stay plain (not reliable), so lost destinations show
	// up directly in the delivery ratio.
	Faults func(probe int, rt *updown.Routing) *sim.FaultSchedule
}

// ChurnProbe is one churn cell's outcome.
type ChurnProbe struct {
	// Sent group multicasts were initiated in the window, addressed to
	// TotalDests destinations in aggregate (snapshot sizes at send time);
	// Delivered of those destination deliveries completed.
	Sent       int
	TotalDests int
	Delivered  int

	// Group race/repair accounting (see sim.Group).
	Stale  int64
	Missed int64
	Joins  int64
	Leaves int64

	// Repairs plan repairs ran, rewriting RepairEdges tree edges at a
	// summed modeled latency of RepairCycles; Rebuilds of them were full
	// regenerations (header-encoded schemes).
	Repairs      int64
	RepairEdges  int64
	RepairCycles event.Time
	Rebuilds     int64

	// FinalMembers is the membership size after the window.
	FinalMembers int

	// Post is the post-churn steady-state multicast latency on the
	// repaired plan (NaN when it did not deliver in full);
	// PostDelivered/PostTotal give its delivery counts.
	Post                     float64
	PostDelivered, PostTotal int
}

// insertNodeSorted inserts node into an ascending slice.
func insertNodeSorted(list []topology.NodeID, node topology.NodeID) []topology.NodeID {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= node })
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = node
	return list
}

// churnSchedule builds one probe's membership schedule: spec.Events
// join/leave events at seeded times in (0, Horizon], with kinds chosen
// to respect the Min/MaxMembers bounds and nodes drawn uniformly from
// the tracked member/non-member partition (the source never joins).
// The caller derives seed via rng.Mix — never seed arithmetic.
func churnSchedule(seed uint64, gid sim.GroupID, numNodes int, src topology.NodeID, initial []topology.NodeID, spec ChurnSpec) *sim.MembershipSchedule {
	ms := &sim.MembershipSchedule{}
	if spec.Events <= 0 {
		return ms
	}
	r := rng.New(seed)
	min := spec.MinMembers
	if min < 2 {
		min = 2
	}
	max := spec.MaxMembers
	if max <= 0 || max > numNodes-1 {
		max = numNodes - 1
	}
	members := append([]topology.NodeID(nil), initial...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	inGroup := make([]bool, numNodes)
	for _, m := range members {
		inGroup[m] = true
	}
	var outside []topology.NodeID
	for v := 0; v < numNodes; v++ {
		if !inGroup[v] && topology.NodeID(v) != src {
			outside = append(outside, topology.NodeID(v))
		}
	}
	times := make([]event.Time, spec.Events)
	for i := range times {
		times[i] = 1 + event.Time(r.Intn(int(spec.Horizon)))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, at := range times {
		join := false
		switch {
		case len(members) <= min:
			join = true
		case len(members) >= max:
			join = false
		default:
			join = r.Intn(2) == 0
		}
		if join && len(outside) == 0 {
			join = false
		}
		if join {
			i := r.Intn(len(outside))
			node := outside[i]
			outside = append(outside[:i], outside[i+1:]...)
			members = insertNodeSorted(members, node)
			ms.Events = append(ms.Events, sim.MembershipEvent{At: at, Group: gid, Node: node, Kind: sim.MemberJoin})
		} else {
			i := r.Intn(len(members))
			node := members[i]
			members = append(members[:i], members[i+1:]...)
			outside = insertNodeSorted(outside, node)
			ms.Events = append(ms.Events, sim.MembershipEvent{At: at, Group: gid, Node: node, Kind: sim.MemberLeave})
		}
	}
	return ms
}

// runChurn is churn mode's implementation.
func runChurn(rt *updown.Routing, w Workload, spec ChurnSpec, o *runOpts) ([]ChurnProbe, error) {
	if spec.Probes <= 0 {
		return nil, fmt.Errorf("traffic: non-positive probe count")
	}
	if spec.Horizon <= 0 || spec.SendEvery <= 0 {
		return nil, fmt.Errorf("traffic: bad churn windows")
	}
	if spec.Events < 0 {
		return nil, fmt.Errorf("traffic: negative event count")
	}
	numNodes := rt.Topo.NumNodes
	r := rng.New(w.Seed)
	out := make([]ChurnProbe, 0, spec.Probes)
	for i := 0; i < spec.Probes; i++ {
		src, members := randomSet(r, numNodes, w.Degree)
		n, err := sim.New(rt, w.Params, rng.Mix(w.Seed, saltChurnArb, uint64(i)), o.simOpts()...)
		if err != nil {
			return nil, err
		}
		g, err := n.NewGroup(fmt.Sprintf("g%d", i), members)
		if err != nil {
			return nil, fmt.Errorf("traffic: churn probe %d: %w", i, err)
		}
		if spec.Faults != nil {
			if fs := spec.Faults(i, rt); fs != nil {
				if err := n.InstallFaults(fs); err != nil {
					return nil, fmt.Errorf("traffic: churn probe %d: %w", i, err)
				}
			}
		}
		sched := churnSchedule(rng.Mix(w.Seed, saltChurnSched, uint64(i)), g.ID(), numNodes, src, members, spec)
		if err := n.InstallMembership(sched); err != nil {
			return nil, fmt.Errorf("traffic: churn probe %d: %w", i, err)
		}

		pl := groupplan.New(w.Scheme)
		plan, err := pl.Init(rt, w.Params, src, members, w.MsgFlits)
		if err != nil {
			return nil, fmt.Errorf("traffic: churn probe %d (%s): %w", i, w.Scheme.Name(), err)
		}
		var probe ChurnProbe
		var genErr error
		var planReady event.Time
		g.SetOnDelta(func(ev sim.MembershipEvent) {
			if genErr != nil {
				return
			}
			// Repairs run against the routing tables in force now — after
			// a fault reconfiguration a regenerated plan must follow the
			// swapped tables, not the originals.
			p2, cost, err := pl.Apply(n.Routing(), w.Params, ev, w.MsgFlits)
			if err != nil {
				genErr = err
				return
			}
			plan = p2
			g.NoteRepair(cost.Edges, cost.Cycles)
			probe.Repairs++
			probe.RepairEdges += int64(cost.Edges)
			probe.RepairCycles += cost.Cycles
			if cost.Rebuilt {
				probe.Rebuilds++
			}
			// The source cannot address the group until the repair lands:
			// sends queue behind the latest repair.
			if now := n.Now(); planReady < now {
				planReady = now
			}
			planReady += cost.Cycles
		})

		var sendTick func()
		sendTick = func() {
			now := n.Now()
			if genErr != nil || now > spec.Horizon {
				return
			}
			if now < planReady {
				n.Schedule(planReady, sendTick)
				return
			}
			p := plan
			probe.Sent++
			probe.TotalDests += len(p.Dests)
			if _, err := n.SendToGroup(g, p, w.MsgFlits, now, func(m *sim.Message) {
				probe.Delivered += len(m.DoneAt)
			}); err != nil {
				genErr = err
				return
			}
			if now+spec.SendEvery <= spec.Horizon {
				n.Schedule(now+spec.SendEvery, sendTick)
			}
		}
		n.Schedule(0, sendTick)

		if err := n.Drain(0); err != nil {
			return nil, fmt.Errorf("traffic: churn probe %d (%s): %w", i, w.Scheme.Name(), err)
		}
		if genErr != nil {
			return nil, fmt.Errorf("traffic: churn probe %d (%s): %w", i, w.Scheme.Name(), genErr)
		}
		if spec.Faults == nil {
			// Stale deliveries are physical deliveries; with no faults
			// injected every flit is conserved.
			if err := n.CheckConservation(); err != nil {
				return nil, fmt.Errorf("traffic: churn probe %d: %w", i, err)
			}
		}

		// Post-churn steady state: one clean multicast on the repaired
		// plan after the window drains.
		probe.Post = nan()
		at := n.Now()
		if at < planReady {
			at = planReady
		}
		if m, err := n.SendToGroup(g, plan, w.MsgFlits, at, nil); err == nil {
			if err := n.Drain(0); err != nil {
				return nil, fmt.Errorf("traffic: churn probe %d post (%s): %w", i, w.Scheme.Name(), err)
			}
			probe.PostDelivered = len(m.DoneAt)
			probe.PostTotal = len(plan.Dests)
			if m.DeliveredAll() {
				probe.Post = float64(m.Latency())
			}
		}

		probe.Stale = g.Stale()
		probe.Missed = g.Missed()
		probe.Joins = g.Joins()
		probe.Leaves = g.Leaves()
		probe.FinalMembers = g.Size()
		n.FlushObs()
		out = append(out, probe)
	}
	return out, nil
}
