package destset

import (
	"bytes"
	"testing"

	"mcastsim/internal/bitset"
)

// Large-universe coverage for the Runs representation (PR 9): at the XL
// tier every destination set in the hot path is a *Runs over a >=1M-bit
// universe, converted to and from flat bit strings at the representation
// boundary. These tests drive that boundary with the same adversarial
// patterns the bitset suite uses, pin the cross-representation contracts
// the simulator's determinism depends on (equal fingerprints, equal wire
// encodings, equal header sizes), and assert the iteration paths stay
// allocation-free.

const bigN = 1<<20 + 37

func bigPatterns(n int) map[string]*bitset.Set {
	pat := map[string]*bitset.Set{}
	empty := bitset.New(n)
	pat["empty"] = empty
	full := bitset.New(n)
	full.AddRange(0, n-1)
	pat["full"] = full
	alt := bitset.New(n)
	for i := 0; i < n; i += 2 {
		alt.Add(i)
	}
	pat["alternating"] = alt
	single := bitset.New(n)
	for i := 0; i < n; i += 97 {
		single.Add(i)
	}
	pat["single-bits"] = single
	racks := bitset.New(n)
	for base := 0; base+1024 <= n; base += 8192 {
		racks.AddRange(base, base+1023)
	}
	pat["long-runs"] = racks
	edges := bitset.New(n)
	edges.AddRange(63, 64)
	edges.AddRange(127, 192)
	edges.Add(256)
	edges.Add(319)
	edges.AddRange(n-40, n-1)
	pat["word-edges"] = edges
	return pat
}

// TestRunsBitsRoundTripMillionBit: CopyFromBits/WriteToBits is an exact
// round trip for every adversarial pattern, and the run structure
// matches the bitset's own run scan.
func TestRunsBitsRoundTripMillionBit(t *testing.T) {
	for name, s := range bigPatterns(bigN) {
		v := NewRuns(bigN)
		v.CopyFromBits(s)
		if v.Count() != s.Count() {
			t.Errorf("%s: Count %d, bitset %d", name, v.Count(), s.Count())
		}
		if v.NumRuns() != s.RunCount() {
			t.Errorf("%s: NumRuns %d, bitset RunCount %d", name, v.NumRuns(), s.RunCount())
		}
		if !v.EqualBits(s) {
			t.Errorf("%s: EqualBits false after CopyFromBits", name)
		}
		back := bitset.New(bigN)
		v.WriteToBits(back)
		if !back.Equal(s) {
			t.Errorf("%s: WriteToBits round trip diverged", name)
		}
		// Run-by-run agreement with the flat scan.
		var flat [][2]int
		s.ForEachRun(func(lo, hi int) bool { flat = append(flat, [2]int{lo, hi}); return true })
		var sparse [][2]int
		v.ForEachRun(func(lo, hi int) bool { sparse = append(sparse, [2]int{lo, hi}); return true })
		if len(flat) != len(sparse) {
			t.Fatalf("%s: %d sparse runs vs %d flat", name, len(sparse), len(flat))
		}
		for i := range flat {
			if flat[i] != sparse[i] {
				t.Fatalf("%s: run %d is %v sparse vs %v flat", name, i, sparse[i], flat[i])
			}
		}
	}
}

// TestRunsWireContractsMillionBit pins the three cross-representation
// equalities the simulator relies on for byte-identical traces and
// representation-blind route-cache keys: Runs.Fingerprint ==
// IvalFingerprintOf, Runs.HeaderBytes == IvalBytesOf, and
// Runs.AppendEncoded == AppendIvalEncoded, over every pattern.
func TestRunsWireContractsMillionBit(t *testing.T) {
	for name, s := range bigPatterns(bigN) {
		v := NewRuns(bigN)
		v.CopyFromBits(s)
		if got, want := v.Fingerprint(), IvalFingerprintOf(s); got != want {
			t.Errorf("%s: Fingerprint %x, IvalFingerprintOf %x", name, got, want)
		}
		if got, want := v.HeaderBytes(), IvalBytesOf(s); got != want {
			t.Errorf("%s: HeaderBytes %d, IvalBytesOf %d", name, got, want)
		}
		a := v.AppendEncoded(nil)
		b := AppendIvalEncoded(nil, s)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: wire encodings differ (%d vs %d bytes)", name, len(a), len(b))
		}
		if len(a) != v.HeaderBytes() {
			t.Errorf("%s: HeaderBytes %d != encoded length %d", name, v.HeaderBytes(), len(a))
		}
	}
}

// TestRunsMutateMillionBit drives Add/Remove through the adversarial
// canonicalization cases at high indices: merging three runs into one,
// splitting a long run, and peeling run endpoints — each verified
// against a flat mirror.
func TestRunsMutateMillionBit(t *testing.T) {
	v := NewRuns(bigN)
	mirror := bitset.New(bigN)
	do := func(add bool, i int) {
		if add {
			v.Add(i)
			mirror.Add(i)
		} else {
			v.Remove(i)
			mirror.Remove(i)
		}
		if v.Contains(i) != add {
			t.Fatalf("Contains(%d) = %v after %v", i, v.Contains(i), add)
		}
	}
	base := 1 << 19
	// Build two runs with a one-bit hole, then fill it: three runs merge.
	for i := base; i < base+100; i++ {
		do(true, i)
	}
	for i := base + 101; i < base+200; i++ {
		do(true, i)
	}
	do(true, base+100)
	if v.NumRuns() != 1 {
		t.Fatalf("merge left %d runs, want 1", v.NumRuns())
	}
	// Split the run in the middle, then peel both endpoints.
	do(false, base+50)
	do(false, base)
	do(false, base+199)
	// Adjacent-run formation at word boundaries near the universe edge.
	do(true, bigN-1)
	do(true, bigN-3)
	do(true, bigN-2)
	if !v.EqualBits(mirror) || v.Count() != mirror.Count() || v.NumRuns() != mirror.RunCount() {
		t.Fatalf("mutation mirror diverged: %d members in %d runs vs %d in %d",
			v.Count(), v.NumRuns(), mirror.Count(), mirror.RunCount())
	}
}

// TestRunsSetOpsMillionBit checks the planning-path set operations
// (IntersectsBits, SubsetOfBits, AndCountBits, SetToIntersection,
// DifferenceWith) against flat-set equivalents on pattern pairs.
func TestRunsSetOpsMillionBit(t *testing.T) {
	pats := bigPatterns(bigN)
	names := []string{"empty", "full", "alternating", "single-bits", "long-runs", "word-edges"}
	for _, an := range names {
		a := NewRuns(bigN)
		a.CopyFromBits(pats[an])
		for _, bn := range names {
			bbits := pats[bn]
			if got, want := a.IntersectsBits(bbits), bitset.AndCount(pats[an], bbits) > 0; got != want {
				t.Errorf("%s∩%s: IntersectsBits %v, want %v", an, bn, got, want)
			}
			if got, want := a.SubsetOfBits(bbits), pats[an].SubsetOf(bbits); got != want {
				t.Errorf("%s⊆%s: SubsetOfBits %v, want %v", an, bn, got, want)
			}
			if got, want := a.AndCountBits(bbits), bitset.AndCount(pats[an], bbits); got != want {
				t.Errorf("%s∩%s: AndCountBits %d, want %d", an, bn, got, want)
			}
			inter := NewRuns(bigN)
			inter.SetToIntersection(a, bbits)
			wantBits := bitset.And(pats[an], bbits)
			if !inter.EqualBits(wantBits) {
				t.Errorf("%s∩%s: SetToIntersection diverged (%d members, want %d)",
					an, bn, inter.Count(), wantBits.Count())
			}
			brs := NewRuns(bigN)
			brs.CopyFromBits(bbits)
			diff := NewRuns(bigN)
			diff.CopyFrom(a)
			diff.DifferenceWith(brs)
			wantDiff := bitset.AndNot(pats[an], bbits)
			if !diff.EqualBits(wantDiff) {
				t.Errorf("%s∖%s: DifferenceWith diverged (%d members, want %d)",
					an, bn, diff.Count(), wantDiff.Count())
			}
		}
	}
}

// TestRunsPoolReuseMillionBit pins the pooling discipline the simulator
// leans on: a Cleared Runs re-filled from a different pattern is
// indistinguishable from a fresh one (no stale runs, counts, or spare-
// buffer aliasing), even when the previous occupant was the worst-case
// alternating pattern.
func TestRunsPoolReuseMillionBit(t *testing.T) {
	pats := bigPatterns(bigN)
	v := NewRuns(bigN)
	v.CopyFromBits(pats["alternating"])
	v.Clear()
	if !v.Empty() || v.NumRuns() != 0 || v.Count() != 0 {
		t.Fatal("Clear left members behind")
	}
	v.CopyFromBits(pats["word-edges"])
	fresh := NewRuns(bigN)
	fresh.CopyFromBits(pats["word-edges"])
	if !v.Equal(fresh) || v.Fingerprint() != fresh.Fingerprint() {
		t.Fatal("reused Runs differs from a fresh one")
	}
	// CopyFrom must produce an independent value: mutating the copy may
	// not disturb the original (the route cache stores cloned keys).
	snap := NewRuns(bigN)
	snap.CopyFrom(v)
	v.Remove(63)
	v.Add(1 << 18)
	if !snap.Equal(fresh) {
		t.Fatal("mutating the source leaked into its CopyFrom snapshot")
	}
}

// TestRunsIterationZeroAlloc pins the allocation-free contract of the
// sparse read paths the per-branch planning loop calls.
func TestRunsIterationZeroAlloc(t *testing.T) {
	pats := bigPatterns(bigN)
	sink := 0
	for _, name := range []string{"alternating", "long-runs", "word-edges"} {
		v := NewRuns(bigN)
		v.CopyFromBits(pats[name])
		bits := pats["long-runs"]
		inter := NewRuns(bigN)
		for probe, f := range map[string]func(){
			"ForEachRun": func() {
				v.ForEachRun(func(lo, hi int) bool { sink += hi - lo; return true })
			},
			"AnyInRange":        func() { sink += boolInt(v.AnyInRange(63, 1<<19)) },
			"Contains":          func() { sink += boolInt(v.Contains(1 << 19)) },
			"Fingerprint":       func() { sink += int(v.Fingerprint()) },
			"HeaderBytes":       func() { sink += v.HeaderBytes() },
			"IntersectsBits":    func() { sink += boolInt(v.IntersectsBits(bits)) },
			"SubsetOfBits":      func() { sink += boolInt(v.SubsetOfBits(bits)) },
			"AndCountBits":      func() { sink += v.AndCountBits(bits) },
			"SetToIntersection": func() { inter.SetToIntersection(v, bits); sink += inter.Count() },
		} {
			if allocs := testing.AllocsPerRun(2, f); allocs != 0 {
				t.Errorf("%s on %s: %v allocs/op, want 0", probe, name, allocs)
			}
		}
	}
	if sink == 1<<62 {
		t.Log(sink)
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
