// Package destset abstracts the destination set a multidestination worm
// carries, so header encodings beyond the paper's flat N-bit string can be
// swapped in at datacenter scale.
//
// The paper's tree worm carries one bit per host (§3.2.3) — exact and
// cheap at N ≤ 256, but a 12.5 KB header at 100k hosts. P3FA's
// observation (Jin & Jia) is that real multicast destination sets have
// low egress diversity: members cluster under few subtrees, so a list of
// per-subtree index ranges encodes the same set in a handful of bytes.
// Two backends implement that trade:
//
//   - Flat: the existing bitset.Set bit string, byte-identical to the
//     paper's headers. Header cost is ceil(N/8) regardless of content.
//   - Ival: a canonical sorted list of maximal runs [lo, hi] of member
//     indices, wire-encoded with varints (see AppendIvalEncoded). Header
//     cost scales with the number of runs, not the universe.
//
// Hosts are numbered contiguously per edge switch by the scale
// generators (internal/topology), so "subtree" and "index range"
// coincide and rack-local groups collapse to single runs.
//
// The simulator keeps pooled bitsets internally; IvalBytesOf and
// IvalFingerprintOf compute a bitset's interval header size and
// fingerprint without materializing an Ival set, so the hot path stays
// allocation-free under either coding.
package destset

import (
	"encoding/binary"
	"fmt"
	"sort"

	"mcastsim/internal/bitset"
)

// Backend names a destination-set representation.
type Backend int

const (
	// Flat is the paper's N-bit destination string backend.
	Flat Backend = iota
	// Ival is the interval-coded (per-subtree range) backend.
	Ival
)

// String renders the backend for table notes and flags.
func (b Backend) String() string {
	switch b {
	case Flat:
		return "flat"
	case Ival:
		return "ival"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// DestSet is a mutable set of destination indices over a fixed universe
// [0, Universe()). Implementations must agree on membership semantics —
// the property tests in this package drive Flat and Ival through
// identical operation sequences and require identical observations.
type DestSet interface {
	// Universe returns the index-space size (the host count).
	Universe() int
	// Add inserts index i; panics when i is outside the universe.
	Add(i int)
	// Remove deletes index i; panics when i is outside the universe.
	Remove(i int)
	// Contains reports membership of i.
	Contains(i int) bool
	// Count returns the member count.
	Count() int
	// Empty reports whether the set has no members.
	Empty() bool
	// Indices returns the members in ascending order.
	Indices() []int
	// ForEach visits members in ascending order until fn returns false.
	ForEach(fn func(i int) bool)
	// Intersects reports whether any member is set in o (same universe).
	Intersects(o *bitset.Set) bool
	// AndCount returns how many members are set in o (same universe).
	AndCount(o *bitset.Set) int
	// Clone returns an independent copy with the same backend.
	Clone() DestSet
	// Equal reports whether o holds exactly the same members over the
	// same universe, regardless of backend.
	Equal(o DestSet) bool
	// Fingerprint returns a 64-bit digest of the encoded form. Equal
	// sets of the same backend fingerprint equal; collisions are
	// tolerated by callers (the route cache re-checks equality on hit).
	Fingerprint() uint64
	// HeaderBytes returns the wire size of the encoded set in bytes
	// (flits — a flit is one byte), excluding the worm tag.
	HeaderBytes() int
	// AppendEncoded appends the wire encoding to dst and returns it.
	AppendEncoded(dst []byte) []byte
	// Backend names the representation.
	Backend() Backend
}

// New returns an empty DestSet of the given backend and universe.
func New(b Backend, universe int) DestSet {
	switch b {
	case Flat:
		return &FlatSet{bits: bitset.New(universe)}
	case Ival:
		if universe < 0 {
			panic("destset: negative universe")
		}
		return &IvalSet{n: universe}
	default:
		panic(fmt.Sprintf("destset: unknown backend %d", int(b)))
	}
}

// FromBits returns a DestSet of the given backend holding a copy of s's
// members.
func FromBits(b Backend, s *bitset.Set) DestSet {
	switch b {
	case Flat:
		return &FlatSet{bits: s.Clone()}
	case Ival:
		iv := &IvalSet{n: s.Len()}
		s.ForEachRun(func(lo, hi int) bool {
			iv.runs = append(iv.runs, ivRun{int32(lo), int32(hi)})
			iv.count += hi - lo + 1
			return true
		})
		return iv
	default:
		panic(fmt.Sprintf("destset: unknown backend %d", int(b)))
	}
}

// FromIndices returns a DestSet of the given backend and universe with
// the listed members.
func FromIndices(b Backend, universe int, idx []int) DestSet {
	s := New(b, universe)
	for _, i := range idx {
		s.Add(i)
	}
	return s
}

// FlatSet is the bit-string backend: a thin veneer over bitset.Set whose
// wire form is the paper's N-bit destination string.
type FlatSet struct {
	bits *bitset.Set
}

// Bits exposes the underlying bitset (shared, not a copy) so the
// simulator can run its pooled bit operations directly.
func (f *FlatSet) Bits() *bitset.Set { return f.bits }

func (f *FlatSet) Universe() int               { return f.bits.Len() }
func (f *FlatSet) Add(i int)                   { f.bits.Add(i) }
func (f *FlatSet) Remove(i int)                { f.bits.Remove(i) }
func (f *FlatSet) Contains(i int) bool         { return f.bits.Contains(i) }
func (f *FlatSet) Count() int                  { return f.bits.Count() }
func (f *FlatSet) Empty() bool                 { return f.bits.Empty() }
func (f *FlatSet) Indices() []int              { return f.bits.Indices() }
func (f *FlatSet) ForEach(fn func(i int) bool) { f.bits.ForEach(fn) }

func (f *FlatSet) Intersects(o *bitset.Set) bool { return f.bits.Intersects(o) }
func (f *FlatSet) AndCount(o *bitset.Set) int    { return bitset.AndCount(f.bits, o) }

func (f *FlatSet) Clone() DestSet     { return &FlatSet{bits: f.bits.Clone()} }
func (f *FlatSet) Fingerprint() uint64 { return f.bits.Hash() }
func (f *FlatSet) HeaderBytes() int    { return f.bits.HeaderBytes() }
func (f *FlatSet) Backend() Backend    { return Flat }

func (f *FlatSet) Equal(o DestSet) bool {
	if of, ok := o.(*FlatSet); ok {
		return f.bits.Equal(of.bits)
	}
	return sameMembers(f, o)
}

// AppendEncoded appends the N-bit destination string, bit i of byte i/8
// set for member i — the body of wire.EncodeTree.
func (f *FlatSet) AppendEncoded(dst []byte) []byte {
	start := len(dst)
	dst = append(dst, make([]byte, f.bits.HeaderBytes())...)
	f.bits.ForEach(func(i int) bool {
		dst[start+i/8] |= 1 << (uint(i) % 8)
		return true
	})
	return dst
}

// ivRun is one maximal interval [lo, hi] of member indices.
type ivRun struct{ lo, hi int32 }

// IvalSet is the interval backend: a canonical (sorted, coalesced — every
// inter-run gap is at least 2) run list. Mutations keep the invariant, so
// equal sets always hold identical run slices.
type IvalSet struct {
	n     int
	runs  []ivRun
	count int
}

func (v *IvalSet) Universe() int { return v.n }
func (v *IvalSet) Count() int    { return v.count }
func (v *IvalSet) Empty() bool   { return v.count == 0 }
func (v *IvalSet) Backend() Backend { return Ival }

func (v *IvalSet) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("destset: index %d out of range [0,%d)", i, v.n))
	}
}

// search returns the index of the first run with hi >= i.
func (v *IvalSet) search(i int) int {
	return sort.Search(len(v.runs), func(j int) bool { return v.runs[j].hi >= int32(i) })
}

func (v *IvalSet) Contains(i int) bool {
	v.check(i)
	idx := v.search(i)
	return idx < len(v.runs) && v.runs[idx].lo <= int32(i)
}

func (v *IvalSet) Add(i int) {
	v.check(i)
	idx := v.search(i)
	if idx < len(v.runs) && v.runs[idx].lo <= int32(i) {
		return // already a member
	}
	// i falls strictly between runs[idx-1] and runs[idx].
	joinL := idx > 0 && v.runs[idx-1].hi == int32(i)-1
	joinR := idx < len(v.runs) && v.runs[idx].lo == int32(i)+1
	switch {
	case joinL && joinR: // bridges the two neighbors into one run
		v.runs[idx-1].hi = v.runs[idx].hi
		v.runs = append(v.runs[:idx], v.runs[idx+1:]...)
	case joinL:
		v.runs[idx-1].hi = int32(i)
	case joinR:
		v.runs[idx].lo = int32(i)
	default:
		v.runs = append(v.runs, ivRun{})
		copy(v.runs[idx+1:], v.runs[idx:])
		v.runs[idx] = ivRun{int32(i), int32(i)}
	}
	v.count++
}

func (v *IvalSet) Remove(i int) {
	v.check(i)
	idx := v.search(i)
	if idx == len(v.runs) || v.runs[idx].lo > int32(i) {
		return // not a member
	}
	r := v.runs[idx]
	switch {
	case r.lo == r.hi:
		v.runs = append(v.runs[:idx], v.runs[idx+1:]...)
	case int32(i) == r.lo:
		v.runs[idx].lo++
	case int32(i) == r.hi:
		v.runs[idx].hi--
	default: // interior removal splits the run
		v.runs = append(v.runs, ivRun{})
		copy(v.runs[idx+1:], v.runs[idx:])
		v.runs[idx].hi = int32(i) - 1
		v.runs[idx+1].lo = int32(i) + 1
	}
	v.count--
}

func (v *IvalSet) Indices() []int {
	out := make([]int, 0, v.count)
	for _, r := range v.runs {
		for i := r.lo; i <= r.hi; i++ {
			out = append(out, int(i))
		}
	}
	return out
}

func (v *IvalSet) ForEach(fn func(i int) bool) {
	for _, r := range v.runs {
		for i := r.lo; i <= r.hi; i++ {
			if !fn(int(i)) {
				return
			}
		}
	}
}

func (v *IvalSet) sameLen(o *bitset.Set) {
	if v.n != o.Len() {
		panic(fmt.Sprintf("destset: universe mismatch %d vs %d", v.n, o.Len()))
	}
}

func (v *IvalSet) Intersects(o *bitset.Set) bool {
	v.sameLen(o)
	for _, r := range v.runs {
		if o.AnyInRange(int(r.lo), int(r.hi)) {
			return true
		}
	}
	return false
}

func (v *IvalSet) AndCount(o *bitset.Set) int {
	v.sameLen(o)
	c := 0
	for _, r := range v.runs {
		c += o.CountRange(int(r.lo), int(r.hi))
	}
	return c
}

func (v *IvalSet) Clone() DestSet {
	c := &IvalSet{n: v.n, count: v.count, runs: make([]ivRun, len(v.runs))}
	copy(c.runs, v.runs)
	return c
}

func (v *IvalSet) Equal(o DestSet) bool {
	if ov, ok := o.(*IvalSet); ok {
		if v.n != ov.n || len(v.runs) != len(ov.runs) {
			return false
		}
		for i, r := range v.runs {
			if r != ov.runs[i] {
				return false
			}
		}
		return true
	}
	return sameMembers(v, o)
}

// Fingerprint hashes (universe, run list) with FNV-1a, matching
// IvalFingerprintOf over a bitset holding the same members.
func (v *IvalSet) Fingerprint() uint64 {
	h := fnvSeed(v.n)
	for _, r := range v.runs {
		h = fnvMix(h, uint64(r.lo))
		h = fnvMix(h, uint64(r.hi))
	}
	return h
}

func (v *IvalSet) HeaderBytes() int {
	b := uvarintLen(uint64(len(v.runs)))
	prevHi := int32(0)
	for i, r := range v.runs {
		if i == 0 {
			b += uvarintLen(uint64(r.lo))
		} else {
			b += uvarintLen(uint64(r.lo - prevHi - 2))
		}
		b += uvarintLen(uint64(r.hi - r.lo))
		prevHi = r.hi
	}
	return b
}

// AppendEncoded appends the run-list wire encoding:
//
//	uvarint(k)                      run count
//	run 0:   uvarint(lo) uvarint(hi-lo)
//	run j>0: uvarint(lo_j - hi_{j-1} - 2) uvarint(hi-lo)
//
// Canonical runs are separated by gaps of at least 2, so the gap field
// is biased by 2 and a value of 0 means the tightest legal spacing.
func (v *IvalSet) AppendEncoded(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v.runs)))
	prevHi := int32(0)
	for i, r := range v.runs {
		if i == 0 {
			dst = binary.AppendUvarint(dst, uint64(r.lo))
		} else {
			dst = binary.AppendUvarint(dst, uint64(r.lo-prevHi-2))
		}
		dst = binary.AppendUvarint(dst, uint64(r.hi-r.lo))
		prevHi = r.hi
	}
	return dst
}

// sameMembers compares two DestSets member-by-member (cross-backend
// Equal fallback; not on any hot path).
func sameMembers(a, b DestSet) bool {
	if a.Universe() != b.Universe() || a.Count() != b.Count() {
		return false
	}
	same := true
	a.ForEach(func(i int) bool {
		if !b.Contains(i) {
			same = false
		}
		return same
	})
	return same
}

// fnvSeed starts a FNV-1a digest mixed with the universe size.
func fnvSeed(universe int) uint64 {
	const offset64 = 14695981039346656037
	return fnvMix(offset64, uint64(universe))
}

// fnvMix folds one value into a FNV-1a digest.
func fnvMix(h, v uint64) uint64 {
	const prime64 = 1099511628211
	h ^= v
	h *= prime64
	return h
}

// uvarintLen returns the encoded size of x in bytes.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// IvalBytesOf returns the interval wire encoding's size for the members
// of s, without materializing an IvalSet. Allocation-free; the simulator
// uses it to size tree-worm headers under the interval coding.
func IvalBytesOf(s *bitset.Set) int {
	b := 0
	runs := 0
	prevHi := 0
	s.ForEachRun(func(lo, hi int) bool {
		if runs == 0 {
			b += uvarintLen(uint64(lo))
		} else {
			b += uvarintLen(uint64(lo - prevHi - 2))
		}
		b += uvarintLen(uint64(hi - lo))
		prevHi = hi
		runs++
		return true
	})
	return b + uvarintLen(uint64(runs))
}

// IvalFingerprintOf returns the fingerprint an IvalSet holding s's
// members would return, without materializing one. Allocation-free; the
// route cache keys on it when the interval coding is active.
func IvalFingerprintOf(s *bitset.Set) uint64 {
	h := fnvSeed(s.Len())
	s.ForEachRun(func(lo, hi int) bool {
		h = fnvMix(h, uint64(lo))
		h = fnvMix(h, uint64(hi))
		return true
	})
	return h
}

// AppendIvalEncoded appends the interval wire encoding of s's members to
// dst — the zero-copy analog of FromBits(Ival, s).AppendEncoded(dst).
// The leading run count comes from the branch-free word scan
// (bitset.RunCount) rather than a counting ForEachRun pass, so the set's
// words are only run-iterated once.
func AppendIvalEncoded(dst []byte, s *bitset.Set) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.RunCount()))
	prevHi := 0
	first := true
	s.ForEachRun(func(lo, hi int) bool {
		if first {
			dst = binary.AppendUvarint(dst, uint64(lo))
			first = false
		} else {
			dst = binary.AppendUvarint(dst, uint64(lo-prevHi-2))
		}
		dst = binary.AppendUvarint(dst, uint64(hi-lo))
		prevHi = hi
		return true
	})
	return dst
}

// DecodeIvalInto decodes an interval wire encoding into dst (which must
// be empty and sized to the universe), returning the number of bytes
// consumed. It rejects truncated input, out-of-range indices,
// non-canonical gaps, and trailing garbage is left to the caller (the
// byte count tells it where the encoding ended).
func DecodeIvalInto(dst *bitset.Set, b []byte) (int, error) {
	pos := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("destset: truncated or overlong varint at byte %d", pos)
		}
		pos += n
		return v, nil
	}
	k, err := next()
	if err != nil {
		return 0, err
	}
	prevHi := 0
	for j := uint64(0); j < k; j++ {
		loField, err := next()
		if err != nil {
			return 0, err
		}
		length, err := next()
		if err != nil {
			return 0, err
		}
		var lo int
		if j == 0 {
			lo = int(loField)
		} else {
			lo = prevHi + 2 + int(loField)
		}
		hi := lo + int(length)
		if lo < 0 || hi >= dst.Len() || hi < lo {
			return 0, fmt.Errorf("destset: decoded run [%d,%d] outside universe %d", lo, hi, dst.Len())
		}
		for i := lo; i <= hi; i++ {
			dst.Add(i)
		}
		prevHi = hi
	}
	return pos, nil
}
