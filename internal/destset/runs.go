package destset

import (
	"encoding/binary"
	"fmt"
	"sort"

	"mcastsim/internal/bitset"
)

// Runs is the simulator-facing mutable run-list set: the same canonical
// representation as IvalSet (sorted maximal runs [lo, hi], every inter-run
// gap at least 2) but built for pooling and in-place mutation on the hot
// planning path. Where IvalSet is the wire-format DestSet backend, Runs is
// the in-core currency: a tree worm's remaining-destination set at
// datacenter scale is a handful of rack runs, so planning operations cost
// O(runs) or O(runs x span/64) instead of O(universe/64).
//
// All operations preserve canonical form, so two Runs holding the same
// members always hold identical run slices, and Fingerprint matches
// IvalFingerprintOf over a bitset with the same members.
type Runs struct {
	n     int
	runs  []ivRun
	count int
	spare []ivRun // scratch for DifferenceWith's merge; reused across calls
}

// NewRuns returns an empty Runs over universe [0, n).
func NewRuns(n int) *Runs {
	if n < 0 {
		panic("destset: negative universe")
	}
	return &Runs{n: n}
}

// Universe returns the index-space size.
func (v *Runs) Universe() int { return v.n }

// Count returns the member count.
func (v *Runs) Count() int { return v.count }

// Empty reports whether the set has no members.
func (v *Runs) Empty() bool { return v.count == 0 }

// NumRuns returns the number of maximal runs.
func (v *Runs) NumRuns() int { return len(v.runs) }

// Clear empties the set in place, keeping capacity for reuse.
func (v *Runs) Clear() {
	v.runs = v.runs[:0]
	v.count = 0
}

func (v *Runs) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("destset: index %d out of range [0,%d)", i, v.n))
	}
}

// search returns the index of the first run with hi >= i.
func (v *Runs) search(i int) int {
	return sort.Search(len(v.runs), func(j int) bool { return v.runs[j].hi >= int32(i) })
}

// Contains reports membership of i.
func (v *Runs) Contains(i int) bool {
	v.check(i)
	idx := v.search(i)
	return idx < len(v.runs) && v.runs[idx].lo <= int32(i)
}

// Add inserts index i, coalescing with adjacent runs.
func (v *Runs) Add(i int) {
	v.check(i)
	idx := v.search(i)
	if idx < len(v.runs) && v.runs[idx].lo <= int32(i) {
		return // already a member
	}
	joinL := idx > 0 && v.runs[idx-1].hi == int32(i)-1
	joinR := idx < len(v.runs) && v.runs[idx].lo == int32(i)+1
	switch {
	case joinL && joinR:
		v.runs[idx-1].hi = v.runs[idx].hi
		v.runs = append(v.runs[:idx], v.runs[idx+1:]...)
	case joinL:
		v.runs[idx-1].hi = int32(i)
	case joinR:
		v.runs[idx].lo = int32(i)
	default:
		v.runs = append(v.runs, ivRun{})
		copy(v.runs[idx+1:], v.runs[idx:])
		v.runs[idx] = ivRun{int32(i), int32(i)}
	}
	v.count++
}

// Remove deletes index i, splitting its run if interior.
func (v *Runs) Remove(i int) {
	v.check(i)
	idx := v.search(i)
	if idx == len(v.runs) || v.runs[idx].lo > int32(i) {
		return // not a member
	}
	r := v.runs[idx]
	switch {
	case r.lo == r.hi:
		v.runs = append(v.runs[:idx], v.runs[idx+1:]...)
	case int32(i) == r.lo:
		v.runs[idx].lo++
	case int32(i) == r.hi:
		v.runs[idx].hi--
	default:
		v.runs = append(v.runs, ivRun{})
		copy(v.runs[idx+1:], v.runs[idx:])
		v.runs[idx].hi = int32(i) - 1
		v.runs[idx+1].lo = int32(i) + 1
	}
	v.count--
}

// appendRun appends [lo, hi] which must start at least 2 past the last
// run's hi (callers iterate sources in canonical ascending order, so this
// holds by construction; coalesce anyway to be safe against touching runs).
func (v *Runs) appendRun(lo, hi int32) {
	if k := len(v.runs); k > 0 && v.runs[k-1].hi >= lo-1 {
		if hi > v.runs[k-1].hi {
			v.count += int(hi - v.runs[k-1].hi)
			v.runs[k-1].hi = hi
		}
		return
	}
	v.runs = append(v.runs, ivRun{lo, hi})
	v.count += int(hi-lo) + 1
}

// CopyFrom sets v to an exact copy of o in place (same universe required).
func (v *Runs) CopyFrom(o *Runs) {
	if v.n != o.n {
		panic(fmt.Sprintf("destset: universe mismatch %d vs %d", v.n, o.n))
	}
	v.runs = append(v.runs[:0], o.runs...)
	v.count = o.count
}

// CopyFromBits sets v to the members of s in place (same universe
// required), allocating only when the run list must grow.
func (v *Runs) CopyFromBits(s *bitset.Set) {
	if v.n != s.Len() {
		panic(fmt.Sprintf("destset: universe mismatch %d vs %d", v.n, s.Len()))
	}
	v.Clear()
	s.ForEachRun(func(lo, hi int) bool {
		v.runs = append(v.runs, ivRun{int32(lo), int32(hi)})
		v.count += hi - lo + 1
		return true
	})
}

// WriteToBits materializes v's members into dst (cleared first; same
// universe required).
func (v *Runs) WriteToBits(dst *bitset.Set) {
	if v.n != dst.Len() {
		panic(fmt.Sprintf("destset: universe mismatch %d vs %d", v.n, dst.Len()))
	}
	dst.Clear()
	for _, r := range v.runs {
		dst.AddRange(int(r.lo), int(r.hi))
	}
}

// Indices returns the members in ascending order.
func (v *Runs) Indices() []int {
	out := make([]int, 0, v.count)
	for _, r := range v.runs {
		for i := r.lo; i <= r.hi; i++ {
			out = append(out, int(i))
		}
	}
	return out
}

// ForEach visits members in ascending order until fn returns false.
func (v *Runs) ForEach(fn func(i int) bool) {
	for _, r := range v.runs {
		for i := r.lo; i <= r.hi; i++ {
			if !fn(int(i)) {
				return
			}
		}
	}
}

// ForEachRun visits maximal runs in ascending order until fn returns false.
func (v *Runs) ForEachRun(fn func(lo, hi int) bool) {
	for _, r := range v.runs {
		if !fn(int(r.lo), int(r.hi)) {
			return
		}
	}
}

// AnyInRange reports whether any member falls in [lo, hi].
func (v *Runs) AnyInRange(lo, hi int) bool {
	if lo > hi {
		return false
	}
	idx := v.search(lo)
	return idx < len(v.runs) && int(v.runs[idx].lo) <= hi
}

// Equal reports whether v and o hold the same members over the same
// universe. Canonical form makes this a run-slice comparison.
func (v *Runs) Equal(o *Runs) bool {
	if v.n != o.n || len(v.runs) != len(o.runs) {
		return false
	}
	for i, r := range v.runs {
		if r != o.runs[i] {
			return false
		}
	}
	return true
}

// EqualBits reports whether v holds exactly the members of s (same
// universe required), walking s's runs without materializing anything.
func (v *Runs) EqualBits(s *bitset.Set) bool {
	if v.n != s.Len() {
		return false
	}
	i, same := 0, true
	s.ForEachRun(func(lo, hi int) bool {
		if i >= len(v.runs) || v.runs[i] != (ivRun{int32(lo), int32(hi)}) {
			same = false
			return false
		}
		i++
		return true
	})
	return same && i == len(v.runs)
}

// Fingerprint returns the same digest IvalFingerprintOf computes over a
// bitset holding v's members, so sparse and flat route-cache keys agree.
func (v *Runs) Fingerprint() uint64 {
	h := fnvSeed(v.n)
	for _, r := range v.runs {
		h = fnvMix(h, uint64(r.lo))
		h = fnvMix(h, uint64(r.hi))
	}
	return h
}

// HeaderBytes returns the interval wire encoding's size in bytes.
func (v *Runs) HeaderBytes() int {
	b := uvarintLen(uint64(len(v.runs)))
	prevHi := int32(0)
	for i, r := range v.runs {
		if i == 0 {
			b += uvarintLen(uint64(r.lo))
		} else {
			b += uvarintLen(uint64(r.lo - prevHi - 2))
		}
		b += uvarintLen(uint64(r.hi - r.lo))
		prevHi = r.hi
	}
	return b
}

// AppendEncoded appends the interval wire encoding (see
// IvalSet.AppendEncoded for the format).
func (v *Runs) AppendEncoded(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v.runs)))
	prevHi := int32(0)
	for i, r := range v.runs {
		if i == 0 {
			dst = binary.AppendUvarint(dst, uint64(r.lo))
		} else {
			dst = binary.AppendUvarint(dst, uint64(r.lo-prevHi-2))
		}
		dst = binary.AppendUvarint(dst, uint64(r.hi-r.lo))
		prevHi = r.hi
	}
	return dst
}

func (v *Runs) sameBitsLen(o *bitset.Set) {
	if v.n != o.Len() {
		panic(fmt.Sprintf("destset: universe mismatch %d vs %d", v.n, o.Len()))
	}
}

// IntersectsBits reports whether any member is set in o.
func (v *Runs) IntersectsBits(o *bitset.Set) bool {
	v.sameBitsLen(o)
	for _, r := range v.runs {
		if o.AnyInRange(int(r.lo), int(r.hi)) {
			return true
		}
	}
	return false
}

// SubsetOfBits reports whether every member is set in o — the sparse
// Covers test: O(runs x span/64) instead of a universe scan.
func (v *Runs) SubsetOfBits(o *bitset.Set) bool {
	v.sameBitsLen(o)
	for _, r := range v.runs {
		if !o.AllInRange(int(r.lo), int(r.hi)) {
			return false
		}
	}
	return true
}

// AndCountBits returns how many members are set in o.
func (v *Runs) AndCountBits(o *bitset.Set) int {
	v.sameBitsLen(o)
	c := 0
	for _, r := range v.runs {
		c += o.CountRange(int(r.lo), int(r.hi))
	}
	return c
}

// SetToIntersection sets v = src & o in place (v must not alias src):
// each run of src is clipped against o's set bits. The output is
// canonical because src's runs are separated by >= 2 and maximal sub-runs
// within one window are separated by at least one clear bit.
func (v *Runs) SetToIntersection(src *Runs, o *bitset.Set) {
	src.sameBitsLen(o)
	if v.n != src.n {
		panic(fmt.Sprintf("destset: universe mismatch %d vs %d", v.n, src.n))
	}
	v.Clear()
	for _, r := range src.runs {
		o.ForEachRunInRange(int(r.lo), int(r.hi), func(lo, hi int) bool {
			v.appendRun(int32(lo), int32(hi))
			return true
		})
	}
}

// DifferenceWith sets v = v &^ o in place with a single O(k_v + k_o)
// run merge through the spare buffer.
func (v *Runs) DifferenceWith(o *Runs) {
	if v.n != o.n {
		panic(fmt.Sprintf("destset: universe mismatch %d vs %d", v.n, o.n))
	}
	if len(o.runs) == 0 || len(v.runs) == 0 {
		return
	}
	out := v.spare[:0]
	count := 0
	oi := 0
	for _, r := range v.runs {
		lo := r.lo
		for oi < len(o.runs) && o.runs[oi].hi < lo {
			oi++
		}
		// Clip [lo, r.hi] against every o-run overlapping it. oi only
		// advances when an o-run ends before the current position, so the
		// walk is linear over both lists.
		for j := oi; j < len(o.runs) && o.runs[j].lo <= r.hi; j++ {
			if o.runs[j].lo > lo {
				out = append(out, ivRun{lo, o.runs[j].lo - 1})
				count += int(o.runs[j].lo - lo)
			}
			if o.runs[j].hi >= r.hi {
				lo = r.hi + 1
				break
			}
			lo = o.runs[j].hi + 1
		}
		if lo <= r.hi {
			out = append(out, ivRun{lo, r.hi})
			count += int(r.hi-lo) + 1
		}
	}
	v.spare = v.runs[:0]
	v.runs = out
	v.count = count
}
