package destset

import (
	"math/rand"
	"reflect"
	"testing"

	"mcastsim/internal/bitset"
)

// TestPropertyBackendsEquivalent drives Flat and Ival backends through
// identical random Add/Remove sequences over random universes and
// requires every observation (Contains, Count, Indices, Intersects,
// AndCount, HeaderBytes consistency with AppendEncoded, Fingerprint
// stability) to agree — the ISSUE's semantic-equivalence property test.
func TestPropertyBackendsEquivalent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		universe := 1 + r.Intn(700)
		flat := New(Flat, universe)
		ival := New(Ival, universe)
		ref := bitset.New(universe) // independent oracle

		ops := 1 + r.Intn(300)
		for op := 0; op < ops; op++ {
			i := r.Intn(universe)
			if r.Intn(3) == 0 {
				flat.Remove(i)
				ival.Remove(i)
				ref.Remove(i)
			} else {
				flat.Add(i)
				ival.Add(i)
				ref.Add(i)
			}
		}

		if flat.Count() != ref.Count() || ival.Count() != ref.Count() {
			t.Fatalf("trial %d: counts flat=%d ival=%d ref=%d", trial, flat.Count(), ival.Count(), ref.Count())
		}
		if flat.Empty() != ref.Empty() || ival.Empty() != ref.Empty() {
			t.Fatalf("trial %d: Empty disagrees", trial)
		}
		for probe := 0; probe < 32; probe++ {
			i := r.Intn(universe)
			if flat.Contains(i) != ref.Contains(i) || ival.Contains(i) != ref.Contains(i) {
				t.Fatalf("trial %d: Contains(%d) disagrees", trial, i)
			}
		}
		if !reflect.DeepEqual(flat.Indices(), ival.Indices()) {
			t.Fatalf("trial %d: Indices disagree:\nflat %v\nival %v", trial, flat.Indices(), ival.Indices())
		}
		if !flat.Equal(ival) || !ival.Equal(flat) {
			t.Fatalf("trial %d: cross-backend Equal is false for equal sets", trial)
		}

		// Intersects/AndCount against a random mask.
		mask := bitset.New(universe)
		for j := 0; j < universe/3+1; j++ {
			mask.Add(r.Intn(universe))
		}
		if flat.Intersects(mask) != ival.Intersects(mask) {
			t.Fatalf("trial %d: Intersects disagrees", trial)
		}
		if a, b := flat.AndCount(mask), ival.AndCount(mask); a != b {
			t.Fatalf("trial %d: AndCount flat=%d ival=%d", trial, a, b)
		}

		// Encoded-size accounting and the zero-alloc bitset mirrors.
		for _, s := range []DestSet{flat, ival} {
			if got := len(s.AppendEncoded(nil)); got != s.HeaderBytes() {
				t.Fatalf("trial %d: %v encoded %d bytes, HeaderBytes says %d", trial, s.Backend(), got, s.HeaderBytes())
			}
		}
		if got, want := IvalBytesOf(ref), ival.HeaderBytes(); got != want {
			t.Fatalf("trial %d: IvalBytesOf=%d, IvalSet.HeaderBytes=%d", trial, got, want)
		}
		if got, want := IvalFingerprintOf(ref), ival.Fingerprint(); got != want {
			t.Fatalf("trial %d: IvalFingerprintOf=%#x, IvalSet.Fingerprint=%#x", trial, got, want)
		}
		if got, want := AppendIvalEncoded(nil, ref), ival.AppendEncoded(nil); !bytesEq(got, want) {
			t.Fatalf("trial %d: AppendIvalEncoded %x != IvalSet encoding %x", trial, got, want)
		}

		// Round-trip the interval encoding.
		enc := ival.AppendEncoded(nil)
		back := bitset.New(universe)
		n, err := DecodeIvalInto(back, enc)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if n != len(enc) {
			t.Fatalf("trial %d: decode consumed %d of %d bytes", trial, n, len(enc))
		}
		if !back.Equal(ref) {
			t.Fatalf("trial %d: interval round-trip lost members", trial)
		}

		// Clones are independent.
		for _, s := range []DestSet{flat, ival} {
			c := s.Clone()
			if !c.Equal(s) {
				t.Fatalf("trial %d: clone not equal", trial)
			}
			c.Add(r.Intn(universe))
			c.Remove(r.Intn(universe))
			if c.Count() != s.Count() && !s.Equal(FromBits(s.Backend(), ref)) {
				t.Fatalf("trial %d: clone mutation leaked into original", trial)
			}
		}

		// FromBits/FromIndices agree with incremental construction.
		if !FromBits(Ival, ref).Equal(ival) {
			t.Fatalf("trial %d: FromBits(Ival) != incrementally built set", trial)
		}
		if !FromIndices(Ival, universe, ref.Indices()).Equal(ival) {
			t.Fatalf("trial %d: FromIndices(Ival) != incrementally built set", trial)
		}
	}
}

func bytesEq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestIvalCompression pins the headline numbers: a rack-clustered set in
// a large universe encodes orders of magnitude smaller than the flat bit
// string, and a pathological alternating set degrades gracefully.
func TestIvalCompression(t *testing.T) {
	const universe = 100_000
	s := bitset.New(universe)
	// Eight contiguous 32-host racks spread across the universe.
	for rack := 0; rack < 8; rack++ {
		base := rack * 12_000
		for i := 0; i < 32; i++ {
			s.Add(base + i)
		}
	}
	flatBytes := s.HeaderBytes()
	ivalBytes := IvalBytesOf(s)
	if flatBytes != 12500 {
		t.Fatalf("flat header = %d bytes, want 12500", flatBytes)
	}
	if ivalBytes > flatBytes/10 {
		t.Fatalf("interval header %d bytes exceeds 10%% of flat %d", ivalBytes, flatBytes)
	}
	// 8 runs: ~3 bytes of lo/gap varint + 1 byte length each, + count.
	if ivalBytes > 40 {
		t.Fatalf("interval header %d bytes for 8 runs, want <= 40", ivalBytes)
	}

	// Worst case — alternating bits — must still round-trip.
	w := bitset.New(256)
	for i := 0; i < 256; i += 2 {
		w.Add(i)
	}
	enc := AppendIvalEncoded(nil, w)
	back := bitset.New(256)
	if _, err := DecodeIvalInto(back, enc); err != nil {
		t.Fatalf("alternating decode: %v", err)
	}
	if !back.Equal(w) {
		t.Fatalf("alternating set lost in round-trip")
	}
}

// TestDecodeIvalRejects covers malformed input paths.
func TestDecodeIvalRejects(t *testing.T) {
	u := 64
	ok := FromIndices(Ival, u, []int{3, 4, 5, 20}).AppendEncoded(nil)

	// Truncation at every prefix length must error, never panic.
	for n := 0; n < len(ok); n++ {
		dst := bitset.New(u)
		if _, err := DecodeIvalInto(dst, ok[:n]); err == nil && dst.Count() == 4 {
			t.Fatalf("truncated prefix of %d bytes decoded fully", n)
		}
	}

	// A run past the universe bound errors.
	big := FromIndices(Ival, 1024, []int{1000, 1001}).AppendEncoded(nil)
	dst := bitset.New(64)
	if _, err := DecodeIvalInto(dst, big); err == nil {
		t.Fatalf("out-of-universe run decoded without error")
	}
}

// TestEmptyAndFull exercises the degenerate shapes.
func TestEmptyAndFull(t *testing.T) {
	for _, b := range []Backend{Flat, Ival} {
		empty := New(b, 100)
		if !empty.Empty() || empty.Count() != 0 || len(empty.Indices()) != 0 {
			t.Fatalf("%v: fresh set not empty", b)
		}
		full := New(b, 100)
		for i := 0; i < 100; i++ {
			full.Add(i)
		}
		if full.Count() != 100 {
			t.Fatalf("%v: full count %d", b, full.Count())
		}
	}
	// One full-universe run is the smallest possible interval header.
	full := bitset.New(100_000)
	for i := 0; i < 100_000; i++ {
		full.Add(i)
	}
	if got := IvalBytesOf(full); got > 5 {
		t.Fatalf("full-universe interval header %d bytes, want <= 5", got)
	}
	if got := IvalBytesOf(bitset.New(16)); got != 1 {
		t.Fatalf("empty interval header %d bytes, want 1", got)
	}
}

// TestForEachRun pins the bitset run iterator on word-boundary shapes.
func TestForEachRun(t *testing.T) {
	cases := []struct {
		n    int
		idx  []int
		runs [][2]int
	}{
		{10, nil, nil},
		{10, []int{0}, [][2]int{{0, 0}}},
		{10, []int{9}, [][2]int{{9, 9}}},
		{200, []int{0, 1, 2, 63, 64, 65, 127, 128, 199}, [][2]int{{0, 2}, {63, 65}, {127, 128}, {199, 199}}},
		{128, []int{62, 63, 64, 65}, [][2]int{{62, 65}}},
		{64, []int{0, 2, 4}, [][2]int{{0, 0}, {2, 2}, {4, 4}}},
	}
	for ci, c := range cases {
		s := bitset.FromIndices(c.n, c.idx)
		var got [][2]int
		s.ForEachRun(func(lo, hi int) bool {
			got = append(got, [2]int{lo, hi})
			return true
		})
		if !reflect.DeepEqual(got, c.runs) {
			t.Fatalf("case %d: runs %v, want %v", ci, got, c.runs)
		}
	}
	// Full words: 192 consecutive bits are one run.
	s := bitset.New(300)
	for i := 10; i < 202; i++ {
		s.Add(i)
	}
	count := 0
	s.ForEachRun(func(lo, hi int) bool {
		count++
		if lo != 10 || hi != 201 {
			t.Fatalf("full-word run [%d,%d], want [10,201]", lo, hi)
		}
		return true
	})
	if count != 1 {
		t.Fatalf("full-word shape yielded %d runs", count)
	}
}

// TestRangeHelpers pins AnyInRange/CountRange against brute force.
func TestRangeHelpers(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	s := bitset.New(300)
	for i := 0; i < 90; i++ {
		s.Add(r.Intn(300))
	}
	for trial := 0; trial < 500; trial++ {
		lo := r.Intn(300)
		hi := lo + r.Intn(300-lo)
		want := 0
		for i := lo; i <= hi; i++ {
			if s.Contains(i) {
				want++
			}
		}
		if got := s.CountRange(lo, hi); got != want {
			t.Fatalf("CountRange(%d,%d)=%d want %d", lo, hi, got, want)
		}
		if got := s.AnyInRange(lo, hi); got != (want > 0) {
			t.Fatalf("AnyInRange(%d,%d)=%v want %v", lo, hi, got, want > 0)
		}
	}
}
