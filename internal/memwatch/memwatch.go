// Package memwatch samples the Go heap while a measured region runs and
// reports its high-water mark. Events/sec alone cannot tell whether the
// L/XL simulation tiers actually fit in commodity RAM — a run that
// finishes fast by allocating 30 GB is a failure for this repo's
// scalability story — so peak heap joins throughput in the benchmark
// JSON and the bench gate's trajectory (PR 9).
//
// The watcher is a plain sampling goroutine over runtime.ReadMemStats.
// ReadMemStats stops the world for ~µs per call, so the default period
// (5 ms) costs well under 0.1% of a run while bounding how much of a
// short-lived allocation spike can hide between samples. The final
// reading is taken synchronously at Stop, so a monotonically growing
// phase is never under-reported by more than one period's allocation.
package memwatch

import (
	"runtime"
	"sync"
	"time"
)

// DefaultPeriod is the sampling interval used by Start.
const DefaultPeriod = 5 * time.Millisecond

// Watcher tracks the HeapAlloc high-water mark between Start and Stop.
type Watcher struct {
	period time.Duration
	stop   chan struct{}
	done   sync.WaitGroup

	mu   sync.Mutex
	peak uint64
}

// Start begins sampling at DefaultPeriod.
func Start() *Watcher { return StartPeriod(DefaultPeriod) }

// StartPeriod begins sampling every period. The first sample is taken
// synchronously so even an instantly-stopped watcher reports the live
// heap at start.
func StartPeriod(period time.Duration) *Watcher {
	if period <= 0 {
		period = DefaultPeriod
	}
	w := &Watcher{period: period, stop: make(chan struct{})}
	w.sample()
	w.done.Add(1)
	go w.loop()
	return w
}

func (w *Watcher) loop() {
	defer w.done.Done()
	t := time.NewTicker(w.period)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.sample()
		}
	}
}

func (w *Watcher) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w.mu.Lock()
	if ms.HeapAlloc > w.peak {
		w.peak = ms.HeapAlloc
	}
	w.mu.Unlock()
}

// Peak returns the highest HeapAlloc observed so far, in bytes. Safe to
// call while sampling is running.
func (w *Watcher) Peak() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.peak
}

// Stop takes a final synchronous sample, terminates the sampling
// goroutine, and returns the high-water mark in bytes. Idempotent-unsafe:
// call exactly once.
func (w *Watcher) Stop() uint64 {
	w.sample()
	close(w.stop)
	w.done.Wait()
	return w.Peak()
}
