package memwatch

import (
	"runtime"
	"testing"
	"time"
)

func TestPeakMonotone(t *testing.T) {
	w := StartPeriod(time.Millisecond)
	first := w.Peak()
	if first == 0 {
		t.Fatal("initial synchronous sample missing")
	}
	// Hold a large allocation across at least one sampling period.
	buf := make([]byte, 64<<20)
	for i := range buf {
		buf[i] = byte(i)
	}
	time.Sleep(10 * time.Millisecond)
	peak := w.Stop()
	runtime.KeepAlive(buf)
	if peak < first {
		t.Fatalf("peak %d below initial sample %d", peak, first)
	}
	if peak < 64<<20 {
		t.Fatalf("peak %d missed a held 64 MiB allocation", peak)
	}
}

func TestStopFinalSample(t *testing.T) {
	// Even with an absurdly long period, Stop's synchronous sample must
	// see allocations made after Start.
	w := StartPeriod(time.Hour)
	buf := make([]byte, 32<<20)
	for i := range buf {
		buf[i] = byte(i)
	}
	peak := w.Stop()
	runtime.KeepAlive(buf)
	if peak < 32<<20 {
		t.Fatalf("final sample missed a live 32 MiB allocation (peak %d)", peak)
	}
}
