// Package metrics provides the statistics and result-shaping utilities the
// experiment harness reports with: latency summaries, saturation
// detection, and the Series/Table structures that render the paper's
// figures as aligned text or CSV.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Summary describes a latency sample set (cycles).
type Summary struct {
	Count  int
	Mean   float64
	Median float64
	P95    float64
	Min    float64
	Max    float64
	StdDev float64
}

// Summarize computes a Summary; an empty input yields a zero Summary.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	var sum, sq float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	for _, v := range s {
		sq += (v - mean) * (v - mean)
	}
	return Summary{
		Count:  len(s),
		Mean:   mean,
		Median: quantile(s, 0.5),
		P95:    quantile(s, 0.95),
		Min:    s[0],
		Max:    s[len(s)-1],
		StdDev: math.Sqrt(sq / float64(len(s))),
	}
}

// quantile interpolates the q-quantile of sorted data.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean is a convenience over Summarize for the common case.
func Mean(samples []float64) float64 { return Summarize(samples).Mean }

// Series is one labeled curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
	// Note holds per-point annotations (e.g. "SAT" past saturation);
	// empty or shorter than X is fine.
	Note []string
}

// Table is a renderable experiment result: one figure (or panel of one).
type Table struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Render writes the table in aligned text, x values as rows and one column
// per series — the layout EXPERIMENTS.md embeds.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	// Collect the union of x values in order.
	xs := unionX(t.Series)
	cols := make([]string, 0, len(t.Series)+1)
	cols = append(cols, t.XLabel)
	for _, s := range t.Series {
		cols = append(cols, s.Label)
	}
	rows := [][]string{cols}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range t.Series {
			row = append(row, lookup(s, x))
		}
		rows = append(rows, row)
	}
	widths := make([]int, len(cols))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
		if ri == 0 {
			if _, err := fmt.Fprintln(w, strings.Repeat("-", sumWidths(widths))); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "(y: %s)\n", t.YLabel)
	return err
}

// WriteCSV emits the table with one row per (series, x, y) triple.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "title,series,%s,%s,note\n", csvEscape(t.XLabel), csvEscape(t.YLabel)); err != nil {
		return err
	}
	for _, s := range t.Series {
		for i := range s.X {
			note := ""
			if i < len(s.Note) {
				note = s.Note[i]
			}
			y := fmt.Sprintf("%v", s.Y[i])
			if math.IsNaN(s.Y[i]) {
				y = "" // no measurable value at this point
			}
			if _, err := fmt.Fprintf(w, "%s,%s,%v,%s,%s\n",
				csvEscape(t.Title), csvEscape(s.Label), s.X[i], y, csvEscape(note)); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func unionX(series []Series) []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func lookup(s Series, x float64) string {
	for i, sx := range s.X {
		if sx == x {
			// NaN marks a point with no measurable Y (e.g. a saturated load
			// point where nothing completed); render the annotation alone.
			cell := "-"
			if !math.IsNaN(s.Y[i]) {
				cell = trimFloat(s.Y[i])
			}
			if i < len(s.Note) && s.Note[i] != "" {
				cell += " " + s.Note[i]
			}
			return cell
		}
	}
	return "-"
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func sumWidths(ws []int) int {
	total := 0
	for _, w := range ws {
		total += w
	}
	return total + 2*(len(ws)-1)
}

// CrossoverX locates the first x at which series a rises above series b
// (linear interpolation between shared sample points); ok is false when
// they never cross. Used by EXPERIMENTS.md to report where scheme
// orderings flip.
func CrossoverX(a, b Series) (float64, bool) {
	n := len(a.X)
	if len(b.X) < n {
		n = len(b.X)
	}
	for i := 0; i < n; i++ {
		if a.X[i] != b.X[i] {
			return 0, false // series must share a grid
		}
	}
	// Saturated load points carry Y = NaN; every NaN comparison is false,
	// so a naive sign(d) collapses NaN to 0 and a NaN following a
	// negative gap would fabricate a (NaN, true) crossing. NaN points
	// say nothing about ordering, so skip them: track the last valid
	// (x, gap) pair and detect the sign change between valid samples only.
	prev := 0.0
	prevX := 0.0
	prevSign := 0
	havePrev := false
	for i := 0; i < n; i++ {
		d := a.Y[i] - b.Y[i]
		if math.IsNaN(d) {
			continue
		}
		sign := 0
		if d > 0 {
			sign = 1
		} else if d < 0 {
			sign = -1
		}
		if havePrev && prevSign < 0 && sign >= 0 {
			// Interpolate the crossing between the last valid x and x[i].
			dPrev := prev
			frac := -dPrev / (d - dPrev)
			return prevX + frac*(a.X[i]-prevX), true
		}
		prev, prevX, prevSign, havePrev = d, a.X[i], sign, true
	}
	return 0, false
}
