package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev %v", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.Mean != 42 || s.Median != 42 || s.P95 != 42 || s.StdDev != 0 {
		t.Fatalf("single summary %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestQuantileBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		s := Summarize(vals)
		return s.Min <= s.Median && s.Median <= s.P95 && s.P95 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func sampleTable() *Table {
	return &Table{
		Title:  "Fig X",
		XLabel: "load",
		YLabel: "latency (cycles)",
		Series: []Series{
			{Label: "tree", X: []float64{0.1, 0.2}, Y: []float64{100, 120}},
			{Label: "path", X: []float64{0.1, 0.2}, Y: []float64{150, 400}, Note: []string{"", "SAT"}},
		},
	}
}

func TestRenderContainsAllCells(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig X", "load", "tree", "path", "100", "120", "150", "400", "SAT", "latency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderMissingPoints(t *testing.T) {
	tab := &Table{
		Title: "gap", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Label: "b", X: []float64{2}, Y: []float64{99}},
		},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "-") {
		t.Fatal("missing point not rendered as -")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 { // header + 4 points
		t.Fatalf("csv lines = %d:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[4], "SAT") {
		t.Fatal("csv lost the note")
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := &Table{Title: `has,comma "q"`, XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "s", X: []float64{1}, Y: []float64{2}}}}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"has,comma ""q"""`) {
		t.Fatalf("escaping wrong: %s", buf.String())
	}
}

func TestCrossoverX(t *testing.T) {
	a := Series{X: []float64{0, 1, 2}, Y: []float64{0, 10, 30}}
	b := Series{X: []float64{0, 1, 2}, Y: []float64{5, 10, 20}}
	// a-b: -5, 0, +10: crossing between x=0 and x=1 at frac 5/5=1? a-b at
	// x=1 is 0 which counts as crossed: interpolation gives x=1.
	x, ok := CrossoverX(a, b)
	if !ok || x != 1 {
		t.Fatalf("crossover = %v,%v want 1,true", x, ok)
	}
}

func TestCrossoverNaN(t *testing.T) {
	nan := math.NaN()
	// A NaN following a negative gap must not fabricate a crossover: the
	// remaining valid points stay below, so there is none.
	a := Series{X: []float64{0, 1, 2, 3}, Y: []float64{0, nan, 2, 3}}
	b := Series{X: []float64{0, 1, 2, 3}, Y: []float64{5, 1, 6, 7}}
	if x, ok := CrossoverX(a, b); ok {
		t.Fatalf("NaN point fabricated a crossover at %v", x)
	}
	// A crossing on either side of a NaN gap is still found, and the
	// returned x is finite, interpolated between the two valid neighbors:
	// gaps -4 at x=0 and +4 at x=2 cross at x=1.
	a = Series{X: []float64{0, 1, 2}, Y: []float64{0, nan, 10}}
	b = Series{X: []float64{0, 1, 2}, Y: []float64{4, nan, 6}}
	x, ok := CrossoverX(a, b)
	if !ok || math.IsNaN(x) || x != 1 {
		t.Fatalf("crossover across NaN gap = %v,%v want 1,true", x, ok)
	}
	// All-NaN series never cross.
	a = Series{X: []float64{0, 1}, Y: []float64{nan, nan}}
	b = Series{X: []float64{0, 1}, Y: []float64{0, 1}}
	if _, ok := CrossoverX(a, b); ok {
		t.Fatal("all-NaN series reported a crossover")
	}
	// A leading NaN must not count as a previous point: the first valid
	// gap is positive, but with no preceding negative gap that is not a
	// crossing.
	a = Series{X: []float64{0, 1}, Y: []float64{nan, 5}}
	b = Series{X: []float64{0, 1}, Y: []float64{9, 1}}
	if _, ok := CrossoverX(a, b); ok {
		t.Fatal("leading NaN treated as a negative prior point")
	}
}

func TestCrossoverTieThenRise(t *testing.T) {
	// A leading tie (gap 0) then a rise is not a "rises above" crossing —
	// a never trailed b.
	a := Series{X: []float64{0, 1, 2}, Y: []float64{5, 7, 9}}
	b := Series{X: []float64{0, 1, 2}, Y: []float64{5, 6, 7}}
	if x, ok := CrossoverX(a, b); ok {
		t.Fatalf("tie-then-rise reported a crossover at %v", x)
	}
	// But trailing, then tying, does cross (at the tie point).
	a = Series{X: []float64{0, 1, 2}, Y: []float64{0, 6, 9}}
	b = Series{X: []float64{0, 1, 2}, Y: []float64{5, 6, 7}}
	x, ok := CrossoverX(a, b)
	if !ok || x != 1 {
		t.Fatalf("trail-then-tie = %v,%v want 1,true", x, ok)
	}
}

func TestCrossoverNone(t *testing.T) {
	a := Series{X: []float64{0, 1}, Y: []float64{1, 2}}
	b := Series{X: []float64{0, 1}, Y: []float64{5, 6}}
	if _, ok := CrossoverX(a, b); ok {
		t.Fatal("found crossover where none exists")
	}
}

func TestCrossoverMismatchedGrid(t *testing.T) {
	a := Series{X: []float64{0, 1}, Y: []float64{1, 2}}
	b := Series{X: []float64{0, 2}, Y: []float64{5, 0}}
	if _, ok := CrossoverX(a, b); ok {
		t.Fatal("mismatched grids must not report a crossover")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{2, 4}) != 3 {
		t.Fatal("Mean broken")
	}
}
