package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds collided %d/100 draws", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	var anyNonzero bool
	for i := 0; i < 16; i++ {
		if r.Uint64() != 0 {
			anyNonzero = true
		}
	}
	if !anyNonzero {
		t.Fatal("zero seed produced an all-zero stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s1 := r.Split()
	s2 := r.Split()
	coincide := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			coincide++
		}
	}
	if coincide > 0 {
		t.Fatalf("split streams coincided %d/100 draws", coincide)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(9).Split()
	b := New(9).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 64, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square-ish sanity: 10 buckets, 100k draws; each bucket should be
	// within 5% of expectation.
	r := New(11)
	const buckets, draws = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d: %d draws, want ~%.0f", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const mean, n = 50.0, 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp produced negative %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean) > 0.03*mean {
		t.Fatalf("Exp mean = %v, want ~%v", got, mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 5, 33} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleProperties(t *testing.T) {
	r := New(19)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSamplePanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(2,3) did not panic")
		}
	}()
	New(1).Sample(2, 3)
}

func TestSampleCoversUniverse(t *testing.T) {
	// Sampling k=n must return all of [0,n).
	s := New(23).Sample(10, 10)
	seen := make([]bool, 10)
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("Sample(10,10) missing %d", i)
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(29)
	vals := []int{1, 1, 2, 3, 5, 8, 13}
	orig := map[int]int{}
	for _, v := range vals {
		orig[v]++
	}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := map[int]int{}
	for _, v := range vals {
		got[v]++
	}
	for k, c := range orig {
		if got[k] != c {
			t.Fatalf("shuffle changed multiset: %v", vals)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
