// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the simulator.
//
// Reproducibility is a hard requirement for the experiment harness: a given
// (seed, topology index, workload) triple must produce the same network and
// the same traffic on every run, on every platform. The standard library's
// math/rand is seedable but its stream-splitting story (independent
// sub-generators for topology vs. traffic vs. scheme tie-breaking) is
// awkward, so we implement xoshiro256** seeded via splitmix64, the
// combination recommended by Blackman & Vigna. Both algorithms are public
// domain.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic xoshiro256** generator. The zero value is not
// valid; use New or Split.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, guaranteeing a
// well-mixed nonzero state for any seed, including zero.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm, src.s[i] = splitmix64(sm)
	}
	return &src
}

// Mix folds seed and any number of salts (topology index, probe index,
// variant number, ...) into one well-mixed derived seed. Every experiment
// runner derives per-run seeds through Mix rather than ad-hoc arithmetic
// like seed*911 or seed+i*7919, which collapse for seed 0 and alias across
// multipliers. Each input passes through a full splitmix64 finalization, so
// Mix(0, a) != Mix(0, b) for a != b and Mix(s, a, b) != Mix(s, b, a).
func Mix(seed uint64, salts ...uint64) uint64 {
	_, out := splitmix64(seed)
	for _, salt := range salts {
		_, s := splitmix64(salt)
		_, out = splitmix64(out ^ s)
	}
	return out
}

// splitmix64 advances the splitmix state and returns (newState, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// State returns the generator's full internal state. Together with
// SetState it gives checkpoints an exact serialized form: a Source
// restored from State resumes the identical stream, draw for draw.
func (r *Source) State() [4]uint64 {
	return r.s
}

// SetState overwrites the generator's internal state with a value
// previously obtained from State. An all-zero state is invalid for
// xoshiro256** (the stream would be constant zero), so SetState panics
// on it rather than silently producing a degenerate generator.
func (r *Source) SetState(s [4]uint64) {
	if s == [4]uint64{} {
		panic("rng: SetState with all-zero state")
	}
	r.s = s
}

// Split derives an independent generator from r. The derived stream is a
// deterministic function of r's current state, and r is advanced, so
// repeated Splits yield distinct streams. Use one Split per concern
// (topology, traffic, arbitration) so adding draws to one concern does not
// perturb the others.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, n) using Lemire's
// multiply-shift rejection method (no modulo bias).
func (r *Source) boundedUint64(n uint64) uint64 {
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given mean.
// It is used for open-loop Poisson traffic interarrival times.
func (r *Source) Exp(mean float64) float64 {
	// Inverse-CDF method. 1-Float64() is in (0,1], avoiding log(0).
	u := 1 - r.Float64()
	return -mean * math.Log(u)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct uniform values from [0, n), in random order.
// It panics if k > n or either is negative.
func (r *Source) Sample(n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("rng: invalid Sample arguments")
	}
	// Floyd's algorithm: O(k) expected time, O(k) space.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
