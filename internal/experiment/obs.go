package experiment

import (
	"sort"
	"sync"

	"mcastsim/internal/obs"
)

// ObsSink collects one obs.Bundle per simulation cell across an
// experiment run. Cells commit from worker goroutines in completion
// order; Bundles sorts by the deterministic cell label, so the exported
// series are byte-identical for every -workers value, the same
// order-stability contract the result assembly in runCells keeps.
type ObsSink struct {
	// Config parameterizes every cell recorder the sink hands out.
	Config obs.Config
	// OnAdd, when non-nil, observes every bundle as it commits — in
	// completion order, from worker goroutines (must be safe for
	// concurrent use). The serve subsystem streams telemetry live
	// through this hook; Bundles still returns the sorted total.
	OnAdd func(b obs.Bundle)

	mu      sync.Mutex
	bundles []obs.Bundle
}

// add commits one cell's bundle. Safe for concurrent use.
func (s *ObsSink) add(b obs.Bundle) {
	s.mu.Lock()
	s.bundles = append(s.bundles, b)
	s.mu.Unlock()
	if s.OnAdd != nil {
		s.OnAdd(b)
	}
}

// Bundles returns every committed bundle sorted by cell label.
func (s *ObsSink) Bundles() []obs.Bundle {
	s.mu.Lock()
	out := append([]obs.Bundle(nil), s.bundles...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Cell < out[j].Cell })
	return out
}

// cellObs hands a cell its recorder and commit hook. With observability
// off (no sink configured) the recorder is nil — traffic.WithObs(nil)
// and sim.WithObs(nil) both treat that as disabled, so call sites thread
// it through unconditionally. label must be unique across the whole run:
// it is the bundle's identity and the sort key that makes export order
// worker-count independent.
func (c Config) cellObs(label string) (*obs.Recorder, func()) {
	if c.Obs == nil {
		return nil, func() {}
	}
	r := obs.NewRecorder(c.Obs.Config)
	return r, func() { c.Obs.add(r.Bundle(label)) }
}
