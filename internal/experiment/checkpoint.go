// Experiment-level checkpointing. A Checkpointer journals every
// completed simulation cell (and, for single-probe cells, the
// probe-granular position inside an in-flight cell) to an append-only
// file, so a killed run can resume with -resume and skip all finished
// work. Cell results re-enter the aggregation pipeline exactly as the
// live run produced them (gob preserves float bits, including NaN), and
// cell seeds are pure functions of cell indices, so a resumed run's
// tables are byte-identical to an uninterrupted run's.
//
// Journal format: a sequence of length-prefixed gob records
// ([uvarint n][n bytes of gob(journalRecord)]). Each record is a
// standalone gob stream, so the journal tolerates a torn final record —
// exactly what a kill mid-write leaves behind — by ignoring it; every
// earlier record remains usable. Records are keyed by (call, cell):
// runCells invocations are sequential and deterministic within an
// experiment, so the running call counter identifies "which runCells"
// across processes without any registry of call sites.
package experiment

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mcastsim/internal/traffic"
)

// journalName is the journal file inside a checkpoint directory.
const journalName = "cells.journal"

// Record kinds. A done record supersedes any partial record for the
// same key; partial records carry a traffic.CellCheckpoint for resuming
// a single-probe cell mid-flight.
const (
	recDone uint8 = iota + 1
	recPartial
)

type cellKey struct{ Call, Cell int }

type journalRecord struct {
	Call, Cell int
	Kind       uint8
	Data       []byte
}

// Interrupted is returned by an experiment whose Checkpointer hit its
// StopAfter budget: the run stopped cleanly at a cell boundary with the
// journal intact. Re-running with the same checkpoint directory resumes
// from that point.
type Interrupted struct {
	Cells int // newly-completed cells before stopping
}

func (e *Interrupted) Error() string {
	return fmt.Sprintf("experiment: interrupted after %d newly-completed cells (journal is resumable)", e.Cells)
}

// Checkpointer journals cell completions for one experiment run. Open
// it on a directory (created if missing), thread it through
// Config.Checkpoint, and run the experiment; to resume after a kill,
// open the same directory again. A Checkpointer serves exactly one
// experiment invocation — the call counter that keys the journal resets
// only at Open.
type Checkpointer struct {
	mu      sync.Mutex
	f       *os.File
	done    map[cellKey][]byte
	partial map[cellKey][]byte
	calls   int

	stopAfter int  // >0: interrupt after that many newly-completed cells
	completed int  // newly-completed (not resumed) cells this run
	interrupt bool // Interrupt() called: stop at the next cell boundary
}

// OpenCheckpointer opens dir as a checkpoint directory, creating it if
// needed, and loads any journal a previous run left there. The loaded
// records are what resume skips; a fresh directory means a fresh run.
func OpenCheckpointer(dir string) (*Checkpointer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: checkpoint dir: %w", err)
	}
	path := filepath.Join(dir, journalName)
	c := &Checkpointer{
		done:    make(map[cellKey][]byte),
		partial: make(map[cellKey][]byte),
	}
	valid, torn := 0, false
	if prev, err := os.ReadFile(path); err == nil {
		valid = c.load(prev)
		torn = valid < len(prev)
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("experiment: checkpoint journal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiment: checkpoint journal: %w", err)
	}
	// Drop a torn tail before appending: records written after garbage
	// would be unreachable on the next replay (load stops at the first
	// undecodable frame).
	if torn {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, fmt.Errorf("experiment: checkpoint journal: %w", err)
		}
	}
	c.f = f
	return c, nil
}

// load replays a journal image into the key maps and returns the byte
// length of the valid prefix. A torn final record (truncated length or
// body, or a gob that does not decode) ends the replay — that is the
// expected state after a kill; the caller truncates it away.
func (c *Checkpointer) load(img []byte) int {
	off := 0
	for off < len(img) {
		rest := img[off:]
		n, w := binary.Uvarint(rest)
		if w <= 0 || n > uint64(len(rest)-w) {
			return off // torn tail
		}
		body := rest[w : w+int(n)]
		var rec journalRecord
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&rec); err != nil {
			return off // torn tail
		}
		off += w + int(n)
		k := cellKey{rec.Call, rec.Cell}
		switch rec.Kind {
		case recDone:
			c.done[k] = rec.Data
		case recPartial:
			c.partial[k] = rec.Data
		}
	}
	return off
}

// Close releases the journal file. Safe after a partial run; the
// journal stays resumable.
func (c *Checkpointer) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}

// StopAfter makes the run stop with an *Interrupted error once n cells
// have newly completed (resumed cells do not count) — a deterministic
// stand-in for a kill, used by the resume tests and the CLI's
// -stop-after-cells smoke hook. Zero disables the hook.
func (c *Checkpointer) StopAfter(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stopAfter = n
}

// Interrupt makes the run stop with an *Interrupted error at the next
// cell boundary regardless of any StopAfter budget: cells already
// running finish (and are journaled), cells not yet started are
// skipped. This is the drain half of the serve subsystem's graceful
// SIGTERM handling — after the run returns, the journal resumes the
// experiment exactly where the drain stopped it.
func (c *Checkpointer) Interrupt() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.interrupt = true
}

// nextCall hands out the next runCells call index.
func (c *Checkpointer) nextCall() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.calls
	c.calls++
	return n
}

// stopError returns an *Interrupted once the stop budget is exhausted,
// nil before that.
func (c *Checkpointer) stopError() *Interrupted {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.interrupt || (c.stopAfter > 0 && c.completed >= c.stopAfter) {
		return &Interrupted{Cells: c.completed}
	}
	return nil
}

// append frames and writes one record, updating the in-memory maps.
func (c *Checkpointer) append(rec journalRecord) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(rec); err != nil {
		return fmt.Errorf("experiment: checkpoint encode: %w", err)
	}
	var frame [binary.MaxVarintLen64]byte
	w := binary.PutUvarint(frame[:], uint64(body.Len()))

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return fmt.Errorf("experiment: checkpointer is closed")
	}
	if _, err := c.f.Write(append(frame[:w:w], body.Bytes()...)); err != nil {
		return fmt.Errorf("experiment: checkpoint write: %w", err)
	}
	k := cellKey{rec.Call, rec.Cell}
	switch rec.Kind {
	case recDone:
		c.done[k] = rec.Data
		c.completed++
	case recPartial:
		c.partial[k] = rec.Data
	}
	return nil
}

// ckLoad returns the journaled result for (call, cell), if any.
func ckLoad[T any](c *Checkpointer, call, cell int) (T, bool, error) {
	var v T
	c.mu.Lock()
	data, ok := c.done[cellKey{call, cell}]
	c.mu.Unlock()
	if !ok {
		return v, false, nil
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
		return v, false, fmt.Errorf("experiment: checkpoint decode (call %d, cell %d): %w", call, cell, err)
	}
	return v, true, nil
}

// ckStore journals a completed cell's result.
func ckStore[T any](c *Checkpointer, call, cell int, v T) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&v); err != nil {
		return fmt.Errorf("experiment: checkpoint encode (call %d, cell %d): %w", call, cell, err)
	}
	return c.append(journalRecord{Call: call, Cell: cell, Kind: recDone, Data: body.Bytes()})
}

// cellCtx is handed to every runCells cell callback: the cell's
// checkpoint identity, if checkpointing is on. Single-probe cells use
// trafficOpts to journal and resume probe-granular progress; all other
// cells can ignore it (they are resumed at cell granularity).
type cellCtx struct {
	ck   *Checkpointer
	call int
	cell int
}

// trafficOpts returns the probe-granular checkpoint/resume options for
// this cell: a WithCheckpoint sink that journals a partial record after
// every probe, plus a WithResume restoring the last such record if the
// previous run died inside this cell. Nil when checkpointing is off.
func (cc cellCtx) trafficOpts() []traffic.Option {
	if cc.ck == nil {
		return nil
	}
	opts := []traffic.Option{traffic.WithCheckpoint(func(cp traffic.CellCheckpoint) {
		var body bytes.Buffer
		if err := gob.NewEncoder(&body).Encode(&cp); err != nil {
			return // a lost partial only costs resume granularity
		}
		_ = cc.ck.append(journalRecord{Call: cc.call, Cell: cc.cell, Kind: recPartial, Data: body.Bytes()})
	})}
	cc.ck.mu.Lock()
	data, ok := cc.ck.partial[cellKey{cc.call, cc.cell}]
	cc.ck.mu.Unlock()
	if ok {
		var cp traffic.CellCheckpoint
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&cp); err == nil {
			opts = append(opts, traffic.WithResume(cp))
		}
	}
	return opts
}
