// Parallel cell runner. Every experiment decomposes into independent
// simulation cells — one traffic.RunSingle / RunLoad / RunMixed /
// RunFault (or collective) invocation with its own routed topology, its
// own sim.Network, and its own rng.Mix-derived seed. Cells never share a
// network (a sim.Network and its callbacks are single-goroutine; see
// sim.Network's concurrent-use guard), so they parallelize freely across
// a worker pool. Results are assembled in cell order and every cell seed
// is a pure function of the experiment's indices, which makes parallel
// output byte-identical to serial output for any worker count.
package experiment

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"mcastsim/internal/mcast"
	"mcastsim/internal/metrics"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/traffic"
	"mcastsim/internal/updown"
)

// Seed-derivation salts. Every cell seed is rng.Mix(cfg.Seed, salt,
// indices...) — one salt per cell family, so no two grids of the same
// experiment can alias, and never additive arithmetic like seed+i*7919
// (stride collisions) or seed+i (outright stream overlap for adjacent
// topologies). Traffic seeds are salted by topology index only, not by
// sweep value or scheme: every scheme and every sweep point sees the same
// multicast draws on a given topology, the paired design the serial
// harness always had. The fault sweep's salts live at its call sites
// (0xfa11 / 0x5eed, joined by probe and failure-count indices).
const (
	saltFamily uint64 = 0xfa3117e5 // per-sweep-point topology families
	saltSingle uint64 = 0x51e67e   // isolated-multicast traffic cells
	saltLoad   uint64 = 0x10adce11 // open-loop load traffic cells
	saltMixed  uint64 = 0x3a1d     // mixed multicast/unicast cells
	saltColl   uint64 = 0xc0117    // collective-operation cells
	saltArch   uint64 = 0xa2c8     // arch-comparison planning probes
)

// workerCount resolves Config.Workers: 0 (or negative) means one worker
// per available CPU.
func (c Config) workerCount() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runCells executes n independent cells across at most cfg.workerCount()
// goroutines and returns their results in cell order. On error the pool
// cancels: cells not yet started are skipped, in-flight cells finish,
// and the error of the lowest-indexed failed cell is returned (with one
// worker that is exactly the serial first error). A worker count of one
// degenerates to a plain loop, so `-workers 1` is the serial harness.
//
// When cfg.Checkpoint is set, every completed cell is journaled and
// already-journaled cells return their recorded results without
// executing — resumed output is byte-identical because cell seeds are
// pure functions of cell indices and gob round-trips are bit-exact. The
// cellCtx handed to the callback carries the cell's journal identity so
// single-probe cells can checkpoint at probe granularity (cc.trafficOpts).
func runCells[T any](cfg Config, n int, cell func(i int, cc cellCtx) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	ck := cfg.Checkpoint
	if ck != nil && cfg.Obs != nil {
		return nil, fmt.Errorf("experiment: checkpointing and telemetry are mutually exclusive (a resumed run cannot reproduce skipped cells' obs streams)")
	}
	call := 0
	if ck != nil {
		call = ck.nextCall()
	}
	var prog atomic.Int64
	runOne := func(i int) (T, error) {
		if ck != nil {
			if v, ok, err := ckLoad[T](ck, call, i); err != nil || ok {
				if err == nil && cfg.Progress != nil {
					cfg.Progress(int(prog.Add(1)), n)
				}
				return v, err
			}
			if e := ck.stopError(); e != nil {
				var zero T
				return zero, e
			}
		}
		v, err := cell(i, cellCtx{ck: ck, call: call, cell: i})
		if err == nil && ck != nil {
			err = ckStore(ck, call, i, v)
		}
		if err == nil && cfg.Progress != nil {
			cfg.Progress(int(prog.Add(1)), n)
		}
		return v, err
	}
	workers := cfg.workerCount()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := runOne(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errIdx = n
		first  error
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				v, err := runOne(i)
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if i < errIdx {
						errIdx, first = i, err
					}
					mu.Unlock()
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	return out, nil
}

// loadCurveSpec describes one latency-vs-load curve: a scheme swept over
// cfg.Loads on one routed family. ErrCtx names the curve's sweep context
// in error messages (the series label alone rarely identifies a panel).
type loadCurveSpec struct {
	Label  string
	ErrCtx string
	Scheme mcast.Scheme
	Rts    []*updown.Routing
	Params sim.Params
	Degree int
	Flits  int
}

// runLoadCurves sweeps cfg.Loads for every spec, fanning out across the
// topology family within each load point while keeping each curve's
// points strictly ordered (the saturation early-exit is sequential, as
// in the paper's sweeps). Curves advance in lockstep so independent
// curves' cells share one worker pool per load point; a curve drops out
// of the lockstep once it saturates. The returned series align with
// specs.
//
// Saturation reporting: a point where no topology completed a single
// message has no latency to plot — its Y is NaN (rendered as "-") and
// the "SAT" note stands alone, instead of the misleading latency 0 the
// old harness emitted from metrics.Mean(nil).
func runLoadCurves(cfg Config, specs []loadCurveSpec) ([]metrics.Series, error) {
	series := make([]metrics.Series, len(specs))
	done := make([]bool, len(specs))
	for i, sp := range specs {
		series[i].Label = sp.Label
	}
	for _, l := range cfg.Loads {
		type key struct{ ci, ti int }
		var keys []key
		for ci, sp := range specs {
			if done[ci] {
				continue
			}
			for ti := range sp.Rts {
				keys = append(keys, key{ci, ti})
			}
		}
		if len(keys) == 0 {
			break
		}
		res, err := runCells(cfg, len(keys), func(i int, _ cellCtx) (traffic.LoadResult, error) {
			k := keys[i]
			sp := specs[k.ci]
			rec, commit := cfg.cellObs(fmt.Sprintf("load/%s%s/l=%v/topo%03d",
				sp.Label, sp.ErrCtx, l, k.ti))
			r, err := traffic.Run(sp.Rts[k.ti], traffic.Workload{
				Scheme: sp.Scheme, Params: sp.Params, Degree: sp.Degree,
				MsgFlits: sp.Flits,
				Seed:     rng.Mix(cfg.Seed, saltLoad, uint64(k.ti)),
			}, traffic.WithLoad(traffic.LoadSpec{
				EffectiveLoad: l,
				Warmup:        cfg.Warmup, Measure: cfg.Measure, Drain: cfg.Drain,
			}), traffic.WithObs(rec), traffic.WithShards(cfg.Shards))
			if err != nil {
				return traffic.LoadResult{}, fmt.Errorf("%s%s at load %v (topology %d): %w", sp.Label, sp.ErrCtx, l, k.ti, err)
			}
			commit()
			return *r.Load, nil
		})
		if err != nil {
			return nil, err
		}
		// Group cell results per curve; keys are ordered (curve, topology),
		// so each group arrives in topology order and aggregation matches
		// the serial harness float-op for float-op.
		start := 0
		for ci, sp := range specs {
			if done[ci] {
				continue
			}
			var means []float64
			saturated := false
			for ti := range sp.Rts {
				r := res[start+ti]
				if r.Saturated {
					saturated = true
				}
				if r.Latency.Count > 0 {
					means = append(means, r.Latency.Mean)
				}
			}
			start += len(sp.Rts)
			s := &series[ci]
			s.X = append(s.X, l)
			if len(means) > 0 {
				s.Y = append(s.Y, metrics.Mean(means))
			} else {
				s.Y = append(s.Y, math.NaN())
			}
			note := ""
			if saturated {
				note = "SAT"
				done[ci] = true
			}
			s.Note = append(s.Note, note)
		}
	}
	return series, nil
}
