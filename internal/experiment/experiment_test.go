package experiment

import (
	"bytes"
	"testing"

	"mcastsim/internal/metrics"
)

// testConfig is Quick further shrunk so the full registry stays testable.
func testConfig() Config {
	cfg := Quick()
	cfg.Topologies = 2
	cfg.LoadTopologies = 1
	cfg.Probes = 4
	cfg.Warmup = 5_000
	cfg.Measure = 25_000
	cfg.Drain = 20_000
	cfg.Loads = []float64{0.1, 0.4}
	cfg.LoadDegrees = []int{8}
	return cfg
}

func series(t *testing.T, tab *metrics.Table, label string) metrics.Series {
	t.Helper()
	for _, s := range tab.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("table %q has no series %q", tab.Title, label)
	return metrics.Series{}
}

func TestFig6Trends(t *testing.T) {
	tabs, err := Fig6EffectOfR(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	ni := series(t, tab, "ni-kbinomial")
	tree := series(t, tab, "sw-tree")
	path := series(t, tab, "sw-path")
	// Tree is fastest at every R; NI improves monotonically with R and
	// gains on path.
	for i := range ni.X {
		if tree.Y[i] >= path.Y[i] || tree.Y[i] >= ni.Y[i] {
			t.Fatalf("tree not fastest at R=%v", ni.X[i])
		}
		if i > 0 && ni.Y[i] >= ni.Y[i-1] {
			t.Fatalf("NI latency not decreasing with R")
		}
	}
	gapLow := ni.Y[0] / path.Y[0]
	gapHigh := ni.Y[len(ni.Y)-1] / path.Y[len(path.Y)-1]
	if gapHigh >= gapLow {
		t.Fatalf("NI did not gain on path as R grew: %.2f -> %.2f", gapLow, gapHigh)
	}
}

func TestFig7Trends(t *testing.T) {
	tabs, err := Fig7EffectOfSwitches(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	path := series(t, tab, "sw-path")
	tree := series(t, tab, "sw-tree")
	// Path latency grows with switch count; tree stays within a small
	// factor of its 8-switch value.
	if path.Y[len(path.Y)-1] <= path.Y[0] {
		t.Fatalf("path latency did not grow with switches: %v", path.Y)
	}
	if tree.Y[len(tree.Y)-1] > 1.5*tree.Y[0] {
		t.Fatalf("tree latency not ~flat across switches: %v", tree.Y)
	}
}

func TestFig8Trends(t *testing.T) {
	tabs, err := Fig8EffectOfMessageLength(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	ni := series(t, tab, "ni-kbinomial")
	path := series(t, tab, "sw-path")
	// The paper's crossover: path beats NI at one packet, NI catches up
	// or wins by 1024 flits.
	if ni.Y[0] <= path.Y[0] {
		t.Fatalf("at 128 flits path should win: ni=%v path=%v", ni.Y[0], path.Y[0])
	}
	last := len(ni.Y) - 1
	if ni.Y[last]/path.Y[last] >= ni.Y[0]/path.Y[0] {
		t.Fatalf("NI did not gain on path with message length")
	}
}

func TestLoadExperimentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("load experiment in -short mode")
	}
	cfg := testConfig()
	tabs, err := Fig9LoadVsR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 R values x 1 degree = 3 panels, each with 3 series.
	if len(tabs) != 3 {
		t.Fatalf("panels = %d", len(tabs))
	}
	for _, tab := range tabs {
		if len(tab.Series) != 3 {
			t.Fatalf("%s: series = %d", tab.Title, len(tab.Series))
		}
		for _, s := range tab.Series {
			if len(s.X) == 0 {
				t.Fatalf("%s/%s: empty series", tab.Title, s.Label)
			}
			for i, y := range s.Y {
				if y <= 0 && (i >= len(s.Note) || s.Note[i] != "SAT") {
					t.Fatalf("%s/%s: non-positive unsaturated latency", tab.Title, s.Label)
				}
			}
		}
	}
}

func TestArchComparisonShape(t *testing.T) {
	tabs, err := ArchComparison(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	tree := series(t, tab, "sw-tree")
	path := series(t, tab, "sw-path")
	ni := series(t, tab, "ni-kbinomial")
	// Metric row 1: header flits — tree's 32-node header is 5 flits.
	if tree.Y[0] != 5 {
		t.Fatalf("tree header = %v", tree.Y[0])
	}
	// Metric row 2: switch state — only the tree scheme needs any.
	if tree.Y[1] <= 0 || path.Y[1] != 0 || ni.Y[1] != 0 {
		t.Fatalf("switch state row wrong: %v/%v/%v", tree.Y[1], path.Y[1], ni.Y[1])
	}
	// Metric row 3: worms per multicast — tree 1, NI d, path in between.
	if tree.Y[2] != 1 || ni.Y[2] != 16 {
		t.Fatalf("worm counts wrong: tree=%v ni=%v", tree.Y[2], ni.Y[2])
	}
	if path.Y[2] <= 1 || path.Y[2] >= 16 {
		t.Fatalf("path worm count %v out of (1,16)", path.Y[2])
	}
}

func TestUnicastSaturationBelow0p8(t *testing.T) {
	if testing.Short() {
		t.Skip("load experiment in -short mode")
	}
	cfg := testConfig()
	cfg.Loads = []float64{0.5, 0.8, 0.95}
	tabs, err := UnicastSaturation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	acc := series(t, tabs[0], "accepted load")
	// The paper's bound: maximum unicast throughput < ~0.8 under
	// up*/down*. Accepted load must never exceed offered, and the last
	// point must show saturation backpressure (accepted < offered).
	for i := range acc.X {
		if acc.Y[i] > acc.X[i]*1.05 {
			t.Fatalf("accepted %v exceeds offered %v", acc.Y[i], acc.X[i])
		}
	}
	last := len(acc.X) - 1
	if acc.Y[last] > 0.9 {
		t.Fatalf("unicast accepted load %v above the paper's <0.9 regime", acc.Y[last])
	}
}

func TestBaselineComparisonOrdering(t *testing.T) {
	tabs, err := BaselineComparison(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	base := series(t, tab, "sw-binomial")
	tree := series(t, tab, "sw-tree")
	for i := range base.X {
		if base.Y[i] <= tree.Y[i] {
			t.Fatalf("binomial baseline beat the tree worm at degree %v", base.X[i])
		}
	}
}

func TestAblationFPFSBeatsStoreAndForward(t *testing.T) {
	tabs, err := AblationFPFS(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	fpfs := series(t, tabs[0], "FPFS (paper)")
	sf := series(t, tabs[0], "store-and-forward")
	// Single-packet messages: identical (nothing to pipeline). Multi-
	// packet: FPFS must win, and the gap must grow with message length.
	if fpfs.Y[0] != sf.Y[0] {
		t.Fatalf("single-packet FPFS (%v) differs from S&F (%v)", fpfs.Y[0], sf.Y[0])
	}
	last := len(fpfs.Y) - 1
	if fpfs.Y[last] >= sf.Y[last] {
		t.Fatalf("FPFS (%v) not faster than S&F (%v) at %v flits", fpfs.Y[last], sf.Y[last], fpfs.X[last])
	}
	if (sf.Y[last] - fpfs.Y[last]) <= (sf.Y[1] - fpfs.Y[1]) {
		t.Fatalf("FPFS advantage did not grow with message length")
	}
}

func TestAblationOptimalKModelAccurate(t *testing.T) {
	cfg := testConfig()
	tabs, err := AblationOptimalK(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tabs {
		s := tab.Series[0]
		bestK, bestY := 0, s.Y[0]+1e18
		modelK := 0
		for i := range s.X {
			if s.Y[i] < bestY {
				bestK, bestY = int(s.X[i]), s.Y[i]
			}
			if i < len(s.Note) && s.Note[i] == "<-model" {
				modelK = int(s.X[i])
			}
		}
		if modelK == 0 {
			t.Fatalf("%s: model choice not marked", tab.Title)
		}
		// The model's k must be within one of the measured optimum, and
		// its latency within 15% of the best.
		var modelY float64
		for i := range s.X {
			if int(s.X[i]) == modelK {
				modelY = s.Y[i]
			}
		}
		if modelY > 1.15*bestY {
			t.Fatalf("%s: model k=%d latency %v vs measured best k=%d %v",
				tab.Title, modelK, modelY, bestK, bestY)
		}
	}
}

func TestAblationTreeRun(t *testing.T) {
	tabs, err := AblationTreeEarlyBranch(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 1 || len(tabs[0].Series) != 2 {
		t.Fatalf("ablation shape wrong")
	}
}

func TestAblationPathScheduleLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load ablation in -short mode")
	}
	tabs, err := AblationPathSchedule(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("want isolated + load tables, got %d", len(tabs))
	}
	// Under load, serializing every worm through the source must not beat
	// the multi-phase dispatch at the highest mutually-measured load.
	multi := series(t, tabs[1], "multi-phase (MDP-LG)")
	serial := series(t, tabs[1], "serial from source")
	n := len(multi.Y)
	if len(serial.Y) < n {
		n = len(serial.Y)
	}
	if n == 0 {
		t.Fatal("no shared load points")
	}
	// Compare at the last shared point; allow saturation notes to decide
	// ties (a saturated serial point loses by definition).
	i := n - 1
	serialSat := i < len(serial.Note) && serial.Note[i] == "SAT"
	if !serialSat && serial.Y[i] < multi.Y[i]*0.9 {
		t.Fatalf("serial dispatch (%v) clearly beat multi-phase (%v) under load", serial.Y[i], multi.Y[i])
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"oh", "size", "pkt", "arch", "unisat", "baseline",
		"ab-tree", "ab-path", "ab-buf", "ab-fpfs", "ab-k", "coll", "root", "mixed", "routing", "fault",
		"faultsweep", "churnsweep", "scalesweep"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Fatalf("registry[%d] = %q, want %q", i, reg[i].ID, id)
		}
		if reg[i].Run == nil || reg[i].Paper == "" {
			t.Fatalf("registry[%d] incomplete", i)
		}
	}
	if _, err := Lookup("fig6"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("bogus"); err == nil {
		t.Fatal("bogus id accepted")
	}
}

func TestExtHostOverheadMonotone(t *testing.T) {
	tabs, err := ExtHostOverhead(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Host-phase schemes must slow down as o_h grows; the NI scheme pays
	// o_h only at the endpoints so it grows far less.
	path := series(t, tabs[0], "sw-path")
	ni := series(t, tabs[0], "ni-kbinomial")
	last := len(path.Y) - 1
	if path.Y[last] <= path.Y[0] {
		t.Fatalf("path latency not increasing with o_h: %v", path.Y)
	}
	pathGrowth := path.Y[last] - path.Y[0]
	niGrowth := ni.Y[last] - ni.Y[0]
	if niGrowth >= pathGrowth {
		t.Fatalf("NI should be less o_h-sensitive: ni +%v vs path +%v", niGrowth, pathGrowth)
	}
}

func TestExtSystemSizeRuns(t *testing.T) {
	cfg := testConfig()
	tabs, err := ExtSystemSize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tabs[0].Series {
		if len(s.X) != 4 {
			t.Fatalf("size sweep incomplete: %v", s.X)
		}
	}
}

func TestExtPacketLengthRuns(t *testing.T) {
	tabs, err := ExtPacketLength(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs[0].Series) != 3 {
		t.Fatal("packet sweep shape wrong")
	}
}

func TestTablesRender(t *testing.T) {
	tabs, err := Fig6EffectOfR(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tabs[0].Render(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestCollectivesRun(t *testing.T) {
	tabs, err := Collectives(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Series) != 3 {
		t.Fatalf("series = %d", len(tab.Series))
	}
	tree := series(t, tab, "sw-tree")
	ni := series(t, tab, "ni-kbinomial")
	// Broadcast (op 1): the tree worm must win outright.
	if tree.Y[0] >= ni.Y[0] {
		t.Fatalf("tree broadcast (%v) not faster than NI (%v)", tree.Y[0], ni.Y[0])
	}
	// Barrier adds the scheme-independent gather: the relative gap must
	// shrink (the Amdahl dilution the experiment demonstrates).
	gapBroadcast := ni.Y[0] / tree.Y[0]
	gapBarrier := ni.Y[1] / tree.Y[1]
	if gapBarrier >= gapBroadcast {
		t.Fatalf("gather did not dilute the multicast advantage: %.2f -> %.2f", gapBroadcast, gapBarrier)
	}
}

func TestRootSelectionCenterNotWorseIsolated(t *testing.T) {
	if testing.Short() {
		t.Skip("includes a load sweep")
	}
	tabs, err := RootSelection(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 2 {
		t.Fatalf("tables = %d", len(tabs))
	}
	def := series(t, tabs[0], "default root (lowest ID)")
	cen := series(t, tabs[0], "center root")
	// Averaged over topologies, the center root should not lose by more
	// than a whisker on isolated multicasts (shorter climbs).
	last := len(def.Y) - 1
	if cen.Y[last] > def.Y[last]*1.05 {
		t.Fatalf("center root clearly worse: %v vs %v", cen.Y[last], def.Y[last])
	}
}

func TestMixedTrafficMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("mixed traffic in -short mode")
	}
	cfg := testConfig()
	tabs, err := MixedTraffic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tabs[0].Series {
		if len(s.Y) != 4 {
			t.Fatalf("%s: %d points", s.Label, len(s.Y))
		}
		// The heaviest background must cost more than the quiet network.
		if s.Y[len(s.Y)-1] <= s.Y[0] {
			t.Fatalf("%s: background had no effect: %v", s.Label, s.Y)
		}
	}
}
