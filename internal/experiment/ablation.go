package experiment

import (
	"fmt"

	"mcastsim/internal/mcast"
	"mcastsim/internal/mcast/kbinomial"
	"mcastsim/internal/mcast/pathworm"
	"mcastsim/internal/mcast/treeworm"
	"mcastsim/internal/metrics"
	"mcastsim/internal/sim"
	"mcastsim/internal/updown"
)

// Ablation experiments quantify the design choices DESIGN.md §9 calls out.

// AblationTreeEarlyBranch compares the paper's climb-then-replicate tree
// worm against the early-branching variant that peels off covered subsets
// while still climbing.
func AblationTreeEarlyBranch(cfg Config) ([]*metrics.Table, error) {
	rts, err := family(cfg.TopoCfg, cfg.Topologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tab := &metrics.Table{
		Title:  "Ablation: tree worm climb-then-branch vs early branching",
		XLabel: "multicast degree",
		YLabel: "mean single multicast latency (cycles)",
	}
	variants := []struct {
		label string
		early bool
	}{
		{"climb-then-branch (paper)", false},
		{"early branching", true},
	}
	for _, v := range variants {
		p := cfg.Params
		p.EarlyTreeBranch = v.early
		s := metrics.Series{Label: v.label}
		for _, degree := range []float64{4, 8, 16, 31} {
			mean, err := singleMean(cfg, fmt.Sprintf("ab-tree/%s/d=%d", v.label, int(degree)), rts, treeworm.New(), p, int(degree), cfg.MsgFlits)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, degree)
			s.Y = append(s.Y, mean)
		}
		tab.Series = append(tab.Series, s)
	}
	return []*metrics.Table{tab}, nil
}

// AblationPathSchedule compares MDP-LG's multi-phase dispatch (covered
// destinations become secondary sources) against the source serially
// emitting every worm — and against the coverage-greedy MDP-G planner.
// The isolated table shows the (perhaps surprising) result that serial
// dispatch is competitive when one multicast owns the network: the
// source's injection pipeline streams worms at wire rate while each relay
// phase pays a full host receive+send. Under load the picture inverts:
// serial dispatch concentrates every worm on the source's injection link
// and its region, which is exactly the contention MDP-LG's dispatch rule
// exists to avoid.
func AblationPathSchedule(cfg Config) ([]*metrics.Table, error) {
	rts, err := family(cfg.TopoCfg, cfg.Topologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		label  string
		scheme mcast.Scheme
	}{
		{"multi-phase (MDP-LG)", pathworm.New()},
		{"serial from source", pathworm.Scheme{SerialSchedule: true}},
		{"greedy cover (MDP-G)", pathworm.Scheme{Greedy: true}},
	}
	iso := &metrics.Table{
		Title:  "Ablation: path worm dispatch — isolated multicast",
		XLabel: "multicast degree",
		YLabel: "mean single multicast latency (cycles)",
	}
	for _, v := range variants {
		s := metrics.Series{Label: v.label}
		for _, degree := range []float64{4, 8, 16, 31} {
			mean, err := singleMean(cfg, fmt.Sprintf("ab-path/%s/d=%d", v.label, int(degree)), rts, v.scheme, cfg.Params, int(degree), cfg.MsgFlits)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, degree)
			s.Y = append(s.Y, mean)
		}
		iso.Series = append(iso.Series, s)
	}

	loadRts, err := family(cfg.TopoCfg, cfg.LoadTopologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	load := &metrics.Table{
		Title:  "Ablation: path worm dispatch — under 16-way multicast load",
		XLabel: "effective applied load",
		YLabel: "mean multicast latency (cycles)",
	}
	specs := make([]loadCurveSpec, len(variants))
	for i, v := range variants {
		specs[i] = loadCurveSpec{
			Label: v.label, ErrCtx: " (path dispatch ablation)",
			Scheme: v.scheme, Rts: loadRts, Params: cfg.Params, Degree: 16, Flits: cfg.MsgFlits,
		}
	}
	series, err := runLoadCurves(cfg, specs)
	if err != nil {
		return nil, err
	}
	load.Series = append(load.Series, series...)
	return []*metrics.Table{iso, load}, nil
}

// AblationFPFS quantifies the paper's §3.2.1 claim that the smart NI's
// First-Packet-First-Served forwarding is what makes the NI-based scheme
// competitive for multi-packet messages: the store-and-forward variant
// waits for the whole message at each intermediate NI, losing the
// pipeline across tree levels.
func AblationFPFS(cfg Config) ([]*metrics.Table, error) {
	rts, err := family(cfg.TopoCfg, cfg.Topologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tab := &metrics.Table{
		Title:  "Ablation: smart-NI forwarding — FPFS vs store-and-forward",
		XLabel: "message flits",
		YLabel: "mean single multicast latency (cycles)",
	}
	variants := []struct {
		label string
		sf    bool
	}{
		{"FPFS (paper)", false},
		{"store-and-forward", true},
	}
	for _, v := range variants {
		p := cfg.Params
		p.NIStoreAndForward = v.sf
		s := metrics.Series{Label: v.label}
		for _, flits := range []float64{128, 256, 512, 1024} {
			mean, err := singleMean(cfg, fmt.Sprintf("ab-fpfs/%s/f=%d", v.label, int(flits)), rts, kbinomial.New(), p, cfg.Degree, int(flits))
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, flits)
			s.Y = append(s.Y, mean)
		}
		tab.Series = append(tab.Series, s)
	}
	return []*metrics.Table{tab}, nil
}

// AblationOptimalK validates the analytic fanout model: it sweeps fixed k
// against the simulator for single- and multi-packet messages and marks
// the k the model would have chosen. The measured minimum should sit at
// or next to the model's choice.
func AblationOptimalK(cfg Config) ([]*metrics.Table, error) {
	rts, err := family(cfg.TopoCfg, cfg.Topologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var out []*metrics.Table
	for _, flits := range []int{128, 1024} {
		chosen := kbinomial.OptimalK(cfg.Params, cfg.Degree, flits)
		tab := &metrics.Table{
			Title: fmt.Sprintf("Ablation: measured latency vs fixed k (%d flits, %d-way; model picks k=%d)",
				flits, cfg.Degree, chosen),
			XLabel: "k",
			YLabel: "mean single multicast latency (cycles)",
		}
		s := metrics.Series{Label: "ni-kbinomial fixed k"}
		for k := 1; k <= 8; k++ {
			mean, err := singleMean(cfg, fmt.Sprintf("ab-k/f=%d/k=%d", flits, k), rts, kbinomial.Scheme{FixedK: k}, cfg.Params, cfg.Degree, flits)
			if err != nil {
				return nil, err
			}
			note := ""
			if k == chosen {
				note = "<-model"
			}
			s.X = append(s.X, float64(k))
			s.Y = append(s.Y, mean)
			s.Note = append(s.Note, note)
		}
		tab.Series = []metrics.Series{s}
		out = append(out, tab)
	}
	return out, nil
}

// AblationBufferSize measures sensitivity of all three schemes to the
// switch input buffer depth under load.
func AblationBufferSize(cfg Config) ([]*metrics.Table, error) {
	rts, err := family(cfg.TopoCfg, cfg.LoadTopologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return loadPanels(cfg, "Ablation: input buffer depth", []float64{4, 16, 64}, "buffer flits",
		func(v float64) ([]*updown.Routing, sim.Params, int, error) {
			p := cfg.Params
			p.BufferFlits = int(v)
			return rts, p, cfg.MsgFlits, nil
		})
}
