package experiment

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"mcastsim/internal/metrics"
	"mcastsim/internal/rng"
)

func TestRunCellsOrderStable(t *testing.T) {
	const n = 200
	out, err := runCells(Config{Workers: 8}, n, func(i int, _ cellCtx) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("len = %d", len(out))
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestRunCellsFirstError(t *testing.T) {
	boom := func(i int, _ cellCtx) (int, error) {
		if i == 3 || i == 7 {
			return 0, fmt.Errorf("cell %d failed", i)
		}
		return i, nil
	}
	// Serial: the first error in cell order, exactly.
	if _, err := runCells(Config{Workers: 1}, 10, boom); err == nil || err.Error() != "cell 3 failed" {
		t.Fatalf("serial error = %v", err)
	}
	// Parallel: some failing cell's error (the lowest-indexed one observed).
	_, err := runCells(Config{Workers: 4}, 10, boom)
	if err == nil {
		t.Fatal("parallel run swallowed the error")
	}
	if msg := err.Error(); msg != "cell 3 failed" && msg != "cell 7 failed" {
		t.Fatalf("parallel error = %q", msg)
	}
}

func TestRunCellsEdgeCases(t *testing.T) {
	if out, err := runCells(Config{Workers: 4}, 0, func(int, cellCtx) (int, error) { return 0, errors.New("never") }); err != nil || len(out) != 0 {
		t.Fatalf("empty grid: %v %v", out, err)
	}
	// workers <= 0 falls back to GOMAXPROCS.
	out, err := runCells(Config{}, 5, func(i int, _ cellCtx) (int, error) { return i, nil })
	if err != nil || len(out) != 5 {
		t.Fatalf("default workers: %v %v", out, err)
	}
}

// renderTables flattens an experiment's tables to the exact bytes the CLI
// prints, the currency of the determinism guarantee.
func renderTables(t *testing.T, tabs []*metrics.Table) string {
	t.Helper()
	var b strings.Builder
	for _, tab := range tabs {
		if err := tab.Render(&b); err != nil {
			t.Fatal(err)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// TestSameConfigTwiceIdentical: determinism requirement (a) — re-running
// the same Config reproduces the tables byte for byte.
func TestSameConfigTwiceIdentical(t *testing.T) {
	cfg := testConfig()
	a, err := Fig6EffectOfR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig6EffectOfR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if renderTables(t, a) != renderTables(t, b) {
		t.Fatal("fig6 is not reproducible for a fixed Config")
	}
}

// TestParallelWorkersMatchSerial: determinism requirement (b) — the
// worker count must not leak into results. workers=1 is the serial
// harness; workers=8 exercises real interleaving even on one CPU.
func TestParallelWorkersMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("load + fault sweeps in -short mode")
	}
	cases := []struct {
		id  string
		run Runner
	}{
		{"fig6", Fig6EffectOfR},
		{"fig9", Fig9LoadVsR},
		{"faultsweep", FaultSweep},
		{"churnsweep", ChurnSweep},
	}
	for _, c := range cases {
		c := c
		t.Run(c.id, func(t *testing.T) {
			serial := testConfig()
			serial.Workers = 1
			parallel := testConfig()
			parallel.Workers = 8
			st, err := c.run(serial)
			if err != nil {
				t.Fatal(err)
			}
			pt, err := c.run(parallel)
			if err != nil {
				t.Fatal(err)
			}
			s, p := renderTables(t, st), renderTables(t, pt)
			if s != p {
				t.Fatalf("workers=1 and workers=8 disagree:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
			}
		})
	}
}

// TestCellSeedsPairwiseDistinct: determinism requirement (c) — every
// experiment's cell grid derives pairwise-distinct seeds. The grids below
// mirror the derivations in the runners (paper-scale dimensions, both
// default seeds and a seed of 0, which the old additive/multiplicative
// arithmetic collapsed).
func TestCellSeedsPairwiseDistinct(t *testing.T) {
	cfg := Full()
	for _, seed := range []uint64{0, 1, cfg.Seed} {
		seed := seed
		grids := map[string][]uint64{}
		add := func(grid string, s uint64) { grids[grid] = append(grids[grid], s) }
		// Default-family single and load traffic cells, plus the raw seed
		// (used directly for the default topology family).
		for _, grid := range []string{"single", "load", "coll", "mixed", "fault"} {
			add(grid, seed)
		}
		for ti := 0; ti < cfg.Topologies; ti++ {
			add("single", rng.Mix(seed, saltSingle, uint64(ti)))
			add("coll", rng.Mix(seed, saltColl, uint64(ti)))
			add("mixed", rng.Mix(seed, saltMixed, uint64(ti)))
			add("fault", rng.Mix(seed, 7919, uint64(ti)))
		}
		for ti := 0; ti < cfg.LoadTopologies; ti++ {
			add("load", rng.Mix(seed, saltLoad, uint64(ti)))
		}
		// Sweep-varying families (fig7/fig10/size): family seeds must not
		// collide with each other nor with any traffic cell of the sweep.
		for _, x := range []uint64{8, 16, 32, 64, 128} {
			add("single", rng.Mix(seed, saltFamily, x))
			add("load", rng.Mix(seed, saltFamily, x))
		}
		// Fault sweep: per-(topology, failures) run seeds and
		// per-(topology, probe, failures) schedule seeds share one grid.
		for ti := 0; ti < cfg.Topologies; ti++ {
			for f := 0; f <= 2; f++ {
				add("faultsweep", rng.Mix(seed, 0xfa11, uint64(ti), uint64(f)))
				for probe := 0; probe < cfg.Probes; probe++ {
					add("faultsweep", rng.Mix(seed, 0x5eed, uint64(ti), uint64(probe), uint64(f)))
				}
			}
		}
		// Churn sweep: per-topology workload seeds plus the
		// per-(topology, probe, failures) fault-schedule seeds; the
		// workload's own derived streams (arbitration, membership
		// schedules) are covered by traffic's pairwise test.
		for ti := 0; ti < cfg.Topologies; ti++ {
			add("churnsweep", rng.Mix(seed, saltChurn, uint64(ti)))
			for f := 1; f <= 1; f++ {
				for probe := 0; probe < churnProbes(cfg); probe++ {
					add("churnsweep", rng.Mix(seed, saltChurnFault, uint64(ti), uint64(probe), uint64(f)))
				}
			}
		}
		for grid, seeds := range grids {
			seen := map[uint64]int{}
			for i, s := range seeds {
				if j, dup := seen[s]; dup {
					t.Errorf("seed=%d grid=%s: cells %d and %d collide (%#x)", seed, grid, j, i, s)
				}
				seen[s] = i
			}
		}
	}
}
