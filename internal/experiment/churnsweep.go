package experiment

import (
	"fmt"
	"math"

	"mcastsim/internal/metrics"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/traffic"
	"mcastsim/internal/updown"
)

// Churn-sweep salts (joined by topology/probe/failure indices at the
// call sites below, like the fault sweep's 0xfa11/0x5eed pair).
const (
	saltChurn      uint64 = 0xc092a // churn traffic cells (topology index only)
	saltChurnFault uint64 = 0xcf417 // per-(topology, probe, failures) fault schedules
)

// churnWindow/churnCadence fix the churn cell geometry: a 20k-cycle
// window with a group multicast every 2k cycles (~10 sends racing the
// membership stream). The churn axis is events per window.
const (
	churnWindow  = 20_000
	churnCadence = 2_000
)

// churnProbes bounds the per-cell probe count: each churn probe is a
// full 20k-cycle window with ~10 multicasts, not one isolated multicast,
// so cfg.Probes (sized for the latter) would be ~10x oversampling.
func churnProbes(cfg Config) int {
	if cfg.Probes > 4 {
		return 4
	}
	return cfg.Probes
}

// ChurnSweep measures dynamic-group robustness: membership churn rate ×
// scheme × fault schedule. A group of Degree members evolves under a
// seeded join/leave stream while the source multicasts to it on a fixed
// cadence; the scheme's group planner repairs the plan on every delta
// (incremental NI-tree splices vs switch-worm header regeneration, see
// internal/mcast/groupplan). Four axes come out: delivery ratio
// (destinations reached, with in-flight losses under composed link
// faults), tree-update latency (modeled repair cycles per membership
// event), stale-delivery rate (worms racing a leave), and post-churn
// steady-state latency (one clean multicast on the repaired tree).
func ChurnSweep(cfg Config) ([]*metrics.Table, error) {
	rts, err := family(cfg.TopoCfg, cfg.Topologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	churn := []int{0, 8, 24} // membership events per window
	failures := []int{0, 1}  // composed mid-window link failures

	delivery := &metrics.Table{
		Title:  "Churn sweep: delivery ratio under membership churn",
		XLabel: "membership events per 20k-cycle window",
		YLabel: "destination deliveries completed (%)",
	}
	repair := &metrics.Table{
		Title:  "Churn sweep: tree-update latency per membership event",
		XLabel: "membership events per 20k-cycle window",
		YLabel: "mean modeled repair latency (cycles/event)",
	}
	stale := &metrics.Table{
		Title:  "Churn sweep: stale deliveries (in-flight worms racing a leave)",
		XLabel: "membership events per 20k-cycle window",
		YLabel: "stale deliveries per 100 completed deliveries",
	}
	steady := &metrics.Table{
		Title:  "Churn sweep: post-churn steady-state multicast latency",
		XLabel: "membership events per 20k-cycle window",
		YLabel: "mean clean multicast latency on the repaired plan (cycles)",
	}

	// One cell per (scheme, churn level, failure count, topology). The
	// workload seed is salted by topology index only — every scheme,
	// churn level and failure count sees the same source/member draws on
	// a given topology, the paired design of the other sweeps. (The
	// schedule stream derives from the workload seed inside traffic, so
	// churn levels differ only in how much of it they consume.)
	schemes := compared()
	probes := churnProbes(cfg)
	type key struct{ si, ci, fi, ti int }
	var keys []key
	for si := range schemes {
		for ci := range churn {
			for fi := range failures {
				for ti := range rts {
					keys = append(keys, key{si, ci, fi, ti})
				}
			}
		}
	}
	cells, err := runCells(cfg, len(keys), func(i int, _ cellCtx) ([]traffic.ChurnProbe, error) {
		k := keys[i]
		f := failures[k.fi]
		rec, commit := cfg.cellObs(fmt.Sprintf("churnsweep/%s/e=%d/f=%d/topo%03d",
			schemes[k.si].Name(), churn[k.ci], f, k.ti))
		var faults func(int, *updown.Routing) *sim.FaultSchedule
		if f > 0 {
			faults = func(probe int, rt *updown.Routing) *sim.FaultSchedule {
				return nonPartitioningLinkFaults(rt, f,
					rng.Mix(cfg.Seed, saltChurnFault, uint64(k.ti), uint64(probe), uint64(f)))
			}
		}
		r, err := traffic.Run(rts[k.ti], traffic.Workload{
			Scheme: schemes[k.si], Params: cfg.Params, Degree: cfg.Degree,
			MsgFlits: cfg.MsgFlits,
			Seed:     rng.Mix(cfg.Seed, saltChurn, uint64(k.ti)),
		}, traffic.WithChurn(traffic.ChurnSpec{
			Probes:    probes,
			Events:    churn[k.ci],
			Horizon:   churnWindow,
			SendEvery: churnCadence,
			Faults:    faults,
		}), traffic.WithObs(rec), traffic.WithShards(cfg.Shards))
		if err != nil {
			return nil, fmt.Errorf("experiment: churnsweep %s e=%d f=%d: %w",
				schemes[k.si].Name(), churn[k.ci], f, err)
		}
		commit()
		return r.Churn, nil
	})
	if err != nil {
		return nil, err
	}

	cellAt := func(si, ci, fi, ti int) []traffic.ChurnProbe {
		return cells[((si*len(churn)+ci)*len(failures)+fi)*len(rts)+ti]
	}
	for si, sch := range schemes {
		for fi, f := range failures {
			label := sch.Name()
			if f > 0 {
				label = fmt.Sprintf("%s +%d link fault", sch.Name(), f)
			}
			dSer := metrics.Series{Label: label}
			rSer := metrics.Series{Label: label}
			tSer := metrics.Series{Label: label}
			sSer := metrics.Series{Label: label}
			for ci, e := range churn {
				var delivered, total int
				var staleN, missedN, events, repairCyc int64
				var postSum float64
				var postCount int
				for ti := range rts {
					for _, pr := range cellAt(si, ci, fi, ti) {
						delivered += pr.Delivered
						total += pr.TotalDests
						staleN += pr.Stale
						missedN += pr.Missed
						events += pr.Joins + pr.Leaves
						repairCyc += int64(pr.RepairCycles)
						if !math.IsNaN(pr.Post) {
							postSum += pr.Post
							postCount++
						}
					}
				}
				x := float64(e)
				dSer.X = append(dSer.X, x)
				dSer.Y = append(dSer.Y, 100*float64(delivered)/float64(total))
				dSer.Note = append(dSer.Note, fmt.Sprintf("%d missed", missedN))
				rSer.X = append(rSer.X, x)
				if events > 0 {
					rSer.Y = append(rSer.Y, float64(repairCyc)/float64(events))
				} else {
					rSer.Y = append(rSer.Y, 0)
				}
				tSer.X = append(tSer.X, x)
				tSer.Y = append(tSer.Y, 100*float64(staleN)/float64(delivered))
				sSer.X = append(sSer.X, x)
				if postCount > 0 {
					sSer.Y = append(sSer.Y, postSum/float64(postCount))
				} else {
					sSer.Y = append(sSer.Y, math.NaN())
				}
			}
			delivery.Series = append(delivery.Series, dSer)
			repair.Series = append(repair.Series, rSer)
			stale.Series = append(stale.Series, tSer)
			steady.Series = append(steady.Series, sSer)
		}
	}
	return []*metrics.Table{delivery, repair, stale, steady}, nil
}
