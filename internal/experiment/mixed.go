package experiment

import (
	"fmt"
	"mcastsim/internal/metrics"
	"mcastsim/internal/rng"
	"mcastsim/internal/traffic"
)

// MixedTraffic measures multicast latency over a unicast background — the
// regime a production network of workstations actually runs in (the
// paper's load experiments use pure multicast traffic; its technical
// report points at mixed traffic as follow-on work). Each curve sweeps
// the background intensity for one scheme.
func MixedTraffic(cfg Config) ([]*metrics.Table, error) {
	rts, err := family(cfg.TopoCfg, cfg.LoadTopologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tab := &metrics.Table{
		Title:  "Multicast latency over unicast background traffic (16-way)",
		XLabel: "background unicast load (flits/cycle/node)",
		YLabel: "mean multicast latency (cycles)",
	}
	// One cell per (scheme, background level, topology); the seed is
	// salted by topology index only, pairing every scheme and background
	// level on the same probe draws.
	schemes := compared()
	bgs := []float64{0, 0.05, 0.1, 0.15}
	type key struct{ si, bi, ti int }
	var keys []key
	for si := range schemes {
		for bi := range bgs {
			for ti := range rts {
				keys = append(keys, key{si, bi, ti})
			}
		}
	}
	res, err := runCells(cfg, len(keys), func(i int, _ cellCtx) ([]float64, error) {
		k := keys[i]
		rec, commit := cfg.cellObs(fmt.Sprintf("mixed/%s/bg=%v/topo%03d",
			schemes[k.si].Name(), bgs[k.bi], k.ti))
		r, err := traffic.Run(rts[k.ti], traffic.Workload{
			Scheme: schemes[k.si], Params: cfg.Params, Degree: 16, MsgFlits: cfg.MsgFlits,
			Seed: rng.Mix(cfg.Seed, saltMixed, uint64(k.ti)),
		}, traffic.WithMixed(traffic.MixedSpec{
			BackgroundLoad: bgs[k.bi], BackgroundFlits: cfg.MsgFlits,
			Probes: cfg.Probes, ProbeGap: 5_000, Warmup: cfg.Warmup,
		}), traffic.WithObs(rec), traffic.WithShards(cfg.Shards))
		if err != nil {
			return nil, err
		}
		commit()
		return r.Latencies, nil
	})
	if err != nil {
		return nil, err
	}
	for si, sch := range schemes {
		s := metrics.Series{Label: sch.Name()}
		for bi, bg := range bgs {
			var all []float64
			for ti := range rts {
				all = append(all, res[(si*len(bgs)+bi)*len(rts)+ti]...)
			}
			s.X = append(s.X, bg)
			s.Y = append(s.Y, metrics.Mean(all))
		}
		tab.Series = append(tab.Series, s)
	}
	return []*metrics.Table{tab}, nil
}
