package experiment

import (
	"mcastsim/internal/metrics"
	"mcastsim/internal/traffic"
)

// MixedTraffic measures multicast latency over a unicast background — the
// regime a production network of workstations actually runs in (the
// paper's load experiments use pure multicast traffic; its technical
// report points at mixed traffic as follow-on work). Each curve sweeps
// the background intensity for one scheme.
func MixedTraffic(cfg Config) ([]*metrics.Table, error) {
	rts, err := family(cfg.TopoCfg, cfg.LoadTopologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tab := &metrics.Table{
		Title:  "Multicast latency over unicast background traffic (16-way)",
		XLabel: "background unicast load (flits/cycle/node)",
		YLabel: "mean multicast latency (cycles)",
	}
	for _, sch := range compared() {
		s := metrics.Series{Label: sch.Name()}
		for _, bg := range []float64{0, 0.05, 0.1, 0.15} {
			var all []float64
			for i, rt := range rts {
				lats, err := traffic.RunMixed(rt, traffic.MixedConfig{
					Scheme: sch, Params: cfg.Params, Degree: 16, MsgFlits: cfg.MsgFlits,
					BackgroundLoad: bg, BackgroundFlits: cfg.MsgFlits,
					Probes: cfg.Probes, ProbeGap: 5_000, Warmup: cfg.Warmup,
					Seed: cfg.Seed + uint64(i)*53,
				})
				if err != nil {
					return nil, err
				}
				all = append(all, lats...)
			}
			s.X = append(s.X, bg)
			s.Y = append(s.Y, metrics.Mean(all))
		}
		tab.Series = append(tab.Series, s)
	}
	return []*metrics.Table{tab}, nil
}
