package experiment

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcastsim/internal/metrics"
	"mcastsim/internal/rng"
	"mcastsim/internal/traffic"
)

// resumeConfig slims testConfig for the resume matrix, which runs fig6
// repeatedly across the workers x shards grid.
func resumeConfig() Config {
	cfg := testConfig()
	cfg.Probes = 3
	return cfg
}

// runInterruptible re-runs an experiment against one checkpoint
// directory until it stops returning *Interrupted, reopening the
// journal each time exactly as a fresh process would. Returns the
// final tables and how many separate runs convergence took.
func runInterruptible(t *testing.T, cfg Config, dir string, stopAfter int, run Runner) ([]*metrics.Table, int) {
	t.Helper()
	for runs := 1; ; runs++ {
		if runs > 100 {
			t.Fatal("resume did not converge in 100 runs")
		}
		ck, err := OpenCheckpointer(dir)
		if err != nil {
			t.Fatal(err)
		}
		ck.StopAfter(stopAfter)
		cfg.Checkpoint = ck
		tabs, err := run(cfg)
		if cerr := ck.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if err == nil {
			return tabs, runs
		}
		var intr *Interrupted
		if !errors.As(err, &intr) {
			t.Fatalf("run %d: %v", runs, err)
		}
		if intr.Cells < stopAfter {
			t.Fatalf("run %d: interrupted after %d cells, budget was %d", runs, intr.Cells, stopAfter)
		}
	}
}

// TestResumeEqualsUninterrupted is the tier-1 resume property: a run
// killed and resumed any number of times renders tables byte-identical
// to an uninterrupted run, across shard and worker counts.
func TestResumeEqualsUninterrupted(t *testing.T) {
	base := resumeConfig()
	for _, shards := range []int{1, 4} {
		for _, workers := range []int{1, 8} {
			shards, workers := shards, workers
			t.Run(fmt.Sprintf("shards=%d_workers=%d", shards, workers), func(t *testing.T) {
				cfg := base
				cfg.Shards, cfg.Workers = shards, workers
				want, err := Fig6EffectOfR(cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, runs := runInterruptible(t, cfg, t.TempDir(), 5, Fig6EffectOfR)
				if runs < 2 {
					t.Fatalf("run was never interrupted (%d runs) — the stop hook is dead", runs)
				}
				if g, w := renderTables(t, got), renderTables(t, want); g != w {
					t.Fatalf("resumed tables differ from uninterrupted:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s", g, w)
				}
			})
		}
	}
}

// TestResumePartialCell plants a mid-cell (probe-granular) checkpoint —
// the state a kill between two probes leaves behind — and checks the
// resumed run still renders byte-identical tables.
func TestResumePartialCell(t *testing.T) {
	cfg := resumeConfig()
	want, err := Fig6EffectOfR(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Reconstruct fig6's cell 0 (R=0.5, first scheme, first topology)
	// and capture its per-probe checkpoints from a direct traffic run.
	rts, err := family(cfg.TopoCfg, cfg.Topologies, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	var cps []traffic.CellCheckpoint
	if _, err := traffic.Run(rts[0], traffic.Workload{
		Scheme: compared()[0], Params: cfg.Params.WithR(0.5),
		Degree: cfg.Degree, MsgFlits: cfg.MsgFlits,
		Seed: rng.Mix(cfg.Seed, saltSingle, 0),
	}, traffic.WithProbes(cfg.Probes), traffic.WithShards(cfg.Shards),
		traffic.WithCheckpoint(func(cp traffic.CellCheckpoint) { cps = append(cps, cp) })); err != nil {
		t.Fatal(err)
	}
	if len(cps) != cfg.Probes {
		t.Fatalf("captured %d checkpoints, want %d", len(cps), cfg.Probes)
	}

	dir := t.TempDir()
	ck, err := OpenCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&cps[1]); err != nil {
		t.Fatal(err)
	}
	if err := ck.append(journalRecord{Call: 0, Cell: 0, Kind: recPartial, Data: body.Bytes()}); err != nil {
		t.Fatal(err)
	}
	cfg.Checkpoint = ck
	got, err := Fig6EffectOfR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	if g, w := renderTables(t, got), renderTables(t, want); g != w {
		t.Fatalf("partial-cell resume diverged:\n--- resumed ---\n%s\n--- uninterrupted ---\n%s", g, w)
	}
}

// TestJournalTornTail: a frame header promising more bytes than follow
// (a kill mid-write) must not lose earlier records, and — because open
// truncates the tear — records appended afterwards must survive the
// next replay too.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	ck, err := OpenCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckStore(ck, 0, 0, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := ckStore(ck, 0, 1, []float64{3}); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, journalName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// uvarint length 256 followed by only two bytes of body.
	if _, err := f.Write([]byte{0x80, 0x02, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	for cell, want := range map[int][]float64{0: {1, 2}, 1: {3}} {
		v, ok, err := ckLoad[[]float64](ck2, 0, cell)
		if err != nil || !ok {
			t.Fatalf("cell %d lost behind torn tail: ok=%v err=%v", cell, ok, err)
		}
		if fmt.Sprint(v) != fmt.Sprint(want) {
			t.Fatalf("cell %d = %v, want %v", cell, v, want)
		}
	}
	// A record appended after the (truncated) tear must be replayable.
	if err := ckStore(ck2, 0, 2, []float64{4}); err != nil {
		t.Fatal(err)
	}
	if err := ck2.Close(); err != nil {
		t.Fatal(err)
	}
	ck3, err := OpenCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ck3.Close()
	if v, ok, err := ckLoad[[]float64](ck3, 0, 2); err != nil || !ok || len(v) != 1 || v[0] != 4 {
		t.Fatalf("post-tear record lost: v=%v ok=%v err=%v", v, ok, err)
	}
}

// TestCheckpointObsExclusive: checkpointing refuses to combine with
// telemetry — a resumed run cannot reproduce skipped cells' obs streams.
func TestCheckpointObsExclusive(t *testing.T) {
	cfg := resumeConfig()
	cfg.Obs = &ObsSink{}
	ck, err := OpenCheckpointer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	cfg.Checkpoint = ck
	if _, err := Fig6EffectOfR(cfg); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("obs+checkpoint err = %v", err)
	}
}
