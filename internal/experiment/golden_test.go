package experiment

// Golden-table determinism for the PR 3 scheduler refactor, at the
// harness level: the rendered fig6/fig9 tables must be byte-identical to
// the tables the pre-refactor closure/heap engine produced, for a serial
// run and for -workers 8. Together with the trace-level suite in
// internal/traffic (full TraceEvent streams) this proves the typed-event
// calendar queue changed no observable simulation behavior.
//
// Regenerate (only on intended semantics changes):
//
//	go test ./internal/experiment -run TestGoldenTables -update

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mcastsim/internal/metrics"
)

var updateGolden = flag.Bool("update", false, "rewrite golden table files")

// goldenConfig is a reduced fig6/fig9 configuration: small enough for CI,
// large enough to exercise every scheme, several load points, and the
// cross-worker cell assembly.
func goldenConfig(workers int) Config {
	cfg := Quick()
	cfg.Topologies = 2
	cfg.LoadTopologies = 2
	cfg.Probes = 3
	cfg.Warmup, cfg.Measure, cfg.Drain = 2_000, 10_000, 8_000
	cfg.Loads = []float64{0.1, 0.3}
	cfg.LoadDegrees = []int{8}
	cfg.Workers = workers
	return cfg
}

func renderGoldenTables(t *testing.T, run func(Config) ([]*metrics.Table, error), cfg Config) []byte {
	t.Helper()
	tables, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tab := range tables {
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func TestGoldenTables(t *testing.T) {
	cases := []struct {
		name string
		run  func(Config) ([]*metrics.Table, error)
	}{
		{"fig6", Fig6EffectOfR},
		{"fig9", Fig9LoadVsR},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := renderGoldenTables(t, tc.run, goldenConfig(1))
			parallel := renderGoldenTables(t, tc.run, goldenConfig(8))
			if !bytes.Equal(serial, parallel) {
				t.Fatalf("%s: workers=8 output differs from serial", tc.name)
			}
			path := filepath.Join("testdata", "golden_"+tc.name+".txt")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, serial, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("recorded %s (%d bytes)", path, len(serial))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden file missing (run with -update): %v", err)
			}
			if !bytes.Equal(serial, want) {
				t.Errorf("%s table diverged from pre-refactor engine:\n--- got ---\n%s\n--- want ---\n%s",
					tc.name, serial, want)
			}
		})
	}
}
