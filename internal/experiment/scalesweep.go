package experiment

import (
	"fmt"
	"math"
	"strings"
	"time"

	"mcastsim/internal/bitset"
	"mcastsim/internal/mcast"
	"mcastsim/internal/memwatch"
	"mcastsim/internal/mcast/kbinomial"
	"mcastsim/internal/mcast/pathworm"
	"mcastsim/internal/mcast/treeworm"
	"mcastsim/internal/metrics"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// Scale-sweep salts (joined by case/probe indices at the call sites).
const (
	saltScale    uint64 = 0x5ca1e5 // rack-clustered (source, destination) draws
	saltScaleSim uint64 = 0x5ca151 // per-probe simulation arbitration streams
)

// scaleCase is one (topology class, size tier) grid point.
type scaleCase struct {
	class string // "fattree", "dragonfly", "irregular"
	tier  string // "S", "M", "L"
	// simulate: run the flit-level simulator for latency/throughput.
	// The L tier is plan+encode only — the paper's comparison question
	// (where does multicast support belong?) is answered there by header
	// cost and planning cost, which is what changes with scale.
	simulate bool
	racks    int // destination racks (edge switches) per multicast probe
	build    func(seed uint64) (*topology.Topology, error)
}

// scaleCases returns the class x tier grid. Sizes per tier:
//
//	S:  tens of switches, tens of hosts (paper scale; fully simulated)
//	M:  ~64-72 switches, ~1k hosts (fully simulated)
//	L:  >=1024 switches, >=100k hosts (plan+encode only)
//	XL: >=10k switches, >=1M hosts (plan+encode only; -tiers XL opt-in)
//
// Hosts are contiguous per edge switch in every class, so the
// rack-clustered destination draws map to few runs under interval coding.
//
// The XL tier exists to answer the PR 9 question — does the sparse
// destination representation let the flit simulator reach 10k switches /
// 1M hosts in commodity RAM? One XL routing holds ~2.6 GB of up*/down*
// reachability and cover bit strings, so the tier is excluded from the
// default grid (Config.Tiers empty selects S, M, L) and opted into with
// -tiers; -sim-l then flit-simulates one probe per XL cell exactly as it
// does for L. XL cases are APPENDED to the grid: existing cases keep
// their original indices, which the cell seeds are pure functions of, so
// adding the tier cannot move any S/M/L number.
func scaleCases() []scaleCase {
	ft := func(c topology.FatTreeConfig) func(uint64) (*topology.Topology, error) {
		return func(uint64) (*topology.Topology, error) { return topology.FatTree(c) }
	}
	df := func(c topology.DragonflyConfig) func(uint64) (*topology.Topology, error) {
		return func(uint64) (*topology.Topology, error) { return topology.Dragonfly(c) }
	}
	ir := func(c topology.ScaledIrregularConfig) func(uint64) (*topology.Topology, error) {
		return func(seed uint64) (*topology.Topology, error) { return topology.ScaledIrregular(c, seed) }
	}
	return []scaleCase{
		{"fattree", "S", true, 2, ft(topology.FatTreeConfig{
			Pods: 2, EdgePerPod: 2, AggPerPod: 2, CoreUplinksPerAgg: 1, HostsPerEdge: 8})},
		{"fattree", "M", true, 4, ft(topology.FatTreeConfig{
			Pods: 4, EdgePerPod: 8, AggPerPod: 4, CoreUplinksPerAgg: 4, HostsPerEdge: 32})},
		{"fattree", "L", false, 8, ft(topology.FatTreeConfig{
			Pods: 32, EdgePerPod: 24, AggPerPod: 8, CoreUplinksPerAgg: 8, HostsPerEdge: 132})},
		{"dragonfly", "S", true, 2, df(topology.DragonflyConfig{
			Groups: 6, RoutersPerGroup: 3, GlobalPerRouter: 2, HostsPerRouter: 4})},
		{"dragonfly", "M", true, 4, df(topology.DragonflyConfig{
			Groups: 12, RoutersPerGroup: 6, GlobalPerRouter: 2, HostsPerRouter: 12})},
		{"dragonfly", "L", false, 8, df(topology.DragonflyConfig{
			Groups: 33, RoutersPerGroup: 33, GlobalPerRouter: 1, HostsPerRouter: 93})},
		{"irregular", "S", true, 2, ir(topology.ScaledIrregularConfig{
			Switches: 12, HostsPerSwitch: 4, ExtraLinksPerSwitch: -1})},
		{"irregular", "M", true, 4, ir(topology.ScaledIrregularConfig{
			Switches: 64, HostsPerSwitch: 16, ExtraLinksPerSwitch: -1})},
		{"irregular", "L", false, 8, ir(topology.ScaledIrregularConfig{
			Switches: 1024, HostsPerSwitch: 99, ExtraLinksPerSwitch: -1})},
		// XL: appended after the original grid (see the doc comment).
		{"fattree", "XL", false, 8, ft(topology.FatTreeConfig{
			Pods: 72, EdgePerPod: 128, AggPerPod: 14, CoreUplinksPerAgg: 10, HostsPerEdge: 112})},
		{"dragonfly", "XL", false, 8, df(topology.DragonflyConfig{
			Groups: 321, RoutersPerGroup: 32, GlobalPerRouter: 10, HostsPerRouter: 98})},
		{"irregular", "XL", false, 8, ir(topology.ScaledIrregularConfig{
			Switches: 10240, HostsPerSwitch: 98, ExtraLinksPerSwitch: -1})},
	}
}

// tierSelected reports whether cfg's tier filter includes the named
// tier. An empty filter selects every tier except the opt-in XL.
func (cfg Config) tierSelected(tier string) bool {
	if len(cfg.Tiers) == 0 {
		return tier != "XL"
	}
	for _, t := range cfg.Tiers {
		if strings.EqualFold(strings.TrimSpace(t), tier) {
			return true
		}
	}
	return false
}

// scaleCombo is one (scheme, destination coding) curve of the sweep. The
// coding only changes tree-worm headers, so it is swept for the
// switch-based tree scheme alone.
type scaleCombo struct {
	label  string
	scheme mcast.Scheme
	coding sim.DestCoding
}

func scaleCombos() []scaleCombo {
	return []scaleCombo{
		{"ni-kbinomial", kbinomial.New(), sim.HeaderFlat},
		{"sw-tree flat", treeworm.New(), sim.HeaderFlat},
		{"sw-tree ival", treeworm.New(), sim.HeaderIval},
		{"sw-path", pathworm.New(), sim.HeaderFlat},
	}
}

// scaleProbes bounds the per-cell probe count: every probe at the M and
// L tiers is a hundreds-to-thousands-destination multicast, so
// cfg.Probes (sized for degree-16 probes) would be heavy oversampling.
func scaleProbes(cfg Config) int {
	if cfg.Probes > 4 {
		return 4
	}
	return cfg.Probes
}

// rackSet draws one rack-clustered multicast: a random source host plus
// every host on `racks` distinct randomly chosen switches (the "deliver
// to these racks" pattern of datacenter multicast — and the workload
// where run-length destination coding should win). The source is
// excluded from the destinations; a rack draw that yields no
// destinations retries with the next draw.
func rackSet(r *rng.Source, t *topology.Topology, nodesBySwitch [][]topology.NodeID, hostSwitches []int, racks int) (topology.NodeID, []topology.NodeID) {
	src := topology.NodeID(r.Intn(t.NumNodes))
	for {
		var dests []topology.NodeID
		for _, i := range r.Sample(len(hostSwitches), racks) {
			for _, n := range nodesBySwitch[hostSwitches[i]] {
				if n != src {
					dests = append(dests, n)
				}
			}
		}
		if len(dests) > 0 {
			return src, dests
		}
	}
}

// planHeaderBytes totals the encoded wire-header bytes of every worm the
// plan emits for one packet, under coding-aware sizing (the quantity the
// paper's §3.2.3 scaling argument is about). NI-tree plans forward
// unicast worms along their edges; HostSends plans emit their specs
// directly.
func planHeaderBytes(t *topology.Topology, p sim.Params, plan *sim.Plan) int {
	uni := sim.UnicastHeaderFlitsFor(t.NumNodes, t.NumSwitches)
	if plan.NITree != nil {
		edges := 0
		for _, kids := range plan.NITree {
			edges += len(kids)
		}
		return edges * uni
	}
	total := 0
	for _, specs := range plan.HostSends {
		for i := range specs {
			switch specs[i].Kind {
			case sim.WormTree:
				if p.DestCoding == sim.HeaderIval {
					set := bitset.New(t.NumNodes)
					for _, d := range specs[i].DestSet {
						set.Add(int(d))
					}
					total += sim.TreeIvalHeaderFlits(set)
				} else {
					total += sim.TreeHeaderFlits(t.NumNodes)
				}
			case sim.WormPath:
				total += sim.PathHeaderFlitsFor(len(specs[i].Path), t.PortsPerSwitch, t.NumNodes, t.NumSwitches)
			default:
				total += uni
			}
		}
	}
	return total
}

// scaleCellResult is one (case, combo) cell's aggregate over its probes.
type scaleCellResult struct {
	// Fields are exported so the checkpoint journal's gob codec can
	// round-trip them (gob silently drops unexported fields).
	HeaderBytes float64 // mean encoded header bytes per multicast
	PlanMS      float64 // mean plan+size wall time per multicast (NOT deterministic)
	Latency     float64 // mean single-multicast latency (NaN when not simulated)
	Throughput  float64 // mean delivered payload bytes/cycle (NaN when not simulated)
	Dests       float64 // mean destination count (table note)
	// Simulated-probe capacity figures (NaN when not simulated). Both are
	// wall-clock measurements and live only in the NOT-deterministic
	// tables: eventsPerSec is events processed over sim wall time;
	// peakHeapMB is the process-wide HeapAlloc high-water mark sampled
	// while the cell's probes ran (coarse when cells run in parallel —
	// concurrent cells share one heap — but exactly the capacity number
	// the XL acceptance bound is about).
	EventsPerSec float64
	PeakHeapMB   float64
}

// ScaleSweep re-asks the paper's NI-vs-switch question at datacenter
// scale: topology class (fat-tree / dragonfly / scaled irregular) x size
// tier (S/M/L, plus XL via -tiers) x scheme x destination coding. Header
// bytes and planning cost are measured at every tier (they are what the
// paper's scaling argument predicts will break); flit-level latency and
// delivered throughput are simulated at the S and M tiers. Destination sets are
// rack-clustered (whole edge switches), the regime where the
// interval-coded tree header stays small while the flat bit string grows
// with the host count.
//
// Determinism: every cell seed is a pure function of (case, probe)
// indices and cells share the paired draws across schemes and codings,
// so all tables except the wall-clock one are byte-identical for any
// -workers. The wall-clock table measures real elapsed time and is
// explicitly excluded from that guarantee.
func ScaleSweep(cfg Config) ([]*metrics.Table, error) {
	cases := scaleCases()
	combos := scaleCombos()
	probes := scaleProbes(cfg)

	sel := make([]bool, len(cases))
	anySel := false
	for ci, sc := range cases {
		sel[ci] = cfg.tierSelected(sc.tier)
		anySel = anySel || sel[ci]
	}
	if !anySel {
		return nil, fmt.Errorf("experiment: scalesweep: tier filter %v selects no grid cases", cfg.Tiers)
	}

	// One grid case is resident at a time: an XL routing alone holds
	// ~2.6 GB of reachability/cover bit strings, so routing the whole
	// grid up front (as the sweep did when L was the largest tier) would
	// stack three of those on the heap at once. Combos within a case
	// still fan out across the worker pool — routing state is read-only
	// during planning and simulation — and every cell seed stays a pure
	// function of the case's original grid index, so the restructure
	// cannot change a table.
	cells := make([]scaleCellResult, len(cases)*len(combos))
	numNodes := make([]int, len(cases))
	for ci := range cases {
		if !sel[ci] {
			continue
		}
		sc := cases[ci]
		t, err := sc.build(rng.Mix(cfg.Seed, saltFamily, uint64(ci)))
		if err != nil {
			return nil, fmt.Errorf("experiment: scalesweep %s/%s: %w", sc.class, sc.tier, err)
		}
		rt, err := updown.New(t)
		if err != nil {
			return nil, fmt.Errorf("experiment: scalesweep %s/%s: %w", sc.class, sc.tier, err)
		}
		nbs := t.NodesBySwitch()
		var hs []int
		for s := 0; s < t.NumSwitches; s++ {
			if len(nbs[s]) > 0 {
				hs = append(hs, s)
			}
		}
		numNodes[ci] = t.NumNodes
		res, err := runCells(cfg, len(combos), func(mi int, _ cellCtx) (scaleCellResult, error) {
			cb := combos[mi]
			p := cfg.Params
			p.DestCoding = cb.coding
			res := scaleCellResult{
				Latency: math.NaN(), Throughput: math.NaN(),
				EventsPerSec: math.NaN(), PeakHeapMB: math.NaN(),
			}
			// Simulated probes per cell: every probe at tiers that simulate
			// by default; with -sim-l, ONE probe at the L and XL tiers (the
			// smoke that proves the sharded engine event-simulates 100k-1M+
			// hosts without turning the sweep into an hours-long run).
			simProbes := 0
			if sc.simulate {
				simProbes = probes
			} else if cfg.SimulateL {
				simProbes = 1
			}
			var latSum, tputSum float64
			var hdrSum, destSum, planNS int64
			var simNS int64
			var simEvents uint64
			var peakHeap uint64
			for probe := 0; probe < probes; probe++ {
				// Draw seed depends on (case, probe) only: every scheme and
				// coding plans the identical rack-clustered multicast.
				r := rng.New(rng.Mix(cfg.Seed, saltScale, uint64(ci), uint64(probe)))
				src, dests := rackSet(r, t, nbs, hs, sc.racks)
				start := time.Now()
				plan, err := cb.scheme.Plan(rt, p, src, dests, cfg.MsgFlits)
				if err != nil {
					return res, fmt.Errorf("experiment: scalesweep %s/%s %s probe %d: %w",
						sc.class, sc.tier, cb.label, probe, err)
				}
				hdr := planHeaderBytes(t, p, plan)
				planNS += time.Since(start).Nanoseconds()
				hdrSum += int64(hdr)
				destSum += int64(len(dests))
				if probe >= simProbes {
					continue
				}
				mw := memwatch.Start()
				simStart := time.Now()
				n, err := sim.New(rt, p, rng.Mix(cfg.Seed, saltScaleSim, uint64(ci), uint64(probe)),
					sim.WithShards(cfg.Shards))
				if err != nil {
					mw.Stop()
					return res, err
				}
				m, err := n.RunSingle(plan, cfg.MsgFlits)
				if err != nil {
					mw.Stop()
					return res, fmt.Errorf("experiment: scalesweep %s/%s %s probe %d: %w",
						sc.class, sc.tier, cb.label, probe, err)
				}
				if err := n.CheckConservation(); err != nil {
					mw.Stop()
					return res, fmt.Errorf("experiment: scalesweep %s/%s %s probe %d: %w",
						sc.class, sc.tier, cb.label, probe, err)
				}
				simNS += time.Since(simStart).Nanoseconds()
				simEvents += n.EventsProcessed()
				if pk := mw.Stop(); pk > peakHeap {
					peakHeap = pk
				}
				lat := float64(m.Latency())
				latSum += lat
				tputSum += float64(len(dests)*cfg.MsgFlits) / lat
			}
			res.HeaderBytes = float64(hdrSum) / float64(probes)
			res.PlanMS = float64(planNS) / float64(probes) / 1e6
			res.Dests = float64(destSum) / float64(probes)
			if simProbes > 0 {
				res.Latency = latSum / float64(simProbes)
				res.Throughput = tputSum / float64(simProbes)
				if simNS > 0 {
					res.EventsPerSec = float64(simEvents) / (float64(simNS) / 1e9)
				}
				res.PeakHeapMB = float64(peakHeap) / (1 << 20)
			}
			return res, nil
		})
		if err != nil {
			return nil, err
		}
		copy(cells[ci*len(combos):], res)
	}

	header := &metrics.Table{
		Title:  "Scale sweep: encoded header bytes per multicast (one packet, all worms)",
		XLabel: "hosts",
		YLabel: "mean header bytes",
	}
	latency := &metrics.Table{
		Title:  "Scale sweep: single rack-clustered multicast latency",
		XLabel: "hosts",
		YLabel: "mean latency (cycles)",
	}
	tput := &metrics.Table{
		Title:  "Scale sweep: delivered payload throughput per multicast",
		XLabel: "hosts",
		YLabel: "mean delivered payload (bytes/cycle)",
	}
	wall := &metrics.Table{
		Title:  "Scale sweep: plan + header-sizing wall time (NOT deterministic; excluded from golden comparisons)",
		XLabel: "hosts",
		YLabel: "mean wall time per multicast (ms)",
	}
	rate := &metrics.Table{
		Title:  "Scale sweep: simulated event rate (NOT deterministic; excluded from golden comparisons)",
		XLabel: "hosts",
		YLabel: "events/sec over simulated probes (wall)",
	}
	heap := &metrics.Table{
		Title:  "Scale sweep: peak heap during simulated probes (NOT deterministic; excluded from golden comparisons)",
		XLabel: "hosts",
		YLabel: "peak HeapAlloc (MiB)",
	}

	cellAt := func(ci, mi int) scaleCellResult { return cells[ci*len(combos)+mi] }
	for mi, cb := range combos {
		for _, class := range []string{"fattree", "dragonfly", "irregular"} {
			label := class + " " + cb.label
			hSer := metrics.Series{Label: label}
			lSer := metrics.Series{Label: label}
			tSer := metrics.Series{Label: label}
			wSer := metrics.Series{Label: label}
			rSer := metrics.Series{Label: label}
			pSer := metrics.Series{Label: label}
			for ci := range cases {
				if cases[ci].class != class || !sel[ci] {
					continue
				}
				r := cellAt(ci, mi)
				x := float64(numNodes[ci])
				note := fmt.Sprintf("%s, %.0f dests", cases[ci].tier, r.Dests)
				simNote := note
				if !cases[ci].simulate {
					if cfg.SimulateL {
						simNote = note + ", 1 simulated probe (-sim-l)"
					} else {
						simNote = note + ", plan+encode only"
					}
				}
				hSer.X = append(hSer.X, x)
				hSer.Y = append(hSer.Y, r.HeaderBytes)
				hSer.Note = append(hSer.Note, note)
				lSer.X = append(lSer.X, x)
				lSer.Y = append(lSer.Y, r.Latency)
				lSer.Note = append(lSer.Note, simNote)
				tSer.X = append(tSer.X, x)
				tSer.Y = append(tSer.Y, r.Throughput)
				tSer.Note = append(tSer.Note, simNote)
				wSer.X = append(wSer.X, x)
				wSer.Y = append(wSer.Y, r.PlanMS)
				wSer.Note = append(wSer.Note, note)
				rSer.X = append(rSer.X, x)
				rSer.Y = append(rSer.Y, r.EventsPerSec)
				rSer.Note = append(rSer.Note, simNote)
				pSer.X = append(pSer.X, x)
				pSer.Y = append(pSer.Y, r.PeakHeapMB)
				pSer.Note = append(pSer.Note, simNote)
			}
			header.Series = append(header.Series, hSer)
			latency.Series = append(latency.Series, lSer)
			tput.Series = append(tput.Series, tSer)
			wall.Series = append(wall.Series, wSer)
			rate.Series = append(rate.Series, rSer)
			heap.Series = append(heap.Series, pSer)
		}
	}
	return []*metrics.Table{header, latency, tput, wall, rate, heap}, nil
}
