// Package experiment reproduces the paper's evaluation (§4): one runner
// per figure, each returning renderable metrics.Tables. Every experiment
// varies exactly one parameter from the default system (32 nodes, eight
// 8-port switches, R=1, 128-flit packets, single-packet messages) and
// averages over a family of random irregular topologies, as the paper
// does. DESIGN.md §4 maps experiment IDs to paper artifacts.
package experiment

import (
	"fmt"

	"mcastsim/internal/event"
	"mcastsim/internal/mcast"
	"mcastsim/internal/mcast/binomial"
	"mcastsim/internal/mcast/kbinomial"
	"mcastsim/internal/mcast/pathworm"
	"mcastsim/internal/mcast/treeworm"
	"mcastsim/internal/metrics"
	"mcastsim/internal/rng"
	"mcastsim/internal/sim"
	"mcastsim/internal/topology"
	"mcastsim/internal/traffic"
	"mcastsim/internal/updown"
)

// Config scales an experiment run. Full() reproduces the paper's scale;
// Quick() is sized for tests and benchmarks.
type Config struct {
	Seed uint64
	// Workers bounds the parallel fan-out of independent simulation cells
	// (one RunSingle/RunLoad/RunFault invocation each); 0 means one
	// worker per CPU (runtime.GOMAXPROCS). Cell seeds are pure functions
	// of the cell's indices, so tables are byte-identical for every
	// worker count.
	Workers int
	// Shards runs every simulation cell on the serial-equivalence sharded
	// PDES engine with this many shards (sim.WithShards). Tables are
	// byte-identical for every shard count — the engine realizes the
	// exact single-queue execution order — so Shards, like Workers, can
	// never change a result. 0 or 1 keeps the plain engine.
	Shards int
	// Topologies is the family size for single-multicast experiments;
	// LoadTopologies for the (far costlier) load experiments.
	Topologies     int
	LoadTopologies int
	// Probes is the number of random multicasts per topology.
	Probes int
	// Degree is the multicast fan-out for single-multicast experiments.
	Degree int
	// MsgFlits is the default payload length.
	MsgFlits int
	// Open-loop load windows (cycles) and the swept effective loads.
	Warmup  event.Time
	Measure event.Time
	Drain   event.Time
	Loads   []float64
	// LoadDegrees are the fan-outs for the load experiments (paper: 8, 16).
	LoadDegrees []int

	TopoCfg topology.Config
	Params  sim.Params

	// SimulateL opts the scale sweep's L tier (>=1024 switches, >=100k
	// hosts) into flit-level simulation: one short probe per cell instead
	// of the tier's plan+encode-only default. Off by default — an L-tier
	// network is minutes of assembly plus millions of events per probe —
	// and surfaced as -sim-l on the CLI; CI smokes it at reduced scale.
	SimulateL bool
	// Tiers restricts the scale sweep to the named size tiers (case-
	// insensitive; e.g. []string{"XL"}). Empty selects the default grid —
	// S, M and L. The XL tier (>=10k switches, >=1M hosts) is always
	// opt-in: one XL routing holds ~2.6 GB of reachability bit strings.
	// Skipped cases keep their grid indices, so filtering never moves a
	// surviving cell's seeds. Surfaced as -tiers on the CLI.
	Tiers []string
	// Obs, when non-nil, collects per-cell telemetry bundles (see
	// internal/obs): every simulation cell records link/NI/engine time
	// series at the sink's cadence. Nil (the default) disables
	// observability entirely — no probe fires anywhere in the simulator.
	Obs *ObsSink
	// Checkpoint, when non-nil, journals every completed cell so a
	// killed run can resume (-checkpoint/-resume on the CLI; see
	// OpenCheckpointer). Mutually exclusive with Obs: a resumed run
	// cannot reproduce skipped cells' telemetry streams. Resumed tables
	// are byte-identical to uninterrupted ones.
	Checkpoint *Checkpointer
	// Progress, when non-nil, receives a tick after every completed cell:
	// cells finished so far and the grid size of the current runCells
	// invocation (resumed cells tick too — they complete instantly).
	// Called from worker goroutines; must be safe for concurrent use.
	// Progress never affects results, only reporting.
	Progress func(done, total int)
}

// Full returns the paper-scale configuration (10 topologies, >=1M-cycle
// load runs with a 100k cold start).
func Full() Config {
	return Config{
		Seed:           1998,
		Topologies:     10,
		LoadTopologies: 5,
		Probes:         30,
		Degree:         16,
		MsgFlits:       128,
		Warmup:         100_000,
		Measure:        900_000,
		Drain:          100_000,
		Loads:          []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8},
		LoadDegrees:    []int{8, 16},
		TopoCfg:        topology.DefaultConfig(),
		Params:         sim.DefaultParams(),
	}
}

// Quick returns a scaled-down configuration with the same structure,
// suitable for go test / go bench; trends survive the scaling, absolute
// noise is higher.
func Quick() Config {
	cfg := Full()
	cfg.Topologies = 3
	cfg.LoadTopologies = 2
	cfg.Probes = 8
	cfg.Warmup = 10_000
	cfg.Measure = 60_000
	cfg.Drain = 40_000
	cfg.Loads = []float64{0.1, 0.3, 0.5, 0.7}
	return cfg
}

// compared returns the three schemes the paper's figures compare.
func compared() []mcast.Scheme {
	return []mcast.Scheme{kbinomial.New(), treeworm.New(), pathworm.New()}
}

// family generates and routes the experiment's topology family.
func family(cfg topology.Config, count int, seed uint64) ([]*updown.Routing, error) {
	topos, err := topology.GenerateFamily(cfg, count, seed)
	if err != nil {
		return nil, err
	}
	out := make([]*updown.Routing, len(topos))
	for i, t := range topos {
		rt, err := updown.New(t)
		if err != nil {
			return nil, fmt.Errorf("experiment: topology %d: %w", i, err)
		}
		out[i] = rt
	}
	return out, nil
}

// singleMean measures the mean isolated-multicast latency of sch over a
// routed family, one parallel cell per topology. The cell seed depends
// only on the topology index: every scheme (and every sweep point that
// shares the family) measures the same multicast draws, the paired
// design that keeps scheme comparisons low-variance. label names the
// sweep point for obs bundles; it must be unique within the experiment.
func singleMean(cfg Config, label string, rts []*updown.Routing, sch mcast.Scheme, p sim.Params, degree, flits int) (float64, error) {
	res, err := runCells(cfg, len(rts), func(i int, cc cellCtx) ([]float64, error) {
		rec, commit := cfg.cellObs(fmt.Sprintf("%s/%s/topo%03d", label, sch.Name(), i))
		opts := append([]traffic.Option{traffic.WithProbes(cfg.Probes),
			traffic.WithObs(rec), traffic.WithShards(cfg.Shards)}, cc.trafficOpts()...)
		r, err := traffic.Run(rts[i], traffic.Workload{
			Scheme: sch, Params: p, Degree: degree, MsgFlits: flits,
			Seed: rng.Mix(cfg.Seed, saltSingle, uint64(i)),
		}, opts...)
		if err != nil {
			return nil, err
		}
		commit()
		return r.Latencies, nil
	})
	if err != nil {
		return 0, err
	}
	var all []float64
	for _, lats := range res {
		all = append(all, lats...)
	}
	return metrics.Mean(all), nil
}

// sweepSingle runs a single-multicast sweep: for each x value, build builds
// the per-point (family, params, degree, flits) and the mean latency per
// scheme becomes one curve point. The sweep flattens into one cell per
// (x, scheme, topology) triple so the pool stays busy across the whole
// grid, then aggregates in grid order.
func sweepSingle(cfg Config, title, xLabel string, xs []float64,
	build func(x float64) ([]*updown.Routing, sim.Params, int, int, error)) (*metrics.Table, error) {
	tab := &metrics.Table{Title: title, XLabel: xLabel, YLabel: "mean single multicast latency (cycles)"}
	schemes := compared()

	type point struct {
		rts    []*updown.Routing
		p      sim.Params
		degree int
		flits  int
	}
	pts := make([]point, len(xs))
	for xi, x := range xs {
		rts, p, degree, flits, err := build(x)
		if err != nil {
			return nil, err
		}
		pts[xi] = point{rts, p, degree, flits}
	}

	type key struct{ xi, si, ti int }
	var keys []key
	for xi := range xs {
		for si := range schemes {
			for ti := range pts[xi].rts {
				keys = append(keys, key{xi, si, ti})
			}
		}
	}
	res, err := runCells(cfg, len(keys), func(i int, cc cellCtx) ([]float64, error) {
		k := keys[i]
		pt := pts[k.xi]
		rec, commit := cfg.cellObs(fmt.Sprintf("%s/%s=%v/%s/topo%03d",
			title, xLabel, xs[k.xi], schemes[k.si].Name(), k.ti))
		opts := append([]traffic.Option{traffic.WithProbes(cfg.Probes),
			traffic.WithObs(rec), traffic.WithShards(cfg.Shards)}, cc.trafficOpts()...)
		r, err := traffic.Run(pt.rts[k.ti], traffic.Workload{
			Scheme: schemes[k.si], Params: pt.p, Degree: pt.degree, MsgFlits: pt.flits,
			Seed: rng.Mix(cfg.Seed, saltSingle, uint64(k.ti)),
		}, opts...)
		if err != nil {
			return nil, fmt.Errorf("%s at %s=%v: %w", schemes[k.si].Name(), xLabel, xs[k.xi], err)
		}
		commit()
		return r.Latencies, nil
	})
	if err != nil {
		return nil, err
	}

	cells := make(map[key][]float64, len(keys))
	for i, k := range keys {
		cells[k] = res[i]
	}
	for si, sch := range schemes {
		s := metrics.Series{Label: sch.Name()}
		for xi, x := range xs {
			var all []float64
			for ti := range pts[xi].rts {
				all = append(all, cells[key{xi, si, ti}]...)
			}
			s.X = append(s.X, x)
			s.Y = append(s.Y, metrics.Mean(all))
		}
		tab.Series = append(tab.Series, s)
	}
	return tab, nil
}

// Fig6EffectOfR reproduces Figure 6: single-multicast latency as the
// host/NI overhead ratio R varies (o_ni = o_h / R).
func Fig6EffectOfR(cfg Config) ([]*metrics.Table, error) {
	rts, err := family(cfg.TopoCfg, cfg.Topologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tab, err := sweepSingle(cfg, "Fig 6: effect of R = o_h/o_ni (single multicast)", "R",
		[]float64{0.5, 1, 2, 4},
		func(x float64) ([]*updown.Routing, sim.Params, int, int, error) {
			return rts, cfg.Params.WithR(x), cfg.Degree, cfg.MsgFlits, nil
		})
	if err != nil {
		return nil, err
	}
	return []*metrics.Table{tab}, nil
}

// Fig7EffectOfSwitches reproduces Figure 7: single-multicast latency as the
// switch count grows at fixed system size.
func Fig7EffectOfSwitches(cfg Config) ([]*metrics.Table, error) {
	tab, err := sweepSingle(cfg, "Fig 7: effect of number of switches (single multicast)", "switches",
		[]float64{8, 16, 32},
		func(x float64) ([]*updown.Routing, sim.Params, int, int, error) {
			tc := cfg.TopoCfg
			tc.Switches = int(x)
			rts, err := family(tc, cfg.Topologies, rng.Mix(cfg.Seed, saltFamily, uint64(x)))
			return rts, cfg.Params, cfg.Degree, cfg.MsgFlits, err
		})
	if err != nil {
		return nil, err
	}
	return []*metrics.Table{tab}, nil
}

// Fig8EffectOfMessageLength reproduces Figure 8: single-multicast latency
// as the message grows past the 128-flit packet size.
func Fig8EffectOfMessageLength(cfg Config) ([]*metrics.Table, error) {
	rts, err := family(cfg.TopoCfg, cfg.Topologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tab, err := sweepSingle(cfg, "Fig 8: effect of message length (single multicast)", "message flits",
		[]float64{128, 256, 512, 1024},
		func(x float64) ([]*updown.Routing, sim.Params, int, int, error) {
			return rts, cfg.Params, cfg.Degree, int(x), nil
		})
	if err != nil {
		return nil, err
	}
	return []*metrics.Table{tab}, nil
}

// loadPanels builds one table per (variant, degree), each with one curve
// per scheme. build maps a variant value to (family, params, flits).
// Every (variant, degree, scheme) curve joins one lockstep sweep, so each
// load point fans out across curves x topology family on the worker pool
// while every curve keeps its own sequential saturation early-exit.
func loadPanels(cfg Config, title string, variants []float64, variantName string,
	build func(v float64) ([]*updown.Routing, sim.Params, int, error)) ([]*metrics.Table, error) {
	var out []*metrics.Table
	var specs []loadCurveSpec
	for _, v := range variants {
		rts, p, flits, err := build(v)
		if err != nil {
			return nil, err
		}
		for _, degree := range cfg.LoadDegrees {
			out = append(out, &metrics.Table{
				Title:  fmt.Sprintf("%s [%s=%v, %d-way]", title, variantName, v, degree),
				XLabel: "effective applied load",
				YLabel: "mean multicast latency (cycles)",
			})
			for _, sch := range compared() {
				specs = append(specs, loadCurveSpec{
					Label:  sch.Name(),
					ErrCtx: fmt.Sprintf(" %s=%v %d-way", variantName, v, degree),
					Scheme: sch, Rts: rts, Params: p, Degree: degree, Flits: flits,
				})
			}
		}
	}
	series, err := runLoadCurves(cfg, specs)
	if err != nil {
		return nil, err
	}
	perPanel := len(compared())
	for i, s := range series {
		tab := out[i/perPanel]
		tab.Series = append(tab.Series, s)
	}
	return out, nil
}

// Fig9LoadVsR reproduces Figure 9: latency under increasing multicast load
// for R in {0.5, 1, 4}, at 8- and 16-way degrees.
func Fig9LoadVsR(cfg Config) ([]*metrics.Table, error) {
	rts, err := family(cfg.TopoCfg, cfg.LoadTopologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return loadPanels(cfg, "Fig 9: load vs latency under R", []float64{0.5, 1, 4}, "R",
		func(v float64) ([]*updown.Routing, sim.Params, int, error) {
			return rts, cfg.Params.WithR(v), cfg.MsgFlits, nil
		})
}

// Fig10LoadVsSwitches reproduces Figure 10: latency under load as the
// switch count grows.
func Fig10LoadVsSwitches(cfg Config) ([]*metrics.Table, error) {
	return loadPanels(cfg, "Fig 10: load vs latency under switch count", []float64{8, 16, 32}, "switches",
		func(v float64) ([]*updown.Routing, sim.Params, int, error) {
			tc := cfg.TopoCfg
			tc.Switches = int(v)
			rts, err := family(tc, cfg.LoadTopologies, rng.Mix(cfg.Seed, saltFamily, uint64(v)))
			return rts, cfg.Params, cfg.MsgFlits, err
		})
}

// Fig11LoadVsMessageLength reproduces Figure 11: latency under load for
// longer messages.
func Fig11LoadVsMessageLength(cfg Config) ([]*metrics.Table, error) {
	rts, err := family(cfg.TopoCfg, cfg.LoadTopologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return loadPanels(cfg, "Fig 11: load vs latency under message length", []float64{128, 512, 1024}, "flits",
		func(v float64) ([]*updown.Routing, sim.Params, int, error) {
			return rts, cfg.Params, int(v), nil
		})
}

// ExtHostOverhead reproduces the §4.2 text experiment on host start-up
// overhead: o_h varies with o_ni pinned at the default.
func ExtHostOverhead(cfg Config) ([]*metrics.Table, error) {
	rts, err := family(cfg.TopoCfg, cfg.Topologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tab, err := sweepSingle(cfg, "Ext: effect of host overhead o_h (single multicast)", "o_h (cycles)",
		[]float64{50, 100, 200, 400},
		func(x float64) ([]*updown.Routing, sim.Params, int, int, error) {
			p := cfg.Params
			p.OHostSend = event.Time(x)
			p.OHostRecv = event.Time(x)
			return rts, p, cfg.Degree, cfg.MsgFlits, nil
		})
	if err != nil {
		return nil, err
	}
	return []*metrics.Table{tab}, nil
}

// ExtSystemSize reproduces the §4.2 text experiment on system size: nodes
// and switches scale together (4 nodes per 8-port switch).
func ExtSystemSize(cfg Config) ([]*metrics.Table, error) {
	tab, err := sweepSingle(cfg, "Ext: effect of system size (single multicast)", "nodes",
		[]float64{16, 32, 64, 128},
		func(x float64) ([]*updown.Routing, sim.Params, int, int, error) {
			tc := cfg.TopoCfg
			tc.Nodes = int(x)
			tc.Switches = int(x) / 4
			degree := cfg.Degree
			if degree >= tc.Nodes {
				degree = tc.Nodes / 2
			}
			rts, err := family(tc, cfg.Topologies, rng.Mix(cfg.Seed, saltFamily, uint64(x)))
			return rts, cfg.Params, degree, cfg.MsgFlits, err
		})
	if err != nil {
		return nil, err
	}
	return []*metrics.Table{tab}, nil
}

// ExtPacketLength reproduces the §4.2 text experiment on packet length,
// with a fixed 1024-flit message split into varying packet sizes.
func ExtPacketLength(cfg Config) ([]*metrics.Table, error) {
	rts, err := family(cfg.TopoCfg, cfg.Topologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tab, err := sweepSingle(cfg, "Ext: effect of packet length (single multicast, 1024-flit message)", "packet flits",
		[]float64{32, 64, 128, 256},
		func(x float64) ([]*updown.Routing, sim.Params, int, int, error) {
			p := cfg.Params
			p.PacketFlits = int(x)
			return rts, p, cfg.Degree, 1024, nil
		})
	if err != nil {
		return nil, err
	}
	return []*metrics.Table{tab}, nil
}

// BaselineComparison extends Figure 6's default point with the software
// binomial baseline (paper §3.1) for reference.
func BaselineComparison(cfg Config) ([]*metrics.Table, error) {
	rts, err := family(cfg.TopoCfg, cfg.Topologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tab := &metrics.Table{
		Title:  "Baseline: all four schemes at default parameters",
		XLabel: "multicast degree",
		YLabel: "mean single multicast latency (cycles)",
	}
	schemes := append([]mcast.Scheme{binomial.New()}, compared()...)
	for _, sch := range schemes {
		s := metrics.Series{Label: sch.Name()}
		for _, degree := range []float64{4, 8, 16, 31} {
			mean, err := singleMean(cfg, fmt.Sprintf("baseline/d=%d", int(degree)), rts, sch, cfg.Params, int(degree), cfg.MsgFlits)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, degree)
			s.Y = append(s.Y, mean)
		}
		tab.Series = append(tab.Series, s)
	}
	return []*metrics.Table{tab}, nil
}
