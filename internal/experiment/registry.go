package experiment

import (
	"fmt"
	"sort"

	"mcastsim/internal/metrics"
)

// Runner executes one named experiment.
type Runner func(Config) ([]*metrics.Table, error)

// Entry describes a registered experiment.
type Entry struct {
	ID    string // CLI name, e.g. "fig6"
	Paper string // paper artifact it reproduces
	Run   Runner
}

// Registry lists every experiment, in presentation order.
func Registry() []Entry {
	return []Entry{
		{"fig6", "Figure 6: single multicast vs R", Fig6EffectOfR},
		{"fig7", "Figure 7: single multicast vs switch count", Fig7EffectOfSwitches},
		{"fig8", "Figure 8: single multicast vs message length", Fig8EffectOfMessageLength},
		{"fig9", "Figure 9: load vs latency under R (8/16-way)", Fig9LoadVsR},
		{"fig10", "Figure 10: load vs latency under switch count (8/16-way)", Fig10LoadVsSwitches},
		{"fig11", "Figure 11: load vs latency under message length (8/16-way)", Fig11LoadVsMessageLength},
		{"oh", "§4.2 text: single multicast vs host overhead", ExtHostOverhead},
		{"size", "§4.2 text: single multicast vs system size", ExtSystemSize},
		{"pkt", "§4.2 text: single multicast vs packet length", ExtPacketLength},
		{"arch", "§3.3: architectural cost comparison", ArchComparison},
		{"unisat", "§4.3: unicast saturation sanity bound", UnicastSaturation},
		{"baseline", "§3.1: all four schemes vs degree", BaselineComparison},
		{"ab-tree", "ablation: tree worm branching policy", AblationTreeEarlyBranch},
		{"ab-path", "ablation: path worm dispatch policy", AblationPathSchedule},
		{"ab-buf", "ablation: switch buffer depth", AblationBufferSize},
		{"ab-fpfs", "ablation: smart-NI FPFS vs store-and-forward", AblationFPFS},
		{"ab-k", "ablation: k-binomial fanout model validation", AblationOptimalK},
		{"coll", "extension: collectives (broadcast/barrier/allreduce) per scheme", Collectives},
		{"root", "extension: up*/down* root placement vs tree-worm performance", RootSelection},
		{"mixed", "extension: multicast latency over unicast background traffic", MixedTraffic},
		{"routing", "extension: BFS vs DFS up*/down* substrate", RoutingVariant},
		{"fault", "extension: reconfiguration after one link failure", FaultReconfiguration},
		{"faultsweep", "extension: mid-flight link failures, retransmission and recovery", FaultSweep},
		{"churnsweep", "extension: dynamic-group churn, incremental tree repair, churn x fault", ChurnSweep},
		{"scalesweep", "extension: datacenter-scale topology class x size x scheme x destination coding", ScaleSweep},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Entry, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0)
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Entry{}, fmt.Errorf("experiment: unknown id %q (have %v)", id, ids)
}
