package experiment

import (
	"bytes"
	"math"
	"testing"

	"mcastsim/internal/metrics"
)

// scaleTestConfig trims the probe count so the two full sweeps (serial
// and parallel) stay CI-sized; the grid itself — including the >=1k
// switch / >=100k host L tier — is not reduced, because determinism and
// the compression bound are claims about that scale.
func scaleTestConfig(workers int) Config {
	cfg := Quick()
	cfg.Probes = 2
	cfg.Workers = workers
	return cfg
}

func renderDeterministicScaleTables(t *testing.T, tabs []*metrics.Table) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, tab := range tabs[:3] { // header, latency, throughput; tables 3-5 are wall-clock measurements
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func findSeries(t *testing.T, tab *metrics.Table, label string) metrics.Series {
	t.Helper()
	for _, s := range tab.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("table %q has no series %q", tab.Title, label)
	return metrics.Series{}
}

// TestScaleSweepTierFilter pins the -tiers behavior: a filtered sweep
// keeps one point per selected tier in every series, matching is
// case-insensitive, and a filter selecting nothing is an error rather
// than an empty report.
func TestScaleSweepTierFilter(t *testing.T) {
	cfg := scaleTestConfig(1)
	cfg.Tiers = []string{"s"}
	tabs, err := ScaleSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 6 {
		t.Fatalf("expected 6 tables, got %d", len(tabs))
	}
	for _, tab := range tabs {
		for _, s := range tab.Series {
			if len(s.X) != 1 {
				t.Fatalf("table %q series %q: %d tiers with -tiers S, want 1", tab.Title, s.Label, len(s.X))
			}
		}
	}
	cfg.Tiers = []string{"XXL"}
	if _, err := ScaleSweep(cfg); err == nil {
		t.Fatal("tier filter selecting no cases did not error")
	}
}

// TestScaleSweepDeterministicAndCompressed runs the full sweep twice
// (serial, 8 workers) and checks the two acceptance claims: every table
// except the wall clock is byte-identical for any worker count, and at
// the L tier (>=100k hosts) the interval-coded tree header costs at most
// 10% of the flat bit string in every topology class.
func TestScaleSweepDeterministicAndCompressed(t *testing.T) {
	if testing.Short() {
		t.Skip("full scale grid in -short mode")
	}
	serialTabs, err := ScaleSweep(scaleTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	parallelTabs, err := ScaleSweep(scaleTestConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(serialTabs) != 6 || len(parallelTabs) != 6 {
		t.Fatalf("expected 6 tables, got %d and %d", len(serialTabs), len(parallelTabs))
	}
	if !bytes.Equal(renderDeterministicScaleTables(t, serialTabs),
		renderDeterministicScaleTables(t, parallelTabs)) {
		t.Fatal("workers=8 output differs from serial")
	}

	header := serialTabs[0]
	for _, class := range []string{"fattree", "dragonfly", "irregular"} {
		flat := findSeries(t, header, class+" sw-tree flat")
		ival := findSeries(t, header, class+" sw-tree ival")
		last := len(flat.X) - 1
		if flat.X[last] < 100_000 {
			t.Fatalf("%s: largest tier has only %.0f hosts, want >= 100k", class, flat.X[last])
		}
		if ival.X[last] != flat.X[last] {
			t.Fatalf("%s: flat/ival tiers misaligned (%v vs %v)", class, flat.X, ival.X)
		}
		if math.IsNaN(flat.Y[last]) || math.IsNaN(ival.Y[last]) {
			t.Fatalf("%s: header bytes missing at the L tier", class)
		}
		if ival.Y[last] > 0.10*flat.Y[last] {
			t.Errorf("%s: ival header %.1f bytes > 10%% of flat %.1f at %d hosts",
				class, ival.Y[last], flat.Y[last], int(flat.X[last]))
		}
	}

	// Table shape: the S and M tiers carry real simulated latencies, the
	// L tier is plan+encode only (NaN latency, rendered "-").
	latency := serialTabs[1]
	for _, s := range latency.Series {
		if len(s.X) != 3 {
			t.Fatalf("series %q has %d tiers, want 3", s.Label, len(s.X))
		}
		for i := 0; i < 2; i++ {
			if math.IsNaN(s.Y[i]) || s.Y[i] <= 0 {
				t.Errorf("series %q tier %d: latency %v not simulated", s.Label, i, s.Y[i])
			}
		}
		if !math.IsNaN(s.Y[2]) {
			t.Errorf("series %q: L tier latency %v, want NaN (plan+encode only)", s.Label, s.Y[2])
		}
	}
}
