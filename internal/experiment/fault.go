package experiment

import (
	"fmt"
	"mcastsim/internal/metrics"
	"mcastsim/internal/rng"
	"mcastsim/internal/topology"
	"mcastsim/internal/traffic"
	"mcastsim/internal/updown"
)

// FaultReconfiguration exercises the property the paper's introduction
// claims for irregular networks — resistance to faults via
// reconfiguration. For each topology we fail one random non-bridge link,
// recompute the up*/down* state from scratch (new spanning tree, new
// orientations, new reachability strings — the Autonet procedure), and
// measure every scheme's isolated multicast latency before and after.
// Each scheme rebuilds its plans against the new routing state: the tree
// worm's switch tables, the path worms' stop chains, and the NI tree all
// change; the question is how gracefully latency degrades with one link
// less.
func FaultReconfiguration(cfg Config) ([]*metrics.Table, error) {
	topos, err := topology.GenerateFamily(cfg.TopoCfg, cfg.Topologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// Mix rather than multiply: cfg.Seed * 911 collapses every run with
	// Seed 0 onto the same stream (and correlates nearby seeds).
	r := rng.New(rng.Mix(cfg.Seed, 911))

	healthy := make([]*updown.Routing, 0, len(topos))
	degraded := make([]*updown.Routing, 0, len(topos))
	for _, t := range topos {
		rt, err := updown.New(t)
		if err != nil {
			return nil, err
		}
		healthy = append(healthy, rt)
		// Fail a random link; skip bridges (their removal partitions the
		// network, which reconfiguration alone cannot survive).
		var after *topology.Topology
		for _, li := range r.Perm(len(t.Links)) {
			cand, err := t.RemoveLink(li)
			if err == nil {
				after = cand
				break
			}
		}
		if after == nil {
			// Every link is a bridge (a pure tree): degraded == healthy.
			after = t
		}
		rt2, err := updown.New(after)
		if err != nil {
			return nil, err
		}
		degraded = append(degraded, rt2)
	}

	tab := &metrics.Table{
		Title:  "Fault reconfiguration: isolated 16-way multicast before/after one link failure",
		XLabel: "scheme (1=ni 2=tree 3=path)",
		YLabel: "mean single multicast latency (cycles)",
	}
	variants := []struct {
		label string
		rts   []*updown.Routing
	}{
		{"healthy", healthy},
		{"one link failed", degraded},
	}
	// One cell per (variant, scheme, topology); both variants and all
	// schemes share per-topology seeds so before/after compares the same
	// multicasts.
	schemes := compared()
	type key struct{ vi, si, ti int }
	var keys []key
	for vi := range variants {
		for si := range schemes {
			for ti := range variants[vi].rts {
				keys = append(keys, key{vi, si, ti})
			}
		}
	}
	res, err := runCells(cfg, len(keys), func(i int, cc cellCtx) ([]float64, error) {
		k := keys[i]
		rec, commit := cfg.cellObs(fmt.Sprintf("fault/%s/%s/topo%03d",
			variants[k.vi].label, schemes[k.si].Name(), k.ti))
		opts := append([]traffic.Option{traffic.WithProbes(cfg.Probes),
			traffic.WithObs(rec), traffic.WithShards(cfg.Shards)}, cc.trafficOpts()...)
		r, err := traffic.Run(variants[k.vi].rts[k.ti], traffic.Workload{
			Scheme: schemes[k.si], Params: cfg.Params, Degree: cfg.Degree,
			MsgFlits: cfg.MsgFlits,
			Seed:     rng.Mix(cfg.Seed, 7919, uint64(k.ti)),
		}, opts...)
		if err != nil {
			return nil, err
		}
		commit()
		return r.Latencies, nil
	})
	if err != nil {
		return nil, err
	}
	ci := 0
	for _, v := range variants {
		s := metrics.Series{Label: v.label}
		for si, sch := range schemes {
			var all []float64
			for range v.rts {
				all = append(all, res[ci]...)
				ci++
			}
			s.X = append(s.X, float64(si+1))
			s.Y = append(s.Y, metrics.Mean(all))
			s.Note = append(s.Note, sch.Name())
		}
		tab.Series = append(tab.Series, s)
	}
	return []*metrics.Table{tab}, nil
}
