package experiment

import (
	"fmt"

	"mcastsim/internal/metrics"
	"mcastsim/internal/topology"
	"mcastsim/internal/updown"
)

// RoutingVariant compares the paper's Autonet-style BFS up*/down* substrate
// against the depth-first-tree variant from the routing literature, for
// all three schemes, isolated and under load. The multicast schemes are
// routing-agnostic (they consume the same reachability/legality API), so
// this shows how much of each scheme's behavior is owed to the substrate.
func RoutingVariant(cfg Config) ([]*metrics.Table, error) {
	variants := []struct {
		label string
		tree  updown.TreePolicy
	}{
		{"BFS tree (Autonet)", updown.TreeBFS},
		{"DFS tree", updown.TreeDFS},
	}
	build := func(tree updown.TreePolicy, count int) ([]*updown.Routing, error) {
		topos, err := topology.GenerateFamily(cfg.TopoCfg, count, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rts := make([]*updown.Routing, len(topos))
		for i, t := range topos {
			rt, err := updown.NewWithOptions(t, updown.Options{Root: -1, Tree: tree})
			if err != nil {
				return nil, err
			}
			rts[i] = rt
		}
		return rts, nil
	}

	iso := &metrics.Table{
		Title:  "Routing substrate: isolated 16-way multicast, BFS vs DFS up*/down*",
		XLabel: "scheme (1=ni 2=tree 3=path)",
		YLabel: "mean single multicast latency (cycles)",
	}
	for _, v := range variants {
		rts, err := build(v.tree, cfg.Topologies)
		if err != nil {
			return nil, err
		}
		s := metrics.Series{Label: v.label}
		for si, sch := range compared() {
			mean, err := singleMean(cfg, fmt.Sprintf("routing/%s", v.label), rts, sch, cfg.Params, cfg.Degree, cfg.MsgFlits)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(si+1))
			s.Y = append(s.Y, mean)
			s.Note = append(s.Note, sch.Name())
		}
		iso.Series = append(iso.Series, s)
	}

	load := &metrics.Table{
		Title:  fmt.Sprintf("Routing substrate: tree worms under %d-way load, BFS vs DFS", cfg.LoadDegrees[0]),
		XLabel: "effective applied load",
		YLabel: "mean multicast latency (cycles)",
	}
	specs := make([]loadCurveSpec, len(variants))
	for i, v := range variants {
		rts, err := build(v.tree, cfg.LoadTopologies)
		if err != nil {
			return nil, err
		}
		specs[i] = loadCurveSpec{
			Label: v.label, ErrCtx: " (routing substrate)",
			Scheme: compared()[1], Rts: rts, Params: cfg.Params,
			Degree: cfg.LoadDegrees[0], Flits: cfg.MsgFlits,
		}
	}
	series, err := runLoadCurves(cfg, specs)
	if err != nil {
		return nil, err
	}
	load.Series = append(load.Series, series...)
	return []*metrics.Table{iso, load}, nil
}
