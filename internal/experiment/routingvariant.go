package experiment

import (
	"fmt"

	"mcastsim/internal/metrics"
	"mcastsim/internal/topology"
	"mcastsim/internal/traffic"
	"mcastsim/internal/updown"
)

// RoutingVariant compares the paper's Autonet-style BFS up*/down* substrate
// against the depth-first-tree variant from the routing literature, for
// all three schemes, isolated and under load. The multicast schemes are
// routing-agnostic (they consume the same reachability/legality API), so
// this shows how much of each scheme's behavior is owed to the substrate.
func RoutingVariant(cfg Config) ([]*metrics.Table, error) {
	variants := []struct {
		label string
		tree  updown.TreePolicy
	}{
		{"BFS tree (Autonet)", updown.TreeBFS},
		{"DFS tree", updown.TreeDFS},
	}
	build := func(tree updown.TreePolicy, count int) ([]*updown.Routing, error) {
		topos, err := topology.GenerateFamily(cfg.TopoCfg, count, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rts := make([]*updown.Routing, len(topos))
		for i, t := range topos {
			rt, err := updown.NewWithOptions(t, updown.Options{Root: -1, Tree: tree})
			if err != nil {
				return nil, err
			}
			rts[i] = rt
		}
		return rts, nil
	}

	iso := &metrics.Table{
		Title:  "Routing substrate: isolated 16-way multicast, BFS vs DFS up*/down*",
		XLabel: "scheme (1=ni 2=tree 3=path)",
		YLabel: "mean single multicast latency (cycles)",
	}
	for _, v := range variants {
		rts, err := build(v.tree, cfg.Topologies)
		if err != nil {
			return nil, err
		}
		s := metrics.Series{Label: v.label}
		for si, sch := range compared() {
			mean, err := singleMean(rts, sch, cfg.Params, cfg.Degree, cfg.MsgFlits, cfg.Probes, cfg.Seed)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(si+1))
			s.Y = append(s.Y, mean)
			s.Note = append(s.Note, sch.Name())
		}
		iso.Series = append(iso.Series, s)
	}

	load := &metrics.Table{
		Title:  fmt.Sprintf("Routing substrate: tree worms under %d-way load, BFS vs DFS", cfg.LoadDegrees[0]),
		XLabel: "effective applied load",
		YLabel: "mean multicast latency (cycles)",
	}
	for _, v := range variants {
		rts, err := build(v.tree, cfg.LoadTopologies)
		if err != nil {
			return nil, err
		}
		s := metrics.Series{Label: v.label}
		for _, l := range cfg.Loads {
			var means []float64
			sat := false
			for i, rt := range rts {
				res, err := traffic.RunLoad(rt, traffic.LoadConfig{
					Scheme: compared()[1], Params: cfg.Params,
					Degree: cfg.LoadDegrees[0], MsgFlits: cfg.MsgFlits,
					EffectiveLoad: l, Warmup: cfg.Warmup, Measure: cfg.Measure,
					Drain: cfg.Drain, Seed: cfg.Seed + uint64(i)*41,
				})
				if err != nil {
					return nil, err
				}
				if res.Saturated {
					sat = true
				}
				if res.Latency.Count > 0 {
					means = append(means, res.Latency.Mean)
				}
			}
			note := ""
			if sat {
				note = "SAT"
			}
			s.X = append(s.X, l)
			s.Y = append(s.Y, metrics.Mean(means))
			s.Note = append(s.Note, note)
			if sat {
				break
			}
		}
		load.Series = append(load.Series, s)
	}
	return []*metrics.Table{iso, load}, nil
}
