package experiment

import (
	"mcastsim/internal/collective"
	"mcastsim/internal/metrics"
	"mcastsim/internal/rng"
	"mcastsim/internal/updown"
)

// Collectives asks the paper's question one level up (§1 motivates
// multicast via barrier/reduction/broadcast): how much does the choice of
// multicast support change full collective operations? Broadcast uses the
// scheme directly; barrier and all-reduce add the combining-gather phase,
// which is scheme-independent and therefore dilutes the differences — an
// Amdahl effect worth seeing quantified.
func Collectives(cfg Config) ([]*metrics.Table, error) {
	rts, err := family(cfg.TopoCfg, cfg.Topologies, cfg.Seed)
	if err != nil {
		return nil, err
	}
	ops := []struct {
		label string
		run   func(rt *updown.Routing, c collective.Config) (collective.Result, error)
	}{
		{"broadcast", collective.Broadcast},
		{"barrier", collective.Barrier},
		{"allreduce-256f", func(rt *updown.Routing, c collective.Config) (collective.Result, error) {
			c.Flits = 256
			return collective.AllReduce(rt, c)
		}},
	}
	tab := &metrics.Table{
		Title:  "Collectives built on each multicast scheme (32 nodes)",
		XLabel: "operation (1=broadcast 2=barrier 3=allreduce)",
		YLabel: "mean completion latency (cycles)",
	}
	// One cell per (scheme, operation, topology). The seed is salted by
	// topology index alone — the old stride-1 additive derivation made
	// adjacent topologies' arbitration streams overlap outright.
	schemes := compared()
	type key struct{ si, oi, ti int }
	var keys []key
	for si := range schemes {
		for oi := range ops {
			for ti := range rts {
				keys = append(keys, key{si, oi, ti})
			}
		}
	}
	res, err := runCells(cfg, len(keys), func(i int, _ cellCtx) (float64, error) {
		k := keys[i]
		r, err := ops[k.oi].run(rts[k.ti], collective.Config{
			Scheme: schemes[k.si], Params: cfg.Params, Root: 0,
			Flits: cfg.MsgFlits, Seed: rng.Mix(cfg.Seed, saltColl, uint64(k.ti)),
		})
		if err != nil {
			return 0, err
		}
		return float64(r.Latency), nil
	})
	if err != nil {
		return nil, err
	}
	for si, sch := range schemes {
		s := metrics.Series{Label: sch.Name()}
		for oi, op := range ops {
			var sum float64
			for ti := range rts {
				sum += res[(si*len(ops)+oi)*len(rts)+ti]
			}
			s.X = append(s.X, float64(oi+1))
			s.Y = append(s.Y, sum/float64(len(rts)))
			s.Note = append(s.Note, op.label)
		}
		tab.Series = append(tab.Series, s)
	}
	return []*metrics.Table{tab}, nil
}
