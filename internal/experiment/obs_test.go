package experiment

import (
	"bytes"
	"testing"

	"mcastsim/internal/obs"
)

// obsRun executes one experiment with a fresh sink and returns the
// serialized telemetry stream.
func obsRun(t *testing.T, run Runner, workers int) []byte {
	t.Helper()
	cfg := testConfig()
	cfg.Workers = workers
	cfg.Obs = &ObsSink{}
	if _, err := run(cfg); err != nil {
		t.Fatal(err)
	}
	bundles := cfg.Obs.Bundles()
	if len(bundles) == 0 {
		t.Fatal("experiment produced no telemetry bundles")
	}
	for _, b := range bundles {
		if len(b.Snapshots) == 0 {
			t.Fatalf("cell %q sampled no snapshots", b.Cell)
		}
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, bundles); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestObsDeterministicAcrossWorkers extends the harness determinism
// contract to telemetry: the serialized bundle stream must be
// byte-identical whether cells run serially or on 8 workers.
func TestObsDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct {
		id  string
		run Runner
	}{
		{"fig6", Fig6EffectOfR},
		{"fig9", Fig9LoadVsR},
	}
	for _, c := range cases {
		c := c
		t.Run(c.id, func(t *testing.T) {
			serial := obsRun(t, c.run, 1)
			parallel := obsRun(t, c.run, 8)
			if !bytes.Equal(serial, parallel) {
				t.Fatal("telemetry stream differs between workers=1 and workers=8")
			}
		})
	}
}

// TestObsDisabledByDefault pins the opt-in contract: a Config without a
// sink must run every cell with a nil recorder (cellObs returns nil and a
// no-op commit), so the disabled path stays allocation- and event-free.
func TestObsDisabledByDefault(t *testing.T) {
	var cfg Config
	rec, commit := cfg.cellObs("any")
	if rec != nil {
		t.Fatal("nil sink produced a recorder")
	}
	commit() // must be callable
}

// TestObsTablesUnchanged pins non-interference at the result level: the
// rendered experiment tables are identical with and without telemetry.
func TestObsTablesUnchanged(t *testing.T) {
	plain := testConfig()
	pt, err := Fig6EffectOfR(plain)
	if err != nil {
		t.Fatal(err)
	}
	observed := testConfig()
	observed.Obs = &ObsSink{Config: obs.Config{Every: 256}}
	ot, err := Fig6EffectOfR(observed)
	if err != nil {
		t.Fatal(err)
	}
	if renderTables(t, pt) != renderTables(t, ot) {
		t.Fatal("attaching telemetry changed experiment results")
	}
}
